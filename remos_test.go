package remos_test

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos"
	"remos/internal/core"
	"remos/internal/netsim"
	"remos/internal/proto"
	"remos/internal/sim"
)

// stack builds the full system — emulated two-site network, agents,
// collectors, masters — and returns the pieces end-to-end tests use.
func stack(t testing.TB) (*core.Deployment, map[string]*netsim.Device) {
	t.Helper()
	return stackOpts(t, core.Options{})
}

// stackOpts is stack with explicit deployment options (observability
// tests pass a metrics registry).
func stackOpts(t testing.TB, opts core.Options) (*core.Deployment, map[string]*netsim.Device) {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{}
	for _, h := range []string{"app", "peer", "benchC", "benchE", "srv"} {
		d[h] = n.AddHost(h)
	}
	d["swC"] = n.AddSwitch("swC")
	d["swE"] = n.AddSwitch("swE")
	d["rC"] = n.AddRouter("rC")
	d["rE"] = n.AddRouter("rE")
	n.Connect(d["app"], d["swC"], 100e6, time.Millisecond)
	n.Connect(d["peer"], d["swC"], 100e6, time.Millisecond)
	n.Connect(d["benchC"], d["swC"], 100e6, time.Millisecond)
	n.Connect(d["swC"], d["rC"], 1e9, time.Millisecond)
	n.Connect(d["rC"], d["rE"], 8e6, 40*time.Millisecond)
	n.Connect(d["rE"], d["swE"], 1e9, time.Millisecond)
	n.Connect(d["benchE"], d["swE"], 100e6, time.Millisecond)
	n.Connect(d["srv"], d["swE"], 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	dep := core.NewDeployment(s, n, opts)
	mustSite := func(spec core.SiteSpec) {
		if _, err := dep.AddSite(spec); err != nil {
			t.Fatal(err)
		}
	}
	mustSite(core.SiteSpec{Name: "cmu", Switches: []*netsim.Device{d["swC"]}, BenchHost: d["benchC"]})
	mustSite(core.SiteSpec{Name: "eth", Switches: []*netsim.Device{d["swE"]}, BenchHost: d["benchE"]})
	if err := dep.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := dep.MeasureAllBenchmarks(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Stop)
	return dep, d
}

func TestEndToEndInProcess(t *testing.T) {
	dep, d := stack(t)
	m := remos.NewModeler(dep.Sites["cmu"].Master)
	bw, err := m.AvailableBandwidth(d["app"].Addr(), d["srv"].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-8e6) > 1e6 {
		t.Fatalf("cross-site bandwidth %v, want ~8e6", bw)
	}
	// Same-LAN query: no WAN involvement, full local capacity.
	bw, err = m.AvailableBandwidth(d["app"].Addr(), d["peer"].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-100e6) > 1e6 {
		t.Fatalf("LAN bandwidth %v, want ~100e6", bw)
	}
}

func TestEndToEndOverASCIIProtocol(t *testing.T) {
	dep, d := stack(t)
	srv := &proto.TCPServer{Collector: dep.Sites["cmu"].Master}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m := remos.ConnectTCP(addr)
	bw, err := m.AvailableBandwidth(d["app"].Addr(), d["srv"].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-8e6) > 1e6 {
		t.Fatalf("over ASCII protocol: %v, want ~8e6", bw)
	}
}

func TestEndToEndOverXMLProtocol(t *testing.T) {
	dep, d := stack(t)
	srv := &proto.HTTPServer{Collector: dep.Sites["cmu"].Master}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m := remos.ConnectHTTP("http://" + addr)
	g, err := m.GetTopology([]netip.Addr{d["app"].Addr(), d["srv"].Addr()}, remos.TopologyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Path(d["app"].Addr().String(), d["srv"].Addr().String()); err != nil {
		t.Fatalf("no end-to-end path over XML protocol: %v", err)
	}
}

func TestEndToEndPredictionOverProtocol(t *testing.T) {
	dep, d := stack(t)
	// Put steady load on the WAN and let the poller build history.
	if _, err := dep.Net.StartFlow(d["peer"], d["srv"], netsim.FlowSpec{Demand: 3e6}); err != nil {
		t.Fatal(err)
	}
	m0 := remos.NewModeler(dep.Sites["cmu"].Master)
	// Prime monitoring, then accumulate history.
	if _, err := m0.AvailableBandwidth(d["app"].Addr(), d["srv"].Addr()); err != nil {
		t.Fatal(err)
	}
	dep.Sim.RunFor(10 * time.Minute)

	srv := &proto.TCPServer{Collector: dep.Sites["cmu"].Master}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m := remos.ConnectTCP(addr)
	infos, err := m.GetFlows([]remos.Flow{{Src: d["app"].Addr(), Dst: d["srv"].Addr()}},
		remos.FlowOptions{Predict: true, Horizon: 2, Model: "BM(32)"})
	if err != nil {
		t.Fatal(err)
	}
	// WAN 8e6 minus the 3e6 background: ~5e6 predicted.
	if math.Abs(infos[0].Predicted-5e6) > 1e6 {
		t.Fatalf("predicted %v, want ~5e6", infos[0].Predicted)
	}
}

func TestBestServerEndToEnd(t *testing.T) {
	dep, d := stack(t)
	m := remos.NewModeler(dep.Sites["cmu"].Master)
	ranks, err := m.BestServer(d["app"].Addr(),
		[]netip.Addr{d["srv"].Addr(), d["peer"].Addr()}, remos.FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0].Server != d["peer"].Addr() {
		t.Fatalf("best = %v, want LAN-local peer", ranks[0].Server)
	}
}

func TestParsePredictor(t *testing.T) {
	f, err := remos.ParsePredictor("ARIMA(4,1,4)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "ARIMA(4,1,4)" {
		t.Fatalf("Name = %q", f.Name())
	}
	if _, err := remos.ParsePredictor("nonsense"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestCollectorSidePredictionsOverProtocol(t *testing.T) {
	// The §2.3 streaming configuration end to end: collectors fit
	// streaming predictors per monitored link; the modeler, talking to
	// the master over the ASCII protocol, consumes their forecasts
	// instead of fitting client-side.
	s := sim.NewSim()
	n := netsim.New(s)
	app := n.AddHost("app")
	bench := n.AddHost("bench")
	srv := n.AddHost("srv")
	peer := n.AddHost("peer")
	sw := n.AddSwitch("sw")
	sw2 := n.AddSwitch("sw2")
	r1 := n.AddRouter("r1")
	r2 := n.AddRouter("r2")
	n.Connect(app, sw, 100e6, time.Millisecond)
	n.Connect(bench, sw, 100e6, time.Millisecond)
	n.Connect(peer, sw, 100e6, time.Millisecond)
	n.Connect(sw, r1, 1e9, time.Millisecond)
	n.Connect(r1, r2, 10e6, 10*time.Millisecond)
	n.Connect(r2, sw2, 1e9, time.Millisecond)
	n.Connect(srv, sw2, 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	dep := core.NewDeployment(s, n, core.Options{})
	if _, err := dep.AddSite(core.SiteSpec{
		Name: "all", Switches: []*netsim.Device{sw, sw2}, BenchHost: bench,
		StreamPredict: "BM(16)",
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Finish(); err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	if _, err := n.StartFlow(peer, srv, netsim.FlowSpec{Demand: 6e6}); err != nil {
		t.Fatal(err)
	}
	m0 := remos.NewModeler(dep.Sites["all"].Master)
	if _, err := m0.AvailableBandwidth(app.Addr(), srv.Addr()); err != nil {
		t.Fatal(err) // primes monitoring
	}
	s.RunFor(10 * time.Minute) // history + streaming fits

	tcpSrv := &proto.TCPServer{Collector: dep.Sites["all"].Master}
	addr, err := tcpSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()
	m := remos.ConnectTCP(addr)
	infos, err := m.GetFlows([]remos.Flow{{Src: app.Addr(), Dst: srv.Addr()}},
		remos.FlowOptions{Predict: true, Horizon: 2, FromCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	// The WAN carries a steady 6e6: the collector-side forecast yields
	// ~4e6 available.
	if math.Abs(infos[0].Predicted-4e6) > 1e6 {
		t.Fatalf("collector-side predicted %v, want ~4e6", infos[0].Predicted)
	}
	if infos[0].ErrVar < 0 {
		t.Fatal("negative forecast error variance")
	}
}
