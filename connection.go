package remos

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"sync"

	"remos/internal/watch"
)

// Update is one push from a watched subscription: the fresh bottleneck
// available bandwidth for the watched pair, the previously pushed value,
// and the reason the predicate fired ("init", "below", "above",
// "change"). A terminal Update carries the typed close reason in Err
// (classified like query errors — ErrCollectorUnavailable, the caller's
// context error, ...) and is followed by the channel closing.
type Update = watch.Update

// WatchQuery names the endpoint pair a watch monitors. The watched
// value is the pair's bottleneck available bandwidth — the same number
// AvailableBandwidth reports.
type WatchQuery struct {
	Src, Dst netip.Addr
}

// WatchOption customizes a watch subscription.
type WatchOption func(*watch.Spec)

// WatchBelow pushes an update when availability drops below bits/s
// (edge-triggered: once per downward crossing).
func WatchBelow(bits float64) WatchOption {
	return func(s *watch.Spec) { s.Below = bits }
}

// WatchAbove pushes an update when availability rises above bits/s
// (edge-triggered).
func WatchAbove(bits float64) WatchOption {
	return func(s *watch.Spec) { s.Above = bits }
}

// WatchOnChange pushes an update whenever availability moves by frac
// (0.1 = 10%) relative to the last pushed value.
func WatchOnChange(frac float64) WatchOption {
	return func(s *watch.Spec) { s.ChangeFrac = frac }
}

// WatchBuffer sets the update channel depth (default 16). A consumer
// lagging further behind loses intermediate updates, never blocks the
// server's measurement path.
func WatchBuffer(n int) WatchOption {
	return func(s *watch.Spec) { s.Buf = n }
}

// watcher is the protocol-client side of the subscription plane; both
// proto.TCPClient and proto.HTTPClient implement it.
type watcher interface {
	Watch(ctx context.Context, spec watch.Spec) (<-chan watch.Update, error)
}

// Connection is a Modeler plus the subscription plane: everything Dial
// offers, and Watch for server-pushed updates. Build one with Connect.
type Connection struct {
	*Modeler
	w   watcher
	raw io.Closer // the protocol client, when it holds a connection

	mu      sync.Mutex
	cancels []context.CancelFunc
	closed  bool
}

// Connect is Dial returning a Connection: the same target grammar and
// options, plus access to the server's watch plane.
//
//	conn, err := remos.Connect("tcp://master.example.edu:3567")
//	...
//	ch, err := conn.Watch(ctx, remos.WatchQuery{Src: src, Dst: dst},
//		remos.WatchBelow(5e6))
//	for u := range ch { ... }
func Connect(target string, opts ...Option) (*Connection, error) {
	m, raw, err := dial(target, opts...)
	if err != nil {
		return nil, err
	}
	conn := &Connection{Modeler: m}
	conn.w, _ = raw.(watcher)
	conn.raw, _ = raw.(io.Closer)
	return conn, nil
}

// Close tears the connection down: every live Watch started through it
// is cancelled — the server releases the subscriptions and the tenant's
// watch quota — and the underlying protocol connection is dropped.
// Update channels drain their terminal update and close as usual.
// Close is idempotent; queries after Close redial transparently on the
// protocols that can (ASCII), so Close is also a way to reset a
// connection.
func (c *Connection) Close() error {
	c.mu.Lock()
	cancels := c.cancels
	c.cancels = nil
	c.closed = true
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	if c.raw != nil {
		return c.raw.Close()
	}
	return nil
}

// Watch subscribes to server-pushed updates for the pair's available
// bandwidth. At least one predicate option (WatchBelow, WatchAbove,
// WatchOnChange) is required. The first update reports the baseline
// ("init" — or the predicate's reason if it already holds); later
// updates arrive as the continuously-collecting server sees the
// predicate fire, with no polling from this client.
//
// The channel closes when the watch ends. Cancellation of ctx, server
// shutdown, and a dropped connection all deliver a final Update whose
// Err carries the typed close reason, then close the channel; every
// goroutine involved is torn down.
func (c *Connection) Watch(ctx context.Context, q WatchQuery, opts ...WatchOption) (<-chan Update, error) {
	if c.w == nil {
		return nil, fmt.Errorf("remos: connection target does not support watches")
	}
	spec := watch.Spec{Src: q.Src, Dst: q.Dst}
	for _, o := range opts {
		o(&spec)
	}
	// Track the watch so Connection.Close tears it down (releasing the
	// server-side subscription and the tenant's quota slot).
	wctx, cancel := context.WithCancel(ctx)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("remos: connection is closed")
	}
	c.cancels = append(c.cancels, cancel)
	c.mu.Unlock()
	ch, err := c.w.Watch(wctx, spec)
	if err != nil {
		cancel()
		return nil, err
	}
	return ch, nil
}
