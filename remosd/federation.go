package remosd

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"remos/internal/directory"
	"remos/internal/federation"
	"remos/internal/netsim"
	"remos/internal/obs"
	"remos/internal/proto"
	"remos/internal/sim"
	"remos/internal/topology"
)

// startFederated brings the daemon up in federated mode: the scenario
// fabric is partitioned into cfg.Domains administrative domains, this
// daemon runs the master for domain cfg.Domain (its lease heartbeats
// into the local directory replica and replicates to every -peer), and
// both wire servers answer through the federation router — so any
// daemon in the mesh serves intra- and cross-domain queries alike,
// stitching the per-domain serving graphs at the declared border links.
//
// Every daemon builds the same deterministic fabric (no background
// traffic runs in federated mode), so the partition — and therefore
// the stitched answer — is identical mesh-wide: a cross-domain FLOWS
// query returns byte-for-byte what a single master walking the whole
// network would.
func (cfg Config) startFederated(logf func(format string, args ...any)) (*Daemon, error) {
	reg := obs.New()
	traces := obs.NewRing(128, cfg.SlowQuery)
	d := &Daemon{Metrics: reg}
	fail := func(err error) (*Daemon, error) {
		d.Close()
		return nil, err
	}
	if cfg.Domain < 0 || cfg.Domain >= cfg.Domains {
		return fail(fmt.Errorf("remosd: federated domain index %d out of range [0,%d)", cfg.Domain, cfg.Domains))
	}

	s := sim.NewSim()
	sn, err := buildNetwork(s, cfg.Scenario)
	if err != nil {
		return fail(fmt.Errorf("remosd: %w", err))
	}
	part, err := netsim.PartitionDomains(sn.n, cfg.Domains)
	if err != nil {
		return fail(fmt.Errorf("remosd: %w", err))
	}
	for _, h := range sn.hosts {
		d.Hosts = append(d.Hosts, HostInfo{Name: h.Name, Addr: h.Addr()})
	}

	dir := directory.New(s)

	// Admission front end, shared by both wire servers, exactly as in
	// single-master mode.
	ctrl, err := cfg.admissionController(s, reg)
	if err != nil {
		return fail(err)
	}
	if ctrl != nil {
		d.onClose(ctrl.Close)
		logf("remosd: admission on (%d tenants, anonymous limits %v)", len(cfg.Tenants), cfg.Anonymous != nil)
	}

	router, err := federation.NewRouter(federation.RouterConfig{
		Directory:   dir,
		Obs:         reg,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return fail(fmt.Errorf("remosd: %w", err))
	}

	// Listen before registering the domain master: the advert carries
	// this server's bound address as its endpoint, so peers can fan
	// sub-queries in over the wire. The advert also carries the local
	// collector handle, so this daemon's own router never dials itself.
	tcpSrv := &proto.TCPServer{
		Collector: router, Flows: router,
		Admission: ctrl, Obs: reg, Traces: traces,
	}
	addr, err := tcpSrv.ListenAndServe(cfg.ListenASCII)
	if err != nil {
		return fail(fmt.Errorf("remosd: listen: %w", err))
	}
	d.onClose(func() { tcpSrv.Close() })
	d.ASCIIAddr = addr
	logf("remosd: ASCII protocol on %s (federation router)", addr)

	domainName := fmt.Sprintf("d%d", cfg.Domain)
	master, err := federation.StartDomain(federation.DomainConfig{
		Name:      fmt.Sprintf("%s-p%d", domainName, cfg.FedPriority),
		Domain:    domainName,
		Priority:  cfg.FedPriority,
		Endpoint:  "tcp://" + addr,
		Graph:     func() (*topology.Graph, error) { return part.ServingGraph(cfg.Domain) },
		Hosts:     part.DomainHosts(cfg.Domain),
		Prefixes:  part.HostPrefixes(cfg.Domain),
		Directory: dir,
		Sched:     s,
		Obs:       reg,
		Refresh:   cfg.FedRefresh,
		LeaseTTL:  cfg.FedLeaseTTL,
	})
	if err != nil {
		return fail(fmt.Errorf("remosd: %w", err))
	}
	d.onClose(master.Close)
	d.FedDomain = domainName
	logf("remosd: federated master for domain %s (%d/%d, priority %d, %d hosts, %d prefixes)",
		domainName, cfg.Domain, cfg.Domains, cfg.FedPriority,
		len(part.DomainHosts(cfg.Domain)), len(part.HostPrefixes(cfg.Domain)))

	if cfg.ListenHTTP != "" {
		httpSrv := &proto.HTTPServer{
			Collector: router, Flows: router,
			Admission: ctrl, Obs: reg, Traces: traces,
		}
		haddr, err := httpSrv.ListenAndServe(cfg.ListenHTTP)
		if err != nil {
			return fail(fmt.Errorf("remosd: http listen: %w", err))
		}
		d.onClose(func() { httpSrv.Close() })
		d.HTTPAddr = haddr
		logf("remosd: XML protocol on http://%s (federation router)", haddr)
	}

	// The directory replica: peers replicate their leases in here, and
	// this daemon's leases replicate out to every -peer. Push-only
	// anti-entropy over a full mesh converges every replica on the
	// union of live leases.
	if cfg.ListenDirectory != "" {
		dirSrv := &directory.Server{Service: dir}
		daddr, err := dirSrv.ListenAndServe(cfg.ListenDirectory)
		if err != nil {
			return fail(fmt.Errorf("remosd: directory listen: %w", err))
		}
		d.onClose(func() { dirSrv.Close() })
		d.DirectoryAddr = daddr
		logf("remosd: directory replica on %s (peers may REPLICATE)", daddr)
	} else if len(cfg.FedPeers) > 0 {
		logf("remosd: warning: -peer set but the directory listener is disabled; peers cannot replicate in")
	}
	if len(cfg.FedPeers) > 0 {
		ival := cfg.FedRefresh
		if ival <= 0 {
			ival = time.Second
		}
		rep := directory.StartReplicator(directory.ReplicatorConfig{
			Service:  dir,
			Peers:    cfg.FedPeers,
			Sched:    s,
			Interval: ival,
			Obs:      reg,
			Logf:     logf,
		})
		d.onClose(rep.Close)
		logf("remosd: replicating leases to %d peer(s) every %v", len(cfg.FedPeers), ival)
	}

	if cfg.ListenObs != "" {
		oln, err := net.Listen("tcp", cfg.ListenObs)
		if err != nil {
			return fail(fmt.Errorf("remosd: obs listen: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg, traces, fedHealth(domainName, master, dir)))
		mux.Handle("/debug/federation", router.DebugHandler())
		if ctrl != nil {
			mux.Handle("/debug/tenants", ctrl.DebugHandler())
		}
		osrv := &http.Server{Handler: mux}
		go osrv.Serve(oln)
		d.onClose(func() { osrv.Close() })
		d.ObsAddr = oln.Addr().String()
		logf("remosd: observability on http://%s (/metrics /healthz /debug/queries /debug/federation)", d.ObsAddr)
	}

	logf("remosd: scenario %q, %d domains; queryable hosts:", cfg.Scenario, cfg.Domains)
	for _, h := range d.Hosts {
		logf("remosd:   %-12s %s", h.Name, h.Addr)
	}

	// Drive the lease heartbeats and replication in step with the wall
	// clock.
	stop := make(chan struct{})
	go s.RunRealTime(50*time.Millisecond, stop)
	d.onClose(func() { close(stop) })
	return d, nil
}

// fedHealth reports the federated planes' liveness: the domain master
// is healthy once it has a serving graph, and the directory replica is
// healthy while it holds an unexpired lease for every advertised
// domain it has seen.
func fedHealth(domain string, master *federation.DomainServer, dir *directory.Service) obs.HealthFunc {
	return func() []obs.ComponentHealth {
		m := obs.ComponentHealth{Component: "federation-master-" + domain}
		if master.Epoch() > 0 {
			m.Healthy = true
		} else {
			m.Detail = "no serving graph yet"
		}
		domains := make(map[string]bool)
		for _, a := range dir.Adverts() {
			if a.Domain != "" {
				domains[a.Domain] = true
			}
		}
		r := obs.ComponentHealth{
			Component: "federation-directory",
			Healthy:   len(domains) > 0,
			Detail:    fmt.Sprintf("%d domain(s) advertised", len(domains)),
		}
		return []obs.ComponentHealth{m, r}
	}
}
