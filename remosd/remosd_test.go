package remosd_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"remos"
	"remos/remosd"
)

// TestStartProgrammatic boots the daemon through the exported options
// — ephemeral ports, two tenants — and drives it through the public
// client API: a metered tenant's queries succeed inside its burst and
// shed typed beyond it, and the observability plane exposes the
// per-tenant admission state.
func TestStartProgrammatic(t *testing.T) {
	d, err := remosd.Start(
		remosd.WithListen("127.0.0.1:0"),
		remosd.WithHTTP("127.0.0.1:0"),
		remosd.WithObs("127.0.0.1:0"),
		remosd.WithDirectory(""),
		remosd.WithHostLoad(""),
		remosd.WithScheduler(0, ""),
		// Refill is negligible over the test's lifetime, so the burst
		// is the whole budget: one query in, the next one shed.
		remosd.WithTenant("app", "sekrit", remosd.Limits{Rate: 0.001, Burst: 1}),
		remosd.WithTenant("bulk", "", remosd.Limits{Priority: "batch"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.ASCIIAddr == "" || d.HTTPAddr == "" || d.ObsAddr == "" {
		t.Fatalf("bound addresses missing: %+v", d)
	}
	if d.DirectoryAddr != "" || d.HostLoadAddr != "" {
		t.Fatalf("disabled planes bound addresses: %+v", d)
	}
	if len(d.Hosts) < 2 {
		t.Fatalf("scenario hosts = %v", d.Hosts)
	}

	m, err := remos.Dial("tcp://"+d.ASCIIAddr, remos.WithTenant("app", "sekrit"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	src, dst := d.Hosts[0].Addr, d.Hosts[1].Addr
	if _, err := m.AvailableBandwidthContext(ctx, src, dst); err != nil {
		t.Fatalf("burst query: %v", err)
	}
	_, err = m.AvailableBandwidthContext(ctx, src, dst)
	if !errors.Is(err, remos.ErrOverloaded) {
		t.Fatalf("shed error = %v, want remos.ErrOverloaded", err)
	}
	if hint, ok := remos.RetryAfter(err); !ok || hint <= 0 {
		t.Fatalf("retry hint = %v, %t", hint, ok)
	}

	for path, wants := range map[string][]string{
		"/debug/tenants": {`"tenant": "app"`, `"shed": 1`},
		"/metrics":       {`remos_admission_admitted_total{tenant="app"} 1`, `remos_admission_shed_total{tenant="app"} 1`},
	} {
		resp, err := http.Get("http://" + d.ObsAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range wants {
			if !strings.Contains(string(body), want) {
				t.Errorf("%s missing %q:\n%s", path, want, body)
			}
		}
	}

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d.Close() // idempotent
}

// TestStartRejectsBadTier: config errors surface from Start, with
// everything already started torn back down.
func TestStartRejectsBadTier(t *testing.T) {
	_, err := remosd.Start(
		remosd.WithListen("127.0.0.1:0"),
		remosd.WithHTTP(""), remosd.WithObs(""), remosd.WithDirectory(""),
		remosd.WithHostLoad(""), remosd.WithScheduler(0, ""),
		remosd.WithTenant("x", "", remosd.Limits{Priority: "urgent"}),
	)
	if err == nil || !strings.Contains(err.Error(), "unknown priority tier") {
		t.Fatalf("Start error = %v, want unknown priority tier", err)
	}
}
