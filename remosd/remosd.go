// Package remosd embeds the Remos measurement daemon. It is the
// programmatic twin of cmd/remosd: the same demo deployment over the
// in-repository network emulator, the same serving stack — ASCII and
// XML wire protocols, directory service, host load collector,
// observability plane, continuous collection, snapshot plane, and the
// multi-tenant admission layer — configured through an exported Config
// (or the equivalent functional options) instead of flags:
//
//	d, err := remosd.Start(
//		remosd.WithListen("127.0.0.1:0"),
//		remosd.WithHTTP("127.0.0.1:0"),
//		remosd.WithTenant("app", "sekrit", remosd.Limits{Rate: 50, Burst: 100}),
//	)
//	...
//	m, err := remos.Dial("tcp://"+d.ASCIIAddr, remos.WithTenant("app", "sekrit"))
//	...
//	d.Close()
//
// cmd/remosd is now a thin flag→option translator over this package,
// so everything settable on the command line is settable here too.
package remosd

import (
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/admission"
	"remos/internal/collector"
	"remos/internal/collector/hostcoll"
	"remos/internal/collector/qcache"
	"remos/internal/core"
	"remos/internal/directory"
	"remos/internal/hostload"
	"remos/internal/mib"
	"remos/internal/modeler"
	"remos/internal/netsim"
	"remos/internal/obs"
	"remos/internal/proto"
	"remos/internal/rerr"
	"remos/internal/sched"
	"remos/internal/sim"
	"remos/internal/snapshot"
	"remos/internal/snmp"
	"remos/internal/watch"
)

// Limits bounds one tenant's (or the anonymous pool's) use of the
// daemon. The zero value of any field means unlimited.
type Limits struct {
	// Rate is the sustained request rate in requests/second; Burst is
	// the token-bucket depth (defaults to max(Rate, 1) when Rate is
	// set).
	Rate, Burst float64
	// MaxConcurrent caps requests in flight; MaxWatches caps live watch
	// subscriptions; MaxQueued caps requests waiting for admission.
	MaxConcurrent, MaxWatches, MaxQueued int
	// Priority is the tenant's default queue tier: "interactive",
	// "batch", or "" (interactive).
	Priority string
}

// Tenant is one configured identity: its shared key (empty means the
// id alone suffices) and its limits.
type Tenant struct {
	Key    string
	Limits Limits
}

// Config holds every daemon setting; DefaultConfig mirrors the
// command-line defaults. Zero-value listen addresses disable their
// plane (except ListenASCII, which is required).
type Config struct {
	ListenASCII     string // ASCII protocol listen address
	ListenHTTP      string // XML/HTTP protocol ("" disables)
	ListenDirectory string // directory service ("" disables)
	ListenHostLoad  string // host load collector ("" disables)
	ListenObs       string // /metrics, /healthz, /debug/* ("" disables)

	Scenario    string // demo scenario: "twosite" or "campus"
	Parallelism int    // collector pipeline parallelism; 0 = GOMAXPROCS
	MaxVarBinds int    // varbinds per polling Get PDU
	Pipeline    int    // SNMP requests outstanding per agent

	QueryCacheTTL time.Duration // warm-query cache staleness bound
	SlowQuery     time.Duration // trace-flagging threshold

	SchedInterval time.Duration // background poll base interval; 0 disables
	SchedPredict  string        // RPS model per background-polled edge
	BenchInterval time.Duration // wide-area benchmark round interval

	Snapshot      bool          // maintain the versioned topology snapshot plane
	SnapshotStale time.Duration // staleness bound for snapshot-backed answers

	// Admission: the multi-tenant front end. The controller is built
	// when any of these are set; otherwise both servers run ungated,
	// as before the admission layer existed.
	Tenants      map[string]Tenant
	Anonymous    *Limits       // limits for unidentified connections
	MaxQueueWait time.Duration // queue-wait bound before shedding

	// Federation: when Domains > 1 the daemon runs in federated mode.
	// The scenario network is partitioned into Domains administrative
	// domains, this daemon serves domain index Domain as a federated
	// master (advertised into its directory replica with FedPriority),
	// and the wire servers answer through the federation router, which
	// stitches per-domain serving graphs at the declared border links.
	// FedPeers are the peer daemons' directory addresses; leases
	// replicate to them so every replica can route around a dead
	// master once its lease lapses.
	Domains     int
	Domain      int
	FedPeers    []string
	FedPriority int
	FedRefresh  time.Duration // heartbeat/refresh interval (default 1s)
	FedLeaseTTL time.Duration // advert lease lifetime (default 3×refresh)

	Logf func(format string, args ...any) // nil = silent
}

// DefaultConfig returns the settings cmd/remosd uses when no flags are
// given.
func DefaultConfig() Config {
	return Config{
		ListenASCII:     "127.0.0.1:3567",
		ListenHTTP:      "127.0.0.1:3568",
		ListenDirectory: "127.0.0.1:3569",
		ListenHostLoad:  "127.0.0.1:3570",
		ListenObs:       "127.0.0.1:3571",
		Scenario:        "twosite",
		MaxVarBinds:     24,
		Pipeline:        4,
		QueryCacheTTL:   2 * time.Second,
		SlowQuery:       500 * time.Millisecond,
		SchedInterval:   time.Second,
		SchedPredict:    "AR(16)",
		Snapshot:        true,
		SnapshotStale:   5 * time.Second,
	}
}

// Option mutates a Config; pass options to Start.
type Option func(*Config)

// WithListen sets the ASCII protocol listen address.
func WithListen(addr string) Option { return func(c *Config) { c.ListenASCII = addr } }

// WithHTTP sets the XML/HTTP listen address ("" disables).
func WithHTTP(addr string) Option { return func(c *Config) { c.ListenHTTP = addr } }

// WithDirectory sets the directory service listen address ("" disables).
func WithDirectory(addr string) Option { return func(c *Config) { c.ListenDirectory = addr } }

// WithHostLoad sets the host load collector listen address ("" disables).
func WithHostLoad(addr string) Option { return func(c *Config) { c.ListenHostLoad = addr } }

// WithObs sets the observability listen address ("" disables).
func WithObs(addr string) Option { return func(c *Config) { c.ListenObs = addr } }

// WithScenario selects the demo network ("twosite" or "campus").
func WithScenario(name string) Option { return func(c *Config) { c.Scenario = name } }

// WithQueryCacheTTL bounds warm-query cache staleness.
func WithQueryCacheTTL(ttl time.Duration) Option {
	return func(c *Config) { c.QueryCacheTTL = ttl }
}

// WithCollectorTuning sets the collector pipeline's parallelism,
// varbinds per PDU, and outstanding requests per agent.
func WithCollectorTuning(parallelism, maxVarBinds, pipeline int) Option {
	return func(c *Config) {
		c.Parallelism, c.MaxVarBinds, c.Pipeline = parallelism, maxVarBinds, pipeline
	}
}

// WithScheduler configures the continuous-collection plane (base = 0
// disables it and the watch plane).
func WithScheduler(base time.Duration, predict string) Option {
	return func(c *Config) { c.SchedInterval, c.SchedPredict = base, predict }
}

// WithSnapshotStaleness bounds snapshot-backed answer staleness.
func WithSnapshotStaleness(d time.Duration) Option {
	return func(c *Config) { c.Snapshot, c.SnapshotStale = true, d }
}

// WithoutSnapshot disables the versioned topology snapshot plane.
func WithoutSnapshot() Option { return func(c *Config) { c.Snapshot = false } }

// WithBenchInterval sets the wide-area benchmark round interval.
func WithBenchInterval(d time.Duration) Option { return func(c *Config) { c.BenchInterval = d } }

// WithSlowQuery sets the trace-flagging threshold.
func WithSlowQuery(d time.Duration) Option { return func(c *Config) { c.SlowQuery = d } }

// WithTenant registers one tenant identity with its limits. Repeatable.
func WithTenant(id, key string, lim Limits) Option {
	return func(c *Config) {
		if c.Tenants == nil {
			c.Tenants = map[string]Tenant{}
		}
		c.Tenants[id] = Tenant{Key: key, Limits: lim}
	}
}

// WithAnonymousLimits bounds connections that carry no tenant identity.
func WithAnonymousLimits(lim Limits) Option {
	return func(c *Config) { c.Anonymous = &lim }
}

// WithMaxQueueWait bounds how long an admitted-later request may queue
// before it is shed.
func WithMaxQueueWait(d time.Duration) Option { return func(c *Config) { c.MaxQueueWait = d } }

// WithFederation puts the daemon in federated mode: the scenario
// network is split into domains administrative domains and this daemon
// serves domain index domain as a federated master.
func WithFederation(domains, domain int) Option {
	return func(c *Config) { c.Domains, c.Domain = domains, domain }
}

// WithFederationPeer adds one peer daemon's directory address for
// lease replication. Repeatable.
func WithFederationPeer(addr string) Option {
	return func(c *Config) { c.FedPeers = append(c.FedPeers, addr) }
}

// WithFederationPriority sets this master's failover rank among its
// domain's replicas (lower is preferred).
func WithFederationPriority(p int) Option { return func(c *Config) { c.FedPriority = p } }

// WithFederationLease tunes the federation heartbeat interval and
// advert lease lifetime (zero keeps the defaults).
func WithFederationLease(refresh, ttl time.Duration) Option {
	return func(c *Config) { c.FedRefresh, c.FedLeaseTTL = refresh, ttl }
}

// WithLogf directs the daemon's progress log (nil keeps it silent).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(c *Config) { c.Logf = logf }
}

// HostInfo names one queryable demo host.
type HostInfo struct {
	Name string
	Addr netip.Addr
}

// Daemon is a running remosd. The *Addr fields carry the bound
// addresses (useful with ":0" listeners); Close tears the whole stack
// down in reverse start order.
type Daemon struct {
	ASCIIAddr     string
	HTTPAddr      string // "" when disabled
	DirectoryAddr string // "" when disabled
	HostLoadAddr  string // "" when disabled
	ObsAddr       string // "" when disabled
	Hosts         []HostInfo

	// FedDomain names the administrative domain this daemon serves in
	// federated mode ("" otherwise).
	FedDomain string

	// Metrics is the daemon's registry — the same one /metrics renders.
	Metrics *obs.Registry

	closeOnce sync.Once
	closers   []func()
}

// Close stops every plane the daemon started. It is idempotent.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		for i := len(d.closers) - 1; i >= 0; i-- {
			d.closers[i]()
		}
	})
	return nil
}

func (d *Daemon) onClose(f func()) { d.closers = append(d.closers, f) }

// Start builds DefaultConfig, applies the options, and starts the
// daemon.
func Start(opts ...Option) (*Daemon, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.Start()
}

// admissionController translates the Config's tenant section, or
// returns nil when no admission settings are present (both servers
// then run ungated, exactly as before the admission layer existed).
func (cfg Config) admissionController(s sim.Scheduler, reg *obs.Registry) (*admission.Controller, error) {
	if len(cfg.Tenants) == 0 && cfg.Anonymous == nil && cfg.MaxQueueWait == 0 {
		return nil, nil
	}
	translate := func(id string, l Limits) (admission.Limits, error) {
		tier, ok := admission.ParseTier(l.Priority)
		if !ok {
			return admission.Limits{}, fmt.Errorf("remosd: tenant %q: unknown priority tier %q", id, l.Priority)
		}
		return admission.Limits{
			Rate: l.Rate, Burst: l.Burst,
			MaxConcurrent: l.MaxConcurrent, MaxWatches: l.MaxWatches, MaxQueued: l.MaxQueued,
			Tier: tier,
		}, nil
	}
	acfg := admission.Config{
		Tenants:      make(map[string]admission.TenantConfig, len(cfg.Tenants)),
		MaxQueueWait: cfg.MaxQueueWait,
		Sched:        s,
		Obs:          reg,
	}
	for id, t := range cfg.Tenants {
		lim, err := translate(id, t.Limits)
		if err != nil {
			return nil, err
		}
		acfg.Tenants[id] = admission.TenantConfig{Key: t.Key, Limits: lim}
	}
	if cfg.Anonymous != nil {
		lim, err := translate(admission.AnonymousTenant, *cfg.Anonymous)
		if err != nil {
			return nil, err
		}
		acfg.Anonymous = lim
	}
	return admission.New(acfg), nil
}

// Start brings the configured daemon up. On error, everything already
// started is torn down before returning.
func (cfg Config) Start() (*Daemon, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Domains > 1 {
		return cfg.startFederated(logf)
	}
	reg := obs.New()
	traces := obs.NewRing(128, cfg.SlowQuery)
	d := &Daemon{Metrics: reg}
	fail := func(err error) (*Daemon, error) {
		d.Close()
		return nil, err
	}

	s := sim.NewSim()
	dep, hosts, err := buildScenario(s, cfg.Scenario, cfg.BenchInterval, core.Options{
		Parallelism: cfg.Parallelism,
		MaxVarBinds: cfg.MaxVarBinds,
		Pipeline:    cfg.Pipeline,
		Obs:         reg,
	})
	if err != nil {
		return fail(fmt.Errorf("remosd: %w", err))
	}
	d.onClose(dep.Stop)
	if err := dep.MeasureAllBenchmarks(); err != nil {
		logf("remosd: initial benchmarks: %v", err)
	}
	for _, h := range hosts {
		d.Hosts = append(d.Hosts, HostInfo{Name: h.Name, Addr: h.Addr()})
	}

	// The served collector: the first site's Master behind the
	// warm-query cache.
	master := dep.Sites[firstSite(dep)].Master
	queryable := qcache.New(master, qcache.Config{TTL: cfg.QueryCacheTTL, Obs: reg})
	logf("remosd: warm-query cache TTL %v, parallelism %d (0=GOMAXPROCS), max-varbinds %d, pipeline %d",
		cfg.QueryCacheTTL, cfg.Parallelism, cfg.MaxVarBinds, cfg.Pipeline)

	// Admission front end, shared by both wire servers.
	ctrl, err := cfg.admissionController(s, reg)
	if err != nil {
		return fail(err)
	}
	if ctrl != nil {
		d.onClose(ctrl.Close)
		logf("remosd: admission on (%d tenants, anonymous limits %v)", len(cfg.Tenants), cfg.Anonymous != nil)
	}

	// Snapshot plane.
	var snapStore *snapshot.Store
	if cfg.Snapshot {
		snapStore = snapshot.New(snapshot.Config{Now: s.Now, Obs: reg})
		logf("remosd: snapshot plane on (staleness bound %v)", cfg.SnapshotStale)
	}

	// Continuous-collection plane and watch registry.
	var watchReg *watch.Registry
	if cfg.SchedInterval > 0 {
		maxIval := 8 * cfg.SchedInterval
		if cfg.QueryCacheTTL > 0 && cfg.QueryCacheTTL < maxIval {
			// Keep the adaptive interval inside the cache's staleness
			// bound so scheduler-covered queries stay warm.
			maxIval = cfg.QueryCacheTTL
		}
		var plane *sched.Scheduler
		watchReg = watch.New(watch.Config{
			Obs:           reg,
			Now:           s.Now,
			EnsureTarget:  func(h []netip.Addr) { plane.AddTarget(h) },
			ReleaseTarget: func(h []netip.Addr) { plane.RemoveTarget(h) },
		})
		plane, err = sched.New(sched.Config{
			Collector: queryable,
			Invalidate: func(h []netip.Addr) {
				queryable.Invalidate(qcache.Key(collector.Query{Hosts: h}))
			},
			Sched:        s,
			BaseInterval: cfg.SchedInterval,
			MaxInterval:  maxIval,
			Predict:      cfg.SchedPredict,
			OnResult: func(_ []netip.Addr, res *collector.Result) {
				watchReg.Evaluate(res)
			},
			Snapshot: snapStore,
			Obs:      reg,
		})
		if err != nil {
			return fail(fmt.Errorf("remosd: scheduler: %w", err))
		}
		d.onClose(plane.Stop)
		d.onClose(func() {
			watchReg.Close(rerr.Tagf(rerr.ErrCollectorUnavailable, "remosd shutting down"))
		})
		// Preseed the demo pairs so their queries answer warm from the
		// first client on; watches add and remove their own targets.
		if len(hosts) >= 2 && len(hosts) <= 8 {
			for _, h := range hosts[1:] {
				plane.AddTarget([]netip.Addr{hosts[0].Addr(), h.Addr()})
			}
		}
		logf("remosd: background scheduler on (base %v, max %v, predict %q); watch plane enabled",
			cfg.SchedInterval, maxIval, cfg.SchedPredict)
	}

	// The server-side Modeler behind the FLOWS verb.
	mdl := modeler.New(modeler.Config{
		Collector: queryable, Snapshot: snapStore, MaxStale: cfg.SnapshotStale,
		Obs: reg, Traces: traces,
	})
	tcpSrv := &proto.TCPServer{
		Collector: queryable, Watch: watchReg, Flows: mdl,
		Admission: ctrl, Obs: reg, Traces: traces,
	}
	addr, err := tcpSrv.ListenAndServe(cfg.ListenASCII)
	if err != nil {
		return fail(fmt.Errorf("remosd: listen: %w", err))
	}
	d.onClose(func() { tcpSrv.Close() })
	d.ASCIIAddr = addr
	logf("remosd: ASCII protocol on %s", addr)

	if cfg.ListenHTTP != "" {
		httpSrv := &proto.HTTPServer{
			Collector: queryable, Watch: watchReg, Flows: mdl,
			Admission: ctrl, Obs: reg, Traces: traces,
		}
		haddr, err := httpSrv.ListenAndServe(cfg.ListenHTTP)
		if err != nil {
			return fail(fmt.Errorf("remosd: http listen: %w", err))
		}
		d.onClose(func() { httpSrv.Close() })
		d.HTTPAddr = haddr
		logf("remosd: XML protocol on http://%s", haddr)
	}

	if cfg.ListenHostLoad != "" {
		// Host load: attach synthetic load signals to the demo hosts,
		// run a host load collector at 1 Hz, and serve it over the
		// ASCII protocol (remosctl load / WithHostLoad).
		var managed []netip.Addr
		for i, h := range hosts {
			gen := hostload.NewGenerator(hostload.Config{Seed: int64(100 + i)})
			h.SetLoadSource(gen.Next)
			h.SNMP.Reachable = true
			managed = append(managed, h.Addr())
		}
		mib.AttachAll(dep.Net, dep.Registry) // re-attach: hosts now reachable
		hc := hostcoll.New(hostcoll.Config{
			Client:        snmp.NewClient(dep.Transport, "public"),
			Sched:         s,
			Hosts:         managed,
			StreamPredict: "AR(16)",
		})
		d.onClose(hc.Stop)
		loadSrv := &proto.TCPServer{Collector: hc}
		laddr, err := loadSrv.ListenAndServe(cfg.ListenHostLoad)
		if err != nil {
			return fail(fmt.Errorf("remosd: host load listen: %w", err))
		}
		d.onClose(func() { loadSrv.Close() })
		d.HostLoadAddr = laddr
		logf("remosd: host load collector on %s", laddr)
	}

	if cfg.ListenObs != "" {
		oln, err := net.Listen("tcp", cfg.ListenObs)
		if err != nil {
			return fail(fmt.Errorf("remosd: obs listen: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg, traces, healthFunc(dep)))
		if ctrl != nil {
			mux.Handle("/debug/tenants", ctrl.DebugHandler())
		}
		osrv := &http.Server{Handler: mux}
		go osrv.Serve(oln)
		d.onClose(func() { osrv.Close() })
		d.ObsAddr = oln.Addr().String()
		logf("remosd: observability on http://%s (/metrics /healthz /debug/queries /debug/tenants)", d.ObsAddr)
	}

	if cfg.ListenDirectory != "" && dep.Directory != nil {
		dirSrv := &directory.Server{Service: dep.Directory}
		daddr, err := dirSrv.ListenAndServe(cfg.ListenDirectory)
		if err != nil {
			return fail(fmt.Errorf("remosd: directory listen: %w", err))
		}
		d.onClose(func() { dirSrv.Close() })
		d.DirectoryAddr = daddr
		logf("remosd: directory service on %s (remote collectors may REGISTER)", daddr)
	}

	logf("remosd: scenario %q; queryable hosts:", cfg.Scenario)
	for _, h := range d.Hosts {
		logf("remosd:   %-12s %s", h.Name, h.Addr)
	}

	// Drive the emulated network in step with the wall clock.
	stop := make(chan struct{})
	go s.RunRealTime(50*time.Millisecond, stop)
	d.onClose(func() { close(stop) })
	return d, nil
}

// healthFunc reports per-collector liveness: each site's SNMP collector
// is healthy once it has completed a poll cycle recently (within three
// poll periods), and the Master is healthy by construction (it is a
// pure fan-out with no background activity).
func healthFunc(dep *core.Deployment) obs.HealthFunc {
	return func() []obs.ComponentHealth {
		var out []obs.ComponentHealth
		names := make([]string, 0, len(dep.Sites))
		for name := range dep.Sites {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			site := dep.Sites[name]
			if site.SNMP == nil {
				continue
			}
			h := obs.ComponentHealth{Component: site.SNMP.Name()}
			last := site.SNMP.LastPoll()
			if last.IsZero() {
				h.Detail = "no poll cycle completed yet"
			} else {
				// The collector stamps poll cycles on the deployment's
				// (simulated) clock; age them against the same clock.
				h.LastPoll = last
				h.LastPollAge = dep.Sim.Now().Sub(last)
				if h.LastPollAge <= 3*site.SNMP.PollInterval() {
					h.Healthy = true
				} else {
					h.Detail = fmt.Sprintf("last poll %v ago (interval %v)",
						h.LastPollAge.Round(time.Millisecond), site.SNMP.PollInterval())
				}
			}
			out = append(out, h)
			if site.Master != nil {
				out = append(out, obs.ComponentHealth{
					Component: site.Master.Name(), Healthy: true,
				})
			}
		}
		return out
	}
}

func firstSite(dep *core.Deployment) string {
	names := make([]string, 0, len(dep.Sites))
	for name := range dep.Sites {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[0]
}

// scenarioNet is one demo network before any collectors attach: the
// fabric itself, the hosts clients may query, the site specs a
// single-master deployment would attach collectors to, and an optional
// background-traffic starter. The federated boot path reuses the same
// fabric and partitions it into domains instead of attaching sites.
type scenarioNet struct {
	n     *netsim.Network
	hosts []*netsim.Device
	sites []core.SiteSpec
	// traffic starts the scenario's background load (nil = none). The
	// single-master path runs it so measurements move; the federated
	// path skips it so every daemon's copy of the fabric stays
	// identical and stitched answers match across the mesh.
	traffic func() error
}

// buildNetwork wires one of the demo fabrics.
func buildNetwork(s *sim.Sim, name string) (*scenarioNet, error) {
	n := netsim.New(s)
	switch name {
	case "twosite":
		app1 := n.AddHost("app1")
		app2 := n.AddHost("app2")
		benchA := n.AddHost("bench-a")
		benchB := n.AddHost("bench-b")
		srv := n.AddHost("srv")
		swA := n.AddSwitch("swA")
		swB := n.AddSwitch("swB")
		rA := n.AddRouter("rA")
		rB := n.AddRouter("rB")
		n.Connect(app1, swA, 100e6, time.Millisecond)
		n.Connect(app2, swA, 100e6, time.Millisecond)
		n.Connect(benchA, swA, 100e6, time.Millisecond)
		n.Connect(swA, rA, 1e9, time.Millisecond)
		n.Connect(rA, rB, 10e6, 40*time.Millisecond)
		n.Connect(rB, swB, 1e9, time.Millisecond)
		n.Connect(benchB, swB, 100e6, time.Millisecond)
		n.Connect(srv, swB, 100e6, time.Millisecond)
		n.AssignSubnets()
		n.ComputeRoutes()
		return &scenarioNet{
			n:     n,
			hosts: []*netsim.Device{app1, app2, srv, benchA, benchB},
			sites: []core.SiteSpec{
				{Name: "a", Switches: []*netsim.Device{swA}, BenchHost: benchA},
				{Name: "b", Switches: []*netsim.Device{swB}, BenchHost: benchB},
			},
			traffic: func() error {
				// Background load so measurements move.
				_, err := n.StartCrossTraffic(app2, srv, netsim.CrossTrafficSpec{
					Mean: 3e6, Jitter: 0.4, Period: 2 * time.Second, Seed: 7,
				})
				return err
			},
		}, nil
	case "campus":
		// A small campus: one wing per quadrant, 8 hosts each.
		var switches []*netsim.Device
		coreSw := n.AddSwitch("core-sw")
		switches = append(switches, coreSw)
		var hosts []*netsim.Device
		for w := 0; w < 4; w++ {
			r := n.AddRouter(fmt.Sprintf("gw%d", w))
			n.Connect(r, coreSw, 1e9, time.Millisecond)
			edge := n.AddSwitch(fmt.Sprintf("edge%d", w))
			switches = append(switches, edge)
			n.Connect(edge, r, 1e9, time.Millisecond)
			for h := 0; h < 8; h++ {
				host := n.AddHost(fmt.Sprintf("h%d-%d", w, h))
				n.Connect(host, edge, 100e6, time.Millisecond)
				hosts = append(hosts, host)
			}
		}
		n.AssignSubnets()
		n.ComputeRoutes()
		return &scenarioNet{
			n:     n,
			hosts: hosts[:8],
			sites: []core.SiteSpec{{Name: "campus", Switches: switches}},
		}, nil
	}
	return nil, fmt.Errorf("remosd: unknown scenario %q", name)
}

// buildScenario wires one of the demo networks with its single-master
// collector deployment. benchIval is the wide-area benchmark round
// interval (0 = benchcoll's default): the inter-site hop is measured by
// benchmarks, not SNMP, so it bounds how fresh WAN availability — and
// every watch predicate over it — can be.
func buildScenario(s *sim.Sim, name string, benchIval time.Duration, opts core.Options) (*core.Deployment, []*netsim.Device, error) {
	sn, err := buildNetwork(s, name)
	if err != nil {
		return nil, nil, err
	}
	dep := core.NewDeployment(s, sn.n, opts)
	for _, spec := range sn.sites {
		spec.BenchInterval = benchIval
		if _, err := dep.AddSite(spec); err != nil {
			return nil, nil, err
		}
	}
	if err := dep.Finish(); err != nil {
		return nil, nil, err
	}
	if sn.traffic != nil {
		if err := sn.traffic(); err != nil {
			return nil, nil, err
		}
	}
	return dep, sn.hosts, nil
}
