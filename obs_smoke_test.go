package remos_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"remos"
	"remos/internal/collector/qcache"
	"remos/internal/core"
	"remos/internal/obs"
	"remos/internal/proto"
)

// TestObservabilitySmoke is the end-to-end observability exercise: a
// full deployment instrumented into one registry, served over the ASCII
// protocol with tracing, queried through the public Dial API, and then
// inspected through the HTTP observability plane the way remosctl
// stats does.
func TestObservabilitySmoke(t *testing.T) {
	reg := remos.NewMetricsRegistry()
	traces := remos.NewTraceRing(64, 0)
	dep, d := stackOpts(t, core.Options{Obs: reg})

	queryable := qcache.New(dep.Sites["cmu"].Master, qcache.Config{TTL: time.Minute, Obs: reg})
	srv := &proto.TCPServer{Collector: queryable, Obs: reg, Traces: traces}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	osrv := httptest.NewServer(obs.Handler(reg, traces, func() []obs.ComponentHealth {
		last := dep.Sites["cmu"].SNMP.LastPoll()
		return []obs.ComponentHealth{{
			Component: dep.Sites["cmu"].SNMP.Name(),
			Healthy:   !last.IsZero(),
			LastPoll:  last,
		}}
	}))
	defer osrv.Close()

	m, err := remos.Dial("tcp://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Two identical flow queries: the first is a cache miss that walks
	// the network, the second answers warm.
	flows := []remos.Flow{{Src: d["app"].Addr(), Dst: d["srv"].Addr()}}
	for i := 0; i < 2; i++ {
		if _, err := m.GetFlowsContext(ctx, flows, remos.FlowOptions{}); err != nil {
			t.Fatalf("GetFlows %d: %v", i, err)
		}
	}

	get := func(path string) string {
		resp, err := http.Get(osrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`remos_requests_total{proto="ascii"} 2`,
		"remos_request_seconds_bucket",
		"remos_qcache_hits_total 1",
		"remos_qcache_misses_total 1",
		"remos_master_queries_total 1",
		"remos_snmp_exchanges_total",
		`remos_snmpcoll_queries_total{collector="snmp-cmu"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics:\n%s", metrics)
	}

	var recs []obs.TraceRecord
	if err := json.Unmarshal([]byte(get("/debug/queries")), &recs); err != nil {
		t.Fatalf("parsing /debug/queries: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(recs))
	}
	// Newest first: recs[0] is the warm hit, recs[1] the cold miss that
	// fanned out to the collectors.
	stages := func(r obs.TraceRecord) map[string]bool {
		out := map[string]bool{}
		for _, sp := range r.Spans {
			out[sp.Name] = true
		}
		return out
	}
	cold := stages(recs[1])
	for _, want := range []string{"parse", "cache", "fanout", "merge", "encode", "snmp-cmu:discover", "snmp-cmu:validate"} {
		if !cold[want] {
			t.Errorf("cold trace missing stage %q (has %v)", want, recs[1].Spans)
		}
	}
	warm := stages(recs[0])
	if warm["fanout"] {
		t.Errorf("warm trace fanned out despite cache hit: %v", recs[0].Spans)
	}
	if !warm["cache"] || !warm["encode"] {
		t.Errorf("warm trace missing cache/encode stages: %v", recs[0].Spans)
	}
	for _, r := range recs {
		if r.Kind != "ascii" {
			t.Errorf("trace kind %q, want ascii", r.Kind)
		}
		if r.Dur <= 0 {
			t.Errorf("trace has non-positive duration: %+v", r)
		}
	}

	var health obs.HealthResponse
	if err := json.Unmarshal([]byte(get("/healthz")), &health); err != nil {
		t.Fatalf("parsing /healthz: %v", err)
	}
	if len(health.Components) != 1 || health.Components[0].Component != "snmp-cmu" {
		t.Fatalf("healthz components = %+v", health.Components)
	}
}

// TestDialErrors covers the target grammar.
func TestDialErrors(t *testing.T) {
	if _, err := remos.Dial(""); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := remos.Dial("udp://somewhere:1"); err == nil {
		t.Error("unsupported scheme accepted")
	}
	for _, ok := range []string{"tcp://h:1", "h:1", "http://h:1", "https://h:1"} {
		if _, err := remos.Dial(ok); err != nil {
			t.Errorf("Dial(%q) = %v", ok, err)
		}
	}
}

// TestTypedErrorsThroughPublicAPI drives a typed failure through the
// whole stack: a query for a host nobody is responsible for, asked over
// the wire, must come back as remos.ErrUnknownHost.
func TestTypedErrorsThroughPublicAPI(t *testing.T) {
	dep, d := stack(t)
	srv := &proto.TCPServer{Collector: dep.Sites["cmu"].Master}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m, err := remos.Dial("tcp://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, err = m.GetTopologyContext(ctx, []netip.Addr{netip.MustParseAddr("203.0.113.7")}, remos.TopologyOptions{})
	if !errors.Is(err, remos.ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
	// A reachable pair still answers on the same connection.
	if _, err := m.GetTopologyContext(ctx, []netip.Addr{d["app"].Addr(), d["srv"].Addr()}, remos.TopologyOptions{}); err != nil {
		t.Fatalf("query after typed error: %v", err)
	}
}
