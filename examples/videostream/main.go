// Videostream: the Section 5.5 use case — a video client uses Remos to
// pick the server with the best connectivity, then streams a movie from
// an adaptive server that drops low-priority frames to fit the available
// bandwidth. Frame counts from every candidate show what the choice was
// worth.
//
// Run with: go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"remos/internal/experiments"
)

func main() {
	// One run of the paper's video experiment machinery: build the
	// ETH-centric scenario with the five servers of Table 1.
	fmt.Println("measuring available bandwidth to all video servers with Remos...")
	table, err := experiments.Table1(3, 42)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(table.Rows, func(i, j int) bool { return table.Rows[i].MeanBw > table.Rows[j].MeanBw })
	for _, row := range table.Rows {
		fmt.Printf("  %-12s %8.2f Mbit/s\n", row.Site, row.MeanBw/1e6)
	}

	// Stream a 140-second, 1 Mbit/s movie from the three candidate
	// servers the paper's Figure 10 compares (the local and EPFL
	// servers always saturate the stream, so they are excluded there).
	fmt.Println("\nstreaming the movie from each candidate (adaptive frame dropping):")
	runs, err := experiments.Fig10(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	run := runs.Runs[0]
	type kv struct {
		name   string
		frames int
	}
	var rows []kv
	for name, frames := range run.Frames {
		rows = append(rows, kv{name, frames})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].frames > rows[j].frames })
	movie := experiments.MakeMovie(43, 140*time.Second, 25, 1e6)
	for _, row := range rows {
		mark := ""
		if row.name == run.Picked {
			mark = "   <- Remos picked this server"
		}
		fmt.Printf("  %-12s %5d/%d frames received correctly%s\n",
			row.name, row.frames, len(movie.Frames), mark)
	}
	if run.Correct {
		fmt.Println("\nthe picked server delivered the most frames — bandwidth was the right proxy for video quality")
	} else {
		fmt.Println("\nthe picked server was not the best this time (the paper saw this too, when a server was overloaded)")
	}
}
