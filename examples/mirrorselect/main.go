// Mirrorselect: the Section 5.4 use case as an application — pick the
// best replica server with Remos before downloading a file, and compare
// against what blind downloads would have achieved.
//
// Run with: go run ./examples/mirrorselect
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"remos"
	"remos/internal/core"
	"remos/internal/netsim"
	"remos/internal/sim"
)

type replica struct {
	name string
	bw   float64
	dev  *netsim.Device
}

func main() {
	s := sim.NewSim()
	n := netsim.New(s)

	// A client site and three replica sites with different WAN quality.
	client := n.AddHost("client")
	bench := n.AddHost("bench")
	rc := n.AddRouter("rc")
	wan := n.AddRouter("wan")
	n.Connect(client, rc, 100e6, time.Millisecond)
	n.Connect(bench, rc, 100e6, time.Millisecond)
	n.Connect(rc, wan, 100e6, 10*time.Millisecond)

	replicas := []replica{
		{name: "mirror-fast", bw: 8e6},
		{name: "mirror-mid", bw: 3e6},
		{name: "mirror-slow", bw: 0.8e6},
	}
	noiseHub := n.AddHost("noise-hub")
	n.Connect(noiseHub, wan, 1e9, time.Millisecond)
	noises := make([]*netsim.Device, len(replicas))
	for i := range replicas {
		srv := n.AddHost(replicas[i].name)
		noises[i] = n.AddHost("noise-" + replicas[i].name)
		r := n.AddRouter("r-" + replicas[i].name)
		n.Connect(srv, r, 100e6, time.Millisecond)
		n.Connect(noises[i], r, 100e6, time.Millisecond)
		n.Connect(r, wan, replicas[i].bw, 30*time.Millisecond)
		replicas[i].dev = srv
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	// Keep each bottleneck realistically busy.
	for i := range replicas {
		if _, err := n.StartCrossTraffic(noises[i], noiseHub, netsim.CrossTrafficSpec{
			Mean: replicas[i].bw * 0.35, Jitter: 0.6, Period: 2 * time.Second, Seed: int64(i + 1),
		}); err != nil {
			log.Fatal(err)
		}
	}

	dep := core.NewDeployment(s, n, core.Options{})
	addSite := func(spec core.SiteSpec) {
		if _, err := dep.AddSite(spec); err != nil {
			log.Fatal(err)
		}
	}
	addSite(core.SiteSpec{Name: "home", BenchHost: bench, BenchReverse: true,
		BenchDuration: 3 * time.Second, Prefixes: prefixes(client, bench)})
	for _, r := range replicas {
		addSite(core.SiteSpec{Name: r.name, BenchHost: r.dev, Prefixes: prefixes(r.dev)})
	}
	if err := dep.Finish(); err != nil {
		log.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Sites["home"].Bench.MeasureAllParallel(3 * time.Second); err != nil {
		log.Fatal(err)
	}

	// Ask Remos which replica to use.
	m := remos.NewModelerConfig(remos.ModelerConfig{Collector: dep.Sites["home"].Master})
	var servers []netip.Addr
	byAddr := map[netip.Addr]string{}
	for _, r := range replicas {
		servers = append(servers, r.dev.Addr())
		byAddr[r.dev.Addr()] = r.name
	}
	ranks, err := m.BestServerContext(context.Background(), client.Addr(), servers, remos.FlowOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Remos ranking:")
	for i, rk := range ranks {
		fmt.Printf("  %d. %-12s %.2f Mbit/s\n", i+1, byAddr[rk.Server], rk.Bandwidth/1e6)
	}

	// Download a 3 MB file from each, best-ranked first, and report.
	fmt.Println("\ndownloading 3 MB from each replica:")
	for _, rk := range ranks {
		srv := deviceByAddr(replicas, rk.Server)
		tput, elapsed, err := n.Transfer(srv, client, 3e6, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.2f Mbit/s (%.1fs)\n", byAddr[rk.Server], tput/1e6, elapsed.Seconds())
	}
	fmt.Println("\nRemos's pick finished first — no trial and error needed.")
	_ = os.Stdout
}

func deviceByAddr(rs []replica, a netip.Addr) *netsim.Device {
	for _, r := range rs {
		if r.dev.Addr() == a {
			return r.dev
		}
	}
	return nil
}

func prefixes(devs ...*netsim.Device) []netip.Prefix {
	seen := map[netip.Prefix]bool{}
	var out []netip.Prefix
	for _, d := range devs {
		for _, ifc := range d.Ifaces() {
			if ifc.Prefix.IsValid() && !seen[ifc.Prefix] {
				seen[ifc.Prefix] = true
				out = append(out, ifc.Prefix)
			}
		}
	}
	return out
}
