// Wirelessroam: the paper's announced 802.11 collector in action — a
// wireless LAN with two access points, a laptop that roams and loses
// signal, and a wireless collector that tracks its location and
// negotiated rate so Remos answers stay truthful as the station moves.
//
// Run with: go run ./examples/wirelessroam
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/wirelesscoll"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
)

func main() {
	s := sim.NewSim()
	n := netsim.New(s)

	// Two access points on a wired distribution switch, plus a wired
	// file server the laptop talks to.
	ap1 := n.AddAccessPoint("ap-floor1")
	ap2 := n.AddAccessPoint("ap-floor2")
	dsw := n.AddSwitch("dist-sw")
	server := n.AddHost("fileserver")
	n.Connect(ap1.Dev, dsw, 1e9, time.Millisecond)
	n.Connect(ap2.Dev, dsw, 1e9, time.Millisecond)
	n.Connect(server, dsw, 1e9, time.Millisecond)

	laptop := n.AddHost("laptop")
	if _, err := ap1.Associate(laptop, -50); err != nil {
		log.Fatal(err)
	}
	n.AssignSubnets()
	n.ComputeRoutes()

	// The wireless collector manages both APs over SNMP.
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	wc := wirelesscoll.New(wirelesscoll.Config{
		Client: snmp.NewClient(&snmp.InProc{Registry: reg}, "public"),
		Sched:  s,
		APs:    []netip.Addr{ap1.Dev.ManagementAddr(), ap2.Dev.ManagementAddr()},
		OnRoam: func(mac collector.MAC, from, to netip.Addr) {
			fmt.Printf("  [collector] station %v roamed %v -> %v\n", mac, from, to)
		},
		OnRateChange: func(mac collector.MAC, ap netip.Addr, oldR, newR float64) {
			fmt.Printf("  [collector] station %v renegotiated %0.f -> %0.f Mbit/s\n",
				mac, oldR/1e6, newR/1e6)
		},
	})
	if err := wc.Start(); err != nil {
		log.Fatal(err)
	}
	defer wc.Stop()

	mac := collector.MAC(laptop.Ifaces()[0].MAC)
	report := func(when string) {
		rate, _ := wc.Rate(mac)
		ap, _ := wc.Locate(mac)
		tput, _, err := n.Transfer(laptop, server, 2e6, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s at %v, radio %0.f Mbit/s; 2MB download ran at %.1f Mbit/s\n",
			when, ap, rate/1e6, tput/1e6)
	}

	report("strong signal on floor 1:")

	// The user walks toward the stairwell: signal drops in place.
	ap1.UpdateSignal(laptop, -77)
	s.RunFor(6 * time.Second) // one monitor sweep notices
	report("weak signal on floor 1:")

	// And up to floor 2, where the signal is good again.
	ap2.Associate(laptop, -57)
	s.RunFor(6 * time.Second)
	report("after roaming to floor 2:")

	// A topology query reflects what the collector believes right now.
	res, err := wc.Collect(collector.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwireless topology as Remos reports it:")
	for _, l := range res.Graph.Links() {
		fmt.Printf("  %s <-> %s at %0.f Mbit/s\n", l.From, l.To, l.Capacity/1e6)
	}
}
