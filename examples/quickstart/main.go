// Quickstart: bring up a two-site Remos deployment on the in-repository
// network emulator and ask the questions the Remos API was built for —
// available bandwidth, topology, and multi-flow max-min answers.
//
// The emulator plays the role of the physical testbed; every query below
// goes through the real Remos components (Modeler -> Master Collector ->
// SNMP/Bridge/Benchmark collectors) exactly as it would against live
// hardware.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"remos"
	"remos/internal/core"
	"remos/internal/netsim"
	"remos/internal/sim"
)

func main() {
	// 1. An emulated internetwork: two switched LANs joined by a
	//    10 Mbit/s wide-area link.
	s := sim.NewSim()
	n := netsim.New(s)
	app := n.AddHost("app")
	peer := n.AddHost("peer")
	benchA := n.AddHost("bench-a")
	benchB := n.AddHost("bench-b")
	srv := n.AddHost("srv")
	swA, swB := n.AddSwitch("swA"), n.AddSwitch("swB")
	rA, rB := n.AddRouter("rA"), n.AddRouter("rB")
	n.Connect(app, swA, 100e6, time.Millisecond)
	n.Connect(peer, swA, 100e6, time.Millisecond)
	n.Connect(benchA, swA, 100e6, time.Millisecond)
	n.Connect(swA, rA, 1e9, time.Millisecond)
	n.Connect(rA, rB, 10e6, 40*time.Millisecond)
	n.Connect(rB, swB, 1e9, time.Millisecond)
	n.Connect(benchB, swB, 100e6, time.Millisecond)
	n.Connect(srv, swB, 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()

	// 2. A Remos deployment: one site per LAN, collectors wired, and a
	//    first benchmark round so the WAN is measured.
	dep := core.NewDeployment(s, n, core.Options{})
	_, err := dep.AddSite(core.SiteSpec{Name: "east", Switches: []*netsim.Device{swA}, BenchHost: benchA})
	must(err)
	_, err = dep.AddSite(core.SiteSpec{Name: "west", Switches: []*netsim.Device{swB}, BenchHost: benchB})
	must(err)
	must(dep.Finish())
	must(dep.MeasureAllBenchmarks())
	defer dep.Stop()

	// 3. The public API: a Modeler over the site's Master Collector.
	// (A remote deployment would use remos.Dial("tcp://host:3567")
	// instead; the query API is the same.)
	m := remos.NewModelerConfig(remos.ModelerConfig{Collector: dep.Sites["east"].Master})
	ctx := context.Background()

	bw, err := m.AvailableBandwidthContext(ctx, app.Addr(), srv.Addr())
	must(err)
	fmt.Printf("available bandwidth %s -> %s: %.2f Mbit/s\n", app.Addr(), srv.Addr(), bw/1e6)

	// Put some load on the WAN and watch the answer change once the
	// collectors measure again (benchmark results are cached between
	// rounds; SNMP utilization refreshes every 5 s poll).
	flow, err := n.StartFlow(peer, srv, netsim.FlowSpec{Demand: 4e6})
	must(err)
	s.RunFor(12 * time.Second) // let the 5s poller observe it
	must(dep.MeasureAllBenchmarks())
	bw, err = m.AvailableBandwidthContext(ctx, app.Addr(), srv.Addr())
	must(err)
	fmt.Printf("with 4 Mbit/s of background load:   %.2f Mbit/s\n", bw/1e6)
	flow.Stop()

	// A topology query, simplified the way applications see it.
	g, err := m.GetTopologyContext(ctx, []netip.Addr{app.Addr(), srv.Addr()}, remos.TopologyOptions{})
	must(err)
	fmt.Println("\nvirtual topology (simplified):")
	must(g.EncodeText(os.Stdout))
	fmt.Println()

	// A two-flow query: both flows share the WAN max-min fairly.
	infos, err := m.GetFlowsContext(ctx, []remos.Flow{
		{Src: app.Addr(), Dst: srv.Addr()},
		{Src: peer.Addr(), Dst: srv.Addr()},
	}, remos.FlowOptions{})
	must(err)
	for _, inf := range infos {
		fmt.Printf("flow %s -> %s: %.2f Mbit/s over %d hops (latency %v)\n",
			inf.Flow.Src, inf.Flow.Dst, inf.Available/1e6, len(inf.Path)-1, inf.Latency)
	}
}

func must(err error) {
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
