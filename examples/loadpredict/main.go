// Loadpredict: the RPS side of Remos — fit the paper's AR(16) model to a
// host load signal, run it as a streaming predictor fed by a periodic
// sensor, and show the error-variance reduction and honest self-reported
// error bars that Section 5.3 highlights.
//
// Run with: go run ./examples/loadpredict
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"remos"
	"remos/internal/hostload"
	"remos/internal/rps"
	"remos/internal/sim"
)

func main() {
	gen := hostload.NewGenerator(hostload.Config{Seed: 9})

	// Fit the models the paper compares on 600 history samples.
	train := gen.Trace(600)
	specs := []string{"MEAN", "LAST", "BM(32)", "AR(16)"}
	models := map[string]rps.Model{}
	for _, spec := range specs {
		fitter, err := remos.ParsePredictor(spec)
		if err != nil {
			log.Fatal(err)
		}
		m, err := fitter.Fit(train)
		if err != nil {
			log.Fatal(err)
		}
		models[spec] = m
	}

	// Drive all models with the same live signal and score one-step
	// predictions.
	const nTest = 4000
	sqErr := map[string]float64{}
	var mean, varAcc float64
	samples := gen.Trace(nTest)
	for _, x := range samples {
		mean += x
	}
	mean /= nTest
	for _, x := range samples {
		varAcc += (x - mean) * (x - mean)
		for spec, m := range models {
			p := m.Predict(1)
			d := x - p.Values[0]
			sqErr[spec] += d * d
			m.Step(x)
		}
	}
	signalVar := varAcc / nTest

	fmt.Printf("host load signal variance: %.4f\n\n", signalVar)
	fmt.Printf("%-8s %12s %22s\n", "model", "1-step MSE", "error-variance cut")
	for _, spec := range specs {
		mse := sqErr[spec] / nTest
		fmt.Printf("%-8s %12.4f %21.0f%%\n", spec, mse, 100*(1-mse/signalVar))
	}
	fmt.Println("\n(the paper reports AR(16) one-step error variance ~70% below signal variance)")

	// The streaming service: a sensor samples the host at 1 Hz and the
	// predictor fans fresh 30-step forecasts out to subscribers.
	s := sim.NewSim()
	fitter, _ := remos.ParsePredictor("AR(16)")
	m, err := fitter.Fit(gen.Trace(600))
	if err != nil {
		log.Fatal(err)
	}
	stream := rps.NewStream(m, 30)
	ch, cancel := stream.Subscribe(8)
	defer cancel()
	sensor := hostload.StartSensor(s, time.Second, gen.Next, stream)
	defer sensor.Stop()
	s.RunFor(5 * time.Second)

	fmt.Println("\nstreaming predictor after 5 sensor samples; latest 30-step forecast:")
	var last remos.Prediction
	for len(ch) > 0 {
		last = <-ch
	}
	for _, h := range []int{1, 5, 15, 30} {
		fmt.Printf("  t+%2d: load %.3f ± %.3f\n", h, last.Values[h-1], math.Sqrt(last.ErrVar[h-1]))
	}
	fmt.Println("\nerror bars widen with horizon — RPS characterizes its own uncertainty.")
}
