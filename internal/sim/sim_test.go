package sim

import (
	"sync"
	"testing"
	"time"
)

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim()
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), Epoch)
	}
}

func TestSimAtRunsInOrder(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(Epoch.Add(3*time.Second), func() { order = append(order, 3) })
	s.At(Epoch.Add(1*time.Second), func() { order = append(order, 1) })
	s.At(Epoch.Add(2*time.Second), func() { order = append(order, 2) })
	s.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
	if got := s.Now(); !got.Equal(Epoch.Add(3 * time.Second)) {
		t.Fatalf("clock = %v, want epoch+3s", got)
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	at := Epoch.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of schedule order: %v", order)
		}
	}
}

func TestSimPastEventRunsImmediately(t *testing.T) {
	s := NewSim()
	ran := false
	s.At(Epoch.Add(-time.Hour), func() { ran = true })
	if !s.Step() || !ran {
		t.Fatal("past-dated event did not run")
	}
	if !s.Now().Equal(Epoch) {
		t.Fatalf("past event moved clock backwards to %v", s.Now())
	}
}

func TestSimAfter(t *testing.T) {
	s := NewSim()
	var at time.Time
	s.After(90*time.Second, func() { at = s.Now() })
	s.Drain(0)
	if want := Epoch.Add(90 * time.Second); !at.Equal(want) {
		t.Fatalf("After fired at %v, want %v", at, want)
	}
}

func TestSimEveryRepeatsAndStops(t *testing.T) {
	s := NewSim()
	count := 0
	var tm *Timer
	tm = s.Every(time.Second, func() {
		count++
		if count == 4 {
			tm.Stop()
		}
	})
	s.RunFor(time.Minute)
	if count != 4 {
		t.Fatalf("Every fired %d times, want 4 (stopped after 4th)", count)
	}
	if got := s.Now(); !got.Equal(Epoch.Add(time.Minute)) {
		t.Fatalf("RunFor left clock at %v", got)
	}
}

func TestSimTimerStopBeforeFire(t *testing.T) {
	s := NewSim()
	ran := false
	tm := s.After(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true; Stop must be idempotent")
	}
	s.Drain(0)
	if ran {
		t.Fatal("stopped timer still fired")
	}
}

func TestSimRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := NewSim()
	deadline := Epoch.Add(10 * time.Minute)
	if n := s.RunUntil(deadline); n != 0 {
		t.Fatalf("RunUntil ran %d events on empty queue", n)
	}
	if !s.Now().Equal(deadline) {
		t.Fatalf("clock = %v, want %v", s.Now(), deadline)
	}
}

func TestSimRunUntilStopsAtDeadline(t *testing.T) {
	s := NewSim()
	ran := false
	s.After(2*time.Hour, func() { ran = true })
	s.RunUntil(Epoch.Add(time.Hour))
	if ran {
		t.Fatal("event beyond deadline ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(2 * time.Hour)
	if !ran {
		t.Fatal("event never ran after extending the run window")
	}
}

func TestSimEventScheduledByEventRunsSameDrain(t *testing.T) {
	s := NewSim()
	var hits []string
	s.After(time.Second, func() {
		hits = append(hits, "outer")
		s.After(time.Second, func() { hits = append(hits, "inner") })
	})
	s.RunFor(5 * time.Second)
	if len(hits) != 2 || hits[1] != "inner" {
		t.Fatalf("hits = %v, want [outer inner]", hits)
	}
}

func TestSimConcurrentScheduling(t *testing.T) {
	s := NewSim()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.After(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	s.Drain(0)
	if count != 50 {
		t.Fatalf("ran %d events, want 50", count)
	}
}

func TestRealAfterFires(t *testing.T) {
	var r Real
	done := make(chan struct{})
	r.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestRealEveryStops(t *testing.T) {
	var r Real
	var mu sync.Mutex
	count := 0
	tm := r.Every(time.Millisecond, func() {
		mu.Lock()
		count++
		mu.Unlock()
	})
	time.Sleep(20 * time.Millisecond)
	tm.Stop()
	mu.Lock()
	after := count
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	final := count
	mu.Unlock()
	if after == 0 {
		t.Fatal("Real.Every never fired")
	}
	// Allow one in-flight tick after Stop, but no continuing series.
	if final > after+1 {
		t.Fatalf("ticker kept firing after Stop: %d -> %d", after, final)
	}
}

func TestRealAtPastRunsSoon(t *testing.T) {
	var r Real
	done := make(chan struct{})
	r.At(time.Now().Add(-time.Hour), func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.At with past deadline never fired")
	}
}

func TestSimDrainLimit(t *testing.T) {
	s := NewSim()
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Second, func() {})
	}
	if n := s.Drain(3); n != 3 {
		t.Fatalf("Drain(3) ran %d", n)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
}
