// Package sim provides the notion of time used throughout Remos: a
// Scheduler that can either be a deterministic discrete-event simulation
// clock (Sim) or a thin wrapper over the real runtime clock (Real).
//
// Every Remos component that polls, waits, or timestamps measurements takes
// a Scheduler. In experiments, time is simulated so a thousand-node campus
// network and minutes of polling run in milliseconds and are bit
// reproducible. In live deployments (cmd/remosd) the same components run
// against real timers without modification.
package sim

import (
	"container/heap"
	"sync"
	"time"
)

// Scheduler is the clock and timer service shared by all components.
//
// Implementations must be safe for concurrent use. Callbacks run without
// any locks held by the scheduler, but the Sim implementation runs all
// callbacks on the goroutine that calls Run/Step, which gives simulated
// deployments a simple single-threaded execution model.
type Scheduler interface {
	// Now returns the current time on this scheduler's clock.
	Now() time.Time

	// At schedules fn to run when the clock reaches t. If t is not after
	// Now, fn runs at the next opportunity. The returned Timer can cancel
	// the callback before it fires.
	At(t time.Time, fn func()) *Timer

	// After schedules fn to run d from now.
	After(d time.Duration, fn func()) *Timer

	// Every schedules fn to run every d, first firing d from now.
	// Stop the returned Timer to cancel the series.
	Every(d time.Duration, fn func()) *Timer
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	mu      sync.Mutex
	stopped bool
	// cancel releases implementation resources; may be nil.
	cancel func()
}

// Stop cancels the timer. It is idempotent and reports whether this call
// was the one that stopped it.
func (t *Timer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	if t.cancel != nil {
		t.cancel()
	}
	return true
}

func (t *Timer) isStopped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stopped
}

// event is one pending callback in the simulated timeline.
type event struct {
	at    time.Time
	seq   uint64 // tie-break so same-time events run in schedule order
	fn    func()
	timer *Timer
	index int // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulated clock. The zero value is not usable;
// construct with NewSim.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	events eventHeap
}

// Epoch is the default start time of simulated clocks: an arbitrary fixed
// instant so simulated timestamps are stable across runs.
var Epoch = time.Date(2001, time.June, 18, 9, 0, 0, 0, time.UTC)

// NewSim returns a simulated scheduler starting at Epoch.
func NewSim() *Sim { return NewSimAt(Epoch) }

// NewSimAt returns a simulated scheduler starting at the given instant.
func NewSimAt(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// At schedules fn at simulated time t.
func (s *Sim) At(t time.Time, fn func()) *Timer {
	tm := &Timer{}
	s.mu.Lock()
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn, timer: tm}
	heap.Push(&s.events, e)
	s.mu.Unlock()
	return tm
}

// After schedules fn to run d after the current simulated time.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.Now().Add(d), fn)
}

// Every schedules fn every d of simulated time.
func (s *Sim) Every(d time.Duration, fn func()) *Timer {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	tm := &Timer{}
	var schedule func(at time.Time)
	schedule = func(at time.Time) {
		s.mu.Lock()
		s.seq++
		e := &event{at: at, seq: s.seq, timer: tm}
		e.fn = func() {
			fn()
			if !tm.isStopped() {
				schedule(at.Add(d))
			}
		}
		heap.Push(&s.events, e)
		s.mu.Unlock()
	}
	schedule(s.Now().Add(d))
	return tm
}

// Step runs the single earliest pending event, advancing the clock to its
// deadline. It reports whether an event was run.
func (s *Sim) Step() bool {
	for {
		s.mu.Lock()
		if len(s.events) == 0 {
			s.mu.Unlock()
			return false
		}
		e := heap.Pop(&s.events).(*event)
		if e.at.After(s.now) {
			s.now = e.at
		}
		s.mu.Unlock()
		if e.timer.isStopped() {
			continue // cancelled; try the next event
		}
		e.fn()
		return true
	}
}

// RunUntil processes events in time order until the queue is empty or the
// next event is after deadline; the clock is then set to deadline if that
// is later than the current time. It returns the number of events run.
func (s *Sim) RunUntil(deadline time.Time) int {
	n := 0
	for {
		s.mu.Lock()
		if len(s.events) == 0 || s.events[0].at.After(deadline) {
			if deadline.After(s.now) {
				s.now = deadline
			}
			s.mu.Unlock()
			return n
		}
		e := heap.Pop(&s.events).(*event)
		if e.at.After(s.now) {
			s.now = e.at
		}
		s.mu.Unlock()
		if e.timer.isStopped() {
			continue
		}
		e.fn()
		n++
	}
}

// RunFor advances the simulation by d, processing all events due in that
// window, and returns the number of events run.
func (s *Sim) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// Drain runs events until none remain or limit events have run. It returns
// the number of events run. A limit <= 0 means no limit.
func (s *Sim) Drain(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// Pending returns the number of scheduled (possibly cancelled) events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// RunRealTime advances the simulated clock in step with the wall clock
// until stop is closed: every resolution of real time, the simulation is
// advanced by the same amount. This lets an emulated deployment serve
// live clients (cmd/remosd): collectors poll, flows progress, and
// counters advance at wall-clock pace.
func (s *Sim) RunRealTime(resolution time.Duration, stop <-chan struct{}) {
	if resolution <= 0 {
		resolution = 50 * time.Millisecond
	}
	ticker := time.NewTicker(resolution)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			dt := now.Sub(last)
			last = now
			if dt > 0 {
				s.RunFor(dt)
			}
		}
	}
}

// Real is a Scheduler backed by the runtime clock, for live deployments.
type Real struct{}

// Now returns the wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// At schedules fn on the real clock.
func (r Real) At(t time.Time, fn func()) *Timer {
	return r.After(time.Until(t), fn)
}

// After schedules fn after real duration d.
func (Real) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	tm := &Timer{}
	at := time.AfterFunc(d, func() {
		if !tm.isStopped() {
			fn()
		}
	})
	tm.cancel = func() { at.Stop() }
	return tm
}

// Every schedules fn on a real ticker of period d.
func (Real) Every(d time.Duration, fn func()) *Timer {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	tm := &Timer{}
	ticker := time.NewTicker(d)
	done := make(chan struct{})
	tm.cancel = func() {
		ticker.Stop()
		close(done)
	}
	go func() {
		for {
			select {
			case <-ticker.C:
				if !tm.isStopped() {
					fn()
				}
			case <-done:
				return
			}
		}
	}()
	return tm
}
