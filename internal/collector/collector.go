// Package collector defines the query/result contract every Remos
// collector implements — SNMP, Bridge, Benchmark, and Master collectors
// all answer the same Collect call — plus the measurement-history store
// they share. Collectors "exist only to obtain network resource
// information" (Section 2.2); interpretation is the Modeler's job.
package collector

import (
	"context"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/topology"
)

// Query asks a collector for the network state among a set of hosts.
type Query struct {
	// Hosts are the endpoint addresses the application cares about.
	Hosts []netip.Addr

	// WithHistory requests per-link measurement history in the result,
	// the capability the paper's XML-protocol transition adds so the
	// Modeler can drive RPS predictions from collector-side history.
	WithHistory bool

	// WithPredictions requests collector-side streaming predictions
	// per link — the paper's Section 2.3 alternative where "a single
	// model fitting operation can be amortized over multiple
	// predictions" and shared between consumers. Collectors without
	// streaming predictors simply return none.
	WithPredictions bool

	// ctx carries the caller's cancellation and the query's trace. It is
	// carried http.Request-style — unexported, accessed via Context and
	// WithContext — so the Collect signature shared by every collector
	// stays unchanged while cancellation still reaches the fan-out and
	// SNMP layers.
	ctx context.Context
}

// Context returns the query's context, never nil.
func (q Query) Context() context.Context {
	if q.ctx != nil {
		return q.ctx
	}
	return context.Background()
}

// WithContext returns a copy of the query carrying ctx. Collectors that
// fan out or wait on the wire consult it for cancellation; the per-query
// trace (package obs) also travels in it.
func (q Query) WithContext(ctx context.Context) Query {
	q.ctx = ctx
	return q
}

// Forecast is a collector-side streaming prediction for one directed
// link: expected utilization (bits/s) for horizons 1..len(Values), with
// the model's own error variance per horizon.
type Forecast struct {
	Values []float64
	ErrVar []float64
}

// HistKey identifies one measured quantity: utilization of the directed
// link From -> To (node IDs as in the result graph).
type HistKey struct {
	From, To string
}

// Sample is one timestamped bandwidth measurement in bits per second.
type Sample struct {
	T    time.Time
	Bits float64
}

// Result is a collector's answer: an annotated virtual topology plus,
// when requested, measurement history and streaming predictions for its
// links.
type Result struct {
	Graph       *topology.Graph
	History     map[HistKey][]Sample
	Predictions map[HistKey]Forecast
}

// Clone returns a deep copy of the result, so a cached answer can be
// handed to multiple consumers without sharing mutable state.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := &Result{}
	if r.Graph != nil {
		out.Graph = r.Graph.Clone()
	}
	if r.History != nil {
		out.History = make(map[HistKey][]Sample, len(r.History))
		for k, v := range r.History {
			out.History[k] = append([]Sample(nil), v...)
		}
	}
	if r.Predictions != nil {
		out.Predictions = make(map[HistKey]Forecast, len(r.Predictions))
		for k, v := range r.Predictions {
			out.Predictions[k] = Forecast{
				Values: append([]float64(nil), v.Values...),
				ErrVar: append([]float64(nil), v.ErrVar...),
			}
		}
	}
	return out
}

// Interface is implemented by every collector, local or remote. Collect
// must be safe for concurrent callers.
type Interface interface {
	// Name identifies the collector for diagnostics.
	Name() string
	// Collect answers a query about the collector's portion of the
	// network.
	Collect(q Query) (*Result, error)
}

// History is a bounded per-key store of measurement samples. Collectors
// "maintain history information for each component they monitor". It is
// safe for concurrent use.
type History struct {
	mu   sync.Mutex
	cap  int
	data map[HistKey][]Sample
}

// NewHistory creates a store keeping up to capPerKey samples per key
// (default 512).
func NewHistory(capPerKey int) *History {
	if capPerKey <= 0 {
		capPerKey = 512
	}
	return &History{cap: capPerKey, data: make(map[HistKey][]Sample)}
}

// Add appends a sample, evicting the oldest beyond capacity.
func (h *History) Add(k HistKey, s Sample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buf := append(h.data[k], s)
	if len(buf) > h.cap {
		buf = buf[len(buf)-h.cap:]
	}
	h.data[k] = buf
}

// Get returns a copy of the samples for a key, oldest first.
func (h *History) Get(k HistKey) []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Sample(nil), h.data[k]...)
}

// Latest returns the most recent sample for the key.
func (h *History) Latest(k HistKey) (Sample, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buf := h.data[k]
	if len(buf) == 0 {
		return Sample{}, false
	}
	return buf[len(buf)-1], true
}

// Keys returns all keys in deterministic order.
func (h *History) Keys() []HistKey {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistKey, 0, len(h.data))
	for k := range h.data {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Snapshot copies the whole store (for query results).
func (h *History) Snapshot() map[HistKey][]Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[HistKey][]Sample, len(h.data))
	for k, v := range h.data {
		out[k] = append([]Sample(nil), v...)
	}
	return out
}

// Values extracts just the measurement values of a sample slice, the form
// RPS fitters consume.
func Values(ss []Sample) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = s.Bits
	}
	return out
}
