package collector

import (
	"fmt"

	"remos/internal/snmp"
)

// MAC is a 48-bit station address as collectors see it in Bridge-MIB
// forwarding tables.
type MAC [6]byte

// String formats the address as colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// OIDSuffix returns the six sub-identifiers indexing this MAC in
// dot1dTpFdb tables.
func (m MAC) OIDSuffix() []uint32 {
	return []uint32{uint32(m[0]), uint32(m[1]), uint32(m[2]), uint32(m[3]), uint32(m[4]), uint32(m[5])}
}

// MACFromOID recovers a MAC from the last six sub-identifiers of a
// dot1dTpFdb row OID.
func MACFromOID(o snmp.OID) (MAC, bool) {
	if len(o) < 6 {
		return MAC{}, false
	}
	var m MAC
	for i := 0; i < 6; i++ {
		v := o[len(o)-6+i]
		if v > 0xff {
			return MAC{}, false
		}
		m[i] = byte(v)
	}
	return m, true
}

// MACFromBytes converts a 6-byte slice (dot1dTpFdbAddress value) to a MAC.
func MACFromBytes(b []byte) (MAC, bool) {
	if len(b) != 6 {
		return MAC{}, false
	}
	var m MAC
	copy(m[:], b)
	return m, true
}
