package master

import (
	"context"
	"errors"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/rerr"
)

// blockingFake parks every Collect on the query's context.
type blockingFake struct {
	name    string
	entered chan struct{}
}

func (b *blockingFake) Name() string { return b.name }
func (b *blockingFake) Collect(q collector.Query) (*collector.Result, error) {
	b.entered <- struct{}{}
	<-q.Context().Done()
	return nil, q.Context().Err()
}

func TestCancellationMidFanout(t *testing.T) {
	// Two sites, both blocking: cancellation must reach every in-flight
	// sub-query and Collect must return the caller's error, not a
	// collector-unavailable classification.
	siteA := &blockingFake{name: "snmp-a", entered: make(chan struct{}, 1)}
	siteB := &blockingFake{name: "snmp-b", entered: make(chan struct{}, 1)}
	m := New(Config{
		Name: "master-a",
		Entries: []Entry{
			{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}, Collector: siteA, BenchHost: addr("10.0.1.9")},
			{Name: "b", Prefixes: []netip.Prefix{pfx("10.0.2.0/24")}, Collector: siteB, BenchHost: addr("10.0.2.9")},
		},
		WideArea: &fake{name: "bench", results: func(q collector.Query) (*collector.Result, error) {
			return lineGraph("10.0.1.9", "10.0.2.9"), nil
		}},
		Parallelism: 4,
	})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		q := collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}}
		_, err := m.Collect(q.WithContext(ctx))
		done <- err
	}()
	// Both site sub-queries are in flight before the cancel fires.
	<-siteA.entered
	<-siteB.entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if errors.Is(err, rerr.ErrCollectorUnavailable) {
			t.Fatalf("caller cancellation misclassified as collector failure: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out did not unwind after cancellation")
	}

	// Every fan-out goroutine must unwind; allow the runtime a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancellation: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPreCanceledQueryShortCircuits(t *testing.T) {
	siteA := &fake{name: "snmp-a", results: func(q collector.Query) (*collector.Result, error) {
		t.Error("sub-collector reached despite pre-canceled context")
		return lineGraph("10.0.1.1"), nil
	}}
	m := New(Config{
		Name: "master-a",
		Entries: []Entry{
			{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}, Collector: siteA},
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := collector.Query{Hosts: []netip.Addr{addr("10.0.1.1")}}
	_, err := m.Collect(q.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
