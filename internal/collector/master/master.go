// Package master implements the Remos Master Collector (Section 3.1.4):
// it keeps a directory of collectors and the network prefixes each is
// responsible for, splits an application query into per-site sub-queries
// plus a wide-area benchmark query, fans them out, and coalesces the
// responses into one topology "without revealing that the response was
// obtained from multiple collectors". A Master is itself a collector, so
// masters compose hierarchically — a remote collector may be another
// Master.
//
// The fan-out is concurrent: per-site sub-queries and the wide-area
// benchmark query run in parallel under a bounded worker pool
// (Config.Parallelism), and the responses are merged in sorted site order
// so the coalesced answer is byte-identical to the serial path no matter
// which sub-query lands first.
package master

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"

	"remos/internal/collector"
	"remos/internal/conc"
	"remos/internal/obs"
	"remos/internal/rerr"
	"remos/internal/topology"
)

// Entry is one directory row: a collector and its responsibility. The
// directory plays the role the paper assigns to an SLP-like service.
type Entry struct {
	// Name identifies the site.
	Name string
	// Prefixes are the networks this collector is responsible for.
	Prefixes []netip.Prefix
	// Collector answers queries about those networks (an SNMP
	// collector, or a remote Master reached through the protocol).
	Collector collector.Interface
	// BenchHost is the site's benchmark endpoint, included in sub-
	// queries so inter-site answers join up with intra-site topology.
	BenchHost netip.Addr
}

// Directory supplies the master's entries dynamically — the SLP-style
// lookup of Section 3.1.4. When set, the static Entries are ignored and
// every query consults the directory, so collectors registering or
// expiring take effect without reconfiguration. Implemented by
// *directory.Service via master.FromDirectory.
type Directory interface {
	// Entries returns the current directory contents.
	Entries() ([]Entry, error)
}

// Config configures a Master Collector.
type Config struct {
	Name    string
	Entries []Entry
	// Directory, when non-nil, overrides Entries per query.
	Directory Directory
	// WideArea answers queries between sites — normally the local
	// Benchmark Collector. Optional for single-site deployments.
	WideArea collector.Interface
	// Parallelism bounds how many sub-queries (per-site plus wide-area)
	// run concurrently during fan-out. 0 selects GOMAXPROCS; 1 restores
	// the fully serial path. The merged result is identical either way.
	Parallelism int
	// Obs, when set, receives fan-out metrics. Nil disables.
	Obs *obs.Registry
}

// Master is a Master Collector.
type Master struct {
	cfg Config
	// served counts queries, for diagnostics. Atomic so the stats path
	// never contends with concurrent Collect calls.
	served atomic.Int64

	mQueries    *obs.Counter
	mSubQueries *obs.Counter
	mErrors     *obs.Counter
}

// New builds a Master Collector.
func New(cfg Config) *Master {
	m := &Master{cfg: cfg}
	m.mQueries = cfg.Obs.Counter("remos_master_queries_total",
		"queries answered by the master collector")
	m.mSubQueries = cfg.Obs.Counter("remos_master_subqueries_total",
		"sub-queries fanned out to site and wide-area collectors")
	m.mErrors = cfg.Obs.Counter("remos_master_errors_total",
		"master queries that failed")
	return m
}

// Name implements collector.Interface.
func (m *Master) Name() string {
	if m.cfg.Name != "" {
		return m.cfg.Name
	}
	return "master"
}

// Prefixes returns the union of the directory's prefixes, so a Master can
// itself be registered as an Entry of a higher-level Master. On directory
// failure it falls back to the static Entries; use PrefixesErr to observe
// the error.
func (m *Master) Prefixes() []netip.Prefix {
	ps, _ := m.PrefixesErr()
	return ps
}

// PrefixesErr returns the union of the directory's prefixes along with
// any directory error. A failing directory does not silently look like an
// empty one: the static Entries still contribute their prefixes, and the
// error reports what went wrong.
func (m *Master) PrefixesErr() ([]netip.Prefix, error) {
	entries, err := m.entries()
	if err != nil {
		// Degrade to the static configuration rather than reporting an
		// empty responsibility.
		entries = m.cfg.Entries
		err = fmt.Errorf("master: directory lookup: %w", err)
	}
	var out []netip.Prefix
	for _, e := range entries {
		out = append(out, e.Prefixes...)
	}
	return out, err
}

// entries resolves the current directory contents.
func (m *Master) entries() ([]Entry, error) {
	if m.cfg.Directory != nil {
		return m.cfg.Directory.Entries()
	}
	return m.cfg.Entries, nil
}

// entryFor finds the directory entry responsible for an address.
func entryFor(entries []Entry, h netip.Addr) (*Entry, bool) {
	best := -1
	var found *Entry
	for i := range entries {
		e := &entries[i]
		for _, p := range e.Prefixes {
			if p.Contains(h) && p.Bits() > best {
				best = p.Bits()
				found = e
			}
		}
	}
	return found, found != nil
}

// Collect implements collector.Interface. It is safe for concurrent
// callers; each call fans its sub-queries out in parallel (bounded by
// Config.Parallelism) and merges the responses in sorted site order
// followed by the wide-area answer, so the coalesced graph does not
// depend on sub-query completion order.
func (m *Master) Collect(q collector.Query) (res *collector.Result, err error) {
	ctx := q.Context()
	tr := obs.FromContext(ctx)
	if len(q.Hosts) == 0 {
		return nil, fmt.Errorf("master: empty query")
	}
	m.served.Add(1)
	m.mQueries.Inc()
	defer func() {
		if err != nil {
			m.mErrors.Inc()
		}
	}()

	// "The first task for the Master Collector is identifying the IP
	// networks and subnets needed to answer the query, along with the
	// associated collectors."
	all, err := m.entries()
	if err != nil {
		return nil, fmt.Errorf("master: directory lookup: %w", err)
	}
	groups := make(map[string][]netip.Addr)
	grouped := make(map[string]map[netip.Addr]bool) // set view of groups
	entries := make(map[string]*Entry)
	for _, h := range q.Hosts {
		e, ok := entryFor(all, h)
		if !ok {
			return nil, rerr.Tagf(rerr.ErrUnknownHost, "master: no collector is responsible for %v", h)
		}
		set := grouped[e.Name]
		if set == nil {
			set = make(map[netip.Addr]bool)
			grouped[e.Name] = set
			entries[e.Name] = e
		}
		if !set[h] {
			set[h] = true
			groups[e.Name] = append(groups[e.Name], h)
		}
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)

	multiSite := len(names) > 1

	// Build the sub-query list: one per site in sorted order, plus (for
	// multi-site queries) the wide-area benchmark query in the final
	// slot. Everything fans out together; the slot index fixes the merge
	// order afterwards.
	type subQuery struct {
		coll  collector.Interface
		hosts []netip.Addr
		label string
	}
	subs := make([]subQuery, 0, len(names)+1)
	for _, name := range names {
		e := entries[name]
		hosts := groups[name]
		if multiSite && e.BenchHost.IsValid() && !grouped[name][e.BenchHost] {
			// Join point: the site's benchmark endpoint.
			hosts = append(hosts, e.BenchHost)
		}
		subs = append(subs, subQuery{coll: e.Collector, hosts: hosts, label: "collector " + e.Collector.Name()})
	}
	if multiSite {
		if m.cfg.WideArea == nil {
			return nil, fmt.Errorf("master: query spans %d sites but no wide-area collector is configured", len(names))
		}
		var benchHosts []netip.Addr
		for _, name := range names {
			if e := entries[name]; e.BenchHost.IsValid() {
				benchHosts = append(benchHosts, e.BenchHost)
			}
		}
		subs = append(subs, subQuery{coll: m.cfg.WideArea, hosts: benchHosts, label: "wide-area collector"})
	}

	results := make([]*collector.Result, len(subs))
	fanout := tr.Start("fanout")
	m.mSubQueries.Add(int64(len(subs)))
	err = conc.ForEachCtx(ctx, len(subs), m.cfg.Parallelism, func(i int) error {
		sp := tr.Start("sub:" + subs[i].label)
		sub, err := subs[i].coll.Collect(collector.Query{
			Hosts: subs[i].hosts, WithHistory: q.WithHistory, WithPredictions: q.WithPredictions,
		}.WithContext(ctx))
		if err != nil {
			sp.EndDetail(err.Error())
			// A failing sub-collector (unless the failure is the caller's
			// own cancellation) is the UNAVAILABLE class: the master is
			// fine, a site it depends on is not.
			err = fmt.Errorf("master: %s: %w", subs[i].label, err)
			if ctx.Err() == nil {
				err = rerr.Tag(err, rerr.ErrCollectorUnavailable)
			}
			return err
		}
		sp.EndDetail(fmt.Sprintf("%d hosts", len(subs[i].hosts)))
		results[i] = sub
		return nil
	})
	if err != nil {
		fanout.EndDetail(err.Error())
		return nil, err
	}
	fanout.EndDetail(fmt.Sprintf("%d sub-queries", len(subs)))

	// Deterministic coalescing: sites in sorted name order, wide-area
	// last — the same order the serial implementation used.
	sp := tr.Start("merge")
	merged := topology.NewGraph()
	history := make(map[collector.HistKey][]collector.Sample)
	forecasts := make(map[collector.HistKey]collector.Forecast)
	for _, sub := range results {
		merged.Merge(sub.Graph)
		for k, v := range sub.History {
			history[k] = v
		}
		for k, v := range sub.Predictions {
			forecasts[k] = v
		}
	}

	sp.End()
	res = &collector.Result{Graph: merged}
	if q.WithHistory {
		res.History = history
	}
	if q.WithPredictions {
		res.Predictions = forecasts
	}
	return res, nil
}

// Served returns how many queries the master has answered.
func (m *Master) Served() int { return int(m.served.Load()) }
