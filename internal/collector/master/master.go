// Package master implements the Remos Master Collector (Section 3.1.4):
// it keeps a directory of collectors and the network prefixes each is
// responsible for, splits an application query into per-site sub-queries
// plus a wide-area benchmark query, fans them out, and coalesces the
// responses into one topology "without revealing that the response was
// obtained from multiple collectors". A Master is itself a collector, so
// masters compose hierarchically — a remote collector may be another
// Master.
package master

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"remos/internal/collector"
	"remos/internal/topology"
)

// Entry is one directory row: a collector and its responsibility. The
// directory plays the role the paper assigns to an SLP-like service.
type Entry struct {
	// Name identifies the site.
	Name string
	// Prefixes are the networks this collector is responsible for.
	Prefixes []netip.Prefix
	// Collector answers queries about those networks (an SNMP
	// collector, or a remote Master reached through the protocol).
	Collector collector.Interface
	// BenchHost is the site's benchmark endpoint, included in sub-
	// queries so inter-site answers join up with intra-site topology.
	BenchHost netip.Addr
}

// Directory supplies the master's entries dynamically — the SLP-style
// lookup of Section 3.1.4. When set, the static Entries are ignored and
// every query consults the directory, so collectors registering or
// expiring take effect without reconfiguration. Implemented by
// *directory.Service via master.FromDirectory.
type Directory interface {
	// Entries returns the current directory contents.
	Entries() ([]Entry, error)
}

// Config configures a Master Collector.
type Config struct {
	Name    string
	Entries []Entry
	// Directory, when non-nil, overrides Entries per query.
	Directory Directory
	// WideArea answers queries between sites — normally the local
	// Benchmark Collector. Optional for single-site deployments.
	WideArea collector.Interface
}

// Master is a Master Collector.
type Master struct {
	cfg Config
	mu  sync.Mutex
	// served counts queries, for diagnostics.
	served int
}

// New builds a Master Collector.
func New(cfg Config) *Master { return &Master{cfg: cfg} }

// Name implements collector.Interface.
func (m *Master) Name() string {
	if m.cfg.Name != "" {
		return m.cfg.Name
	}
	return "master"
}

// Prefixes returns the union of the directory's prefixes, so a Master can
// itself be registered as an Entry of a higher-level Master.
func (m *Master) Prefixes() []netip.Prefix {
	entries, err := m.entries()
	if err != nil {
		return nil
	}
	var out []netip.Prefix
	for _, e := range entries {
		out = append(out, e.Prefixes...)
	}
	return out
}

// entries resolves the current directory contents.
func (m *Master) entries() ([]Entry, error) {
	if m.cfg.Directory != nil {
		return m.cfg.Directory.Entries()
	}
	return m.cfg.Entries, nil
}

// entryFor finds the directory entry responsible for an address.
func entryFor(entries []Entry, h netip.Addr) (*Entry, bool) {
	best := -1
	var found *Entry
	for i := range entries {
		e := &entries[i]
		for _, p := range e.Prefixes {
			if p.Contains(h) && p.Bits() > best {
				best = p.Bits()
				found = e
			}
		}
	}
	return found, found != nil
}

// Collect implements collector.Interface.
func (m *Master) Collect(q collector.Query) (*collector.Result, error) {
	if len(q.Hosts) == 0 {
		return nil, fmt.Errorf("master: empty query")
	}
	m.mu.Lock()
	m.served++
	m.mu.Unlock()

	// "The first task for the Master Collector is identifying the IP
	// networks and subnets needed to answer the query, along with the
	// associated collectors."
	all, err := m.entries()
	if err != nil {
		return nil, fmt.Errorf("master: directory lookup: %w", err)
	}
	groups := make(map[string][]netip.Addr)
	entries := make(map[string]*Entry)
	for _, h := range q.Hosts {
		e, ok := entryFor(all, h)
		if !ok {
			return nil, fmt.Errorf("master: no collector is responsible for %v", h)
		}
		groups[e.Name] = append(groups[e.Name], h)
		entries[e.Name] = e
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)

	multiSite := len(names) > 1
	merged := topology.NewGraph()
	history := make(map[collector.HistKey][]collector.Sample)
	forecasts := make(map[collector.HistKey]collector.Forecast)

	for _, name := range names {
		e := entries[name]
		hosts := groups[name]
		if multiSite && e.BenchHost.IsValid() {
			// Join point: the site's benchmark endpoint.
			hosts = appendUnique(hosts, e.BenchHost)
		}
		sub, err := e.Collector.Collect(collector.Query{
			Hosts: hosts, WithHistory: q.WithHistory, WithPredictions: q.WithPredictions,
		})
		if err != nil {
			return nil, fmt.Errorf("master: collector %s: %w", e.Collector.Name(), err)
		}
		merged.Merge(sub.Graph)
		for k, v := range sub.History {
			history[k] = v
		}
		for k, v := range sub.Predictions {
			forecasts[k] = v
		}
	}

	if multiSite {
		if m.cfg.WideArea == nil {
			return nil, fmt.Errorf("master: query spans %d sites but no wide-area collector is configured", len(names))
		}
		var benchHosts []netip.Addr
		for _, name := range names {
			if e := entries[name]; e.BenchHost.IsValid() {
				benchHosts = append(benchHosts, e.BenchHost)
			}
		}
		wa, err := m.cfg.WideArea.Collect(collector.Query{
			Hosts: benchHosts, WithHistory: q.WithHistory, WithPredictions: q.WithPredictions,
		})
		if err != nil {
			return nil, fmt.Errorf("master: wide-area collector: %w", err)
		}
		merged.Merge(wa.Graph)
		for k, v := range wa.History {
			history[k] = v
		}
		for k, v := range wa.Predictions {
			forecasts[k] = v
		}
	}

	res := &collector.Result{Graph: merged}
	if q.WithHistory {
		res.History = history
	}
	if q.WithPredictions {
		res.Predictions = forecasts
	}
	return res, nil
}

// Served returns how many queries the master has answered.
func (m *Master) Served() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.served
}

func appendUnique(hs []netip.Addr, h netip.Addr) []netip.Addr {
	for _, x := range hs {
		if x == h {
			return hs
		}
	}
	return append(hs, h)
}
