package master

import (
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/topology"
)

// fake is a scripted collector.
type fake struct {
	name    string
	mu      sync.Mutex
	gotQs   []collector.Query
	results func(q collector.Query) (*collector.Result, error)
}

func (f *fake) Name() string { return f.name }
func (f *fake) Collect(q collector.Query) (*collector.Result, error) {
	f.mu.Lock()
	f.gotQs = append(f.gotQs, q)
	f.mu.Unlock()
	return f.results(q)
}

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lineGraph builds a chain graph over the given node IDs.
func lineGraph(ids ...string) *collector.Result {
	g := topology.NewGraph()
	for _, id := range ids {
		g.AddNode(topology.Node{ID: id, Kind: topology.HostNode, Addr: id})
	}
	for i := 0; i+1 < len(ids); i++ {
		g.AddLink(topology.Link{From: ids[i], To: ids[i+1], Capacity: 1e6 * float64(i+1)})
	}
	return &collector.Result{Graph: g}
}

func newTestMaster() (*Master, *fake, *fake, *fake) {
	siteA := &fake{name: "snmp-a", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	siteB := &fake{name: "snmp-b", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	wide := &fake{name: "bench", results: func(q collector.Query) (*collector.Result, error) {
		g := topology.NewGraph()
		g.AddNode(topology.Node{ID: "10.0.1.9", Kind: topology.HostNode, Addr: "10.0.1.9"})
		g.AddNode(topology.Node{ID: "10.0.2.9", Kind: topology.HostNode, Addr: "10.0.2.9"})
		g.AddNode(topology.Node{ID: "wan:a-b", Kind: topology.VirtualNode})
		g.AddLink(topology.Link{From: "10.0.1.9", To: "wan:a-b", Capacity: 3e6})
		g.AddLink(topology.Link{From: "wan:a-b", To: "10.0.2.9", Capacity: 3e6})
		return &collector.Result{Graph: g, History: map[collector.HistKey][]collector.Sample{
			{From: "10.0.1.9", To: "10.0.2.9"}: {{Bits: 3e6}},
		}}, nil
	}}
	m := New(Config{
		Name: "master-a",
		Entries: []Entry{
			{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}, Collector: siteA, BenchHost: addr("10.0.1.9")},
			{Name: "b", Prefixes: []netip.Prefix{pfx("10.0.2.0/24")}, Collector: siteB, BenchHost: addr("10.0.2.9")},
		},
		WideArea: wide,
	})
	return m, siteA, siteB, wide
}

func TestSingleSiteQueryForwardsDirectly(t *testing.T) {
	m, siteA, siteB, wide := newTestMaster()
	res, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.1.2")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.gotQs) != 1 || len(siteB.gotQs) != 0 || len(wide.gotQs) != 0 {
		t.Fatalf("sub-queries a=%d b=%d wide=%d, want 1/0/0",
			len(siteA.gotQs), len(siteB.gotQs), len(wide.gotQs))
	}
	// Single-site query must NOT drag in the benchmark endpoint.
	if len(siteA.gotQs[0].Hosts) != 2 {
		t.Fatalf("site sub-query hosts = %v", siteA.gotQs[0].Hosts)
	}
	if len(res.Graph.Nodes()) != 2 {
		t.Fatalf("merged nodes = %d", len(res.Graph.Nodes()))
	}
}

func TestMultiSiteQuerySplitsAndJoins(t *testing.T) {
	m, siteA, siteB, wide := newTestMaster()
	res, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.gotQs) != 1 || len(siteB.gotQs) != 1 || len(wide.gotQs) != 1 {
		t.Fatal("expected one sub-query per site plus wide area")
	}
	// Site sub-queries include the benchmark join point.
	if len(siteA.gotQs[0].Hosts) != 2 || siteA.gotQs[0].Hosts[1] != addr("10.0.1.9") {
		t.Fatalf("site a sub-query = %v", siteA.gotQs[0].Hosts)
	}
	// Merged graph must connect end to end through the WAN.
	bw, path, err := res.Graph.BottleneckAvail("10.0.1.1", "10.0.2.1")
	if err != nil {
		t.Fatalf("no end-to-end path in merged graph: %v", err)
	}
	if bw <= 0 || len(path) < 5 {
		t.Fatalf("end-to-end bw=%v path=%v", bw, path)
	}
}

func TestHistoryMergedWhenRequested(t *testing.T) {
	m, _, _, _ := newTestMaster()
	res, err := m.Collect(collector.Query{
		Hosts:       []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")},
		WithHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("wide-area history not merged")
	}
}

func TestUnknownHostRejected(t *testing.T) {
	m, _, _, _ := newTestMaster()
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("192.168.1.1")}}); err == nil {
		t.Fatal("host outside every scope accepted")
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	m, _, _, _ := newTestMaster()
	if _, err := m.Collect(collector.Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestSubCollectorErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := &fake{name: "bad", results: func(collector.Query) (*collector.Result, error) {
		return nil, boom
	}}
	m := New(Config{Entries: []Entry{{Name: "x", Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, Collector: bad}}})
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.1.2.3")}}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestMultiSiteWithoutWideAreaFails(t *testing.T) {
	m, _, _, _ := newTestMaster()
	m.cfg.WideArea = nil
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}}); err == nil {
		t.Fatal("multi-site query without wide-area collector succeeded")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	special := &fake{name: "special", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	broad := &fake{name: "broad", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	m := New(Config{Entries: []Entry{
		{Name: "broad", Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, Collector: broad},
		{Name: "special", Prefixes: []netip.Prefix{pfx("10.0.5.0/24")}, Collector: special},
	}})
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.5.7")}}); err != nil {
		t.Fatal(err)
	}
	if len(special.gotQs) != 1 || len(broad.gotQs) != 0 {
		t.Fatal("longest-prefix entry did not win")
	}
}

func TestHierarchicalMasters(t *testing.T) {
	inner, siteA, _, _ := newTestMaster()
	// An outer master delegates the 10.0.0.0/16 region to the inner
	// master — "the remote collector might be another Master Collector".
	outer := New(Config{
		Name: "master-top",
		Entries: []Entry{
			{Name: "region", Prefixes: inner.Prefixes(), Collector: inner},
		},
	})
	res, err := outer.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.1.3")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.gotQs) != 1 {
		t.Fatal("inner master did not receive the delegated query")
	}
	if len(res.Graph.Nodes()) != 2 {
		t.Fatalf("merged nodes = %d", len(res.Graph.Nodes()))
	}
	if inner.Served() != 1 || outer.Served() != 1 {
		t.Fatalf("served counts inner=%d outer=%d", inner.Served(), outer.Served())
	}
}

// encodeGraph renders a graph canonically for byte-comparison.
func encodeGraph(t *testing.T, g *topology.Graph) string {
	t.Helper()
	var sb strings.Builder
	if err := g.EncodeText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelFanoutMatchesSerial asserts the tentpole determinism
// guarantee: the merged answer is byte-identical whether sub-queries run
// serially or fan out concurrently, regardless of completion order (the
// fakes introduce a reversed completion order via staggered sleeps).
func TestParallelFanoutMatchesSerial(t *testing.T) {
	build := func(parallelism int, delayA, delayWide time.Duration) *Master {
		siteA := &fake{name: "snmp-a", results: func(q collector.Query) (*collector.Result, error) {
			time.Sleep(delayA)
			var ids []string
			for _, h := range q.Hosts {
				ids = append(ids, h.String())
			}
			return lineGraph(ids...), nil
		}}
		siteB := &fake{name: "snmp-b", results: func(q collector.Query) (*collector.Result, error) {
			var ids []string
			for _, h := range q.Hosts {
				ids = append(ids, h.String())
			}
			return lineGraph(ids...), nil
		}}
		wide := &fake{name: "bench", results: func(q collector.Query) (*collector.Result, error) {
			time.Sleep(delayWide)
			g := topology.NewGraph()
			g.AddNode(topology.Node{ID: "10.0.1.9", Kind: topology.HostNode, Addr: "10.0.1.9"})
			g.AddNode(topology.Node{ID: "10.0.2.9", Kind: topology.HostNode, Addr: "10.0.2.9"})
			g.AddNode(topology.Node{ID: "wan:a-b", Kind: topology.VirtualNode})
			g.AddLink(topology.Link{From: "10.0.1.9", To: "wan:a-b", Capacity: 3e6})
			g.AddLink(topology.Link{From: "wan:a-b", To: "10.0.2.9", Capacity: 3e6})
			return &collector.Result{Graph: g}, nil
		}}
		return New(Config{
			Parallelism: parallelism,
			Entries: []Entry{
				{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}, Collector: siteA, BenchHost: addr("10.0.1.9")},
				{Name: "b", Prefixes: []netip.Prefix{pfx("10.0.2.0/24")}, Collector: siteB, BenchHost: addr("10.0.2.9")},
			},
			WideArea: wide,
		})
	}
	q := collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1"), addr("10.0.1.2")}}
	serial, err := build(1, 0, 0).Collect(q)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeGraph(t, serial.Graph)
	// Several parallel runs with different completion orders.
	for _, delays := range [][2]time.Duration{
		{0, 0},
		{5 * time.Millisecond, 0}, // site a lands last
		{0, 5 * time.Millisecond}, // wide-area lands last
		{2 * time.Millisecond, 4 * time.Millisecond},
	} {
		res, err := build(0, delays[0], delays[1]).Collect(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeGraph(t, res.Graph); got != want {
			t.Fatalf("parallel merge (delays %v) diverged from serial:\n got: %s\nwant: %s", delays, got, want)
		}
	}
}

// TestDuplicateHostsDeduplicated: repeated hosts in a query collapse to
// one per sub-query (the set-based grouping), and a BenchHost already in
// the query is not appended twice.
func TestDuplicateHostsDeduplicated(t *testing.T) {
	m, siteA, siteB, _ := newTestMaster()
	_, err := m.Collect(collector.Query{Hosts: []netip.Addr{
		addr("10.0.1.1"), addr("10.0.1.1"), addr("10.0.1.9"), // dup + a's bench host
		addr("10.0.2.1"), addr("10.0.2.1"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := siteA.gotQs[0].Hosts; len(got) != 2 {
		t.Fatalf("site a sub-query hosts = %v, want 2 unique", got)
	}
	if got := siteB.gotQs[0].Hosts; len(got) != 2 { // 10.0.2.1 + bench join point
		t.Fatalf("site b sub-query hosts = %v, want host+bench", got)
	}
}

// TestParallelErrorIsDeterministic: when several sites fail concurrently,
// the reported error is the first site in sorted order, not whichever
// goroutine lost the race.
func TestParallelErrorIsDeterministic(t *testing.T) {
	errA := errors.New("a failed")
	errB := errors.New("b failed")
	failing := func(err error, delay time.Duration) *fake {
		return &fake{name: err.Error(), results: func(collector.Query) (*collector.Result, error) {
			time.Sleep(delay)
			return nil, err
		}}
	}
	for trial := 0; trial < 4; trial++ {
		m := New(Config{
			Entries: []Entry{
				{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}, Collector: failing(errA, 3*time.Millisecond)},
				{Name: "b", Prefixes: []netip.Prefix{pfx("10.0.2.0/24")}, Collector: failing(errB, 0)},
			},
			WideArea: &fake{name: "bench", results: func(collector.Query) (*collector.Result, error) {
				return lineGraph("x"), nil
			}},
		})
		_, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want site a's error (sorted-first)", trial, err)
		}
	}
}

// errDirectory fails lookups after a scripted number of calls.
type errDirectory struct {
	entries []Entry
	fail    bool
}

func (d *errDirectory) Entries() ([]Entry, error) {
	if d.fail {
		return nil, errors.New("directory down")
	}
	return d.entries, nil
}

// TestPrefixesSurfacesDirectoryErrors: a failing directory no longer
// masquerades as an empty one — PrefixesErr reports the failure and falls
// back to the static entries.
func TestPrefixesSurfacesDirectoryErrors(t *testing.T) {
	static := []Entry{{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}}}
	dir := &errDirectory{entries: []Entry{
		{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}},
		{Name: "b", Prefixes: []netip.Prefix{pfx("10.0.2.0/24")}},
	}}
	m := New(Config{Entries: static, Directory: dir})

	ps, err := m.PrefixesErr()
	if err != nil || len(ps) != 2 {
		t.Fatalf("healthy directory: prefixes=%v err=%v", ps, err)
	}
	dir.fail = true
	ps, err = m.PrefixesErr()
	if err == nil {
		t.Fatal("directory failure not reported")
	}
	if len(ps) != 1 || ps[0] != pfx("10.0.1.0/24") {
		t.Fatalf("no fallback to static entries: %v", ps)
	}
	// The error-swallowing accessor still degrades gracefully.
	if got := m.Prefixes(); len(got) != 1 {
		t.Fatalf("Prefixes() = %v, want static fallback", got)
	}
}

// TestConcurrentCollects: many goroutines query one master at once; every
// answer must be identical and the served counter exact (run under
// -race).
func TestConcurrentCollects(t *testing.T) {
	m, _, _, _ := newTestMaster()
	q := collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}}
	want, err := m.Collect(q)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := encodeGraph(t, want.Graph)

	const goroutines = 16
	var wg sync.WaitGroup
	encs := make([]string, goroutines)
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := m.Collect(q)
			if err != nil {
				errs[i] = err
				return
			}
			var sb strings.Builder
			if err := res.Graph.EncodeText(&sb); err != nil {
				errs[i] = err
				return
			}
			encs[i] = sb.String()
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if encs[i] != wantEnc {
			t.Fatalf("goroutine %d got a different merged graph", i)
		}
	}
	if m.Served() != goroutines+1 {
		t.Fatalf("served = %d, want %d", m.Served(), goroutines+1)
	}
}
