package master

import (
	"errors"
	"net/netip"
	"testing"

	"remos/internal/collector"
	"remos/internal/topology"
)

// fake is a scripted collector.
type fake struct {
	name    string
	gotQs   []collector.Query
	results func(q collector.Query) (*collector.Result, error)
}

func (f *fake) Name() string { return f.name }
func (f *fake) Collect(q collector.Query) (*collector.Result, error) {
	f.gotQs = append(f.gotQs, q)
	return f.results(q)
}

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lineGraph builds a chain graph over the given node IDs.
func lineGraph(ids ...string) *collector.Result {
	g := topology.NewGraph()
	for _, id := range ids {
		g.AddNode(topology.Node{ID: id, Kind: topology.HostNode, Addr: id})
	}
	for i := 0; i+1 < len(ids); i++ {
		g.AddLink(topology.Link{From: ids[i], To: ids[i+1], Capacity: 1e6 * float64(i+1)})
	}
	return &collector.Result{Graph: g}
}

func newTestMaster() (*Master, *fake, *fake, *fake) {
	siteA := &fake{name: "snmp-a", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	siteB := &fake{name: "snmp-b", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	wide := &fake{name: "bench", results: func(q collector.Query) (*collector.Result, error) {
		g := topology.NewGraph()
		g.AddNode(topology.Node{ID: "10.0.1.9", Kind: topology.HostNode, Addr: "10.0.1.9"})
		g.AddNode(topology.Node{ID: "10.0.2.9", Kind: topology.HostNode, Addr: "10.0.2.9"})
		g.AddNode(topology.Node{ID: "wan:a-b", Kind: topology.VirtualNode})
		g.AddLink(topology.Link{From: "10.0.1.9", To: "wan:a-b", Capacity: 3e6})
		g.AddLink(topology.Link{From: "wan:a-b", To: "10.0.2.9", Capacity: 3e6})
		return &collector.Result{Graph: g, History: map[collector.HistKey][]collector.Sample{
			{From: "10.0.1.9", To: "10.0.2.9"}: {{Bits: 3e6}},
		}}, nil
	}}
	m := New(Config{
		Name: "master-a",
		Entries: []Entry{
			{Name: "a", Prefixes: []netip.Prefix{pfx("10.0.1.0/24")}, Collector: siteA, BenchHost: addr("10.0.1.9")},
			{Name: "b", Prefixes: []netip.Prefix{pfx("10.0.2.0/24")}, Collector: siteB, BenchHost: addr("10.0.2.9")},
		},
		WideArea: wide,
	})
	return m, siteA, siteB, wide
}

func TestSingleSiteQueryForwardsDirectly(t *testing.T) {
	m, siteA, siteB, wide := newTestMaster()
	res, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.1.2")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.gotQs) != 1 || len(siteB.gotQs) != 0 || len(wide.gotQs) != 0 {
		t.Fatalf("sub-queries a=%d b=%d wide=%d, want 1/0/0",
			len(siteA.gotQs), len(siteB.gotQs), len(wide.gotQs))
	}
	// Single-site query must NOT drag in the benchmark endpoint.
	if len(siteA.gotQs[0].Hosts) != 2 {
		t.Fatalf("site sub-query hosts = %v", siteA.gotQs[0].Hosts)
	}
	if len(res.Graph.Nodes()) != 2 {
		t.Fatalf("merged nodes = %d", len(res.Graph.Nodes()))
	}
}

func TestMultiSiteQuerySplitsAndJoins(t *testing.T) {
	m, siteA, siteB, wide := newTestMaster()
	res, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.gotQs) != 1 || len(siteB.gotQs) != 1 || len(wide.gotQs) != 1 {
		t.Fatal("expected one sub-query per site plus wide area")
	}
	// Site sub-queries include the benchmark join point.
	if len(siteA.gotQs[0].Hosts) != 2 || siteA.gotQs[0].Hosts[1] != addr("10.0.1.9") {
		t.Fatalf("site a sub-query = %v", siteA.gotQs[0].Hosts)
	}
	// Merged graph must connect end to end through the WAN.
	bw, path, err := res.Graph.BottleneckAvail("10.0.1.1", "10.0.2.1")
	if err != nil {
		t.Fatalf("no end-to-end path in merged graph: %v", err)
	}
	if bw <= 0 || len(path) < 5 {
		t.Fatalf("end-to-end bw=%v path=%v", bw, path)
	}
}

func TestHistoryMergedWhenRequested(t *testing.T) {
	m, _, _, _ := newTestMaster()
	res, err := m.Collect(collector.Query{
		Hosts:       []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")},
		WithHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("wide-area history not merged")
	}
}

func TestUnknownHostRejected(t *testing.T) {
	m, _, _, _ := newTestMaster()
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("192.168.1.1")}}); err == nil {
		t.Fatal("host outside every scope accepted")
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	m, _, _, _ := newTestMaster()
	if _, err := m.Collect(collector.Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestSubCollectorErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := &fake{name: "bad", results: func(collector.Query) (*collector.Result, error) {
		return nil, boom
	}}
	m := New(Config{Entries: []Entry{{Name: "x", Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, Collector: bad}}})
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.1.2.3")}}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestMultiSiteWithoutWideAreaFails(t *testing.T) {
	m, _, _, _ := newTestMaster()
	m.cfg.WideArea = nil
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.2.1")}}); err == nil {
		t.Fatal("multi-site query without wide-area collector succeeded")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	special := &fake{name: "special", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	broad := &fake{name: "broad", results: func(q collector.Query) (*collector.Result, error) {
		var ids []string
		for _, h := range q.Hosts {
			ids = append(ids, h.String())
		}
		return lineGraph(ids...), nil
	}}
	m := New(Config{Entries: []Entry{
		{Name: "broad", Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, Collector: broad},
		{Name: "special", Prefixes: []netip.Prefix{pfx("10.0.5.0/24")}, Collector: special},
	}})
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.5.7")}}); err != nil {
		t.Fatal(err)
	}
	if len(special.gotQs) != 1 || len(broad.gotQs) != 0 {
		t.Fatal("longest-prefix entry did not win")
	}
}

func TestHierarchicalMasters(t *testing.T) {
	inner, siteA, _, _ := newTestMaster()
	// An outer master delegates the 10.0.0.0/16 region to the inner
	// master — "the remote collector might be another Master Collector".
	outer := New(Config{
		Name: "master-top",
		Entries: []Entry{
			{Name: "region", Prefixes: inner.Prefixes(), Collector: inner},
		},
	})
	res, err := outer.Collect(collector.Query{Hosts: []netip.Addr{addr("10.0.1.1"), addr("10.0.1.3")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.gotQs) != 1 {
		t.Fatal("inner master did not receive the delegated query")
	}
	if len(res.Graph.Nodes()) != 2 {
		t.Fatalf("merged nodes = %d", len(res.Graph.Nodes()))
	}
	if inner.Served() != 1 || outer.Served() != 1 {
		t.Fatalf("served counts inner=%d outer=%d", inner.Served(), outer.Served())
	}
}
