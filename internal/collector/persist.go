package collector

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// History persistence: collectors "will be responsible for maintaining
// history information for each component they monitor"; archiving that
// history lets a restarted collector resume with warm prediction state
// and lets experiments snapshot measurement campaigns. The format is the
// same line-oriented style as the ASCII protocol:
//
//	HISTORYV1 <nKeys>
//	SERIES <from> <to> <nSamples>
//	<unixNano> <bits>
//	...
//	END

// Archive writes the whole store to w.
func (h *History) Archive(w io.Writer) error {
	snap := h.Snapshot()
	keys := make([]HistKey, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sortKeys(keys)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "HISTORYV1 %d\n", len(keys))
	for _, k := range keys {
		ss := snap[k]
		fmt.Fprintf(bw, "SERIES %s %s %d\n", k.From, k.To, len(ss))
		for _, s := range ss {
			fmt.Fprintf(bw, "%d %g\n", s.T.UnixNano(), s.Bits)
		}
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// ReadHistory parses an archive produced by Archive into a new store with
// the given per-key capacity (0 for the default).
func ReadHistory(r io.Reader, capPerKey int) (*History, error) {
	h := NewHistory(capPerKey)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("collector: empty history archive")
	}
	var nk int
	if _, err := fmt.Sscanf(sc.Text(), "HISTORYV1 %d", &nk); err != nil {
		return nil, fmt.Errorf("collector: bad archive header %q", sc.Text())
	}
	for i := 0; i < nk; i++ {
		if !sc.Scan() {
			return nil, io.ErrUnexpectedEOF
		}
		f := strings.Fields(sc.Text())
		if len(f) != 4 || f[0] != "SERIES" {
			return nil, fmt.Errorf("collector: bad series line %q", sc.Text())
		}
		n, err := strconv.Atoi(f[3])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("collector: bad sample count %q", f[3])
		}
		k := HistKey{From: f[1], To: f[2]}
		for j := 0; j < n; j++ {
			if !sc.Scan() {
				return nil, io.ErrUnexpectedEOF
			}
			sf := strings.Fields(sc.Text())
			if len(sf) != 2 {
				return nil, fmt.Errorf("collector: bad sample line %q", sc.Text())
			}
			ns, err1 := strconv.ParseInt(sf[0], 10, 64)
			bits, err2 := strconv.ParseFloat(sf[1], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("collector: bad sample %q", sc.Text())
			}
			h.Add(k, Sample{T: time.Unix(0, ns), Bits: bits})
		}
	}
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "END" {
		return nil, fmt.Errorf("collector: missing archive trailer")
	}
	return h, nil
}

func sortKeys(keys []HistKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func lessKey(a, b HistKey) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
