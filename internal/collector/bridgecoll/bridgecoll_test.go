package bridgecoll

import (
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// lan builds a three-level switched LAN:
//
//	      core
//	     /    \
//	  eA        eB        (edge switches)
//	 / | \     / | \
//	h0 h1 r   h2 h3 h4
//
// The core switch has no directly attached stations — the hard case for
// FDB inference, solvable because bridges appear as stations in each
// other's FDBs.
func lan(t testing.TB) (*sim.Sim, *netsim.Network, *Collector, map[string]*netsim.Device) {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{
		"core": n.AddSwitch("core"),
		"eA":   n.AddSwitch("eA"),
		"eB":   n.AddSwitch("eB"),
		"r":    n.AddRouter("r"),
	}
	for _, h := range []string{"h0", "h1", "h2", "h3", "h4"} {
		d[h] = n.AddHost(h)
	}
	n.Connect(d["eA"], d["core"], 1e9, time.Millisecond)
	n.Connect(d["eB"], d["core"], 1e9, time.Millisecond)
	n.Connect(d["h0"], d["eA"], 100e6, time.Millisecond)
	n.Connect(d["h1"], d["eA"], 100e6, time.Millisecond)
	n.Connect(d["r"], d["eA"], 1e9, time.Millisecond)
	n.Connect(d["h2"], d["eB"], 100e6, time.Millisecond)
	n.Connect(d["h3"], d["eB"], 100e6, time.Millisecond)
	n.Connect(d["h4"], d["eB"], 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	client := snmp.NewClient(&snmp.InProc{Registry: reg}, "public")
	bc := New(Config{
		Client: client,
		Sched:  s,
		Switches: []netip.Addr{
			d["core"].ManagementAddr(),
			d["eA"].ManagementAddr(),
			d["eB"].ManagementAddr(),
		},
	})
	if err := bc.Start(); err != nil {
		t.Fatal(err)
	}
	return s, n, bc, d
}

func macOf(d *netsim.Device) collector.MAC {
	return collector.MAC(d.Ifaces()[0].MAC)
}

func TestInfersSwitchLinks(t *testing.T) {
	_, _, bc, _ := lan(t)
	if got := bc.SwitchLinks(); got != 2 {
		t.Fatalf("inferred %d switch links, want 2 (eA-core, eB-core)", got)
	}
}

func TestStationsDiscovered(t *testing.T) {
	_, _, bc, d := lan(t)
	sts := bc.Stations()
	if len(sts) != 6 { // 5 hosts + router iface
		t.Fatalf("found %d stations, want 6", len(sts))
	}
	sw, port, ok := bc.Locate(macOf(d["h0"]))
	if !ok {
		t.Fatal("h0 not located")
	}
	if sw != d["eA"].ManagementAddr() {
		t.Fatalf("h0 located at %v, want eA", sw)
	}
	if port == 0 {
		t.Fatal("h0 port is 0")
	}
}

func TestPathSameSwitch(t *testing.T) {
	_, _, bc, d := lan(t)
	segs, err := bc.Path(macOf(d["h0"]), macOf(d["h1"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("same-switch path has %d segments, want 2", len(segs))
	}
	if segs[0].Capacity != 100e6 || segs[1].Capacity != 100e6 {
		t.Fatalf("segment capacities %v, %v", segs[0].Capacity, segs[1].Capacity)
	}
}

func TestPathAcrossCore(t *testing.T) {
	_, _, bc, d := lan(t)
	segs, err := bc.Path(macOf(d["h0"]), macOf(d["h4"]))
	if err != nil {
		t.Fatal(err)
	}
	// h0-eA, eA-core, core-eB, eB-h4
	if len(segs) != 4 {
		t.Fatalf("cross-core path has %d segments, want 4", len(segs))
	}
	if segs[1].Capacity != 1e9 || segs[2].Capacity != 1e9 {
		t.Fatalf("trunk capacities %v, %v, want 1e9", segs[1].Capacity, segs[2].Capacity)
	}
	if segs[0].FromID != StationID(macOf(d["h0"])) {
		t.Fatalf("path does not start at h0: %v", segs[0].FromID)
	}
	if segs[3].ToID != StationID(macOf(d["h4"])) {
		t.Fatalf("path does not end at h4: %v", segs[3].ToID)
	}
	// Poll points are always switch ports.
	for i, s := range segs {
		if !s.PollSwitch.IsValid() || s.PollPort == 0 {
			t.Fatalf("segment %d has no poll point: %+v", i, s)
		}
	}
}

func TestPathUnknownStation(t *testing.T) {
	_, _, bc, d := lan(t)
	if _, err := bc.Path(collector.MAC{1, 2, 3, 4, 5, 6}, macOf(d["h0"])); err == nil {
		t.Fatal("path from unknown MAC succeeded")
	}
}

func TestVerifyLocationCheap(t *testing.T) {
	_, _, bc, d := lan(t)
	meter := &snmp.Meter{}
	bc.cfg.Client.Meter = meter
	sw, _, err := bc.VerifyLocation(macOf(d["h0"]))
	if err != nil {
		t.Fatal(err)
	}
	if sw != d["eA"].ManagementAddr() {
		t.Fatalf("verified location %v, want eA", sw)
	}
	if n, _ := meter.Snapshot(); n != 1 {
		t.Fatalf("in-place verification used %d requests, want 1", n)
	}
}

func TestHostMoveDetected(t *testing.T) {
	_, n, bc, d := lan(t)
	var movedMAC collector.MAC
	bc.cfg.OnMove = func(mac collector.MAC, from, to netip.Addr) { movedMAC = mac }
	n.MoveHost(d["h0"], d["eB"], 100e6, time.Millisecond)
	sw, _, err := bc.VerifyLocation(macOf(d["h0"]))
	if err != nil {
		t.Fatal(err)
	}
	if sw != d["eB"].ManagementAddr() {
		t.Fatalf("after move, location %v, want eB", sw)
	}
	if movedMAC != macOf(d["h0"]) {
		t.Fatal("OnMove not fired for h0")
	}
	// Path service must use the new location.
	segs, err := bc.Path(macOf(d["h0"]), macOf(d["h1"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("post-move path has %d segments, want 4 (now across core)", len(segs))
	}
}

func TestPeriodicMonitoringCatchesMove(t *testing.T) {
	s, n, bc, d := lan(t)
	moves := 0
	bc.cfg.OnMove = func(collector.MAC, netip.Addr, netip.Addr) { moves++ }
	bc.cfg.MonitorInterval = 10 * time.Second
	bc.monitor = s.Every(bc.cfg.MonitorInterval, bc.monitorOnce)
	defer bc.Stop()
	n.MoveHost(d["h3"], d["eA"], 100e6, time.Millisecond)
	s.RunFor(11 * time.Second)
	if moves != 1 {
		t.Fatalf("monitoring detected %d moves, want 1", moves)
	}
	sw, _, _ := bc.Locate(macOf(d["h3"]))
	if sw != d["eA"].ManagementAddr() {
		t.Fatalf("database still places h3 at %v", sw)
	}
}

func TestGraphShape(t *testing.T) {
	_, _, bc, _ := lan(t)
	g := bc.Graph()
	if len(g.Nodes()) != 9 { // 3 switches + 6 stations
		t.Fatalf("graph nodes = %d, want 9", len(g.Nodes()))
	}
	if len(g.Links()) != 8 { // 6 station links + 2 trunks
		t.Fatalf("graph links = %d, want 8", len(g.Links()))
	}
}

func TestCollectRequiresStart(t *testing.T) {
	bc := New(Config{})
	if _, err := bc.Collect(collector.Query{}); err == nil {
		t.Fatal("Collect before Start succeeded")
	}
}

func TestSingleSwitchLAN(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1")
	h2 := n.AddHost("h2")
	n.Connect(h1, sw, 100e6, 0)
	n.Connect(h2, sw, 100e6, 0)
	n.AssignSubnets()
	n.ComputeRoutes()
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	bc := New(Config{
		Client:   snmp.NewClient(&snmp.InProc{Registry: reg}, "public"),
		Sched:    s,
		Switches: []netip.Addr{sw.ManagementAddr()},
	})
	if err := bc.Start(); err != nil {
		t.Fatal(err)
	}
	if bc.SwitchLinks() != 0 {
		t.Fatalf("single switch inferred %d links", bc.SwitchLinks())
	}
	segs, err := bc.Path(collector.MAC(h1.Ifaces()[0].MAC), collector.MAC(h2.Ifaces()[0].MAC))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("path segments = %d, want 2", len(segs))
	}
}

func TestDeepChainTopology(t *testing.T) {
	// A 5-switch chain with one host at each end and one on each
	// interior switch: inference must recover exactly the chain.
	s := sim.NewSim()
	n := netsim.New(s)
	var sws []*netsim.Device
	var addrs []netip.Addr
	for i := 0; i < 5; i++ {
		sw := n.AddSwitch("sw" + string(rune('0'+i)))
		sws = append(sws, sw)
		if i > 0 {
			n.Connect(sws[i-1], sw, 1e9, 0)
		}
	}
	var hosts []*netsim.Device
	for i := 0; i < 5; i++ {
		h := n.AddHost("h" + string(rune('0'+i)))
		hosts = append(hosts, h)
		n.Connect(h, sws[i], 100e6, 0)
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	for _, sw := range sws {
		addrs = append(addrs, sw.ManagementAddr())
	}
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	bc := New(Config{
		Client:   snmp.NewClient(&snmp.InProc{Registry: reg}, "public"),
		Sched:    s,
		Switches: addrs,
	})
	if err := bc.Start(); err != nil {
		t.Fatal(err)
	}
	if bc.SwitchLinks() != 4 {
		t.Fatalf("chain of 5 switches inferred %d links, want 4", bc.SwitchLinks())
	}
	segs, err := bc.Path(collector.MAC(hosts[0].Ifaces()[0].MAC), collector.MAC(hosts[4].Ifaces()[0].MAC))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 6 { // host-sw0, 4 trunks, sw4-host
		t.Fatalf("end-to-end path segments = %d, want 6", len(segs))
	}
}

func TestInteriorSwitchWithoutStations(t *testing.T) {
	// Chain sw0 - sw1 - sw2 where sw1 has NO attached stations. The
	// bridges' own management MACs disambiguate it.
	s := sim.NewSim()
	n := netsim.New(s)
	sw0 := n.AddSwitch("sw0")
	sw1 := n.AddSwitch("sw1")
	sw2 := n.AddSwitch("sw2")
	n.Connect(sw0, sw1, 1e9, 0)
	n.Connect(sw1, sw2, 1e9, 0)
	h0 := n.AddHost("h0")
	h2 := n.AddHost("h2")
	n.Connect(h0, sw0, 100e6, 0)
	n.Connect(h2, sw2, 100e6, 0)
	n.AssignSubnets()
	n.ComputeRoutes()
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	bc := New(Config{
		Client:   snmp.NewClient(&snmp.InProc{Registry: reg}, "public"),
		Sched:    s,
		Switches: []netip.Addr{sw0.ManagementAddr(), sw1.ManagementAddr(), sw2.ManagementAddr()},
	})
	if err := bc.Start(); err != nil {
		t.Fatal(err)
	}
	if bc.SwitchLinks() != 2 {
		t.Fatalf("inferred %d links, want 2 (sw0-sw1, sw1-sw2; no sw0-sw2 shortcut)", bc.SwitchLinks())
	}
	segs, err := bc.Path(collector.MAC(h0.Ifaces()[0].MAC), collector.MAC(h2.Ifaces()[0].MAC))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("path segments = %d, want 4", len(segs))
	}
}
