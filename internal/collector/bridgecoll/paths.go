package bridgecoll

import (
	"fmt"
	"net/netip"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/topology"
)

// Segment is one directed level-2 link along a path: from one attachment
// point to the next. IDs name graph nodes ("st:<mac>" for stations,
// switch management addresses for bridges). PollSwitch/PollPort identify
// the switch interface whose octet counters measure this link, which is
// what the SNMP Collector polls for utilization.
type Segment struct {
	FromID     string
	ToID       string
	Capacity   float64
	PollSwitch netip.Addr
	PollPort   int
	// PollIsFrom is true when the polled port sits at the From end, so
	// the port's out-octets measure From->To traffic; false means the
	// polled port is at the To end and its in-octets measure From->To.
	PollIsFrom bool
}

// StationID renders the graph node ID used for a station.
func StationID(mac collector.MAC) string { return "st:" + mac.String() }

// Domain returns the broadcast-domain id a station belongs to. Two
// stations with the same domain id are level-2 reachable from each other.
func (c *Collector) Domain(mac collector.MAC) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stations[mac]
	if !ok {
		return 0, false
	}
	return c.domainOf[st.sw], true
}

// Locate returns the believed attachment point of a station from the
// database (no SNMP traffic).
func (c *Collector) Locate(mac collector.MAC) (sw netip.Addr, port int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stations[mac]
	if !ok {
		return netip.Addr{}, 0, false
	}
	return st.sw, st.port, true
}

// VerifyLocation checks a station's forwarding entry on the bridge it is
// believed to be attached to with one SNMP Get — the paper's cheap
// location check. If the entry is gone or moved, the affected bridges are
// re-walked and the topology database updated. It reports the (possibly
// corrected) location.
func (c *Collector) VerifyLocation(mac collector.MAC) (netip.Addr, int, error) {
	c.mu.Lock()
	st, known := c.stations[mac]
	c.mu.Unlock()
	if !known {
		return c.SearchStation(mac)
	}
	v, err := c.cfg.Client.GetOne(st.sw.String(), mib.Dot1dTpFdbPort.Append(mac.OIDSuffix()...))
	if err == nil && int(v.Int) == st.port {
		return st.sw, st.port, nil // still where we thought
	}
	return c.SearchStation(mac)
}

// SearchStation re-walks all bridges to find a station that moved or is
// new, updating the database. This is the expensive path; the bridges are
// walked in parallel and only the commit holds the database mutex, so
// path queries keep being answered from the previous database while the
// search runs.
func (c *Collector) SearchStation(mac collector.MAC) (netip.Addr, int, error) {
	c.mu.Lock()
	old, hadOld := c.stations[mac]
	c.mu.Unlock()
	if err := c.rewalkAll(); err != nil {
		return netip.Addr{}, 0, err
	}
	c.mu.Lock()
	st, ok := c.stations[mac]
	c.mu.Unlock()
	if !ok {
		return netip.Addr{}, 0, fmt.Errorf("bridgecoll: station %v not found on any bridge", mac)
	}
	if hadOld && (old.sw != st.sw || old.port != st.port) && c.cfg.OnMove != nil {
		c.cfg.OnMove(mac, old.sw, st.sw)
	}
	return st.sw, st.port, nil
}

// monitorOnce verifies the location of every known station, the
// continuous monitoring Section 3.1.2 requires for mobile nodes.
func (c *Collector) monitorOnce() {
	c.mu.Lock()
	macs := make([]collector.MAC, 0, len(c.stations))
	for m := range c.stations {
		macs = append(macs, m)
	}
	c.mu.Unlock()
	for _, m := range macs {
		c.VerifyLocation(m) // errors are tolerated; next round retries
	}
}

// Path returns the level-2 segments between two stations. Both must be in
// the topology database.
func (c *Collector) Path(a, b collector.MAC) ([]Segment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sa, oka := c.stations[a]
	sb, okb := c.stations[b]
	if !oka || !okb {
		return nil, fmt.Errorf("bridgecoll: unknown station (%v known=%v, %v known=%v)", a, oka, b, okb)
	}
	segs := []Segment{{
		FromID:     StationID(a),
		ToID:       sa.sw.String(),
		Capacity:   c.switches[sa.sw].speed[sa.port],
		PollSwitch: sa.sw,
		PollPort:   sa.port,
		PollIsFrom: false, // polled port is at the To (switch) end
	}}
	if sa.sw != sb.sw {
		swPath, err := c.switchPathLocked(sa.sw, sb.sw)
		if err != nil {
			return nil, err
		}
		for _, l := range swPath {
			segs = append(segs, Segment{
				FromID:     l.a.String(),
				ToID:       l.b.String(),
				Capacity:   c.switches[l.a].speed[l.aPort],
				PollSwitch: l.a,
				PollPort:   l.aPort,
				PollIsFrom: true,
			})
		}
	}
	segs = append(segs, Segment{
		FromID:     sb.sw.String(),
		ToID:       StationID(b),
		Capacity:   c.switches[sb.sw].speed[sb.port],
		PollSwitch: sb.sw,
		PollPort:   sb.port,
		PollIsFrom: true, // polled port is at the From (switch) end
	})
	return segs, nil
}

// switchPathLocked finds the bridge-to-bridge path as directed swLinks
// from sa to sb over the inferred topology.
func (c *Collector) switchPathLocked(sa, sb netip.Addr) ([]swLink, error) {
	type state struct {
		at   netip.Addr
		prev *state
		via  swLink // oriented so via.a is the earlier switch
	}
	visited := map[netip.Addr]bool{sa: true}
	queue := []*state{{at: sa}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range c.links {
			var next netip.Addr
			var oriented swLink
			switch cur.at {
			case l.a:
				next = l.b
				oriented = l
			case l.b:
				next = l.a
				oriented = swLink{a: l.b, aPort: l.bPort, b: l.a, bPort: l.aPort}
			default:
				continue
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			st := &state{at: next, prev: cur, via: oriented}
			if next == sb {
				var rev []swLink
				for s := st; s.prev != nil; s = s.prev {
					rev = append(rev, s.via)
				}
				out := make([]swLink, len(rev))
				for i := range rev {
					out[i] = rev[len(rev)-1-i]
				}
				return out, nil
			}
			queue = append(queue, st)
		}
	}
	return nil, fmt.Errorf("bridgecoll: no L2 path between %v and %v", sa, sb)
}

// Stations lists the known station MACs in stable order.
func (c *Collector) Stations() []collector.MAC {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]collector.MAC, 0, len(c.stations))
	for m := range c.stations {
		out = append(out, m)
	}
	sortMACs(out)
	return out
}

func sortMACs(ms []collector.MAC) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && lessMAC(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// SwitchLinks returns the number of inferred switch-to-switch links.
func (c *Collector) SwitchLinks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.links)
}

// PortSpeed reports the learned speed of a switch port.
func (c *Collector) PortSpeed(sw netip.Addr, port int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	si := c.switches[sw]
	if si == nil {
		return 0
	}
	return si.speed[port]
}

// Graph returns the level-2 topology as a graph: switches and stations,
// links with capacities, no utilization (dynamic data is the SNMP
// Collector's job).
func (c *Collector) Graph() *topology.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := topology.NewGraph()
	for _, addr := range c.cfg.Switches {
		g.AddNode(topology.Node{ID: addr.String(), Kind: topology.SwitchNode, Addr: addr.String()})
	}
	for mac, st := range c.stations {
		g.AddNode(topology.Node{ID: StationID(mac), Kind: topology.HostNode})
		g.AddLink(topology.Link{
			From: StationID(mac), To: st.sw.String(),
			Capacity: c.switches[st.sw].speed[st.port],
		})
	}
	for _, l := range c.links {
		g.AddLink(topology.Link{
			From: l.a.String(), To: l.b.String(),
			Capacity: c.switches[l.a].speed[l.aPort],
		})
	}
	return g
}

// Collect implements collector.Interface: the Bridge Collector's own
// answer is the static L2 graph (hosts resolve by MAC only, so Hosts in
// the query are ignored; the SNMP Collector composes richer answers).
func (c *Collector) Collect(q collector.Query) (*collector.Result, error) {
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if !started {
		return nil, fmt.Errorf("bridgecoll: not started")
	}
	return &collector.Result{Graph: c.Graph()}, nil
}
