// Package bridgecoll implements the Remos Bridge Collector: it discovers
// the level-2 topology of a switched Ethernet LAN from the forwarding
// databases in each bridge's Bridge-MIB (Section 3.1.2, after Lowekamp et
// al., SIGCOMM 2001), serves level-2 path queries to the SNMP Collector,
// and continuously monitors host locations so that stations moving between
// switches are tracked.
package bridgecoll

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/conc"
	"remos/internal/mib"
	"remos/internal/obs"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// Config configures a Bridge Collector.
type Config struct {
	// Client issues the SNMP requests.
	Client *snmp.Client
	// Sched drives periodic host-location monitoring.
	Sched sim.Scheduler
	// Switches are the management addresses of the bridges to manage
	// (in a real deployment these come from configuration or SLP).
	Switches []netip.Addr
	// MonitorInterval is the period of host-location verification;
	// 0 disables monitoring.
	MonitorInterval time.Duration
	// OnMove, if set, is called when monitoring detects that a station
	// changed its attachment point.
	OnMove func(mac collector.MAC, from, to netip.Addr)
	// Parallelism bounds how many bridges are walked concurrently during
	// startup and station searches. 0 selects GOMAXPROCS; 1 restores the
	// serial walk.
	Parallelism int
	// Obs, when set, instruments the collector: its SNMP client's
	// exchange counters and a bridge-walk counter land in the registry.
	Obs *obs.Registry
}

// switchInfo is everything learned about one bridge.
type switchInfo struct {
	addr     netip.Addr
	name     string
	numPorts int
	fdb      map[collector.MAC]int // station -> port
	perPort  map[int][]collector.MAC
	speed    map[int]float64 // port -> bits/s
	mgmtMAC  collector.MAC   // this bridge's own station MAC, if known
}

// swLink is one inferred switch-to-switch connection.
type swLink struct {
	a     netip.Addr
	aPort int
	b     netip.Addr
	bPort int
}

// station is one end host/router attachment.
type station struct {
	mac  collector.MAC
	sw   netip.Addr
	port int
}

// Collector is a running Bridge Collector.
type Collector struct {
	cfg Config

	mu       sync.Mutex
	switches map[netip.Addr]*switchInfo
	links    []swLink
	stations map[collector.MAC]station
	domainOf map[netip.Addr]int // switch -> broadcast-domain id
	started  bool
	monitor  *sim.Timer

	// walkRequests counts full FDB walks, for cost accounting in tests.
	walkRequests int

	mWalks *obs.Counter
}

// New creates a Bridge Collector; call Start to walk the bridges and build
// the topology database.
func New(cfg Config) *Collector {
	if cfg.Client != nil {
		cfg.Client.Instrument(cfg.Obs)
	}
	return &Collector{
		cfg:      cfg,
		switches: make(map[netip.Addr]*switchInfo),
		stations: make(map[collector.MAC]station),
		mWalks: cfg.Obs.Counter("remos_bridge_walks_total",
			"full bridge FDB walks performed"),
	}
}

// Name implements collector.Interface.
func (c *Collector) Name() string { return "bridge" }

// Start walks every configured bridge's forwarding database, infers the
// level-2 topology, and begins location monitoring. "At startup, the
// Bridge Collector queries all components of a bridged Ethernet to
// determine its topology, then stores this information in a database."
// The bridges are walked in parallel (bounded by Config.Parallelism);
// inference runs once over the committed set.
func (c *Collector) Start() error {
	if err := c.rewalkAll(); err != nil {
		return err
	}
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	if c.cfg.MonitorInterval > 0 && c.cfg.Sched != nil {
		c.monitor = c.cfg.Sched.Every(c.cfg.MonitorInterval, c.monitorOnce)
	}
	return nil
}

// rewalkAll walks every configured bridge concurrently outside the mutex
// (the SNMP client is safe for concurrent use), then commits the new
// forwarding databases and re-runs topology inference under it. Walk
// errors surface for the lowest-index switch, independent of completion
// order.
func (c *Collector) rewalkAll() error {
	infos := make([]*switchInfo, len(c.cfg.Switches))
	err := conc.ForEach(len(c.cfg.Switches), c.cfg.Parallelism, func(i int) error {
		si, err := c.walkSwitch(c.cfg.Switches[i])
		if err != nil {
			return fmt.Errorf("bridgecoll: walking %v: %w", c.cfg.Switches[i], err)
		}
		infos[i] = si
		return nil
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.walkRequests += len(infos)
	c.mWalks.Add(int64(len(infos)))
	for i, si := range infos {
		c.switches[c.cfg.Switches[i]] = si
	}
	return c.inferTopologyLocked()
}

// Stop halts location monitoring.
func (c *Collector) Stop() {
	if c.monitor != nil {
		c.monitor.Stop()
	}
}

// walkSwitch reads one bridge's Bridge-MIB and interface table. It takes
// no locks and touches no collector state, so callers may walk many
// bridges concurrently and commit the results under c.mu afterwards
// (walk accounting happens at commit).
func (c *Collector) walkSwitch(addr netip.Addr) (*switchInfo, error) {
	a := addr.String()
	si := &switchInfo{
		addr:    addr,
		fdb:     make(map[collector.MAC]int),
		perPort: make(map[int][]collector.MAC),
		speed:   make(map[int]float64),
	}
	if v, err := c.cfg.Client.GetOne(a, mib.SysName); err == nil {
		si.name = string(v.Bytes)
	}
	v, err := c.cfg.Client.GetOne(a, mib.Dot1dBaseNumPorts)
	if err != nil {
		return nil, err
	}
	si.numPorts = int(v.Int)
	// dot1dBaseBridgeAddress names the bridge's own MAC, which must not
	// be mistaken for a station.
	if v, err := c.cfg.Client.GetOne(a, mib.Dot1dBaseBridgeAddr); err == nil {
		if m, ok := collector.MACFromBytes(v.Bytes); ok {
			si.mgmtMAC = m
		}
	}
	// The FDB and interface-speed walks fill disjoint switchInfo fields,
	// so they run concurrently under the collector's parallelism bound.
	walks := []func() error{
		func() error {
			return c.cfg.Client.BulkWalk(a, mib.Dot1dTpFdbPort, 32, func(o snmp.OID, val snmp.Value) bool {
				mac, ok := collector.MACFromOID(o)
				if !ok {
					return true
				}
				port := int(val.Int)
				si.fdb[mac] = port
				si.perPort[port] = append(si.perPort[port], mac)
				return true
			})
		},
		func() error {
			return c.cfg.Client.BulkWalk(a, mib.IfSpeed, 16, func(o snmp.OID, val snmp.Value) bool {
				si.speed[int(o[len(o)-1])] = float64(val.Int)
				return true
			})
		},
	}
	if err := conc.ForEach(len(walks), c.cfg.Parallelism, func(i int) error { return walks[i]() }); err != nil {
		return nil, err
	}
	// A bridge's own management MAC is the one station MAC every *other*
	// bridge has learned but this one does not list (it is local).
	return si, nil
}

// inferTopologyLocked runs the forwarding-database inference: two bridge
// ports are directly connected iff their FDB station sets are disjoint and
// jointly complete (Breitbart/Lowekamp condition; our FDBs are converged,
// so completeness holds). Ports with no switch neighbour are edge ports and
// their learned stations are direct attachments.
func (c *Collector) inferTopologyLocked() error {
	// The universe of stations: every MAC seen in any FDB. Bridges'
	// own MACs (from dot1dBaseBridgeAddress) are known and are kept in
	// the universe — they disambiguate interior switches — but are not
	// stations.
	bridgeMAC := make(map[collector.MAC]netip.Addr)
	for _, si := range c.switches {
		var zero collector.MAC
		if si.mgmtMAC != zero {
			bridgeMAC[si.mgmtMAC] = si.addr
		}
	}
	universe := make(map[collector.MAC]bool)
	for _, si := range c.switches {
		for mac := range si.fdb {
			universe[mac] = true
		}
	}

	// Station set per port, as bitsets over a stable MAC ordering.
	macs := make([]collector.MAC, 0, len(universe))
	for mac := range universe {
		macs = append(macs, mac)
	}
	sort.Slice(macs, func(i, j int) bool { return lessMAC(macs[i], macs[j]) })
	macIdx := make(map[collector.MAC]int, len(macs))
	for i, m := range macs {
		macIdx[m] = i
	}
	words := (len(macs) + 63) / 64
	portSet := func(si *switchInfo, port int) []uint64 {
		bs := make([]uint64, words)
		for _, m := range si.perPort[port] {
			i := macIdx[m]
			bs[i/64] |= 1 << (i % 64)
		}
		return bs
	}
	// Everything one switch has learned, over all ports. For a directly
	// connected port pair, the two ports' FDBs partition exactly the
	// union of the two switches' universes: a collector may manage
	// bridges in several broadcast domains at once, so completeness is
	// relative to the pair, not global.
	allSet := func(si *switchInfo) []uint64 {
		bs := make([]uint64, words)
		for mac := range si.fdb {
			i := macIdx[mac]
			bs[i/64] |= 1 << (i % 64)
		}
		return bs
	}

	// The disjoint-and-complete test needs no special-casing for the
	// bridges' own MACs: for a directly connected port pair, each
	// bridge's management MAC is behind the other's port, so the union
	// covers the full universe.
	addrs := make([]netip.Addr, 0, len(c.switches))
	for a := range c.switches {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })

	c.links = nil
	linkPorts := make(map[netip.Addr]map[int]bool)
	for _, a := range addrs {
		linkPorts[a] = make(map[int]bool)
	}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			x, y := c.switches[addrs[i]], c.switches[addrs[j]]
			ax, ay := allSet(x), allSet(y)
			// Bridges in the same broadcast domain always share
			// stations (at least each other's bridge MACs); fully
			// disjoint universes mean separate domains, where no
			// direct connection is possible.
			if disjoint(ax, ay) {
				continue
			}
			need := orSets(ax, ay)
			for px := 1; px <= x.numPorts; px++ {
				sx := portSet(x, px)
				for py := 1; py <= y.numPorts; py++ {
					sy := portSet(y, py)
					if !disjoint(sx, sy) {
						continue
					}
					if !coversUnion(sx, sy, need) {
						continue
					}
					c.links = append(c.links, swLink{a: x.addr, aPort: px, b: y.addr, bPort: py})
					linkPorts[x.addr][px] = true
					linkPorts[y.addr][py] = true
				}
			}
		}
	}

	// Broadcast-domain ids: connected components of the inferred
	// switch topology.
	c.domainOf = make(map[netip.Addr]int)
	domain := 0
	for _, a := range addrs {
		if _, seen := c.domainOf[a]; seen {
			continue
		}
		domain++
		queue := []netip.Addr{a}
		c.domainOf[a] = domain
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, l := range c.links {
				var next netip.Addr
				switch cur {
				case l.a:
					next = l.b
				case l.b:
					next = l.a
				default:
					continue
				}
				if _, seen := c.domainOf[next]; !seen {
					c.domainOf[next] = domain
					queue = append(queue, next)
				}
			}
		}
	}

	// Stations: MACs learned on edge ports of the switch that sees them
	// closest (the unique switch-port pair where the MAC is on a
	// non-link port).
	c.stations = make(map[collector.MAC]station)
	for _, a := range addrs {
		si := c.switches[a]
		for mac, port := range si.fdb {
			if bridgeMAC[mac].IsValid() {
				continue // bridges are not stations
			}
			if linkPorts[a][port] {
				continue // learned through another switch
			}
			c.stations[mac] = station{mac: mac, sw: a, port: port}
		}
	}
	return nil
}

func disjoint(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return false
		}
	}
	return true
}

// coversUnion reports whether a ∪ b covers every bit in need.
func coversUnion(a, b, need []uint64) bool {
	for i := range need {
		if (a[i]|b[i])&need[i] != need[i] {
			return false
		}
	}
	return true
}

func orSets(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] | b[i]
	}
	return out
}

func lessMAC(a, b collector.MAC) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
