package snmpcoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/bridgecoll"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
	"remos/internal/topology"
)

// site builds a routed+switched testbed:
//
//	h1 - swA - r1 - r2 - swB - h2
//	h3 -/                  \- h4
//
// with agents attached and a bridge collector covering both switches.
type site struct {
	s      *sim.Sim
	n      *netsim.Network
	d      map[string]*netsim.Device
	reg    *snmp.Registry
	tr     snmp.Transport
	bridge *bridgecoll.Collector
	sc     *Collector
}

func newSite(t testing.TB, cfgMut func(*Config)) *site {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{}
	for _, h := range []string{"h1", "h2", "h3", "h4"} {
		d[h] = n.AddHost(h)
	}
	d["swA"] = n.AddSwitch("swA")
	d["swB"] = n.AddSwitch("swB")
	d["r1"] = n.AddRouter("r1")
	d["r2"] = n.AddRouter("r2")
	n.Connect(d["h1"], d["swA"], 100e6, time.Millisecond)
	n.Connect(d["h3"], d["swA"], 100e6, time.Millisecond)
	n.Connect(d["swA"], d["r1"], 1e9, time.Millisecond)
	n.Connect(d["r1"], d["r2"], 10e6, 10*time.Millisecond)
	n.Connect(d["r2"], d["swB"], 1e9, time.Millisecond)
	n.Connect(d["h2"], d["swB"], 100e6, time.Millisecond)
	n.Connect(d["h4"], d["swB"], 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	tr := &snmp.InProc{Registry: reg, Latency: func(string) time.Duration { return 2 * time.Millisecond }}
	bc := bridgecoll.New(bridgecoll.Config{
		Client:   snmp.NewClient(tr, "public"),
		Sched:    s,
		Switches: []netip.Addr{d["swA"].ManagementAddr(), d["swB"].ManagementAddr()},
	})
	if err := bc.Start(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name:      "snmp-test",
		Transport: tr,
		Community: "public",
		Sched:     s,
		GatewayOf: func(h netip.Addr) (netip.Addr, bool) {
			dev := n.DeviceByIP(h)
			if dev == nil || !dev.Gateway.IsValid() {
				return netip.Addr{}, false
			}
			return dev.Gateway, true
		},
		ResolveMAC: func(ip netip.Addr) (collector.MAC, bool) {
			ifc := n.IfaceByIP(ip)
			if ifc == nil {
				return collector.MAC{}, false
			}
			return collector.MAC(ifc.MAC), true
		},
		Bridge: bc,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	sc := New(cfg)
	t.Cleanup(sc.Stop)
	t.Cleanup(bc.Stop)
	return &site{s: s, n: n, d: d, reg: reg, tr: tr, bridge: bc, sc: sc}
}

func addrOf(st *site, name string) netip.Addr { return st.d[name].Addr() }

func TestTopologyDiscoveryCrossSite(t *testing.T) {
	st := newSite(t, nil)
	res, stats, err := st.sc.CollectWithStats(collector.Query{
		Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	// Expect h1, swA, r1, r2, swB, h2 = 6 nodes, 5 links.
	if len(g.Nodes()) != 6 {
		t.Fatalf("nodes = %d, want 6: %v", len(g.Nodes()), ids(g))
	}
	if len(g.Links()) != 5 {
		t.Fatalf("links = %d, want 5", len(g.Links()))
	}
	path, err := g.Path(addrOf(st, "h1").String(), addrOf(st, "h2").String())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 {
		t.Fatalf("path length %d, want 6: %v", len(path), path)
	}
	// WAN bottleneck capacity discovered from ifSpeed.
	r1 := "r1"
	r2 := "r2"
	l := g.FindLink(r1, r2)
	if l == nil || l.Capacity != 10e6 {
		t.Fatalf("WAN link %+v, want capacity 10e6", l)
	}
	if stats.Requests == 0 || stats.RTT == 0 {
		t.Fatal("query cost not metered")
	}
	if !stats.ColdStart {
		t.Fatal("first query should be a cold start")
	}
}

func ids(g *topology.Graph) []string {
	var out []string
	for _, n := range g.Nodes() {
		out = append(out, n.ID)
	}
	return out
}

func TestSameLANQueryIsPureL2(t *testing.T) {
	st := newSite(t, nil)
	res, err := st.sc.Collect(collector.Query{
		Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// h1 - swA - h3: 3 nodes, 2 links; no routers.
	if len(res.Graph.Nodes()) != 3 {
		t.Fatalf("nodes = %v", ids(res.Graph))
	}
	for _, n := range res.Graph.Nodes() {
		if n.Kind == topology.RouterNode {
			t.Fatal("router appeared in same-LAN query")
		}
	}
}

func TestUtilizationAfterPolling(t *testing.T) {
	st := newSite(t, nil)
	h1, h2 := addrOf(st, "h1"), addrOf(st, "h2")
	// Load the WAN: 4 Mbit/s.
	if _, err := st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 4e6}); err != nil {
		t.Fatal(err)
	}
	// First query registers monitors (cold).
	if _, stats, err := st.sc.CollectWithStats(collector.Query{Hosts: []netip.Addr{h1, h2}}); err != nil {
		t.Fatal(err)
	} else if !stats.ColdStart {
		t.Fatal("expected cold start")
	}
	// Two poll intervals later the delta is available.
	st.s.RunFor(11 * time.Second)
	res, stats, err := st.sc.CollectWithStats(collector.Query{Hosts: []netip.Addr{h1, h2}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdStart {
		t.Fatal("second query should be warm")
	}
	r1 := "r1"
	r2 := "r2"
	l := res.Graph.FindLink(r1, r2)
	fwd := l.UtilFromTo
	if l.From != r1 {
		fwd = l.UtilToFrom
	}
	if math.Abs(fwd-4e6) > 4e5 {
		t.Fatalf("measured WAN utilization %v, want ~4e6", fwd)
	}
}

func TestWarmQueryCheaperThanCold(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2"), addrOf(st, "h3"), addrOf(st, "h4")}}
	_, cold, err := st.sc.CollectWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(6 * time.Second)
	_, warm, err := st.sc.CollectWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Requests*2 > cold.Requests {
		t.Fatalf("warm query (%d reqs) should cost well under half of cold (%d reqs)",
			warm.Requests, cold.Requests)
	}
}

func TestRouteCacheAblation(t *testing.T) {
	stCached := newSite(t, nil)
	stNo := newSite(t, func(c *Config) { c.DisableRouteCache = true })
	q := func(st *site) collector.Query {
		return collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	}
	// Warm both once, then measure a repeat query.
	if _, _, err := stCached.sc.CollectWithStats(q(stCached)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := stNo.sc.CollectWithStats(q(stNo)); err != nil {
		t.Fatal(err)
	}
	_, a, _ := stCached.sc.CollectWithStats(q(stCached))
	_, b, _ := stNo.sc.CollectWithStats(q(stNo))
	if a.Requests >= b.Requests {
		t.Fatalf("cache-disabled repeat query (%d reqs) should exceed cached (%d reqs)",
			b.Requests, a.Requests)
	}
}

func TestPollerRecordsHistory(t *testing.T) {
	st := newSite(t, nil)
	h1, h2 := addrOf(st, "h1"), addrOf(st, "h2")
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 2e6})
	if _, err := st.sc.Collect(collector.Query{Hosts: []netip.Addr{h1, h2}}); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(60 * time.Second)
	res, err := st.sc.Collect(collector.Query{Hosts: []netip.Addr{h1, h2}, WithHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	r1 := "r1"
	r2 := "r2"
	hist := res.History[collector.HistKey{From: r1, To: r2}]
	if len(hist) < 10 {
		t.Fatalf("WAN history has %d samples after 60s at 5s polls, want >=10", len(hist))
	}
	last := hist[len(hist)-1]
	if math.Abs(last.Bits-2e6) > 2e5 {
		t.Fatalf("history sample %v, want ~2e6", last.Bits)
	}
}

func TestVirtualSwitchWithoutBridge(t *testing.T) {
	st := newSite(t, func(c *Config) { c.Bridge = nil; c.ResolveMAC = nil })
	res, err := st.sc.Collect(collector.Query{
		Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without L2 detail, hosts attach through virtual switches:
	// h1 - v:r1 - r1 - r2 - v:r2 - h2.
	virtuals := 0
	for _, n := range res.Graph.Nodes() {
		if n.Kind == topology.VirtualNode {
			virtuals++
		}
	}
	if virtuals != 2 {
		t.Fatalf("virtual switches = %d, want 2: %v", virtuals, ids(res.Graph))
	}
	if _, err := res.Graph.Path(addrOf(st, "h1").String(), addrOf(st, "h2").String()); err != nil {
		t.Fatalf("no path through virtual switches: %v", err)
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	st := newSite(t, nil)
	if _, err := st.sc.Collect(collector.Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestCounterWrapHandled(t *testing.T) {
	st := newSite(t, nil)
	h1, h2 := addrOf(st, "h1"), addrOf(st, "h2")
	// 10 Mbit/s wraps a Counter32 in ~57 min; run past a wrap and check
	// the measured rate stays sane.
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 10e6})
	if _, err := st.sc.Collect(collector.Query{Hosts: []netip.Addr{h1, h2}}); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(4000 * time.Second)
	r1 := "r1"
	r2 := "r2"
	util, ok := st.sc.Utilization(r1, r2)
	if !ok {
		t.Fatal("no utilization recorded")
	}
	if math.Abs(util-10e6) > 1e6 {
		t.Fatalf("post-wrap utilization %v, want ~10e6", util)
	}
}

func TestHostMoveReflectedInNextQuery(t *testing.T) {
	st := newSite(t, nil)
	h1, h3 := addrOf(st, "h1"), addrOf(st, "h3")
	res, err := st.sc.Collect(collector.Query{Hosts: []netip.Addr{h1, h3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Nodes()) != 3 {
		t.Fatalf("pre-move nodes = %v", ids(res.Graph))
	}
	// Move h3 to the other switch: same subnet, new L2 path.
	st.n.MoveHost(st.d["h3"], st.d["swB"], 100e6, time.Millisecond)
	res, err = st.sc.Collect(collector.Query{Hosts: []netip.Addr{h1, h3}})
	if err != nil {
		t.Fatal(err)
	}
	// Path now crosses swA ... swB; the per-query location verification
	// must have updated the bridge database.
	if len(res.Graph.Nodes()) < 4 {
		t.Fatalf("post-move query still shows old topology: %v", ids(res.Graph))
	}
}

func TestDropCachesRestoresColdBehaviour(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	_, cold1, _ := st.sc.CollectWithStats(q)
	st.s.RunFor(6 * time.Second)
	_, warm, _ := st.sc.CollectWithStats(q)
	st.sc.DropCaches()
	_, cold2, _ := st.sc.CollectWithStats(q)
	if cold2.Requests <= warm.Requests {
		t.Fatalf("after DropCaches requests = %d, warm = %d", cold2.Requests, warm.Requests)
	}
	if cold2.Requests != cold1.Requests {
		t.Fatalf("cold replay cost %d != original cold %d", cold2.Requests, cold1.Requests)
	}
}
