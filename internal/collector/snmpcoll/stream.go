package snmpcoll

import (
	"sync"

	"remos/internal/collector"
	"remos/internal/rps"
)

// Collector-side streaming prediction (Section 2.3): "streaming
// predictors operate in tandem with collectors ... as each sample became
// available, it would be fed to a directly attached streaming predictor.
// The collector would then make these predictions available to modelers
// that were interested." When Config.StreamPredict names an RPS model,
// every monitored link direction gets a streaming predictor: fitted once
// enough history has accumulated, then advanced per poll, amortizing the
// fit over every consumer of every subsequent query.

// streamState is one directed link's predictor. Its mutex serializes
// Observe/Last on the underlying stream: with parallel polling, two poll
// points measuring the same link from opposite ends may feed one key
// concurrently.
type streamState struct {
	mu     sync.Mutex
	stream *rps.Stream
	fed    int // samples fed since fitting
}

// feedStream advances (or lazily fits) the streaming predictor for one
// history key with a fresh sample. Caller must NOT hold c.mu.
func (c *Collector) feedStream(k collector.HistKey, v float64) {
	if c.cfg.StreamPredict == "" {
		return
	}
	c.mu.Lock()
	st := c.streams[k]
	c.mu.Unlock()
	if st == nil {
		// Enough history to fit?
		hist := c.hist.Get(k)
		if len(hist) < c.streamMinFit() {
			return
		}
		fitter, err := rps.ParseFitter(c.cfg.StreamPredict)
		if err != nil {
			return // validated at construction; defensive
		}
		model, err := fitter.Fit(collector.Values(hist))
		if err != nil {
			return // degenerate history; retry on a later sample
		}
		st = &streamState{stream: rps.NewStream(model, c.streamHorizon())}
		c.mu.Lock()
		if existing := c.streams[k]; existing != nil {
			st = existing // another poll raced us
		} else {
			c.streams[k] = st
		}
		c.mu.Unlock()
		return // the fit consumed this sample via history
	}
	st.mu.Lock()
	st.stream.Observe(v)
	st.fed++
	st.mu.Unlock()
}

func (c *Collector) streamMinFit() int {
	if c.cfg.StreamMinFit > 0 {
		return c.cfg.StreamMinFit
	}
	return 64
}

func (c *Collector) streamHorizon() int {
	if c.cfg.StreamHorizon > 0 {
		return c.cfg.StreamHorizon
	}
	return 8
}

// predictions snapshots the current streaming forecasts for query results.
func (c *Collector) predictions() map[collector.HistKey]collector.Forecast {
	c.mu.Lock()
	keys := make([]collector.HistKey, 0, len(c.streams))
	states := make([]*streamState, 0, len(c.streams))
	for k, st := range c.streams {
		keys = append(keys, k)
		states = append(states, st)
	}
	c.mu.Unlock()
	out := make(map[collector.HistKey]collector.Forecast, len(keys))
	for i, st := range states {
		st.mu.Lock()
		p, n := st.stream.Last()
		st.mu.Unlock()
		if n == 0 || len(p.Values) == 0 {
			continue
		}
		out[keys[i]] = collector.Forecast{
			Values: append([]float64(nil), p.Values...),
			ErrVar: append([]float64(nil), p.ErrVar...),
		}
	}
	return out
}

// StreamCount reports how many link directions have live streaming
// predictors (diagnostics and tests).
func (c *Collector) StreamCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.streams)
}
