package snmpcoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/netsim"
)

// Tests for collector-side streaming prediction (the Section 2.3
// configuration integrated here as an extension).

func streamSite(t *testing.T) *site {
	return newSite(t, func(c *Config) {
		c.StreamPredict = "BM(16)"
		c.StreamMinFit = 16
		c.StreamHorizon = 4
	})
}

func TestStreamingPredictorsAttachAfterMinHistory(t *testing.T) {
	st := streamSite(t)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 4e6})
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	// Below the fit threshold: no streams yet.
	st.s.RunFor(30 * time.Second) // 6 polls
	if st.sc.StreamCount() != 0 {
		t.Fatalf("streams fitted with only ~6 samples: %d", st.sc.StreamCount())
	}
	// Past it: every monitored direction gets a predictor.
	st.s.RunFor(100 * time.Second)
	if st.sc.StreamCount() == 0 {
		t.Fatal("no streaming predictors after ample history")
	}
}

func TestCollectReturnsForecasts(t *testing.T) {
	st := streamSite(t)
	q := collector.Query{
		Hosts:           []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
		WithPredictions: true,
	}
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 4e6})
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(200 * time.Second)
	res, err := st.sc.Collect(q)
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := res.Predictions[collector.HistKey{From: "r1", To: "r2"}]
	if !ok {
		t.Fatalf("no forecast for the WAN link; got %d forecasts", len(res.Predictions))
	}
	if len(fc.Values) != 4 {
		t.Fatalf("forecast horizon %d, want 4", len(fc.Values))
	}
	// Steady 4 Mbit/s load: the forecast says so.
	if math.Abs(fc.Values[0]-4e6) > 5e5 {
		t.Fatalf("forecast %v, want ~4e6", fc.Values[0])
	}
	// Not requested -> not returned.
	res, err = st.sc.Collect(collector.Query{Hosts: q.Hosts})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 0 {
		t.Fatal("predictions returned without being requested")
	}
}

func TestForecastTracksLoadChange(t *testing.T) {
	st := streamSite(t)
	q := collector.Query{
		Hosts:           []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
		WithPredictions: true,
	}
	f, _ := st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 2e6})
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(200 * time.Second)
	f.SetDemand(8e6)
	st.s.RunFor(120 * time.Second) // the BM(16) window turns over
	res, err := st.sc.Collect(q)
	if err != nil {
		t.Fatal(err)
	}
	fc := res.Predictions[collector.HistKey{From: "r1", To: "r2"}]
	if len(fc.Values) == 0 || math.Abs(fc.Values[0]-8e6) > 1e6 {
		t.Fatalf("forecast %v did not track the load change to 8e6", fc.Values)
	}
}

func TestNoStreamConfigNoForecasts(t *testing.T) {
	st := newSite(t, nil) // StreamPredict unset
	q := collector.Query{
		Hosts:           []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
		WithPredictions: true,
	}
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(200 * time.Second)
	res, err := st.sc.Collect(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 0 {
		t.Fatal("forecasts produced without StreamPredict configured")
	}
}

func TestBadStreamSpecPanicsAtConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad StreamPredict spec")
		}
	}()
	New(Config{StreamPredict: "WAVELET(3)"})
}
