package snmpcoll

import (
	"context"
	"fmt"
	"net/netip"
	"sort"

	"remos/internal/collector"
	"remos/internal/collector/bridgecoll"
	"remos/internal/conc"
	"remos/internal/mib"
	"remos/internal/obs"
	"remos/internal/snmp"
	"remos/internal/topology"
)

// Collect implements collector.Interface.
func (c *Collector) Collect(q collector.Query) (*collector.Result, error) {
	res, _, err := c.CollectWithStats(q)
	return res, err
}

// CollectWithStats answers a query and reports its SNMP cost — requests
// sent and total round-trip time — which the scalability experiments use
// as the query response time.
func (c *Collector) CollectWithStats(q collector.Query) (*collector.Result, QueryStats, error) {
	ctx := q.Context()
	tr := obs.FromContext(ctx)
	meter := &snmp.Meter{}
	cl := c.client(meter)
	defer cl.Close() // release any pipelined per-agent sessions
	b := newBuild(ctx, c, cl)

	if len(q.Hosts) == 0 {
		return nil, QueryStats{}, fmt.Errorf("snmpcoll: empty query")
	}
	sp := tr.Start(c.Name() + ":discover")
	// Warm the router cache for every distinct first-hop gateway in
	// parallel before the serial hop-by-hop walk: multi-gateway queries
	// walk their entry routers concurrently instead of one at a time.
	c.prefetchGateways(ctx, cl, q.Hosts)
	// Discover the union of pairwise paths. The route cache makes this
	// effectively linear in the number of new hosts even though it
	// iterates pairs (the naive algorithm's worst case is O(N²); this
	// is the optimization the paper alludes to).
	for i := 0; i < len(q.Hosts); i++ {
		for j := i + 1; j < len(q.Hosts); j++ {
			if err := b.addPath(q.Hosts[i], q.Hosts[j]); err != nil {
				return nil, QueryStats{}, fmt.Errorf("snmpcoll: path %v-%v: %w", q.Hosts[i], q.Hosts[j], err)
			}
		}
	}
	if len(q.Hosts) == 1 {
		if err := b.addHostOnly(q.Hosts[0]); err != nil {
			return nil, QueryStats{}, err
		}
	}
	sp.EndDetail(fmt.Sprintf("%d routers", len(b.routersUsed)))

	// Per-query validation of every cached device involved (reboot and
	// liveness check) — the warm-cache query cost. Devices validate in
	// parallel; the address ordering keeps the reported error (if any)
	// deterministic.
	used := make([]netip.Addr, 0, len(b.routersUsed))
	for a := range b.routersUsed {
		used = append(used, a)
	}
	sort.Slice(used, func(i, j int) bool { return used[i].Less(used[j]) })
	sp = tr.Start(c.Name() + ":validate")
	validated := make([]*routerInfo, len(used))
	if err := conc.ForEachCtx(ctx, len(used), c.cfg.Parallelism, func(i int) error {
		fresh, err := c.validateRouter(ctx, cl, b.routersUsed[used[i]])
		if err != nil {
			return err
		}
		validated[i] = fresh
		return nil
	}); err != nil {
		sp.EndDetail(err.Error())
		return nil, QueryStats{}, err
	}
	for i, a := range used {
		if validated[i] != nil {
			b.routersUsed[a] = validated[i]
		}
	}
	sp.EndDetail(fmt.Sprintf("%d devices", len(used)))

	// Annotate utilization from monitoring history, registering any
	// unmonitored links for the poller; registration performs the
	// initial counter read.
	sp = tr.Start(c.Name() + ":annotate")
	cold := c.annotate(ctx, cl, b)
	sp.End()

	res := &collector.Result{Graph: b.g}
	if q.WithHistory {
		res.History = c.hist.Snapshot()
	}
	if q.WithPredictions {
		res.Predictions = c.predictions()
	}
	reqs, rtt := meter.Snapshot()
	c.queriesServed.Add(1)
	c.mQueries.Inc()
	if cold {
		c.mCold.Inc()
	}
	tr.Event(c.Name()+":snmp", fmt.Sprintf("%d exchanges, rtt %v", reqs, rtt))
	return res, QueryStats{Requests: reqs, RTT: rtt, ColdStart: cold}, nil
}

// prefetchGateways fills the router cache for the distinct gateways of
// the queried hosts concurrently. Errors are deliberately dropped here:
// the serial discovery path re-attempts the fetch and reports the failure
// with full path context. Prefetching is pointless (and would double the
// measured cost) when the route cache is disabled or there is nothing to
// do in parallel.
func (c *Collector) prefetchGateways(ctx context.Context, cl *snmp.Client, hosts []netip.Addr) {
	if c.cfg.DisableRouteCache || conc.Limit(c.cfg.Parallelism) == 1 {
		return
	}
	seen := make(map[netip.Addr]bool)
	var gws []netip.Addr
	for _, h := range hosts {
		gw, ok := c.cfg.GatewayOf(h)
		if !ok || seen[gw] {
			continue
		}
		seen[gw] = true
		c.mu.Lock()
		_, cached := c.routers[gw]
		c.mu.Unlock()
		if !cached {
			gws = append(gws, gw)
		}
	}
	if len(gws) < 2 {
		return
	}
	conc.ForEachCtx(ctx, len(gws), c.cfg.Parallelism, func(i int) error {
		c.routerFor(ctx, cl, gws[i])
		return nil
	})
}

// build accumulates one query's graph.
type build struct {
	ctx context.Context
	c   *Collector
	cl  *snmp.Client
	g   *topology.Graph

	routersUsed map[netip.Addr]*routerInfo
	linkPolls   map[string]pollReg // link key -> poll registration
	verified    map[netip.Addr]bool
	l2Attached  map[netip.Addr]bool // hosts already connected via an L2 path
	connected   map[string]bool     // node-ID pairs already joined (possibly multi-hop)
}

type pollReg struct {
	agent       netip.Addr
	ifIndex     int
	from, to    string
	outIsFromTo bool
}

func newBuild(ctx context.Context, c *Collector, cl *snmp.Client) *build {
	return &build{
		ctx:         ctx,
		c:           c,
		cl:          cl,
		g:           topology.NewGraph(),
		routersUsed: make(map[netip.Addr]*routerInfo),
		linkPolls:   make(map[string]pollReg),
		verified:    make(map[netip.Addr]bool),
		l2Attached:  make(map[netip.Addr]bool),
		connected:   make(map[string]bool),
	}
}

func linkKey(a, b string) string {
	if a < b {
		return a + "|" + b
	}
	return b + "|" + a
}

// ensureLink adds a link once per unordered pair, remembering its poll
// point.
func (b *build) ensureLink(l topology.Link, reg *pollReg) error {
	key := linkKey(l.From, l.To)
	if _, dup := b.linkPolls[key]; dup {
		return nil
	}
	if _, err := b.g.AddLink(l); err != nil {
		return err
	}
	if reg != nil {
		b.linkPolls[key] = *reg
	} else {
		b.linkPolls[key] = pollReg{}
	}
	return nil
}

// addHostOnly places a lone queried host in the graph.
func (b *build) addHostOnly(h netip.Addr) error {
	b.g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
	return b.verifyHost(h)
}

// resolveMAC resolves a host's MAC: from the static ARP cache, by an SNMP
// ipNetToMedia lookup at the host's gateway router, or from configuration.
// The result is cached — it is part of the collector's static state
// (dropped by DropCaches, kept by DropDynamic).
func (b *build) resolveMAC(h netip.Addr) (collector.MAC, bool) {
	b.c.mu.Lock()
	mac, ok := b.c.arp[h]
	b.c.mu.Unlock()
	if ok && !b.c.cfg.DisableRouteCache {
		return mac, true
	}
	if gw, okGw := b.c.cfg.GatewayOf(h); okGw {
		if ri, err := b.c.routerFor(b.ctx, b.cl, gw); err == nil {
			if e, okR := ri.lpm(h); okR {
				ip4 := h.As4()
				oid := mib.IPNetToMediaPhys.Append(uint32(e.ifIndex),
					uint32(ip4[0]), uint32(ip4[1]), uint32(ip4[2]), uint32(ip4[3]))
				if v, err := b.cl.GetOneContext(b.ctx, gw.String(), oid); err == nil {
					if m, okM := collector.MACFromBytes(v.Bytes); okM {
						b.c.mu.Lock()
						b.c.arp[h] = m
						b.c.mu.Unlock()
						return m, true
					}
				}
			}
		}
	}
	if b.c.cfg.ResolveMAC != nil {
		if m, okC := b.c.cfg.ResolveMAC(h); okC {
			b.c.mu.Lock()
			b.c.arp[h] = m
			b.c.mu.Unlock()
			return m, true
		}
	}
	return collector.MAC{}, false
}

// verifyHost performs the per-query host location check through the
// Bridge Collector (one SNMP Get when the location is already believed).
func (b *build) verifyHost(h netip.Addr) error {
	if b.verified[h] {
		return nil
	}
	b.verified[h] = true
	if b.c.cfg.Bridge == nil {
		return nil
	}
	mac, ok := b.resolveMAC(h)
	if !ok {
		return nil
	}
	// Unknown stations are outside the bridge domain; fine.
	sw, port, known := b.c.cfg.Bridge.Locate(mac)
	if !known {
		return nil
	}
	// One Get of the station's forwarding entry on the bridge it is
	// believed to be attached to — the cheap location check, issued on
	// this query's metered client so it counts toward query time.
	v, err := b.cl.GetOneContext(b.ctx, sw.String(), mib.Dot1dTpFdbPort.Append(mac.OIDSuffix()...))
	if err == nil && int(v.Int) == port {
		return nil
	}
	// The station moved (or the bridge lost it): have the Bridge
	// Collector resynchronize its database.
	_, _, err = b.c.cfg.Bridge.SearchStation(mac)
	return err
}

// addPath discovers and adds the full path between two hosts.
func (b *build) addPath(src, dst netip.Addr) error {
	for _, h := range []netip.Addr{src, dst} {
		b.g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
		if err := b.verifyHost(h); err != nil {
			return err
		}
	}
	// Same level-2 domain? Then the whole path is bridged. If both
	// endpoints are already attached to the bridged portion of this
	// query's graph, the connecting path is already present (bridged
	// topologies are trees) — this is the route-caching optimization
	// that keeps large-N queries from exploring all O(N²) pairs.
	if b.c.cfg.Bridge != nil {
		ms, okS := b.resolveMAC(src)
		md, okD := b.resolveMAC(dst)
		if okS && okD {
			dS, okDS := b.c.cfg.Bridge.Domain(ms)
			dD, okDD := b.c.cfg.Bridge.Domain(md)
			if okDS && okDD && dS == dD && b.l2Attached[src] && b.l2Attached[dst] {
				return nil
			}
			if segs, err := b.c.cfg.Bridge.Path(ms, md); err == nil {
				if err := b.addL2Segments(segs, src.String(), dst.String()); err != nil {
					return err
				}
				b.l2Attached[src] = true
				b.l2Attached[dst] = true
				return nil
			}
		}
	}
	// Routed: follow from src's gateway.
	gw, ok := b.c.cfg.GatewayOf(src)
	if !ok {
		return fmt.Errorf("no gateway configured for %v", src)
	}
	chain, err := b.routerChain(gw, dst)
	if err != nil {
		return err
	}
	// Attach src to the first router over level 2.
	if err := b.attachHostToRouter(src, chain[0]); err != nil {
		return err
	}
	// Router-to-router hops.
	for i := 0; i+1 < len(chain); i++ {
		if err := b.addRouterHop(chain[i], chain[i+1], dst); err != nil {
			return err
		}
	}
	// Attach dst to the last router.
	return b.attachHostToRouter(dst, chain[len(chain)-1])
}

// routerChain follows routes hop-to-hop from the start router toward dst,
// returning the router addresses traversed. Cached per (start, dst).
func (b *build) routerChain(start, dst netip.Addr) ([]netip.Addr, error) {
	ck := chainKey{start: start, dst: dst}
	b.c.mu.Lock()
	cached, ok := b.c.chains[ck]
	b.c.mu.Unlock()
	if ok && !b.c.cfg.DisableRouteCache {
		for _, r := range cached {
			if err := b.useRouter(r); err != nil {
				return nil, err
			}
		}
		return cached, nil
	}
	var chain []netip.Addr
	cur := start
	for hops := 0; ; hops++ {
		if hops > 32 {
			return nil, fmt.Errorf("route loop toward %v", dst)
		}
		chain = append(chain, cur)
		if err := b.useRouter(cur); err != nil {
			return nil, err
		}
		ri := b.routersUsed[cur]
		e, ok := ri.lpm(dst)
		if !ok {
			return nil, fmt.Errorf("router %v has no route to %v", cur, dst)
		}
		if !e.nextHop.IsValid() {
			break // directly connected: dst is on this router's segment
		}
		cur = e.nextHop
	}
	b.c.mu.Lock()
	b.c.chains[ck] = chain
	b.c.mu.Unlock()
	return chain, nil
}

// useRouter ensures a router's tables are loaded and tracked this query.
// The graph node is keyed by the router's canonical identity (sysName),
// so a router contacted under several of its addresses appears once.
func (b *build) useRouter(addr netip.Addr) error {
	if _, ok := b.routersUsed[addr]; ok {
		return nil
	}
	ri, err := b.c.routerFor(b.ctx, b.cl, addr)
	if err != nil {
		return err
	}
	b.routersUsed[addr] = ri
	if b.g.Node(ri.nodeID()) == nil {
		b.g.AddNode(topology.Node{ID: ri.nodeID(), Kind: topology.RouterNode, Addr: ri.addr.String()})
	}
	return nil
}

// attachHostToRouter adds the host-to-gateway connection: through the
// Bridge Collector's level-2 path when available (using the router's own
// interface MAC on the host's segment, from its ifPhysAddress table),
// otherwise through a virtual switch — the paper's representation for
// shared Ethernets and segments the collector cannot see inside.
func (b *build) attachHostToRouter(h, r netip.Addr) error {
	ri := b.routersUsed[r]
	rtrID := r.String()
	if ri != nil {
		rtrID = ri.nodeID()
	}
	hostID := h.String()
	if b.connected[linkKey(hostID, rtrID)] {
		return nil
	}
	if b.c.cfg.Bridge != nil && ri != nil {
		if mh, okH := b.resolveMAC(h); okH {
			if e, okR := ri.lpm(h); okR {
				if mr, okM := ri.macByIf[e.ifIndex]; okM {
					if segs, err := b.c.cfg.Bridge.Path(mh, mr); err == nil {
						b.connected[linkKey(hostID, rtrID)] = true
						return b.addL2Segments(segs, hostID, rtrID)
					}
				}
			}
		}
	}
	// Virtual switch fallback: host -- vswitch -- router, capacity from
	// the router's interface speed toward the host.
	speed := 0.0
	if ri != nil {
		if e, ok := ri.lpm(h); ok {
			speed = ri.ifSpeed[e.ifIndex]
		}
	}
	vID := "v:" + rtrID
	if b.g.Node(vID) == nil {
		b.g.AddNode(topology.Node{ID: vID, Kind: topology.VirtualNode})
	}
	if err := b.ensureLink(topology.Link{From: hostID, To: vID, Capacity: speed}, nil); err != nil {
		return err
	}
	b.connected[linkKey(hostID, rtrID)] = true
	// Router side of the virtual switch is pollable on the router.
	var reg *pollReg
	if ri != nil {
		if e, ok := ri.lpm(h); ok {
			reg = &pollReg{agent: r, ifIndex: e.ifIndex, from: rtrID, to: vID, outIsFromTo: true}
		}
	}
	return b.ensureLink(topology.Link{From: rtrID, To: vID, Capacity: speed}, reg)
}

// addL2Segments folds Bridge Collector path segments into the graph,
// renaming the station endpoints to the given IDs and registering each
// segment's poll point.
func (b *build) addL2Segments(segs []bridgecoll.Segment, fromID, toID string) error {
	for i, s := range segs {
		f, t := s.FromID, s.ToID
		if i == 0 {
			f = fromID
		}
		if i == len(segs)-1 {
			t = toID
		}
		// Interior IDs are switch management addresses: add nodes.
		for _, n := range []struct {
			id    string
			first bool
		}{{f, i == 0}, {t, i == len(segs)-1}} {
			if b.g.Node(n.id) == nil {
				kind := topology.SwitchNode
				addr := n.id
				b.g.AddNode(topology.Node{ID: n.id, Kind: kind, Addr: addr})
			}
		}
		reg := &pollReg{
			agent:   s.PollSwitch,
			ifIndex: s.PollPort,
			from:    f,
			to:      t,
			// When the polled port is at the From end, its out
			// octets measure From->To.
			outIsFromTo: s.PollIsFrom,
		}
		if err := b.ensureLink(topology.Link{From: f, To: t, Capacity: s.Capacity}, reg); err != nil {
			return err
		}
	}
	return nil
}

// addRouterHop connects two adjacent routers: through the bridged segment
// between them when the Bridge Collector covers it (the egress interface
// MAC comes from the router's own ifPhysAddress, the next hop's from the
// router's ARP table), otherwise as a direct link. The egress interface
// speed gives the capacity and the egress interface is the poll point.
func (b *build) addRouterHop(a, bAddr netip.Addr, dst netip.Addr) error {
	riA := b.routersUsed[a]
	riB := b.routersUsed[bAddr]
	aID, bID := riA.nodeID(), riB.nodeID()
	if b.connected[linkKey(aID, bID)] {
		return nil
	}
	e, ok := riA.lpm(dst)
	if !ok {
		return fmt.Errorf("router %v lost its route to %v", a, dst)
	}
	if b.c.cfg.Bridge != nil {
		ma, okA := riA.macByIf[e.ifIndex]
		mb, okB := b.arpLookup(a, riA, e.ifIndex, bAddr)
		if okA && okB {
			if segs, err := b.c.cfg.Bridge.Path(ma, mb); err == nil {
				b.connected[linkKey(aID, bID)] = true
				return b.addL2Segments(segs, aID, bID)
			}
		}
	}
	speed := riA.ifSpeed[e.ifIndex]
	b.connected[linkKey(aID, bID)] = true
	reg := &pollReg{agent: a, ifIndex: e.ifIndex, from: aID, to: bID, outIsFromTo: true}
	return b.ensureLink(topology.Link{From: aID, To: bID, Capacity: speed}, reg)
}

// arpLookup resolves target's MAC through the ARP table of the router at
// via (interface ifIndex), with the collector-level ARP cache.
func (b *build) arpLookup(via netip.Addr, ri *routerInfo, ifIndex int, target netip.Addr) (collector.MAC, bool) {
	b.c.mu.Lock()
	mac, ok := b.c.arp[target]
	b.c.mu.Unlock()
	if ok && !b.c.cfg.DisableRouteCache {
		return mac, true
	}
	ip4 := target.As4()
	oid := mib.IPNetToMediaPhys.Append(uint32(ifIndex),
		uint32(ip4[0]), uint32(ip4[1]), uint32(ip4[2]), uint32(ip4[3]))
	v, err := b.cl.GetOneContext(b.ctx, via.String(), oid)
	if err != nil {
		return collector.MAC{}, false
	}
	m, okM := collector.MACFromBytes(v.Bytes)
	if !okM {
		return collector.MAC{}, false
	}
	b.c.mu.Lock()
	b.c.arp[target] = m
	b.c.mu.Unlock()
	return m, true
}
