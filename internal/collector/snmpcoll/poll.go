package snmpcoll

import (
	"net/netip"
	"sort"
	"time"

	"remos/internal/collector"
	"remos/internal/conc"
	"remos/internal/mib"
	"remos/internal/snmp"
)

// annotate fills each graph link's utilization from history, registering
// poll points for links not yet monitored. It reports whether any link was
// cold (registered just now, so utilization is not yet available).
func (c *Collector) annotate(cl *snmp.Client, b *build) (coldStart bool) {
	for _, l := range b.g.Links() {
		reg, ok := b.linkPolls[linkKey(l.From, l.To)]
		if !ok || !reg.agent.IsValid() {
			continue // unmeasurable link (virtual host side)
		}
		kFwd := collector.HistKey{From: reg.from, To: reg.to}
		kRev := collector.HistKey{From: reg.to, To: reg.from}
		sFwd, okF := c.hist.Latest(kFwd)
		sRev, okR := c.hist.Latest(kRev)
		if okF || okR {
			// Orient onto the link (reg.from/to may be swapped
			// relative to l.From/To).
			fwd, rev := sFwd.Bits, sRev.Bits
			if l.From != reg.from {
				fwd, rev = rev, fwd
			}
			l.UtilFromTo = fwd
			l.UtilToFrom = rev
		}
		c.mu.Lock()
		mk := monitorKey{agent: reg.agent, ifIndex: reg.ifIndex}
		_, monitored := c.monitors[mk]
		if !monitored {
			p := &pollPoint{
				agent:       reg.agent,
				ifIndex:     reg.ifIndex,
				from:        reg.from,
				to:          reg.to,
				outIsFromTo: reg.outIsFromTo,
			}
			c.monitors[mk] = p
			c.mu.Unlock()
			coldStart = true
			// Initial baseline read so the first poll yields a
			// delta one interval from now.
			c.readCounters(cl, p)
			continue
		}
		c.mu.Unlock()
		if !okF && !okR {
			coldStart = true // monitored, but no delta yet
		}
	}
	return coldStart
}

// readCounters reads a poll point's octet counters once, recording a
// utilization sample when a previous baseline exists. The point's mutex
// is held for the whole exchange, serializing reads of one interface so
// a query-path baseline read and a parallel poll never interleave their
// delta computations.
func (c *Collector) readCounters(cl *snmp.Client, p *pollPoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := c.now()
	vbs, err := cl.Get(p.agent.String(),
		mib.IfInOctets.Append(uint32(p.ifIndex)),
		mib.IfOutOctets.Append(uint32(p.ifIndex)))
	if err != nil {
		p.havePrev = false // device unreachable; resync next time
		return
	}
	var in, out uint32
	for _, vb := range vbs {
		if vb.Value.Kind != snmp.KindCounter32 {
			p.havePrev = false
			return
		}
		if vb.Name.HasPrefix(mib.IfInOctets) {
			in = uint32(vb.Value.Int)
		} else {
			out = uint32(vb.Value.Int)
		}
	}
	if p.havePrev {
		dt := now.Sub(p.prevAt).Seconds()
		if dt > 0 {
			dIn := uint32(in - p.prevIn) // wraps correctly in uint32
			dOut := uint32(out - p.prevOut)
			// A counter moving backwards by more than half the range
			// is a device reset, not a wrap: resynchronize instead of
			// recording an absurd rate.
			if dIn > 1<<31 || dOut > 1<<31 {
				p.prevIn, p.prevOut, p.prevAt = in, out, now
				return
			}
			inBits := float64(dIn) * 8 / dt
			outBits := float64(dOut) * 8 / dt
			fwdKey := collector.HistKey{From: p.from, To: p.to}
			revKey := collector.HistKey{From: p.to, To: p.from}
			fwdBits, revBits := outBits, inBits
			if !p.outIsFromTo {
				fwdBits, revBits = inBits, outBits
			}
			c.hist.Add(fwdKey, collector.Sample{T: now, Bits: fwdBits})
			c.hist.Add(revKey, collector.Sample{T: now, Bits: revBits})
			// Feed the directly attached streaming predictors
			// (Section 2.3), when configured.
			c.feedStream(fwdKey, fwdBits)
			c.feedStream(revKey, revBits)
		}
	}
	p.prevIn, p.prevOut, p.prevAt, p.havePrev = in, out, now, true
}

func (c *Collector) now() time.Time {
	if c.cfg.Sched != nil {
		return c.cfg.Sched.Now()
	}
	return time.Now()
}

// pollOnce reads every monitored interface — the periodic monitoring loop
// ("by default, the utilization is monitored every five seconds"). The
// interfaces are polled by a worker pool (Config.Parallelism wide) so a
// large monitoring set completes within the poll interval; each sample is
// timestamped at its own read, and the history store and per-point
// baselines carry their own locks.
func (c *Collector) pollOnce() {
	c.mu.Lock()
	points := make([]*pollPoint, 0, len(c.monitors))
	for _, p := range c.monitors {
		points = append(points, p)
	}
	c.mu.Unlock()
	sort.Slice(points, func(i, j int) bool {
		if points[i].agent != points[j].agent {
			return points[i].agent.Less(points[j].agent)
		}
		return points[i].ifIndex < points[j].ifIndex
	})
	cl := c.client(nil)
	conc.ForEach(len(points), c.cfg.Parallelism, func(i int) error {
		c.readCounters(cl, points[i])
		return nil
	})
}

// Monitored returns the number of interfaces under periodic monitoring.
func (c *Collector) Monitored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.monitors)
}

// Utilization returns the latest measured utilization for the directed
// pair of node IDs, if any.
func (c *Collector) Utilization(from, to string) (float64, bool) {
	s, ok := c.hist.Latest(collector.HistKey{From: from, To: to})
	return s.Bits, ok
}

// DropCaches clears the router, route, and monitoring caches — used by
// experiments to produce the Fig 3 "cold" scenario on a running collector.
func (c *Collector) DropCaches() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routers = make(map[netip.Addr]*routerInfo)
	c.chains = make(map[chainKey][]netip.Addr)
	c.arp = make(map[netip.Addr]collector.MAC)
	c.monitors = make(map[monitorKey]*pollPoint)
	c.hist = collector.NewHistory(c.cfg.HistoryLen)
	c.streams = make(map[collector.HistKey]*streamState)
}

// DropDynamic clears only the dynamic data (monitoring baselines and
// history), keeping static topology caches — the Fig 3 "warm-bridge"
// scenario (static warm, dynamic cold).
func (c *Collector) DropDynamic() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.monitors = make(map[monitorKey]*pollPoint)
	c.hist = collector.NewHistory(c.cfg.HistoryLen)
	c.streams = make(map[collector.HistKey]*streamState)
}
