package snmpcoll

import (
	"context"
	"net/netip"
	"sort"
	"time"

	"remos/internal/collector"
	"remos/internal/conc"
	"remos/internal/mib"
	"remos/internal/snmp"
)

// annotate fills each graph link's utilization from history, registering
// poll points for links not yet monitored. It reports whether any link was
// cold (registered just now, so utilization is not yet available).
func (c *Collector) annotate(ctx context.Context, cl *snmp.Client, b *build) (coldStart bool) {
	for _, l := range b.g.Links() {
		reg, ok := b.linkPolls[linkKey(l.From, l.To)]
		if !ok || !reg.agent.IsValid() {
			continue // unmeasurable link (virtual host side)
		}
		kFwd := collector.HistKey{From: reg.from, To: reg.to}
		kRev := collector.HistKey{From: reg.to, To: reg.from}
		sFwd, okF := c.hist.Latest(kFwd)
		sRev, okR := c.hist.Latest(kRev)
		if okF || okR {
			// Orient onto the link (reg.from/to may be swapped
			// relative to l.From/To).
			fwd, rev := sFwd.Bits, sRev.Bits
			if l.From != reg.from {
				fwd, rev = rev, fwd
			}
			l.UtilFromTo = fwd
			l.UtilToFrom = rev
		}
		c.mu.Lock()
		mk := monitorKey{agent: reg.agent, ifIndex: reg.ifIndex}
		_, monitored := c.monitors[mk]
		if !monitored {
			p := &pollPoint{
				agent:       reg.agent,
				ifIndex:     reg.ifIndex,
				from:        reg.from,
				to:          reg.to,
				outIsFromTo: reg.outIsFromTo,
			}
			c.monitors[mk] = p
			c.mu.Unlock()
			coldStart = true
			// Initial baseline read so the first poll yields a
			// delta one interval from now.
			c.readCounters(ctx, cl, p)
			continue
		}
		c.mu.Unlock()
		if !okF && !okR {
			coldStart = true // monitored, but no delta yet
		}
	}
	return coldStart
}

// pollOIDs returns the OIDs a point's next read fetches, by mode. A probe
// asks for both counter generations in one Get so the first (baseline)
// exchange also decides which pair this interface serves — the cold read
// stays a single exchange either way.
func (p *pollPoint) pollOIDs(dst []snmp.OID) []snmp.OID {
	idx := uint32(p.ifIndex)
	switch p.mode {
	case modeHC:
		return append(dst, mib.IfHCInOctets.Append(idx), mib.IfHCOutOctets.Append(idx))
	case mode32:
		return append(dst, mib.IfInOctets.Append(idx), mib.IfOutOctets.Append(idx))
	default: // modeProbe
		return append(dst,
			mib.IfHCInOctets.Append(idx), mib.IfHCOutOctets.Append(idx),
			mib.IfInOctets.Append(idx), mib.IfOutOctets.Append(idx))
	}
}

// counterKind is the value kind the mode's counters must carry.
func (m counterMode) counterKind() snmp.Kind {
	if m == modeHC {
		return snmp.KindCounter64
	}
	return snmp.KindCounter32
}

// readCounters reads a poll point's octet counters once, recording a
// utilization sample when a previous baseline exists. The point's mutex
// is held for the whole exchange, serializing reads of one interface so
// a query-path baseline read and a parallel poll never interleave their
// delta computations.
func (c *Collector) readCounters(ctx context.Context, cl *snmp.Client, p *pollPoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.readCountersLocked(ctx, cl, p)
}

// readCountersLocked is readCounters with p.mu already held.
func (c *Collector) readCountersLocked(ctx context.Context, cl *snmp.Client, p *pollPoint) {
	now := c.now()
	oids := p.pollOIDs(nil)
	vbs, err := cl.GetContext(ctx, p.agent.String(), oids...)
	if err != nil {
		p.havePrev = false // device unreachable; resync next time
		return
	}
	in, out, ok := p.applyCounterVarBinds(oids, vbs)
	if !ok {
		return
	}
	c.applyDelta(p, in, out, now)
}

// applyCounterVarBinds validates a response against the OIDs the point
// asked for and extracts the (in, out) counter pair. Probe responses
// resolve the point's mode: high-capacity counters when served, legacy
// Counter32 otherwise. Any unexpected OID or value kind resynchronizes
// the point (baseline dropped, mode re-probed) and returns ok=false —
// the satellite fix for the old matcher, which took any non-ifInOctets
// varbind for the out-counter.
func (p *pollPoint) applyCounterVarBinds(oids []snmp.OID, vbs []snmp.VarBind) (in, out uint64, ok bool) {
	resync := func() (uint64, uint64, bool) {
		p.havePrev = false
		p.mode = modeProbe
		return 0, 0, false
	}
	if len(vbs) != len(oids) {
		return resync()
	}
	for i, vb := range vbs {
		if vb.Name.Cmp(oids[i]) != 0 {
			return resync()
		}
	}
	if p.mode == modeProbe {
		// vbs: HCIn, HCOut, In32, Out32.
		if vbs[0].Value.Kind == snmp.KindCounter64 && vbs[1].Value.Kind == snmp.KindCounter64 {
			p.mode = modeHC
			return uint64(vbs[0].Value.Int), uint64(vbs[1].Value.Int), true
		}
		if vbs[2].Value.Kind == snmp.KindCounter32 && vbs[3].Value.Kind == snmp.KindCounter32 {
			p.mode = mode32
			return uint64(uint32(vbs[2].Value.Int)), uint64(uint32(vbs[3].Value.Int)), true
		}
		return resync()
	}
	kind := p.mode.counterKind()
	if vbs[0].Value.Kind != kind || vbs[1].Value.Kind != kind {
		return resync()
	}
	if p.mode == mode32 {
		return uint64(uint32(vbs[0].Value.Int)), uint64(uint32(vbs[1].Value.Int)), true
	}
	return uint64(vbs[0].Value.Int), uint64(vbs[1].Value.Int), true
}

// applyDelta records a utilization sample from a fresh counter reading
// taken at now, then advances the baseline. Counter32 deltas use 32-bit
// wraparound arithmetic exactly as the unbatched poller always did;
// Counter64 counters never wrap in practice, so any backwards movement is
// a device reset. Both paths resynchronize on a reset instead of
// recording an absurd rate.
func (c *Collector) applyDelta(p *pollPoint, in, out uint64, now time.Time) {
	if p.havePrev {
		dt := now.Sub(p.prevAt).Seconds()
		if dt > 0 {
			var dIn, dOut uint64
			if p.mode == modeHC {
				if in < p.prevIn || out < p.prevOut {
					p.prevIn, p.prevOut, p.prevAt = in, out, now
					return
				}
				dIn, dOut = in-p.prevIn, out-p.prevOut
			} else {
				d32In := uint32(uint32(in) - uint32(p.prevIn)) // wraps correctly in uint32
				d32Out := uint32(uint32(out) - uint32(p.prevOut))
				// A counter moving backwards by more than half the range
				// is a device reset, not a wrap: resynchronize instead of
				// recording an absurd rate.
				if d32In > 1<<31 || d32Out > 1<<31 {
					p.prevIn, p.prevOut, p.prevAt = in, out, now
					return
				}
				dIn, dOut = uint64(d32In), uint64(d32Out)
			}
			inBits := float64(dIn) * 8 / dt
			outBits := float64(dOut) * 8 / dt
			fwdKey := collector.HistKey{From: p.from, To: p.to}
			revKey := collector.HistKey{From: p.to, To: p.from}
			fwdBits, revBits := outBits, inBits
			if !p.outIsFromTo {
				fwdBits, revBits = inBits, outBits
			}
			c.hist.Add(fwdKey, collector.Sample{T: now, Bits: fwdBits})
			c.hist.Add(revKey, collector.Sample{T: now, Bits: revBits})
			// Feed the directly attached streaming predictors
			// (Section 2.3), when configured.
			c.feedStream(fwdKey, fwdBits)
			c.feedStream(revKey, revBits)
		}
	}
	p.prevIn, p.prevOut, p.prevAt, p.havePrev = in, out, now, true
}

func (c *Collector) now() time.Time {
	if c.cfg.Sched != nil {
		return c.cfg.Sched.Now()
	}
	//remoslint:allow wallclock designated fallback: nil Config.Sched means the wall clock by contract
	return time.Now()
}

// pollOnce reads every monitored interface — the periodic monitoring loop
// ("by default, the utilization is monitored every five seconds"). Points
// are grouped by agent and each device's counters are read in multi-
// varbind Gets bounded by Config.MaxVarBinds, so a poll cycle costs one
// exchange per device rather than one per interface; the batches are then
// issued by a worker pool (Config.Parallelism wide) so a large monitoring
// set completes within the poll interval.
func (c *Collector) pollOnce() {
	c.mu.Lock()
	points := make([]*pollPoint, 0, len(c.monitors))
	for _, p := range c.monitors {
		points = append(points, p)
	}
	c.mu.Unlock()
	sort.Slice(points, func(i, j int) bool {
		if points[i].agent != points[j].agent {
			return points[i].agent.Less(points[j].agent)
		}
		return points[i].ifIndex < points[j].ifIndex
	})
	// Chunk consecutive same-agent points; each chunk is one Get of up to
	// MaxVarBinds varbinds (two per interface).
	perPDU := c.maxVarBinds() / 2
	var batches [][]*pollPoint
	for start := 0; start < len(points); {
		end := start + 1
		for end < len(points) && points[end].agent == points[start].agent && end-start < perPDU {
			end++
		}
		batches = append(batches, points[start:end])
		start = end
	}
	cl := c.pollClient
	conc.ForEach(len(batches), c.cfg.Parallelism, func(i int) error {
		c.readBatch(cl, batches[i])
		return nil
	})
	c.lastPoll.Store(c.now().UnixNano())
}

// readBatch reads one device's chunk of poll points in a single Get,
// timestamping the whole batch once. Points still probing for their
// counter generation are read individually (their probe doubles as the
// baseline read). A failed or short response falls back to per-interface
// reads, so one misbehaving varbind cannot poison a device's whole batch.
func (c *Collector) readBatch(cl *snmp.Client, batch []*pollPoint) {
	for _, p := range batch {
		p.mu.Lock()
	}
	defer func() {
		for _, p := range batch {
			p.mu.Unlock()
		}
	}()
	// Separate settled points (2 OIDs each, batchable) from probes.
	settled := batch[:0:0]
	for _, p := range batch {
		if p.mode == modeProbe {
			c.readCountersLocked(context.Background(), cl, p)
		} else {
			settled = append(settled, p)
		}
	}
	if len(settled) == 0 {
		return
	}
	if len(settled) == 1 {
		c.readCountersLocked(context.Background(), cl, settled[0])
		return
	}
	oids := make([]snmp.OID, 0, 2*len(settled))
	for _, p := range settled {
		oids = p.pollOIDs(oids)
	}
	now := c.now()
	vbs, err := cl.Get(settled[0].agent.String(), oids...)
	if err != nil {
		for _, p := range settled {
			p.havePrev = false // device unreachable; resync next time
		}
		return
	}
	if len(vbs) != len(oids) {
		// Malformed response: retry each interface on its own.
		for _, p := range settled {
			c.readCountersLocked(context.Background(), cl, p)
		}
		return
	}
	for i, p := range settled {
		pair := oids[2*i : 2*i+2]
		in, out, ok := p.applyCounterVarBinds(pair, vbs[2*i:2*i+2])
		if !ok {
			// This interface answered with an unexpected OID or kind
			// (partial error): re-read it alone, which re-probes.
			c.readCountersLocked(context.Background(), cl, p)
			continue
		}
		c.applyDelta(p, in, out, now)
	}
}

// Monitored returns the number of interfaces under periodic monitoring.
func (c *Collector) Monitored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.monitors)
}

// Utilization returns the latest measured utilization for the directed
// pair of node IDs, if any.
func (c *Collector) Utilization(from, to string) (float64, bool) {
	s, ok := c.hist.Latest(collector.HistKey{From: from, To: to})
	return s.Bits, ok
}

// DropCaches clears the router, route, and monitoring caches — used by
// experiments to produce the Fig 3 "cold" scenario on a running collector.
func (c *Collector) DropCaches() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routers = make(map[netip.Addr]*routerInfo)
	c.chains = make(map[chainKey][]netip.Addr)
	c.arp = make(map[netip.Addr]collector.MAC)
	c.monitors = make(map[monitorKey]*pollPoint)
	c.hist = collector.NewHistory(c.cfg.HistoryLen)
	c.streams = make(map[collector.HistKey]*streamState)
}

// DropDynamic clears only the dynamic data (monitoring baselines and
// history), keeping static topology caches — the Fig 3 "warm-bridge"
// scenario (static warm, dynamic cold).
func (c *Collector) DropDynamic() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.monitors = make(map[monitorKey]*pollPoint)
	c.hist = collector.NewHistory(c.cfg.HistoryLen)
	c.streams = make(map[collector.HistKey]*streamState)
}
