// Package snmpcoll implements the Remos SNMP Collector (Section 3.1.1):
// it discovers the routed topology between queried hosts by following
// routes hop-to-hop through router route tables, learns link capacities
// from interface tables, periodically monitors utilization through octet
// counters, aggressively caches everything it learns, and represents
// unreachable regions and shared segments with virtual switches.
//
// Level-2 detail inside switched segments comes from a Bridge Collector
// when one is attached, exactly as in the paper.
package snmpcoll

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/bridgecoll"
	"remos/internal/conc"
	"remos/internal/mib"
	"remos/internal/obs"
	"remos/internal/rps"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// Config configures an SNMP Collector.
type Config struct {
	// Name identifies the collector (e.g. "snmp-cmu").
	Name string
	// Transport and Community configure SNMP access.
	Transport snmp.Transport
	Community string
	// Sched drives periodic polling.
	Sched sim.Scheduler
	// GatewayOf returns the configured first-hop router for a host —
	// "the routers they are configured to use" in the paper's words.
	GatewayOf func(netip.Addr) (netip.Addr, bool)
	// ResolveMAC maps a host or router address to its MAC for level-2
	// lookups (ARP knowledge).
	ResolveMAC func(netip.Addr) (collector.MAC, bool)
	// Bridge optionally supplies level-2 paths within switched
	// segments.
	Bridge *bridgecoll.Collector
	// PollInterval is the utilization monitoring period (default 5s,
	// the paper's default).
	PollInterval time.Duration
	// HistoryLen bounds per-link measurement history (default 512).
	HistoryLen int
	// DisableRouteCache turns off route and router-table caching, the
	// ablation knob behind the Fig 3 cold/warm comparison.
	DisableRouteCache bool
	// Parallelism bounds how many devices are walked or polled
	// concurrently (gateway prefetch, cached-router validation, periodic
	// polling) and how many of one router's tables are walked at once.
	// 0 selects GOMAXPROCS; 1 restores the fully serial paths.
	Parallelism int
	// MaxVarBinds bounds how many varbinds one polling Get carries
	// (default 24). The poller batches all of a device's monitored
	// interfaces into ceil(2*ifaces/MaxVarBinds) exchanges instead of one
	// exchange per interface. 0 selects the default; values below 2 are
	// raised to 2 (one interface per PDU).
	MaxVarBinds int
	// Pipeline is the number of requests kept outstanding per agent
	// (passed to the SNMP client). Values <= 1 keep lock-step exchanges;
	// larger values let concurrent table walks of one router overlap
	// their round trips (requires a SessionTransport).
	Pipeline int

	// StreamPredict, when set to an RPS model spec (e.g. "AR(16)"),
	// attaches a streaming predictor to every monitored link direction:
	// the Section 2.3 configuration where predictions are computed at
	// the collector and shared across consumers. Empty disables.
	StreamPredict string
	// StreamMinFit is the history length required before fitting
	// (default 64 samples).
	StreamMinFit int
	// StreamHorizon is how many steps ahead streaming predictions run
	// (default 8).
	StreamHorizon int

	// Obs, when set, receives this collector's metrics (query counts,
	// cold starts, SNMP exchange costs). Nil disables instrumentation.
	Obs *obs.Registry
}

// routerInfo caches what has been learned about one router. Apart from
// upTime (atomic, advanced by per-query validation) the fields are
// immutable once fetchRouter returns, so concurrent queries may read a
// cached routerInfo without locking; a rebooted router is replaced by a
// fresh routerInfo rather than mutated in place.
type routerInfo struct {
	addr    netip.Addr
	sysName string
	upTime  atomic.Uint32 // ticks at cache fill/validation, for reboot detection
	routes  []routeEntry
	ifSpeed map[int]float64
	// addrByIf and macByIf come from ipAddrTable and ifPhysAddress:
	// every address the router holds and each interface's MAC. They let
	// the collector recognize one router contacted under several
	// addresses and find its attachment points on bridged segments.
	addrByIf map[int]netip.Addr
	macByIf  map[int]collector.MAC
}

// nodeID is the canonical graph identity of the router: its sysName,
// which stays stable no matter which address the collector contacted.
func (ri *routerInfo) nodeID() string {
	if ri.sysName != "" {
		return ri.sysName
	}
	return ri.addr.String()
}

type routeEntry struct {
	prefix  netip.Prefix
	nextHop netip.Addr // invalid = directly connected
	ifIndex int
}

// counterMode tracks which octet counters a poll point reads. A fresh
// point probes for the 64-bit high-capacity counters (RFC 2863) and locks
// onto them when served, falling back to the legacy Counter32 pair; any
// unexpected response re-probes.
type counterMode int

const (
	modeProbe counterMode = iota // next read decides: HC or legacy 32-bit
	modeHC                       // ifHCInOctets/ifHCOutOctets (Counter64)
	mode32                       // ifInOctets/ifOutOctets (Counter32)
)

// pollPoint is one monitored interface: the device and ifIndex polled,
// and the directed graph link it measures. The counter baseline is
// guarded by its own mutex so parallel polling, query-path baseline
// reads, and reboot invalidation never race.
type pollPoint struct {
	agent   netip.Addr
	ifIndex int
	from    string // node ID at the polled port's end
	to      string
	// outIsFromTo: the port's out-octets measure from->to traffic.
	outIsFromTo bool

	mu       sync.Mutex
	mode     counterMode
	prevIn   uint64
	prevOut  uint64
	prevAt   time.Time
	havePrev bool
}

// QueryStats reports the SNMP cost of one Collect call — the quantity
// Figure 3 plots as query response time.
type QueryStats struct {
	Requests int
	RTT      time.Duration
	// ColdStart reports whether the query had to start monitoring links
	// that had no utilization history yet; such a query's usable answer
	// arrives only after one poll interval.
	ColdStart bool
}

// Collector is a running SNMP Collector.
type Collector struct {
	cfg Config

	mu       sync.Mutex
	routers  map[netip.Addr]*routerInfo
	chains   map[chainKey][]netip.Addr // route cache: first router + dst -> router chain
	arp      map[netip.Addr]collector.MAC
	monitors map[monitorKey]*pollPoint
	hist     *collector.History
	streams  map[collector.HistKey]*streamState
	poller   *sim.Timer

	// fetches single-flights concurrent cache fills of the same router,
	// so a query storm walks each device once.
	fetches conc.Flight[netip.Addr, *routerInfo]

	// pollMeter accumulates the cost of periodic polling: with batching,
	// requests counts exchanges (one per device per cycle), not
	// interfaces. pollClient is the long-lived client behind it, so
	// pipelined sessions persist across poll cycles.
	pollMeter  *snmp.Meter
	pollClient *snmp.Client

	queriesServed atomic.Int64
	lastPoll      atomic.Int64 // unix nanos of the last completed poll cycle

	mQueries *obs.Counter
	mCold    *obs.Counter
}

type chainKey struct {
	start netip.Addr
	dst   netip.Addr
}

type monitorKey struct {
	agent   netip.Addr
	ifIndex int
}

// New creates an SNMP Collector and starts its periodic poller.
func New(cfg Config) *Collector {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Second
	}
	c := &Collector{
		cfg:      cfg,
		routers:  make(map[netip.Addr]*routerInfo),
		chains:   make(map[chainKey][]netip.Addr),
		arp:      make(map[netip.Addr]collector.MAC),
		monitors: make(map[monitorKey]*pollPoint),
		hist:     collector.NewHistory(cfg.HistoryLen),
		streams:  make(map[collector.HistKey]*streamState),
	}
	if cfg.StreamPredict != "" {
		if _, err := rps.ParseFitter(cfg.StreamPredict); err != nil {
			panic(fmt.Sprintf("snmpcoll: bad StreamPredict spec %q: %v", cfg.StreamPredict, err))
		}
	}
	c.pollMeter = &snmp.Meter{}
	c.pollClient = c.client(c.pollMeter)
	c.mQueries = cfg.Obs.Counter("remos_snmpcoll_queries_total",
		"queries answered by SNMP collectors", "collector", c.Name())
	c.mCold = cfg.Obs.Counter("remos_snmpcoll_cold_queries_total",
		"queries that had to start monitoring unmeasured links", "collector", c.Name())
	if cfg.Sched != nil {
		c.poller = cfg.Sched.Every(cfg.PollInterval, c.pollOnce)
	}
	return c
}

// Name implements collector.Interface.
func (c *Collector) Name() string {
	if c.cfg.Name != "" {
		return c.cfg.Name
	}
	return "snmp"
}

// Stop halts periodic polling and releases the poll client's sessions.
func (c *Collector) Stop() {
	if c.poller != nil {
		c.poller.Stop()
	}
	if c.pollClient != nil {
		c.pollClient.Close()
	}
}

// client builds a client around the shared transport with the given meter.
func (c *Collector) client(m *snmp.Meter) *snmp.Client {
	cl := snmp.NewClient(c.cfg.Transport, c.cfg.Community)
	cl.Meter = m
	cl.Pipeline = c.cfg.Pipeline
	cl.Instrument(c.cfg.Obs)
	return cl
}

// LastPoll reports when the periodic poller last completed a cycle (zero
// before the first cycle) — the /healthz liveness signal.
func (c *Collector) LastPoll() time.Time {
	ns := c.lastPoll.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// maxVarBinds returns the configured per-PDU varbind bound.
func (c *Collector) maxVarBinds() int {
	n := c.cfg.MaxVarBinds
	if n <= 0 {
		n = 24
	}
	if n < 2 {
		n = 2
	}
	return n
}

// PollStats reports the cumulative cost of periodic polling: the number
// of SNMP exchanges, the varbinds they carried, and the summed RTT. With
// batching, exchanges grow with the number of polled devices rather than
// interfaces.
func (c *Collector) PollStats() (requests, varbinds int, rtt time.Duration) {
	return c.pollMeter.Counts()
}

// PollInterval returns the monitoring period.
func (c *Collector) PollInterval() time.Duration { return c.cfg.PollInterval }

// History exposes the measurement history store (for prediction services).
func (c *Collector) History() *collector.History { return c.hist }

// fetchRouter walks one router's route table and interface speeds. The
// four independent table groups (system+routes, ifSpeed, ifPhysAddr,
// ipAdEnt) are walked concurrently under the collector's parallelism
// bound; they fill disjoint routerInfo fields, so the assembled view is
// identical to a serial fetch.
func (c *Collector) fetchRouter(ctx context.Context, cl *snmp.Client, addr netip.Addr) (*routerInfo, error) {
	a := addr.String()
	ri := &routerInfo{
		addr:     addr,
		ifSpeed:  make(map[int]float64),
		addrByIf: make(map[int]netip.Addr),
		macByIf:  make(map[int]collector.MAC),
	}
	walks := []func() error{
		func() error { return c.fetchSystemAndRoutes(ctx, cl, a, ri) },
		func() error {
			return cl.BulkWalkContext(ctx, a, mib.IfSpeed, 16, func(o snmp.OID, v snmp.Value) bool {
				ri.ifSpeed[int(o[len(o)-1])] = float64(v.Int)
				return true
			})
		},
		func() error {
			return cl.BulkWalkContext(ctx, a, mib.IfPhysAddr, 16, func(o snmp.OID, v snmp.Value) bool {
				if m, ok := collector.MACFromBytes(v.Bytes); ok {
					ri.macByIf[int(o[len(o)-1])] = m
				}
				return true
			})
		},
		func() error {
			return cl.BulkWalkContext(ctx, a, mib.IPAdEntIfIndex, 16, func(o snmp.OID, v snmp.Value) bool {
				if len(o) < 4 {
					return true
				}
				ip := netip.AddrFrom4([4]byte{byte(o[len(o)-4]), byte(o[len(o)-3]), byte(o[len(o)-2]), byte(o[len(o)-1])})
				ri.addrByIf[int(v.Int)] = ip
				return true
			})
		},
	}
	if err := conc.ForEachCtx(ctx, len(walks), c.cfg.Parallelism, func(i int) error { return walks[i]() }); err != nil {
		return nil, err
	}
	return ri, nil
}

// fetchSystemAndRoutes reads the system group and the four route-table
// columns (dest, mask, next hop, ifIndex). The system read and the column
// walks run concurrently under the parallelism bound, each column into
// its own accumulator; the accumulators then merge in fixed column order
// with route order following the dest column, so the cached table is
// identical to a serial fetch.
func (c *Collector) fetchSystemAndRoutes(ctx context.Context, cl *snmp.Client, a string, ri *routerInfo) error {
	type colEntry struct {
		ip netip.Addr
		v  snmp.Value
	}
	roots := []snmp.OID{mib.IPRouteDest, mib.IPRouteMask, mib.IPRouteNext, mib.IPRouteIfIdx}
	acc := make([][]colEntry, len(roots))
	tasks := []func() error{
		func() error {
			vbs, err := cl.GetContext(ctx, a, mib.SysName, mib.SysUpTime)
			if err != nil {
				return err
			}
			for _, vb := range vbs {
				switch {
				case vb.Name.Cmp(mib.SysName) == 0:
					ri.sysName = string(vb.Value.Bytes)
				case vb.Name.Cmp(mib.SysUpTime) == 0:
					ri.upTime.Store(uint32(vb.Value.Int))
				}
			}
			return nil
		},
	}
	for i, root := range roots {
		i, root := i, root
		tasks = append(tasks, func() error {
			return cl.BulkWalkContext(ctx, a, root, 32, func(o snmp.OID, v snmp.Value) bool {
				if len(o) < 4 {
					return true
				}
				ip := netip.AddrFrom4([4]byte{byte(o[len(o)-4]), byte(o[len(o)-3]), byte(o[len(o)-2]), byte(o[len(o)-1])})
				acc[i] = append(acc[i], colEntry{ip: ip, v: v})
				return true
			})
		})
	}
	if err := conc.ForEachCtx(ctx, len(tasks), c.cfg.Parallelism, func(i int) error { return tasks[i]() }); err != nil {
		return err
	}
	type parsed struct {
		maskLen int
		nextHop netip.Addr
		ifIndex int
	}
	dests := map[netip.Addr]*parsed{}
	order := []netip.Addr{}
	get := func(ip netip.Addr) *parsed {
		e := dests[ip]
		if e == nil {
			e = &parsed{maskLen: 24}
			dests[ip] = e
			order = append(order, ip)
		}
		return e
	}
	for _, ce := range acc[0] {
		get(ce.ip)
	}
	for _, ce := range acc[1] {
		if len(ce.v.Bytes) == 4 {
			get(ce.ip).maskLen = maskBits([4]byte{ce.v.Bytes[0], ce.v.Bytes[1], ce.v.Bytes[2], ce.v.Bytes[3]})
		}
	}
	for _, ce := range acc[2] {
		if len(ce.v.Bytes) == 4 {
			nh := netip.AddrFrom4([4]byte{ce.v.Bytes[0], ce.v.Bytes[1], ce.v.Bytes[2], ce.v.Bytes[3]})
			if nh != netip.AddrFrom4([4]byte{0, 0, 0, 0}) {
				get(ce.ip).nextHop = nh
			}
		}
	}
	for _, ce := range acc[3] {
		get(ce.ip).ifIndex = int(ce.v.Int)
	}
	for _, ip := range order {
		e := dests[ip]
		ri.routes = append(ri.routes, routeEntry{
			prefix:  netip.PrefixFrom(ip, e.maskLen),
			nextHop: e.nextHop,
			ifIndex: e.ifIndex,
		})
	}
	return nil
}

func maskBits(m [4]byte) int {
	bits := 0
	for _, b := range m {
		for i := 7; i >= 0; i-- {
			if b&(1<<i) != 0 {
				bits++
			} else {
				return bits
			}
		}
	}
	return bits
}

// routerFor returns a (possibly cached) router view; caching is skipped
// when the ablation knob disables it. Cache fills are single-flighted:
// concurrent queries missing on the same router share one walk instead of
// each walking the device (skipped under the ablation knob, where every
// query must pay the full cold cost).
func (c *Collector) routerFor(ctx context.Context, cl *snmp.Client, addr netip.Addr) (*routerInfo, error) {
	c.mu.Lock()
	ri, ok := c.routers[addr]
	c.mu.Unlock()
	if ok && !c.cfg.DisableRouteCache {
		return ri, nil
	}
	if c.cfg.DisableRouteCache {
		ri, err := c.fetchRouter(ctx, cl, addr)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.routers[addr] = ri
		c.mu.Unlock()
		return ri, nil
	}
	ri, err, _ := c.fetches.Do(addr, func() (*routerInfo, error) {
		ri, err := c.fetchRouter(ctx, cl, addr)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.routers[addr] = ri
		c.mu.Unlock()
		return ri, nil
	})
	return ri, err
}

// validateRouter performs the cheap per-query liveness/reboot check on a
// cached router: one sysUpTime read. A reboot (uptime going backwards)
// invalidates the cached tables and the counter baselines for that
// device and refreshes them; the query proceeds on the returned fresh
// view (cached routerInfo is replaced, never mutated, so queries already
// holding the old pointer keep a consistent pre-reboot snapshot). An
// unreachable agent is an error.
func (c *Collector) validateRouter(ctx context.Context, cl *snmp.Client, ri *routerInfo) (*routerInfo, error) {
	v, err := cl.GetOneContext(ctx, ri.addr.String(), mib.SysUpTime)
	if err != nil {
		return nil, fmt.Errorf("snmpcoll: router %v unreachable: %w", ri.addr, err)
	}
	if uint32(v.Int) >= ri.upTime.Load() {
		ri.upTime.Store(uint32(v.Int))
		return ri, nil
	}
	// Rebooted: drop what we believed about it and re-learn.
	c.mu.Lock()
	delete(c.routers, ri.addr)
	points := make([]*pollPoint, 0, len(c.monitors))
	for _, p := range c.monitors {
		if p.agent == ri.addr {
			points = append(points, p)
		}
	}
	c.mu.Unlock()
	for _, p := range points {
		p.mu.Lock()
		p.havePrev = false
		p.mu.Unlock()
	}
	fresh, err := c.fetchRouter(ctx, cl, ri.addr)
	if err != nil {
		return nil, fmt.Errorf("snmpcoll: refreshing rebooted router %v: %w", ri.addr, err)
	}
	c.mu.Lock()
	c.routers[ri.addr] = fresh
	c.mu.Unlock()
	return fresh, nil
}

// lpm finds the longest-prefix route for dst in a cached router table.
func (ri *routerInfo) lpm(dst netip.Addr) (routeEntry, bool) {
	best := -1
	var out routeEntry
	for _, e := range ri.routes {
		if e.prefix.Contains(dst) && e.prefix.Bits() > best {
			best = e.prefix.Bits()
			out = e
		}
	}
	return out, best >= 0
}
