package snmpcoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/snmp"
	"remos/internal/topology"
)

// Failure-injection tests: the robustness properties Section 6.2 calls
// out (network failures, reboots, agents going dark) must degrade the
// collector gracefully, never corrupt its data.

func TestRouterRebootDetectedAndRecovered(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(20 * time.Second)
	// Reboot r1: uptime restarts, counters zero.
	st.n.Reboot(st.d["r1"])
	st.s.RunFor(time.Second)
	// The next query must succeed and silently refresh the cache.
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatalf("query after reboot failed: %v", err)
	}
	// And subsequent measurements stay sane.
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 3e6})
	st.s.RunFor(15 * time.Second)
	util, ok := st.sc.Utilization("r1", "r2")
	if !ok {
		t.Fatal("no utilization after reboot recovery")
	}
	if math.Abs(util-3e6) > 5e5 {
		t.Fatalf("post-reboot utilization %v, want ~3e6", util)
	}
}

func TestRebootDoesNotProduceBogusSpike(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 5e6})
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	// Accumulate counters, then reboot between polls: the counter goes
	// backwards, which naive delta code would read as a near-2^32 wrap.
	st.s.RunFor(60 * time.Second)
	st.n.Reboot(st.d["r1"])
	st.s.RunFor(30 * time.Second)
	hist := st.sc.History().Get(collector.HistKey{From: "r1", To: "r2"})
	for _, s := range hist {
		if s.Bits > 100e6 {
			t.Fatalf("bogus utilization spike %v bits/s recorded after reboot", s.Bits)
		}
	}
}

func TestAgentGoesDarkQueryFails(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	// Silence r2's agent on all its addresses.
	for _, ifc := range st.d["r2"].Ifaces() {
		if ifc.IP.IsValid() {
			st.reg.Unregister(ifc.IP.String())
		}
	}
	if _, err := st.sc.Collect(q); err == nil {
		t.Fatal("query succeeded with a dead router agent; liveness check missing")
	}
}

func TestPollerSurvivesDarkAgent(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 2e6})
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(12 * time.Second)
	// Kill r1's agent: polling must keep working for other devices and
	// must not panic or wedge.
	for _, ifc := range st.d["r1"].Ifaces() {
		if ifc.IP.IsValid() {
			st.reg.Unregister(ifc.IP.String())
		}
	}
	before := latestSample(st, collector.HistKey{From: "r2", To: "swB-side"})
	_ = before
	st.s.RunFor(30 * time.Second)
	// History for links polled at live agents keeps advancing: swB's
	// ports are polled at the switch, which is still up.
	hist := st.sc.History()
	advanced := false
	cutoff := st.s.Now().Add(-10 * time.Second)
	for _, k := range hist.Keys() {
		if s, ok := hist.Latest(k); ok && s.T.After(cutoff) {
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("no history advanced after one agent died; poller wedged")
	}
}

func latestSample(st *site, k collector.HistKey) collector.Sample {
	s, _ := st.sc.History().Latest(k)
	return s
}

func TestDarkAgentRecoversAfterReregistration(t *testing.T) {
	st := newSite(t, nil)
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 2e6})
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(12 * time.Second)
	// Take r1 down, then bring it back.
	agents := map[string]bool{}
	for _, ifc := range st.d["r1"].Ifaces() {
		if ifc.IP.IsValid() {
			agents[ifc.IP.String()] = true
			st.reg.Unregister(ifc.IP.String())
		}
	}
	st.s.RunFor(20 * time.Second)
	// Re-attach (same device view; fresh agent object is fine).
	agent := &snmp.Agent{Community: "public", View: mib.NewDeviceView(st.n, st.d["r1"])}
	for a := range agents {
		st.reg.Register(a, agent)
	}
	st.s.RunFor(20 * time.Second)
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatalf("query after agent recovery failed: %v", err)
	}
	util, ok := st.sc.Utilization("r1", "r2")
	if !ok || math.Abs(util-2e6) > 5e5 {
		t.Fatalf("utilization after recovery = %v (ok=%v), want ~2e6", util, ok)
	}
}

func TestUnresolvableHostGetsVirtualAttachment(t *testing.T) {
	// A queried address whose MAC cannot be resolved (no ARP entry, no
	// configuration) is unverifiable, but the collector still answers:
	// the host is attached through a virtual switch — the paper's
	// representation for whatever it cannot see inside. The query never
	// wedges the collector.
	st := newSite(t, nil)
	ghost := netip.MustParseAddr("10.0.16.250") // h1's subnet, never attached
	res, err := st.sc.Collect(collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), ghost}})
	if err != nil {
		t.Fatalf("ghost query failed hard: %v", err)
	}
	virtual := false
	for _, n := range res.Graph.Nodes() {
		if n.Kind == topology.VirtualNode {
			virtual = true
		}
	}
	if !virtual {
		t.Fatal("unresolvable host not represented through a virtual switch")
	}
	if _, err := res.Graph.Path(addrOf(st, "h1").String(), ghost.String()); err != nil {
		t.Fatalf("ghost not connected in the answer: %v", err)
	}
	// The collector remains fully usable afterwards.
	if _, err := st.sc.Collect(collector.Query{
		Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
	}); err != nil {
		t.Fatalf("collector wedged after ghost query: %v", err)
	}
}
