package snmpcoll

import (
	"fmt"
	"math"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/snmp"
)

// newPollRig builds a collector over `agents` static devices of `ifaces`
// interfaces each, with every monitored interface already registered as a
// poll point — the pure polling workload, no discovery.
func newPollRig(tb testing.TB, agents, ifaces, maxVarBinds, pipeline int) *Collector {
	tb.Helper()
	reg := snmp.NewRegistry()
	for a := 1; a <= agents; a++ {
		binds := map[string]snmp.Value{}
		for i := 1; i <= ifaces; i++ {
			binds[fmt.Sprintf("1.3.6.1.2.1.2.2.1.10.%d", i)] = snmp.Counter(uint64(1000*a + i))
			binds[fmt.Sprintf("1.3.6.1.2.1.2.2.1.16.%d", i)] = snmp.Counter(uint64(2000*a + i))
			binds[fmt.Sprintf("1.3.6.1.2.1.31.1.1.1.6.%d", i)] = snmp.Counter64Val(uint64(1000*a+i) + 1<<40)
			binds[fmt.Sprintf("1.3.6.1.2.1.31.1.1.1.10.%d", i)] = snmp.Counter64Val(uint64(2000*a+i) + 1<<40)
		}
		view, err := snmp.NewStaticView(binds)
		if err != nil {
			tb.Fatal(err)
		}
		reg.Register(fmt.Sprintf("10.0.%d.1", a), &snmp.Agent{Community: "public", View: view})
	}
	c := New(Config{
		Name:        "poll-rig",
		Transport:   &snmp.InProc{Registry: reg},
		Community:   "public",
		MaxVarBinds: maxVarBinds,
		Pipeline:    pipeline,
	})
	tb.Cleanup(c.Stop)
	for a := 1; a <= agents; a++ {
		addr := netip.MustParseAddr(fmt.Sprintf("10.0.%d.1", a))
		for i := 1; i <= ifaces; i++ {
			c.monitors[monitorKey{agent: addr, ifIndex: i}] = &pollPoint{
				agent: addr, ifIndex: i,
				from: fmt.Sprintf("r%d", a), to: fmt.Sprintf("n%d-%d", a, i),
				outIsFromTo: true,
			}
		}
	}
	return c
}

func (c *Collector) modes() map[counterMode]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[counterMode]int{}
	for _, p := range c.monitors {
		p.mu.Lock()
		out[p.mode]++
		p.mu.Unlock()
	}
	return out
}

// TestBatchedPollingExchangeCounts is the headline scaling claim: a poll
// cycle over 4 routers x 8 interfaces costs one exchange per device when
// batched, versus one per interface unbatched.
func TestBatchedPollingExchangeCounts(t *testing.T) {
	const agents, ifaces = 4, 8

	batched := newPollRig(t, agents, ifaces, 24, 0)
	batched.pollOnce() // probe cycle: one (4-varbind) exchange per interface
	if reqs, vbs, _ := batched.PollStats(); reqs != agents*ifaces || vbs != agents*ifaces*4 {
		t.Fatalf("probe cycle = %d exchanges / %d varbinds, want %d / %d",
			reqs, vbs, agents*ifaces, agents*ifaces*4)
	}
	if m := batched.modes(); m[modeHC] != agents*ifaces {
		t.Fatalf("after probe, modes = %v, want all %d in modeHC", m, agents*ifaces)
	}
	batched.pollMeter.Reset()
	batched.pollOnce() // settled: 8 ifaces x 2 varbinds = 16 <= 24, one Get per device
	if reqs, vbs, _ := batched.PollStats(); reqs != agents || vbs != agents*ifaces*2 {
		t.Fatalf("batched cycle = %d exchanges / %d varbinds, want %d / %d",
			reqs, vbs, agents, agents*ifaces*2)
	}

	serial := newPollRig(t, agents, ifaces, 2, 0)
	serial.pollOnce() // probe
	serial.pollMeter.Reset()
	serial.pollOnce() // MaxVarBinds 2 = one interface per PDU
	if reqs, _, _ := serial.PollStats(); reqs != agents*ifaces {
		t.Fatalf("serial cycle = %d exchanges, want %d (one per interface)", reqs, agents*ifaces)
	}
}

// TestBatchedPollingParity: batching (and pipelining) must not change a
// single recorded sample — identical rigs polled with 1 vs 12 interfaces
// per PDU produce byte-identical measurement histories.
func TestBatchedPollingParity(t *testing.T) {
	run := func(mut func(*Config)) map[collector.HistKey][]collector.Sample {
		st := newSite(t, mut)
		if _, err := st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 4e6}); err != nil {
			t.Fatal(err)
		}
		q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
		if _, err := st.sc.Collect(q); err != nil {
			t.Fatal(err)
		}
		st.s.RunFor(30 * time.Second)
		return st.sc.History().Snapshot()
	}
	serial := run(func(c *Config) { c.MaxVarBinds = 2 })
	batched := run(func(c *Config) { c.MaxVarBinds = 24; c.Pipeline = 4 })
	if !reflect.DeepEqual(serial, batched) {
		t.Fatalf("batched history differs from serial:\nserial:  %v\nbatched: %v", serial, batched)
	}
}

// attachNoHC replaces every device's agent with one whose view omits the
// ifXTable high-capacity counters, modeling legacy gear.
func attachNoHC(st *site) {
	for _, d := range st.n.Devices() {
		if !d.SNMP.Reachable {
			continue
		}
		v := mib.NewDeviceView(st.n, d)
		v.NoHC = true
		agent := &snmp.Agent{Community: d.SNMP.Community, View: v}
		for _, ifc := range d.Ifaces() {
			if ifc.IP.IsValid() {
				st.reg.Register(ifc.IP.String(), agent)
			}
		}
		if mgmt := d.ManagementAddr(); mgmt.IsValid() {
			st.reg.Register(mgmt.String(), agent)
		}
	}
}

func TestNoHCFallsBackToCounter32(t *testing.T) {
	st := newSite(t, nil)
	attachNoHC(st)
	if _, err := st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 4e6}); err != nil {
		t.Fatal(err)
	}
	q := collector.Query{Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")}}
	if _, err := st.sc.Collect(q); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(11 * time.Second)
	if m := st.sc.modes(); m[mode32] == 0 || m[modeHC] != 0 || m[modeProbe] != 0 {
		t.Fatalf("modes on HC-less devices = %v, want all mode32", m)
	}
	util, ok := st.sc.Utilization("r1", "r2")
	if !ok || math.Abs(util-4e6) > 4e5 {
		t.Fatalf("Counter32 fallback utilization = %v (ok=%v), want ~4e6", util, ok)
	}
}

func TestCounter32WrapWithNoHC(t *testing.T) {
	st := newSite(t, nil)
	attachNoHC(st)
	// 10 Mbit/s wraps a Counter32 in ~57 min; run past a wrap.
	st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 10e6})
	if _, err := st.sc.Collect(collector.Query{
		Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
	}); err != nil {
		t.Fatal(err)
	}
	st.s.RunFor(4000 * time.Second)
	util, ok := st.sc.Utilization("r1", "r2")
	if !ok {
		t.Fatal("no utilization recorded across the Counter32 wrap")
	}
	if math.Abs(util-10e6) > 1e6 {
		t.Fatalf("post-wrap utilization %v, want ~10e6", util)
	}
}

// TestHCCountersSurviveLongInterval: at 10 Mbit/s a 30-minute poll interval
// moves the octet counters by more than 2^31, which is indistinguishable
// from a reset in 32-bit arithmetic — legacy counters can only resync, so
// no sample is ever recorded. The high-capacity counters measure it fine.
func TestHCCountersSurviveLongInterval(t *testing.T) {
	long := func(c *Config) { c.PollInterval = 1800 * time.Second }
	drive := func(st *site) {
		st.n.StartFlow(st.d["h1"], st.d["h2"], netsim.FlowSpec{Demand: 10e6})
		if _, err := st.sc.Collect(collector.Query{
			Hosts: []netip.Addr{addrOf(st, "h1"), addrOf(st, "h2")},
		}); err != nil {
			t.Fatal(err)
		}
		st.s.RunFor(3700 * time.Second)
	}

	hc := newSite(t, long)
	drive(hc)
	util, ok := hc.sc.Utilization("r1", "r2")
	if !ok || math.Abs(util-10e6) > 1e6 {
		t.Fatalf("HC utilization over 30-min interval = %v (ok=%v), want ~10e6", util, ok)
	}

	legacy := newSite(t, long)
	attachNoHC(legacy)
	drive(legacy)
	if util, ok := legacy.sc.Utilization("r1", "r2"); ok {
		t.Fatalf("Counter32-only device recorded %v over an interval that wraps past 2^31; "+
			"the ambiguous delta should have been discarded", util)
	}
}

// hcToggleView delegates to a full view but can drop the ifXTable
// mid-flight, like a device losing its high-capacity counters across a
// firmware change.
type hcToggleView struct {
	inner snmp.MIBView

	mu   sync.Mutex
	noHC bool
}

func (v *hcToggleView) dropHC() {
	v.mu.Lock()
	v.noHC = true
	v.mu.Unlock()
}

func (v *hcToggleView) hcOff() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.noHC
}

func isHC(o snmp.OID) bool { return o.HasPrefix(mib.IfXTable) }

func (v *hcToggleView) Get(o snmp.OID) (snmp.Value, bool) {
	if v.hcOff() && isHC(o) {
		return snmp.Value{}, false
	}
	return v.inner.Get(o)
}

func (v *hcToggleView) Next(o snmp.OID) (snmp.OID, snmp.Value, bool) {
	for {
		n, val, ok := v.inner.Next(o)
		if !ok {
			return nil, snmp.Value{}, false
		}
		if v.hcOff() && isHC(n) {
			o = n
			continue
		}
		return n, val, true
	}
}

// TestPartialErrorReprobesInterface: when a device stops serving its HC
// counters, the batched read sees unexpected kinds for those varbinds,
// falls back to per-interface reads, and the affected points re-probe down
// to Counter32 — without poisoning the rest of the cycle.
func TestPartialErrorReprobesInterface(t *testing.T) {
	const ifaces = 4
	reg := snmp.NewRegistry()
	binds := map[string]snmp.Value{}
	for i := 1; i <= ifaces; i++ {
		binds[fmt.Sprintf("1.3.6.1.2.1.2.2.1.10.%d", i)] = snmp.Counter(uint64(100 * i))
		binds[fmt.Sprintf("1.3.6.1.2.1.2.2.1.16.%d", i)] = snmp.Counter(uint64(200 * i))
		binds[fmt.Sprintf("1.3.6.1.2.1.31.1.1.1.6.%d", i)] = snmp.Counter64Val(uint64(100 * i))
		binds[fmt.Sprintf("1.3.6.1.2.1.31.1.1.1.10.%d", i)] = snmp.Counter64Val(uint64(200 * i))
	}
	inner, err := snmp.NewStaticView(binds)
	if err != nil {
		t.Fatal(err)
	}
	view := &hcToggleView{inner: inner}
	reg.Register("10.0.1.1", &snmp.Agent{Community: "public", View: view})
	c := New(Config{
		Transport:   &snmp.InProc{Registry: reg},
		Community:   "public",
		MaxVarBinds: 24,
	})
	t.Cleanup(c.Stop)
	addr := netip.MustParseAddr("10.0.1.1")
	for i := 1; i <= ifaces; i++ {
		c.monitors[monitorKey{agent: addr, ifIndex: i}] = &pollPoint{
			agent: addr, ifIndex: i,
			from: "r1", to: fmt.Sprintf("n%d", i), outIsFromTo: true,
		}
	}

	c.pollOnce() // probe: settles on HC
	if m := c.modes(); m[modeHC] != ifaces {
		t.Fatalf("modes after probe = %v, want all modeHC", m)
	}
	view.dropHC()
	c.pollOnce() // batch fails per varbind; each point re-reads and re-probes
	if m := c.modes(); m[mode32] != ifaces {
		t.Fatalf("modes after HC loss = %v, want all mode32", m)
	}
	c.pollMeter.Reset()
	c.pollOnce() // settled again: back to one exchange for the device
	if reqs, _, _ := c.PollStats(); reqs != 1 {
		t.Fatalf("post-recovery cycle = %d exchanges, want 1", reqs)
	}
}

// BenchmarkPollBatchedVsSerial compares one poll cycle over 4 devices x 8
// interfaces with device-batched PDUs against per-interface exchanges.
func BenchmarkPollBatchedVsSerial(b *testing.B) {
	for _, bc := range []struct {
		name        string
		maxVarBinds int
		pipeline    int
	}{
		{"Batched24", 24, 0},
		{"Batched24Pipelined", 24, 4},
		{"Serial", 2, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := newPollRig(b, 4, 8, bc.maxVarBinds, bc.pipeline)
			c.pollOnce() // settle modes outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.pollOnce()
			}
		})
	}
}
