package collector

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"remos/internal/snmp"
)

func sample(i int) Sample {
	return Sample{T: time.Unix(int64(i), 0), Bits: float64(i)}
}

func TestHistoryAddGetLatest(t *testing.T) {
	h := NewHistory(8)
	k := HistKey{From: "a", To: "b"}
	if _, ok := h.Latest(k); ok {
		t.Fatal("empty history has a latest sample")
	}
	for i := 0; i < 5; i++ {
		h.Add(k, sample(i))
	}
	got := h.Get(k)
	if len(got) != 5 || got[0].Bits != 0 || got[4].Bits != 4 {
		t.Fatalf("Get = %v", got)
	}
	last, ok := h.Latest(k)
	if !ok || last.Bits != 4 {
		t.Fatalf("Latest = %v ok=%v", last, ok)
	}
}

func TestHistoryEvictsOldest(t *testing.T) {
	h := NewHistory(4)
	k := HistKey{From: "a", To: "b"}
	for i := 0; i < 10; i++ {
		h.Add(k, sample(i))
	}
	got := h.Get(k)
	if len(got) != 4 {
		t.Fatalf("kept %d samples, want 4", len(got))
	}
	if got[0].Bits != 6 || got[3].Bits != 9 {
		t.Fatalf("evicted wrong end: %v", got)
	}
}

func TestHistoryKeysSortedAndIndependent(t *testing.T) {
	h := NewHistory(0) // default capacity
	h.Add(HistKey{From: "z", To: "a"}, sample(1))
	h.Add(HistKey{From: "a", To: "z"}, sample(2))
	h.Add(HistKey{From: "a", To: "b"}, sample(3))
	keys := h.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != (HistKey{From: "a", To: "b"}) || keys[2] != (HistKey{From: "z", To: "a"}) {
		t.Fatalf("keys unsorted: %v", keys)
	}
	if len(h.Get(HistKey{From: "a", To: "b"})) != 1 {
		t.Fatal("keys bleed into each other")
	}
}

func TestHistorySnapshotIsACopy(t *testing.T) {
	h := NewHistory(8)
	k := HistKey{From: "a", To: "b"}
	h.Add(k, sample(1))
	snap := h.Snapshot()
	snap[k][0].Bits = 999
	if h.Get(k)[0].Bits == 999 {
		t.Fatal("snapshot aliases the store")
	}
	// Get is a copy too.
	g := h.Get(k)
	g[0].Bits = 888
	if h.Get(k)[0].Bits == 888 {
		t.Fatal("Get aliases the store")
	}
}

func TestValues(t *testing.T) {
	vs := Values([]Sample{sample(3), sample(7)})
	if len(vs) != 2 || vs[0] != 3 || vs[1] != 7 {
		t.Fatalf("Values = %v", vs)
	}
}

func TestMACStringAndOID(t *testing.T) {
	m := MAC{0x02, 0x00, 0xab, 0xcd, 0xef, 0x01}
	if m.String() != "02:00:ab:cd:ef:01" {
		t.Fatalf("String = %s", m.String())
	}
	suffix := m.OIDSuffix()
	oid := snmp.MustParseOID("1.3.6.1.2.1.17.4.3.1.2").Append(suffix...)
	back, ok := MACFromOID(oid)
	if !ok || back != m {
		t.Fatalf("MACFromOID = %v ok=%v", back, ok)
	}
	if _, ok := MACFromOID(snmp.MustParseOID("1.3")); ok {
		t.Fatal("short OID produced a MAC")
	}
	if _, ok := MACFromOID(snmp.MustParseOID("1.3.6.1.2.1.300.1.2.3.4.5")); ok {
		t.Fatal("out-of-range component produced a MAC")
	}
}

func TestMACFromBytes(t *testing.T) {
	m, ok := MACFromBytes([]byte{1, 2, 3, 4, 5, 6})
	if !ok || m != (MAC{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("MACFromBytes = %v ok=%v", m, ok)
	}
	if _, ok := MACFromBytes([]byte{1, 2, 3}); ok {
		t.Fatal("short byte slice produced a MAC")
	}
}

// Property: a MAC survives the OID suffix round trip.
func TestPropertyMACOIDRoundTrip(t *testing.T) {
	f := func(b [6]byte) bool {
		m := MAC(b)
		oid := snmp.OID{1, 3, 6}.Append(m.OIDSuffix()...)
		back, ok := MACFromOID(oid)
		return ok && back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: history never exceeds capacity and Latest equals the last Add.
func TestPropertyHistoryBounded(t *testing.T) {
	f := func(adds []float64) bool {
		h := NewHistory(16)
		k := HistKey{From: "x", To: "y"}
		for i, v := range adds {
			h.Add(k, Sample{T: time.Unix(int64(i), 0), Bits: v})
		}
		got := h.Get(k)
		if len(got) > 16 {
			return false
		}
		if len(adds) > 0 {
			last, ok := h.Latest(k)
			if !ok || last.Bits != adds[len(adds)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryArchiveRoundTrip(t *testing.T) {
	h := NewHistory(32)
	k1 := HistKey{From: "r1", To: "r2"}
	k2 := HistKey{From: "10.0.1.2", To: "cpu"}
	for i := 0; i < 5; i++ {
		h.Add(k1, Sample{T: time.Unix(int64(i), 42), Bits: float64(i) * 1e6})
		h.Add(k2, Sample{T: time.Unix(int64(i), 0), Bits: float64(i) / 10})
	}
	var buf bytes.Buffer
	if err := h.Archive(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistory(&buf, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []HistKey{k1, k2} {
		a, b := h.Get(k), back.Get(k)
		if len(a) != len(b) {
			t.Fatalf("key %v: %d vs %d samples", k, len(a), len(b))
		}
		for i := range a {
			if !a[i].T.Equal(b[i].T) || a[i].Bits != b[i].Bits {
				t.Fatalf("key %v sample %d: %+v vs %+v", k, i, a[i], b[i])
			}
		}
	}
}

func TestReadHistoryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE 1\n",
		"HISTORYV1 1\nSERIES a b x\nEND\n",
		"HISTORYV1 1\nSERIES a b 1\nbadline\nEND\n",
		"HISTORYV1 0\n", // missing END
	}
	for i, c := range cases {
		if _, err := ReadHistory(strings.NewReader(c), 0); err == nil {
			t.Errorf("case %d: garbage archive accepted", i)
		}
	}
}

func TestArchiveEmptyStore(t *testing.T) {
	h := NewHistory(4)
	var buf bytes.Buffer
	if err := h.Archive(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistory(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Keys()) != 0 {
		t.Fatal("empty archive produced keys")
	}
}
