// Package qcache puts a warm-query cache with single-flight deduplication
// in front of any collector — normally the Master Collector, where it
// turns the paper's cold/warm gap (Fig. 3) into an explicit serving
// layer: a cold query pays the full collector fan-out, every identical
// query inside the staleness bound answers from the cached topology, and
// N concurrent identical queries (the "millions of users" scenario)
// trigger exactly one fan-out whose answer all N share.
//
// The cache key is the sorted host set plus the query flags, so host
// order never fragments the cache. Results are deep-copied on the way
// out: consumers may annotate or mutate their answer without corrupting
// the cached copy or each other's.
//
// Storage is sharded by key hash, and each shard publishes its entry map
// as an immutable copy-on-write snapshot: the warm-hit path is one atomic
// pointer load plus a read of a map no writer ever mutates, so hits never
// take a lock and hit throughput scales with CPUs instead of serializing
// on a cache-wide mutex. Writers (misses, eviction, invalidation) take
// the shard mutex, copy the shard map, and publish the replacement —
// cheap, because a write already pays a collector fan-out and shards stay
// small (see Config.Shards).
package qcache

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
)

// Config tunes the cache.
type Config struct {
	// TTL is the staleness bound: a cached answer older than this is
	// re-collected. TTL <= 0 disables retention — the cache then only
	// coalesces concurrent identical queries (pure single-flight).
	TTL time.Duration
	// Now supplies the clock (nil means time.Now). Deployments over the
	// simulated scheduler pass its Now so TTLs follow simulated time.
	Now func() time.Time
	// MaxEntries bounds the number of retained answers (default 1024);
	// the oldest entries are evicted first. The bound is enforced per
	// shard (MaxEntries/shards each), so a pathological key skew can
	// hold the total slightly under MaxEntries on other shards.
	MaxEntries int
	// Shards is the lock-striping width (default 32, rounded down to a
	// power of two). It is additionally capped so every shard can hold
	// at least 8 entries, which keeps small caches on one shard — and
	// Shards: 1 gives the deterministic global eviction order the tests
	// pin.
	Shards int
	// Obs, when set, receives hit/miss/coalesce/evict counters. Nil
	// disables instrumentation.
	Obs *obs.Registry
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits answered from a fresh cached result.
	Hits int64
	// Misses went through to the inner collector.
	Misses int64
	// Coalesced callers shared another caller's in-flight collection
	// instead of starting their own.
	Coalesced int64
	// Evictions counts entries dropped for capacity.
	Evictions int64
}

// entry is one cache slot. done closes when the in-flight collection
// lands; res/err/at are written exactly once before the close and only
// read after it.
type entry struct {
	done chan struct{}
	res  *collector.Result
	err  error
	at   time.Time
}

func (e *entry) landed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// entryMap is an immutable snapshot of one shard's entries. Readers load
// it atomically and never see a map being written; writers build a
// replacement under the shard mutex and publish it with one store.
type entryMap map[string]*entry

// shard is one lock stripe: the mutex serializes writers only.
type shard struct {
	mu sync.Mutex
	m  atomic.Pointer[entryMap]
}

func (s *shard) load() entryMap { return *s.m.Load() }

// cloneFor copies the current map with room for one more entry. Callers
// hold s.mu.
func (s *shard) cloneFor() entryMap {
	cur := s.load()
	next := make(entryMap, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	return next
}

// Cache is a caching, deduplicating collector wrapper. It implements
// collector.Interface and is safe for concurrent use.
type Cache struct {
	inner collector.Interface
	cfg   Config

	shards    []shard
	shardMask uint32
	perShard  int // MaxEntries budget per shard

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64

	mHits         *obs.Counter
	mMisses       *obs.Counter
	mCoalesced    *obs.Counter
	mEvictions    *obs.Counter
	mInvalidation *obs.Counter
}

// New wraps a collector with a warm-query cache.
func New(inner collector.Interface, cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	n := 1
	for n*2 <= cfg.Shards && cfg.MaxEntries/(n*2) >= 8 {
		n *= 2
	}
	c := &Cache{
		inner:     inner,
		cfg:       cfg,
		shards:    make([]shard, n),
		shardMask: uint32(n - 1),
		perShard:  (cfg.MaxEntries + n - 1) / n,
	}
	empty := make(entryMap)
	for i := range c.shards {
		c.shards[i].m.Store(&empty)
	}
	c.mHits = cfg.Obs.Counter("remos_qcache_hits_total", "queries answered from the warm cache")
	c.mMisses = cfg.Obs.Counter("remos_qcache_misses_total", "queries that went through to the collector")
	c.mCoalesced = cfg.Obs.Counter("remos_qcache_coalesced_total", "queries that shared another caller's in-flight collection")
	c.mEvictions = cfg.Obs.Counter("remos_qcache_evictions_total", "cache entries dropped for capacity")
	c.mInvalidation = cfg.Obs.Counter("remos_qcache_invalidations_total", "cache entries dropped by explicit invalidation")
	cfg.Obs.GaugeFunc("remos_qcache_entries", "cached answers currently retained", func() float64 { return float64(c.Len()) })
	return c
}

// Name implements collector.Interface, transparently: the cache answers
// under the wrapped collector's identity.
func (c *Cache) Name() string { return c.inner.Name() }

func (c *Cache) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	//remoslint:allow wallclock designated fallback: nil Config.Now means the wall clock by contract
	return time.Now()
}

// shardFor picks the stripe for a key (FNV-1a over the key bytes).
func (c *Cache) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&c.shardMask]
}

// Key renders the canonical cache key for a query: the host set sorted
// (so host order does not fragment the cache) plus the query flags.
// This sits on the warm-hit path, so the common small-query case renders
// into stack scratch via netip's AppendTo and pays a single allocation
// (the returned string) instead of one per host.
func Key(q collector.Query) string {
	if len(q.Hosts) <= smallHosts {
		return smallKey(q)
	}
	hosts := make([]string, len(q.Hosts))
	for i, h := range q.Hosts {
		hosts[i] = h.String()
	}
	sort.Strings(hosts)
	var b strings.Builder
	b.WriteString(strings.Join(hosts, ","))
	if q.WithHistory {
		b.WriteString("|hist")
	}
	if q.WithPredictions {
		b.WriteString("|pred")
	}
	return b.String()
}

// smallHosts bounds the stack-rendered Key fast path; queries this size
// cover the serving workload (pairs and small host sets).
const smallHosts = 8

// smallKey is the allocation-light Key fast path: each host renders into
// one scratch buffer, an insertion sort orders the rendered spans, and
// the canonical form is assembled in a second scratch buffer.
func smallKey(q collector.Query) string {
	var scratch [8 * 48]byte // 48 bytes covers a zone-qualified IPv6 literal
	var spans [smallHosts][2]int
	buf := scratch[:0]
	for i, h := range q.Hosts {
		start := len(buf)
		buf = h.AppendTo(buf)
		spans[i] = [2]int{start, len(buf)}
	}
	n := len(q.Hosts)
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a := buf[spans[j-1][0]:spans[j-1][1]]
			b := buf[spans[j][0]:spans[j][1]]
			if string(a) <= string(b) { // comparison only; no conversion alloc
				break
			}
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
	var outArr [8*48 + smallHosts + 10]byte
	out := outArr[:0]
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, buf[spans[i][0]:spans[i][1]]...)
	}
	if q.WithHistory {
		out = append(out, "|hist"...)
	}
	if q.WithPredictions {
		out = append(out, "|pred"...)
	}
	return string(out)
}

// Collect implements collector.Interface. Identical queries inside the
// TTL answer from cache; concurrent identical queries share a single
// inner collection; distinct queries proceed independently.
func (c *Cache) Collect(q collector.Query) (*collector.Result, error) {
	ctx := q.Context()
	tr := obs.FromContext(ctx)
	key := Key(q)
	sh := c.shardFor(key)
	var e *entry
	for {
		e = sh.load()[key]
		if e != nil {
			if !e.landed() {
				// In flight: wait without any lock and share the answer.
				// The waiter also honors its own context — the flight
				// belongs to the caller that started it and keeps running.
				select {
				case <-e.done:
				case <-ctx.Done():
					tr.Event("cache", "canceled waiting on in-flight query")
					return nil, ctx.Err()
				}
				if e.err != nil {
					return nil, e.err
				}
				c.coalesced.Add(1)
				c.mCoalesced.Inc()
				tr.Event("cache", "coalesced")
				return e.res.Clone(), nil
			}
			if e.err == nil && c.cfg.TTL > 0 && c.now().Sub(e.at) < c.cfg.TTL {
				// The warm hit: an atomic snapshot load, a read of an
				// immutable map, and atomic counters — no lock, exclusive
				// or shared, anywhere on this path.
				c.hits.Add(1)
				c.mHits.Inc()
				tr.Event("cache", "hit")
				return e.res.Clone(), nil
			}
			// Stale: fall through and try to install a fresh flight.
		}

		sh.mu.Lock()
		if cur := sh.load()[key]; cur != e {
			// Another caller already replaced the slot (installed a fresh
			// flight, or a fresh answer landed): re-evaluate from the top.
			sh.mu.Unlock()
			continue
		}
		next := sh.cloneFor()
		delete(next, key) // drop the stale entry, if any
		e = &entry{done: make(chan struct{})}
		next[key] = e
		c.evictInto(next)
		sh.m.Store(&next)
		sh.mu.Unlock()
		break
	}
	c.misses.Add(1)
	c.mMisses.Inc()
	tr.Event("cache", "miss")

	// The entry is already published in the map, but its fields land
	// exactly once before close(done), and every reader waits on done
	// first — the channel close is the happens-before edge.
	//remoslint:allow pubimmutable single-flight fill: done channel orders these writes before any read
	e.res, e.err = c.inner.Collect(q)
	//remoslint:allow pubimmutable single-flight fill: done channel orders this write before any read
	e.at = c.now()
	close(e.done)
	if e.err != nil || c.cfg.TTL <= 0 {
		// Errors are never cached; without a TTL nothing is retained
		// beyond the flight itself.
		sh.mu.Lock()
		if sh.load()[key] == e {
			next := sh.cloneFor()
			delete(next, key)
			sh.m.Store(&next)
		}
		sh.mu.Unlock()
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.res.Clone(), nil
}

// evictInto enforces the per-shard entry budget on a map being prepared
// for publication: expired entries go first, then the oldest landed
// entries. In-flight entries are never evicted. Callers hold the shard
// mutex.
func (c *Cache) evictInto(m entryMap) {
	if len(m) <= c.perShard {
		return
	}
	now := c.now()
	for k, e := range m {
		if e.landed() && c.cfg.TTL > 0 && now.Sub(e.at) >= c.cfg.TTL {
			delete(m, k)
			c.evictions.Add(1)
			c.mEvictions.Inc()
		}
	}
	for len(m) > c.perShard {
		oldestKey := ""
		var oldest time.Time
		for k, e := range m {
			if !e.landed() {
				continue
			}
			if oldestKey == "" || e.at.Before(oldest) {
				oldestKey, oldest = k, e.at
			}
		}
		if oldestKey == "" {
			return // everything in flight; nothing evictable
		}
		delete(m, oldestKey)
		c.evictions.Add(1)
		c.mEvictions.Inc()
	}
}

// Flush drops every cache slot. Waiters already attached to an in-flight
// collection still receive its answer, but the flushed flight is not
// retained when it lands.
func (c *Cache) Flush() {
	empty := make(entryMap)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m.Store(&empty)
		sh.mu.Unlock()
	}
}

// Invalidate drops every cached answer whose canonical key starts with
// one of the prefixes, and returns how many slots were dropped. Use
// Key(collector.Query{Hosts: hosts}) to build the prefix for a host set:
// because flag suffixes ("|hist", "|pred") extend the base key, the bare
// key invalidates all flag variants at once. In-flight entries are
// dropped too — waiters already attached still receive the flight's
// answer through their held entry pointer, but the superseded flight is
// not retained when it lands (the fill path only deletes, never
// re-inserts). A key that is itself an extension of the prefix (a
// superset host list sharing the sorted-order prefix) is also dropped;
// over-invalidation costs one re-collection, never a stale answer.
func (c *Cache) Invalidate(prefixes ...string) int {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		cur := sh.load()
		var next entryMap
		for k := range cur {
			for _, p := range prefixes {
				if strings.HasPrefix(k, p) {
					if next == nil {
						next = make(entryMap, len(cur))
						for k2, v2 := range cur {
							next[k2] = v2
						}
					}
					delete(next, k)
					dropped++
					break
				}
			}
		}
		if next != nil {
			sh.m.Store(&next)
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		c.mInvalidation.Add(int64(dropped))
	}
	return dropped
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len reports the number of cached entries (including in-flight).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i].load())
	}
	return n
}
