// Package qcache puts a warm-query cache with single-flight deduplication
// in front of any collector — normally the Master Collector, where it
// turns the paper's cold/warm gap (Fig. 3) into an explicit serving
// layer: a cold query pays the full collector fan-out, every identical
// query inside the staleness bound answers from the cached topology, and
// N concurrent identical queries (the "millions of users" scenario)
// trigger exactly one fan-out whose answer all N share.
//
// The cache key is the sorted host set plus the query flags, so host
// order never fragments the cache. Results are deep-copied on the way
// out: consumers may annotate or mutate their answer without corrupting
// the cached copy or each other's.
package qcache

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
)

// Config tunes the cache.
type Config struct {
	// TTL is the staleness bound: a cached answer older than this is
	// re-collected. TTL <= 0 disables retention — the cache then only
	// coalesces concurrent identical queries (pure single-flight).
	TTL time.Duration
	// Now supplies the clock (nil means time.Now). Deployments over the
	// simulated scheduler pass its Now so TTLs follow simulated time.
	Now func() time.Time
	// MaxEntries bounds the number of retained answers (default 1024);
	// the oldest entries are evicted first.
	MaxEntries int
	// Obs, when set, receives hit/miss/coalesce/evict counters. Nil
	// disables instrumentation.
	Obs *obs.Registry
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits answered from a fresh cached result.
	Hits int64
	// Misses went through to the inner collector.
	Misses int64
	// Coalesced callers shared another caller's in-flight collection
	// instead of starting their own.
	Coalesced int64
	// Evictions counts entries dropped for capacity.
	Evictions int64
}

// entry is one cache slot. done closes when the in-flight collection
// lands; res/err/at are written exactly once before the close and only
// read after it.
type entry struct {
	done chan struct{}
	res  *collector.Result
	err  error
	at   time.Time
}

func (e *entry) landed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Cache is a caching, deduplicating collector wrapper. It implements
// collector.Interface and is safe for concurrent use.
type Cache struct {
	inner collector.Interface
	cfg   Config

	mu      sync.Mutex
	entries map[string]*entry

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64

	mHits         *obs.Counter
	mMisses       *obs.Counter
	mCoalesced    *obs.Counter
	mEvictions    *obs.Counter
	mInvalidation *obs.Counter
}

// New wraps a collector with a warm-query cache.
func New(inner collector.Interface, cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	c := &Cache{inner: inner, cfg: cfg, entries: make(map[string]*entry)}
	c.mHits = cfg.Obs.Counter("remos_qcache_hits_total", "queries answered from the warm cache")
	c.mMisses = cfg.Obs.Counter("remos_qcache_misses_total", "queries that went through to the collector")
	c.mCoalesced = cfg.Obs.Counter("remos_qcache_coalesced_total", "queries that shared another caller's in-flight collection")
	c.mEvictions = cfg.Obs.Counter("remos_qcache_evictions_total", "cache entries dropped for capacity")
	c.mInvalidation = cfg.Obs.Counter("remos_qcache_invalidations_total", "cache entries dropped by explicit invalidation")
	cfg.Obs.GaugeFunc("remos_qcache_entries", "cached answers currently retained", func() float64 { return float64(c.Len()) })
	return c
}

// Name implements collector.Interface, transparently: the cache answers
// under the wrapped collector's identity.
func (c *Cache) Name() string { return c.inner.Name() }

func (c *Cache) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	//remoslint:allow wallclock designated fallback: nil Config.Now means the wall clock by contract
	return time.Now()
}

// Key renders the canonical cache key for a query: the host set sorted
// (so host order does not fragment the cache) plus the query flags.
func Key(q collector.Query) string {
	hosts := make([]string, len(q.Hosts))
	for i, h := range q.Hosts {
		hosts[i] = h.String()
	}
	sort.Strings(hosts)
	var b strings.Builder
	b.WriteString(strings.Join(hosts, ","))
	if q.WithHistory {
		b.WriteString("|hist")
	}
	if q.WithPredictions {
		b.WriteString("|pred")
	}
	return b.String()
}

// Collect implements collector.Interface. Identical queries inside the
// TTL answer from cache; concurrent identical queries share a single
// inner collection; distinct queries proceed independently.
func (c *Cache) Collect(q collector.Query) (*collector.Result, error) {
	ctx := q.Context()
	tr := obs.FromContext(ctx)
	key := Key(q)
	c.mu.Lock()
	e := c.entries[key]
	if e != nil {
		if !e.landed() {
			// In flight: wait outside the lock and share the answer. The
			// waiter also honors its own context — the flight belongs to
			// the caller that started it and keeps running.
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				tr.Event("cache", "canceled waiting on in-flight query")
				return nil, ctx.Err()
			}
			if e.err != nil {
				return nil, e.err
			}
			c.coalesced.Add(1)
			c.mCoalesced.Inc()
			tr.Event("cache", "coalesced")
			return e.res.Clone(), nil
		}
		if e.err == nil && c.cfg.TTL > 0 && c.now().Sub(e.at) < c.cfg.TTL {
			c.mu.Unlock()
			c.hits.Add(1)
			c.mHits.Inc()
			tr.Event("cache", "hit")
			return e.res.Clone(), nil
		}
		// Stale (or a retained error, which cannot happen — errors are
		// dropped at fill): fall through and re-collect.
		delete(c.entries, key)
	}
	e = &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	c.misses.Add(1)
	c.mMisses.Inc()
	tr.Event("cache", "miss")

	e.res, e.err = c.inner.Collect(q)
	e.at = c.now()
	close(e.done)
	if e.err != nil || c.cfg.TTL <= 0 {
		// Errors are never cached; without a TTL nothing is retained
		// beyond the flight itself.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.res.Clone(), nil
}

// evictLocked enforces MaxEntries: expired entries go first, then the
// oldest landed entries. In-flight entries are never evicted.
func (c *Cache) evictLocked() {
	if len(c.entries) <= c.cfg.MaxEntries {
		return
	}
	now := c.now()
	for k, e := range c.entries {
		if e.landed() && c.cfg.TTL > 0 && now.Sub(e.at) >= c.cfg.TTL {
			delete(c.entries, k)
			c.evictions.Add(1)
			c.mEvictions.Inc()
		}
	}
	for len(c.entries) > c.cfg.MaxEntries {
		oldestKey := ""
		var oldest time.Time
		for k, e := range c.entries {
			if !e.landed() {
				continue
			}
			if oldestKey == "" || e.at.Before(oldest) {
				oldestKey, oldest = k, e.at
			}
		}
		if oldestKey == "" {
			return // everything in flight; nothing evictable
		}
		delete(c.entries, oldestKey)
		c.evictions.Add(1)
		c.mEvictions.Inc()
	}
}

// Flush drops every cache slot. Waiters already attached to an in-flight
// collection still receive its answer, but the flushed flight is not
// retained when it lands.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
}

// Invalidate drops every cached answer whose canonical key starts with
// one of the prefixes, and returns how many slots were dropped. Use
// Key(collector.Query{Hosts: hosts}) to build the prefix for a host set:
// because flag suffixes ("|hist", "|pred") extend the base key, the bare
// key invalidates all flag variants at once. In-flight entries are
// dropped too — waiters already attached still receive the flight's
// answer through their held entry pointer, but the superseded flight is
// not retained when it lands (the fill path only deletes, never
// re-inserts). A key that is itself an extension of the prefix (a
// superset host list sharing the sorted-order prefix) is also dropped;
// over-invalidation costs one re-collection, never a stale answer.
func (c *Cache) Invalidate(prefixes ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for k := range c.entries {
		for _, p := range prefixes {
			if strings.HasPrefix(k, p) {
				delete(c.entries, k)
				dropped++
				break
			}
		}
	}
	if dropped > 0 {
		c.mInvalidation.Add(int64(dropped))
	}
	return dropped
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len reports the number of cached entries (including in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
