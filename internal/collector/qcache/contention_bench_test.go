package qcache

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/topology"
)

// tinyColl returns a minimal two-node result so the benchmark measures
// the cache's serving path (lookup + clone), not graph construction.
type tinyColl struct{ calls atomic.Int64 }

func (c *tinyColl) Name() string { return "tiny" }

func (c *tinyColl) Collect(q collector.Query) (*collector.Result, error) {
	c.calls.Add(1)
	g := topology.NewGraph()
	for _, h := range q.Hosts {
		g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
	}
	return &collector.Result{Graph: g}, nil
}

// BenchmarkWarmHitParallel hammers one warm cache slot from every
// available CPU — the serving shape of N clients repeating the same
// query. Run with -cpu 1,4,8 to see how hit throughput scales; before
// the sharded rewrite every hit serialized on one cache-wide mutex.
func BenchmarkWarmHitParallel(b *testing.B) {
	inner := &tinyColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: time.Hour, Now: func() time.Time { return now }})
	query := collector.Query{Hosts: []netip.Addr{
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
	}}
	if _, err := c.Collect(query); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Collect(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if inner.calls.Load() != 1 {
		b.Fatalf("warm path not exercised: %d inner collections", inner.calls.Load())
	}
}

// BenchmarkWarmHitParallelManyKeys spreads the same load over 256
// distinct warm slots — the multi-tenant shape where sharding (not just
// a read-write split) is what removes the contention.
func BenchmarkWarmHitParallelManyKeys(b *testing.B) {
	inner := &tinyColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: time.Hour, Now: func() time.Time { return now }})
	queries := make([]collector.Query, 256)
	for i := range queries {
		queries[i] = collector.Query{Hosts: []netip.Addr{
			netip.MustParseAddr(fmt.Sprintf("10.0.%d.1", i)),
			netip.MustParseAddr(fmt.Sprintf("10.0.%d.2", i)),
		}}
		if _, err := c.Collect(queries[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.Collect(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
