package qcache

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/topology"
)

// slowColl is a scripted inner collector with a controllable gate.
type slowColl struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, Collect blocks until closed
	err   error
}

func (s *slowColl) Name() string { return "slow" }

func (s *slowColl) Collect(q collector.Query) (*collector.Result, error) {
	s.calls.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	if s.err != nil {
		return nil, s.err
	}
	g := topology.NewGraph()
	for _, h := range q.Hosts {
		g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
	}
	return &collector.Result{Graph: g}, nil
}

func q(hosts ...string) collector.Query {
	var out collector.Query
	for _, h := range hosts {
		out.Hosts = append(out.Hosts, netip.MustParseAddr(h))
	}
	return out
}

func TestWarmHit(t *testing.T) {
	inner := &slowColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: 10 * time.Second, Now: func() time.Time { return now }})

	r1, err := c.Collect(q("10.0.0.1", "10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	// Same hosts in another order: same cache slot.
	r2, err := c.Collect(q("10.0.0.2", "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("inner collected %d times, want 1", inner.calls.Load())
	}
	if len(r1.Graph.Nodes()) != 2 || len(r2.Graph.Nodes()) != 2 {
		t.Fatal("bad graphs")
	}
	// Results are isolated copies.
	if r1.Graph == r2.Graph {
		t.Fatal("cache handed out a shared graph")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	inner := &slowColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: 5 * time.Second, Now: func() time.Time { return now }})

	if _, err := c.Collect(q("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(4 * time.Second)
	if _, err := c.Collect(q("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("fresh query re-collected (calls=%d)", inner.calls.Load())
	}
	now = now.Add(2 * time.Second) // past TTL
	if _, err := c.Collect(q("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 2 {
		t.Fatalf("stale query did not re-collect (calls=%d)", inner.calls.Load())
	}
}

func TestFlagsPartitionCache(t *testing.T) {
	inner := &slowColl{}
	c := New(inner, Config{TTL: time.Hour})
	base := q("10.0.0.1")
	withHist := base
	withHist.WithHistory = true
	c.Collect(base)
	c.Collect(withHist)
	if inner.calls.Load() != 2 {
		t.Fatalf("flag variants shared a slot (calls=%d)", inner.calls.Load())
	}
}

func TestSingleFlightCoalescesConcurrentIdenticalQueries(t *testing.T) {
	inner := &slowColl{gate: make(chan struct{})}
	c := New(inner, Config{TTL: time.Hour})

	const n = 32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			r, err := c.Collect(q("10.0.0.1", "10.0.0.2"))
			if err != nil || len(r.Graph.Nodes()) != 2 {
				t.Errorf("collect: %v", err)
			}
		}()
	}
	// Wait until the one real collection is in flight, then release it.
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the rest pile onto the flight
	close(inner.gate)
	wg.Wait()
	if inner.calls.Load() != 1 {
		t.Fatalf("N concurrent identical queries caused %d fan-outs, want 1", inner.calls.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced+st.Hits != n-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoTTLStillCoalescesButDoesNotRetain(t *testing.T) {
	inner := &slowColl{}
	c := New(inner, Config{TTL: 0})
	c.Collect(q("10.0.0.1"))
	c.Collect(q("10.0.0.1"))
	if inner.calls.Load() != 2 {
		t.Fatalf("TTL=0 retained an answer (calls=%d)", inner.calls.Load())
	}
	if c.Len() != 0 {
		t.Fatalf("TTL=0 left %d entries", c.Len())
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	inner := &slowColl{err: errors.New("boom")}
	c := New(inner, Config{TTL: time.Hour})
	if _, err := c.Collect(q("10.0.0.1")); err == nil {
		t.Fatal("want error")
	}
	inner.err = nil
	if _, err := c.Collect(q("10.0.0.1")); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
	if inner.calls.Load() != 2 {
		t.Fatalf("calls=%d", inner.calls.Load())
	}
}

func TestEvictionBound(t *testing.T) {
	inner := &slowColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: time.Hour, MaxEntries: 8, Now: func() time.Time {
		now = now.Add(time.Millisecond) // distinct fill times for LRU order
		return now
	}})
	for i := 0; i < 64; i++ {
		if _, err := c.Collect(q(fmt.Sprintf("10.0.%d.1", i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 9 { // MaxEntries plus at most the newest in-flight slot
		t.Fatalf("cache grew to %d entries", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestEvictionOrderOldestFillFirst pins the eviction policy: entries
// leave in fill-time order, and a warm hit does not refresh an entry's
// age (the cache is FIFO by fill, not LRU by access — a deliberately
// cheaper policy whose order this test documents). Shards: 1 makes the
// global order deterministic.
func TestEvictionOrderOldestFillFirst(t *testing.T) {
	inner := &slowColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: time.Hour, MaxEntries: 4, Shards: 1, Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	for i := 0; i < 4; i++ {
		if _, err := c.Collect(q(fmt.Sprintf("10.0.%d.1", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry; under fill-order eviction this must not
	// save it.
	if _, err := c.Collect(q("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 4 {
		t.Fatalf("warm re-read went to the inner collector (calls=%d)", got)
	}
	if _, err := c.Collect(q("10.0.9.1")); err != nil { // fifth key: evicts oldest
		t.Fatal(err)
	}
	// The three younger originals must still be warm...
	for i := 1; i < 4; i++ {
		if _, err := c.Collect(q(fmt.Sprintf("10.0.%d.1", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != 5 {
		t.Fatalf("younger entries were evicted (calls=%d, want 5)", got)
	}
	// ...and the oldest must be gone despite its recent access.
	if _, err := c.Collect(q("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 6 {
		t.Fatalf("oldest entry survived eviction (calls=%d, want 6)", got)
	}
}

// TestEvictionSweepsAllExpiredFirst: when over capacity, every expired
// entry goes before any live one is considered — the sweep may drop more
// than the minimum needed to make room.
func TestEvictionSweepsAllExpiredFirst(t *testing.T) {
	inner := &slowColl{}
	now := time.Unix(0, 0)
	c := New(inner, Config{TTL: 10 * time.Second, MaxEntries: 4, Shards: 1, Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	for i := 0; i < 3; i++ {
		if _, err := c.Collect(q(fmt.Sprintf("10.0.%d.1", i))); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(time.Minute) // all three now expired
	if _, err := c.Collect(q("10.0.8.1")); err != nil { // 4 entries: at capacity, no sweep yet
		t.Fatal(err)
	}
	if _, err := c.Collect(q("10.0.9.1")); err != nil { // 5th triggers the sweep
		t.Fatal(err)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after sweep, want 2 (only the live pair)", got)
	}
	if got := c.Stats().Evictions; got != 3 {
		t.Fatalf("Evictions = %d, want 3 (every expired entry)", got)
	}
}

func TestFlush(t *testing.T) {
	inner := &slowColl{}
	c := New(inner, Config{TTL: time.Hour})
	c.Collect(q("10.0.0.1"))
	c.Flush()
	c.Collect(q("10.0.0.1"))
	if inner.calls.Load() != 2 {
		t.Fatalf("flush did not drop the entry (calls=%d)", inner.calls.Load())
	}
}

func TestInvalidateDropsMatchingPrefixes(t *testing.T) {
	inner := &slowColl{}
	c := New(inner, Config{TTL: time.Hour})
	base := q("10.0.0.1", "10.0.0.2")
	withHist := base
	withHist.WithHistory = true
	other := q("10.0.0.9")
	c.Collect(base)
	c.Collect(withHist)
	c.Collect(other)
	if inner.calls.Load() != 3 {
		t.Fatalf("setup calls = %d", inner.calls.Load())
	}

	// The canonical prefix for the pair catches both flag variants but
	// not the unrelated entry.
	dropped := c.Invalidate(Key(collector.Query{Hosts: base.Hosts}))
	if dropped != 2 {
		t.Fatalf("Invalidate dropped %d entries, want 2", dropped)
	}
	c.Collect(other)
	if inner.calls.Load() != 3 {
		t.Fatal("unrelated entry was invalidated")
	}
	c.Collect(base)
	c.Collect(withHist)
	if inner.calls.Load() != 5 {
		t.Fatalf("invalidated entries still warm (calls=%d)", inner.calls.Load())
	}
	if got := c.Invalidate("no-such-prefix"); got != 0 {
		t.Fatalf("phantom invalidations: %d", got)
	}
}

// TestInvalidateDuringInFlightFill pins the race the scheduler leans
// on: Invalidate while a fill is in flight must neither wedge the
// waiters nor let the superseded flight re-insert itself as warm state.
func TestInvalidateDuringInFlightFill(t *testing.T) {
	inner := &slowColl{gate: make(chan struct{})}
	c := New(inner, Config{TTL: time.Hour})

	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			r, err := c.Collect(q("10.0.0.1", "10.0.0.2"))
			if err != nil || len(r.Graph.Nodes()) != 2 {
				t.Errorf("collect: %v", err)
			}
		}()
	}
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The fill is blocked on the gate; drop its entry out from under it.
	if dropped := c.Invalidate(Key(collector.Query{Hosts: q("10.0.0.2", "10.0.0.1").Hosts})); dropped != 1 {
		t.Fatalf("in-flight entry not dropped (%d)", dropped)
	}
	close(inner.gate)
	wg.Wait()
	// Every waiter was answered by the one flight...
	if inner.calls.Load() != 1 {
		t.Fatalf("flight restarted: %d inner calls", inner.calls.Load())
	}
	// ...but the invalidated flight must not have been retained: the
	// next query re-collects.
	inner.gate = nil
	c.Collect(q("10.0.0.1", "10.0.0.2"))
	if inner.calls.Load() != 2 {
		t.Fatalf("superseded flight re-inserted itself (calls=%d)", inner.calls.Load())
	}
}

// TestInvalidateVersusSingleflightChurn hammers Invalidate against
// concurrent identical queries; run with -race. Nothing to assert
// beyond "no deadlock, no error, no torn state".
func TestInvalidateVersusSingleflightChurn(t *testing.T) {
	inner := &slowColl{}
	c := New(inner, Config{TTL: time.Hour})
	prefix := Key(collector.Query{Hosts: q("10.0.0.1", "10.0.0.2").Hosts})

	stop := make(chan struct{})
	var inval sync.WaitGroup
	inval.Add(1)
	go func() {
		defer inval.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Invalidate(prefix)
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r, err := c.Collect(q("10.0.0.1", "10.0.0.2"))
				if err != nil || len(r.Graph.Nodes()) != 2 {
					t.Errorf("collect under churn: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	inval.Wait()
}
