// Package benchcoll implements the Remos Benchmark Collector (Section
// 3.1.3): where SNMP access ends — across the wide area — it falls back
// on explicit benchmarking, periodically exchanging measurement traffic
// with the benchmark collectors at peer sites and reporting the achieved
// bandwidth. Results are cached and served with history, and the
// wide-area network between each site pair is represented by a virtual
// node, since its internal structure is unobservable.
package benchcoll

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/sim"
	"remos/internal/topology"
)

// Prober runs measurement traffic between two endpoints. The emulated
// implementation drives netsim flows; the live implementation
// (TCPProber) writes bytes over real sockets.
type Prober interface {
	// Start begins a measurement transfer; the returned stop function
	// ends it and reports the achieved bandwidth in bits per second.
	Start(src, dst netip.Addr, demand float64) (stop func() (bitsPerSec float64), err error)
	// Delay estimates one-way latency between the endpoints.
	Delay(src, dst netip.Addr) (time.Duration, error)
}

// JitterProber is implemented by probers that can also measure delay
// variation (the §6.2 jitter metric). Collectors use it when available.
type JitterProber interface {
	// Jitter estimates the standard deviation of one-way delay.
	Jitter(src, dst netip.Addr) (time.Duration, error)
}

// Peer names a remote site's benchmark endpoint.
type Peer struct {
	Name string
	Host netip.Addr
}

// Config configures a Benchmark Collector.
type Config struct {
	// LocalName and LocalHost identify this site's endpoint.
	LocalName string
	LocalHost netip.Addr
	// Peers are the remote endpoints to measure against.
	Peers []Peer
	// Prober runs the measurement traffic.
	Prober Prober
	// Sched drives periodic measurement.
	Sched sim.Scheduler
	// Interval between measurement rounds (default 30s).
	Interval time.Duration
	// ProbeDuration is how long each probe transfers (default 5s).
	ProbeDuration time.Duration
	// ProbeDemand caps the probe rate to bound intrusiveness; 0 lets
	// the probe take its full fair share (most accurate, most
	// intrusive — the trade-off Section 6.1 notes).
	ProbeDemand float64
	// ProbeReverse runs probes from the peer toward the local endpoint,
	// measuring the download direction. The benchmark collectors
	// "exchange data", so either direction is available; server
	// selection cares about peer->local.
	ProbeReverse bool
	// HistoryLen bounds per-peer history (default 512).
	HistoryLen int
}

// Collector is a running Benchmark Collector.
type Collector struct {
	cfg Config

	mu      sync.Mutex
	latest  map[string]measurement // peer name -> latest
	hist    *collector.History
	rounds  int
	current int // index of next peer to probe
	timer   *sim.Timer
}

type measurement struct {
	peer   Peer
	bits   float64
	delay  time.Duration
	jitter time.Duration
	at     time.Time
}

// New creates a Benchmark Collector and starts its periodic probing.
func New(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.ProbeDuration <= 0 {
		cfg.ProbeDuration = 5 * time.Second
	}
	c := &Collector{
		cfg:    cfg,
		latest: make(map[string]measurement),
		hist:   collector.NewHistory(cfg.HistoryLen),
	}
	if cfg.Sched != nil && len(cfg.Peers) > 0 {
		// Probe one peer per interval, round-robin, so probe traffic
		// to different sites does not self-interfere.
		c.timer = cfg.Sched.Every(cfg.Interval, c.probeNext)
	}
	return c
}

// Name implements collector.Interface.
func (c *Collector) Name() string { return "benchmark-" + c.cfg.LocalName }

// Stop halts periodic probing.
func (c *Collector) Stop() {
	if c.timer != nil {
		c.timer.Stop()
	}
}

// probeNext measures the next peer in round-robin order.
func (c *Collector) probeNext() {
	c.mu.Lock()
	peer := c.cfg.Peers[c.current%len(c.cfg.Peers)]
	c.current++
	c.mu.Unlock()
	c.ProbePeer(peer)
}

// startProbe begins one measurement toward a peer, honoring the probe
// direction; the returned stop function reports achieved bits/s.
func (c *Collector) startProbe(peer Peer) (func() float64, error) {
	src, dst := c.cfg.LocalHost, peer.Host
	if c.cfg.ProbeReverse {
		src, dst = dst, src
	}
	return c.cfg.Prober.Start(src, dst, c.cfg.ProbeDemand)
}

// record stores one completed measurement.
func (c *Collector) record(peer Peer, bits float64) {
	delay, _ := c.cfg.Prober.Delay(c.cfg.LocalHost, peer.Host)
	var jitter time.Duration
	if jp, ok := c.cfg.Prober.(JitterProber); ok {
		jitter, _ = jp.Jitter(c.cfg.LocalHost, peer.Host)
	}
	now := c.cfg.Sched.Now()
	c.mu.Lock()
	c.latest[peer.Name] = measurement{peer: peer, bits: bits, delay: delay, jitter: jitter, at: now}
	c.rounds++
	c.mu.Unlock()
	c.hist.Add(collector.HistKey{From: c.cfg.LocalHost.String(), To: peer.Host.String()},
		collector.Sample{T: now, Bits: bits})
}

// ProbePeer runs one measurement against a peer immediately. The transfer
// runs for ProbeDuration on the scheduler; the result lands in the cache
// when it completes.
func (c *Collector) ProbePeer(peer Peer) {
	stop, err := c.startProbe(peer)
	if err != nil {
		return // unreachable peer; next round retries
	}
	c.cfg.Sched.After(c.cfg.ProbeDuration, func() {
		c.record(peer, stop())
	})
}

// MeasureAllParallel probes every peer concurrently for the given window,
// driving a simulated scheduler until the results are recorded. Parallel
// probing answers a multi-candidate query in one window — the on-demand
// measurement behind the mirrored-server experiments.
func (c *Collector) MeasureAllParallel(window time.Duration) error {
	s, ok := c.cfg.Sched.(*sim.Sim)
	if !ok {
		return fmt.Errorf("benchcoll: MeasureAllParallel needs a simulated scheduler")
	}
	if window <= 0 {
		window = c.cfg.ProbeDuration
	}
	type running struct {
		peer Peer
		stop func() float64
	}
	var rs []running
	for _, p := range c.cfg.Peers {
		if stop, err := c.startProbe(p); err == nil {
			rs = append(rs, running{peer: p, stop: stop})
		}
	}
	s.RunFor(window)
	for _, r := range rs {
		c.record(r.peer, r.stop())
	}
	return nil
}

// MeasureAll probes every peer once, synchronously driving a simulated
// scheduler until the results are in. It requires a *sim.Sim scheduler.
func (c *Collector) MeasureAll() error {
	s, ok := c.cfg.Sched.(*sim.Sim)
	if !ok {
		return fmt.Errorf("benchcoll: MeasureAll needs a simulated scheduler")
	}
	for _, p := range c.cfg.Peers {
		before := c.Rounds()
		c.ProbePeer(p)
		for c.Rounds() == before {
			if !s.Step() {
				return fmt.Errorf("benchcoll: simulation ran dry probing %s", p.Name)
			}
		}
	}
	return nil
}

// Rounds returns how many probe results have been recorded.
func (c *Collector) Rounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// Latest returns the most recent measurement toward the named peer.
func (c *Collector) Latest(peerName string) (bits float64, at time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.latest[peerName]
	return m.bits, m.at, ok
}

// History exposes the measurement history store.
func (c *Collector) History() *collector.History { return c.hist }

// Collect implements collector.Interface: the answer is a star of virtual
// wide-area nodes — for each measured peer relevant to the query, local
// endpoint — vWAN — peer endpoint, with the measured bandwidth as the
// virtual links' capacity.
func (c *Collector) Collect(q collector.Query) (*collector.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	relevant := func(p Peer) bool {
		if len(q.Hosts) == 0 {
			return true
		}
		for _, h := range q.Hosts {
			if h == p.Host {
				return true
			}
		}
		return false
	}
	g := topology.NewGraph()
	localID := c.cfg.LocalHost.String()
	g.AddNode(topology.Node{ID: localID, Kind: topology.HostNode, Addr: localID})
	added := 0
	for _, p := range c.cfg.Peers {
		if !relevant(p) {
			continue
		}
		m, ok := c.latest[p.Name]
		if !ok {
			continue // not yet measured
		}
		peerID := p.Host.String()
		wanID := fmt.Sprintf("wan:%s-%s", c.cfg.LocalName, p.Name)
		g.AddNode(topology.Node{ID: peerID, Kind: topology.HostNode, Addr: peerID})
		g.AddNode(topology.Node{ID: wanID, Kind: topology.VirtualNode})
		half := m.delay / 2
		// The full measured jitter rides on one half-link so the
		// end-to-end path jitter equals the measurement exactly.
		if _, err := g.AddLink(topology.Link{
			From: localID, To: wanID, Capacity: m.bits, Latency: half, Jitter: m.jitter,
		}); err != nil {
			return nil, err
		}
		if _, err := g.AddLink(topology.Link{From: wanID, To: peerID, Capacity: m.bits, Latency: m.delay - half}); err != nil {
			return nil, err
		}
		added++
	}
	res := &collector.Result{Graph: g}
	if q.WithHistory {
		res.History = c.hist.Snapshot()
	}
	return res, nil
}
