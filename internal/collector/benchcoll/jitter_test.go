package benchcoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/topology"
)

// Jitter support is the §6.2 extension: benchmark collectors measure
// delay variation and expose it on the virtual WAN links they report.

func TestNetsimProberJitter(t *testing.T) {
	s, n, d := wan(t)
	_ = s
	// Give the two WAN hops known jitter: 3ms and 4ms combine to 5ms.
	links := n.Links()
	for _, l := range links {
		switch {
		case l.Capacity == 50e6:
			l.Jitter = 3 * time.Millisecond
		case l.Capacity == 10e6:
			l.Jitter = 4 * time.Millisecond
		}
	}
	p := &NetsimProber{Net: n}
	j, err := p.Jitter(d["a"].Addr(), d["b"].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.Seconds()-0.005) > 1e-6 {
		t.Fatalf("path jitter %v, want 5ms (3,4 combine in quadrature)", j)
	}
}

func TestCollectReportsJitter(t *testing.T) {
	s, n, d := wan(t)
	for _, l := range n.Links() {
		if l.Capacity == 10e6 { // b's access link
			l.Jitter = 7 * time.Millisecond
		}
	}
	c := newBench(t, s, n, d)
	if err := c.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Collect(collector.Query{Hosts: []netip.Addr{d["a"].Addr(), d["b"].Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end jitter across the virtual WAN equals the measurement.
	preds, err := res.Graph.FlowAlloc([]topology.FlowRequest{
		{Src: d["a"].Addr().String(), Dst: d["b"].Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preds[0].Jitter.Seconds()-0.007) > 1e-6 {
		t.Fatalf("reported jitter %v, want 7ms", preds[0].Jitter)
	}
}
