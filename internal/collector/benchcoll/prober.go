package benchcoll

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"remos/internal/netsim"
	"remos/internal/sim"
)

// NetsimProber measures through the network emulator: a probe is an
// elastic (or demand-capped) fluid flow whose achieved throughput is the
// benchmark result. Live deployments use TCPProber instead.
type NetsimProber struct {
	Net *netsim.Network
}

// Start implements Prober.
func (p *NetsimProber) Start(src, dst netip.Addr, demand float64) (func() float64, error) {
	sd := p.Net.DeviceByIP(src)
	dd := p.Net.DeviceByIP(dst)
	if sd == nil || dd == nil {
		return nil, fmt.Errorf("netsim prober: unknown endpoint %v or %v", src, dst)
	}
	f, err := p.Net.StartFlow(sd, dd, netsim.FlowSpec{Demand: demand})
	if err != nil {
		return nil, err
	}
	return func() float64 {
		bytes, active := f.Stop()
		if active <= 0 {
			return 0
		}
		return bytes * 8 / active.Seconds()
	}, nil
}

// Delay implements Prober from the emulator's path delay.
func (p *NetsimProber) Delay(src, dst netip.Addr) (time.Duration, error) {
	sd := p.Net.DeviceByIP(src)
	dd := p.Net.DeviceByIP(dst)
	if sd == nil || dd == nil {
		return 0, fmt.Errorf("netsim prober: unknown endpoint")
	}
	return p.Net.PathDelay(sd, dd)
}

// Jitter implements JitterProber from the emulator's path delay
// variation (what a live prober estimates from repeated delay samples).
func (p *NetsimProber) Jitter(src, dst netip.Addr) (time.Duration, error) {
	sd := p.Net.DeviceByIP(src)
	dd := p.Net.DeviceByIP(dst)
	if sd == nil || dd == nil {
		return 0, fmt.Errorf("netsim prober: unknown endpoint")
	}
	_, jitter, err := p.Net.PathDelayJitter(sd, dd)
	return jitter, err
}

// Sink is the receiving half of a live TCP benchmark: it accepts
// connections and discards whatever arrives, like the sink side of
// Netperf's TCP_STREAM test. Each site's Benchmark Collector runs one.
type Sink struct {
	ln   net.Listener
	wg   sync.WaitGroup
	once sync.Once
}

// ListenAndServe binds the address ("host:port", port 0 for ephemeral)
// and serves until Close. It returns the bound address.
func (s *Sink) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	//remoslint:allow goctx accept loop ends when Close closes the listener; Close waits on the group
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			//remoslint:allow goctx discard loop ends when the peer or Close tears the connection down
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				buf := make([]byte, 64*1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the sink.
func (s *Sink) Close() error {
	var err error
	s.once.Do(func() {
		if s.ln != nil {
			err = s.ln.Close()
		}
	})
	s.wg.Wait()
	return err
}

// TCPProber measures over real sockets: Start connects to the peer's Sink
// and writes as fast as permitted until stopped, reporting achieved
// throughput. PortOf maps a peer address to its sink's TCP port.
type TCPProber struct {
	// PortOf returns the sink port for a peer address; nil means 7 (the
	// historical discard port).
	PortOf func(netip.Addr) int
	// Sched supplies the clock and pacing timers. Nil selects the real
	// runtime clock (sim.Real): live deployments measure wall time,
	// while emulated runs inject their discrete-event scheduler so
	// probe timing is deterministic.
	Sched sim.Scheduler
}

// sched resolves the clock, defaulting to real time.
func (p *TCPProber) sched() sim.Scheduler {
	if p.Sched != nil {
		return p.Sched
	}
	return sim.Real{}
}

// sleepOn blocks the caller for d of the scheduler's time.
func sleepOn(s sim.Scheduler, d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.After(d, func() { close(ch) })
	<-ch
}

// Start implements Prober over TCP.
func (p *TCPProber) Start(src, dst netip.Addr, demand float64) (func() float64, error) {
	port := 7
	if p.PortOf != nil {
		port = p.PortOf(dst)
	}
	conn, err := net.DialTimeout("tcp", fmt.Sprintf("%s:%d", dst, port), 5*time.Second)
	if err != nil {
		return nil, err
	}
	sched := p.sched()
	var mu sync.Mutex
	var sent int64
	stopCh := make(chan struct{})
	done := make(chan struct{})
	start := sched.Now()
	go func() {
		defer close(done)
		defer conn.Close()
		buf := make([]byte, 64*1024)
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			n, err := conn.Write(buf)
			mu.Lock()
			sent += int64(n)
			mu.Unlock()
			if err != nil {
				return
			}
			if demand > 0 {
				// Pace to the demanded rate.
				mu.Lock()
				ahead := time.Duration(float64(sent*8)/demand*float64(time.Second)) - sched.Now().Sub(start)
				mu.Unlock()
				if ahead > 0 {
					sleepOn(sched, ahead)
				}
			}
		}
	}()
	return func() float64 {
		close(stopCh)
		<-done
		elapsed := sched.Now().Sub(start)
		mu.Lock()
		defer mu.Unlock()
		if elapsed <= 0 {
			return 0
		}
		return float64(sent) * 8 / elapsed.Seconds()
	}, nil
}

// Delay implements Prober with a TCP connect-time estimate.
func (p *TCPProber) Delay(src, dst netip.Addr) (time.Duration, error) {
	port := 7
	if p.PortOf != nil {
		port = p.PortOf(dst)
	}
	sched := p.sched()
	start := sched.Now()
	conn, err := net.DialTimeout("tcp", fmt.Sprintf("%s:%d", dst, port), 5*time.Second)
	if err != nil {
		return 0, err
	}
	conn.Close()
	return sched.Now().Sub(start) / 2, nil
}
