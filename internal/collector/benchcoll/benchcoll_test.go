package benchcoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/netsim"
	"remos/internal/sim"
)

// wan builds three sites joined through a WAN core router:
//
//	a --- ra --- core --- rb --- b
//	               |
//	              rc --- c
//
// with per-site access capacities 50/10/2 Mbit/s.
func wan(t testing.TB) (*sim.Sim, *netsim.Network, map[string]*netsim.Device) {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{
		"a": n.AddHost("a"), "b": n.AddHost("b"), "c": n.AddHost("c"),
		"ra": n.AddRouter("ra"), "rb": n.AddRouter("rb"), "rc": n.AddRouter("rc"),
		"core": n.AddRouter("core"),
	}
	n.Connect(d["a"], d["ra"], 100e6, time.Millisecond)
	n.Connect(d["b"], d["rb"], 100e6, time.Millisecond)
	n.Connect(d["c"], d["rc"], 100e6, time.Millisecond)
	n.Connect(d["ra"], d["core"], 50e6, 20*time.Millisecond)
	n.Connect(d["rb"], d["core"], 10e6, 30*time.Millisecond)
	n.Connect(d["rc"], d["core"], 2e6, 60*time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	return s, n, d
}

func newBench(t testing.TB, s *sim.Sim, n *netsim.Network, d map[string]*netsim.Device) *Collector {
	t.Helper()
	c := New(Config{
		LocalName: "a",
		LocalHost: d["a"].Addr(),
		Peers: []Peer{
			{Name: "b", Host: d["b"].Addr()},
			{Name: "c", Host: d["c"].Addr()},
		},
		Prober:        &NetsimProber{Net: n},
		Sched:         s,
		Interval:      30 * time.Second,
		ProbeDuration: 5 * time.Second,
	})
	t.Cleanup(c.Stop)
	return c
}

func TestMeasureAllFindsBottlenecks(t *testing.T) {
	s, n, d := wan(t)
	c := newBench(t, s, n, d)
	if err := c.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	bw, _, ok := c.Latest("b")
	if !ok || math.Abs(bw-10e6) > 1e5 {
		t.Fatalf("bandwidth to b = %v, want ~10e6", bw)
	}
	bw, _, ok = c.Latest("c")
	if !ok || math.Abs(bw-2e6) > 1e5 {
		t.Fatalf("bandwidth to c = %v, want ~2e6", bw)
	}
}

func TestPeriodicProbingRoundRobin(t *testing.T) {
	s, n, d := wan(t)
	c := newBench(t, s, n, d)
	// 2 peers, one probe per 30s: after 130s both peers have been
	// measured at least twice.
	s.RunFor(130 * time.Second)
	if c.Rounds() < 4 {
		t.Fatalf("rounds = %d, want >=4", c.Rounds())
	}
	if _, _, ok := c.Latest("b"); !ok {
		t.Fatal("peer b never measured")
	}
	if _, _, ok := c.Latest("c"); !ok {
		t.Fatal("peer c never measured")
	}
	// History accumulates per peer.
	hb := c.History().Get(collector.HistKey{From: d["a"].Addr().String(), To: d["b"].Addr().String()})
	if len(hb) < 2 {
		t.Fatalf("history to b has %d samples", len(hb))
	}
}

func TestProbeSeesCrossTraffic(t *testing.T) {
	s, n, d := wan(t)
	c := newBench(t, s, n, d)
	// Competing traffic from c occupies 2 Mbit/s of b's 10 Mbit access
	// (c is capped by its own 2 Mbit uplink), so the probe's fair share
	// toward b is ~8 Mbit/s.
	f, err := n.StartFlow(d["c"], d["b"], netsim.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	bw, _, _ := c.Latest("b")
	if math.Abs(bw-8e6) > 5e5 {
		t.Fatalf("probe alongside competing flow measured %v, want ~8e6", bw)
	}
	f.Stop()
}

func TestDemandCappedProbeLessIntrusive(t *testing.T) {
	s, n, d := wan(t)
	c := New(Config{
		LocalName:     "a",
		LocalHost:     d["a"].Addr(),
		Peers:         []Peer{{Name: "b", Host: d["b"].Addr()}},
		Prober:        &NetsimProber{Net: n},
		Sched:         s,
		ProbeDuration: 5 * time.Second,
		ProbeDemand:   1e6, // lightweight probe
	})
	defer c.Stop()
	if err := c.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	bw, _, _ := c.Latest("b")
	if math.Abs(bw-1e6) > 1e5 {
		t.Fatalf("capped probe measured %v, want ~1e6 (its own cap)", bw)
	}
}

func TestCollectGraph(t *testing.T) {
	s, n, d := wan(t)
	c := newBench(t, s, n, d)
	if err := c.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Collect(collector.Query{
		Hosts:       []netip.Addr{d["a"].Addr(), d["b"].Addr()},
		WithHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	// a, b, one wan virtual node; peer c filtered out.
	if len(g.Nodes()) != 3 {
		t.Fatalf("graph nodes = %d, want 3", len(g.Nodes()))
	}
	bw, _, err := g.BottleneckAvail(d["a"].Addr().String(), d["b"].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-10e6) > 1e6 {
		t.Fatalf("graph end-to-end bandwidth %v, want ~10e6", bw)
	}
	if len(res.History) == 0 {
		t.Fatal("history requested but empty")
	}
}

func TestCollectBeforeMeasurement(t *testing.T) {
	s, n, d := wan(t)
	c := newBench(t, s, n, d)
	res, err := c.Collect(collector.Query{Hosts: []netip.Addr{d["a"].Addr(), d["b"].Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	// No measurements yet: only the local node, no WAN edges.
	if len(res.Graph.Links()) != 0 {
		t.Fatalf("unmeasured collector returned %d links", len(res.Graph.Links()))
	}
}

func TestTCPProberLoopback(t *testing.T) {
	sink := &Sink{}
	addr, err := sink.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &TCPProber{PortOf: func(netip.Addr) int { return int(ap.Port()) }}
	stop, err := p.Start(netip.MustParseAddr("127.0.0.1"), ap.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	bw := stop()
	if bw <= 0 {
		t.Fatalf("loopback probe measured %v", bw)
	}
	if d, err := p.Delay(netip.MustParseAddr("127.0.0.1"), ap.Addr()); err != nil || d < 0 {
		t.Fatalf("delay = %v err = %v", d, err)
	}
}

func TestTCPProberPacedRate(t *testing.T) {
	sink := &Sink{}
	addr, err := sink.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	ap, _ := netip.ParseAddrPort(addr)
	p := &TCPProber{PortOf: func(netip.Addr) int { return int(ap.Port()) }}
	const target = 40e6 // 40 Mbit/s
	stop, err := p.Start(netip.MustParseAddr("127.0.0.1"), ap.Addr(), target)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	bw := stop()
	if bw > target*1.5 || bw < target*0.3 {
		t.Fatalf("paced probe measured %v, want near %v", bw, target)
	}
}
