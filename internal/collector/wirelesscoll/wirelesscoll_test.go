package wirelesscoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// wlan builds a two-AP wireless LAN wired through a distribution switch:
//
//	laptop ~~~ ap1 --- dsw --- ap2 ~~~ tablet
//	phone  ~~~ ap1
type wlan struct {
	s        *sim.Sim
	n        *netsim.Network
	wc       *Collector
	ap1, ap2 *netsim.AccessPoint
	d        map[string]*netsim.Device
}

func newWlan(t testing.TB, cfgMut func(*Config)) *wlan {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{
		"laptop": n.AddHost("laptop"),
		"phone":  n.AddHost("phone"),
		"tablet": n.AddHost("tablet"),
		"dsw":    n.AddSwitch("dsw"),
		"uplink": n.AddHost("uplink"),
	}
	ap1 := n.AddAccessPoint("ap1")
	ap2 := n.AddAccessPoint("ap2")
	n.Connect(ap1.Dev, d["dsw"], 1e9, time.Millisecond)
	n.Connect(ap2.Dev, d["dsw"], 1e9, time.Millisecond)
	n.Connect(d["uplink"], d["dsw"], 1e9, time.Millisecond)
	if _, err := ap1.Associate(d["laptop"], -52); err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.Associate(d["phone"], -71); err != nil {
		t.Fatal(err)
	}
	if _, err := ap2.Associate(d["tablet"], -63); err != nil {
		t.Fatal(err)
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	cfg := Config{
		Client: snmp.NewClient(&snmp.InProc{Registry: reg}, "public"),
		Sched:  s,
		APs:    []netip.Addr{ap1.Dev.ManagementAddr(), ap2.Dev.ManagementAddr()},
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	wc := New(cfg)
	if err := wc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wc.Stop)
	return &wlan{s: s, n: n, wc: wc, ap1: ap1, ap2: ap2, d: d}
}

func macOf(d *netsim.Device) collector.MAC { return collector.MAC(d.Ifaces()[0].MAC) }

func TestRateForRSSISteps(t *testing.T) {
	if netsim.RateForRSSI(-50) != 54e6 {
		t.Fatalf("strong signal rate %v", netsim.RateForRSSI(-50))
	}
	if netsim.RateForRSSI(-72) != 18e6 {
		t.Fatalf("-72 dBm rate %v, want 18e6", netsim.RateForRSSI(-72))
	}
	if netsim.RateForRSSI(-95) != 0 {
		t.Fatal("out-of-range signal should not associate")
	}
	// Monotone non-increasing as signal weakens.
	prev := netsim.RateForRSSI(-40)
	for rssi := -41; rssi >= -95; rssi-- {
		r := netsim.RateForRSSI(rssi)
		if r > prev {
			t.Fatalf("rate increased as signal weakened at %d dBm", rssi)
		}
		prev = r
	}
}

func TestAssociationsDiscovered(t *testing.T) {
	w := newWlan(t, nil)
	if got := len(w.wc.Stations()); got != 3 {
		t.Fatalf("stations = %d, want 3", got)
	}
	ap, ok := w.wc.Locate(macOf(w.d["laptop"]))
	if !ok || ap != w.ap1.Dev.ManagementAddr() {
		t.Fatalf("laptop located at %v (ok=%v), want ap1", ap, ok)
	}
	rate, ok := w.wc.Rate(macOf(w.d["phone"]))
	if !ok || rate != 18e6 {
		t.Fatalf("phone rate %v (ok=%v), want 18e6 at -71 dBm", rate, ok)
	}
}

func TestCollectGraphCarriesRadioRates(t *testing.T) {
	w := newWlan(t, nil)
	res, err := w.wc.Collect(collector.Query{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 APs + 3 stations.
	if len(res.Graph.Nodes()) != 5 || len(res.Graph.Links()) != 3 {
		t.Fatalf("graph %d nodes %d links", len(res.Graph.Nodes()), len(res.Graph.Links()))
	}
	l := res.Graph.FindLink(StationID(macOf(w.d["laptop"])), w.ap1.Dev.ManagementAddr().String())
	if l == nil || l.Capacity != 54e6 {
		t.Fatalf("laptop radio link %+v, want 54e6", l)
	}
}

func TestRoamDetected(t *testing.T) {
	w := newWlan(t, nil)
	var roamed collector.MAC
	var from, to netip.Addr
	w.wc.cfg.OnRoam = func(mac collector.MAC, f, tt netip.Addr) { roamed, from, to = mac, f, tt }
	// The laptop walks over to ap2's cell.
	if _, err := w.ap2.Associate(w.d["laptop"], -66); err != nil {
		t.Fatal(err)
	}
	w.s.RunFor(6 * time.Second) // one monitor sweep
	if roamed != macOf(w.d["laptop"]) {
		t.Fatal("roam not detected")
	}
	if from != w.ap1.Dev.ManagementAddr() || to != w.ap2.Dev.ManagementAddr() {
		t.Fatalf("roam %v -> %v, want ap1 -> ap2", from, to)
	}
	// Rate renegotiated for the weaker signal at ap2.
	rate, _ := w.wc.Rate(macOf(w.d["laptop"]))
	if rate != 24e6 {
		t.Fatalf("post-roam rate %v, want 24e6 at -66 dBm", rate)
	}
}

func TestRateChangeDetectedWithoutRoam(t *testing.T) {
	w := newWlan(t, nil)
	var gotOld, gotNew float64
	w.wc.cfg.OnRateChange = func(_ collector.MAC, _ netip.Addr, o, nw float64) { gotOld, gotNew = o, nw }
	// The phone's signal degrades in place.
	if _, err := w.ap1.UpdateSignal(w.d["phone"], -82); err != nil {
		t.Fatal(err)
	}
	w.s.RunFor(6 * time.Second)
	if gotOld != 18e6 || gotNew != 9e6 {
		t.Fatalf("rate change %v -> %v, want 18e6 -> 9e6", gotOld, gotNew)
	}
}

func TestWirelessTrafficLimitedByRadioRate(t *testing.T) {
	w := newWlan(t, nil)
	// Phone at 24 Mbit/s radio: a transfer to the wired uplink is
	// bottlenecked by the air link, not the gigabit wires.
	f, err := w.n.StartFlow(w.d["phone"], w.d["uplink"], netsim.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Rate(); r != 18e6 {
		t.Fatalf("flow rate %v, want radio-limited 18e6", r)
	}
}

func TestAssociateTooWeakRejected(t *testing.T) {
	w := newWlan(t, nil)
	if _, err := w.ap2.Associate(w.d["phone"], -95); err == nil {
		t.Fatal("association at -95 dBm accepted")
	}
}

func TestCollectRequiresStart(t *testing.T) {
	c := New(Config{})
	if _, err := c.Collect(collector.Query{}); err == nil {
		t.Fatal("Collect before Start succeeded")
	}
}

func TestMobileStationKeepsConnectivityAcrossRoam(t *testing.T) {
	w := newWlan(t, nil)
	// Traffic before, during and after a roam: the path re-resolves.
	tput1, _, err := w.n.Transfer(w.d["laptop"], w.d["uplink"], 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tput1-54e6) > 1e3 {
		t.Fatalf("pre-roam throughput %v", tput1)
	}
	if _, err := w.ap2.Associate(w.d["laptop"], -78); err != nil {
		t.Fatal(err)
	}
	tput2, _, err := w.n.Transfer(w.d["laptop"], w.d["uplink"], 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tput2-12e6) > 1e3 {
		t.Fatalf("post-roam throughput %v, want 12e6 at -78 dBm", tput2)
	}
}
