// Package wirelesscoll implements the wireless-LAN collector the paper
// announces as under development (Section 3.1): it manages a set of
// 802.11 access points, reads their station association tables over SNMP
// (negotiated rate and signal strength per station), monitors roaming
// continuously — "a mobile node may move between basestations much more
// frequently" than wired hosts move — and answers queries with a topology
// in which each station's link capacity is its current radio rate.
package wirelesscoll

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/sim"
	"remos/internal/snmp"
	"remos/internal/topology"
)

// Config configures a wireless collector.
type Config struct {
	Client *snmp.Client
	Sched  sim.Scheduler
	// APs are the access points' management addresses.
	APs []netip.Addr
	// MonitorInterval re-reads the association tables; wireless
	// defaults far shorter than wired monitoring (default 5s).
	MonitorInterval time.Duration
	// OnRoam fires when a station is seen on a different AP.
	OnRoam func(mac collector.MAC, from, to netip.Addr)
	// OnRateChange fires when a station's negotiated rate changes
	// without a roam (signal degradation).
	OnRateChange func(mac collector.MAC, ap netip.Addr, oldRate, newRate float64)
}

// station is one tracked association.
type station struct {
	mac  collector.MAC
	ap   netip.Addr
	rate float64
	rssi int
}

// Collector is a running wireless collector.
type Collector struct {
	cfg Config

	mu       sync.Mutex
	stations map[collector.MAC]station
	apNames  map[netip.Addr]string
	started  bool
	monitor  *sim.Timer
}

// New creates a wireless collector; Start walks the APs.
func New(cfg Config) *Collector {
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 5 * time.Second
	}
	return &Collector{
		cfg:      cfg,
		stations: make(map[collector.MAC]station),
		apNames:  make(map[netip.Addr]string),
	}
}

// Name implements collector.Interface.
func (c *Collector) Name() string { return "wireless" }

// Start reads every AP's association table and begins roam monitoring.
func (c *Collector) Start() error {
	if err := c.sweep(false); err != nil {
		return err
	}
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	if c.cfg.Sched != nil {
		c.monitor = c.cfg.Sched.Every(c.cfg.MonitorInterval, func() {
			c.sweep(true) // errors tolerated; next sweep retries
		})
	}
	return nil
}

// Stop halts monitoring.
func (c *Collector) Stop() {
	if c.monitor != nil {
		c.monitor.Stop()
	}
}

// sweep reads all association tables, updating the database and firing
// roam/rate events when notify is set.
func (c *Collector) sweep(notify bool) error {
	fresh := make(map[collector.MAC]station)
	for _, apAddr := range c.cfg.APs {
		a := apAddr.String()
		if v, err := c.cfg.Client.GetOne(a, mib.SysName); err == nil {
			c.mu.Lock()
			c.apNames[apAddr] = string(v.Bytes)
			c.mu.Unlock()
		}
		rates := map[collector.MAC]float64{}
		err := c.cfg.Client.BulkWalk(a, mib.WlanStaRate, 16, func(o snmp.OID, v snmp.Value) bool {
			if mac, ok := collector.MACFromOID(o); ok {
				rates[mac] = float64(v.Int)
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("wirelesscoll: walking %v: %w", apAddr, err)
		}
		rssis := map[collector.MAC]int{}
		err = c.cfg.Client.BulkWalk(a, mib.WlanStaRSSI, 16, func(o snmp.OID, v snmp.Value) bool {
			if mac, ok := collector.MACFromOID(o); ok {
				rssis[mac] = int(v.Int)
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("wirelesscoll: walking %v: %w", apAddr, err)
		}
		for mac, rate := range rates {
			fresh[mac] = station{mac: mac, ap: apAddr, rate: rate, rssi: rssis[mac]}
		}
	}

	c.mu.Lock()
	old := c.stations
	c.stations = fresh
	c.mu.Unlock()
	if !notify {
		return nil
	}
	for mac, st := range fresh {
		prev, known := old[mac]
		switch {
		case !known:
			// Newly associated; no event defined.
		case prev.ap != st.ap:
			if c.cfg.OnRoam != nil {
				c.cfg.OnRoam(mac, prev.ap, st.ap)
			}
		case prev.rate != st.rate:
			if c.cfg.OnRateChange != nil {
				c.cfg.OnRateChange(mac, st.ap, prev.rate, st.rate)
			}
		}
	}
	return nil
}

// Locate returns the AP a station is associated with.
func (c *Collector) Locate(mac collector.MAC) (netip.Addr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stations[mac]
	return st.ap, ok
}

// Rate returns a station's current negotiated rate in bits per second.
func (c *Collector) Rate(mac collector.MAC) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stations[mac]
	return st.rate, ok
}

// Stations lists all tracked stations in stable order.
func (c *Collector) Stations() []collector.MAC {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]collector.MAC, 0, len(c.stations))
	for mac := range c.stations {
		out = append(out, mac)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// StationID renders a station's graph node ID (same convention as the
// Bridge Collector).
func StationID(mac collector.MAC) string { return "st:" + mac.String() }

// Collect implements collector.Interface: access points and their
// stations, each station link carrying the radio rate as capacity.
// Latency is the airtime delay; utilization of the radio medium is not
// individually measurable, which is precisely why the rate matters.
func (c *Collector) Collect(q collector.Query) (*collector.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return nil, fmt.Errorf("wirelesscoll: not started")
	}
	g := topology.NewGraph()
	for _, apAddr := range c.cfg.APs {
		g.AddNode(topology.Node{ID: apAddr.String(), Kind: topology.SwitchNode, Addr: apAddr.String()})
	}
	for _, st := range c.stations {
		g.AddNode(topology.Node{ID: StationID(st.mac), Kind: topology.HostNode})
		if _, err := g.AddLink(topology.Link{
			From:     StationID(st.mac),
			To:       st.ap.String(),
			Capacity: st.rate,
			Latency:  2 * time.Millisecond,
		}); err != nil {
			return nil, err
		}
	}
	return &collector.Result{Graph: g}, nil
}
