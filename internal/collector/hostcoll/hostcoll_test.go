package hostcoll

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/hostload"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// loadLab wires two hosts with load signals and agents, plus the
// collector sampling them at 1 Hz.
func loadLab(t testing.TB, spec string) (*sim.Sim, *Collector, map[string]*netsim.Device) {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{
		"busy": n.AddHost("busy"),
		"idle": n.AddHost("idle"),
		"sw":   n.AddSwitch("sw"),
	}
	n.Connect(d["busy"], d["sw"], 100e6, time.Millisecond)
	n.Connect(d["idle"], d["sw"], 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	// Hosts run agents here (the host load sensor needs them).
	d["busy"].SNMP.Reachable = true
	d["idle"].SNMP.Reachable = true
	gen := hostload.NewGenerator(hostload.Config{Seed: 11, BaseLoad: 2.0})
	d["busy"].SetLoadSource(gen.Next)
	d["idle"].SetLoadSource(func() float64 { return 0.05 })
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	c := New(Config{
		Client:        snmp.NewClient(&snmp.InProc{Registry: reg}, "public"),
		Sched:         s,
		Hosts:         []netip.Addr{d["busy"].Addr(), d["idle"].Addr()},
		Poll:          time.Second,
		StreamPredict: spec,
		StreamMinFit:  32,
		StreamHorizon: 10,
	})
	t.Cleanup(c.Stop)
	return s, c, d
}

func TestLoadSampling(t *testing.T) {
	s, c, d := loadLab(t, "")
	s.RunFor(30 * time.Second)
	if c.Samples() != 60 { // 2 hosts x 30 samples
		t.Fatalf("samples = %d, want 60", c.Samples())
	}
	idle, ok := c.Load(d["idle"].Addr())
	if !ok || math.Abs(idle-0.05) > 0.011 {
		t.Fatalf("idle load = %v (ok=%v), want ~0.05", idle, ok)
	}
	busy, ok := c.Load(d["busy"].Addr())
	if !ok || busy < 0.2 {
		t.Fatalf("busy load = %v (ok=%v), want substantial", busy, ok)
	}
	// History accumulates per host independently.
	if got := len(c.History().Get(LoadKey(d["busy"].Addr()))); got != 30 {
		t.Fatalf("busy history = %d samples, want 30", got)
	}
}

func TestLoadForecasting(t *testing.T) {
	s, c, d := loadLab(t, "AR(16)")
	s.RunFor(2 * time.Minute)
	fc, ok := c.Forecast(d["busy"].Addr())
	if !ok {
		t.Fatal("no forecast after 2 minutes at 1 Hz")
	}
	if len(fc.Values) != 10 {
		t.Fatalf("forecast horizon %d, want 10", len(fc.Values))
	}
	cur, _ := c.Load(d["busy"].Addr())
	if math.Abs(fc.Values[0]-cur) > 1.5 {
		t.Fatalf("one-step forecast %v far from current load %v", fc.Values[0], cur)
	}
	// Error bars grow with horizon (sane model).
	if fc.ErrVar[9] < fc.ErrVar[0] {
		t.Fatalf("errvar shrank with horizon: %v", fc.ErrVar)
	}
}

func TestCollectWithHistoryAndPredictions(t *testing.T) {
	s, c, d := loadLab(t, "AR(8)")
	s.RunFor(2 * time.Minute)
	res, err := c.Collect(collector.Query{
		Hosts:           []netip.Addr{d["busy"].Addr()},
		WithHistory:     true,
		WithPredictions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Node(d["busy"].Addr().String()) == nil {
		t.Fatal("host node missing")
	}
	if len(res.History[LoadKey(d["busy"].Addr())]) == 0 {
		t.Fatal("load history missing")
	}
	if _, ok := res.Predictions[LoadKey(d["busy"].Addr())]; !ok {
		t.Fatal("load forecast missing")
	}
}

func TestCollectUnmanagedHostRejected(t *testing.T) {
	_, c, _ := loadLab(t, "")
	if _, err := c.Collect(collector.Query{
		Hosts: []netip.Addr{netip.MustParseAddr("192.0.2.1")},
	}); err == nil {
		t.Fatal("unmanaged host accepted")
	}
}

func TestUnreachableHostSkippedNotFatal(t *testing.T) {
	s, c, d := loadLab(t, "")
	_ = d
	s.RunFor(5 * time.Second)
	before := c.Samples()
	// Nothing answers for a host that loses its agent; sampling of the
	// others continues. (Simulate by pointing at a dead address.)
	c.cfg.Hosts = append(c.cfg.Hosts, netip.MustParseAddr("10.99.99.99"))
	s.RunFor(5 * time.Second)
	if c.Samples() <= before {
		t.Fatal("sampling stalled when one host went dark")
	}
}

func TestBadStreamSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad spec")
		}
	}()
	New(Config{StreamPredict: "BOGUS"})
}
