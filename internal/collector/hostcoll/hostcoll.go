// Package hostcoll implements the host load collector: the Remos-side
// integration of the RPS "host load sensor" (Section 3.3). It polls each
// managed host's hrProcessorLoad over SNMP, keeps per-host measurement
// history, and — in the streaming configuration of Section 2.3 — feeds a
// directly attached RPS predictor per host, making load forecasts
// available to every consumer.
package hostcoll

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/mib"
	"remos/internal/rps"
	"remos/internal/sim"
	"remos/internal/snmp"
	"remos/internal/topology"
)

// LoadKeyTo is the To component of the history key carrying a host's CPU
// load series (the From is the host address). Load is not a link
// quantity, so it gets a reserved pseudo-endpoint.
const LoadKeyTo = "cpu"

// LoadKey builds the history key for a host's load series.
func LoadKey(h netip.Addr) collector.HistKey {
	return collector.HistKey{From: h.String(), To: LoadKeyTo}
}

// Config configures a host load collector.
type Config struct {
	// Client issues the SNMP requests.
	Client *snmp.Client
	// Sched drives periodic sampling.
	Sched sim.Scheduler
	// Hosts are the managed hosts' addresses (their agents must serve
	// the Host Resources MIB).
	Hosts []netip.Addr
	// Poll is the sampling period; host load is conventionally sampled
	// at 1 Hz (the paper's "normal 1 Hz rate").
	Poll time.Duration
	// StreamPredict attaches a streaming RPS predictor per host (model
	// spec, e.g. "AR(16)" — the paper's host-load choice). Empty
	// disables prediction.
	StreamPredict string
	// StreamMinFit is the history needed before fitting (default 64).
	StreamMinFit int
	// StreamHorizon is the forecast depth (default 30, matching the
	// paper's "benefits out to at least 30 seconds").
	StreamHorizon int
	// HistoryLen bounds per-host history (default 512).
	HistoryLen int
}

// Collector is a running host load collector.
type Collector struct {
	cfg Config

	mu      sync.Mutex
	hist    *collector.History
	streams map[netip.Addr]*rps.Stream
	timer   *sim.Timer
	samples int
}

// New creates a host load collector and starts its sampler.
func New(cfg Config) *Collector {
	if cfg.Poll <= 0 {
		cfg.Poll = time.Second
	}
	if cfg.StreamPredict != "" {
		if _, err := rps.ParseFitter(cfg.StreamPredict); err != nil {
			panic(fmt.Sprintf("hostcoll: bad StreamPredict spec %q: %v", cfg.StreamPredict, err))
		}
	}
	c := &Collector{
		cfg:     cfg,
		hist:    collector.NewHistory(cfg.HistoryLen),
		streams: make(map[netip.Addr]*rps.Stream),
	}
	if cfg.Sched != nil && len(cfg.Hosts) > 0 {
		c.timer = cfg.Sched.Every(cfg.Poll, c.pollOnce)
	}
	return c
}

// Name implements collector.Interface.
func (c *Collector) Name() string { return "hostload" }

// Stop halts sampling.
func (c *Collector) Stop() {
	if c.timer != nil {
		c.timer.Stop()
	}
}

func (c *Collector) minFit() int {
	if c.cfg.StreamMinFit > 0 {
		return c.cfg.StreamMinFit
	}
	return 64
}

func (c *Collector) horizon() int {
	if c.cfg.StreamHorizon > 0 {
		return c.cfg.StreamHorizon
	}
	return 30
}

// pollOnce samples every host's hrProcessorLoad.
func (c *Collector) pollOnce() {
	now := c.cfg.Sched.Now()
	for _, h := range c.cfg.Hosts {
		v, err := c.cfg.Client.GetOne(h.String(), mib.HrProcessorLoad)
		if err != nil {
			continue // unreachable this round; next round retries
		}
		load := float64(v.Int) / 100
		c.hist.Add(LoadKey(h), collector.Sample{T: now, Bits: load})
		c.mu.Lock()
		c.samples++
		st := c.streams[h]
		c.mu.Unlock()
		if c.cfg.StreamPredict == "" {
			continue
		}
		if st == nil {
			series := c.hist.Get(LoadKey(h))
			if len(series) < c.minFit() {
				continue
			}
			fitter, _ := rps.ParseFitter(c.cfg.StreamPredict)
			model, err := fitter.Fit(collector.Values(series))
			if err != nil {
				continue
			}
			c.mu.Lock()
			if c.streams[h] == nil {
				c.streams[h] = rps.NewStream(model, c.horizon())
			}
			c.mu.Unlock()
			continue
		}
		st.Observe(load)
	}
}

// Samples reports how many load samples have been taken.
func (c *Collector) Samples() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.samples
}

// Load returns a host's most recent load sample.
func (c *Collector) Load(h netip.Addr) (float64, bool) {
	s, ok := c.hist.Latest(LoadKey(h))
	return s.Bits, ok
}

// Forecast returns a host's streaming load forecast, if one is fitted.
func (c *Collector) Forecast(h netip.Addr) (collector.Forecast, bool) {
	c.mu.Lock()
	st := c.streams[h]
	c.mu.Unlock()
	if st == nil {
		return collector.Forecast{}, false
	}
	p, n := st.Last()
	if n == 0 || len(p.Values) == 0 {
		return collector.Forecast{}, false
	}
	return collector.Forecast{
		Values: append([]float64(nil), p.Values...),
		ErrVar: append([]float64(nil), p.ErrVar...),
	}, true
}

// History exposes the load history store.
func (c *Collector) History() *collector.History { return c.hist }

// Collect implements collector.Interface: host nodes only (no links —
// load is a node property), with per-host history and forecasts under
// LoadKey keys.
func (c *Collector) Collect(q collector.Query) (*collector.Result, error) {
	g := topology.NewGraph()
	hosts := q.Hosts
	if len(hosts) == 0 {
		hosts = c.cfg.Hosts
	}
	res := &collector.Result{Graph: g}
	for _, h := range hosts {
		if !c.manages(h) {
			return nil, fmt.Errorf("hostcoll: %v is not a managed host", h)
		}
		g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
		if q.WithHistory {
			if res.History == nil {
				res.History = make(map[collector.HistKey][]collector.Sample)
			}
			res.History[LoadKey(h)] = c.hist.Get(LoadKey(h))
		}
		if q.WithPredictions {
			if fc, ok := c.Forecast(h); ok {
				if res.Predictions == nil {
					res.Predictions = make(map[collector.HistKey]collector.Forecast)
				}
				res.Predictions[LoadKey(h)] = fc
			}
		}
	}
	return res, nil
}

func (c *Collector) manages(h netip.Addr) bool {
	for _, m := range c.cfg.Hosts {
		if m == h {
			return true
		}
	}
	return false
}
