package directory

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The directory wire protocol: a line-oriented service in the spirit of
// SLP, letting collectors at other sites register their responsibilities
// with a deployment's directory and masters elsewhere list them.
//
//	C: REGISTER <name> <ttlSeconds> <endpoint> <benchHost|-> <nPrefixes>
//	C: <prefix> ... (n lines)
//	S: OK | ERR <message>
//
//	C: DEREGISTER <name>
//	S: OK
//
//	C: LIST
//	S: OK <n>
//	S: ADVERT <name> <endpoint> <benchHost|-> <nPrefixes>
//	S: <prefix> ... (n lines, repeated per advert)
//
// The federation plane adds two verbs. REPLICATE pushes one advert
// between peer directories under latest-lease-wins (the reply's flag
// reports whether it was applied or lost to a fresher lease), carrying
// the lease fields REGISTER does not: domain, replica priority,
// snapshot epoch and lease sequence. LISTX is LIST with those fields
// and the lease's remaining lifetime, so a peer can re-lease exactly.
//
//	C: REPLICATE <name> <ttlSeconds> <endpoint> <benchHost|-> <domain|-> <priority> <epoch> <seq> <nPrefixes>
//	C: <prefix> ... (n lines)
//	S: OK <applied:0|1> | ERR <message>
//
//	C: LISTX
//	S: OK <n>
//	S: ADVERTX <name> <endpoint> <benchHost|-> <domain|-> <priority> <epoch> <seq> <ttlSeconds> <nPrefixes>
//	S: <prefix> ... (n lines, repeated per advert)

// wireTTL renders a live lease's lifetime in the whole seconds the wire
// grammar carries, rounding up: truncation would collapse a sub-second
// lease to 0, which the receiving side reads as "use DefaultTTL" — a
// 500ms lease must not arrive as a three-hour one.
func wireTTL(ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	return int((ttl + time.Second - 1) / time.Second)
}

// Server exposes a Service over TCP.
type Server struct {
	Service *Service

	ln net.Listener
	wg sync.WaitGroup
}

// ListenAndServe binds addr and serves in the background, returning the
// bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	//remoslint:allow goctx accept loop ends when Close closes the listener; Close waits on the group
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			//remoslint:allow goctx serve loop ends when the peer disconnects or Close tears the connection down
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					if err := s.serveOne(conn, r); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

// serveOne reads and answers one command. It takes plain reader/writer
// halves (rather than a net.Conn) so the parser is drivable from fuzz
// and unit tests without a socket.
func (s *Server) serveOne(w io.Writer, r *bufio.Reader) error {
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	f := strings.Fields(line)
	if len(f) == 0 {
		fmt.Fprintln(w, "ERR empty command")
		return nil
	}
	switch f[0] {
	case "REGISTER":
		if len(f) != 6 {
			fmt.Fprintln(w, "ERR REGISTER needs name ttl endpoint benchHost nPrefixes")
			return nil
		}
		ttlSec, err1 := strconv.Atoi(f[2])
		nPrefixes, err2 := strconv.Atoi(f[5])
		if err1 != nil || err2 != nil || nPrefixes < 0 || nPrefixes > 1024 {
			fmt.Fprintln(w, "ERR bad numbers")
			return nil
		}
		a := Advert{Name: f[1], Endpoint: f[3]}
		if f[4] != "-" {
			bh, err := netip.ParseAddr(f[4])
			if err != nil {
				fmt.Fprintln(w, "ERR bad bench host")
				return nil
			}
			a.BenchHost = bh
		}
		for i := 0; i < nPrefixes; i++ {
			pl, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			p, err := netip.ParsePrefix(strings.TrimSpace(pl))
			if err != nil {
				fmt.Fprintf(w, "ERR bad prefix %q\n", strings.TrimSpace(pl))
				return nil
			}
			a.Prefixes = append(a.Prefixes, p)
		}
		if err := s.Service.Register(a, time.Duration(ttlSec)*time.Second); err != nil {
			fmt.Fprintf(w, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			return nil
		}
		fmt.Fprintln(w, "OK")
	case "REPLICATE":
		if len(f) != 10 {
			fmt.Fprintln(w, "ERR REPLICATE needs name ttl endpoint benchHost domain priority epoch seq nPrefixes")
			return nil
		}
		ttlSec, err1 := strconv.Atoi(f[2])
		prio, err2 := strconv.Atoi(f[6])
		epoch, err3 := strconv.ParseUint(f[7], 10, 64)
		seq, err4 := strconv.ParseUint(f[8], 10, 64)
		nPrefixes, err5 := strconv.Atoi(f[9])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || nPrefixes < 0 || nPrefixes > 1024 {
			fmt.Fprintln(w, "ERR bad numbers")
			return nil
		}
		a := Advert{Name: f[1], Endpoint: f[3], Priority: prio, Epoch: epoch, Seq: seq}
		if f[4] != "-" {
			bh, err := netip.ParseAddr(f[4])
			if err != nil {
				fmt.Fprintln(w, "ERR bad bench host")
				return nil
			}
			a.BenchHost = bh
		}
		if f[5] != "-" {
			a.Domain = f[5]
		}
		for i := 0; i < nPrefixes; i++ {
			pl, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			p, err := netip.ParsePrefix(strings.TrimSpace(pl))
			if err != nil {
				fmt.Fprintf(w, "ERR bad prefix %q\n", strings.TrimSpace(pl))
				return nil
			}
			a.Prefixes = append(a.Prefixes, p)
		}
		applied := s.Service.ReplicaApply(a, time.Duration(ttlSec)*time.Second)
		flag := 0
		if applied {
			flag = 1
		}
		fmt.Fprintf(w, "OK %d\n", flag)
	case "DEREGISTER":
		if len(f) != 2 {
			fmt.Fprintln(w, "ERR DEREGISTER needs name")
			return nil
		}
		s.Service.Deregister(f[1])
		fmt.Fprintln(w, "OK")
	case "LIST":
		adverts := s.Service.Adverts()
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "OK %d\n", len(adverts))
		for _, a := range adverts {
			bench := "-"
			if a.BenchHost.IsValid() {
				bench = a.BenchHost.String()
			}
			endpoint := a.Endpoint
			if endpoint == "" {
				endpoint = "-"
			}
			fmt.Fprintf(bw, "ADVERT %s %s %s %d\n", a.Name, endpoint, bench, len(a.Prefixes))
			for _, p := range a.Prefixes {
				fmt.Fprintln(bw, p.String())
			}
		}
		return bw.Flush()
	case "LISTX":
		status := s.Service.Status()
		now := s.Service.Now()
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "OK %d\n", len(status))
		for _, st := range status {
			bench, endpoint, domain := "-", st.Endpoint, st.Domain
			if st.BenchHost.IsValid() {
				bench = st.BenchHost.String()
			}
			if endpoint == "" {
				endpoint = "-"
			}
			if domain == "" {
				domain = "-"
			}
			ttl := wireTTL(st.Expires.Sub(now))
			fmt.Fprintf(bw, "ADVERTX %s %s %s %s %d %d %d %d %d\n",
				st.Name, endpoint, bench, domain, st.Priority, st.Epoch, st.Seq, ttl, len(st.Prefixes))
			for _, p := range st.Prefixes {
				fmt.Fprintln(bw, p.String())
			}
		}
		return bw.Flush()
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", f[0])
	}
	return nil
}

// Client registers with a remote directory server.
type Client struct {
	Addr string
	// Timeout bounds each exchange (default 10s).
	Timeout time.Duration
}

func (c *Client) exchange(fn func(conn net.Conn, r *bufio.Reader) error) error {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	return fn(conn, bufio.NewReader(conn))
}

func expectOK(r *bufio.Reader) error {
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if line != "OK" {
		return fmt.Errorf("directory: %s", line)
	}
	return nil
}

// Register advertises a remote collector (endpoint form only — a local
// handle cannot cross the wire).
func (c *Client) Register(a Advert, ttl time.Duration) error {
	if a.Endpoint == "" {
		return fmt.Errorf("directory: remote registration requires an endpoint")
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return c.exchange(func(conn net.Conn, r *bufio.Reader) error {
		bench := "-"
		if a.BenchHost.IsValid() {
			bench = a.BenchHost.String()
		}
		bw := bufio.NewWriter(conn)
		fmt.Fprintf(bw, "REGISTER %s %d %s %s %d\n",
			a.Name, wireTTL(ttl), a.Endpoint, bench, len(a.Prefixes))
		for _, p := range a.Prefixes {
			fmt.Fprintln(bw, p.String())
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return expectOK(r)
	})
}

// Deregister removes a remote registration.
func (c *Client) Deregister(name string) error {
	return c.exchange(func(conn net.Conn, r *bufio.Reader) error {
		fmt.Fprintf(conn, "DEREGISTER %s\n", name)
		return expectOK(r)
	})
}

// List fetches the remote directory's current advertisements.
func (c *Client) List() ([]Advert, error) {
	var out []Advert
	err := c.exchange(func(conn net.Conn, r *bufio.Reader) error {
		fmt.Fprintln(conn, "LIST")
		head, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		var n int
		if _, err := fmt.Sscanf(head, "OK %d", &n); err != nil {
			return fmt.Errorf("directory: %s", strings.TrimSpace(head))
		}
		for i := 0; i < n; i++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			f := strings.Fields(line)
			if len(f) != 5 || f[0] != "ADVERT" {
				return fmt.Errorf("directory: bad advert line %q", strings.TrimSpace(line))
			}
			a := Advert{Name: f[1]}
			if f[2] != "-" {
				a.Endpoint = f[2]
			}
			if f[3] != "-" {
				bh, err := netip.ParseAddr(f[3])
				if err != nil {
					return err
				}
				a.BenchHost = bh
			}
			np, err := strconv.Atoi(f[4])
			if err != nil || np < 0 || np > 1024 {
				return fmt.Errorf("directory: bad prefix count %q", f[4])
			}
			for j := 0; j < np; j++ {
				pl, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				p, err := netip.ParsePrefix(strings.TrimSpace(pl))
				if err != nil {
					return err
				}
				a.Prefixes = append(a.Prefixes, p)
			}
			out = append(out, a)
		}
		return nil
	})
	return out, err
}
