package directory

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"remos/internal/sim"
)

// FuzzServeCommands drives the directory server's line parser with
// arbitrary byte streams: it must answer or reject every input without
// panicking, hanging, or corrupting the service, exactly as it would
// facing a confused or hostile peer on the registration port.
func FuzzServeCommands(f *testing.F) {
	seeds := []string{
		"REGISTER cmu 60 tcp://1.2.3.4:3567 10.0.0.9 2\n10.0.0.0/24\n10.1.0.0/16\n",
		"REGISTER eth 3600 http://collector:80 - 0\n",
		"REGISTER bad ttl tcp://x - 0\n",
		"REGISTER toomany 60 tcp://x - 999999\n",
		"REGISTER p 60 tcp://x - 1\nnot-a-prefix\n",
		"DEREGISTER cmu\n",
		"DEREGISTER\n",
		"LIST\n",
		"NONSENSE with args\n",
		"\n",
		"REGISTER a 60 tcp://x - 1\n", // truncated: prefix line missing
		"REGISTER \x00 -60 tcp://x 999.999.999.999 0\n",
		strings.Repeat("LIST\n", 10),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		svc := New(sim.NewSim())
		// A resident advert ensures LIST renders non-trivial output.
		svc.Register(Advert{
			Name:      "resident",
			Endpoint:  "tcp://127.0.0.1:1",
			BenchHost: netip.MustParseAddr("10.0.0.1"),
			Prefixes:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		}, time.Hour)
		srv := &Server{Service: svc}
		r := bufio.NewReader(bytes.NewReader(data))
		// The reader is finite, so the loop terminates at io.EOF; bound it
		// anyway against pathological no-progress parses.
		for i := 0; i < 1024; i++ {
			if err := srv.serveOne(io.Discard, r); err != nil {
				break
			}
		}
		// The service survives whatever was parsed.
		if _, ok := svc.Lookup(netip.MustParseAddr("10.0.0.7")); !ok {
			// The fuzz input may legitimately DEREGISTER "resident"; only
			// lookups after an observed deregister may fail.
			if !bytes.Contains(data, []byte("DEREGISTER resident")) {
				t.Fatal("resident advert lost without a deregister")
			}
		}
	})
}

// TestRegisterRoundTripThroughServeOne checks the refactored writer-based
// serveOne against the real client encoding, no socket involved.
func TestRegisterRoundTripThroughServeOne(t *testing.T) {
	svc := New(sim.NewSim())
	srv := &Server{Service: svc}
	in := "REGISTER cmu 60 tcp://1.2.3.4:3567 10.0.0.9 1\n10.0.0.0/24\nLIST\n"
	r := bufio.NewReader(strings.NewReader(in))
	var out bytes.Buffer
	for {
		if err := srv.serveOne(&out, r); err != nil {
			break
		}
	}
	got := out.String()
	if !strings.HasPrefix(got, "OK\nOK 1\nADVERT cmu tcp://1.2.3.4:3567 10.0.0.9 1\n10.0.0.0/24\n") {
		t.Fatalf("serveOne transcript:\n%s", got)
	}
}

// TestTTLExpiryRacesReRegistration pits expiry (Adverts purging stale
// entries) against concurrent re-registration of the same name: the
// entry must always be either the freshly registered advert or absent,
// never a stale resurrection, and the race must be clean under -race.
func TestTTLExpiryRacesReRegistration(t *testing.T) {
	s := sim.NewSim()
	svc := New(s)
	const name = "flapper"
	advert := func(gen int) Advert {
		return Advert{
			Name:     name,
			Endpoint: fmt.Sprintf("tcp://127.0.0.1:%d", 1000+gen),
			Prefixes: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		}
	}
	svc.Register(advert(0), time.Millisecond)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Re-registrars: refresh the same name with a short TTL.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for gen := 1; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := svc.Register(advert(gen), time.Millisecond); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(i)
	}
	// Expirers: march the clock so entries constantly age out, and read
	// the directory in every state.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.RunFor(10 * time.Millisecond) // advances Now; Adverts purges
				for _, a := range svc.Adverts() {
					if a.Name != name {
						t.Errorf("foreign advert %q", a.Name)
						return
					}
				}
				svc.Lookup(netip.MustParseAddr("10.0.0.1"))
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced: one final registration must win over any expiry.
	svc.Register(advert(9999), time.Hour)
	got, ok := svc.Lookup(netip.MustParseAddr("10.0.0.1"))
	if !ok || got.Endpoint != "tcp://127.0.0.1:10999" {
		t.Fatalf("final registration lost: ok=%v advert=%+v", ok, got)
	}
}
