package directory

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"remos/internal/sim"
)

func fedAdvert(seq uint64, port int) Advert {
	return Advert{
		Name:     "master-east",
		Endpoint: fmt.Sprintf("tcp://127.0.0.1:%d", port),
		Domain:   "east",
		Priority: 1,
		Epoch:    40 + seq,
		Seq:      seq,
		Prefixes: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
	}
}

// TestReplicaApplyLatestLeaseWins pins the conflict rule for replicated
// re-registration: a strictly newer lease sequence replaces the entry,
// an equal one only extends the expiry, and an older one is rejected —
// so a stale replica circulating through the mesh can never overwrite a
// master's fresh re-registration.
func TestReplicaApplyLatestLeaseWins(t *testing.T) {
	s := sim.NewSim()
	svc := New(s)

	// A local registration is a fresh lease: seq starts at 1.
	if err := svc.Register(fedAdvert(0, 1000), time.Hour); err != nil {
		t.Fatal(err)
	}
	cur, _ := svc.Lookup(netip.MustParseAddr("10.1.0.5"))
	if cur.Seq != 1 {
		t.Fatalf("local register seq = %d, want 1", cur.Seq)
	}

	// An older replicated copy loses.
	if svc.ReplicaApply(fedAdvert(0, 2000), time.Hour) {
		t.Fatal("stale replica (seq 0) applied over fresh lease (seq 1)")
	}
	cur, _ = svc.Lookup(netip.MustParseAddr("10.1.0.5"))
	if cur.Endpoint != "tcp://127.0.0.1:1000" {
		t.Fatalf("stale replica overwrote endpoint: %q", cur.Endpoint)
	}

	// An equal one is anti-entropy of the same lease: applied, expiry
	// extended, content untouched.
	before := svc.Status()[0].Expires
	if !svc.ReplicaApply(fedAdvert(1, 3000), 2*time.Hour) {
		t.Fatal("equal-seq replica rejected")
	}
	st := svc.Status()[0]
	if !st.Expires.After(before) {
		t.Fatal("equal-seq replica did not extend expiry")
	}
	if st.Endpoint != "tcp://127.0.0.1:1000" {
		t.Fatalf("equal-seq replica replaced content: %q", st.Endpoint)
	}

	// A newer one replaces — failover: the secondary re-leased the name.
	if !svc.ReplicaApply(fedAdvert(2, 4000), time.Hour) {
		t.Fatal("newer replica rejected")
	}
	cur, _ = svc.Lookup(netip.MustParseAddr("10.1.0.5"))
	if cur.Endpoint != "tcp://127.0.0.1:4000" || cur.Seq != 2 {
		t.Fatalf("newer replica not applied: %+v", cur)
	}

	// A local re-registration supersedes any replicated copy: its seq
	// advances past whatever the replica carried.
	if err := svc.Register(fedAdvert(0, 5000), time.Hour); err != nil {
		t.Fatal(err)
	}
	cur, _ = svc.Lookup(netip.MustParseAddr("10.1.0.5"))
	if cur.Seq != 3 || cur.Endpoint != "tcp://127.0.0.1:5000" {
		t.Fatalf("re-registration did not supersede replica: %+v", cur)
	}
	if svc.ReplicaApply(fedAdvert(2, 4000), time.Hour) {
		t.Fatal("replayed old replica applied over re-registration")
	}

	// Once the lease lapses, any replica may claim the name again.
	s.RunFor(2 * time.Hour)
	if !svc.ReplicaApply(fedAdvert(1, 6000), time.Hour) {
		t.Fatal("replica rejected against an expired lease")
	}
}

// TestReplicateConflictOverWire runs the same latest-lease-wins conflict
// through the REPLICATE verb: the applied flag in the reply must report
// exactly what the service decided.
func TestReplicateConflictOverWire(t *testing.T) {
	svc := New(sim.NewSim())
	srv := &Server{Service: svc}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: addr, Timeout: 5 * time.Second}

	applied, err := c.Replicate(fedAdvert(3, 1000), time.Hour)
	if err != nil || !applied {
		t.Fatalf("first replicate: applied=%v err=%v", applied, err)
	}
	applied, err = c.Replicate(fedAdvert(2, 2000), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("wire replicate applied a stale lease")
	}
	applied, err = c.Replicate(fedAdvert(4, 3000), time.Hour)
	if err != nil || !applied {
		t.Fatalf("newer replicate: applied=%v err=%v", applied, err)
	}
	got, ok := svc.Lookup(netip.MustParseAddr("10.1.0.9"))
	if !ok || got.Seq != 4 || got.Domain != "east" || got.Priority != 1 || got.Epoch != 44 {
		t.Fatalf("lease fields lost on the wire: %+v", got)
	}
}

// TestListXRoundTrip checks that LISTX carries the federation lease
// fields and a sane remaining TTL.
func TestListXRoundTrip(t *testing.T) {
	svc := New(sim.NewSim())
	srv := &Server{Service: svc}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := svc.Register(fedAdvert(0, 1000), time.Hour); err != nil {
		t.Fatal(err)
	}

	c := &Client{Addr: addr, Timeout: 5 * time.Second}
	ras, err := c.ListX()
	if err != nil {
		t.Fatal(err)
	}
	if len(ras) != 1 {
		t.Fatalf("got %d adverts, want 1", len(ras))
	}
	ra := ras[0]
	if ra.Name != "master-east" || ra.Domain != "east" || ra.Priority != 1 ||
		ra.Epoch != 40 || ra.Seq != 1 || len(ra.Prefixes) != 1 {
		t.Fatalf("advert fields: %+v", ra)
	}
	// The sim clock does not advance, so the full hour remains.
	if ra.TTL != time.Hour {
		t.Fatalf("remaining TTL = %v, want %v", ra.TTL, time.Hour)
	}
}

// TestReplicatorConvergesMesh wires two directories with a Replicator
// pushing one way and checks the peer converges on the origin's current
// lease — including after a re-registration bumps the sequence.
func TestReplicatorConvergesMesh(t *testing.T) {
	s := sim.NewSim()
	origin := New(s)
	peer := New(sim.NewSim())
	srv := &Server{Service: peer}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := origin.Register(fedAdvert(0, 1000), time.Hour); err != nil {
		t.Fatal(err)
	}
	r := StartReplicator(ReplicatorConfig{
		Service:  origin,
		Peers:    []string{addr},
		Sched:    s,
		Interval: time.Second,
	})
	defer r.Close()

	s.RunFor(time.Second) // first anti-entropy tick
	got, ok := peer.Lookup(netip.MustParseAddr("10.1.0.2"))
	if !ok || got.Seq != 1 || got.Endpoint != "tcp://127.0.0.1:1000" {
		t.Fatalf("peer after first push: ok=%v %+v", ok, got)
	}

	// The origin re-leases (new endpoint, fresh epoch); the next round
	// must supersede the peer's copy.
	if err := origin.Register(fedAdvert(0, 2000), time.Hour); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	got, ok = peer.Lookup(netip.MustParseAddr("10.1.0.2"))
	if !ok || got.Seq != 2 || got.Endpoint != "tcp://127.0.0.1:2000" {
		t.Fatalf("peer after re-lease: ok=%v %+v", ok, got)
	}
}

// TestExpiryDuringLookupRace races LookupAll and Status (which purge
// expired entries) against replication applying fresh leases and the
// clock marching entries to expiry. Run under -race; the invariant is
// that every observed advert is internally consistent — a lookup never
// yields a half-applied or resurrected lease.
func TestExpiryDuringLookupRace(t *testing.T) {
	s := sim.NewSim()
	svc := New(s)
	addr := netip.MustParseAddr("10.1.0.3")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Appliers: replicate ever-newer leases with tiny TTLs. Seq encodes
	// the port so readers can cross-check consistency.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				a := fedAdvert(seq, int(seq%40000))
				svc.ReplicaApply(a, time.Millisecond)
			}
		}(i)
	}
	// Expirer: march the sim clock so leases lapse mid-lookup.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.RunFor(5 * time.Millisecond)
		}
	}()
	// Readers: every advert seen must have its seq/port correlation
	// intact, whichever side of expiry the lookup landed on.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, a := range svc.LookupAll(addr) {
					want := fmt.Sprintf("tcp://127.0.0.1:%d", a.Seq%40000)
					if a.Endpoint != want {
						t.Errorf("torn advert: seq %d endpoint %q", a.Seq, a.Endpoint)
						return
					}
				}
				for _, st := range svc.Status() {
					if st.Expires.IsZero() {
						t.Error("status entry without expiry")
						return
					}
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// FuzzReplicationMessages drives the REPLICATE and LISTX verbs with
// arbitrary byte streams, mirroring FuzzServeCommands for the
// federation verbs: the parser must answer or reject every input
// without panicking, and latest-lease-wins must hold — the resident
// seq-5 lease can only ever be replaced by a strictly newer sequence.
func FuzzReplicationMessages(f *testing.F) {
	seeds := []string{
		"REPLICATE m 60 tcp://1.2.3.4:3567 10.0.0.9 east 1 42 7 2\n10.0.0.0/24\n10.1.0.0/16\n",
		"REPLICATE m 60 tcp://1.2.3.4:3567 - - 0 0 0 0\n",
		"REPLICATE resident 60 tcp://9.9.9.9:9 - east 0 1 1 1\n10.0.0.0/8\n",
		"REPLICATE resident 60 tcp://9.9.9.9:9 - east 0 99 99 1\n10.0.0.0/8\n",
		"REPLICATE m bad tcp://x - - 0 0 0 0\n",
		"REPLICATE m 60 tcp://x - - a b c 0\n",
		"REPLICATE m 60 tcp://x - - 0 0 0 99999\n",
		"REPLICATE m 60 tcp://x 999.999.999.999 - 0 0 0 0\n",
		"REPLICATE m 60 tcp://x - - 0 18446744073709551615 18446744073709551615 1\nnot-a-prefix\n",
		"REPLICATE m 60 tcp://x - - 0 0 1 1\n", // truncated: prefix missing
		"LISTX\n",
		"LISTX extra args\n",
		strings.Repeat("LISTX\n", 8),
		"REPLICATE\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		svc := New(sim.NewSim())
		resident := Advert{
			Name:     "resident",
			Endpoint: "tcp://127.0.0.1:1",
			Domain:   "home",
			Seq:      5,
			Prefixes: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		}
		if !svc.ReplicaApply(resident, time.Hour) {
			t.Fatal("seeding resident advert failed")
		}
		srv := &Server{Service: svc}
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			if err := srv.serveOne(io.Discard, r); err != nil {
				break
			}
		}
		// Latest-lease-wins: while the resident entry exists, its seq can
		// only have grown (a newer replicated lease may replace it, a
		// stale one never rolls it back); only a DEREGISTER removes it.
		found := false
		for _, st := range svc.Status() {
			if st.Name != "resident" {
				continue
			}
			found = true
			if st.Seq < 5 {
				t.Fatalf("stale lease resurrected: %+v", st.Advert)
			}
		}
		if !found && !bytes.Contains(data, []byte("DEREGISTER resident")) {
			t.Fatal("resident lease lost without a deregister")
		}
	})
}

// TestReplicateSubSecondTTL pins the wire encoding of short leases: the
// grammar carries whole seconds, and a 500ms lease must round UP to 1s,
// not truncate to 0 — the receiver reads 0 as "use DefaultTTL", which
// would resurrect a sub-second lease as a three-hour one and keep a
// crashed master's advert alive long past failover.
func TestReplicateSubSecondTTL(t *testing.T) {
	svc := New(sim.NewSim())
	srv := &Server{Service: svc}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: addr, Timeout: 5 * time.Second}

	if applied, err := c.Replicate(fedAdvert(1, 1000), 500*time.Millisecond); err != nil || !applied {
		t.Fatalf("replicate: applied=%v err=%v", applied, err)
	}
	st := svc.Status()
	if len(st) != 1 {
		t.Fatalf("got %d adverts, want 1", len(st))
	}
	// The receiving service's sim clock is frozen at zero, so the lease
	// expiry IS the applied TTL.
	if ttl := st[0].Expires.Sub(svc.Now()); ttl != time.Second {
		t.Fatalf("500ms lease arrived as %v, want 1s (rounded up, not DefaultTTL)", ttl)
	}
}
