package directory

import (
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/master"
	"remos/internal/proto"
	"remos/internal/sim"
	"remos/internal/topology"
)

// fakeColl answers with a single-node graph and records queries.
type fakeColl struct {
	name string
	hits int
}

func (f *fakeColl) Name() string { return f.name }
func (f *fakeColl) Collect(q collector.Query) (*collector.Result, error) {
	f.hits++
	g := topology.NewGraph()
	for _, h := range q.Hosts {
		g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
	}
	return &collector.Result{Graph: g}, nil
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func adr(s string) netip.Addr   { return netip.MustParseAddr(s) }

func TestRegisterLookupExpire(t *testing.T) {
	s := sim.NewSim()
	d := New(s)
	fc := &fakeColl{name: "siteA"}
	if err := d.Register(Advert{
		Name: "siteA", Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}, Collector: fc,
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	a, ok := d.Lookup(adr("10.1.2.3"))
	if !ok || a.Name != "siteA" {
		t.Fatalf("Lookup = %+v ok=%v", a, ok)
	}
	if _, ok := d.Lookup(adr("10.2.0.1")); ok {
		t.Fatal("out-of-scope address resolved")
	}
	// Advance past the TTL: the advert ages out, as SLP registrations do.
	s.RunFor(2 * time.Hour)
	if _, ok := d.Lookup(adr("10.1.2.3")); ok {
		t.Fatal("expired advert still resolves")
	}
	if len(d.Adverts()) != 0 {
		t.Fatal("expired advert still listed")
	}
}

func TestReregisterRefreshesTTL(t *testing.T) {
	s := sim.NewSim()
	d := New(s)
	fc := &fakeColl{name: "siteA"}
	ad := Advert{Name: "siteA", Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}, Collector: fc}
	d.Register(ad, time.Hour)
	s.RunFor(50 * time.Minute)
	d.Register(ad, time.Hour) // refresh
	s.RunFor(50 * time.Minute)
	if _, ok := d.Lookup(adr("10.1.0.1")); !ok {
		t.Fatal("refreshed advert expired")
	}
}

func TestRegisterValidation(t *testing.T) {
	d := New(sim.NewSim())
	if err := d.Register(Advert{Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, Collector: &fakeColl{}}, 0); err == nil {
		t.Fatal("nameless advert accepted")
	}
	if err := d.Register(Advert{Name: "x", Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}}, 0); err == nil {
		t.Fatal("advert with no collector and no endpoint accepted")
	}
}

func TestLongestPrefixLookup(t *testing.T) {
	d := New(sim.NewSim())
	broad := &fakeColl{name: "broad"}
	narrow := &fakeColl{name: "narrow"}
	d.Register(Advert{Name: "broad", Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, Collector: broad}, 0)
	d.Register(Advert{Name: "narrow", Prefixes: []netip.Prefix{pfx("10.1.2.0/24")}, Collector: narrow}, 0)
	a, ok := d.Lookup(adr("10.1.2.9"))
	if !ok || a.Name != "narrow" {
		t.Fatalf("longest prefix did not win: %+v", a)
	}
}

func TestResolveEndpoints(t *testing.T) {
	if _, err := Resolve(Advert{Endpoint: "tcp://127.0.0.1:9999"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(Advert{Endpoint: "http://127.0.0.1:9999"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(Advert{Endpoint: "gopher://x"}); err == nil {
		t.Fatal("unknown scheme resolved")
	}
}

func TestMasterUsesDirectoryDynamically(t *testing.T) {
	s := sim.NewSim()
	d := New(s)
	siteA := &fakeColl{name: "siteA"}
	d.Register(Advert{Name: "a", Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}, Collector: siteA}, time.Hour)

	m := master.New(master.Config{Name: "m", Directory: d})
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{adr("10.1.0.5")}}); err != nil {
		t.Fatal(err)
	}
	if siteA.hits != 1 {
		t.Fatalf("siteA hits = %d", siteA.hits)
	}
	// A site registered after the master was built is picked up on the
	// next query — no reconfiguration.
	siteB := &fakeColl{name: "siteB"}
	d.Register(Advert{Name: "b", Prefixes: []netip.Prefix{pfx("10.2.0.0/16")}, Collector: siteB}, time.Hour)
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{adr("10.2.0.5")}}); err != nil {
		t.Fatal(err)
	}
	if siteB.hits != 1 {
		t.Fatalf("siteB hits = %d", siteB.hits)
	}
	// And expiry makes its hosts unroutable again.
	s.RunFor(2 * time.Hour)
	if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{adr("10.1.0.5")}}); err == nil {
		t.Fatal("expired site still routable through master")
	}
}

func TestDirectoryOverRemoteEndpoint(t *testing.T) {
	// A collector served over the ASCII protocol, advertised by
	// endpoint only: the directory resolves it to a protocol client and
	// caches the client across queries.
	s := sim.NewSim()
	d := New(s)
	fc := &fakeColl{name: "remote"}
	srv := &proto.TCPServer{Collector: fc}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d.Register(Advert{
		Name: "remote", Prefixes: []netip.Prefix{pfx("10.9.0.0/16")},
		Endpoint: "tcp://" + addr,
	}, time.Hour)

	m := master.New(master.Config{Name: "m", Directory: d})
	for i := 0; i < 3; i++ {
		if _, err := m.Collect(collector.Query{Hosts: []netip.Addr{adr("10.9.1.1")}}); err != nil {
			t.Fatal(err)
		}
	}
	if fc.hits != 3 {
		t.Fatalf("remote collector hits = %d, want 3", fc.hits)
	}
}
