// Package directory implements the service-location directory the Master
// Collector uses to find the collectors responsible for each network.
// Section 3.1.4 notes the Master's database "is very similar to the SLP
// directory, and SLP may be used by the Master Collector in the near
// future" — this is that directory: collectors register advertisements
// with a lifetime (as SLP services do), masters look responsibilities up
// per query, and stale registrations age out.
package directory

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/master"
	"remos/internal/proto"
	"remos/internal/sim"
)

// Advert is one collector's registration.
type Advert struct {
	// Name identifies the registration (re-registering replaces it).
	Name string
	// Prefixes are the networks the collector is responsible for.
	Prefixes []netip.Prefix
	// Collector is the local handle, when the collector runs in this
	// process. Remote collectors leave it nil and set Endpoint.
	Collector collector.Interface
	// Endpoint locates a remote collector: "tcp://host:port" (ASCII
	// protocol) or "http://host:port" (XML protocol).
	Endpoint string
	// BenchHost is the site's benchmark endpoint, used as the join
	// point for inter-site queries.
	BenchHost netip.Addr

	// Domain names the administrative domain a federated master serves;
	// empty for non-federated registrations.
	Domain string
	// Priority orders replica masters for the same domain: lower is
	// preferred, so failover walks surviving adverts in priority order.
	Priority int
	// Epoch is the registrant's current snapshot generation, refreshed
	// on every heartbeat re-registration. The federation plane compares
	// it against cached remote answers for domain-scoped invalidation.
	Epoch uint64
	// Seq is the lease sequence number. Local registrations bump it
	// monotonically; replicated adverts apply only when at least as new,
	// so a stale replica can never overwrite a fresher lease
	// (latest-lease-wins).
	Seq uint64
}

type entry struct {
	advert  Advert
	expires time.Time
	// renewed is when the current lease was granted (registration or a
	// replicated newer lease), for lease-age diagnostics.
	renewed time.Time
}

// Service is a directory instance.
type Service struct {
	sched sim.Scheduler

	mu       sync.Mutex
	entries  map[string]entry
	resolved map[string]collector.Interface
}

// New creates a directory on the given clock.
func New(sched sim.Scheduler) *Service {
	return &Service{sched: sched, entries: make(map[string]entry)}
}

// DefaultTTL is the advertisement lifetime when Register gets ttl <= 0,
// mirroring SLP's default registration lifetime.
const DefaultTTL = 3 * time.Hour

// Register adds or refreshes an advertisement with the given lifetime.
// The stored lease sequence advances monotonically: a re-registration is
// a fresh lease, so it supersedes both the previous local lease and any
// replicated copy of it still circulating between peers.
func (s *Service) Register(a Advert, ttl time.Duration) error {
	if a.Name == "" {
		return fmt.Errorf("directory: advertisement needs a name")
	}
	if a.Collector == nil && a.Endpoint == "" {
		return fmt.Errorf("directory: advertisement %q has neither a local collector nor an endpoint", a.Name)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.entries[a.Name]; ok && a.Seq <= prev.advert.Seq {
		a.Seq = prev.advert.Seq + 1
	} else if a.Seq == 0 {
		a.Seq = 1
	}
	now := s.sched.Now()
	s.entries[a.Name] = entry{advert: a, expires: now.Add(ttl), renewed: now}
	return nil
}

// ReplicaApply folds a peer-replicated advertisement in under
// latest-lease-wins: a strictly newer sequence replaces the entry, an
// equal sequence can only extend the expiry (anti-entropy re-pushes the
// same lease), and an older sequence is rejected. It reports whether
// the advert was applied.
func (s *Service) ReplicaApply(a Advert, ttl time.Duration) bool {
	if a.Name == "" || (a.Collector == nil && a.Endpoint == "") {
		return false
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.sched.Now()
	expires := now.Add(ttl)
	prev, ok := s.entries[a.Name]
	if ok && !prev.expires.Before(now) {
		if a.Seq < prev.advert.Seq {
			return false
		}
		if a.Seq == prev.advert.Seq {
			if expires.After(prev.expires) {
				prev.expires = expires
				s.entries[a.Name] = prev
			}
			return true
		}
	}
	s.entries[a.Name] = entry{advert: a, expires: expires, renewed: now}
	return true
}

// Deregister removes an advertisement.
func (s *Service) Deregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Adverts returns the unexpired advertisements, sorted by name. Expired
// entries are purged as a side effect.
func (s *Service) Adverts() []Advert {
	now := s.sched.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Advert
	for name, e := range s.entries {
		if e.expires.Before(now) {
			delete(s.entries, name)
			continue
		}
		out = append(out, e.advert)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the advertisement responsible for the address by
// longest-prefix match.
func (s *Service) Lookup(h netip.Addr) (Advert, bool) {
	all := s.LookupAll(h)
	if len(all) == 0 {
		return Advert{}, false
	}
	return all[0], true
}

// LookupAll returns every unexpired advertisement with a prefix
// containing the address, best first: longest matching prefix, then
// lowest Priority, then name. The federation router walks this list for
// failover — when the preferred master's lease has lapsed (its advert
// is gone), the next surviving replica answers.
func (s *Service) LookupAll(h netip.Addr) []Advert {
	type match struct {
		a    Advert
		bits int
	}
	var ms []match
	for _, a := range s.Adverts() {
		best := -1
		for _, p := range a.Prefixes {
			if p.Contains(h) && p.Bits() > best {
				best = p.Bits()
			}
		}
		if best >= 0 {
			ms = append(ms, match{a: a, bits: best})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].bits != ms[j].bits {
			return ms[i].bits > ms[j].bits
		}
		if ms[i].a.Priority != ms[j].a.Priority {
			return ms[i].a.Priority < ms[j].a.Priority
		}
		return ms[i].a.Name < ms[j].a.Name
	})
	out := make([]Advert, len(ms))
	for i, m := range ms {
		out[i] = m.a
	}
	return out
}

// AdvertStatus is one advertisement with its lease expiry, for
// diagnostics (remosctl stats federation renders lease ages from it).
type AdvertStatus struct {
	Advert
	Expires time.Time
	// Renewed is when the current lease was granted.
	Renewed time.Time
}

// Status returns the unexpired advertisements with their lease
// expiries, sorted by name.
func (s *Service) Status() []AdvertStatus {
	now := s.sched.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []AdvertStatus
	for name, e := range s.entries {
		if e.expires.Before(now) {
			delete(s.entries, name)
			continue
		}
		out = append(out, AdvertStatus{Advert: e.advert, Expires: e.expires, Renewed: e.renewed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Now exposes the directory's clock, so callers rendering Status can
// compute lease ages against the same time base.
func (s *Service) Now() time.Time { return s.sched.Now() }

// Resolve turns an advertisement into a usable collector: the local
// handle when present, otherwise a protocol client for the endpoint.
func Resolve(a Advert) (collector.Interface, error) {
	if a.Collector != nil {
		return a.Collector, nil
	}
	switch {
	case len(a.Endpoint) > 6 && a.Endpoint[:6] == "tcp://":
		return &proto.TCPClient{Addr: a.Endpoint[6:]}, nil
	case len(a.Endpoint) > 7 && a.Endpoint[:7] == "http://":
		return &proto.HTTPClient{BaseURL: a.Endpoint}, nil
	}
	return nil, fmt.Errorf("directory: cannot resolve endpoint %q", a.Endpoint)
}

// Entries implements master.Directory: the current advertisements as
// master entries, with remote endpoints resolved to protocol clients
// (cached so connections persist across queries).
func (s *Service) Entries() ([]master.Entry, error) {
	adverts := s.Adverts()
	out := make([]master.Entry, 0, len(adverts))
	for _, a := range adverts {
		c, err := s.resolveCached(a)
		if err != nil {
			return nil, fmt.Errorf("directory: advert %q: %w", a.Name, err)
		}
		out = append(out, master.Entry{
			Name:      a.Name,
			Prefixes:  a.Prefixes,
			Collector: c,
			BenchHost: a.BenchHost,
		})
	}
	return out, nil
}

func (s *Service) resolveCached(a Advert) (collector.Interface, error) {
	if a.Collector != nil {
		return a.Collector, nil
	}
	key := a.Name + "|" + a.Endpoint
	s.mu.Lock()
	if s.resolved == nil {
		s.resolved = make(map[string]collector.Interface)
	}
	if c, ok := s.resolved[key]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	c, err := Resolve(a)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.resolved[key] = c
	s.mu.Unlock()
	return c, nil
}
