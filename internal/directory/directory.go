// Package directory implements the service-location directory the Master
// Collector uses to find the collectors responsible for each network.
// Section 3.1.4 notes the Master's database "is very similar to the SLP
// directory, and SLP may be used by the Master Collector in the near
// future" — this is that directory: collectors register advertisements
// with a lifetime (as SLP services do), masters look responsibilities up
// per query, and stale registrations age out.
package directory

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/master"
	"remos/internal/proto"
	"remos/internal/sim"
)

// Advert is one collector's registration.
type Advert struct {
	// Name identifies the registration (re-registering replaces it).
	Name string
	// Prefixes are the networks the collector is responsible for.
	Prefixes []netip.Prefix
	// Collector is the local handle, when the collector runs in this
	// process. Remote collectors leave it nil and set Endpoint.
	Collector collector.Interface
	// Endpoint locates a remote collector: "tcp://host:port" (ASCII
	// protocol) or "http://host:port" (XML protocol).
	Endpoint string
	// BenchHost is the site's benchmark endpoint, used as the join
	// point for inter-site queries.
	BenchHost netip.Addr
}

type entry struct {
	advert  Advert
	expires time.Time
}

// Service is a directory instance.
type Service struct {
	sched sim.Scheduler

	mu       sync.Mutex
	entries  map[string]entry
	resolved map[string]collector.Interface
}

// New creates a directory on the given clock.
func New(sched sim.Scheduler) *Service {
	return &Service{sched: sched, entries: make(map[string]entry)}
}

// DefaultTTL is the advertisement lifetime when Register gets ttl <= 0,
// mirroring SLP's default registration lifetime.
const DefaultTTL = 3 * time.Hour

// Register adds or refreshes an advertisement with the given lifetime.
func (s *Service) Register(a Advert, ttl time.Duration) error {
	if a.Name == "" {
		return fmt.Errorf("directory: advertisement needs a name")
	}
	if a.Collector == nil && a.Endpoint == "" {
		return fmt.Errorf("directory: advertisement %q has neither a local collector nor an endpoint", a.Name)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[a.Name] = entry{advert: a, expires: s.sched.Now().Add(ttl)}
	return nil
}

// Deregister removes an advertisement.
func (s *Service) Deregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Adverts returns the unexpired advertisements, sorted by name. Expired
// entries are purged as a side effect.
func (s *Service) Adverts() []Advert {
	now := s.sched.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Advert
	for name, e := range s.entries {
		if e.expires.Before(now) {
			delete(s.entries, name)
			continue
		}
		out = append(out, e.advert)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the advertisement responsible for the address by
// longest-prefix match.
func (s *Service) Lookup(h netip.Addr) (Advert, bool) {
	best := -1
	var found Advert
	for _, a := range s.Adverts() {
		for _, p := range a.Prefixes {
			if p.Contains(h) && p.Bits() > best {
				best = p.Bits()
				found = a
			}
		}
	}
	return found, best >= 0
}

// Resolve turns an advertisement into a usable collector: the local
// handle when present, otherwise a protocol client for the endpoint.
func Resolve(a Advert) (collector.Interface, error) {
	if a.Collector != nil {
		return a.Collector, nil
	}
	switch {
	case len(a.Endpoint) > 6 && a.Endpoint[:6] == "tcp://":
		return &proto.TCPClient{Addr: a.Endpoint[6:]}, nil
	case len(a.Endpoint) > 7 && a.Endpoint[:7] == "http://":
		return &proto.HTTPClient{BaseURL: a.Endpoint}, nil
	}
	return nil, fmt.Errorf("directory: cannot resolve endpoint %q", a.Endpoint)
}

// Entries implements master.Directory: the current advertisements as
// master entries, with remote endpoints resolved to protocol clients
// (cached so connections persist across queries).
func (s *Service) Entries() ([]master.Entry, error) {
	adverts := s.Adverts()
	out := make([]master.Entry, 0, len(adverts))
	for _, a := range adverts {
		c, err := s.resolveCached(a)
		if err != nil {
			return nil, fmt.Errorf("directory: advert %q: %w", a.Name, err)
		}
		out = append(out, master.Entry{
			Name:      a.Name,
			Prefixes:  a.Prefixes,
			Collector: c,
			BenchHost: a.BenchHost,
		})
	}
	return out, nil
}

func (s *Service) resolveCached(a Advert) (collector.Interface, error) {
	if a.Collector != nil {
		return a.Collector, nil
	}
	key := a.Name + "|" + a.Endpoint
	s.mu.Lock()
	if s.resolved == nil {
		s.resolved = make(map[string]collector.Interface)
	}
	if c, ok := s.resolved[key]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	c, err := Resolve(a)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.resolved[key] = c
	s.mu.Unlock()
	return c, nil
}
