package directory

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/master"
	"remos/internal/proto"
	"remos/internal/sim"
)

func startDirServer(t *testing.T) (*Service, *Client) {
	t.Helper()
	svc := New(sim.NewSim())
	srv := &Server{Service: svc}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, &Client{Addr: addr}
}

func TestRemoteRegisterListDeregister(t *testing.T) {
	svc, cl := startDirServer(t)
	a := Advert{
		Name:      "siteX",
		Prefixes:  []netip.Prefix{pfx("10.5.0.0/16"), pfx("10.6.0.0/16")},
		Endpoint:  "tcp://collector.siteX:3567",
		BenchHost: adr("10.5.0.9"),
	}
	if err := cl.Register(a, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Visible server-side.
	got, ok := svc.Lookup(adr("10.6.1.1"))
	if !ok || got.Name != "siteX" || got.Endpoint != a.Endpoint {
		t.Fatalf("server-side lookup = %+v ok=%v", got, ok)
	}
	// Visible through LIST.
	listed, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].Name != "siteX" || len(listed[0].Prefixes) != 2 {
		t.Fatalf("List = %+v", listed)
	}
	if listed[0].BenchHost != a.BenchHost {
		t.Fatalf("bench host lost: %v", listed[0].BenchHost)
	}
	if err := cl.Deregister("siteX"); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Lookup(adr("10.5.1.1")); ok {
		t.Fatal("deregistered advert still resolves")
	}
}

func TestRemoteRegisterValidation(t *testing.T) {
	_, cl := startDirServer(t)
	if err := cl.Register(Advert{Name: "x"}, 0); err == nil {
		t.Fatal("endpointless remote registration accepted")
	}
	if err := cl.Register(Advert{Endpoint: "tcp://y:1"}, 0); err == nil {
		t.Fatal("nameless registration accepted")
	}
}

func TestRemoteAdvertWithoutBenchHost(t *testing.T) {
	svc, cl := startDirServer(t)
	if err := cl.Register(Advert{
		Name: "nobench", Prefixes: []netip.Prefix{pfx("10.7.0.0/16")},
		Endpoint: "tcp://c:1",
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	a, ok := svc.Lookup(adr("10.7.0.1"))
	if !ok || a.BenchHost.IsValid() {
		t.Fatalf("advert = %+v ok=%v", a, ok)
	}
}

// TestFullRemoteControlPlane: a collector served over the ASCII protocol
// registers itself (by endpoint) with a remote directory; a master using
// that directory routes application queries to it. Nothing is wired by
// hand — this is the SLP + GMA-style discovery story end to end.
func TestFullRemoteControlPlane(t *testing.T) {
	svc, dirClient := startDirServer(t)

	fc := &fakeColl{name: "remote-site"}
	collSrv := &proto.TCPServer{Collector: fc}
	collAddr, err := collSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer collSrv.Close()

	// The remote site registers itself.
	if err := dirClient.Register(Advert{
		Name:     "remote-site",
		Prefixes: []netip.Prefix{pfx("10.8.0.0/16")},
		Endpoint: "tcp://" + collAddr,
	}, time.Hour); err != nil {
		t.Fatal(err)
	}

	// A master on the directory host serves applications.
	m := master.New(master.Config{Name: "m", Directory: svc})
	res, err := m.Collect(collector.Query{Hosts: []netip.Addr{adr("10.8.3.4")}})
	if err != nil {
		t.Fatal(err)
	}
	if fc.hits != 1 {
		t.Fatalf("remote collector hits = %d", fc.hits)
	}
	if res.Graph.Node("10.8.3.4") == nil {
		t.Fatal("answer lost the queried host")
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	_, cl := startDirServer(t)
	// A raw connection spewing junk is answered with ERR lines and then
	// dropped; the server keeps serving well-formed clients.
	conn, err := net.Dial("tcp", cl.Addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("HELLO WORLD\nREGISTER broken\n"))
	conn.Close()
	if err := cl.Register(Advert{
		Name: "ok", Prefixes: []netip.Prefix{pfx("10.9.0.0/16")},
		Endpoint: "tcp://c:1",
	}, time.Hour); err != nil {
		t.Fatalf("server broken after garbage: %v", err)
	}
	// Malformed prefix gets a protocol-level ERR, not a hang.
	conn2, err := net.Dial("tcp", cl.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte("REGISTER bad 60 tcp://x:1 - 1\nnot-a-prefix\n"))
	buf := make([]byte, 256)
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn2.Read(buf)
	if err != nil || n == 0 || string(buf[:3]) != "ERR" {
		t.Fatalf("expected ERR reply, got %q err=%v", buf[:n], err)
	}
}
