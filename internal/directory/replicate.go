package directory

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"remos/internal/obs"
	"remos/internal/sim"
)

// Peer replication: each federated daemon runs its own directory and
// pushes its local registrations to every peer directory, so the mesh
// converges on one view of which master owns which domain without a
// central registry. Conflicts (the same advert name leased from two
// places, or stale copies still circulating) resolve latest-lease-wins
// by sequence number — see Service.ReplicaApply.

// Replicate pushes one advert to the remote directory under
// latest-lease-wins, reporting whether the peer applied it.
func (c *Client) Replicate(a Advert, ttl time.Duration) (applied bool, err error) {
	if a.Endpoint == "" {
		return false, fmt.Errorf("directory: replication requires an endpoint")
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	err = c.exchange(func(conn net.Conn, r *bufio.Reader) error {
		bench, domain := "-", a.Domain
		if a.BenchHost.IsValid() {
			bench = a.BenchHost.String()
		}
		if domain == "" {
			domain = "-"
		}
		bw := bufio.NewWriter(conn)
		fmt.Fprintf(bw, "REPLICATE %s %d %s %s %s %d %d %d %d\n",
			a.Name, wireTTL(ttl), a.Endpoint, bench, domain, a.Priority, a.Epoch, a.Seq, len(a.Prefixes))
		for _, p := range a.Prefixes {
			fmt.Fprintln(bw, p.String())
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimSpace(line)
		var flag int
		if _, err := fmt.Sscanf(line, "OK %d", &flag); err != nil {
			return fmt.Errorf("directory: %s", line)
		}
		applied = flag != 0
		return nil
	})
	return applied, err
}

// RemoteAdvert is one LISTX row: the advert plus its lease's remaining
// lifetime at the moment the peer answered.
type RemoteAdvert struct {
	Advert
	TTL time.Duration
}

// ListX fetches the remote directory's advertisements with their
// federation lease fields.
func (c *Client) ListX() ([]RemoteAdvert, error) {
	var out []RemoteAdvert
	err := c.exchange(func(conn net.Conn, r *bufio.Reader) error {
		fmt.Fprintln(conn, "LISTX")
		head, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		var n int
		if _, err := fmt.Sscanf(head, "OK %d", &n); err != nil {
			return fmt.Errorf("directory: %s", strings.TrimSpace(head))
		}
		for i := 0; i < n; i++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			f := strings.Fields(line)
			if len(f) != 10 || f[0] != "ADVERTX" {
				return fmt.Errorf("directory: bad advertx line %q", strings.TrimSpace(line))
			}
			ra := RemoteAdvert{Advert: Advert{Name: f[1]}}
			if f[2] != "-" {
				ra.Endpoint = f[2]
			}
			if f[3] != "-" {
				bh, err := netip.ParseAddr(f[3])
				if err != nil {
					return err
				}
				ra.BenchHost = bh
			}
			if f[4] != "-" {
				ra.Domain = f[4]
			}
			prio, err1 := strconv.Atoi(f[5])
			epoch, err2 := strconv.ParseUint(f[6], 10, 64)
			seq, err3 := strconv.ParseUint(f[7], 10, 64)
			ttlSec, err4 := strconv.Atoi(f[8])
			np, err5 := strconv.Atoi(f[9])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || np < 0 || np > 1024 {
				return fmt.Errorf("directory: bad advertx numbers %q", strings.TrimSpace(line))
			}
			ra.Priority, ra.Epoch, ra.Seq = prio, epoch, seq
			ra.TTL = time.Duration(ttlSec) * time.Second
			for j := 0; j < np; j++ {
				pl, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				p, err := netip.ParsePrefix(strings.TrimSpace(pl))
				if err != nil {
					return err
				}
				ra.Prefixes = append(ra.Prefixes, p)
			}
			out = append(out, ra)
		}
		return nil
	})
	return out, err
}

// ReplicatorConfig wires a Replicator.
type ReplicatorConfig struct {
	// Service is the local directory whose endpoint-form adverts are
	// pushed. Required.
	Service *Service
	// Peers are peer directory addresses (host:port).
	Peers []string
	// Sched supplies the clock and the anti-entropy timer. Required.
	Sched sim.Scheduler
	// Interval is the anti-entropy push period (default DefaultTTL/4).
	Interval time.Duration
	// Obs, when set, receives the directory_replication_* metrics.
	Obs *obs.Registry
	// Logf, when set, reports push failures (they are retried on the
	// next round, so failures are logged, never fatal).
	Logf func(format string, args ...any)
}

// Replicator periodically pushes the local directory's remote-reachable
// adverts to every peer. Push-only anti-entropy is enough for a full
// mesh: every daemon pushes its own registrations to all peers, so each
// directory converges on the union, and lease expiry reaps entries
// whose origin stopped refreshing.
type Replicator struct {
	cfg   ReplicatorConfig
	timer *sim.Timer

	mPushes  *obs.Counter
	mApplied *obs.Counter
	mErrors  *obs.Counter
}

// StartReplicator begins anti-entropy on the scheduler's clock. An
// initial push runs on the first tick, not synchronously, so callers
// can finish wiring before traffic flows.
func StartReplicator(cfg ReplicatorConfig) *Replicator {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultTTL / 4
	}
	r := &Replicator{cfg: cfg}
	r.mPushes = cfg.Obs.Counter("remos_directory_replication_pushes_total",
		"advert pushes attempted to peer directories")
	r.mApplied = cfg.Obs.Counter("remos_directory_replication_applied_total",
		"advert pushes the peer applied (not stale-rejected)")
	r.mErrors = cfg.Obs.Counter("remos_directory_replication_errors_total",
		"advert pushes that failed to reach the peer")
	r.timer = cfg.Sched.Every(cfg.Interval, r.Push)
	return r
}

// Push replicates every remote-reachable advert to every peer once.
// Local-handle-only adverts cannot cross the wire and are skipped.
func (r *Replicator) Push() {
	status := r.cfg.Service.Status()
	now := r.cfg.Service.Now()
	for _, peer := range r.cfg.Peers {
		c := &Client{Addr: peer}
		for _, st := range status {
			if st.Endpoint == "" {
				continue
			}
			ttl := st.Expires.Sub(now)
			if ttl <= 0 {
				continue
			}
			r.mPushes.Inc()
			applied, err := c.Replicate(st.Advert, ttl)
			if err != nil {
				r.mErrors.Inc()
				if r.cfg.Logf != nil {
					r.cfg.Logf("directory: replicate %q to %s: %v", st.Name, peer, err)
				}
				break // peer down: skip its remaining adverts this round
			}
			if applied {
				r.mApplied.Inc()
			}
		}
	}
}

// Close stops the anti-entropy timer.
func (r *Replicator) Close() {
	if r.timer != nil {
		r.timer.Stop()
	}
}
