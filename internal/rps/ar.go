package rps

import "fmt"

// ARFitter fits an autoregressive model AR(p) by the Yule-Walker method
// solved with Levinson-Durbin recursion. The Remos host-load prediction
// system uses AR(16), which the RPS papers found appropriate despite host
// load's complex behavior.
type ARFitter struct {
	// P is the model order (default 16, the paper's choice).
	P int
}

// Name implements Fitter.
func (f ARFitter) Name() string { return fmt.Sprintf("AR(%d)", f.order()) }

func (f ARFitter) order() int {
	if f.P <= 0 {
		return 16
	}
	return f.P
}

// Fit implements Fitter.
func (f ARFitter) Fit(series []float64) (Model, error) {
	p := f.order()
	if err := checkSeries(series, 2*p+2); err != nil {
		return nil, err
	}
	acvf := autocovariance(series, p)
	phi, sigma2, err := levinsonDurbin(acvf, p)
	if err != nil {
		return nil, err
	}
	m := &armaModel{
		name:   f.Name(),
		phi:    phi,
		mu:     mean(series),
		sigma2: sigma2,
		hist:   newRing(p),
		eps:    newRing(1),
	}
	m.prime(series)
	return m, nil
}

// levinsonDurbin solves the Yule-Walker equations for AR(p) given
// autocovariances acvf[0..p]. It returns the AR coefficients and the
// innovation variance.
func levinsonDurbin(acvf []float64, p int) (phi []float64, sigma2 float64, err error) {
	if acvf[0] <= 0 {
		// Constant series: model as zero-coefficient AR with zero
		// variance; predictions will be the mean.
		return make([]float64, p), 0, nil
	}
	phi = make([]float64, p)
	prev := make([]float64, p)
	sigma2 = acvf[0]
	for k := 1; k <= p; k++ {
		acc := acvf[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * acvf[k-j]
		}
		if sigma2 <= 1e-300 {
			return nil, 0, errSingular
		}
		reflect := acc / sigma2
		phi[k-1] = reflect
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - reflect*prev[k-j-1]
		}
		sigma2 *= 1 - reflect*reflect
		if sigma2 < 0 {
			sigma2 = 0
		}
		copy(prev, phi[:k])
	}
	return phi, sigma2, nil
}

// armaModel is the shared runtime for AR, MA and ARMA models: an
// ARMA(p,q) forecaster over deviations from the mean, tracking recent
// observations and innovations.
type armaModel struct {
	name   string
	phi    []float64 // AR coefficients
	theta  []float64 // MA coefficients
	mu     float64
	sigma2 float64

	hist *ring // recent observations (deviation form not stored; raw)
	eps  *ring // recent innovations

	lastForecast float64 // one-step forecast of the next observation
	primed       bool
}

// prime replays the training series through the state rings so prediction
// can start immediately after Fit.
func (m *armaModel) prime(series []float64) {
	for _, x := range series {
		m.Step(x)
	}
}

// Step implements Model: records the innovation against the previous
// one-step forecast and updates state.
func (m *armaModel) Step(x float64) {
	var e float64
	if m.primed {
		e = x - m.lastForecast
	}
	m.hist.push(x)
	if len(m.theta) > 0 {
		m.eps.push(e)
	}
	m.primed = true
	m.lastForecast = m.forecastOne()
}

// forecastOne computes the one-step forecast from current state.
func (m *armaModel) forecastOne() float64 {
	v := m.mu
	for i, c := range m.phi {
		v += c * (m.hist.at(i+1) - m.mu)
	}
	for i, c := range m.theta {
		v += c * m.eps.at(i+1)
	}
	return v
}

// Predict implements Model with the standard ARMA forecast recursion:
// future innovations are zero, future observations are replaced by their
// forecasts.
func (m *armaModel) Predict(k int) Prediction {
	vals := make([]float64, k)
	// devs[h] holds forecasted deviation at horizon h (1-based).
	for h := 1; h <= k; h++ {
		v := 0.0
		for i, c := range m.phi {
			lag := h - (i + 1) // index into prior forecasts
			var dev float64
			if lag >= 1 {
				dev = vals[lag-1] - m.mu
			} else {
				dev = m.hist.at((i+1)-h+1) - m.mu
			}
			v += c * dev
		}
		for i, c := range m.theta {
			lag := (i + 1) - h + 1 // innovation index in the past
			if lag >= 1 {
				v += c * m.eps.at(lag)
			}
			// Future innovations have expectation zero.
		}
		vals[h-1] = m.mu + v
	}
	psi := psiWeights(m.phi, m.theta, k)
	return Prediction{Values: vals, ErrVar: errVarFromPsi(psi, m.sigma2)}
}
