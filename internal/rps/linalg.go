package rps

import "errors"

// errSingular reports an unsolvable linear system during fitting.
var errSingular = errors.New("rps: singular system while fitting")

// solve solves A x = b in place by Gaussian elimination with partial
// pivoting. A is row-major n×n; A and b are clobbered.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return nil, errSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// leastSquares solves min ||X beta - y||² via the normal equations with a
// tiny ridge term for numerical robustness. X is row-major with len(y)
// rows.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errSingular
	}
	k := len(x[0])
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r := range x {
		for i := 0; i < k; i++ {
			xi := x[r][i]
			if xi == 0 {
				continue
			}
			for j := i; j < k; j++ {
				xtx[i][j] += xi * x[r][j]
			}
			xty[i] += xi * y[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-8 * (1 + xtx[i][i]) // ridge
	}
	return solve(xtx, xty)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
