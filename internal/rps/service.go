package rps

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// This file provides the two service shapes the paper contrasts in
// Section 2.3: the stateless client-server interface ("turning a vector of
// measurements into a single vector of predictions") and the streaming
// interface ("a single model fitting operation can be amortized over
// multiple predictions").

// Predict is the client-server entry point: fit the requested model to the
// measurement history and forecast the next k values. Every call pays the
// full fit cost — the trade-off Figure 7 quantifies.
func Predict(f Fitter, series []float64, k int) (Prediction, error) {
	m, err := f.Fit(series)
	if err != nil {
		return Prediction{}, err
	}
	return m.Predict(k), nil
}

// Stream is a streaming predictor: a fitted model fed one measurement at a
// time, fanning each fresh prediction out to subscribers. It amortizes
// fitting over many predictions and keeps per-stream state, exactly the
// cost profile of the RPS host-load prediction system.
type Stream struct {
	mu      sync.Mutex
	model   Model
	horizon int
	subs    map[int]chan Prediction
	nextSub int
	last    Prediction
	n       int
	closed  bool
}

// NewStream wraps a fitted model producing k-step predictions.
func NewStream(m Model, horizon int) *Stream {
	if horizon <= 0 {
		horizon = 1
	}
	return &Stream{model: m, horizon: horizon, subs: make(map[int]chan Prediction)}
}

// Observe feeds one measurement, produces the new prediction, delivers it
// to subscribers (dropping for slow ones rather than blocking the
// measurement path), and returns it.
func (s *Stream) Observe(x float64) Prediction {
	s.mu.Lock()
	s.model.Step(x)
	p := s.model.Predict(s.horizon)
	s.last = p
	s.n++
	for _, ch := range s.subs {
		select {
		case ch <- p:
		default: // subscriber lagging; drop rather than stall the sensor
		}
	}
	s.mu.Unlock()
	return p
}

// Last returns the most recent prediction and how many observations have
// been consumed.
func (s *Stream) Last() (Prediction, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.n
}

// Subscribe returns a channel of predictions and a cancel function. The
// buffer absorbs bursts; overflow is dropped.
func (s *Stream) Subscribe(buf int) (<-chan Prediction, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Prediction, buf)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// Close terminates the stream: every pending subscriber channel is
// closed and later Subscribe calls receive an already-closed channel.
// Close is idempotent and safe concurrently with Observe and with
// subscribers' cancel functions (cancel after Close is a no-op — the
// subscription is already gone, so the channel is never closed twice).
// Observe after Close still updates the model but delivers to no one.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
}

// ParseFitter builds a Fitter from a compact spec string, the form model
// choices travel in over the Remos protocols:
//
//	MEAN | LAST | BM(p) | AR(p) | MA(q) | ARMA(p,q) | ARIMA(p,d,q) |
//	ARFIMA(p,d,q) | REFIT(<spec>,interval) | AUTOREFIT(<spec>)
func ParseFitter(spec string) (Fitter, error) {
	spec = strings.TrimSpace(spec)
	upper := strings.ToUpper(spec)
	switch upper {
	case "MEAN":
		return MeanFitter{}, nil
	case "LAST":
		return LastFitter{}, nil
	}
	open := strings.IndexByte(spec, '(')
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return nil, fmt.Errorf("rps: cannot parse model spec %q", spec)
	}
	name := strings.ToUpper(spec[:open])
	argStr := spec[open+1 : len(spec)-1]

	if name == "AUTOREFIT" {
		base, err := ParseFitter(argStr)
		if err != nil {
			return nil, err
		}
		return AutoRefitFitter{Base: base}, nil
	}
	if name == "REFIT" {
		// Split on the LAST comma: the first argument may itself
		// contain commas.
		cut := strings.LastIndexByte(argStr, ',')
		if cut < 0 {
			return nil, fmt.Errorf("rps: REFIT needs (spec,interval) in %q", spec)
		}
		base, err := ParseFitter(argStr[:cut])
		if err != nil {
			return nil, err
		}
		iv, err := strconv.Atoi(strings.TrimSpace(argStr[cut+1:]))
		if err != nil || iv <= 0 {
			return nil, fmt.Errorf("rps: bad REFIT interval in %q", spec)
		}
		return RefitFitter{Base: base, Interval: iv}, nil
	}

	args := strings.Split(argStr, ",")
	ints := make([]int, 0, len(args))
	floats := make([]float64, 0, len(args))
	for _, a := range args {
		a = strings.TrimSpace(a)
		fv, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("rps: bad argument %q in %q", a, spec)
		}
		floats = append(floats, fv)
		ints = append(ints, int(fv))
	}
	switch name {
	case "BM":
		if len(ints) != 1 {
			return nil, fmt.Errorf("rps: BM takes 1 argument, got %d", len(ints))
		}
		return BMFitter{P: ints[0]}, nil
	case "AR":
		if len(ints) != 1 {
			return nil, fmt.Errorf("rps: AR takes 1 argument, got %d", len(ints))
		}
		return ARFitter{P: ints[0]}, nil
	case "MA":
		if len(ints) != 1 {
			return nil, fmt.Errorf("rps: MA takes 1 argument, got %d", len(ints))
		}
		return MAFitter{Q: ints[0]}, nil
	case "ARMA":
		if len(ints) != 2 {
			return nil, fmt.Errorf("rps: ARMA takes 2 arguments, got %d", len(ints))
		}
		return ARMAFitter{P: ints[0], Q: ints[1]}, nil
	case "ARIMA":
		if len(ints) != 3 {
			return nil, fmt.Errorf("rps: ARIMA takes 3 arguments, got %d", len(ints))
		}
		return ARIMAFitter{P: ints[0], D: ints[1], Q: ints[2]}, nil
	case "ARFIMA":
		if len(floats) != 3 {
			return nil, fmt.Errorf("rps: ARFIMA takes 3 arguments, got %d", len(floats))
		}
		return ARFIMAFitter{P: ints[0], D: floats[1], Q: ints[2]}, nil
	}
	return nil, fmt.Errorf("rps: unknown model family %q", name)
}
