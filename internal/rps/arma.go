package rps

import "fmt"

// MAFitter fits a pure moving-average model MA(q). It is ARMA(0,q).
type MAFitter struct {
	// Q is the model order (default 8).
	Q int
}

// Name implements Fitter.
func (f MAFitter) Name() string { return fmt.Sprintf("MA(%d)", f.order()) }

func (f MAFitter) order() int {
	if f.Q <= 0 {
		return 8
	}
	return f.Q
}

// Fit implements Fitter.
func (f MAFitter) Fit(series []float64) (Model, error) {
	return fitARMA(f.Name(), series, 0, f.order())
}

// ARMAFitter fits a mixed model ARMA(p,q) with the Hannan-Rissanen
// two-stage method: a long autoregression estimates the innovations, then
// ordinary least squares regresses each observation on its own lags and
// the estimated innovation lags.
type ARMAFitter struct {
	// P and Q are the AR and MA orders (defaults 8,8).
	P, Q int
}

// Name implements Fitter.
func (f ARMAFitter) Name() string { p, q := f.orders(); return fmt.Sprintf("ARMA(%d,%d)", p, q) }

func (f ARMAFitter) orders() (int, int) {
	p, q := f.P, f.Q
	if p <= 0 {
		p = 8
	}
	if q <= 0 {
		q = 8
	}
	return p, q
}

// Fit implements Fitter.
func (f ARMAFitter) Fit(series []float64) (Model, error) {
	p, q := f.orders()
	return fitARMA(f.Name(), series, p, q)
}

func fitARMA(name string, series []float64, p, q int) (Model, error) {
	// Stage 1: long AR to estimate innovations.
	long := p + q + 8
	if long < 12 {
		long = 12
	}
	minLen := long + p + q + 16
	if err := checkSeries(series, minLen); err != nil {
		return nil, err
	}
	mu := mean(series)
	acvf := autocovariance(series, long)
	longPhi, _, err := levinsonDurbin(acvf, long)
	if err != nil {
		return nil, err
	}
	n := len(series)
	eps := make([]float64, n)
	for t := long; t < n; t++ {
		pred := 0.0
		for i, c := range longPhi {
			pred += c * (series[t-i-1] - mu)
		}
		eps[t] = (series[t] - mu) - pred
	}

	// Stage 2: OLS of deviation on its own lags and innovation lags.
	start := long + maxInt(p, q)
	rows := n - start
	if rows < p+q+4 {
		return nil, fmt.Errorf("%w: %d usable rows for ARMA(%d,%d)", ErrTooShort, rows, p, q)
	}
	x := make([][]float64, 0, rows)
	y := make([]float64, 0, rows)
	for t := start; t < n; t++ {
		row := make([]float64, p+q)
		for i := 0; i < p; i++ {
			row[i] = series[t-i-1] - mu
		}
		for j := 0; j < q; j++ {
			row[p+j] = eps[t-j-1]
		}
		x = append(x, row)
		y = append(y, series[t]-mu)
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return nil, err
	}
	phi := beta[:p]
	theta := beta[p:]

	// Residual variance of the fitted model.
	var se float64
	for r := range x {
		pred := 0.0
		for i, b := range beta {
			pred += b * x[r][i]
		}
		d := y[r] - pred
		se += d * d
	}
	sigma2 := se / float64(len(x))

	histCap := p
	if histCap < 1 {
		histCap = 1
	}
	epsCap := q
	if epsCap < 1 {
		epsCap = 1
	}
	m := &armaModel{
		name:   name,
		phi:    append([]float64(nil), phi...),
		theta:  append([]float64(nil), theta...),
		mu:     mu,
		sigma2: sigma2,
		hist:   newRing(histCap),
		eps:    newRing(epsCap),
	}
	m.prime(series)
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
