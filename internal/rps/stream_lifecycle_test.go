package rps

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// Subscriber lifecycle tests for the streaming predictor: the
// continuous-collection plane keeps one Stream per monitored edge alive
// for the life of the daemon, so unsubscribe, slow consumers and
// close-with-pending-subscribers must all be leak- and deadlock-free.

func newTestStream(t *testing.T) *Stream {
	t.Helper()
	m, err := LastFitter{}.Fit([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return NewStream(m, 4)
}

func TestUnsubscribeMidStream(t *testing.T) {
	s := newTestStream(t)
	defer s.Close()

	// Hammer Observe while subscribers churn: cancel mid-delivery must
	// not panic, deadlock or deliver on a closed channel.
	stop := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Observe(float64(i))
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ch, cancel := s.Subscribe(2)
				// Consume a little, then walk away mid-stream.
				select {
				case <-ch:
				default:
				}
				cancel()
				cancel() // double-cancel is a no-op
				// The canceled channel must be closed, not left open.
				if _, ok := <-ch; ok {
					// A buffered prediction may still be pending; the
					// channel must still close right after.
					for range ch {
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	obsWG.Wait()
}

func TestSlowConsumerNeverBlocksObserve(t *testing.T) {
	s := newTestStream(t)
	defer s.Close()
	ch, cancel := s.Subscribe(1)
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			s.Observe(float64(i)) // nobody reading ch
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Observe blocked on a slow consumer")
	}
	// The subscriber finds at most its buffer depth pending.
	if n := len(ch); n > 1 {
		t.Fatalf("buffer overran: %d pending", n)
	}
	if _, n := s.Last(); n != 1000 {
		t.Fatalf("stream consumed %d observations, want 1000", n)
	}
}

func TestCloseWithPendingSubscribers(t *testing.T) {
	s := newTestStream(t)
	var chans []<-chan Prediction
	var cancels []func()
	for i := 0; i < 5; i++ {
		ch, cancel := s.Subscribe(4)
		chans = append(chans, ch)
		cancels = append(cancels, cancel)
	}
	s.Observe(42)
	s.Close()
	s.Close() // idempotent

	// Every pending subscriber channel drains and closes.
	for i, ch := range chans {
		deadline := time.After(5 * time.Second)
		for open := true; open; {
			select {
			case _, ok := <-ch:
				open = ok
			case <-deadline:
				t.Fatalf("subscriber %d channel never closed", i)
			}
		}
	}
	// Cancel after Close must not double-close.
	for _, cancel := range cancels {
		cancel()
	}
	// Subscribe after Close hands back an already-closed channel.
	ch, cancel := s.Subscribe(1)
	if _, ok := <-ch; ok {
		t.Fatal("subscribe-after-close channel delivered")
	}
	cancel()
	// Observe after Close still advances the model, delivers to no one.
	s.Observe(7)
	if _, n := s.Last(); n != 2 {
		t.Fatalf("post-close Observe not consumed (n=%d)", n)
	}
}

func TestStreamChurnLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := newTestStream(t)
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ch, cancel := s.Subscribe(2)
				s.Observe(1)
				select {
				case <-ch:
				default:
				}
				cancel()
			}()
		}
		wg.Wait()
		s.Close()
	}
	// The stream machinery itself spawns no goroutines; churn must not
	// have left any behind either.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
