// Package rps is a from-scratch reimplementation of the RPS (Resource
// Prediction System) toolkit Remos uses for prediction (Dinda &
// O'Hallaron, CMU-CS-99-138): a library of linear time-series models —
// MEAN, LAST, windowed average BM(p), AR(p), MA(q), ARMA(p,q),
// ARIMA(p,d,q), and fractionally-integrated ARFIMA for long-range
// dependence — plus a periodically refitting wrapper, an online evaluator
// that triggers refits when the fit decays, and both client-server
// (stateless) and streaming (stateful) prediction services.
package rps

import (
	"errors"
	"fmt"
)

// Prediction holds forecasts for horizons 1..len(Values) together with the
// model's own estimate of the mean squared error at each horizon. RPS
// "characterizes its own prediction error", and applications use the error
// estimates to make variance-aware decisions.
type Prediction struct {
	Values []float64
	ErrVar []float64
}

// Model is a fitted predictor. Step feeds one new observation; Predict
// forecasts from the current state. Models are not safe for concurrent
// use; wrap with a Stream for shared access.
type Model interface {
	// Step advances the model state with a new observation.
	Step(x float64)
	// Predict forecasts the next k observations.
	Predict(k int) Prediction
}

// Fitter builds a Model from a training series. Fitters are stateless and
// safe for concurrent use.
type Fitter interface {
	// Name identifies the model family, e.g. "AR(16)".
	Name() string
	// Fit estimates model parameters from the series.
	Fit(series []float64) (Model, error)
}

// ErrTooShort reports a training series shorter than the model needs.
var ErrTooShort = errors.New("rps: training series too short")

// mean returns the arithmetic mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// variance returns the population variance around the given mean.
func variance(xs []float64, mu float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// autocovariance returns acvf[0..maxLag] of the series around its mean.
func autocovariance(xs []float64, maxLag int) []float64 {
	mu := mean(xs)
	n := len(xs)
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for t := lag; t < n; t++ {
			s += (xs[t] - mu) * (xs[t-lag] - mu)
		}
		out[lag] = s / float64(n)
	}
	return out
}

// psiWeights expands an ARMA(p,q) model into its first k MA(∞) psi
// weights: psi_0 = 1, psi_j = theta_j + Σ_{i=1..min(j,p)} phi_i psi_{j-i}.
// Horizon-h forecast error variance is sigma² Σ_{j<h} psi_j².
func psiWeights(phi, theta []float64, k int) []float64 {
	psi := make([]float64, k)
	if k == 0 {
		return psi
	}
	psi[0] = 1
	for j := 1; j < k; j++ {
		var v float64
		if j <= len(theta) {
			v = theta[j-1]
		}
		for i := 1; i <= j && i <= len(phi); i++ {
			v += phi[i-1] * psi[j-i]
		}
		psi[j] = v
	}
	return psi
}

// errVarFromPsi accumulates sigma² Σ psi² per horizon.
func errVarFromPsi(psi []float64, sigma2 float64) []float64 {
	out := make([]float64, len(psi))
	var acc float64
	for h := range psi {
		acc += psi[h] * psi[h]
		out[h] = sigma2 * acc
	}
	return out
}

// ring is a fixed-capacity ring buffer of the most recent observations.
type ring struct {
	buf  []float64
	head int // next write position
	n    int // filled count
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{buf: make([]float64, capacity)}
}

func (r *ring) push(x float64) {
	r.buf[r.head] = x
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// at returns the value lag steps back (lag=1 is the most recent).
func (r *ring) at(lag int) float64 {
	if lag < 1 || lag > r.n {
		return 0
	}
	idx := (r.head - lag + 2*len(r.buf)) % len(r.buf)
	return r.buf[idx]
}

func (r *ring) len() int { return r.n }

// values returns the contents oldest-first.
func (r *ring) values() []float64 {
	out := make([]float64, 0, r.n)
	for lag := r.n; lag >= 1; lag-- {
		out = append(out, r.at(lag))
	}
	return out
}

// checkSeries validates a training series.
func checkSeries(series []float64, minLen int) error {
	if len(series) < minLen {
		return fmt.Errorf("%w: have %d, need %d", ErrTooShort, len(series), minLen)
	}
	return nil
}
