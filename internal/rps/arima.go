package rps

import "fmt"

// ARIMAFitter fits ARIMA(p,d,q): the series is differenced d times, an
// ARMA(p,q) is fitted to the result, and forecasts are integrated back.
type ARIMAFitter struct {
	// P, D, Q are the model orders (defaults 8,1,8).
	P, D, Q int
}

// Name implements Fitter.
func (f ARIMAFitter) Name() string {
	p, d, q := f.orders()
	return fmt.Sprintf("ARIMA(%d,%d,%d)", p, d, q)
}

func (f ARIMAFitter) orders() (int, int, int) {
	p, d, q := f.P, f.D, f.Q
	if p <= 0 {
		p = 8
	}
	if d <= 0 {
		d = 1
	}
	if q <= 0 {
		q = 8
	}
	return p, d, q
}

// Fit implements Fitter.
func (f ARIMAFitter) Fit(series []float64) (Model, error) {
	p, d, q := f.orders()
	if err := checkSeries(series, d+p+q+40); err != nil {
		return nil, err
	}
	diffed := append([]float64(nil), series...)
	for i := 0; i < d; i++ {
		diffed = difference(diffed)
	}
	inner, err := fitARMA(f.Name(), diffed, p, q)
	if err != nil {
		return nil, err
	}
	am := inner.(*armaModel)
	m := &arimaModel{
		name:  f.Name(),
		d:     d,
		inner: am,
	}
	// Track the last raw values at each integration level so Step can
	// re-difference incoming observations and Predict can integrate.
	m.lastLevels = make([]float64, d)
	cur := series
	for i := 0; i < d; i++ {
		m.lastLevels[i] = cur[len(cur)-1]
		cur = difference(cur)
	}
	return m, nil
}

func difference(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

type arimaModel struct {
	name       string
	d          int
	inner      *armaModel
	lastLevels []float64 // lastLevels[i] is the latest value after i differencings
}

// Step implements Model: difference the observation d times against the
// stored levels and feed the innermost difference to the ARMA core.
func (m *arimaModel) Step(x float64) {
	v := x
	for i := 0; i < m.d; i++ {
		next := v - m.lastLevels[i]
		m.lastLevels[i] = v
		v = next
	}
	m.inner.Step(v)
}

// Predict implements Model: forecast the differenced series and integrate
// back d times. Error variance uses the psi weights of the integrated
// model (cumulative sums of the ARMA psi weights, once per differencing).
func (m *arimaModel) Predict(k int) Prediction {
	ip := m.inner.Predict(k)
	vals := append([]float64(nil), ip.Values...)
	// Integrate d times: x[h] = x[h-1] + diff[h], seeded by the last
	// value at each level.
	for lvl := m.d - 1; lvl >= 0; lvl-- {
		prev := m.lastLevels[lvl]
		for h := 0; h < k; h++ {
			vals[h] += prev
			prev = vals[h]
		}
	}
	// Psi weights of ARIMA: repeated cumulative sum.
	psi := psiWeights(m.inner.phi, m.inner.theta, k)
	for i := 0; i < m.d; i++ {
		for h := 1; h < k; h++ {
			psi[h] += psi[h-1]
		}
	}
	ev := errVarFromPsi(psi, m.inner.sigma2)
	return Prediction{Values: vals, ErrVar: ev}
}

// ARFIMAFitter fits a fractionally integrated model ARFIMA(p,d,q) with
// 0 < d < 0.5, the long-range-dependence model RPS includes for
// self-similar signals. The series is fractionally differenced with
// truncated binomial weights, an ARMA is fitted, and forecasts are
// fractionally integrated back.
type ARFIMAFitter struct {
	// P and Q are the ARMA orders (defaults 4,0).
	P, Q int
	// D is the fractional differencing parameter in (0, 0.5); default
	// 0.25.
	D float64
	// Trunc is the truncation length of the fractional filter (default
	// 50 taps).
	Trunc int
}

// Name implements Fitter.
func (f ARFIMAFitter) Name() string {
	p, d, q, _ := f.params()
	return fmt.Sprintf("ARFIMA(%d,%.2f,%d)", p, d, q)
}

func (f ARFIMAFitter) params() (p int, d float64, q int, trunc int) {
	p, q, d, trunc = f.P, f.Q, f.D, f.Trunc
	if p <= 0 {
		p = 4
	}
	if q < 0 {
		q = 0
	}
	if d <= 0 || d >= 0.5 {
		d = 0.25
	}
	if trunc <= 0 {
		trunc = 50
	}
	return p, d, q, trunc
}

// fracWeights returns the first n coefficients pi_j of (1-B)^d:
// pi_0 = 1, pi_j = pi_{j-1} (j-1-d)/j.
func fracWeights(d float64, n int) []float64 {
	w := make([]float64, n)
	w[0] = 1
	for j := 1; j < n; j++ {
		w[j] = w[j-1] * (float64(j) - 1 - d) / float64(j)
	}
	return w
}

// Fit implements Fitter.
func (f ARFIMAFitter) Fit(series []float64) (Model, error) {
	p, d, q, trunc := f.params()
	if err := checkSeries(series, trunc+p+q+40); err != nil {
		return nil, err
	}
	mu := mean(series)
	w := fracWeights(d, trunc)
	// Fractionally difference (deviations from the mean).
	n := len(series)
	diffed := make([]float64, 0, n-trunc)
	for t := trunc; t < n; t++ {
		var v float64
		for j := 0; j < trunc; j++ {
			v += w[j] * (series[t-j] - mu)
		}
		diffed = append(diffed, v)
	}
	inner, err := fitARMA(f.Name(), diffed, p, q)
	if err != nil {
		return nil, err
	}
	m := &arfimaModel{
		name:  f.Name(),
		mu:    mu,
		w:     w,
		inner: inner.(*armaModel),
		hist:  newRing(trunc),
	}
	for _, x := range series {
		m.hist.push(x)
	}
	return m, nil
}

type arfimaModel struct {
	name  string
	mu    float64
	w     []float64 // fractional differencing weights, w[0]=1
	inner *armaModel
	hist  *ring // raw observations, most recent first via at()
}

// Step implements Model.
func (m *arfimaModel) Step(x float64) {
	m.hist.push(x)
	// Fractionally difference the newest point.
	var v float64
	for j := 0; j < len(m.w) && j < m.hist.len(); j++ {
		v += m.w[j] * (m.hist.at(j+1) - m.mu)
	}
	m.inner.Step(v)
}

// Predict implements Model: forecast the fractionally differenced series,
// then invert the filter step by step: x̂_{t+h} = ŵ_{t+h} − Σ_{j≥1} π_j
// x̂_{t+h−j} (deviations), using observations where available and earlier
// forecasts otherwise.
func (m *arfimaModel) Predict(k int) Prediction {
	ip := m.inner.Predict(k)
	vals := make([]float64, k)
	for h := 1; h <= k; h++ {
		v := ip.Values[h-1] // forecasted fractional difference
		for j := 1; j < len(m.w); j++ {
			var dev float64
			if h-j >= 1 {
				dev = vals[h-j-1] - m.mu
			} else {
				lag := j - h + 1
				if lag > m.hist.len() {
					continue
				}
				dev = m.hist.at(lag) - m.mu
			}
			v -= m.w[j] * dev
		}
		vals[h-1] = m.mu + v
	}
	// Psi weights: convolve ARMA psi with the expansion of (1-B)^{-d},
	// whose coefficients are fracWeights(-d).
	inv := fracWeights(-dFromWeights(m.w), k)
	base := psiWeights(m.inner.phi, m.inner.theta, k)
	psi := make([]float64, k)
	for h := 0; h < k; h++ {
		var s float64
		for j := 0; j <= h; j++ {
			s += inv[j] * base[h-j]
		}
		psi[h] = s
	}
	return Prediction{Values: vals, ErrVar: errVarFromPsi(psi, m.inner.sigma2)}
}

// dFromWeights recovers d from the filter weights: w[1] = -d.
func dFromWeights(w []float64) float64 {
	if len(w) < 2 {
		return 0
	}
	return -w[1]
}
