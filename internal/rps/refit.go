package rps

import "fmt"

// RefitFitter is the RPS "template that creates a periodically re-fitting
// version of any model": the produced model refits its base family every
// Interval observations on a sliding window.
type RefitFitter struct {
	Base Fitter
	// Interval is the number of Steps between refits (default 128).
	Interval int
	// History is the sliding-window length used for refitting (default
	// 600, the fit length used in the paper's Figure 7).
	History int
}

// Name implements Fitter.
func (f RefitFitter) Name() string {
	return fmt.Sprintf("REFIT(%s,%d)", f.Base.Name(), f.interval())
}

func (f RefitFitter) interval() int {
	if f.Interval <= 0 {
		return 128
	}
	return f.Interval
}

func (f RefitFitter) history() int {
	if f.History <= 0 {
		return 600
	}
	return f.History
}

// Fit implements Fitter.
func (f RefitFitter) Fit(series []float64) (Model, error) {
	inner, err := f.Base.Fit(series)
	if err != nil {
		return nil, err
	}
	m := &refitModel{
		base:     f.Base,
		interval: f.interval(),
		window:   newRing(f.history()),
		inner:    inner,
	}
	for _, x := range series {
		m.window.push(x)
	}
	return m, nil
}

type refitModel struct {
	base     Fitter
	interval int
	window   *ring
	inner    Model
	sinceFit int
	refits   int
}

// Step implements Model; every interval steps the base family is refitted
// on the window. A failed refit (e.g. degenerate window) keeps the old
// model, which is the robust choice for a monitoring system.
func (m *refitModel) Step(x float64) {
	m.window.push(x)
	m.inner.Step(x)
	m.sinceFit++
	if m.sinceFit >= m.interval {
		m.sinceFit = 0
		if fresh, err := m.base.Fit(m.window.values()); err == nil {
			m.inner = fresh
			m.refits++
		}
	}
}

// Predict implements Model.
func (m *refitModel) Predict(k int) Prediction { return m.inner.Predict(k) }

// Refits returns how many times the model has been refitted.
func (m *refitModel) Refits() int { return m.refits }

// Evaluator wraps a model and continuously tests its one-step prediction
// error, the mechanism RPS uses "to decide when the model must be refit"
// (Section 3.3). It is itself a Model, so it can wrap anything.
type Evaluator struct {
	inner Model

	errWin   *ring // recent squared one-step errors
	lastPred float64
	primed   bool
	steps    int
}

// NewEvaluator wraps the model, tracking the last window squared errors.
func NewEvaluator(m Model, window int) *Evaluator {
	if window <= 0 {
		window = 64
	}
	e := &Evaluator{inner: m, errWin: newRing(window)}
	e.lastPred = first(m.Predict(1).Values)
	return e
}

func first(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	return vs[0]
}

// Step implements Model: score the previous forecast, then advance.
func (e *Evaluator) Step(x float64) {
	if e.primed || e.steps > 0 {
		d := x - e.lastPred
		e.errWin.push(d * d)
	}
	e.steps++
	e.primed = true
	e.inner.Step(x)
	e.lastPred = first(e.inner.Predict(1).Values)
}

// Predict implements Model.
func (e *Evaluator) Predict(k int) Prediction { return e.inner.Predict(k) }

// MSE returns the rolling mean squared one-step error observed so far.
func (e *Evaluator) MSE() float64 {
	return mean(e.errWin.values())
}

// Degraded reports whether the observed error exceeds the model's own
// claimed one-step error variance by more than the given factor — the
// refit trigger. It needs a full error window before it will fire.
func (e *Evaluator) Degraded(factor float64) bool {
	if e.errWin.len() < len(e.errWin.buf) {
		return false
	}
	claimed := first(e.inner.Predict(1).ErrVar)
	if claimed <= 0 {
		claimed = 1e-12
	}
	return e.MSE() > factor*claimed
}

// AutoRefitFitter wires the Evaluator's continuous error testing to
// refitting: "in RPS, this continuous testing (done by the evaluator) is
// used to decide when the model must be refit" (Section 3.3). The
// produced model monitors its rolling one-step error and refits the base
// family from a sliding window whenever the error exceeds the model's own
// claimed variance by Factor.
type AutoRefitFitter struct {
	Base Fitter
	// Factor is the degradation threshold (default 4: observed MSE
	// four times the claimed variance).
	Factor float64
	// Window is the error window length (default 64).
	Window int
	// History is the sliding refit window (default 600).
	History int
}

// Name implements Fitter.
func (f AutoRefitFitter) Name() string {
	return fmt.Sprintf("AUTOREFIT(%s)", f.Base.Name())
}

func (f AutoRefitFitter) params() (factor float64, window, history int) {
	factor, window, history = f.Factor, f.Window, f.History
	if factor <= 0 {
		factor = 4
	}
	if window <= 0 {
		window = 64
	}
	if history <= 0 {
		history = 600
	}
	return factor, window, history
}

// Fit implements Fitter.
func (f AutoRefitFitter) Fit(series []float64) (Model, error) {
	inner, err := f.Base.Fit(series)
	if err != nil {
		return nil, err
	}
	factor, window, history := f.params()
	m := &autoRefitModel{
		base:   f.Base,
		factor: factor,
		window: window,
		hist:   newRing(history),
		eval:   NewEvaluator(inner, window),
	}
	for _, x := range series {
		m.hist.push(x)
	}
	return m, nil
}

type autoRefitModel struct {
	base   Fitter
	factor float64
	window int
	hist   *ring
	eval   *Evaluator
	refits int
}

// Step implements Model: score, and refit when the evaluator says the
// fit has decayed. A failed refit keeps the old model.
func (m *autoRefitModel) Step(x float64) {
	m.hist.push(x)
	m.eval.Step(x)
	if m.eval.Degraded(m.factor) {
		if fresh, err := m.base.Fit(m.hist.values()); err == nil {
			m.eval = NewEvaluator(fresh, m.window)
			m.refits++
		}
	}
}

// Predict implements Model.
func (m *autoRefitModel) Predict(k int) Prediction { return m.eval.Predict(k) }

// Refits reports how many evaluator-triggered refits have happened.
func (m *autoRefitModel) Refits() int { return m.refits }
