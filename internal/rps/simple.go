package rps

import "fmt"

// This file holds the trivial but practically important RPS models: the
// long-term average (MEAN), the last-value predictor (LAST), and the
// windowed average BM(p). The RPS papers found these are strong baselines
// and orders of magnitude cheaper than Box-Jenkins models (Figure 7).

// MeanFitter builds the long-term-average model: predictions are the
// running mean of everything seen; error variance is the running variance.
type MeanFitter struct{}

// Name implements Fitter.
func (MeanFitter) Name() string { return "MEAN" }

// Fit implements Fitter.
func (MeanFitter) Fit(series []float64) (Model, error) {
	if err := checkSeries(series, 1); err != nil {
		return nil, err
	}
	m := &meanModel{}
	for _, x := range series {
		m.Step(x)
	}
	return m, nil
}

type meanModel struct {
	n     float64
	sum   float64
	sumSq float64
}

func (m *meanModel) Step(x float64) {
	m.n++
	m.sum += x
	m.sumSq += x * x
}

func (m *meanModel) Predict(k int) Prediction {
	mu := 0.0
	v := 0.0
	if m.n > 0 {
		mu = m.sum / m.n
		v = m.sumSq/m.n - mu*mu
		if v < 0 {
			v = 0
		}
	}
	p := Prediction{Values: make([]float64, k), ErrVar: make([]float64, k)}
	for i := range p.Values {
		p.Values[i] = mu
		p.ErrVar[i] = v
	}
	return p
}

// LastFitter builds the last-value model: the forecast at every horizon is
// the latest observation; the error variance estimate is the variance of
// one-step differences scaled by the horizon (random-walk assumption).
type LastFitter struct{}

// Name implements Fitter.
func (LastFitter) Name() string { return "LAST" }

// Fit implements Fitter.
func (LastFitter) Fit(series []float64) (Model, error) {
	if err := checkSeries(series, 2); err != nil {
		return nil, err
	}
	var sum, sumSq float64
	n := 0
	for i := 1; i < len(series); i++ {
		d := series[i] - series[i-1]
		sum += d
		sumSq += d * d
		n++
	}
	dv := sumSq/float64(n) - (sum/float64(n))*(sum/float64(n))
	if dv < 0 {
		dv = 0
	}
	return &lastModel{last: series[len(series)-1], diffVar: dv}, nil
}

type lastModel struct {
	last    float64
	diffVar float64
}

func (m *lastModel) Step(x float64) { m.last = x }

func (m *lastModel) Predict(k int) Prediction {
	p := Prediction{Values: make([]float64, k), ErrVar: make([]float64, k)}
	for i := range p.Values {
		p.Values[i] = m.last
		p.ErrVar[i] = m.diffVar * float64(i+1)
	}
	return p
}

// BMFitter builds the windowed-average model BM(p): predictions are the
// mean of the last p observations.
type BMFitter struct {
	// P is the window length (default 32).
	P int
}

// Name implements Fitter.
func (f BMFitter) Name() string { return fmt.Sprintf("BM(%d)", f.window()) }

func (f BMFitter) window() int {
	if f.P <= 0 {
		return 32
	}
	return f.P
}

// Fit implements Fitter.
func (f BMFitter) Fit(series []float64) (Model, error) {
	p := f.window()
	if err := checkSeries(series, 1); err != nil {
		return nil, err
	}
	m := &bmModel{win: newRing(p)}
	// Error variance: in-sample MSE of the windowed mean as a one-step
	// predictor, computed with a rolling window sum.
	var se, winSum float64
	cnt := 0
	for i, x := range series {
		if i > 0 {
			d := x - winSum/float64(m.win.len())
			se += d * d
			cnt++
		}
		if m.win.len() == len(m.win.buf) {
			winSum -= m.win.at(m.win.len())
		}
		m.win.push(x)
		winSum += x
	}
	if cnt > 0 {
		m.mse = se / float64(cnt)
	}
	m.sum = winSum
	return m, nil
}

type bmModel struct {
	win *ring
	sum float64 // rolling sum of the window
	mse float64
}

func (m *bmModel) Step(x float64) {
	if m.win.len() == len(m.win.buf) {
		m.sum -= m.win.at(m.win.len())
	}
	m.win.push(x)
	m.sum += x
}

func (m *bmModel) Predict(k int) Prediction {
	mu := 0.0
	if m.win.len() > 0 {
		mu = m.sum / float64(m.win.len())
	}
	p := Prediction{Values: make([]float64, k), ErrVar: make([]float64, k)}
	for i := range p.Values {
		p.Values[i] = mu
		p.ErrVar[i] = m.mse
	}
	return p
}
