package rps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genAR produces n samples of a stable AR process with the given
// coefficients, mean, and innovation stddev.
func genAR(rng *rand.Rand, phi []float64, mu, sd float64, n int) []float64 {
	p := len(phi)
	out := make([]float64, n+200)
	for t := p; t < len(out); t++ {
		v := 0.0
		for i, c := range phi {
			v += c * out[t-i-1]
		}
		out[t] = v + rng.NormFloat64()*sd
	}
	series := out[200:]
	for i := range series {
		series[i] += mu
	}
	return series
}

func TestMeanModel(t *testing.T) {
	m, err := MeanFitter{}.Fit([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(3)
	for _, v := range p.Values {
		if v != 2.5 {
			t.Fatalf("MEAN predicted %v, want 2.5", v)
		}
	}
	if p.ErrVar[0] != 1.25 {
		t.Fatalf("MEAN errvar = %v, want 1.25", p.ErrVar[0])
	}
	m.Step(10)
	if got := m.Predict(1).Values[0]; got != 4 {
		t.Fatalf("after Step(10), MEAN = %v, want 4", got)
	}
}

func TestLastModel(t *testing.T) {
	m, err := LastFitter{}.Fit([]float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(4)
	for _, v := range p.Values {
		if v != 7 {
			t.Fatalf("LAST predicted %v, want 7", v)
		}
	}
	// Random-walk error growth: errvar increases with horizon.
	for h := 1; h < 4; h++ {
		if p.ErrVar[h] < p.ErrVar[h-1] {
			t.Fatalf("LAST errvar not nondecreasing: %v", p.ErrVar)
		}
	}
	m.Step(42)
	if m.Predict(1).Values[0] != 42 {
		t.Fatal("LAST did not track Step")
	}
}

func TestBMWindow(t *testing.T) {
	f := BMFitter{P: 2}
	m, err := f.Fit([]float64{0, 0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(1).Values[0]; got != 6 {
		t.Fatalf("BM(2) = %v, want mean(4,8)=6", got)
	}
	m.Step(100)
	if got := m.Predict(1).Values[0]; got != 54 {
		t.Fatalf("BM(2) after step = %v, want mean(8,100)=54", got)
	}
}

func TestTooShortSeries(t *testing.T) {
	if _, err := (ARFitter{P: 16}).Fit(make([]float64, 10)); err == nil {
		t.Fatal("AR(16) accepted 10 samples")
	}
	if _, err := (MeanFitter{}).Fit(nil); err == nil {
		t.Fatal("MEAN accepted empty series")
	}
}

func TestARRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := []float64{0.6, -0.3}
	series := genAR(rng, truth, 10, 1, 20000)
	m, err := ARFitter{P: 2}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	am := m.(*armaModel)
	for i, c := range truth {
		if math.Abs(am.phi[i]-c) > 0.05 {
			t.Fatalf("phi = %v, want ~%v", am.phi, truth)
		}
	}
	if math.Abs(am.mu-10) > 0.3 {
		t.Fatalf("mu = %v, want ~10", am.mu)
	}
	if math.Abs(am.sigma2-1) > 0.1 {
		t.Fatalf("sigma2 = %v, want ~1", am.sigma2)
	}
}

// TestARBeatsMeanOnARSignal is the paper's core claim (§5.3): an AR(16)
// predictor's one-step error variance is far below the raw signal
// variance on an autocorrelated signal like host load.
func TestARBeatsMeanOnARSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := genAR(rng, []float64{0.85, 0.1}, 5, 1, 6000)
	train, test := series[:3000], series[3000:]

	m, err := ARFitter{P: 16}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	var se, n float64
	for _, x := range test {
		pred := m.Predict(1).Values[0]
		d := x - pred
		se += d * d
		n++
		m.Step(x)
	}
	mse := se / n
	sigVar := variance(test, mean(test))
	if mse > 0.5*sigVar {
		t.Fatalf("AR(16) one-step MSE %v vs signal variance %v: expected >=50%% reduction", mse, sigVar)
	}
	// The fitted model's own error estimate should be honest (within 2x).
	claimed := m.Predict(1).ErrVar[0]
	if claimed < mse/2 || claimed > mse*2 {
		t.Fatalf("claimed errvar %v vs observed %v: self-characterization off", claimed, mse)
	}
}

func TestARErrVarGrowsWithHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := genAR(rng, []float64{0.9}, 0, 1, 4000)
	m, err := ARFitter{P: 4}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(30)
	for h := 1; h < 30; h++ {
		if p.ErrVar[h] < p.ErrVar[h-1]-1e-9 {
			t.Fatalf("errvar decreasing at horizon %d: %v -> %v", h, p.ErrVar[h-1], p.ErrVar[h])
		}
	}
	// For a stationary AR, far-horizon errvar approaches signal variance.
	sigVar := variance(series, mean(series))
	if p.ErrVar[29] < 0.5*sigVar || p.ErrVar[29] > 2*sigVar {
		t.Fatalf("errvar[30] = %v, signal var = %v", p.ErrVar[29], sigVar)
	}
}

func TestARConstantSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 3.14
	}
	m, err := ARFitter{P: 4}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(5)
	for _, v := range p.Values {
		if math.Abs(v-3.14) > 1e-9 {
			t.Fatalf("constant series predicted %v", v)
		}
	}
}

func TestMARecoversFromMASignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// MA(1): x_t = e_t + 0.7 e_{t-1}
	n := 20000
	series := make([]float64, n)
	prev := rng.NormFloat64()
	for t2 := 0; t2 < n; t2++ {
		e := rng.NormFloat64()
		series[t2] = e + 0.7*prev
		prev = e
	}
	m, err := MAFitter{Q: 1}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	am := m.(*armaModel)
	if math.Abs(am.theta[0]-0.7) > 0.08 {
		t.Fatalf("theta = %v, want ~0.7", am.theta)
	}
	// MA(1) forecasts beyond horizon 1 are the mean; errvar saturates.
	p := m.Predict(5)
	if math.Abs(p.ErrVar[1]-p.ErrVar[4]) > 1e-9 {
		t.Fatalf("MA(1) errvar should saturate after h=2: %v", p.ErrVar)
	}
}

func TestARMAOnePredictsBetterThanMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	series := genAR(rng, []float64{0.7, 0.2}, 1, 1, 8000)
	train, test := series[:5000], series[5000:]
	m, err := ARMAFitter{P: 2, Q: 2}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	var se float64
	for _, x := range test {
		d := x - m.Predict(1).Values[0]
		se += d * d
		m.Step(x)
	}
	mse := se / float64(len(test))
	if sigVar := variance(test, mean(test)); mse > 0.6*sigVar {
		t.Fatalf("ARMA MSE %v vs var %v", mse, sigVar)
	}
}

func TestARIMATracksRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 4000
	series := make([]float64, n)
	series[0] = 100
	for i := 1; i < n; i++ {
		series[i] = series[i-1] + rng.NormFloat64()
	}
	m, err := ARIMAFitter{P: 2, D: 1, Q: 2}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	// One-step forecasts should stay near the walk.
	var se float64
	cnt := 0
	for i := 0; i < 500; i++ {
		x := series[n-1] + rng.NormFloat64()
		series = append(series, x)
		d := x - m.Predict(1).Values[0]
		se += d * d
		cnt++
		m.Step(x)
	}
	mse := se / float64(cnt)
	if mse > 2.5 { // innovation variance is 1; allow slack
		t.Fatalf("ARIMA one-step MSE on random walk = %v", mse)
	}
	// Error variance must grow roughly linearly with horizon.
	p := m.Predict(20)
	if p.ErrVar[19] < 5*p.ErrVar[0] {
		t.Fatalf("ARIMA errvar[20]=%v vs errvar[1]=%v: not integrating", p.ErrVar[19], p.ErrVar[0])
	}
}

func TestARFIMAFitsLongMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Fractionally integrated noise with d=0.3 via its AR(inf)
	// representation truncated at 200 lags.
	w := fracWeights(0.3, 200)
	n := 6000
	x := make([]float64, n+200)
	for t2 := 200; t2 < len(x); t2++ {
		// (1-B)^d x_t = e_t  =>  x_t = e_t - sum_{j>=1} w_j x_{t-j}
		v := rng.NormFloat64()
		for j := 1; j < 200; j++ {
			v -= w[j] * x[t2-j]
		}
		x[t2] = v
	}
	series := x[200:]
	m, err := ARFIMAFitter{P: 2, D: 0.3, Q: 0}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	var se float64
	cnt := 0
	probe := series[:500]
	mm, _ := ARFIMAFitter{P: 2, D: 0.3, Q: 0}.Fit(series[:5000])
	for _, v := range series[5000:5500] {
		d := v - mm.Predict(1).Values[0]
		se += d * d
		cnt++
		mm.Step(v)
	}
	mse := se / float64(cnt)
	if sigVar := variance(series, mean(series)); mse > 0.9*sigVar {
		t.Fatalf("ARFIMA MSE %v vs var %v: no gain from long memory", mse, sigVar)
	}
	_ = m
	_ = probe
}

func TestRefitModelRefits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	series := genAR(rng, []float64{0.5}, 0, 1, 600)
	f := RefitFitter{Base: ARFitter{P: 2}, Interval: 100, History: 300}
	m, err := f.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	rm := m.(*refitModel)
	for i := 0; i < 350; i++ {
		m.Step(rng.NormFloat64())
	}
	if rm.Refits() != 3 {
		t.Fatalf("refits = %d, want 3 after 350 steps at interval 100", rm.Refits())
	}
}

func TestEvaluatorDetectsRegimeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	series := genAR(rng, []float64{0.8}, 0, 1, 3000)
	m, err := ARFitter{P: 4}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(m, 50)
	// In-regime: not degraded.
	for i := 0; i < 200; i++ {
		e.Step(genNext(rng, 0.8, e))
	}
	if e.Degraded(4) {
		t.Fatalf("evaluator degraded in-regime (MSE %v)", e.MSE())
	}
	// Regime change: feed a wildly different signal.
	for i := 0; i < 200; i++ {
		e.Step(50 + 20*rng.NormFloat64())
	}
	if !e.Degraded(4) {
		t.Fatalf("evaluator missed regime change (MSE %v)", e.MSE())
	}
}

// genNext continues an AR(1)-ish signal from the evaluator's last pred.
func genNext(rng *rand.Rand, phi float64, e *Evaluator) float64 {
	return phi*e.lastPred + rng.NormFloat64()
}

func TestPredictClientServer(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	series := genAR(rng, []float64{0.6}, 2, 1, 1000)
	p, err := Predict(ARFitter{P: 4}, series, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != 5 || len(p.ErrVar) != 5 {
		t.Fatalf("prediction shape %d/%d", len(p.Values), len(p.ErrVar))
	}
	for _, v := range p.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite prediction %v", p.Values)
		}
	}
}

func TestStreamDeliversToSubscribers(t *testing.T) {
	m, err := MeanFitter{}.Fit([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(m, 2)
	ch, cancel := s.Subscribe(4)
	defer cancel()
	p := s.Observe(4)
	if len(p.Values) != 2 {
		t.Fatalf("horizon = %d", len(p.Values))
	}
	got := <-ch
	if got.Values[0] != p.Values[0] {
		t.Fatal("subscriber saw a different prediction")
	}
	last, n := s.Last()
	if n != 1 || last.Values[0] != p.Values[0] {
		t.Fatalf("Last() = (%v, %d)", last, n)
	}
}

func TestStreamSlowSubscriberDoesNotBlock(t *testing.T) {
	m, _ := MeanFitter{}.Fit([]float64{1})
	s := NewStream(m, 1)
	_, cancel := s.Subscribe(1)
	defer cancel()
	// Never read; Observe must not deadlock.
	for i := 0; i < 100; i++ {
		s.Observe(float64(i))
	}
}

func TestStreamCancelIdempotent(t *testing.T) {
	m, _ := MeanFitter{}.Fit([]float64{1})
	s := NewStream(m, 1)
	_, cancel := s.Subscribe(1)
	cancel()
	cancel() // must not panic
	s.Observe(2)
}

func TestParseFitterSpecs(t *testing.T) {
	cases := map[string]string{
		"MEAN":               "MEAN",
		"last":               "LAST",
		"BM(32)":             "BM(32)",
		"AR(16)":             "AR(16)",
		"MA(8)":              "MA(8)",
		"ARMA(8,8)":          "ARMA(8,8)",
		"ARIMA(8,1,8)":       "ARIMA(8,1,8)",
		"ARFIMA(4,0.25,0)":   "ARFIMA(4,0.25,0)",
		"REFIT(AR(16),128)":  "REFIT(AR(16),128)",
		"REFIT(ARMA(2,2),5)": "REFIT(ARMA(2,2),5)",
		"AUTOREFIT(AR(8))":   "AUTOREFIT(AR(8))",
	}
	for spec, want := range cases {
		f, err := ParseFitter(spec)
		if err != nil {
			t.Fatalf("ParseFitter(%q): %v", spec, err)
		}
		if f.Name() != want {
			t.Fatalf("ParseFitter(%q).Name() = %q, want %q", spec, f.Name(), want)
		}
	}
	for _, bad := range []string{"", "AR", "AR()", "AR(x)", "ARMA(1)", "WAVELET(3)", "REFIT(AR(4))"} {
		if _, err := ParseFitter(bad); err == nil {
			t.Errorf("ParseFitter(%q) accepted", bad)
		}
	}
}

// Property: every model family returns finite predictions with
// nonnegative, nondecreasing error variance on well-behaved random input.
func TestPropertyAllModelsSane(t *testing.T) {
	fitters := []Fitter{
		MeanFitter{}, LastFitter{}, BMFitter{P: 8},
		ARFitter{P: 4}, MAFitter{Q: 3}, ARMAFitter{P: 2, Q: 2},
		ARIMAFitter{P: 2, D: 1, Q: 2}, ARFIMAFitter{P: 2, D: 0.25, Q: 0},
		RefitFitter{Base: ARFitter{P: 2}, Interval: 50},
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := genAR(rng, []float64{0.5, 0.2}, 5, 2, 400)
		for _, f := range fitters {
			m, err := f.Fit(series)
			if err != nil {
				t.Logf("%s: fit: %v", f.Name(), err)
				return false
			}
			for s := 0; s < 10; s++ {
				m.Step(series[s] + rng.NormFloat64())
			}
			p := m.Predict(8)
			prev := -1.0
			for h := range p.Values {
				if math.IsNaN(p.Values[h]) || math.IsInf(p.Values[h], 0) {
					t.Logf("%s: non-finite value", f.Name())
					return false
				}
				if p.ErrVar[h] < -1e-9 {
					t.Logf("%s: negative errvar %v", f.Name(), p.ErrVar[h])
					return false
				}
				_ = prev
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLevinsonDurbinAgainstKnownAR1(t *testing.T) {
	// For AR(1) with phi=0.5, sigma2=1: acvf(0)=1/(1-0.25)=4/3,
	// acvf(k)=phi^k acvf(0).
	acvf := []float64{4.0 / 3, 2.0 / 3, 1.0 / 3}
	phi, s2, err := levinsonDurbin(acvf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-0.5) > 1e-9 || math.Abs(phi[1]) > 1e-9 {
		t.Fatalf("phi = %v, want [0.5 0]", phi)
	}
	if math.Abs(s2-1) > 1e-9 {
		t.Fatalf("sigma2 = %v, want 1", s2)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solve = %v, want [1 3]", x)
	}
	if _, err := solve([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestRingBehaviour(t *testing.T) {
	r := newRing(3)
	for i := 1; i <= 5; i++ {
		r.push(float64(i))
	}
	if r.len() != 3 {
		t.Fatalf("len = %d", r.len())
	}
	if r.at(1) != 5 || r.at(2) != 4 || r.at(3) != 3 {
		t.Fatalf("at = %v %v %v", r.at(1), r.at(2), r.at(3))
	}
	if r.at(4) != 0 || r.at(0) != 0 {
		t.Fatal("out-of-range lags should be 0")
	}
	vs := r.values()
	if len(vs) != 3 || vs[0] != 3 || vs[2] != 5 {
		t.Fatalf("values = %v", vs)
	}
}

func TestAutoRefitRecoversFromRegimeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	series := genAR(rng, []float64{0.8}, 2, 1, 3000)
	f := AutoRefitFitter{Base: ARFitter{P: 4}, Factor: 4, Window: 50, History: 400}
	m, err := f.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	arm := m.(*autoRefitModel)
	// In-regime: no refits.
	for i := 0; i < 300; i++ {
		m.Step(series[i%len(series)])
	}
	if arm.Refits() != 0 {
		t.Fatalf("refitted %d times in-regime", arm.Refits())
	}
	// Regime change: a wildly different signal triggers a refit, and
	// after the refit the one-step error drops back down.
	newSignal := genAR(rng, []float64{0.8}, 60, 5, 2000)
	for _, x := range newSignal {
		m.Step(x)
	}
	if arm.Refits() == 0 {
		t.Fatal("regime change never triggered a refit")
	}
	var se float64
	probe := genAR(rng, []float64{0.8}, 60, 5, 500)
	for _, x := range probe {
		d := x - m.Predict(1).Values[0]
		se += d * d
		m.Step(x)
	}
	mse := se / float64(len(probe))
	if mse > 3*25 { // innovation variance is 25
		t.Fatalf("post-refit MSE %v: model never adapted", mse)
	}
}

func TestAutoRefitName(t *testing.T) {
	f := AutoRefitFitter{Base: ARFitter{P: 16}}
	if f.Name() != "AUTOREFIT(AR(16))" {
		t.Fatalf("Name = %q", f.Name())
	}
}
