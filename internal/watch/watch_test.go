package watch

import (
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
	"remos/internal/rerr"
	"remos/internal/topology"
)

var (
	hostA = netip.MustParseAddr("10.0.0.1")
	hostB = netip.MustParseAddr("10.0.0.2")
)

// resultWithAvail builds a collector result whose A->B bottleneck
// available bandwidth is exactly avail (capacity 10e6).
func resultWithAvail(avail float64) *collector.Result {
	const cap = 10e6
	g := topology.NewGraph()
	g.AddNode(topology.Node{ID: hostA.String(), Kind: topology.HostNode, Addr: hostA.String()})
	g.AddNode(topology.Node{ID: hostB.String(), Kind: topology.HostNode, Addr: hostB.String()})
	if _, err := g.AddLink(topology.Link{
		From: hostA.String(), To: hostB.String(),
		Capacity: cap, UtilFromTo: cap - avail, UtilToFrom: cap - avail,
	}); err != nil {
		panic(err)
	}
	return &collector.Result{Graph: g}
}

func drain(t *testing.T, sub *Subscription) []Update {
	t.Helper()
	var out []Update
	for {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				return out
			}
			out = append(out, u)
		default:
			return out
		}
	}
}

func TestSpecValidation(t *testing.T) {
	r := New(Config{})
	cases := []Spec{
		{},                       // no addrs, no predicate
		{Src: hostA, Dst: hostB}, // no predicate
		{Src: hostA, Below: 1e6}, // missing dst
		{Src: hostA, Dst: hostB, Below: -1, ChangeFrac: 0.1}, // negative
	}
	for i, sp := range cases {
		if _, err := r.Subscribe(sp); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, sp)
		}
	}
	sub, err := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.1})
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	sub.Close(nil)
}

func TestInitThenEdgeTriggeredBelow(t *testing.T) {
	r := New(Config{})
	sub, err := r.Subscribe(Spec{Src: hostA, Dst: hostB, Below: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close(nil)

	// Baseline above the threshold: the first evaluation pushes "init".
	r.Evaluate(resultWithAvail(8e6))
	us := drain(t, sub)
	if len(us) != 1 || us[0].Reason != ReasonInit || us[0].Avail != 8e6 || us[0].Seq != 1 {
		t.Fatalf("after baseline: %+v", us)
	}

	// Still above: nothing.
	r.Evaluate(resultWithAvail(7e6))
	if us := drain(t, sub); len(us) != 0 {
		t.Fatalf("no crossing, got %+v", us)
	}

	// Crosses under: one "below" push.
	r.Evaluate(resultWithAvail(3e6))
	us = drain(t, sub)
	if len(us) != 1 || us[0].Reason != ReasonBelow || us[0].Avail != 3e6 || us[0].Prev != 8e6 {
		t.Fatalf("after crossing: %+v", us)
	}

	// Stays under: edge-triggered, so silent.
	r.Evaluate(resultWithAvail(2e6))
	if us := drain(t, sub); len(us) != 0 {
		t.Fatalf("level-triggered push: %+v", us)
	}

	// Recovers (silently — no Above predicate), then crosses again:
	// the recovery re-arms the edge, so the watch fires again.
	r.Evaluate(resultWithAvail(3e6))
	r.Evaluate(resultWithAvail(9e6))
	r.Evaluate(resultWithAvail(1e6))
	us = drain(t, sub)
	if len(us) != 1 || us[0].Reason != ReasonBelow {
		t.Fatalf("re-crossing: %+v", us)
	}
}

func TestInitReportsAlreadySatisfiedPredicate(t *testing.T) {
	r := New(Config{})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, Below: 5e6})
	defer sub.Close(nil)
	r.Evaluate(resultWithAvail(2e6)) // already under the threshold
	us := drain(t, sub)
	if len(us) != 1 || us[0].Reason != ReasonBelow {
		t.Fatalf("want immediate below, got %+v", us)
	}
}

func TestAbovePredicate(t *testing.T) {
	r := New(Config{})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, Above: 6e6})
	defer sub.Close(nil)
	r.Evaluate(resultWithAvail(4e6)) // init, under
	r.Evaluate(resultWithAvail(8e6)) // crosses over
	us := drain(t, sub)
	if len(us) != 2 || us[0].Reason != ReasonInit || us[1].Reason != ReasonAbove {
		t.Fatalf("got %+v", us)
	}
}

func TestChangeFraction(t *testing.T) {
	r := New(Config{})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.10})
	defer sub.Close(nil)
	r.Evaluate(resultWithAvail(5e6))   // init
	r.Evaluate(resultWithAvail(5.3e6)) // +6%: silent
	r.Evaluate(resultWithAvail(5.6e6)) // +12% vs last push: fires
	r.Evaluate(resultWithAvail(4.9e6)) // -12.5% vs 5.6e6: fires
	us := drain(t, sub)
	if len(us) != 3 {
		t.Fatalf("got %d updates: %+v", len(us), us)
	}
	for i, want := range []string{ReasonInit, ReasonChange, ReasonChange} {
		if us[i].Reason != want {
			t.Fatalf("update %d reason %q, want %q", i, us[i].Reason, want)
		}
	}
	if us[2].Prev != 5.6e6 {
		t.Fatalf("prev not tracking pushes: %+v", us[2])
	}
}

func TestRelChangeZeroBaseline(t *testing.T) {
	if relChange(0, 0) != 0 {
		t.Fatal("0->0 should be no change")
	}
	if got := relChange(1e6, 0); got < 1e18 { // +Inf
		t.Fatalf("0->1e6 relChange = %v, want +Inf", got)
	}
}

func TestEnsureReleaseRefcounting(t *testing.T) {
	var mu sync.Mutex
	ensures, releases := 0, 0
	r := New(Config{
		EnsureTarget:  func([]netip.Addr) { mu.Lock(); ensures++; mu.Unlock() },
		ReleaseTarget: func([]netip.Addr) { mu.Lock(); releases++; mu.Unlock() },
	})
	spec := Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.1}
	s1, _ := r.Subscribe(spec)
	// Reversed pair shares the refcount slot.
	s2, _ := r.Subscribe(Spec{Src: hostB, Dst: hostA, ChangeFrac: 0.1})
	if ensures != 1 {
		t.Fatalf("ensures = %d after two subscriptions on one pair", ensures)
	}
	s1.Close(nil)
	if releases != 0 {
		t.Fatalf("released while a watch is still active")
	}
	s2.Close(nil)
	if releases != 1 {
		t.Fatalf("releases = %d after last close", releases)
	}
	s2.Close(nil) // idempotent
	if releases != 1 {
		t.Fatalf("double close released twice")
	}
}

func TestSlowConsumerDropsNeverBlocks(t *testing.T) {
	reg := obs.New()
	r := New(Config{Obs: reg})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.001, Buf: 2})
	defer sub.Close(nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			// Alternate far apart so every evaluation fires.
			r.Evaluate(resultWithAvail(float64(1e6 * (1 + i%2))))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Evaluate blocked on a slow consumer")
	}
	drops := reg.Counter("remos_watch_dropped_total", "").Value()
	if drops == 0 {
		t.Fatal("no drops recorded despite a full buffer")
	}
	// Surviving updates still carry increasing seq numbers (gaps reveal
	// the drops).
	us := drain(t, sub)
	if len(us) == 0 {
		t.Fatal("no updates at all")
	}
	last := int64(0)
	for _, u := range us {
		if u.Seq <= last {
			t.Fatalf("seq not increasing: %+v", us)
		}
		last = u.Seq
	}
}

func TestCloseWithReasonDeliversTerminalUpdate(t *testing.T) {
	r := New(Config{})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, Below: 5e6, Buf: 1})
	r.Evaluate(resultWithAvail(2e6)) // fills the 1-deep buffer
	reason := rerr.Tagf(rerr.ErrCollectorUnavailable, "shutting down")
	sub.Close(reason)

	var terminal *Update
	for u := range sub.Updates() {
		u := u
		terminal = &u
	}
	if terminal == nil || terminal.Err == nil {
		t.Fatalf("no terminal update (got %+v)", terminal)
	}
	if !errors.Is(terminal.Err, rerr.ErrCollectorUnavailable) {
		t.Fatalf("terminal err %v lost its type", terminal.Err)
	}
}

func TestRegistryCloseTerminatesAllAndRejectsNew(t *testing.T) {
	r := New(Config{})
	var subs []*Subscription
	for i := 0; i < 4; i++ {
		s, err := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	r.Close(rerr.Tagf(rerr.ErrCollectorUnavailable, "bye"))
	for i, s := range subs {
		sawTerminal := false
		for u := range s.Updates() {
			if u.Err != nil {
				sawTerminal = true
			}
		}
		if !sawTerminal {
			t.Fatalf("sub %d: channel closed without a terminal reason", i)
		}
	}
	if r.Active() != 0 {
		t.Fatalf("Active() = %d after Close", r.Active())
	}
	if _, err := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.1}); err == nil {
		t.Fatal("Subscribe after Close succeeded")
	}
	r.Close(nil) // idempotent
}

func TestEvaluateSkipsForeignGraphs(t *testing.T) {
	r := New(Config{})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.1})
	defer sub.Close(nil)
	g := topology.NewGraph()
	g.AddNode(topology.Node{ID: "10.9.9.9", Kind: topology.HostNode, Addr: "10.9.9.9"})
	r.Evaluate(&collector.Result{Graph: g})
	r.Evaluate(nil)
	r.Evaluate(&collector.Result{})
	if us := drain(t, sub); len(us) != 0 {
		t.Fatalf("evaluated against a graph missing the endpoints: %+v", us)
	}
}

func TestConcurrentSubscribeEvaluateClose(t *testing.T) {
	r := New(Config{})
	stop := make(chan struct{})
	evalDone := make(chan struct{})
	go func() {
		defer close(evalDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Evaluate(resultWithAvail(float64(1e6 * (1 + i%8))))
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s, err := r.Subscribe(Spec{
					Src: hostA, Dst: hostB,
					ChangeFrac: 0.01 * float64(1+i),
					Buf:        4,
				})
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				drain(t, s)
				s.Close(nil)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent churn wedged")
	}
	close(stop)
	<-evalDone
	if r.Active() != 0 {
		t.Fatalf("Active() = %d after all closes", r.Active())
	}
}

func TestMetricsNames(t *testing.T) {
	reg := obs.New()
	r := New(Config{Obs: reg})
	sub, _ := r.Subscribe(Spec{Src: hostA, Dst: hostB, ChangeFrac: 0.1})
	r.Evaluate(resultWithAvail(5e6))
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"remos_watch_active 1",
		"remos_watch_updates_total 1",
		"remos_watch_evals_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	sub.Close(nil)
}
