// Package watch is the server-side subscription registry of the
// continuous-collection plane: clients register predicates over
// flow/topology results ("available bandwidth from A to B drops below
// X", "any change beyond Y%"), the background poll scheduler's fresh
// samples are evaluated against every active watch, and matching
// updates are pushed to subscribers instead of being re-polled — the
// measure-once-push-many shape the paper's collectors were built for.
//
// The registry is transport-agnostic: internal/proto drains each
// Subscription's channel onto the ASCII protocol (UPDATE lines) or the
// HTTP transport (Server-Sent Events), and remos.Connection.Watch is
// the public face. Pushes never block the measurement path — a slow
// subscriber loses intermediate updates (counted), never stalls the
// scheduler.
package watch

import (
	"fmt"
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
	"remos/internal/rerr"
)

// Reason strings carried on every Update.
const (
	// ReasonInit is the first evaluation after subscribing: the baseline
	// value, pushed so the client knows the starting point.
	ReasonInit = "init"
	// ReasonBelow fires when the value crosses under Spec.Below.
	ReasonBelow = "below"
	// ReasonAbove fires when the value crosses over Spec.Above.
	ReasonAbove = "above"
	// ReasonChange fires when the value moves by Spec.ChangeFrac
	// relative to the last pushed value.
	ReasonChange = "change"
)

// Spec describes one subscription: the monitored endpoint pair and the
// predicates that trigger a push. At least one of Below, Above or
// ChangeFrac must be set.
type Spec struct {
	// Src, Dst are the endpoints; the watched value is the bottleneck
	// available bandwidth of the path between them, the same number
	// AvailableBandwidth reports.
	Src, Dst netip.Addr
	// Below pushes when availability drops below this many bits/s
	// (edge-triggered: once per downward crossing). 0 disables.
	Below float64
	// Above pushes when availability rises above this many bits/s
	// (edge-triggered). 0 disables.
	Above float64
	// ChangeFrac pushes whenever availability moves by this fraction
	// relative to the last pushed value (0.1 = 10%). 0 disables.
	ChangeFrac float64
	// Buf is the subscription channel depth (default 16). When the
	// consumer lags this far behind, intermediate updates are dropped.
	Buf int
}

func (s Spec) validate() error {
	if !s.Src.IsValid() || !s.Dst.IsValid() {
		return fmt.Errorf("watch: spec needs valid src and dst addresses")
	}
	if s.Below <= 0 && s.Above <= 0 && s.ChangeFrac <= 0 {
		return fmt.Errorf("watch: spec needs at least one predicate (below/above/change)")
	}
	if s.Below < 0 || s.Above < 0 || s.ChangeFrac < 0 {
		return fmt.Errorf("watch: negative predicate values")
	}
	return nil
}

// Update is one push to a subscriber.
type Update struct {
	// Seq numbers this subscription's pushes from 1; gaps reveal drops.
	Seq int64 `json:"seq"`
	// At is the sample time (the scheduler's clock).
	At time.Time `json:"at"`
	// Src, Dst echo the watched pair.
	Src netip.Addr `json:"src"`
	Dst netip.Addr `json:"dst"`
	// Avail is the bottleneck available bandwidth in bits/s.
	Avail float64 `json:"avail"`
	// Prev is the previously pushed value (0 on the first push).
	Prev float64 `json:"prev,omitempty"`
	// Reason says which predicate fired: init, below, above or change.
	Reason string `json:"reason"`
	// Err, when non-nil, is the terminal update: the typed close reason
	// (internal/rerr taxonomy) delivered just before the channel closes.
	Err error `json:"-"`
}

// Config wires a Registry to its surroundings.
type Config struct {
	// Now supplies sample timestamps (nil means time.Now). Deployments
	// over the simulated scheduler pass its Now.
	Now func() time.Time
	// EnsureTarget, when set, is called with the endpoint pair of every
	// new watch so the poll scheduler starts covering it; ReleaseTarget
	// is called when the last watch on that pair ends. The registry
	// refcounts pairs — Ensure/Release are invoked once per pair, not
	// once per subscription.
	EnsureTarget  func(hosts []netip.Addr)
	ReleaseTarget func(hosts []netip.Addr)
	// DefaultBuf overrides the default subscription channel depth.
	DefaultBuf int
	// Obs, when set, receives the watch-plane gauges and counters.
	Obs *obs.Registry
}

// registryShards is the lock-striping width of the subscription store.
// Subscribe/Close traffic for distinct endpoint pairs lands on distinct
// stripes, so 10k watchers churning do not serialize on one mutex.
const registryShards = 16

// pairGroup collects every subscription watching one (unordered)
// endpoint pair. Grouping is what makes evaluation O(pairs) instead of
// O(subscriptions): the bottleneck bandwidth is computed once per pair
// direction and fanned out to every predicate.
type pairGroup struct {
	subs map[int64]*Subscription
}

// regShard is one stripe: a read-write mutex over the pair groups whose
// keys hash here. Evaluate takes the read side; Subscribe/Close write.
type regShard struct {
	mu    sync.RWMutex
	pairs map[[2]netip.Addr]*pairGroup
}

// Registry holds the active subscriptions and evaluates fresh results
// against them. Safe for concurrent use.
type Registry struct {
	cfg Config

	shards [registryShards]regShard
	nextID atomic.Int64
	active atomic.Int64
	closed atomic.Bool

	mUpdates *obs.Counter
	mDrops   *obs.Counter
	mEvals   *obs.Counter
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	if cfg.DefaultBuf <= 0 {
		cfg.DefaultBuf = 16
	}
	r := &Registry{cfg: cfg}
	for i := range r.shards {
		r.shards[i].pairs = make(map[[2]netip.Addr]*pairGroup)
	}
	cfg.Obs.GaugeFunc("remos_watch_active", "watch subscriptions currently registered", func() float64 {
		return float64(r.Active())
	})
	r.mUpdates = cfg.Obs.Counter("remos_watch_updates_total", "updates pushed to watch subscribers")
	r.mDrops = cfg.Obs.Counter("remos_watch_dropped_total", "updates dropped because a subscriber lagged")
	r.mEvals = cfg.Obs.Counter("remos_watch_evals_total", "subscription predicate evaluations")
	return r
}

// shardFor picks the stripe for an unordered pair key.
func (r *Registry) shardFor(pk [2]netip.Addr) *regShard {
	h := uint32(2166136261)
	for _, a := range pk {
		b := a.As16()
		for _, c := range b {
			h ^= uint32(c)
			h *= 16777619
		}
	}
	return &r.shards[h%registryShards]
}

func (r *Registry) now() time.Time {
	if r.cfg.Now != nil {
		return r.cfg.Now()
	}
	//remoslint:allow wallclock designated fallback: nil Config.Now means the wall clock by contract
	return time.Now()
}

// Subscription is one active watch. Updates arrive on Updates(); the
// channel closes after the terminal update (Err set) or a plain Close.
type Subscription struct {
	// ID is unique within the registry for the registry's lifetime; the
	// wire protocols use it to correlate UPDATE lines with watches.
	ID   int64
	Spec Spec

	reg *Registry
	ch  chan Update

	mu       sync.Mutex
	closed   bool
	seq      int64
	lastPush float64 // last value delivered (Prev on the next push; ChangeFrac baseline)
	lastObs  float64 // last value evaluated, pushed or not (crossing detection)
	hasPush  bool
}

// Updates returns the subscription's delivery channel.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Subscribe registers a watch. The caller must eventually call Close on
// the returned subscription (directly or via Registry.Close).
func (r *Registry) Subscribe(spec Spec) (*Subscription, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Buf <= 0 {
		spec.Buf = r.cfg.DefaultBuf
	}
	sub := &Subscription{ID: r.nextID.Add(1), Spec: spec, reg: r, ch: make(chan Update, spec.Buf)}
	pk := pairKey(spec.Src, spec.Dst)
	sh := r.shardFor(pk)
	sh.mu.Lock()
	if r.closed.Load() {
		sh.mu.Unlock()
		return nil, rerr.Tagf(rerr.ErrCollectorUnavailable, "watch: registry closed")
	}
	g := sh.pairs[pk]
	first := g == nil
	if first {
		g = &pairGroup{subs: make(map[int64]*Subscription)}
		sh.pairs[pk] = g
	}
	g.subs[sub.ID] = sub
	sh.mu.Unlock()
	r.active.Add(1)
	if first && r.cfg.EnsureTarget != nil {
		r.cfg.EnsureTarget([]netip.Addr{spec.Src, spec.Dst})
	}
	return sub, nil
}

func pairKey(a, b netip.Addr) [2]netip.Addr {
	if b.Less(a) {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// Close ends the subscription. A non-nil reason is delivered as a
// terminal update (Err set) before the channel closes; nil closes the
// channel quietly (client-initiated unsubscribe). Idempotent.
func (s *Subscription) Close(reason error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if reason != nil {
		s.seq++
		u := Update{Seq: s.seq, At: s.reg.now(), Src: s.Spec.Src, Dst: s.Spec.Dst, Err: reason}
		// Strongly prefer delivering the close reason: if the buffer is
		// full, evict one stale update to make room. We are the sole
		// sender (evaluate holds s.mu too), so the drain below is safe.
		select {
		case s.ch <- u:
		default:
			select {
			case <-s.ch:
			default:
			}
			select {
			case s.ch <- u:
			default:
			}
		}
	}
	close(s.ch)
	s.mu.Unlock()

	r := s.reg
	pk := pairKey(s.Spec.Src, s.Spec.Dst)
	sh := r.shardFor(pk)
	sh.mu.Lock()
	last := false
	if g := sh.pairs[pk]; g != nil {
		if _, ok := g.subs[s.ID]; ok {
			delete(g.subs, s.ID)
			r.active.Add(-1)
			if len(g.subs) == 0 {
				delete(sh.pairs, pk)
				last = true
			}
		}
	}
	sh.mu.Unlock()
	if last && r.cfg.ReleaseTarget != nil {
		r.cfg.ReleaseTarget([]netip.Addr{s.Spec.Src, s.Spec.Dst})
	}
}

// evaluate runs the predicates against a fresh value and pushes if one
// fires. Returns true if an update was pushed.
func (s *Subscription) evaluate(v float64, at time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	reason := ""
	switch {
	case !s.hasPush:
		// First evaluation: push the baseline, tagged with the predicate
		// it already satisfies so a subscriber watching "below X" on a
		// path that is already under X hears immediately.
		reason = ReasonInit
		if s.Spec.Below > 0 && v < s.Spec.Below {
			reason = ReasonBelow
		} else if s.Spec.Above > 0 && v > s.Spec.Above {
			reason = ReasonAbove
		}
	// Crossings compare against the last *observed* value so a silent
	// recovery re-arms the edge; change compares against the last
	// *pushed* value so slow drifts still accumulate into a push.
	case s.Spec.Below > 0 && v < s.Spec.Below && s.lastObs >= s.Spec.Below:
		reason = ReasonBelow
	case s.Spec.Above > 0 && v > s.Spec.Above && s.lastObs <= s.Spec.Above:
		reason = ReasonAbove
	case s.Spec.ChangeFrac > 0 && relChange(v, s.lastPush) >= s.Spec.ChangeFrac:
		reason = ReasonChange
	}
	s.lastObs = v
	if reason == "" {
		return false
	}
	s.seq++
	u := Update{
		Seq: s.seq, At: at,
		Src: s.Spec.Src, Dst: s.Spec.Dst,
		Avail: v, Prev: s.lastPush, Reason: reason,
	}
	if !s.hasPush {
		u.Prev = 0
	}
	s.lastPush, s.hasPush = v, true
	select {
	case s.ch <- u:
		s.reg.mUpdates.Inc()
	default:
		s.reg.mDrops.Inc()
	}
	return true
}

// relChange is |v-prev| relative to prev, guarding a zero baseline.
func relChange(v, prev float64) float64 {
	denom := math.Abs(prev)
	if denom == 0 {
		if v == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(v-prev) / denom
}

// Evaluate runs every active subscription whose endpoints resolve in
// the result's graph against the freshly collected value. The scheduler
// calls this after each poll; pushes are non-blocking.
//
// Work is grouped by endpoint pair: the bottleneck bandwidth of a pair's
// path is computed once per direction and fanned out to every predicate
// watching it, so 10k watchers on one path cost one graph walk, not 10k.
func (r *Registry) Evaluate(res *collector.Result) {
	if res == nil || res.Graph == nil {
		return
	}
	at := r.now()
	type pairWork struct {
		subs []*Subscription
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		groups := make([]pairWork, 0, len(sh.pairs))
		for _, g := range sh.pairs {
			w := pairWork{subs: make([]*Subscription, 0, len(g.subs))}
			for _, s := range g.subs {
				w.subs = append(w.subs, s)
			}
			groups = append(groups, w)
		}
		sh.mu.RUnlock()
		for _, w := range groups {
			// One bottleneck computation per direction present in the
			// group; both directions of an unordered pair share the walk
			// cache below.
			type dirVal struct {
				ok bool
				v  float64
			}
			vals := make(map[[2]netip.Addr]dirVal, 2)
			for _, s := range w.subs {
				dk := [2]netip.Addr{s.Spec.Src, s.Spec.Dst}
				dv, seen := vals[dk]
				if !seen {
					src, dst := s.Spec.Src.String(), s.Spec.Dst.String()
					if res.Graph.Node(src) != nil && res.Graph.Node(dst) != nil {
						if v, _, err := res.Graph.BottleneckAvail(src, dst); err == nil {
							dv = dirVal{ok: true, v: v}
						}
					}
					vals[dk] = dv
				}
				if !dv.ok {
					continue // this poll covered a different region
				}
				r.mEvals.Inc()
				s.evaluate(dv.v, at)
			}
		}
	}
}

// Active reports the number of registered subscriptions.
func (r *Registry) Active() int {
	return int(r.active.Load())
}

// Close terminates every subscription with the given reason (nil means
// a quiet close) and rejects future Subscribe calls. Idempotent.
func (r *Registry) Close(reason error) {
	if r.closed.Swap(true) {
		return
	}
	var subs []*Subscription
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, g := range sh.pairs {
			for _, s := range g.subs {
				subs = append(subs, s)
			}
		}
		sh.mu.RUnlock()
	}
	for _, s := range subs {
		s.Close(reason)
	}
}
