// Package core assembles complete Remos deployments: given an emulated
// network divided into sites, it attaches SNMP agents to the managed
// devices, instantiates each site's SNMP, Bridge and Benchmark
// collectors, wires benchmark peers between sites, and builds a Master
// Collector per site with a directory covering every site — the
// architecture of the paper's Figure 2. Experiments, examples and
// integration tests all build on it.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/benchcoll"
	"remos/internal/collector/bridgecoll"
	"remos/internal/collector/master"
	"remos/internal/collector/snmpcoll"
	"remos/internal/directory"
	"remos/internal/mib"
	"remos/internal/netsim"
	"remos/internal/obs"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// SiteSpec describes one site to be wired.
type SiteSpec struct {
	// Name identifies the site ("cmu", "eth", ...).
	Name string
	// Switches are the site's managed bridges, handed to the Bridge
	// Collector. Empty means no bridge collector (virtual switches are
	// used for host attachments instead).
	Switches []*netsim.Device
	// BenchHost is the host running the site's Benchmark Collector.
	BenchHost *netsim.Device
	// Prefixes are the IP networks this site is responsible for. Empty
	// derives them from the switches' and bench host's segments.
	Prefixes []netip.Prefix
	// PollInterval overrides the SNMP Collector's poll period.
	PollInterval time.Duration
	// BenchInterval and BenchDuration override benchmark pacing.
	BenchInterval time.Duration
	BenchDuration time.Duration
	// BenchDemand caps probe bandwidth (0 = elastic).
	BenchDemand float64
	// BenchReverse probes peer->local (the download direction).
	BenchReverse bool
	// StreamPredict attaches collector-side streaming predictors to
	// every monitored link (an RPS model spec such as "AR(16)").
	StreamPredict string
}

// Site is one wired site.
type Site struct {
	Name   string
	Spec   SiteSpec
	SNMP   *snmpcoll.Collector
	Bridge *bridgecoll.Collector
	Bench  *benchcoll.Collector
	Master *master.Master

	prefixes []netip.Prefix
}

// Prefixes returns the site's responsibility.
func (s *Site) Prefixes() []netip.Prefix { return s.prefixes }

// Deployment is a full multi-site Remos installation over one emulated
// network.
type Deployment struct {
	Sim      *sim.Sim
	Net      *netsim.Network
	Registry *snmp.Registry
	// Transport is the management-plane transport collectors use.
	Transport snmp.Transport
	Sites     map[string]*Site
	// Directory is the SLP-like collector directory; Finish populates
	// it and every site's Master consults it per query.
	Directory *directory.Service

	siteOrder   []string
	obs         *obs.Registry
	community   string
	parallelism int
	maxVarBinds int
	pipeline    int
	refresh     *sim.Timer
}

// Options tunes deployment-wide behaviour.
type Options struct {
	// SNMPLatency models the management-plane round trip (default 2ms).
	SNMPLatency time.Duration
	// Community is the SNMP community (default "public").
	Community string
	// Parallelism bounds concurrent work in every collector layer:
	// master fan-out, SNMP device walks and polling, and bridge walks.
	// 0 selects GOMAXPROCS; 1 restores the fully serial pipeline.
	Parallelism int
	// MaxVarBinds bounds varbinds per polling Get PDU (0 = default 24).
	MaxVarBinds int
	// Pipeline is the number of SNMP requests kept outstanding per agent
	// (0 or 1 = lock-step).
	Pipeline int
	// Obs, when set, instruments every collector layer (SNMP exchange
	// counters, master fan-out counters, per-collector query counters)
	// into one registry. Nil disables instrumentation.
	Obs *obs.Registry
}

// NewDeployment attaches SNMP agents to every managed device and prepares
// the shared transport. Call AddSite for each site, then Finish.
// AssignSubnets and ComputeRoutes must already have run on the network.
func NewDeployment(s *sim.Sim, n *netsim.Network, opt Options) *Deployment {
	if opt.SNMPLatency <= 0 {
		opt.SNMPLatency = 2 * time.Millisecond
	}
	if opt.Community == "" {
		opt.Community = "public"
	}
	reg := snmp.NewRegistry()
	mib.AttachAll(n, reg)
	tr := &snmp.InProc{
		Registry: reg,
		Latency:  func(string) time.Duration { return opt.SNMPLatency },
	}
	d := &Deployment{
		Sim:       s,
		Net:       n,
		Registry:  reg,
		Transport: tr,
		Sites:     make(map[string]*Site),
	}
	d.community = opt.Community
	d.obs = opt.Obs
	d.parallelism = opt.Parallelism
	d.maxVarBinds = opt.MaxVarBinds
	d.pipeline = opt.Pipeline
	return d
}

// community is stored for collector construction.
func (d *Deployment) client() *snmp.Client {
	cl := snmp.NewClient(d.Transport, d.community)
	cl.Pipeline = d.pipeline
	return cl
}

// AddSite wires one site's collectors. Benchmark peering and masters are
// completed by Finish.
func (d *Deployment) AddSite(spec SiteSpec) (*Site, error) {
	if _, dup := d.Sites[spec.Name]; dup {
		return nil, fmt.Errorf("core: duplicate site %q", spec.Name)
	}
	site := &Site{Name: spec.Name, Spec: spec}

	// Responsibility: explicit, or derived from member devices.
	site.prefixes = spec.Prefixes
	if len(site.prefixes) == 0 {
		seen := map[netip.Prefix]bool{}
		addFrom := func(dev *netsim.Device) {
			if dev == nil {
				return
			}
			for _, ifc := range dev.Ifaces() {
				if ifc.Prefix.IsValid() && !seen[ifc.Prefix] {
					seen[ifc.Prefix] = true
					site.prefixes = append(site.prefixes, ifc.Prefix)
				}
				// Switch ports carry no prefix; look through to
				// attached stations' prefixes.
				if peer := ifc.Peer(); peer != nil && peer.Prefix.IsValid() && !seen[peer.Prefix] {
					seen[peer.Prefix] = true
					site.prefixes = append(site.prefixes, peer.Prefix)
				}
			}
		}
		for _, sw := range spec.Switches {
			addFrom(sw)
		}
		addFrom(spec.BenchHost)
	}

	// Bridge collector.
	if len(spec.Switches) > 0 {
		var addrs []netip.Addr
		for _, sw := range spec.Switches {
			addrs = append(addrs, sw.ManagementAddr())
		}
		site.Bridge = bridgecoll.New(bridgecoll.Config{
			Client:      d.client(),
			Sched:       d.Sim,
			Switches:    addrs,
			Parallelism: d.parallelism,
			Obs:         d.obs,
		})
		if err := site.Bridge.Start(); err != nil {
			return nil, fmt.Errorf("core: site %s bridge: %w", spec.Name, err)
		}
	}

	// SNMP collector.
	site.SNMP = snmpcoll.New(snmpcoll.Config{
		Name:      "snmp-" + spec.Name,
		Transport: d.Transport,
		Community: d.community,
		Sched:     d.Sim,
		GatewayOf: func(h netip.Addr) (netip.Addr, bool) {
			dev := d.Net.DeviceByIP(h)
			if dev == nil || !dev.Gateway.IsValid() {
				return netip.Addr{}, false
			}
			return dev.Gateway, true
		},
		ResolveMAC: func(ip netip.Addr) (collector.MAC, bool) {
			ifc := d.Net.IfaceByIP(ip)
			if ifc == nil {
				return collector.MAC{}, false
			}
			return collector.MAC(ifc.MAC), true
		},
		Bridge:        site.Bridge,
		PollInterval:  spec.PollInterval,
		StreamPredict: spec.StreamPredict,
		Parallelism:   d.parallelism,
		MaxVarBinds:   d.maxVarBinds,
		Pipeline:      d.pipeline,
		Obs:           d.obs,
	})

	d.Sites[spec.Name] = site
	d.siteOrder = append(d.siteOrder, spec.Name)
	return site, nil
}

// Finish wires benchmark collectors between all site pairs and builds a
// Master Collector per site whose directory covers every site.
func (d *Deployment) Finish() error {
	// Benchmark collectors with full peering.
	for _, name := range d.siteOrder {
		site := d.Sites[name]
		if site.Spec.BenchHost == nil {
			continue
		}
		var peers []benchcoll.Peer
		for _, other := range d.siteOrder {
			if other == name || d.Sites[other].Spec.BenchHost == nil {
				continue
			}
			peers = append(peers, benchcoll.Peer{
				Name: other,
				Host: d.Sites[other].Spec.BenchHost.Addr(),
			})
		}
		site.Bench = benchcoll.New(benchcoll.Config{
			LocalName:     name,
			LocalHost:     site.Spec.BenchHost.Addr(),
			Peers:         peers,
			Prober:        &benchcoll.NetsimProber{Net: d.Net},
			Sched:         d.Sim,
			Interval:      site.Spec.BenchInterval,
			ProbeDuration: site.Spec.BenchDuration,
			ProbeDemand:   site.Spec.BenchDemand,
			ProbeReverse:  site.Spec.BenchReverse,
		})
	}
	// Directory: every site's SNMP collector registers its
	// responsibility, SLP-style (Section 3.1.4). Masters consult the
	// directory per query, so late registrations and expiries take
	// effect without reconfiguration. A deployment using the wire
	// protocols registers endpoint adverts instead (see package
	// directory).
	d.Directory = directory.New(d.Sim)
	registerAll := func() error {
		for _, name := range d.siteOrder {
			site := d.Sites[name]
			var bench netip.Addr
			if site.Spec.BenchHost != nil {
				bench = site.Spec.BenchHost.Addr()
			}
			if err := d.Directory.Register(directory.Advert{
				Name:      name,
				Prefixes:  site.prefixes,
				Collector: site.SNMP,
				BenchHost: bench,
			}, 0); err != nil {
				return err
			}
		}
		return nil
	}
	if err := registerAll(); err != nil {
		return err
	}
	// SLP-style lifetime refresh: live collectors re-register before
	// their advertisements age out.
	d.refresh = d.Sim.Every(directory.DefaultTTL/2, func() { registerAll() })
	// Masters: one per site, all sharing the deployment directory.
	for _, name := range d.siteOrder {
		site := d.Sites[name]
		var wide collector.Interface
		if site.Bench != nil {
			wide = site.Bench
		}
		site.Master = master.New(master.Config{
			Name:        "master-" + name,
			Directory:   d.Directory,
			WideArea:    wide,
			Parallelism: d.parallelism,
			Obs:         d.obs,
		})
	}
	return nil
}

// MeasureAllBenchmarks drives every site's benchmark collector through one
// full measurement round (simulated time advances).
func (d *Deployment) MeasureAllBenchmarks() error {
	for _, name := range d.siteOrder {
		if b := d.Sites[name].Bench; b != nil {
			if err := b.MeasureAll(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stop halts all periodic activity.
func (d *Deployment) Stop() {
	if d.refresh != nil {
		d.refresh.Stop()
	}
	for _, s := range d.Sites {
		if s.SNMP != nil {
			s.SNMP.Stop()
		}
		if s.Bridge != nil {
			s.Bridge.Stop()
		}
		if s.Bench != nil {
			s.Bench.Stop()
		}
	}
}
