package core

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/topology"
)

// twoSites builds a CMU/ETH-like pair of sites joined by a 10 Mbit WAN:
//
//	cmu: app1, app2, bench-cmu - swC - rC ==WAN== rE - swE - bench-eth, srv1
func twoSites(t testing.TB) (*Deployment, map[string]*netsim.Device) {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{}
	for _, h := range []string{"app1", "app2", "benchC", "benchE", "srv1"} {
		d[h] = n.AddHost(h)
	}
	d["swC"] = n.AddSwitch("swC")
	d["swE"] = n.AddSwitch("swE")
	d["rC"] = n.AddRouter("rC")
	d["rE"] = n.AddRouter("rE")
	n.Connect(d["app1"], d["swC"], 100e6, time.Millisecond)
	n.Connect(d["app2"], d["swC"], 100e6, time.Millisecond)
	n.Connect(d["benchC"], d["swC"], 100e6, time.Millisecond)
	n.Connect(d["swC"], d["rC"], 1e9, time.Millisecond)
	n.Connect(d["rC"], d["rE"], 10e6, 40*time.Millisecond)
	n.Connect(d["rE"], d["swE"], 1e9, time.Millisecond)
	n.Connect(d["benchE"], d["swE"], 100e6, time.Millisecond)
	n.Connect(d["srv1"], d["swE"], 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()

	dep := NewDeployment(s, n, Options{})
	if _, err := dep.AddSite(SiteSpec{
		Name:      "cmu",
		Switches:  []*netsim.Device{d["swC"]},
		BenchHost: d["benchC"],
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.AddSite(SiteSpec{
		Name:      "eth",
		Switches:  []*netsim.Device{d["swE"]},
		BenchHost: d["benchE"],
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Finish(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Stop)
	return dep, d
}

func TestSitePrefixesDerived(t *testing.T) {
	dep, d := twoSites(t)
	cmu := dep.Sites["cmu"]
	found := false
	for _, p := range cmu.Prefixes() {
		if p.Contains(d["app1"].Addr()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("cmu prefixes %v do not cover app1 %v", cmu.Prefixes(), d["app1"].Addr())
	}
}

func TestIntraSiteQueryThroughMaster(t *testing.T) {
	dep, d := twoSites(t)
	m := dep.Sites["cmu"].Master
	res, err := m.Collect(collector.Query{
		Hosts: []netip.Addr{d["app1"].Addr(), d["app2"].Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// app1 - swC - app2.
	if _, err := res.Graph.Path(d["app1"].Addr().String(), d["app2"].Addr().String()); err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Graph.Nodes() {
		if n.ID == "wan:cmu-eth" {
			t.Fatal("intra-site query pulled in the WAN")
		}
	}
}

func TestCrossSiteQueryEndToEnd(t *testing.T) {
	dep, d := twoSites(t)
	if err := dep.MeasureAllBenchmarks(); err != nil {
		t.Fatal(err)
	}
	m := dep.Sites["cmu"].Master
	res, err := m.Collect(collector.Query{
		Hosts: []netip.Addr{d["app1"].Addr(), d["srv1"].Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	bw, path, err := res.Graph.BottleneckAvail(d["app1"].Addr().String(), d["srv1"].Addr().String())
	if err != nil {
		t.Fatalf("no end-to-end path: %v", err)
	}
	// The WAN benchmark measured ~10 Mbit/s; it is the bottleneck.
	if math.Abs(bw-10e6) > 1e6 {
		t.Fatalf("end-to-end available bandwidth %v, want ~10e6 (path %v)", bw, path)
	}
}

func TestCrossSiteFlowQueryOnMergedGraph(t *testing.T) {
	dep, d := twoSites(t)
	if err := dep.MeasureAllBenchmarks(); err != nil {
		t.Fatal(err)
	}
	m := dep.Sites["cmu"].Master
	res, err := m.Collect(collector.Query{
		Hosts: []netip.Addr{d["app1"].Addr(), d["app2"].Addr(), d["srv1"].Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := res.Graph.FlowAlloc([]topology.FlowRequest{
		{Src: d["app1"].Addr().String(), Dst: d["srv1"].Addr().String()},
		{Src: d["app2"].Addr().String(), Dst: d["srv1"].Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both flows share the ~10 Mbit WAN: ~5 Mbit each.
	for i, p := range preds {
		if math.Abs(p.Available-5e6) > 1e6 {
			t.Fatalf("flow %d predicted %v, want ~5e6", i, p.Available)
		}
	}
}

func TestBenchmarkRoundsAccumulate(t *testing.T) {
	dep, _ := twoSites(t)
	// Periodic probing on the default 30s interval.
	dep.Sim.RunFor(3 * time.Minute)
	if r := dep.Sites["cmu"].Bench.Rounds(); r < 3 {
		t.Fatalf("cmu bench rounds = %d, want >=3 after 3 minutes", r)
	}
}

func TestDuplicateSiteRejected(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	h := n.AddHost("h")
	sw := n.AddSwitch("sw")
	n.Connect(h, sw, 1e6, 0)
	n.AssignSubnets()
	n.ComputeRoutes()
	dep := NewDeployment(s, n, Options{})
	if _, err := dep.AddSite(SiteSpec{Name: "x", Switches: []*netsim.Device{sw}}); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.AddSite(SiteSpec{Name: "x"}); err == nil {
		t.Fatal("duplicate site accepted")
	}
}
