package core

import (
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"remos/internal/collector"
	"remos/internal/netsim"
)

var errDiverged = errors.New("concurrent master answer diverged from baseline")

// addrsOf resolves device names to their primary addresses.
func addrsOf(d map[string]*netsim.Device, names ...string) []netip.Addr {
	out := make([]netip.Addr, len(names))
	for i, n := range names {
		out[i] = d[n].Addr()
	}
	return out
}

// TestConcurrentPipelineStress overlaps Master queries, direct SNMP
// collector queries, and bridge station searches from many goroutines
// against one live deployment. Every master answer must be identical —
// the tentpole's determinism guarantee — and the whole run must be clean
// under the race detector.
func TestConcurrentPipelineStress(t *testing.T) {
	dep, d := twoSites(t)
	defer dep.Stop()
	if err := dep.MeasureAllBenchmarks(); err != nil {
		t.Fatal(err)
	}

	q := collector.Query{Hosts: addrsOf(d, "app1", "app2", "srv1")}
	m := dep.Sites["cmu"].Master
	baseline, err := m.Collect(q)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := baseline.Graph.EncodeText(&sb); err != nil {
		t.Fatal(err)
	}
	want := sb.String()

	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	// Master queries: all answers byte-identical to the baseline.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := m.Collect(q)
				if err != nil {
					errCh <- err
					return
				}
				var b strings.Builder
				if err := res.Graph.EncodeText(&b); err != nil {
					errCh <- err
					return
				}
				if b.String() != want {
					errCh <- errDiverged
					return
				}
			}
		}()
	}
	// Direct SNMP collector queries on both sites, overlapping the
	// master fan-out that reaches the same collectors.
	for _, site := range []string{"cmu", "eth"} {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			sq := collector.Query{Hosts: addrsOf(d, "app1", "srv1")}
			for r := 0; r < rounds; r++ {
				if _, err := dep.Sites[site].SNMP.Collect(sq); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Bridge searches force re-walks concurrent with everything above.
	for _, host := range []string{"app2", "srv1"} {
		host := host
		wg.Add(1)
		go func() {
			defer wg.Done()
			mac := collector.MAC(dep.Net.IfaceByIP(d[host].Addr()).MAC)
			br := dep.Sites["cmu"].Bridge
			if host == "srv1" {
				br = dep.Sites["eth"].Bridge
			}
			for r := 0; r < rounds; r++ {
				if _, _, err := br.SearchStation(mac); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
