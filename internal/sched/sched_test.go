package sched

import (
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/collector/qcache"
	"remos/internal/obs"
	"remos/internal/sim"
	"remos/internal/topology"
)

var (
	hostA = netip.MustParseAddr("10.0.0.1")
	hostB = netip.MustParseAddr("10.0.0.2")
)

// scriptColl is a synchronous fake collector; util is read per Collect
// so tests can script utilization trajectories.
type scriptColl struct {
	calls atomic.Int64
	mu    sync.Mutex
	util  float64
}

func (c *scriptColl) Name() string { return "script" }

func (c *scriptColl) setUtil(u float64) {
	c.mu.Lock()
	c.util = u
	c.mu.Unlock()
}

func (c *scriptColl) Collect(q collector.Query) (*collector.Result, error) {
	c.calls.Add(1)
	c.mu.Lock()
	util := c.util
	c.mu.Unlock()
	g := topology.NewGraph()
	for _, h := range q.Hosts {
		g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode, Addr: h.String()})
	}
	if len(q.Hosts) >= 2 {
		g.AddLink(topology.Link{
			From: q.Hosts[0].String(), To: q.Hosts[1].String(),
			Capacity: 10e6, UtilFromTo: util, UtilToFrom: util / 2,
		})
	}
	return &collector.Result{Graph: g}, nil
}

func newTestSched(t *testing.T, s sim.Scheduler, coll collector.Interface, mut func(*Config)) *Scheduler {
	t.Helper()
	cfg := Config{
		Collector:    coll,
		Sched:        s,
		BaseInterval: 2 * time.Second,
		MinInterval:  500 * time.Millisecond,
		MaxInterval:  16 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	sc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Stop)
	return sc
}

func TestStableReadingsWidenInterval(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	sc := newTestSched(t, s, coll, nil)
	hosts := []netip.Addr{hostA, hostB}
	sc.AddTarget(hosts)
	s.RunFor(5 * time.Minute)
	if got := sc.Interval(hosts); got != 16*time.Second {
		t.Fatalf("stable target interval = %v, want the 16s max", got)
	}
	if coll.calls.Load() == 0 {
		t.Fatal("no polls ran")
	}
}

func TestMovementNarrowsInterval(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	sc := newTestSched(t, s, coll, nil)
	hosts := []netip.Addr{hostA, hostB}
	sc.AddTarget(hosts)
	s.RunFor(5 * time.Minute) // settle at max
	// Every poll now sees a swing of 40% of capacity.
	stop := s.Every(time.Second, func() {
		if s.Now().Second()%2 == 0 {
			coll.setUtil(8e6)
		} else {
			coll.setUtil(4e6)
		}
	})
	defer stop.Stop()
	s.RunFor(5 * time.Minute)
	// Once the interval narrows under the 1s swing period, some polls
	// land inside the same second and see no change, so the steady state
	// oscillates just above the minimum rather than pinning to it.
	if got := sc.Interval(hosts); got > time.Second {
		t.Fatalf("churning target interval = %v, want it driven near the 500ms min", got)
	}
}

func TestTargetRefcounting(t *testing.T) {
	s := sim.NewSim()
	sc := newTestSched(t, s, &scriptColl{}, nil)
	hosts := []netip.Addr{hostA, hostB}
	sc.AddTarget(hosts)
	sc.AddTarget([]netip.Addr{hostB, hostA}) // same set, other order
	if sc.Targets() != 1 {
		t.Fatalf("Targets() = %d, want the orders to share one slot", sc.Targets())
	}
	sc.RemoveTarget(hosts)
	if sc.Targets() != 1 {
		t.Fatal("removed while a reference remained")
	}
	sc.RemoveTarget(hosts)
	if sc.Targets() != 0 {
		t.Fatalf("Targets() = %d after final remove", sc.Targets())
	}
	sc.RemoveTarget(hosts) // over-release is a no-op
	if sc.Interval(hosts) != 0 {
		t.Fatal("Interval nonzero for unregistered target")
	}
}

func TestRemoveStopsPolling(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	sc := newTestSched(t, s, coll, nil)
	hosts := []netip.Addr{hostA, hostB}
	sc.AddTarget(hosts)
	s.RunFor(time.Minute)
	sc.RemoveTarget(hosts)
	before := coll.calls.Load()
	s.RunFor(5 * time.Minute)
	if coll.calls.Load() != before {
		t.Fatalf("polls continued after RemoveTarget (%d -> %d)", before, coll.calls.Load())
	}
}

func TestStopIsIdempotentAndHaltsPolls(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	sc := newTestSched(t, s, coll, nil)
	sc.AddTarget([]netip.Addr{hostA, hostB})
	s.RunFor(time.Minute)
	sc.Stop()
	sc.Stop()
	before := coll.calls.Load()
	s.RunFor(5 * time.Minute)
	if coll.calls.Load() != before {
		t.Fatal("polls continued after Stop")
	}
	sc.AddTarget([]netip.Addr{hostA, hostB}) // ignored after Stop
	if sc.Targets() != 0 {
		t.Fatal("AddTarget accepted after Stop")
	}
}

func TestHistoryAccumulatesBothDirections(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	coll.setUtil(3e6)
	sc := newTestSched(t, s, coll, nil)
	sc.AddTarget([]netip.Addr{hostA, hostB})
	s.RunFor(time.Minute)
	fwd := sc.History().Get(collector.HistKey{From: hostA.String(), To: hostB.String()})
	rev := sc.History().Get(collector.HistKey{From: hostB.String(), To: hostA.String()})
	if len(fwd) == 0 || len(rev) == 0 {
		t.Fatalf("history fwd=%d rev=%d samples, want both directions", len(fwd), len(rev))
	}
	if fwd[len(fwd)-1].Bits != 3e6 || rev[len(rev)-1].Bits != 1.5e6 {
		t.Fatalf("sample values fwd=%v rev=%v", fwd[len(fwd)-1].Bits, rev[len(rev)-1].Bits)
	}
}

func TestInvalidateRunsBeforeEachPoll(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	var invalidations atomic.Int64
	sc := newTestSched(t, s, coll, func(c *Config) {
		c.Invalidate = func(hosts []netip.Addr) {
			if len(hosts) != 2 {
				t.Errorf("invalidate got %v", hosts)
			}
			invalidations.Add(1)
		}
	})
	sc.AddTarget([]netip.Addr{hostA, hostB})
	s.RunFor(time.Minute)
	if invalidations.Load() != coll.calls.Load() {
		t.Fatalf("%d invalidations for %d polls, want 1:1", invalidations.Load(), coll.calls.Load())
	}
}

// TestPollThroughCacheKeepsQueriesWarm is the heart of the warm-query
// guarantee: the scheduler collects through the qcache with the same
// canonical key a client bandwidth query produces, so after each poll a
// client query is answered without touching the inner collector.
func TestPollThroughCacheKeepsQueriesWarm(t *testing.T) {
	s := sim.NewSim()
	inner := &scriptColl{}
	cache := qcache.New(inner, qcache.Config{TTL: time.Hour, Now: s.Now})
	sc := newTestSched(t, s, cache, func(c *Config) {
		c.Collector = cache
		c.Invalidate = func(hosts []netip.Addr) {
			cache.Invalidate(qcache.Key(collector.Query{Hosts: hosts}))
		}
	})
	sc.AddTarget([]netip.Addr{hostA, hostB})
	s.RunFor(time.Minute)

	polls := inner.calls.Load()
	if polls == 0 {
		t.Fatal("no polls")
	}
	// A client query for the covered pair (either host order) is warm.
	for _, hosts := range [][]netip.Addr{{hostA, hostB}, {hostB, hostA}} {
		if _, err := cache.Collect(collector.Query{Hosts: hosts}); err != nil {
			t.Fatal(err)
		}
	}
	if inner.calls.Load() != polls {
		t.Fatalf("client query reached the inner collector (%d -> %d exchanges)",
			polls, inner.calls.Load())
	}
	// And each poll really did refresh: every poll invalidated then
	// re-collected, so inner calls == polls issued by the scheduler.
	if got := sc.History().Get(collector.HistKey{From: hostA.String(), To: hostB.String()}); len(got) == 0 {
		t.Fatal("no samples despite cache in the path")
	}
}

func TestStreamingPredictorComesAlive(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	coll.setUtil(2e6)
	sc := newTestSched(t, s, coll, func(c *Config) {
		c.Predict = "AR(8)"
		c.PredictMinFit = 16
		c.PredictHorizon = 4
		c.MaxInterval = 2 * time.Second // keep sampling fast
	})
	sc.AddTarget([]netip.Addr{hostA, hostB})
	// Vary the signal so the fit isn't degenerate.
	i := 0
	drift := s.Every(time.Second, func() {
		i++
		coll.setUtil(2e6 + 1e5*float64(i%7))
	})
	defer drift.Stop()
	s.RunFor(3 * time.Minute)

	k := collector.HistKey{From: hostA.String(), To: hostB.String()}
	fc, ok := sc.Forecast(k)
	if !ok {
		t.Fatalf("no live predictor after %d polls", coll.calls.Load())
	}
	if len(fc.Values) != 4 {
		t.Fatalf("forecast depth %d, want 4", len(fc.Values))
	}
	if _, ok := sc.Forecast(collector.HistKey{From: "x", To: "y"}); ok {
		t.Fatal("forecast for unmonitored edge")
	}
}

func TestOnResultDeliversEveryPoll(t *testing.T) {
	s := sim.NewSim()
	coll := &scriptColl{}
	var results atomic.Int64
	sc := newTestSched(t, s, coll, func(c *Config) {
		c.OnResult = func(hosts []netip.Addr, res *collector.Result) {
			if res == nil || res.Graph == nil {
				t.Error("OnResult without a graph")
			}
			results.Add(1)
		}
	})
	sc.AddTarget([]netip.Addr{hostA, hostB})
	s.RunFor(time.Minute)
	if results.Load() != coll.calls.Load() {
		t.Fatalf("OnResult ran %d times for %d polls", results.Load(), coll.calls.Load())
	}
}

func TestMetricsExported(t *testing.T) {
	s := sim.NewSim()
	reg := obs.New()
	sc := newTestSched(t, s, &scriptColl{}, func(c *Config) { c.Obs = reg })
	sc.AddTarget([]netip.Addr{hostA, hostB})
	s.RunFor(time.Minute)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"remos_sched_polls_total",
		"remos_sched_samples_total",
		"remos_sched_targets 1",
		`remos_sched_poll_interval_seconds{target="10.0.0.1,10.0.0.2"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}
