// Package sched is the background poll scheduler of the continuous
// collection plane: remosd runs one per deployment, and instead of
// measuring only when a query arrives, the scheduler polls each
// registered target (a host set, typically a watched endpoint pair)
// on an adaptive interval — widening while readings are stable,
// narrowing when the network moves — so the system converts from
// N-clients-polling to measure-once-push-many.
//
// Every poll appends per-edge utilization samples into a
// collector.History, feeds long-lived rps.Stream predictors per
// monitored edge (the paper's §2.3 streaming configuration, now with a
// real producer), and invalidates-then-refreshes the qcache entries it
// supersedes: because the scheduler collects *through* the cache with
// the same canonical key a client query produces, hot queries are
// answered from warm state without triggering new SNMP exchanges.
// Fresh results are handed to the watch registry (Config.OnResult) for
// predicate evaluation and push delivery.
package sched

import (
	"context"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
	"remos/internal/rps"
	"remos/internal/sim"
	"remos/internal/snapshot"
)

// Config wires a Scheduler.
type Config struct {
	// Collector answers the polls — normally the qcache-wrapped master,
	// so each poll re-warms the exact entry client queries hit.
	Collector collector.Interface
	// Invalidate, when set, is called with the target's hosts just
	// before each poll so superseded cache entries are dropped and the
	// poll's answer becomes the new warm state. remosd passes a closure
	// over qcache.Invalidate.
	Invalidate func(hosts []netip.Addr)
	// Sched supplies timers and the clock: the simulated scheduler in
	// tests and experiments, real time in remosd.
	Sched sim.Scheduler
	// BaseInterval is a new target's starting poll interval (default
	// 2s). MinInterval/MaxInterval bound adaptation (defaults Base/4
	// and 8*Base).
	BaseInterval time.Duration
	MinInterval  time.Duration
	MaxInterval  time.Duration
	// Jitter spreads poll times by ±this fraction of the interval
	// (default 0.1) so targets never phase-lock. Jitter is drawn from a
	// per-target seeded source: deterministic under the simulated
	// clock.
	Jitter float64
	// ChangeFrac is the per-edge utilization change, relative to link
	// capacity, that counts as "the network moved" (default 0.05).
	ChangeFrac float64
	// Seed perturbs the per-target jitter sources.
	Seed int64
	// HistoryLen bounds retained samples per edge (default 512).
	HistoryLen int
	// Predict, when non-empty, is the RPS model spec (e.g. "AR(16)")
	// fitted per monitored edge once PredictMinFit samples (default 64)
	// accumulate, then advanced every poll; PredictHorizon (default 8)
	// is the forecast depth.
	Predict        string
	PredictMinFit  int
	PredictHorizon int
	// OnResult receives every successful poll's result (already a
	// private clone) — the watch registry's Evaluate hooks in here.
	OnResult func(hosts []netip.Addr, res *collector.Result)
	// Snapshot, when set, receives every successful poll via Apply, so
	// the versioned snapshot plane advances one epoch per poll and
	// snapshot-backed queries stay fresh without their own walks.
	Snapshot *snapshot.Store
	// Obs, when set, receives the scheduler's counters and per-target
	// poll-interval gauges.
	Obs *obs.Registry
}

// Scheduler runs adaptive background poll loops. Safe for concurrent
// use; poll callbacks run on the sim.Scheduler's goroutine(s).
type Scheduler struct {
	cfg    Config
	hist   *collector.History
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	targets map[string]*target
	streams map[collector.HistKey]*streamRec
	closed  bool

	mPolls   *obs.Counter
	mErrors  *obs.Counter
	mSamples *obs.Counter
}

// target is one registered host set with its adaptive poll state.
type target struct {
	key      string
	hosts    []netip.Addr
	refs     int
	interval time.Duration
	timer    *sim.Timer
	rng      *rand.Rand
	last     map[collector.HistKey]float64 // per-edge utilization at previous poll
	gIval    *obs.Gauge
}

// streamRec is one edge's long-lived streaming predictor.
type streamRec struct {
	mu     sync.Mutex
	stream *rps.Stream
}

// New validates the config and returns a scheduler with no targets.
func New(cfg Config) (*Scheduler, error) {
	if cfg.BaseInterval <= 0 {
		cfg.BaseInterval = 2 * time.Second
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = cfg.BaseInterval / 4
	}
	if cfg.MaxInterval <= 0 {
		cfg.MaxInterval = 8 * cfg.BaseInterval
	}
	if cfg.MaxInterval < cfg.BaseInterval {
		cfg.MaxInterval = cfg.BaseInterval
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 0.1
	}
	if cfg.ChangeFrac <= 0 {
		cfg.ChangeFrac = 0.05
	}
	if cfg.HistoryLen <= 0 {
		cfg.HistoryLen = 512
	}
	if cfg.PredictMinFit <= 0 {
		cfg.PredictMinFit = 64
	}
	if cfg.PredictHorizon <= 0 {
		cfg.PredictHorizon = 8
	}
	if cfg.Predict != "" {
		if _, err := rps.ParseFitter(cfg.Predict); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		hist:    collector.NewHistory(cfg.HistoryLen),
		ctx:     ctx,
		cancel:  cancel,
		targets: make(map[string]*target),
		streams: make(map[collector.HistKey]*streamRec),
	}
	s.mPolls = cfg.Obs.Counter("remos_sched_polls_total", "background polls issued by the scheduler")
	s.mErrors = cfg.Obs.Counter("remos_sched_poll_errors_total", "background polls that failed")
	s.mSamples = cfg.Obs.Counter("remos_sched_samples_total", "per-edge samples appended by the scheduler")
	cfg.Obs.GaugeFunc("remos_sched_targets", "host sets under background polling", func() float64 {
		return float64(s.Targets())
	})
	return s, nil
}

// targetKey canonicalizes a host set exactly like qcache.Key does for a
// flagless query: sorted addresses joined by commas.
func targetKey(hosts []netip.Addr) string {
	ss := make([]string, len(hosts))
	for i, h := range hosts {
		ss[i] = h.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, ",")
}

// AddTarget registers a host set for background polling. Targets are
// refcounted: matching AddTarget/RemoveTarget calls nest, and the poll
// loop runs while the count is positive. The first poll fires almost
// immediately (a jittered fraction of MinInterval).
func (s *Scheduler) AddTarget(hosts []netip.Addr) {
	if len(hosts) == 0 {
		return
	}
	key := targetKey(hosts)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if t := s.targets[key]; t != nil {
		t.refs++
		return
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	t := &target{
		key:      key,
		hosts:    append([]netip.Addr(nil), hosts...),
		refs:     1,
		interval: s.cfg.BaseInterval,
		rng:      rand.New(rand.NewSource(s.cfg.Seed ^ int64(h.Sum64()))),
		last:     make(map[collector.HistKey]float64),
		gIval:    s.cfg.Obs.Gauge("remos_sched_poll_interval_seconds", "current adaptive poll interval", "target", key),
	}
	t.gIval.Set(t.interval.Seconds())
	s.targets[key] = t
	first := time.Duration(t.rng.Float64() * float64(s.cfg.MinInterval))
	t.timer = s.cfg.Sched.After(first, func() { s.poll(t) })
}

// RemoveTarget drops one reference; at zero the poll loop stops.
func (s *Scheduler) RemoveTarget(hosts []netip.Addr) {
	key := targetKey(hosts)
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.targets[key]
	if t == nil {
		return
	}
	if t.refs--; t.refs > 0 {
		return
	}
	if t.timer != nil {
		t.timer.Stop()
	}
	t.gIval.Set(0)
	delete(s.targets, key)
}

// poll runs one collection for a target, feeds history/streams/watches,
// adapts the interval, and reschedules itself.
func (s *Scheduler) poll(t *target) {
	s.mu.Lock()
	if s.closed || s.targets[t.key] != t {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	if s.cfg.Invalidate != nil {
		s.cfg.Invalidate(t.hosts)
	}
	q := collector.Query{Hosts: t.hosts}.WithContext(s.ctx)
	res, err := s.cfg.Collector.Collect(q)
	s.mPolls.Inc()

	changed := false
	if err != nil {
		s.mErrors.Inc()
	} else if res != nil && res.Graph != nil {
		now := s.cfg.Sched.Now()
		maxChange := 0.0
		for _, l := range res.Graph.Links() {
			if l.Capacity <= 0 {
				continue
			}
			for _, dir := range [2]struct {
				k    collector.HistKey
				util float64
			}{
				{collector.HistKey{From: l.From, To: l.To}, l.UtilFromTo},
				{collector.HistKey{From: l.To, To: l.From}, l.UtilToFrom},
			} {
				s.hist.Add(dir.k, collector.Sample{T: now, Bits: dir.util})
				s.mSamples.Inc()
				s.feedStream(dir.k, dir.util)
				if prev, ok := t.last[dir.k]; ok {
					if d := (dir.util - prev) / l.Capacity; d > maxChange {
						maxChange = d
					} else if -d > maxChange {
						maxChange = -d
					}
				}
				t.last[dir.k] = dir.util
			}
		}
		changed = maxChange >= s.cfg.ChangeFrac
		if s.cfg.Snapshot != nil {
			s.cfg.Snapshot.Apply(t.hosts, res, now)
		}
		if s.cfg.OnResult != nil {
			s.cfg.OnResult(t.hosts, res)
		}
	}

	// Adapt: narrow on movement (or errors — the network may be in
	// trouble exactly when we fail to see it), widen while stable.
	if changed || err != nil {
		t.interval = max(s.cfg.MinInterval, t.interval/2)
	} else {
		t.interval = min(s.cfg.MaxInterval, t.interval*3/2)
	}
	t.gIval.Set(t.interval.Seconds())

	next := jittered(t.interval, s.cfg.Jitter, t.rng)
	s.mu.Lock()
	if !s.closed && s.targets[t.key] == t {
		t.timer = s.cfg.Sched.After(next, func() { s.poll(t) })
	}
	s.mu.Unlock()
}

// jittered spreads d by ±frac.
func jittered(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	j := 1 + (rng.Float64()*2-1)*frac
	out := time.Duration(float64(d) * j)
	if out <= 0 {
		out = d
	}
	return out
}

// feedStream advances (or lazily fits) the long-lived predictor for one
// edge, mirroring the snmpcoll streaming configuration.
func (s *Scheduler) feedStream(k collector.HistKey, v float64) {
	if s.cfg.Predict == "" {
		return
	}
	s.mu.Lock()
	rec := s.streams[k]
	s.mu.Unlock()
	if rec == nil {
		hist := s.hist.Get(k)
		if len(hist) < s.cfg.PredictMinFit {
			return
		}
		fitter, err := rps.ParseFitter(s.cfg.Predict)
		if err != nil {
			return // validated in New; defensive
		}
		model, err := fitter.Fit(collector.Values(hist))
		if err != nil {
			return // degenerate history; retry on a later sample
		}
		rec = &streamRec{stream: rps.NewStream(model, s.cfg.PredictHorizon)}
		s.mu.Lock()
		if existing := s.streams[k]; existing != nil {
			rec = existing
		} else if s.closed {
			s.mu.Unlock()
			rec.stream.Close()
			return
		} else {
			s.streams[k] = rec
		}
		s.mu.Unlock()
		return // the fit consumed this sample via history
	}
	rec.mu.Lock()
	rec.stream.Observe(v)
	rec.mu.Unlock()
}

// Forecast returns the streaming prediction for one edge, if a
// predictor is live.
func (s *Scheduler) Forecast(k collector.HistKey) (collector.Forecast, bool) {
	s.mu.Lock()
	rec := s.streams[k]
	s.mu.Unlock()
	if rec == nil {
		return collector.Forecast{}, false
	}
	rec.mu.Lock()
	p, n := rec.stream.Last()
	rec.mu.Unlock()
	if n == 0 || len(p.Values) == 0 {
		return collector.Forecast{}, false
	}
	return collector.Forecast{
		Values: append([]float64(nil), p.Values...),
		ErrVar: append([]float64(nil), p.ErrVar...),
	}, true
}

// History exposes the scheduler's accumulated per-edge samples.
func (s *Scheduler) History() *collector.History { return s.hist }

// Targets reports how many host sets are under background polling.
func (s *Scheduler) Targets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.targets)
}

// Interval reports a target's current adaptive poll interval (0 if the
// host set is not registered). Diagnostics and tests.
func (s *Scheduler) Interval(hosts []netip.Addr) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.targets[targetKey(hosts)]; t != nil {
		return t.interval
	}
	return 0
}

// Stop cancels every poll loop and in-flight collection and closes the
// streaming predictors. Idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, t := range s.targets {
		if t.timer != nil {
			t.timer.Stop()
		}
	}
	clear(s.targets)
	streams := make([]*streamRec, 0, len(s.streams))
	for _, rec := range s.streams {
		streams = append(streams, rec)
	}
	s.mu.Unlock()
	s.cancel()
	for _, rec := range streams {
		rec.stream.Close()
	}
}
