package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// ComponentHealth is one row of the /healthz answer: the liveness of a
// collector or serving layer.
type ComponentHealth struct {
	Component string `json:"component"`
	Healthy   bool   `json:"healthy"`
	Detail    string `json:"detail,omitempty"`
	// LastPoll is when the component last completed a measurement
	// cycle (zero when it does not poll).
	LastPoll time.Time `json:"last_poll,omitempty"`
	// LastPollAge is the age of LastPoll at serving time, the quantity
	// an operator actually alerts on.
	LastPollAge time.Duration `json:"last_poll_age_ns,omitempty"`
}

// HealthFunc assembles the current component health set.
type HealthFunc func() []ComponentHealth

// HealthResponse is the /healthz document.
type HealthResponse struct {
	Healthy    bool              `json:"healthy"`
	Components []ComponentHealth `json:"components"`
}

// Handler serves the observability endpoints over any mux:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        JSON component health (503 when any component is down)
//	/debug/queries  JSON ring of recent query traces, newest first
//
// Any of reg, ring, health may be nil; the endpoints degrade to empty
// answers.
func Handler(reg *Registry, ring *Ring, health HealthFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := HealthResponse{Healthy: true}
		if health != nil {
			resp.Components = health()
		}
		for _, c := range resp.Components {
			if !c.Healthy {
				resp.Healthy = false
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !resp.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := ring.Snapshot()
		if recs == nil {
			recs = []TraceRecord{}
		}
		json.NewEncoder(w).Encode(recs)
	})
	return mux
}
