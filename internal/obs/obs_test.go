package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := New()
	r.Counter("remos_q_total", "queries", "kind", "flows").Add(3)
	r.Counter("remos_q_total", "queries", "kind", "topo").Inc()
	same := r.Counter("remos_q_total", "queries", "kind", "flows")
	same.Inc()
	r.Gauge("remos_inflight", "in flight").Set(2.5)
	r.GaugeFunc("remos_cache_len", "entries", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE remos_q_total counter",
		`remos_q_total{kind="flows"} 4`,
		`remos_q_total{kind="topo"} 1`,
		"# TYPE remos_inflight gauge",
		"remos_inflight 2.5",
		"remos_cache_len 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`, // 0.005 and the 0.01 edge
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "", nil).Observe(1)
	r.GaugeFunc("w", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	tr.Start("s").EndDetail("d")
	tr.Event("e", "")
	tr.SetErr(errors.New("x"))
	tr.Finish()
	var ring *Ring
	ring.Observe(tr)
	if ring.Snapshot() != nil {
		t.Fatal("nil ring must snapshot nil")
	}
}

func TestTraceSpansAndRing(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	tr := NewTraceAt("collect", "10.0.0.1,10.0.0.2", now)
	sp := tr.Start("fanout")
	clock = clock.Add(30 * time.Millisecond)
	sp.EndDetail("2 sites")
	tr.Event("cache", "miss")
	clock = clock.Add(20 * time.Millisecond)

	ring := NewRing(2, 40*time.Millisecond)
	ring.Observe(tr)
	recs := ring.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	rec := recs[0]
	if rec.Kind != "collect" || rec.Dur != 50*time.Millisecond || !rec.Slow {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].Name != "fanout" || rec.Spans[0].Dur != 30*time.Millisecond {
		t.Fatalf("spans = %+v", rec.Spans)
	}
	if rec.Spans[1].Detail != "miss" {
		t.Fatalf("event lost: %+v", rec.Spans[1])
	}
	if ring.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d", ring.SlowCount())
	}

	// Ring wraps: 3 observations in a 2-slot ring keep the latest two.
	for i := 0; i < 3; i++ {
		ring.Observe(NewTraceAt("t", "", now))
	}
	if got := len(ring.Snapshot()); got != 2 {
		t.Fatalf("after wrap: %d records", got)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("fanout", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.Start("site")
			sp.End()
		}()
	}
	wg.Wait()
	ring := NewRing(4, 0)
	ring.Observe(tr)
	if got := len(ring.Snapshot()[0].Spans); got != 16 {
		t.Fatalf("spans = %d, want 16", got)
	}
}

func TestContextCarriesTrace(t *testing.T) {
	tr := NewTrace("q", "")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("expected nil trace")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("remos_queries_total", "q").Add(2)
	ring := NewRing(8, 0)
	tr := NewTrace("collect", "h1")
	tr.Start("parse").End()
	ring.Observe(tr)
	down := false
	h := Handler(reg, ring, func() []ComponentHealth {
		return []ComponentHealth{{Component: "snmp-a", Healthy: !down, Detail: "ok"}}
	})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "remos_queries_total 2") {
		t.Fatalf("/metrics: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get("/healthz"); rec.Code != 200 {
		t.Fatalf("/healthz: %d", rec.Code)
	}
	down = true
	if rec := get("/healthz"); rec.Code != 503 {
		t.Fatalf("/healthz with down component: %d", rec.Code)
	}
	rec := get("/debug/queries")
	var recs []TraceRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != "collect" || len(recs[0].Spans) != 1 {
		t.Fatalf("/debug/queries = %+v", recs)
	}
}
