// Package obs is the Remos observability subsystem: a dependency-free
// atomic metrics registry rendered in the Prometheus text exposition
// format, and per-query traces (span-style stage timings) kept in a ring
// buffer for the /debug/queries endpoint. Every type is nil-safe — an
// uninstrumented deployment passes nil registries and pays a pointer
// test per metric site, nothing more.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds, in seconds,
// spanning sub-millisecond SNMP exchanges to multi-second cold queries.
var DefBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histStripes is the number of independent cells an observation can land
// in (power of two). Striping keeps concurrent Observe calls off each
// other's cache lines: the sum in particular is a compare-and-swap loop
// over a float64, and a single shared cell degrades collapse-style under
// the request-histogram fan-in of many serving goroutines.
const histStripes = 8

// histStripe is one cell: per-bucket counters plus a running sum. The
// pad spaces the hot sum fields a cache line apart.
type histStripe struct {
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    Gauge
	_      [4]uint64
}

// Histogram counts observations into cumulative buckets, with a running
// sum — the Prometheus histogram shape. Storage is striped; rendering
// and the accessors aggregate.
type Histogram struct {
	bounds  []float64
	stripes []histStripe
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Record into the first bucket whose bound holds v; rendering
	// accumulates, so storage is per-bucket. The observation sequence
	// number spreads concurrent observers across stripes.
	i := sort.SearchFloat64s(h.bounds, v)
	n := h.count.Add(1)
	st := &h.stripes[uint64(n)&(histStripes-1)]
	st.counts[i].Add(1)
	st.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// bucketCount aggregates one bucket's (non-cumulative) count across
// stripes; index len(bounds) is the +Inf bucket.
func (h *Histogram) bucketCount(i int) int64 {
	var n int64
	for s := range h.stripes {
		n += h.stripes[s].counts[i].Load()
	}
	return n
}

// sumValue aggregates the running sum across stripes.
func (h *Histogram) sumValue() float64 {
	var v float64
	for s := range h.stripes {
		v += h.stripes[s].sum.Value()
	}
	return v
}

// series is one rendered time series: a metric instance under a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups the series sharing a metric name, with its type and help
// line.
type family struct {
	name  string
	typ   string // "counter" | "gauge" | "histogram"
	help  string
	order []string
	byLbl map[string]*series
}

// Registry holds metrics by family and renders them in the Prometheus
// text format. The zero value is not usable; call New. A nil *Registry
// is a valid no-op sink: every constructor returns nil metrics whose
// methods do nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels builds the {k="v"} suffix from alternating key/value
// arguments.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for (name, labels), enforcing one
// type per family.
func (r *Registry) lookup(name, typ, help string, kv []string) *series {
	lbl := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, help: help, byLbl: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	s := f.byLbl[lbl]
	if s == nil {
		s = &series{labels: lbl}
		f.byLbl[lbl] = s
		f.order = append(f.order, lbl)
	}
	return s
}

// Counter returns the counter for name and optional label pairs,
// creating it on first use. Repeated calls with the same name and labels
// return the same counter. Nil registries return a nil (no-op) counter.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, "counter", help, kv)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name and optional label pairs.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, "gauge", help, kv)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at render time —
// for quantities another component already tracks (cache sizes,
// last-poll ages).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, "gauge", help, kv)
	s.gf = fn
}

// Histogram returns the histogram for name with the given bucket bounds
// (nil selects DefBuckets). The bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	s := r.lookup(name, "histogram", help, kv)
	if s.h == nil {
		h := &Histogram{bounds: bounds, stripes: make([]histStripe, histStripes)}
		for i := range h.stripes {
			h.stripes[i].counts = make([]atomic.Int64, len(bounds)+1)
		}
		s.h = h
	}
	return s.h
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		// byLbl is only appended to, and series pointers are immutable
		// once created, so rendering without the registry lock only
		// needs a snapshot of the label order.
		r.mu.Lock()
		lbls := append([]string(nil), f.order...)
		ss := make([]*series, len(lbls))
		for i, l := range lbls {
			ss[i] = f.byLbl[l]
		}
		r.mu.Unlock()
		for _, s := range ss {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.gf != nil:
				fmt.Fprintf(&b, "%s%s %g\n", f.name, s.labels, s.gf())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %g\n", f.name, s.labels, s.g.Value())
			case s.h != nil:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets, sum,
// count. Label sets merge the series labels with the le bucket label.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	bucketLabels := func(le string) string {
		if inner == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", inner, le)
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.bucketCount(i)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(fmt.Sprintf("%g", bound)), cum)
	}
	cum += h.bucketCount(len(h.bounds))
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, s.labels, h.sumValue())
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, h.count.Load())
}
