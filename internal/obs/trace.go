package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records one query's passage through the system as a flat list of
// spans — parse, cache lookup, master fan-out, per-collector exchanges,
// prediction, merge. A trace travels in the query's context (see
// NewContext), so any layer can attach spans without new parameters.
// All methods are safe for concurrent use (fan-out stages span
// concurrently) and nil-safe (no trace in the context costs nothing).
type Trace struct {
	id    uint64
	kind  string
	begin time.Time
	now   func() time.Time

	mu    sync.Mutex
	spans []SpanRecord
	attrs string
	err   string
	done  time.Duration
}

// SpanRecord is one completed (or still-open) stage of a trace.
type SpanRecord struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset_ns"` // since trace begin
	Dur    time.Duration `json:"dur_ns"`
	Detail string        `json:"detail,omitempty"`
}

var traceID atomic.Uint64

// NewTrace starts a trace for one query. kind names the operation
// ("collect", "flows", ...), attrs is free-form detail (the host set).
func NewTrace(kind, attrs string) *Trace {
	return NewTraceAt(kind, attrs, nil)
}

// NewTraceAt is NewTrace with an explicit clock (nil means time.Now),
// for deployments running over simulated time.
func NewTraceAt(kind, attrs string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	return &Trace{
		id:    traceID.Add(1),
		kind:  kind,
		attrs: attrs,
		begin: now(),
		now:   now,
	}
}

// Span is an open stage; End completes it.
type Span struct {
	t     *Trace
	idx   int
	start time.Time
}

// Start opens a named span. Nil traces return a nil span; End on a nil
// span is a no-op, so call sites need no guards.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	start := t.now()
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{Name: name, Offset: start.Sub(t.begin), Dur: -1})
	idx := len(t.spans) - 1
	t.mu.Unlock()
	return &Span{t: t, idx: idx, start: start}
}

// End completes the span.
func (s *Span) End() { s.EndDetail("") }

// EndDetail completes the span with free-form detail (e.g. "12 exchanges,
// rtt 38ms" or "hit").
func (s *Span) EndDetail(detail string) {
	if s == nil {
		return
	}
	d := s.t.now().Sub(s.start)
	s.t.mu.Lock()
	s.t.spans[s.idx].Dur = d
	if detail != "" {
		s.t.spans[s.idx].Detail = detail
	}
	s.t.mu.Unlock()
}

// Event records an instantaneous annotation (zero-duration span).
func (t *Trace) Event(name, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{
		Name: name, Offset: t.now().Sub(t.begin), Detail: detail,
	})
	t.mu.Unlock()
}

// SetErr records the query's failure on the trace.
func (t *Trace) SetErr(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	t.err = err.Error()
	t.mu.Unlock()
}

// Finish stamps the total duration. Idempotent; the first call wins.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	d := t.now().Sub(t.begin)
	t.mu.Lock()
	if t.done == 0 {
		t.done = d
	}
	t.mu.Unlock()
}

// TraceRecord is an immutable snapshot of a finished trace, the shape
// /debug/queries serves.
type TraceRecord struct {
	ID    uint64        `json:"id"`
	Kind  string        `json:"kind"`
	Attrs string        `json:"attrs,omitempty"`
	Begin time.Time     `json:"begin"`
	Dur   time.Duration `json:"dur_ns"`
	Slow  bool          `json:"slow"`
	Err   string        `json:"err,omitempty"`
	Spans []SpanRecord  `json:"spans"`
}

// snapshot copies the trace under its lock.
func (t *Trace) snapshot(slowAfter time.Duration) TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	dur := t.done
	if dur == 0 {
		dur = t.now().Sub(t.begin)
	}
	return TraceRecord{
		ID:    t.id,
		Kind:  t.kind,
		Attrs: t.attrs,
		Begin: t.begin,
		Dur:   dur,
		Slow:  slowAfter > 0 && dur >= slowAfter,
		Err:   t.err,
		Spans: append([]SpanRecord(nil), t.spans...),
	}
}

// Ring keeps the most recent N finished traces for /debug/queries, each
// flagged slow when its total duration crosses the threshold.
type Ring struct {
	mu        sync.Mutex
	buf       []TraceRecord
	next      int
	full      bool
	slowAfter time.Duration
	slow      int64
}

// NewRing creates a ring holding up to n traces (default 128); queries
// slower than slowAfter are flagged (0 disables flagging).
func NewRing(n int, slowAfter time.Duration) *Ring {
	if n <= 0 {
		n = 128
	}
	return &Ring{buf: make([]TraceRecord, n), slowAfter: slowAfter}
}

// Observe finishes the trace and stores its snapshot. Nil rings and nil
// traces are no-ops.
func (r *Ring) Observe(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.Finish()
	rec := t.snapshot(r.slowAfter)
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	if rec.Slow {
		r.slow++
	}
	r.mu.Unlock()
}

// SlowCount reports how many observed traces crossed the slow threshold.
func (r *Ring) SlowCount() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slow
}

// Snapshot returns the stored traces, most recent first.
func (r *Ring) Snapshot() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	total := n
	if r.full {
		total = len(r.buf)
	}
	out := make([]TraceRecord, 0, total)
	for i := 0; i < total; i++ {
		idx := (n - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

type ctxKey struct{}

// NewContext attaches a trace to a context; every instrumented layer
// below will add its spans to it.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — and nil is fine:
// every Trace method accepts a nil receiver.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
