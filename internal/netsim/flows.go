package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"remos/internal/maxmin"
	"remos/internal/sim"
)

// Flow is a fluid traffic stream between two hosts. Concurrent flows share
// each directed link max-min fairly; a flow with a Demand cap takes at most
// that rate. Finite flows (a transfer of a fixed number of bytes) complete
// by an event on the simulation clock and report their achieved throughput.
type Flow struct {
	ID  int
	Src *Device
	Dst *Device

	net  *Network
	path []dirHop

	demand    float64 // bits/s cap; 0 = elastic
	rate      float64 // current allocation, bits/s
	remaining float64 // bytes left for finite flows; Inf for unbounded
	sentBytes float64
	started   time.Time
	done      bool

	completion *sim.Timer
	onDone     func(*Flow)
}

// Rate returns the flow's currently allocated rate in bits per second.
func (f *Flow) Rate() float64 {
	f.net.mu.Lock()
	defer f.net.mu.Unlock()
	return f.rate
}

// Sent returns bytes transferred so far, advanced to the current time.
func (f *Flow) Sent() float64 {
	f.net.mu.Lock()
	defer f.net.mu.Unlock()
	f.net.advanceLocked(f.net.sched.Now())
	return f.sentBytes
}

// Done reports whether a finite flow has completed or the flow was stopped.
func (f *Flow) Done() bool {
	f.net.mu.Lock()
	defer f.net.mu.Unlock()
	return f.done
}

// Started returns the simulation time the flow was started.
func (f *Flow) Started() time.Time { return f.started }

// SetDemand changes the flow's rate cap (0 = elastic) and reallocates.
func (f *Flow) SetDemand(bitsPerSec float64) {
	n := f.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if f.done {
		return
	}
	n.advanceLocked(n.sched.Now())
	f.demand = bitsPerSec
	n.reallocateLocked()
}

// Stop removes the flow from the network and returns the bytes it
// transferred and the time it was active. Stopping a completed or stopped
// flow returns its final figures.
func (f *Flow) Stop() (bytes float64, active time.Duration) {
	n := f.net
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.sched.Now()
	n.advanceLocked(now)
	if !f.done {
		n.removeFlowLocked(f)
		n.reallocateLocked()
	}
	return f.sentBytes, now.Sub(f.started)
}

// FlowSpec configures StartFlow.
type FlowSpec struct {
	// Demand caps the flow's rate in bits per second; 0 means elastic
	// (the flow takes its full max-min share).
	Demand float64
	// Bytes, if positive, makes the flow a finite transfer that
	// completes after that many bytes.
	Bytes float64
	// OnComplete runs (on the scheduler goroutine) when a finite flow
	// finishes.
	OnComplete func(*Flow)
}

// StartFlow starts a fluid flow from src to dst. The path is resolved once
// at start (static routing).
func (n *Network) StartFlow(src, dst *Device, spec FlowSpec) (*Flow, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if src.Kind != Host || dst.Kind != Host {
		return nil, fmt.Errorf("netsim: flows run between hosts (got %s, %s)", src.Kind, dst.Kind)
	}
	path, err := n.resolvePathLocked(src, dst)
	if err != nil {
		return nil, err
	}
	now := n.sched.Now()
	n.advanceLocked(now)
	n.nextFlowID++
	f := &Flow{
		ID:        n.nextFlowID,
		Src:       src,
		Dst:       dst,
		net:       n,
		path:      path,
		demand:    spec.Demand,
		remaining: math.Inf(1),
		started:   now,
		onDone:    spec.OnComplete,
	}
	if spec.Bytes > 0 {
		f.remaining = spec.Bytes
	}
	n.flows[f.ID] = f
	n.reallocateLocked()
	return f, nil
}

// advanceLocked integrates all flow transfers and interface counters from
// lastAdvance to now. Caller holds n.mu.
func (n *Network) advanceLocked(now time.Time) {
	dt := now.Sub(n.lastAdvance).Seconds()
	if dt <= 0 {
		return
	}
	n.lastAdvance = now
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		bytes := f.rate * dt / 8
		if bytes > f.remaining {
			bytes = f.remaining
		}
		f.sentBytes += bytes
		if !math.IsInf(f.remaining, 1) {
			f.remaining -= bytes
		}
		for _, h := range f.path {
			h.out().outOctets += bytes
			h.in().inOctets += bytes
		}
	}
}

// reallocateLocked recomputes max-min shares for all active flows and
// reschedules completion events for finite flows. Caller holds n.mu and
// must have advanced accounting to the current time first.
func (n *Network) reallocateLocked() {
	// Build the directed-capacity problem: 2 directed capacities per
	// link (index link.ID*2 for A->B, +1 for B->A).
	caps := make([]float64, len(n.links)*2)
	for _, l := range n.links {
		caps[l.ID*2] = l.Capacity
		caps[l.ID*2+1] = l.Capacity
	}
	ids := make([]int, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	// Deterministic order (map iteration is random).
	sort.Ints(ids)
	problem := make([]maxmin.Flow, len(ids))
	for i, id := range ids {
		f := n.flows[id]
		links := make([]int, len(f.path))
		for j, h := range f.path {
			idx := h.link.ID * 2
			if !h.fromA {
				idx++
			}
			links[j] = idx
		}
		problem[i] = maxmin.Flow{Links: links, Demand: f.demand}
	}
	rates, err := maxmin.Allocate(caps, problem)
	if err != nil {
		// Only possible via an internal indexing bug.
		panic(fmt.Sprintf("netsim: allocation failed: %v", err))
	}
	now := n.sched.Now()
	for i, id := range ids {
		f := n.flows[id]
		f.rate = rates[i]
		if f.completion != nil {
			f.completion.Stop()
			f.completion = nil
		}
		if math.IsInf(f.remaining, 1) {
			continue
		}
		if f.remaining <= 0.5 {
			// Finished within float tolerance: complete immediately.
			n.scheduleCompletionLocked(f, now)
			continue
		}
		if f.rate <= 0 {
			continue // stalled; will be rescheduled when rates change
		}
		eta := time.Duration(f.remaining * 8 / f.rate * float64(time.Second))
		if eta < 0 {
			eta = 0
		}
		n.scheduleCompletionLocked(f, now.Add(eta))
	}
}

func (n *Network) scheduleCompletionLocked(f *Flow, at time.Time) {
	f.completion = n.sched.At(at, func() {
		n.completeFlow(f)
	})
}

func (n *Network) completeFlow(f *Flow) {
	n.mu.Lock()
	if f.done {
		n.mu.Unlock()
		return
	}
	n.advanceLocked(n.sched.Now())
	if f.remaining > 0.5 {
		// Rates changed since this event was scheduled and the stop
		// raced; reallocate will have rescheduled. Ignore.
		n.mu.Unlock()
		return
	}
	n.removeFlowLocked(f)
	n.reallocateLocked()
	cb := f.onDone
	n.mu.Unlock()
	if cb != nil {
		cb(f)
	}
}

func (n *Network) removeFlowLocked(f *Flow) {
	f.done = true
	f.rate = 0
	if f.completion != nil {
		f.completion.Stop()
		f.completion = nil
	}
	delete(n.flows, f.ID)
}

// ActiveFlows returns the number of flows currently in the network.
func (n *Network) ActiveFlows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// LinkRate returns the current aggregate flow rate over the link in the
// A->B direction (aToB) and B->A direction, in bits per second. This is
// the ground truth Figures 4 and 5 compare the SNMP Collector against.
func (n *Network) LinkRate(l *Link) (aToB, bToA float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, f := range n.flows {
		for _, h := range f.path {
			if h.link != l {
				continue
			}
			if h.fromA {
				aToB += f.rate
			} else {
				bToA += f.rate
			}
		}
	}
	return aToB, bToA
}

// Transfer runs a finite transfer of the given size between two hosts to
// completion, driving the simulated clock, and returns the achieved
// throughput in bits per second. It requires the network's scheduler to be
// a *sim.Sim. Background flows keep running (and completing) while the
// transfer proceeds.
func (n *Network) Transfer(src, dst *Device, bytes float64, demand float64) (throughput float64, elapsed time.Duration, err error) {
	s, ok := n.sched.(*sim.Sim)
	if !ok {
		return 0, 0, fmt.Errorf("netsim: Transfer requires a simulated scheduler")
	}
	doneAt := time.Time{}
	f, err := n.StartFlow(src, dst, FlowSpec{
		Demand: demand,
		Bytes:  bytes,
		OnComplete: func(f *Flow) {
			doneAt = s.Now()
		},
	})
	if err != nil {
		return 0, 0, err
	}
	start := s.Now()
	for doneAt.IsZero() {
		if !s.Step() {
			return 0, 0, fmt.Errorf("netsim: simulation ran dry before transfer %d completed", f.ID)
		}
	}
	elapsed = doneAt.Sub(start)
	if elapsed <= 0 {
		return math.Inf(1), 0, nil
	}
	return bytes * 8 / elapsed.Seconds(), elapsed, nil
}
