package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"
)

// A segment is one level-2 broadcast domain: the maximal set of interfaces
// reachable from each other through switches only. Each segment receives
// one IP subnet.
type segment struct {
	id       int
	prefix   netip.Prefix
	l3Ifaces []*Iface  // host and router interfaces on this segment
	switches []*Device // interior switches
}

// segments computes the broadcast domains. Caller holds n.mu.
func (n *Network) segmentsLocked() []*segment {
	seen := make(map[*Iface]bool)
	var segs []*segment
	for _, d := range n.order {
		if d.Kind == Switch {
			continue
		}
		for _, ifc := range d.ifaces {
			if seen[ifc] || ifc.Link == nil {
				continue
			}
			seg := &segment{id: len(segs)}
			// BFS from this L3 interface through switches.
			swSeen := make(map[*Device]bool)
			queue := []*Iface{ifc}
			seen[ifc] = true
			seg.l3Ifaces = append(seg.l3Ifaces, ifc)
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				peer := cur.Peer()
				if peer == nil {
					continue
				}
				if peer.Dev.Kind == Switch {
					if swSeen[peer.Dev] {
						continue
					}
					swSeen[peer.Dev] = true
					seg.switches = append(seg.switches, peer.Dev)
					for _, p := range peer.Dev.ifaces {
						if p != peer && p.Link != nil {
							queue = append(queue, p)
						}
					}
				} else {
					if !seen[peer] {
						seen[peer] = true
						seg.l3Ifaces = append(seg.l3Ifaces, peer)
						// Do not traverse through L3 devices: the
						// broadcast domain ends here.
					}
				}
			}
			sort.Slice(seg.l3Ifaces, func(i, j int) bool {
				a, b := seg.l3Ifaces[i], seg.l3Ifaces[j]
				if a.Dev.Name != b.Dev.Name {
					return a.Dev.Name < b.Dev.Name
				}
				return a.Index < b.Index
			})
			sortDevices(seg.switches)
			// If AssignSubnets already ran, recover this segment's
			// prefix from its member interfaces.
			for _, m := range seg.l3Ifaces {
				if m.Prefix.IsValid() {
					seg.prefix = m.Prefix
					break
				}
			}
			segs = append(segs, seg)
		}
	}
	return segs
}

// AssignSubnets gives every broadcast domain a /20 from 10.0.0.0/8
// (room for campus-scale segments) and assigns addresses to the router
// and host interfaces on it (routers get the low addresses). It must be
// called after the topology is built and before ComputeRoutes. Calling it
// again after topology changes reassigns deterministically.
func (n *Network) AssignSubnets() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.byIP = make(map[netip.Addr]*Iface)
	n.subnetSeq = 0
	for _, seg := range n.segmentsLocked() {
		n.subnetSeq++
		// 10.240.0.0/12 is reserved for switch management addresses.
		if n.subnetSeq >= 0xF00 {
			panic("netsim: out of /20 subnets in 10.0.0.0/8")
		}
		raw := uint32(10)<<24 | uint32(n.subnetSeq)<<12
		base := netip.AddrFrom4([4]byte{byte(raw >> 24), byte(raw >> 16), byte(raw >> 8), byte(raw)})
		prefix := netip.PrefixFrom(base, 20)
		seg.prefix = prefix
		// Routers first so gateways get stable low addresses.
		ordered := make([]*Iface, 0, len(seg.l3Ifaces))
		for _, ifc := range seg.l3Ifaces {
			if ifc.Dev.Kind == Router {
				ordered = append(ordered, ifc)
			}
		}
		for _, ifc := range seg.l3Ifaces {
			if ifc.Dev.Kind == Host {
				ordered = append(ordered, ifc)
			}
		}
		host := uint32(0)
		for _, ifc := range ordered {
			host++
			if host >= 1<<12-1 {
				panic(fmt.Sprintf("netsim: subnet %v overflow (%d interfaces)", prefix, len(ordered)))
			}
			a := raw | host
			ifc.IP = netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
			ifc.Prefix = prefix
			n.byIP[ifc.IP] = ifc
		}
	}
	// Switches get out-of-band management addresses in 10.255.0.0/16,
	// like real bridges with a management VLAN: the Bridge Collector
	// contacts them there even though they forward at level 2.
	mgmt := 0
	for _, d := range n.order {
		if d.Kind != Switch {
			continue
		}
		mgmt++
		if mgmt >= 0xffff {
			panic("netsim: too many switches for the management range")
		}
		d.mgmtIP = netip.AddrFrom4([4]byte{10, 255, byte(mgmt >> 8), byte(mgmt)})
	}
}

// ComputeRoutes fills in router forwarding tables and host default
// gateways using shortest path (hop count) over the router adjacency
// graph. AssignSubnets must have run first.
func (n *Network) ComputeRoutes() {
	n.mu.Lock()
	defer n.mu.Unlock()
	segs := n.segmentsLocked()

	// Adjacency: routers sharing a segment. For each pair record the
	// interfaces they use on that segment.
	type adj struct {
		to      *Device
		selfIfc *Iface
		peerIfc *Iface
	}
	neighbors := make(map[*Device][]adj)
	var routers []*Device
	routerSeen := make(map[*Device]bool)
	for _, seg := range segs {
		var rifs []*Iface
		for _, ifc := range seg.l3Ifaces {
			if ifc.Dev.Kind == Router {
				rifs = append(rifs, ifc)
				if !routerSeen[ifc.Dev] {
					routerSeen[ifc.Dev] = true
					routers = append(routers, ifc.Dev)
				}
			}
		}
		for _, a := range rifs {
			for _, b := range rifs {
				if a.Dev != b.Dev {
					neighbors[a.Dev] = append(neighbors[a.Dev], adj{to: b.Dev, selfIfc: a, peerIfc: b})
				}
			}
		}
	}
	sortDevices(routers)

	// BFS from every router (unit edge weights) recording first hops.
	type firstHop struct {
		selfIfc *Iface
		peerIfc *Iface
	}
	dist := make(map[*Device]map[*Device]int)
	first := make(map[*Device]map[*Device]firstHop)
	for _, r := range routers {
		d := map[*Device]int{r: 0}
		f := map[*Device]firstHop{}
		queue := []*Device{r}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, a := range neighbors[cur] {
				if _, ok := d[a.to]; ok {
					continue
				}
				d[a.to] = d[cur] + 1
				if cur == r {
					f[a.to] = firstHop{selfIfc: a.selfIfc, peerIfc: a.peerIfc}
				} else {
					f[a.to] = f[cur]
				}
				queue = append(queue, a.to)
			}
		}
		dist[r] = d
		first[r] = f
	}

	// Router tables: one route per segment prefix.
	for _, r := range routers {
		r.routes = nil
		for _, seg := range segs {
			if !seg.prefix.IsValid() {
				continue
			}
			// Directly attached?
			var direct *Iface
			for _, ifc := range r.ifaces {
				if ifc.Prefix == seg.prefix && ifc.IP.IsValid() {
					direct = ifc
					break
				}
			}
			if direct != nil {
				r.routes = append(r.routes, Route{Prefix: seg.prefix, IfIndex: direct.Index})
				continue
			}
			// Closest attached router.
			var best *Device
			bestDist := int(^uint(0) >> 1)
			for _, ifc := range seg.l3Ifaces {
				if ifc.Dev.Kind != Router {
					continue
				}
				if dd, ok := dist[r][ifc.Dev]; ok && dd < bestDist {
					bestDist = dd
					best = ifc.Dev
				}
			}
			if best == nil {
				continue // unreachable segment
			}
			fh := first[r][best]
			r.routes = append(r.routes, Route{
				Prefix:  seg.prefix,
				NextHop: fh.peerIfc.IP,
				IfIndex: fh.selfIfc.Index,
			})
		}
		sort.Slice(r.routes, func(i, j int) bool {
			return r.routes[i].Prefix.Addr().Less(r.routes[j].Prefix.Addr())
		})
	}

	// Host default gateways: lowest-addressed router interface on the
	// host's segment.
	for _, seg := range segs {
		var gw netip.Addr
		for _, ifc := range seg.l3Ifaces {
			if ifc.Dev.Kind == Router && ifc.IP.IsValid() {
				if !gw.IsValid() || ifc.IP.Less(gw) {
					gw = ifc.IP
				}
			}
		}
		for _, ifc := range seg.l3Ifaces {
			if ifc.Dev.Kind == Host {
				ifc.Dev.Gateway = gw
			}
		}
	}
}

// lookupRoute finds the longest-prefix match in a router's table. Caller
// holds n.mu or operates on a quiescent network.
func lookupRoute(r *Device, dst netip.Addr) (Route, bool) {
	best := -1
	var out Route
	for _, rt := range r.routes {
		if rt.Prefix.Contains(dst) && rt.Prefix.Bits() > best {
			best = rt.Prefix.Bits()
			out = rt
		}
	}
	return out, best >= 0
}

// dirHop is one directed traversal of a link.
type dirHop struct {
	link  *Link
	fromA bool // true: A->B direction
}

func (h dirHop) out() *Iface {
	if h.fromA {
		return h.link.A
	}
	return h.link.B
}

func (h dirHop) in() *Iface {
	if h.fromA {
		return h.link.B
	}
	return h.link.A
}

// l2Path finds the switch-only path between two L3 devices (or between a
// device and itself, returning nil). Caller holds n.mu.
func (n *Network) l2PathLocked(from, to *Device) ([]dirHop, error) {
	if from == to {
		return nil, nil
	}
	type state struct {
		dev  *Device
		prev *state
		via  dirHop
	}
	start := &state{dev: from}
	queue := []*state{start}
	visited := map[*Device]bool{from: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.dev != from && cur.dev.Kind != Switch {
			continue // cannot forward through hosts/routers at L2
		}
		for _, ifc := range cur.dev.ifaces {
			if ifc.Link == nil {
				continue
			}
			peer := ifc.Peer()
			if visited[peer.Dev] {
				continue
			}
			visited[peer.Dev] = true
			st := &state{dev: peer.Dev, prev: cur, via: dirHop{link: ifc.Link, fromA: ifc.Link.A == ifc}}
			if peer.Dev == to {
				// Reconstruct.
				var rev []dirHop
				for s := st; s.prev != nil; s = s.prev {
					rev = append(rev, s.via)
				}
				path := make([]dirHop, len(rev))
				for i := range rev {
					path[i] = rev[len(rev)-1-i]
				}
				return path, nil
			}
			queue = append(queue, st)
		}
	}
	return nil, fmt.Errorf("netsim: no L2 path from %s to %s", from.Name, to.Name)
}

// resolvePath computes the full directed link path a flow from src to dst
// takes: L2 hops within each segment, L3 hops across routers. Caller holds
// n.mu.
func (n *Network) resolvePathLocked(src, dst *Device) ([]dirHop, error) {
	if src == dst {
		return nil, nil
	}
	dstIP := dst.Addr()
	if !dstIP.IsValid() {
		return nil, fmt.Errorf("netsim: destination %s has no address (run AssignSubnets)", dst.Name)
	}
	var path []dirHop
	cur := src
	for hops := 0; ; hops++ {
		if hops > 64 {
			return nil, fmt.Errorf("netsim: routing loop resolving %s -> %s", src.Name, dst.Name)
		}
		// Directly attached (same segment as dst)?
		onLink := false
		for _, ifc := range cur.ifaces {
			if ifc.Prefix.IsValid() && ifc.Prefix.Contains(dstIP) {
				onLink = true
				break
			}
		}
		if onLink {
			seg, err := n.l2PathLocked(cur, dst)
			if err != nil {
				return nil, err
			}
			return append(path, seg...), nil
		}
		// Next hop.
		var nhIP netip.Addr
		switch cur.Kind {
		case Host:
			nhIP = cur.Gateway
			if !nhIP.IsValid() {
				return nil, fmt.Errorf("netsim: host %s has no gateway for %v", cur.Name, dstIP)
			}
		case Router:
			rt, ok := lookupRoute(cur, dstIP)
			if !ok || !rt.NextHop.IsValid() {
				return nil, fmt.Errorf("netsim: router %s has no route to %v", cur.Name, dstIP)
			}
			nhIP = rt.NextHop
		default:
			return nil, fmt.Errorf("netsim: cannot route through %s (%v)", cur.Name, cur.Kind)
		}
		nh := n.byIP[nhIP]
		if nh == nil {
			return nil, fmt.Errorf("netsim: next hop %v not found", nhIP)
		}
		seg, err := n.l2PathLocked(cur, nh.Dev)
		if err != nil {
			return nil, err
		}
		path = append(path, seg...)
		cur = nh.Dev
	}
}

// Path returns the devices a flow from src to dst traverses, in order,
// including the endpoints. It is the ground truth that topology-discovery
// tests compare the SNMP Collector's view against.
func (n *Network) Path(src, dst *Device) ([]*Device, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hops, err := n.resolvePathLocked(src, dst)
	if err != nil {
		return nil, err
	}
	devs := []*Device{src}
	for _, h := range hops {
		devs = append(devs, h.in().Dev)
	}
	return devs, nil
}

// PathDelay returns the one-way propagation delay between two devices.
func (n *Network) PathDelay(src, dst *Device) (time.Duration, error) {
	d, _, err := n.PathDelayJitter(src, dst)
	return d, err
}

// PathDelayJitter returns the one-way delay between two devices and its
// jitter. Per-link jitters are independent, so they combine as the root
// of the summed squares.
func (n *Network) PathDelayJitter(src, dst *Device) (time.Duration, time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hops, err := n.resolvePathLocked(src, dst)
	if err != nil {
		return 0, 0, err
	}
	var sum time.Duration
	var varSum float64
	for _, h := range hops {
		sum += h.link.Delay
		j := h.link.Jitter.Seconds()
		varSum += j * j
	}
	jitter := time.Duration(math.Sqrt(varSum) * float64(time.Second))
	return sum, jitter, nil
}
