package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Wireless support: the paper's Section 3.1 mentions "a collector for
// wireless LANs (802.11) is under development", and Section 6.2 lists
// mobile-host support as ongoing work. The emulator models an access
// point as a bridge with radio associations: each associated station gets
// a point-to-point link whose capacity is the negotiated PHY rate, which
// degrades with signal quality and changes on roam.

// Assoc describes one station's association with an access point.
type Assoc struct {
	MAC   MAC
	Rate  float64 // negotiated PHY rate, bits per second
	RSSI  int     // received signal strength indicator, dBm (negative)
	Since time.Time
}

// AccessPoint is a bridge whose downstream ports are radio associations.
type AccessPoint struct {
	Dev *Device

	mu    sync.Mutex
	net   *Network
	assoc map[MAC]Assoc
}

// Dot11Rates are the 802.11a/g PHY rate steps the emulator negotiates,
// best first.
var Dot11Rates = []float64{54e6, 48e6, 36e6, 24e6, 18e6, 12e6, 9e6, 6e6}

// RateForRSSI maps signal strength to the negotiated PHY rate, a standard
// monotone step function (≥ -55 dBm gets the top rate; below -89 dBm the
// station cannot associate and 0 is returned).
func RateForRSSI(rssi int) float64 {
	switch {
	case rssi >= -55:
		return Dot11Rates[0]
	case rssi >= -60:
		return Dot11Rates[1]
	case rssi >= -65:
		return Dot11Rates[2]
	case rssi >= -70:
		return Dot11Rates[3]
	case rssi >= -75:
		return Dot11Rates[4]
	case rssi >= -80:
		return Dot11Rates[5]
	case rssi >= -85:
		return Dot11Rates[6]
	case rssi >= -89:
		return Dot11Rates[7]
	}
	return 0
}

// AddAccessPoint creates an access point. The returned AP's device is a
// switch (it bridges at level 2, appears in Bridge-MIB walks, and can be
// uplinked with Connect like any switch); stations join with Associate.
func (n *Network) AddAccessPoint(name string) *AccessPoint {
	d := n.AddSwitch(name)
	ap := &AccessPoint{Dev: d, net: n, assoc: make(map[MAC]Assoc)}
	n.mu.Lock()
	if n.aps == nil {
		n.aps = make(map[*Device]*AccessPoint)
	}
	n.aps[d] = ap
	n.mu.Unlock()
	return ap
}

// AccessPointOf returns the AccessPoint wrapper for a device, or nil.
func (n *Network) AccessPointOf(d *Device) *AccessPoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.aps[d]
}

// Associate joins (or re-joins, on roam) a single-homed host to the
// access point at the rate implied by the given signal strength. A host
// already associated elsewhere is moved — its forwarding entries follow,
// which is exactly the event the Bridge and wireless collectors must
// track. Returns the negotiated rate.
func (ap *AccessPoint) Associate(h *Device, rssi int) (float64, error) {
	rate := RateForRSSI(rssi)
	if rate <= 0 {
		return 0, fmt.Errorf("netsim: %s cannot associate with %s at %d dBm", h.Name, ap.Dev.Name, rssi)
	}
	if h.Kind != Host || len(h.Ifaces()) > 1 {
		return 0, fmt.Errorf("netsim: Associate requires a single-homed host")
	}
	// First association must happen before AssignSubnets (the station
	// needs an address on the AP's segment); later calls are roams.
	first := len(h.Ifaces()) == 0

	// The radio link: wireless is half-duplexish and contended; the
	// emulator models the association as a dedicated link at the PHY
	// rate with a short airtime delay.
	n := ap.net
	if first {
		n.Connect(h, ap.Dev, rate, 2*time.Millisecond)
	} else {
		n.MoveHost(h, ap.Dev, rate, 2*time.Millisecond)
	}
	mac := MAC(h.Ifaces()[0].MAC)

	// Drop any previous association (possibly on another AP).
	n.mu.Lock()
	for _, other := range n.aps {
		if other == ap {
			continue
		}
		other.mu.Lock()
		delete(other.assoc, mac)
		other.mu.Unlock()
	}
	n.mu.Unlock()
	ap.mu.Lock()
	ap.assoc[mac] = Assoc{MAC: mac, Rate: rate, RSSI: rssi, Since: n.sched.Now()}
	ap.mu.Unlock()
	return rate, nil
}

// UpdateSignal renegotiates an associated station's rate after a signal
// change (the station walking away from the AP), without a roam.
func (ap *AccessPoint) UpdateSignal(h *Device, rssi int) (float64, error) {
	mac := MAC(h.Ifaces()[0].MAC)
	ap.mu.Lock()
	_, ok := ap.assoc[mac]
	ap.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("netsim: %s is not associated with %s", h.Name, ap.Dev.Name)
	}
	return ap.Associate(h, rssi)
}

// Associations lists the AP's current stations, stable order.
func (ap *AccessPoint) Associations() []Assoc {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	out := make([]Assoc, 0, len(ap.assoc))
	for _, a := range ap.assoc {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return lessMAC(out[i].MAC, out[j].MAC) })
	return out
}

// Association returns one station's association, if present.
func (ap *AccessPoint) Association(mac MAC) (Assoc, bool) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	a, ok := ap.assoc[mac]
	return a, ok
}
