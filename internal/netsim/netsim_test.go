package netsim

import (
	"math"
	"testing"
	"time"

	"remos/internal/sim"
)

// dumbbell builds the classic two-LAN topology used across the tests:
//
//	h1 --- sw1 --- r1 --- r2 --- sw2 --- h2
//	h3 ----/                      \---- h4
func dumbbell(t testing.TB, s *sim.Sim, wanBps float64) (*Network, map[string]*Device) {
	n := New(s)
	d := map[string]*Device{}
	for _, name := range []string{"h1", "h2", "h3", "h4"} {
		d[name] = n.AddHost(name)
	}
	d["sw1"] = n.AddSwitch("sw1")
	d["sw2"] = n.AddSwitch("sw2")
	d["r1"] = n.AddRouter("r1")
	d["r2"] = n.AddRouter("r2")
	lan := 100e6
	n.Connect(d["h1"], d["sw1"], lan, time.Millisecond)
	n.Connect(d["h3"], d["sw1"], lan, time.Millisecond)
	n.Connect(d["sw1"], d["r1"], lan, time.Millisecond)
	n.Connect(d["r1"], d["r2"], wanBps, 10*time.Millisecond)
	n.Connect(d["r2"], d["sw2"], lan, time.Millisecond)
	n.Connect(d["h2"], d["sw2"], lan, time.Millisecond)
	n.Connect(d["h4"], d["sw2"], lan, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	return n, d
}

func TestAssignSubnetsGivesAddresses(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	_ = n
	for _, name := range []string{"h1", "h2", "h3", "h4"} {
		if !d[name].Addr().IsValid() {
			t.Fatalf("%s has no address", name)
		}
	}
	// h1 and h3 share sw1's segment with r1: same /24.
	if d["h1"].ifaces[0].Prefix != d["h3"].ifaces[0].Prefix {
		t.Fatalf("h1 and h3 in different subnets: %v vs %v",
			d["h1"].ifaces[0].Prefix, d["h3"].ifaces[0].Prefix)
	}
	if d["h1"].ifaces[0].Prefix == d["h2"].ifaces[0].Prefix {
		t.Fatal("h1 and h2 should be in different subnets")
	}
	if d["h1"].ifaces[0].IP == d["h3"].ifaces[0].IP {
		t.Fatal("duplicate address assigned")
	}
	// Switch ports carry no IP.
	for _, ifc := range d["sw1"].Ifaces() {
		if ifc.IP.IsValid() {
			t.Fatalf("switch port %s has IP %v", ifc.Name, ifc.IP)
		}
	}
}

func TestHostsGetGateway(t *testing.T) {
	s := sim.NewSim()
	_, d := dumbbell(t, s, 10e6)
	for _, h := range []string{"h1", "h2", "h3", "h4"} {
		if !d[h].Gateway.IsValid() {
			t.Fatalf("%s has no gateway", h)
		}
	}
	// h1's gateway must be r1's address on the shared segment.
	var r1IP bool
	for _, ifc := range d["r1"].Ifaces() {
		if ifc.IP == d["h1"].Gateway {
			r1IP = true
		}
	}
	if !r1IP {
		t.Fatalf("h1 gateway %v is not an r1 interface", d["h1"].Gateway)
	}
}

func TestRouterTables(t *testing.T) {
	s := sim.NewSim()
	_, d := dumbbell(t, s, 10e6)
	r1 := d["r1"]
	if len(r1.Routes()) < 3 {
		t.Fatalf("r1 has %d routes, want >=3 (two LANs + p2p)", len(r1.Routes()))
	}
	// r1 must reach h2's subnet via r2.
	rt, ok := lookupRoute(r1, d["h2"].Addr())
	if !ok {
		t.Fatal("r1 has no route to h2")
	}
	if !rt.NextHop.IsValid() {
		t.Fatal("route to remote LAN should have a next hop")
	}
	if dev := d["h2"].net.DeviceByIP(rt.NextHop); dev != d["r2"] {
		t.Fatalf("next hop owner = %v, want r2", dev)
	}
	// Direct route for its own LAN.
	rt, ok = lookupRoute(r1, d["h1"].Addr())
	if !ok || rt.NextHop.IsValid() {
		t.Fatalf("route to local LAN should be direct, got %+v ok=%v", rt, ok)
	}
}

func TestPathTraversesExpectedDevices(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	path, err := n.Path(d["h1"], d["h2"])
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, dev := range path {
		names = append(names, dev.Name)
	}
	want := []string{"h1", "sw1", "r1", "r2", "sw2", "h2"}
	if len(names) != len(want) {
		t.Fatalf("path = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("path = %v, want %v", names, want)
		}
	}
}

func TestPathSameSegment(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	path, err := n.Path(d["h1"], d["h3"])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1].Name != "sw1" {
		t.Fatalf("same-LAN path should be h1-sw1-h3, got %d devices", len(path))
	}
}

func TestPathDelay(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	delay, err := n.PathDelay(d["h1"], d["h2"])
	if err != nil {
		t.Fatal(err)
	}
	// 1+1+10+1+1 ms
	if want := 14 * time.Millisecond; delay != want {
		t.Fatalf("delay = %v, want %v", delay, want)
	}
}

func TestSingleFlowGetsWANBottleneck(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	f, err := n.StartFlow(d["h1"], d["h2"], FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Rate(); math.Abs(got-10e6) > 1 {
		t.Fatalf("rate = %v, want 10e6", got)
	}
}

func TestTwoFlowsShareWAN(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	f1, _ := n.StartFlow(d["h1"], d["h2"], FlowSpec{})
	f2, _ := n.StartFlow(d["h3"], d["h4"], FlowSpec{})
	if r := f1.Rate(); math.Abs(r-5e6) > 1 {
		t.Fatalf("f1 rate = %v, want 5e6", r)
	}
	if r := f2.Rate(); math.Abs(r-5e6) > 1 {
		t.Fatalf("f2 rate = %v, want 5e6", r)
	}
	f2.Stop()
	if r := f1.Rate(); math.Abs(r-10e6) > 1 {
		t.Fatalf("after f2 stops, f1 rate = %v, want 10e6", r)
	}
}

func TestDemandCappedFlow(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	f1, _ := n.StartFlow(d["h1"], d["h2"], FlowSpec{Demand: 2e6})
	f2, _ := n.StartFlow(d["h3"], d["h4"], FlowSpec{})
	if r := f1.Rate(); math.Abs(r-2e6) > 1 {
		t.Fatalf("capped flow rate = %v, want 2e6", r)
	}
	if r := f2.Rate(); math.Abs(r-8e6) > 1 {
		t.Fatalf("elastic flow rate = %v, want 8e6", r)
	}
	f1.SetDemand(6e6)
	if r := f1.Rate(); math.Abs(r-5e6) > 1 {
		t.Fatalf("after raising demand, f1 = %v, want fair share 5e6", r)
	}
}

func TestCountersAdvanceWithTime(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 8e6) // 1 MB/s
	f, _ := n.StartFlow(d["h1"], d["h2"], FlowSpec{})
	s.RunFor(10 * time.Second)
	if got := f.Sent(); math.Abs(got-10e6) > 1e3 {
		t.Fatalf("sent = %v bytes, want 10e6", got)
	}
	// The WAN link interfaces saw the same octets.
	wanIfc := d["r1"].Ifaces()[1] // second iface: r1-r2 link
	_, out := wanIfc.Counters()
	if math.Abs(float64(out)-10e6) > 1e3 {
		t.Fatalf("r1 WAN out-octets = %d, want ~10e6", out)
	}
	in, _ := d["h2"].Ifaces()[0].Counters()
	if math.Abs(float64(in)-10e6) > 1e3 {
		t.Fatalf("h2 in-octets = %d, want ~10e6", in)
	}
}

func TestFiniteTransferCompletes(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 8e6) // 1 MB/s
	tput, elapsed, err := n.Transfer(d["h1"], d["h2"], 3e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * time.Second; elapsed != want {
		t.Fatalf("3MB at 1MB/s took %v, want %v", elapsed, want)
	}
	if math.Abs(tput-8e6) > 1e3 {
		t.Fatalf("throughput = %v, want 8e6", tput)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("flow lingered after completion: %d active", n.ActiveFlows())
	}
}

func TestFiniteTransferWithRateChange(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 8e6)
	// Start a competitor 1s in; it halves the rate, stretching the
	// 3 MB transfer: 1s at 1MB/s + 4s at 0.5MB/s = 5s.
	var comp *Flow
	s.After(time.Second, func() {
		comp, _ = n.StartFlow(d["h3"], d["h4"], FlowSpec{})
	})
	_, elapsed, err := n.Transfer(d["h1"], d["h2"], 3e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * time.Second; elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if comp == nil || comp.Done() {
		t.Fatal("competitor should still be running")
	}
	comp.Stop()
}

func TestOnCompleteCallback(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 8e6)
	done := false
	_, err := n.StartFlow(d["h1"], d["h2"], FlowSpec{Bytes: 1e6, OnComplete: func(f *Flow) {
		done = true
		if math.Abs(f.Sent()-1e6) > 1 {
			t.Errorf("Sent at completion = %v, want 1e6", f.Sent())
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Second)
	if !done {
		t.Fatal("OnComplete never ran")
	}
}

func TestLinkRateGroundTruth(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	n.StartFlow(d["h1"], d["h2"], FlowSpec{Demand: 3e6})
	wan := n.Links()[3] // r1-r2
	fwd, rev := n.LinkRate(wan)
	if math.Abs(fwd-3e6) > 1 || rev != 0 {
		t.Fatalf("LinkRate = (%v, %v), want (3e6, 0)", fwd, rev)
	}
	n.StartFlow(d["h2"], d["h1"], FlowSpec{Demand: 1e6})
	fwd, rev = n.LinkRate(wan)
	if math.Abs(fwd-3e6) > 1 || math.Abs(rev-1e6) > 1 {
		t.Fatalf("LinkRate = (%v, %v), want (3e6, 1e6)", fwd, rev)
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	f1, _ := n.StartFlow(d["h1"], d["h2"], FlowSpec{})
	f2, _ := n.StartFlow(d["h2"], d["h1"], FlowSpec{})
	if r := f1.Rate(); math.Abs(r-10e6) > 1 {
		t.Fatalf("forward flow = %v, want full 10e6 (full duplex)", r)
	}
	if r := f2.Rate(); math.Abs(r-10e6) > 1 {
		t.Fatalf("reverse flow = %v, want full 10e6 (full duplex)", r)
	}
}

func TestFDBCoversAllStations(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	fdb := n.FDB(d["sw1"])
	// sw1's domain has h1, h3, r1's LAN iface: 3 stations. MACs beyond
	// the r1 port stop at r1 (routers terminate the broadcast domain).
	if len(fdb) != 3 {
		t.Fatalf("sw1 FDB has %d entries, want 3", len(fdb))
	}
	want := map[MAC]bool{
		d["h1"].Ifaces()[0].MAC: true,
		d["h3"].Ifaces()[0].MAC: true,
		d["r1"].Ifaces()[0].MAC: true,
	}
	for _, e := range fdb {
		if !want[e.MAC] {
			t.Fatalf("unexpected FDB entry %v", e.MAC)
		}
	}
}

func TestFDBOnNonSwitch(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	if fdb := n.FDB(d["r1"]); fdb != nil {
		t.Fatalf("FDB of a router = %v, want nil", fdb)
	}
}

func TestLocateMAC(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	sw, port := n.LocateMAC(d["h1"].Ifaces()[0].MAC)
	if sw != d["sw1"] || port == 0 {
		t.Fatalf("LocateMAC(h1) = (%v, %d), want sw1", sw, port)
	}
	if sw, _ := n.LocateMAC(MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); sw != nil {
		t.Fatal("unknown MAC located somewhere")
	}
}

func TestMoveHostChangesFDB(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	n.MoveHost(d["h3"], d["sw2"], 100e6, time.Millisecond)
	sw, _ := n.LocateMAC(d["h3"].Ifaces()[0].MAC)
	if sw != d["sw2"] {
		t.Fatalf("after move, h3 located at %v, want sw2", sw)
	}
	fdb := n.FDB(d["sw1"])
	for _, e := range fdb {
		if e.MAC == d["h3"].Ifaces()[0].MAC {
			t.Fatal("h3 still in sw1's FDB after move")
		}
	}
}

func TestScriptBurstsTruth(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 100e6)
	start := s.Now()
	truth, err := n.ScriptBursts(d["h1"], d["h2"], []Burst{
		{Start: start.Add(1 * time.Second), Dur: 2 * time.Second, Rate: 5e6},
		{Start: start.Add(5 * time.Second), Dur: 1 * time.Second, Rate: 20e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	wan := n.Links()[3]
	s.RunUntil(start.Add(1500 * time.Millisecond))
	if fwd, _ := n.LinkRate(wan); math.Abs(fwd-5e6) > 1 {
		t.Fatalf("during burst 1, link rate = %v, want 5e6", fwd)
	}
	if got := truth(start.Add(1500 * time.Millisecond)); got != 5e6 {
		t.Fatalf("truth = %v, want 5e6", got)
	}
	s.RunUntil(start.Add(4 * time.Second))
	if fwd, _ := n.LinkRate(wan); fwd != 0 {
		t.Fatalf("between bursts, link rate = %v, want 0", fwd)
	}
	s.RunUntil(start.Add(5500 * time.Millisecond))
	if fwd, _ := n.LinkRate(wan); math.Abs(fwd-20e6) > 1 {
		t.Fatalf("during burst 2, link rate = %v, want 20e6", fwd)
	}
	s.RunUntil(start.Add(10 * time.Second))
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after bursts", n.ActiveFlows())
	}
}

func TestCrossTrafficFluctuates(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	ct, err := n.StartCrossTraffic(d["h1"], d["h2"], CrossTrafficSpec{
		Mean: 4e6, Jitter: 0.3, Period: time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := 0; i < 30; i++ {
		s.RunFor(time.Second)
		seen[int64(ct.Demand())] = true
		if ct.Demand() < 0 || ct.Demand() > 8e6 {
			t.Fatalf("demand %v escaped [0, 2*mean]", ct.Demand())
		}
	}
	if len(seen) < 5 {
		t.Fatalf("demand barely moved: %d distinct values in 30s", len(seen))
	}
	ct.Stop()
	if n.ActiveFlows() != 0 {
		t.Fatal("cross traffic flow not removed on Stop")
	}
}

func TestFlowBetweenNonHostsRejected(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	if _, err := n.StartFlow(d["r1"], d["h1"], FlowSpec{}); err == nil {
		t.Fatal("flow from a router was accepted")
	}
}

func TestDisconnectedHostsError(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("s")
	n.Connect(a, sw, 1e6, 0)
	// b unconnected
	n.AssignSubnets()
	n.ComputeRoutes()
	if _, err := n.StartFlow(a, b, FlowSpec{}); err == nil {
		t.Fatal("flow to unconnected host was accepted")
	}
}

func TestSeparateLANsWithoutRouterUnreachable(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	a := n.AddHost("a")
	b := n.AddHost("b")
	s1 := n.AddSwitch("s1")
	s2 := n.AddSwitch("s2")
	n.Connect(a, s1, 1e6, 0)
	n.Connect(b, s2, 1e6, 0)
	n.AssignSubnets()
	n.ComputeRoutes()
	if _, err := n.StartFlow(a, b, FlowSpec{}); err == nil {
		t.Fatal("cross-LAN flow with no router was accepted")
	}
}

func TestDeterministicAddressing(t *testing.T) {
	build := func() []string {
		s := sim.NewSim()
		_, d := dumbbell(t, s, 10e6)
		var out []string
		for _, name := range []string{"h1", "h2", "h3", "h4"} {
			out = append(out, d[name].Addr().String())
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("addressing not deterministic: %v vs %v", a, b)
		}
	}
}

func TestTransferRequiresSimScheduler(t *testing.T) {
	n := New(sim.Real{})
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("s")
	n.Connect(a, sw, 1e6, 0)
	n.Connect(b, sw, 1e6, 0)
	n.AssignSubnets()
	n.ComputeRoutes()
	if _, _, err := n.Transfer(a, b, 100, 0); err == nil {
		t.Fatal("Transfer on a real scheduler should refuse")
	}
}

func TestDuplicateDeviceNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate name")
		}
	}()
	n := New(sim.NewSim())
	n.AddHost("x")
	n.AddHost("x")
}

func BenchmarkResolvePathDumbbell(b *testing.B) {
	s := sim.NewSim()
	n, d := dumbbell(b, s, 10e6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Path(d["h1"], d["h2"]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReallocate32Flows(b *testing.B) {
	s := sim.NewSim()
	n, d := dumbbell(b, s, 10e6)
	var flows []*Flow
	for i := 0; i < 32; i++ {
		f, err := n.StartFlow(d["h1"], d["h2"], FlowSpec{})
		if err != nil {
			b.Fatal(err)
		}
		flows = append(flows, f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flows[i%32].SetDemand(float64(1e5 + i%7*1e5))
	}
}
