package netsim

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"remos/internal/sim"
)

// randomCampus builds a random routed+switched internetwork: several
// wings (router + switch tree + hosts) joined through a core segment.
func randomCampus(rng *rand.Rand) (*Network, []*Device) {
	s := sim.NewSim()
	n := New(s)
	core := n.AddSwitch("core")
	wings := 2 + rng.Intn(3)
	var hosts []*Device
	for w := 0; w < wings; w++ {
		r := n.AddRouter("r" + strconv.Itoa(w))
		n.Connect(r, core, 1e9, time.Millisecond)
		// A random switch tree under the wing.
		sws := []*Device{n.AddSwitch("w" + strconv.Itoa(w) + "s0")}
		n.Connect(sws[0], r, 1e9, time.Millisecond)
		extra := rng.Intn(3)
		for k := 1; k <= extra; k++ {
			sw := n.AddSwitch("w" + strconv.Itoa(w) + "s" + strconv.Itoa(k))
			n.Connect(sw, sws[rng.Intn(len(sws))], 1e9, time.Millisecond)
			sws = append(sws, sw)
		}
		nh := 1 + rng.Intn(4)
		for k := 0; k < nh; k++ {
			h := n.AddHost("w" + strconv.Itoa(w) + "h" + strconv.Itoa(k))
			n.Connect(h, sws[rng.Intn(len(sws))], 100e6, time.Millisecond)
			hosts = append(hosts, h)
		}
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	return n, hosts
}

// Property: every host pair routes loop-free, and the path visits only
// hosts at the endpoints.
func TestPropertyRoutingLoopFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, hosts := randomCampus(rng)
		for trial := 0; trial < 6; trial++ {
			a := hosts[rng.Intn(len(hosts))]
			b := hosts[rng.Intn(len(hosts))]
			if a == b {
				continue
			}
			path, err := n.Path(a, b)
			if err != nil {
				t.Logf("no path %s->%s: %v", a.Name, b.Name, err)
				return false
			}
			seen := map[*Device]bool{}
			for i, d := range path {
				if seen[d] {
					t.Logf("loop through %s", d.Name)
					return false
				}
				seen[d] = true
				if d.Kind == Host && i != 0 && i != len(path)-1 {
					t.Logf("path transits host %s", d.Name)
					return false
				}
			}
			if path[0] != a || path[len(path)-1] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flow conservation — whatever a host sends arrives: the
// receiver's in-octets delta equals the sender's transferred bytes, and
// every interface on the path saw the same amount.
func TestPropertyFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0xf10))
		n, hosts := randomCampus(rng)
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a == b {
			return true
		}
		s := n.Scheduler().(*sim.Sim)
		demand := float64(1+rng.Intn(50)) * 1e6
		fl, err := n.StartFlow(a, b, FlowSpec{Demand: demand})
		if err != nil {
			return false
		}
		dur := time.Duration(1+rng.Intn(20)) * time.Second
		s.RunFor(dur)
		sent := fl.Sent()
		in, _ := b.Ifaces()[0].Counters()
		if math.Abs(float64(in)-sent) > 2 {
			t.Logf("receiver saw %d, sender sent %v", in, sent)
			return false
		}
		_, out := a.Ifaces()[0].Counters()
		if math.Abs(float64(out)-sent) > 2 {
			t.Logf("sender iface out %d vs sent %v", out, sent)
			return false
		}
		// The flow never exceeded its demand.
		maxBytes := demand / 8 * dur.Seconds()
		if sent > maxBytes+2 {
			t.Logf("sent %v exceeds demand ceiling %v", sent, maxBytes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent random flows never over-subscribe any link.
func TestPropertyNoLinkOversubscription(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0xcafe))
		n, hosts := randomCampus(rng)
		if len(hosts) < 2 {
			return true
		}
		for k := 0; k < 6; k++ {
			a := hosts[rng.Intn(len(hosts))]
			b := hosts[rng.Intn(len(hosts))]
			if a == b {
				continue
			}
			var demand float64
			if rng.Intn(2) == 0 {
				demand = float64(1+rng.Intn(200)) * 1e6
			}
			n.StartFlow(a, b, FlowSpec{Demand: demand})
		}
		for _, l := range n.Links() {
			fwd, rev := n.LinkRate(l)
			if fwd > l.Capacity*(1+1e-9) || rev > l.Capacity*(1+1e-9) {
				t.Logf("link %d oversubscribed: %v/%v of %v", l.ID, fwd, rev, l.Capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
