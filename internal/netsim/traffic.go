package netsim

import (
	"math/rand"
	"time"
)

// This file provides the scripted and stochastic background-traffic
// processes the experiments use: the Netperf-style burst generator of
// Figures 4/5 and the random cross-traffic that makes the mirrored-server
// and video experiments (Figures 8-11, Table 1) non-trivial.

// Burst is one constant-rate traffic episode.
type Burst struct {
	Start time.Time
	Dur   time.Duration
	Rate  float64 // bits per second
}

// ScriptBursts runs a sequence of constant-rate bursts from src to dst,
// creating a demand-capped flow for each burst. It returns a function
// reporting the scripted (ground-truth) send rate at any time, which
// accuracy experiments compare against collector observations.
func (n *Network) ScriptBursts(src, dst *Device, bursts []Burst) (truth func(time.Time) float64, err error) {
	for _, b := range bursts {
		b := b
		startDelay := b.Start.Sub(n.sched.Now())
		if startDelay < 0 {
			startDelay = 0
		}
		n.sched.After(startDelay, func() {
			f, err := n.StartFlow(src, dst, FlowSpec{Demand: b.Rate})
			if err != nil {
				return // path broke mid-experiment; burst is lost
			}
			n.sched.After(b.Dur, func() { f.Stop() })
		})
	}
	return func(t time.Time) float64 {
		var r float64
		for _, b := range bursts {
			if !t.Before(b.Start) && t.Before(b.Start.Add(b.Dur)) {
				r += b.Rate
			}
		}
		return r
	}, nil
}

// CrossTraffic is a stochastic background load between two hosts: an
// elastic-capped flow whose demand is re-drawn periodically from a
// bounded random walk. It keeps a path busy with time-varying load so that
// available bandwidth measured by Remos fluctuates realistically.
type CrossTraffic struct {
	flow   *Flow
	timer  interface{ Stop() bool }
	rng    *rand.Rand
	mean   float64
	jitter float64 // fraction of mean used as the walk step scale
	cur    float64
	minR   float64
	maxR   float64
}

// CrossTrafficSpec configures StartCrossTraffic.
type CrossTrafficSpec struct {
	Mean   float64       // long-run mean demand, bits/s
	Jitter float64       // step scale as a fraction of mean (e.g. 0.2)
	Period time.Duration // how often the demand is re-drawn
	Seed   int64
}

// StartCrossTraffic starts a stochastic background flow between the hosts.
func (n *Network) StartCrossTraffic(src, dst *Device, spec CrossTrafficSpec) (*CrossTraffic, error) {
	if spec.Period <= 0 {
		spec.Period = time.Second
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	ct := &CrossTraffic{
		rng:    rng,
		mean:   spec.Mean,
		jitter: spec.Jitter,
		cur:    spec.Mean,
		minR:   0,
		maxR:   2 * spec.Mean,
	}
	f, err := n.StartFlow(src, dst, FlowSpec{Demand: ct.cur})
	if err != nil {
		return nil, err
	}
	ct.flow = f
	ct.timer = n.sched.Every(spec.Period, func() {
		// Mean-reverting bounded walk.
		step := ct.jitter * ct.mean * (2*ct.rng.Float64() - 1)
		ct.cur += step + 0.1*(ct.mean-ct.cur)
		if ct.cur < ct.minR {
			ct.cur = ct.minR
		}
		if ct.cur > ct.maxR {
			ct.cur = ct.maxR
		}
		ct.flow.SetDemand(ct.cur)
	})
	return ct, nil
}

// Stop halts the background process and removes its flow.
func (ct *CrossTraffic) Stop() {
	if ct.timer != nil {
		ct.timer.Stop()
	}
	ct.flow.Stop()
}

// Demand returns the current demand of the background flow in bits/s.
func (ct *CrossTraffic) Demand() float64 { return ct.cur }
