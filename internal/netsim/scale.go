package netsim

import (
	"fmt"
	"time"
)

// TwoTierSpec parameterizes a spine/leaf datacenter-style topology: a
// layer of spine routers, a set of leaf pods each holding a leaf router,
// an access switch and a block of hosts. Every leaf router uplinks to
// every spine, so the fabric has the full-bisection shape of a folded
// Clos / fat-tree built from two stages. With the defaults the network
// holds well over ten thousand devices — the scale the snapshot plane's
// query path is benchmarked at.
//
// Zero values select the defaults noted on each field.
type TwoTierSpec struct {
	// Spines is the number of spine routers (default 4).
	Spines int
	// Leaves is the number of leaf pods (default 100).
	Leaves int
	// HostsPerLeaf is the number of hosts on each leaf's access switch
	// (default 100).
	HostsPerLeaf int

	// SpineCapacity is the leaf-router-to-spine uplink capacity in bits
	// per second (default 40e9). SpineDelay is its one-way propagation
	// delay (default 10µs).
	SpineCapacity float64
	SpineDelay    time.Duration
	// AccessCapacity is the host-to-switch and switch-to-router link
	// capacity (default 10e9). AccessDelay is its one-way delay
	// (default 5µs).
	AccessCapacity float64
	AccessDelay    time.Duration
}

func (s *TwoTierSpec) applyDefaults() {
	if s.Spines <= 0 {
		s.Spines = 4
	}
	if s.Leaves <= 0 {
		s.Leaves = 100
	}
	if s.HostsPerLeaf <= 0 {
		s.HostsPerLeaf = 100
	}
	if s.SpineCapacity <= 0 {
		s.SpineCapacity = 40e9
	}
	if s.SpineDelay <= 0 {
		s.SpineDelay = 10 * time.Microsecond
	}
	if s.AccessCapacity <= 0 {
		s.AccessCapacity = 10e9
	}
	if s.AccessDelay <= 0 {
		s.AccessDelay = 5 * time.Microsecond
	}
}

// NodeCount returns the device count the spec builds: spines plus, per
// leaf, one router, one switch and the host block.
func (s TwoTierSpec) NodeCount() int {
	s.applyDefaults()
	return s.Spines + s.Leaves*(2+s.HostsPerLeaf)
}

// TwoTier is a built two-tier fabric: the devices by role, in
// construction order.
type TwoTier struct {
	Spec        TwoTierSpec
	Spines      []*Device
	LeafRouters []*Device
	LeafSwitch  []*Device
	// Hosts holds every host, leaf-major: hosts of leaf i occupy
	// Hosts[i*HostsPerLeaf : (i+1)*HostsPerLeaf].
	Hosts []*Device
}

// BuildTwoTier populates n with the spec's fabric and finishes it:
// subnets are assigned and routes computed, so the returned network is
// ready for traffic and SNMP walks. Each leaf-to-spine uplink is a
// point-to-point routed link; each leaf's router, switch and hosts share
// one broadcast domain.
func BuildTwoTier(n *Network, spec TwoTierSpec) *TwoTier {
	spec.applyDefaults()
	t := &TwoTier{Spec: spec}
	for i := 0; i < spec.Spines; i++ {
		t.Spines = append(t.Spines, n.AddRouter(fmt.Sprintf("spine%d", i)))
	}
	for l := 0; l < spec.Leaves; l++ {
		lr := n.AddRouter(fmt.Sprintf("leaf%d", l))
		sw := n.AddSwitch(fmt.Sprintf("lsw%d", l))
		for _, sp := range t.Spines {
			n.Connect(lr, sp, spec.SpineCapacity, spec.SpineDelay)
		}
		n.Connect(sw, lr, spec.AccessCapacity, spec.AccessDelay)
		for h := 0; h < spec.HostsPerLeaf; h++ {
			host := n.AddHost(fmt.Sprintf("h%d-%d", l, h))
			n.Connect(host, sw, spec.AccessCapacity, spec.AccessDelay)
			t.Hosts = append(t.Hosts, host)
		}
		t.LeafRouters = append(t.LeafRouters, lr)
		t.LeafSwitch = append(t.LeafSwitch, sw)
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	return t
}
