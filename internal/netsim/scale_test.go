package netsim

import (
	"testing"

	"remos/internal/sim"
)

func TestBuildTwoTierSmall(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	spec := TwoTierSpec{Spines: 2, Leaves: 3, HostsPerLeaf: 4}
	if got, want := spec.NodeCount(), 2+3*(2+4); got != want {
		t.Fatalf("NodeCount = %d, want %d", got, want)
	}
	tt := BuildTwoTier(n, spec)
	if len(tt.Spines) != 2 || len(tt.LeafRouters) != 3 || len(tt.LeafSwitch) != 3 || len(tt.Hosts) != 12 {
		t.Fatalf("device counts = %d/%d/%d/%d", len(tt.Spines), len(tt.LeafRouters), len(tt.LeafSwitch), len(tt.Hosts))
	}
	if len(n.Devices()) != spec.NodeCount() {
		t.Fatalf("network holds %d devices, want %d", len(n.Devices()), spec.NodeCount())
	}
	for i, h := range tt.Hosts {
		if !h.Addr().IsValid() {
			t.Fatalf("host %d has no address", i)
		}
	}
	// Cross-leaf transfer must route over a spine and see the access
	// bottleneck.
	src, dst := tt.Hosts[0], tt.Hosts[2*4] // leaf0 host0 -> leaf2 host0
	tput, _, err := n.Transfer(src, dst, 1e6, 0)
	if err != nil {
		t.Fatalf("cross-leaf transfer: %v", err)
	}
	if tput <= 0 || tput > tt.Spec.AccessCapacity+1 {
		t.Fatalf("cross-leaf throughput = %g (access capacity %g)", tput, tt.Spec.AccessCapacity)
	}
}

func TestTwoTierDefaultsReachTenThousandNodes(t *testing.T) {
	var spec TwoTierSpec
	if got := spec.NodeCount(); got < 10000 {
		t.Fatalf("default NodeCount = %d, want >= 10000", got)
	}
}
