package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"remos/internal/sim"
	"remos/internal/topology"
)

// graphSignature renders a graph canonically: nodes sorted by ID, links
// sorted with endpoints in lexicographic order, every annotation
// included. Two graphs with equal signatures are exactly equal.
func graphSignature(g *topology.Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "N %s %s %s\n", n.ID, n.Kind, n.Addr)
	}
	lines := make([]string, 0, len(g.Links()))
	for _, l := range g.Links() {
		from, to := l.From, l.To
		uf, ut := l.UtilFromTo, l.UtilToFrom
		if from > to {
			from, to = to, from
			uf, ut = ut, uf
		}
		lines = append(lines, fmt.Sprintf("L %s %s %g %g %g %v %v", from, to, l.Capacity, uf, ut, l.Latency, l.Jitter))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// checkReconstruction pins the federation stitch invariant on one
// network: for every tested k, the union of the per-domain interiors
// plus the border links — and equally the merge of the serving graphs —
// reconstructs the original topology exactly.
func checkReconstruction(t *testing.T, n *Network, k int) {
	t.Helper()
	truth, err := TopologyGraph(n)
	if err != nil {
		t.Fatalf("TopologyGraph: %v", err)
	}
	p, err := PartitionDomains(n, k)
	if err != nil {
		t.Fatalf("PartitionDomains(k=%d): %v", k, err)
	}
	total := 0
	for i := range p.Domains {
		total += len(p.Domains[i])
	}
	if total != len(n.Devices()) {
		t.Fatalf("k=%d: partition covers %d of %d devices", k, total, len(n.Devices()))
	}

	// Interiors plus declared borders.
	union := topology.NewGraph()
	for i := 0; i < k; i++ {
		dg, err := p.DomainGraph(i)
		if err != nil {
			t.Fatalf("DomainGraph(%d): %v", i, err)
		}
		union.Merge(dg)
	}
	intraLinks := len(union.Links())
	for _, l := range p.Borders {
		union.Merge(borderOnly(l))
	}
	if got, want := graphSignature(union), graphSignature(truth); got != want {
		t.Fatalf("k=%d: domain union + borders != original topology\ngot:\n%s\nwant:\n%s", k, got, want)
	}
	if intraLinks+len(p.Borders) != len(truth.Links()) {
		t.Fatalf("k=%d: %d intra + %d border links != %d total", k, intraLinks, len(p.Borders), len(truth.Links()))
	}

	// Serving graphs stitched the way the federation router stitches.
	stitched := topology.NewGraph()
	for i := 0; i < k; i++ {
		sg, err := p.ServingGraph(i)
		if err != nil {
			t.Fatalf("ServingGraph(%d): %v", i, err)
		}
		stitched.Merge(sg)
	}
	if got, want := graphSignature(stitched), graphSignature(truth); got != want {
		t.Fatalf("k=%d: stitched serving graphs != original topology\ngot:\n%s\nwant:\n%s", k, got, want)
	}
}

// borderOnly renders one border link as a two-node graph for merging.
func borderOnly(l *Link) *topology.Graph {
	g := topology.NewGraph()
	g.AddNode(nodeFor(l.A.Dev))
	g.AddNode(nodeFor(l.B.Dev))
	if _, err := g.AddLink(linkFor(l)); err != nil {
		panic(err)
	}
	return g
}

func TestPartitionReconstructsTwoTier(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		s := sim.NewSim()
		n := New(s)
		BuildTwoTier(n, TwoTierSpec{Spines: 3, Leaves: 8, HostsPerLeaf: 4})
		checkReconstruction(t, n, k)
	}
}

func TestPartitionReconstructsRandomNetworks(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 24; trial++ {
		s := sim.NewSim()
		n := New(s)
		// A random router core (spanning tree plus chords) with a random
		// block of hosts behind a switch on each router.
		nr := 2 + rnd.Intn(6)
		routers := make([]*Device, nr)
		// The virtual topology keeps one link per device pair (Merge
		// dedupes by unordered endpoints), so the generator does too.
		wired := map[[2]int]bool{}
		connect := func(a, b int, capacity float64) {
			key := [2]int{min(a, b), max(a, b)}
			if a == b || wired[key] {
				return
			}
			wired[key] = true
			n.Connect(routers[a], routers[b], capacity, time.Millisecond)
		}
		for i := range routers {
			routers[i] = n.AddRouter(fmt.Sprintf("r%d", i))
			if i > 0 {
				connect(i, rnd.Intn(i), 1e9)
			}
		}
		for extra := rnd.Intn(nr); extra > 0; extra-- {
			connect(rnd.Intn(nr), rnd.Intn(nr), 1e9+float64(rnd.Intn(5))*1e8)
		}
		for i, r := range routers {
			sw := n.AddSwitch(fmt.Sprintf("sw%d", i))
			n.Connect(sw, r, 1e9, time.Millisecond)
			for h := 0; h < 1+rnd.Intn(3); h++ {
				host := n.AddHost(fmt.Sprintf("h%d-%d", i, h))
				n.Connect(host, sw, 100e6, time.Millisecond)
			}
		}
		n.AssignSubnets()
		n.ComputeRoutes()
		k := 1 + rnd.Intn(nr)
		checkReconstruction(t, n, k)
	}
}

func TestPartitionDomainsErrors(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	BuildTwoTier(n, TwoTierSpec{Spines: 1, Leaves: 1, HostsPerLeaf: 1})
	if _, err := PartitionDomains(n, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := PartitionDomains(n, len(n.Devices())+1); err == nil {
		t.Fatal("k > devices should fail")
	}
}

func TestPartitionHostPrefixesCoverHosts(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	tt := BuildTwoTier(n, TwoTierSpec{Spines: 2, Leaves: 6, HostsPerLeaf: 3})
	p, err := PartitionDomains(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tt.Hosts {
		dom := p.DomainOf(h)
		covered := false
		for _, pfx := range p.HostPrefixes(dom) {
			if pfx.Contains(h.ManagementAddr()) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("host %s (domain %d) not covered by its domain's prefixes", h.ManagementAddr(), dom)
		}
		// The owning domain must hold the longest matching prefix across
		// all domains, so directory lookups route to the right master.
		best, bestDom := -1, -1
		for i := 0; i < p.K(); i++ {
			for _, pfx := range p.HostPrefixes(i) {
				if pfx.Contains(h.ManagementAddr()) && pfx.Bits() > best {
					best, bestDom = pfx.Bits(), i
				}
			}
		}
		if bestDom != dom {
			t.Fatalf("host %s: longest prefix owned by domain %d, device in domain %d", h.ManagementAddr(), bestDom, dom)
		}
	}
}
