package netsim

import "sort"

// FdbEntry is one learned entry in a switch's forwarding database: the MAC
// address of a station and the bridge port (ifIndex) leading toward it.
// The emulated Bridge-MIB serves these entries as dot1dTpFdbTable rows.
type FdbEntry struct {
	MAC  MAC
	Port int // ifIndex of the switch port toward the station
}

// FDB returns the forwarding database of a switch: for every addressed
// interface reachable in the switch's broadcast domain, the port it is
// learned on. The database is recomputed from the topology on demand (the
// emulator models fully-converged learning) and is stable across calls
// until the topology changes.
func (n *Network) FDB(sw *Device) []FdbEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sw.Kind != Switch {
		return nil
	}
	var entries []FdbEntry
	for _, port := range sw.ifaces {
		if port.Link == nil {
			continue
		}
		for _, m := range n.macsBeyondLocked(sw, port) {
			entries = append(entries, FdbEntry{MAC: m, Port: port.Index})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		return lessMAC(entries[i].MAC, entries[j].MAC)
	})
	return entries
}

// macsBeyondLocked collects the MACs of all device interfaces reachable
// from the given switch port, traversing through switches only. Caller
// holds n.mu.
func (n *Network) macsBeyondLocked(sw *Device, port *Iface) []MAC {
	var macs []MAC
	visited := map[*Device]bool{sw: true}
	peer := port.Peer()
	if peer == nil {
		return nil
	}
	queue := []*Iface{peer}
	for len(queue) > 0 {
		arrived := queue[0]
		queue = queue[1:]
		d := arrived.Dev
		if visited[d] {
			continue
		}
		visited[d] = true
		if d.Kind == Switch {
			// A bridge's own management MAC is learned by its
			// neighbours like any station (real switches source
			// management and spanning-tree traffic). Without it,
			// FDB-based topology inference cannot distinguish a
			// station-less interior switch from a wire.
			if len(d.ifaces) > 0 {
				macs = append(macs, d.ifaces[0].MAC)
			}
			for _, p := range d.ifaces {
				if p != arrived && p.Link != nil {
					queue = append(queue, p.Peer())
				}
			}
			continue
		}
		// Host or router: the station's MAC on this segment.
		macs = append(macs, arrived.MAC)
	}
	return macs
}

func lessMAC(a, b MAC) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LocateMAC returns the switch port (device and ifIndex) a station with
// the given MAC is directly attached to, or nil if the MAC is unknown or
// not attached to a switch. This mirrors the Bridge Collector's
// host-location check ("the location of a host can be monitored merely by
// checking its forwarding entry in the bridge to which it is connected").
func (n *Network) LocateMAC(m MAC) (*Device, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, d := range n.order {
		if d.Kind == Switch {
			continue
		}
		for _, ifc := range d.ifaces {
			if ifc.MAC != m || ifc.Link == nil {
				continue
			}
			peer := ifc.Peer()
			if peer != nil && peer.Dev.Kind == Switch {
				return peer.Dev, peer.Index
			}
			return nil, 0
		}
	}
	return nil, 0
}
