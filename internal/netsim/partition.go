package netsim

import (
	"fmt"
	"net/netip"
	"sort"

	"remos/internal/topology"
)

// Domain partitioning: the federation plane splits one emulated network
// into k administrative domains, each run by its own master, with the
// links crossing domain boundaries declared explicitly as border links.
// The invariant the federation stitch depends on — and the property test
// pins — is that the union of the per-domain subgraphs plus the border
// links reconstructs the original topology exactly.

// Partition is one division of a network into k domains.
type Partition struct {
	net *Network
	k   int

	// Domains holds each domain's devices in network insertion order.
	Domains [][]*Device
	// Borders are the links whose endpoints lie in different domains, in
	// network link order.
	Borders []*Link

	domainOf map[*Device]int
}

// PartitionDomains splits the network into k connected domains by
// deterministic multi-source BFS: k seed devices are chosen evenly
// spaced over the device list, and every device joins the domain of the
// seed that reaches it first (ties break toward the lower domain
// index). Devices unreachable from any seed fall into domain 0.
func PartitionDomains(n *Network, k int) (*Partition, error) {
	devs := n.Devices()
	if k <= 0 {
		return nil, fmt.Errorf("netsim: partition needs k >= 1, got %d", k)
	}
	if k > len(devs) {
		return nil, fmt.Errorf("netsim: cannot partition %d devices into %d domains", len(devs), k)
	}
	p := &Partition{
		net:      n,
		k:        k,
		Domains:  make([][]*Device, k),
		domainOf: make(map[*Device]int, len(devs)),
	}
	// Seeds are routers when enough exist (evenly spaced over the router
	// list), otherwise evenly spaced devices. Router seeds keep broadcast
	// domains whole: a leaf pod's switch and hosts are reachable only
	// through their own router, so the pod follows the router's domain
	// and no advertised host subnet ever spans two domains.
	seeds := make([]*Device, 0, len(devs))
	for _, d := range devs {
		if d.Kind == Router {
			seeds = append(seeds, d)
		}
	}
	if len(seeds) < k {
		seeds = devs
	}
	type qent struct {
		dev *Device
		dom int
	}
	queue := make([]qent, 0, len(devs))
	for i := 0; i < k; i++ {
		seed := seeds[i*len(seeds)/k]
		if _, taken := p.domainOf[seed]; taken {
			// Degenerate spacing (k close to len(devs)); take the next
			// unclaimed device.
			for _, d := range devs {
				if _, ok := p.domainOf[d]; !ok {
					seed = d
					break
				}
			}
		}
		p.domainOf[seed] = i
		queue = append(queue, qent{seed, i})
	}
	// One BFS over the union frontier: the queue already interleaves the
	// seeds, so expansion proceeds ring by ring and the first domain to
	// reach a device claims it.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ifc := range cur.dev.Ifaces() {
			peer := ifc.Peer()
			if peer == nil {
				continue
			}
			if _, ok := p.domainOf[peer.Dev]; ok {
				continue
			}
			p.domainOf[peer.Dev] = cur.dom
			queue = append(queue, qent{peer.Dev, cur.dom})
		}
	}
	for _, d := range devs {
		dom, ok := p.domainOf[d]
		if !ok {
			// Disconnected from every seed: keep the partition total.
			dom = 0
			p.domainOf[d] = 0
		}
		p.Domains[dom] = append(p.Domains[dom], d)
	}
	for _, l := range n.Links() {
		if p.domainOf[l.A.Dev] != p.domainOf[l.B.Dev] {
			p.Borders = append(p.Borders, l)
		}
	}
	return p, nil
}

// K returns the number of domains.
func (p *Partition) K() int { return p.k }

// DomainOf returns the domain index a device belongs to.
func (p *Partition) DomainOf(d *Device) int { return p.domainOf[d] }

// nodeFor renders one device as a topology node under the collector
// naming convention: the node ID is the management address string.
func nodeFor(d *Device) topology.Node {
	addr := d.ManagementAddr().String()
	var kind topology.NodeKind
	switch d.Kind {
	case Router:
		kind = topology.RouterNode
	case Switch:
		kind = topology.SwitchNode
	default:
		kind = topology.HostNode
	}
	return topology.Node{ID: addr, Kind: kind, Addr: addr}
}

func linkFor(l *Link) topology.Link {
	return topology.Link{
		From:     l.A.Dev.ManagementAddr().String(),
		To:       l.B.Dev.ManagementAddr().String(),
		Capacity: l.Capacity,
		Latency:  l.Delay,
		Jitter:   l.Jitter,
	}
}

// TopologyGraph derives the full topology graph a single master's
// collectors would assemble from a complete walk of the network — the
// federation plane's ground truth.
func TopologyGraph(n *Network) (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, d := range n.Devices() {
		g.AddNode(nodeFor(d))
	}
	for _, l := range n.Links() {
		if _, err := g.AddLink(linkFor(l)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// DomainGraph returns domain i's interior: its devices and the links
// with both endpoints inside the domain.
func (p *Partition) DomainGraph(i int) (*topology.Graph, error) {
	if i < 0 || i >= p.k {
		return nil, fmt.Errorf("netsim: domain %d out of range [0,%d)", i, p.k)
	}
	g := topology.NewGraph()
	for _, d := range p.Domains[i] {
		g.AddNode(nodeFor(d))
	}
	for _, l := range p.net.Links() {
		if p.domainOf[l.A.Dev] == i && p.domainOf[l.B.Dev] == i {
			if _, err := g.AddLink(linkFor(l)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// ServingGraph returns what domain i's master serves to the federation:
// the domain interior plus the border links incident to the domain,
// with the far endpoints included as stub nodes. Stitching the serving
// graphs of every domain (topology.Graph.Merge unites stubs with their
// home domain's real nodes and dedupes border links declared from both
// sides) reconstructs the full topology exactly.
func (p *Partition) ServingGraph(i int) (*topology.Graph, error) {
	g, err := p.DomainGraph(i)
	if err != nil {
		return nil, err
	}
	for _, l := range p.Borders {
		da, db := p.domainOf[l.A.Dev], p.domainOf[l.B.Dev]
		if da != i && db != i {
			continue
		}
		for _, stub := range [2]*Device{l.A.Dev, l.B.Dev} {
			if p.domainOf[stub] != i {
				if g.Node(stub.ManagementAddr().String()) == nil {
					g.AddNode(nodeFor(stub))
				}
			}
		}
		if _, err := g.AddLink(linkFor(l)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// HostPrefixes returns the network prefixes domain i's master is
// responsible for: the distinct interface subnets of its devices plus
// host routes for devices whose management address lies outside them
// (switch management addresses). Sorted for deterministic adverts.
func (p *Partition) HostPrefixes(i int) []netip.Prefix {
	if i < 0 || i >= p.k {
		return nil
	}
	seen := make(map[netip.Prefix]bool)
	var out []netip.Prefix
	add := func(pfx netip.Prefix) {
		if pfx.IsValid() && !seen[pfx] {
			seen[pfx] = true
			out = append(out, pfx)
		}
	}
	for _, d := range p.Domains[i] {
		covered := false
		for _, ifc := range d.Ifaces() {
			if ifc.Prefix.IsValid() {
				add(ifc.Prefix.Masked())
				if ifc.IP.IsValid() {
					covered = true
				}
			}
		}
		if !covered {
			if ip := d.ManagementAddr(); ip.IsValid() {
				add(netip.PrefixFrom(ip, ip.BitLen()))
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Bits() != out[b].Bits() {
			return out[a].Bits() > out[b].Bits()
		}
		return out[a].Addr().Less(out[b].Addr())
	})
	return out
}

// DomainHosts returns the management addresses of domain i's hosts (end
// systems only), in insertion order — the query population for
// federation benchmarks.
func (p *Partition) DomainHosts(i int) []netip.Addr {
	if i < 0 || i >= p.k {
		return nil
	}
	var out []netip.Addr
	for _, d := range p.Domains[i] {
		if d.Kind == Host {
			out = append(out, d.ManagementAddr())
		}
	}
	return out
}
