package netsim

import (
	"math"
	"testing"
	"time"

	"remos/internal/sim"
)

// Tests for the emulator features behind the paper's §6.2 extensions:
// device reboots, link jitter, and wireless cells.

func TestRebootResetsCountersAndUptime(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 8e6)
	n.StartFlow(d["h1"], d["h2"], FlowSpec{Demand: 8e6})
	s.RunFor(10 * time.Second)
	_, out := d["r1"].Ifaces()[1].Counters()
	if out == 0 {
		t.Fatal("no traffic accounted before reboot")
	}
	bootBefore := d["r1"].BootTime()
	n.Reboot(d["r1"])
	if _, out := d["r1"].Ifaces()[1].Counters(); out != 0 {
		t.Fatalf("counters = %d after reboot, want 0", out)
	}
	if !d["r1"].BootTime().After(bootBefore) {
		t.Fatal("boot time did not advance")
	}
	// Traffic keeps flowing and counters climb again.
	s.RunFor(5 * time.Second)
	if _, out := d["r1"].Ifaces()[1].Counters(); out == 0 {
		t.Fatal("counters frozen after reboot")
	}
}

func TestRebootDoesNotAffectOtherDevices(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 8e6)
	n.StartFlow(d["h1"], d["h2"], FlowSpec{Demand: 8e6})
	s.RunFor(10 * time.Second)
	in, _ := d["h2"].Ifaces()[0].Counters()
	n.Reboot(d["r1"])
	in2, _ := d["h2"].Ifaces()[0].Counters()
	if in2 < in {
		t.Fatal("another device's counters moved backwards")
	}
}

func TestPathDelayJitterCombinesInQuadrature(t *testing.T) {
	s := sim.NewSim()
	n, d := dumbbell(t, s, 10e6)
	for _, l := range n.Links() {
		l.Jitter = 3 * time.Millisecond
	}
	// h1-h2 path: 5 links, each 3ms jitter: sqrt(5)*3ms.
	delay, jitter, err := n.PathDelayJitter(d["h1"], d["h2"])
	if err != nil {
		t.Fatal(err)
	}
	if delay != 14*time.Millisecond {
		t.Fatalf("delay = %v", delay)
	}
	want := 3e-3 * math.Sqrt(5)
	if math.Abs(jitter.Seconds()-want) > 1e-6 {
		t.Fatalf("jitter = %v, want %.3fms", jitter, want*1e3)
	}
}

func TestAccessPointAssociationLifecycle(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	ap1 := n.AddAccessPoint("ap1")
	ap2 := n.AddAccessPoint("ap2")
	dsw := n.AddSwitch("dsw")
	n.Connect(ap1.Dev, dsw, 1e9, 0)
	n.Connect(ap2.Dev, dsw, 1e9, 0)
	station := n.AddHost("sta")
	rate, err := ap1.Associate(station, -58)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 48e6 {
		t.Fatalf("rate at -58 dBm = %v, want 48e6", rate)
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	mac := MAC(station.Ifaces()[0].MAC)
	if _, ok := ap1.Association(mac); !ok {
		t.Fatal("station missing from ap1's table")
	}
	// Roam: ap1 forgets, ap2 learns, link capacity changes.
	if _, err := ap2.Associate(station, -84); err != nil {
		t.Fatal(err)
	}
	if _, ok := ap1.Association(mac); ok {
		t.Fatal("ap1 still lists the roamed station")
	}
	a, ok := ap2.Association(mac)
	if !ok || a.Rate != 9e6 {
		t.Fatalf("ap2 association = %+v ok=%v", a, ok)
	}
	if got := station.Ifaces()[0].Speed(); got != 9e6 {
		t.Fatalf("link speed after roam = %v", got)
	}
	// FDB view follows the roam.
	sw, _ := n.LocateMAC(station.Ifaces()[0].MAC)
	if sw != ap2.Dev {
		t.Fatalf("station located at %v, want ap2", sw)
	}
}

func TestAssociateMultiHomedRejected(t *testing.T) {
	s := sim.NewSim()
	n := New(s)
	ap := n.AddAccessPoint("ap")
	sw := n.AddSwitch("sw")
	h := n.AddHost("h")
	n.Connect(h, sw, 1e6, 0)
	n.Connect(h, sw, 1e6, 0) // second interface
	if _, err := ap.Associate(h, -50); err == nil {
		t.Fatal("multi-homed host associated")
	}
}

func TestRunRealTimeTracksWallClock(t *testing.T) {
	s := sim.NewSim()
	fired := 0
	s.Every(20*time.Millisecond, func() { fired++ })
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunRealTime(5*time.Millisecond, stop)
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	<-done
	if fired < 5 || fired > 15 {
		t.Fatalf("periodic callback fired %d times in ~200ms at 20ms period", fired)
	}
	if got := s.Now().Sub(sim.Epoch); got < 150*time.Millisecond || got > 400*time.Millisecond {
		t.Fatalf("simulated clock advanced %v for ~200ms of wall time", got)
	}
}
