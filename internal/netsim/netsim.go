// Package netsim is a deterministic, fluid-flow network emulator that
// stands in for the multi-host testbeds the Remos paper ran on (the CMU
// campus LAN, the CMU/ETH/BBN wide-area paths, and the private router
// testbed of Section 5.2).
//
// The emulator models hosts, level-2 switches and level-3 routers joined by
// full-duplex links with capacity and propagation delay. Traffic is fluid:
// concurrent flows share links according to max-min fairness, interface
// octet counters advance as the integral of the allocated rates, and finite
// transfers complete by discrete events on the simulation clock. This is
// exactly the level of abstraction Remos observes the network at — SNMP
// counters, forwarding tables, routes and achieved transfer rates — so the
// collectors run against it unmodified.
package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"remos/internal/sim"
)

// DeviceKind distinguishes the three classes of emulated equipment.
type DeviceKind int

// Device kinds.
const (
	Host   DeviceKind = iota // end system; sources and sinks flows
	Switch                   // level-2 bridge; forwards by MAC
	Router                   // level-3; forwards by IP
)

// String returns the lowercase kind name.
func (k DeviceKind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	case Router:
		return "router"
	}
	return fmt.Sprintf("DeviceKind(%d)", int(k))
}

// MAC is a 48-bit hardware address.
type MAC [6]byte

// String formats the address in the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Device is one piece of emulated equipment.
type Device struct {
	Name string
	Kind DeviceKind

	// SNMP exposes whether a management agent on this device is
	// reachable by collectors, and under which community string. Devices
	// with Reachable=false model the paper's "routers it cannot access",
	// which the SNMP Collector must represent with a virtual switch.
	SNMP struct {
		Reachable bool
		Community string
	}

	// Gateway is the default next hop for hosts; set by ComputeRoutes.
	Gateway netip.Addr

	net    *Network
	ifaces []*Iface
	routes []Route    // L3 forwarding table (routers; hosts use Gateway)
	mgmtIP netip.Addr // management address for switches (no L3 ifaces)
	booted time.Time  // last (re)boot; zero means the network's start
	loadFn func() float64
}

// BootTime returns when the device last (re)booted.
func (d *Device) BootTime() time.Time { return d.booted }

// SetLoadSource attaches a CPU load signal to the device (usually a
// hostload.Generator's Next). The emulated Host-Resources MIB serves it
// as hrProcessorLoad, which the host load collector polls.
func (d *Device) SetLoadSource(fn func() float64) {
	d.net.mu.Lock()
	defer d.net.mu.Unlock()
	d.loadFn = fn
}

// Load samples the device's CPU load signal; 0 when none is attached.
func (d *Device) Load() float64 {
	d.net.mu.Lock()
	fn := d.loadFn
	d.net.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// ManagementAddr returns the address a management agent on the device
// answers at: the first interface address, or for switches the dedicated
// management address assigned by AssignSubnets.
func (d *Device) ManagementAddr() netip.Addr {
	if ip := d.Addr(); ip.IsValid() {
		return ip
	}
	return d.mgmtIP
}

// Ifaces returns the device's interfaces in ifIndex order.
func (d *Device) Ifaces() []*Iface { return d.ifaces }

// Routes returns the device's routing table (routers only).
func (d *Device) Routes() []Route { return d.routes }

// Network returns the network the device belongs to.
func (d *Device) Network() *Network { return d.net }

// IsRouter reports whether the device forwards at level 3.
func (d *Device) IsRouter() bool { return d.Kind == Router }

// Addr returns the device's first assigned IP address, or the zero Addr if
// it has none. For single-homed hosts this is "the" address.
func (d *Device) Addr() netip.Addr {
	for _, ifc := range d.ifaces {
		if ifc.IP.IsValid() {
			return ifc.IP
		}
	}
	return netip.Addr{}
}

// Iface is a network interface on a device. ifIndex values are 1-based, as
// in the SNMP interfaces table.
type Iface struct {
	Dev   *Device
	Index int
	Name  string
	MAC   MAC

	// IP and Prefix are set by AssignSubnets for hosts and routers;
	// switch ports carry no address.
	IP     netip.Addr
	Prefix netip.Prefix

	Link *Link // nil while unconnected

	// Octet counters, advanced lazily by the flow accounting. These are
	// the values the emulated SNMP agent serves as ifInOctets and
	// ifOutOctets (truncated to Counter32 there).
	inOctets  float64
	outOctets float64
}

// Peer returns the interface at the other end of this interface's link,
// or nil if unconnected.
func (i *Iface) Peer() *Iface {
	if i.Link == nil {
		return nil
	}
	if i.Link.A == i {
		return i.Link.B
	}
	return i.Link.A
}

// Speed returns the attached link capacity in bits per second, or 0 if
// unconnected.
func (i *Iface) Speed() float64 {
	if i.Link == nil {
		return 0
	}
	return i.Link.Capacity
}

// Counters returns the interface's in/out octet counters after advancing
// flow accounting to the current simulation time.
func (i *Iface) Counters() (in, out uint64) {
	n := i.Dev.net
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked(n.sched.Now())
	return uint64(i.inOctets), uint64(i.outOctets)
}

// Link is a full-duplex connection between two interfaces.
type Link struct {
	ID       int
	A, B     *Iface
	Capacity float64       // bits per second, each direction
	Delay    time.Duration // one-way propagation delay
	// Jitter is the standard deviation of the one-way delay (queueing
	// variability); multimedia applications care about it (Section 6.2
	// names it as the next metric Remos should provide).
	Jitter time.Duration
}

// Route is one entry in a router's L3 forwarding table.
type Route struct {
	Prefix  netip.Prefix
	NextHop netip.Addr // zero Addr means directly connected
	IfIndex int        // outgoing interface on this device
}

// Network is a collection of devices, links and flows sharing one
// simulation clock.
type Network struct {
	mu    sync.Mutex
	sched sim.Scheduler

	devices map[string]*Device
	order   []*Device // insertion order, for deterministic iteration
	links   []*Link

	flows       map[int]*Flow
	nextFlowID  int
	lastAdvance time.Time

	macCounter uint32
	subnetSeq  int

	byIP map[netip.Addr]*Iface
	aps  map[*Device]*AccessPoint

	fdbEpoch int // bumped on any topology change; invalidates FDB caches
}

// New creates an empty network on the given scheduler.
func New(sched sim.Scheduler) *Network {
	return &Network{
		sched:       sched,
		devices:     make(map[string]*Device),
		flows:       make(map[int]*Flow),
		byIP:        make(map[netip.Addr]*Iface),
		lastAdvance: sched.Now(),
	}
}

// Scheduler returns the clock the network runs on.
func (n *Network) Scheduler() sim.Scheduler { return n.sched }

// AddHost adds a host device. Device names must be unique.
func (n *Network) AddHost(name string) *Device { return n.addDevice(name, Host) }

// AddSwitch adds a level-2 switch.
func (n *Network) AddSwitch(name string) *Device { return n.addDevice(name, Switch) }

// AddRouter adds a level-3 router.
func (n *Network) AddRouter(name string) *Device { return n.addDevice(name, Router) }

func (n *Network) addDevice(name string, kind DeviceKind) *Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.devices[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate device name %q", name))
	}
	d := &Device{Name: name, Kind: kind, net: n}
	d.SNMP.Reachable = kind != Host // agents on routers and switches by default
	d.SNMP.Community = "public"
	n.devices[name] = d
	n.order = append(n.order, d)
	n.fdbEpoch++
	return d
}

// Device returns the named device, or nil.
func (n *Network) Device(name string) *Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.devices[name]
}

// Devices returns all devices in creation order.
func (n *Network) Devices() []*Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Device, len(n.order))
	copy(out, n.order)
	return out
}

// Links returns all links in creation order.
func (n *Network) Links() []*Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Link, len(n.links))
	copy(out, n.links)
	return out
}

// Connect joins two devices with a new link of the given capacity (bits
// per second) and one-way delay, creating one new interface on each side.
func (n *Network) Connect(a, b *Device, capacity float64, delay time.Duration) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	if capacity <= 0 {
		panic("netsim: Connect with non-positive capacity")
	}
	ia := n.newIfaceLocked(a)
	ib := n.newIfaceLocked(b)
	l := &Link{ID: len(n.links), A: ia, B: ib, Capacity: capacity, Delay: delay}
	ia.Link = l
	ib.Link = l
	n.links = append(n.links, l)
	n.fdbEpoch++
	return l
}

func (n *Network) newIfaceLocked(d *Device) *Iface {
	n.macCounter++
	ifc := &Iface{
		Dev:   d,
		Index: len(d.ifaces) + 1,
		Name:  fmt.Sprintf("%s-eth%d", d.Name, len(d.ifaces)),
		MAC:   MAC{0x02, 0x00, byte(n.macCounter >> 16), byte(n.macCounter >> 8), byte(n.macCounter), 0x01},
	}
	d.ifaces = append(d.ifaces, ifc)
	return ifc
}

// MoveHost re-homes a single-link host onto a new peer device (typically a
// different switch), modeling the host movement the Bridge Collector must
// track. The host keeps its addresses; routes are not recomputed, which
// matches a station roaming within its LAN.
func (n *Network) MoveHost(h *Device, newPeer *Device, capacity float64, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h.Kind != Host || len(h.ifaces) != 1 {
		panic("netsim: MoveHost requires a single-homed host")
	}
	n.advanceLocked(n.sched.Now())
	// Sever the old link: both sides go down. Any flow crossing it keeps
	// its stale path; callers re-resolve flows after moves.
	old := h.ifaces[0].Link
	if old != nil {
		old.A.Link = nil
		old.B.Link = nil
		for i, l := range n.links {
			if l == old {
				n.links = append(n.links[:i], n.links[i+1:]...)
				break
			}
		}
		// Renumber link IDs to stay dense.
		for i, l := range n.links {
			l.ID = i
		}
	}
	ip := n.newIfaceLocked(newPeer)
	l := &Link{ID: len(n.links), A: h.ifaces[0], B: ip, Capacity: capacity, Delay: delay}
	h.ifaces[0].Link = l
	ip.Link = l
	n.links = append(n.links, l)
	n.fdbEpoch++
	n.reallocateLocked()
}

// Reboot simulates a management-plane restart of the device: its uptime
// restarts and all interface octet counters reset to zero — the failure
// collectors must detect via sysUpTime before trusting counter deltas.
// Traffic forwarding is unaffected (the emulator models the counters'
// loss, not an outage).
func (n *Network) Reboot(d *Device) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked(n.sched.Now())
	d.booted = n.sched.Now()
	for _, ifc := range d.ifaces {
		ifc.inOctets = 0
		ifc.outOctets = 0
	}
}

// TopologyEpoch returns a counter that increments on every topology
// change (devices added, links connected, hosts moved). Callers caching
// derived views (forwarding databases, MIB tables) revalidate against it.
func (n *Network) TopologyEpoch() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fdbEpoch
}

// IfaceByIP returns the interface holding the given address, or nil.
func (n *Network) IfaceByIP(ip netip.Addr) *Iface {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.byIP[ip]
}

// DeviceByIP returns the device owning the given address, or nil.
func (n *Network) DeviceByIP(ip netip.Addr) *Device {
	if ifc := n.IfaceByIP(ip); ifc != nil {
		return ifc.Dev
	}
	return nil
}

// sortedDevices returns devices of the given kind sorted by name.
func sortDevices(ds []*Device) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
}
