package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectation patterns of one // want
// comment, analysistest style: // want `re` "re" ...
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// fixturePolicy is DefaultPolicy plus the opt-ins a fixture cannot
// express through its package clause alone: the lockorder fixture
// declares its own two-level hierarchy, and the lockheld fixture names
// itself a hot-path package.
func fixturePolicy(name string) Policy {
	p := DefaultPolicy()
	switch name {
	case "lockorder":
		p.LockLevels["lockorder.Inner.mu"] = 10
		p.LockLevels["lockorder.Outer.mu"] = 20
	case "lockheld":
		p.LockHeld["lockheld"] = true
	}
	return p
}

// golden runs every analyzer over one testdata package and matches the
// diagnostics against its // want comments line by line.
func golden(t *testing.T, name string) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "golden/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags := Run([]*Package{pkg}, fixturePolicy(name))

	// Collect want expectations: (file base, line) -> patterns.
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range wantRe.FindAllString(rest, -1) {
					pat := strings.Trim(q, "`")
					if q[0] == '"' {
						if u, err := strconv.Unquote(q); err == nil {
							pat = u
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					k := key{filepath.Base(pos.Filename), pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.File), d.Line}
		rendered := fmt.Sprintf("[%s] %s", d.Check, d.Message)
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(rendered) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s:%d: %s", k.file, k.line, rendered)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, re)
		}
	}
	return diags
}

func TestWallclockGolden(t *testing.T)  { golden(t, "wallclock") }
func TestGlobalrandGolden(t *testing.T) { golden(t, "globalrand") }
func TestErrwrapGolden(t *testing.T)    { golden(t, "errwrap") }
func TestMetricnameGolden(t *testing.T) { golden(t, "metricname") }
func TestGoctxGolden(t *testing.T)      { golden(t, "goctx") }
func TestPoolreturnGolden(t *testing.T) { golden(t, "poolreturn") }
func TestEpochkeyGolden(t *testing.T)   { golden(t, "epochkey") }

func TestLockorderGolden(t *testing.T)    { golden(t, "lockorder") }
func TestLockheldGolden(t *testing.T)     { golden(t, "lockheld") }
func TestPubimmutableGolden(t *testing.T) { golden(t, "pubimmutable") }

// TestGoldenExitStatus asserts each negative fixture would fail a lint
// run — the acceptance criterion that remoslint demonstrably exits 1 on
// each analyzer's golden cases.
func TestGoldenExitStatus(t *testing.T) {
	for _, name := range []string{"wallclock", "globalrand", "errwrap", "metricname", "goctx",
		"poolreturn", "epochkey", "lockorder", "lockheld", "pubimmutable", "allow"} {
		pkg, err := LoadDir(filepath.Join("testdata", "src", name), "golden/"+name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if diags := Run([]*Package{pkg}, fixturePolicy(name)); len(diags) == 0 {
			t.Errorf("%s fixture produced no findings; a lint run over it would exit 0", name)
		}
	}
}

// TestAllowDirectives pins the directive verifier's behaviour: the
// expectations are listed here because a want comment cannot share a
// line with a line-comment directive.
func TestAllowDirectives(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "allow"), "golden/allow")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, DefaultPolicy())
	type want struct {
		line  int
		check string
		re    string
	}
	wants := []want{
		{10, "allow", `unknown check "nonsense"`},
		{13, "allow", `carries no reason`},
		{16, "allow", `unused allow directive for wallclock`},
		{25, "wallclock", `direct time\.Now`},
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Line == w.line && d.Check == w.check && regexp.MustCompile(w.re).MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic at line %d [%s] matching %q", w.line, w.check, w.re)
		}
	}
	// The suppressed fallback (line 21) must not appear.
	for _, d := range diags {
		if d.Line == 21 {
			t.Errorf("directive at line 20 failed to suppress: %v", d)
		}
	}
}

// TestRepoLintClean asserts the repository itself passes every
// analyzer: the fix sweep stays fixed, and regressions fail the suite
// even before CI runs make lint.
func TestRepoLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); loader lost the module", len(pkgs))
	}
	diags, times := RunTimed(pkgs, DefaultPolicy())
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	// Pinned: the newest, least-hardened concurrent code (federation's
	// router, the directory's replication plane) is inside the coverage
	// of all three concurrency checks rather than out of policy — being
	// clean must mean "checked and clean".
	pol := DefaultPolicy()
	for _, pkg := range []string{"federation", "directory"} {
		if !pol.LockHeld[pkg] {
			t.Errorf("package %s is not in the lockheld policy; its locks are unpoliced", pkg)
		}
	}
	for _, cls := range []string{"federation.Router.mu", "directory.Service.mu"} {
		if _, ok := pol.LockLevels[cls]; !ok {
			t.Errorf("%s is not ranked in LockLevels; lockorder cannot see it", cls)
		}
	}
	ran := make(map[string]bool, len(times))
	for _, ct := range times {
		ran[ct.Check] = true
	}
	for _, check := range []string{"lockorder", "lockheld", "pubimmutable"} {
		if !ran[check] {
			t.Errorf("check %s did not run over the repository", check)
		}
	}
}

// TestRunTimedReportsChecks pins the timing surface make lint's budget
// gate is built on: one entry per analyzer, non-negative durations.
func TestRunTimedReportsChecks(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "lockorder"), "golden/lockorder")
	if err != nil {
		t.Fatal(err)
	}
	_, times := RunTimed([]*Package{pkg}, fixturePolicy("lockorder"))
	seen := make(map[string]bool, len(times))
	for _, ct := range times {
		if ct.Seconds < 0 {
			t.Errorf("check %s reports negative wall time %v", ct.Check, ct.Seconds)
		}
		if seen[ct.Check] {
			t.Errorf("check %s reported twice", ct.Check)
		}
		seen[ct.Check] = true
	}
	for check := range knownChecks {
		if check == "allow" {
			continue
		}
		if !seen[check] {
			t.Errorf("no timing entry for check %s", check)
		}
	}
}

// TestAllows pins the -allows audit listing over the allow fixture: the
// two well-formed directives appear with their reasons; the malformed
// ones are findings, not audit rows.
func TestAllows(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "allow"), "golden/allow")
	if err != nil {
		t.Fatal(err)
	}
	allows := Allows([]*Package{pkg})
	if len(allows) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(allows), allows)
	}
	for _, a := range allows {
		if a.Check != "wallclock" || a.Reason == "" || a.Line == 0 {
			t.Errorf("malformed audit row: %+v", a)
		}
	}
	if allows[0].Line >= allows[1].Line {
		t.Errorf("audit rows not sorted by line: %+v", allows)
	}
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"plain", nil},
		{"%v", []verb{{'v', 0}}},
		{"a %d b %s", []verb{{'d', 0}, {'s', 1}}},
		{"%q: %w", []verb{{'q', 0}, {'w', 1}}},
		{"100%% %v", []verb{{'v', 0}}},
		{"%-8.3f %v", []verb{{'f', 0}, {'v', 1}}},
		{"%*d %v", []verb{{'d', 1}, {'v', 2}}},
		{"%[2]s %[1]s", []verb{{'s', 1}, {'s', 0}}},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		if len(got) != len(c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseVerbs(%q)[%d] = %v, want %v", c.format, i, got[i], c.want[i])
			}
		}
	}
}

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{File: "a.go", Line: 3, Col: 2, Check: "wallclock", Message: "direct time.Now"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if len(back) != 1 || back[0] != diags[0] {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil diagnostics rendered %q, want []", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	err := WriteText(&buf, []Diagnostic{
		{File: "x/y.go", Line: 12, Col: 1, Check: "goctx", Message: "no signal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "x/y.go:12: [goctx] no signal\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}
