package lint

// lockheld flags blocking operations performed while a mutex is held in
// the hot-path packages (Policy.LockHeld): channel sends/receives,
// selects without a default, Wait on sync.WaitGroup/Cond, network I/O
// (dials, listens, reads/writes on net connections), time.Sleep,
// acquiring an unranked mutex while another is held, and calls whose
// module-local call graph can reach any of those. A stripe or shard
// lock is a latency budget measured in nanoseconds; anything that can
// park the goroutine while holding one turns a cache hit into a convoy.
//
// Division of labor with lockorder: nesting of two RANKED locks is
// hierarchy business and is reported (or sanctioned) by lockorder
// alone; lockheld reports nested acquisition only when the acquired or
// the held mutex is unranked, where no hierarchy argument exists.
// Blocking reachable only through dynamic dispatch (func-typed fields,
// stdlib interfaces) is not tracked — see DESIGN.md §10.

import "fmt"

type lockheldCheck struct {
	cs *concState
}

func (lockheldCheck) name() string { return "lockheld" }

func (c *lockheldCheck) run(p *pass) {
	c.cs.collect(p.pkg)
}

func (c *lockheldCheck) finish(r *runner) {
	cs := c.cs
	cs.finalize()
	for _, n := range cs.nodes {
		if !cs.policy.LockHeld[n.pkg.Name] {
			continue
		}
		for _, ev := range n.blockEvents {
			r.report(n.pkg.Fset, ev.pos, "lockheld",
				fmt.Sprintf("%s while holding %s", ev.what, heldText(ev.held)))
		}
		for _, ev := range n.acqEvents {
			if ev.acq.class != "" && allRankedAbove(ev.held, ev.acq.level) {
				continue // ranked, strictly descending: lockorder's jurisdiction, and legal
			}
			if ev.acq.class != "" && anyRanked(ev.held) {
				continue // ranked-vs-ranked violation: reported by lockorder, not twice
			}
			r.report(n.pkg.Fset, ev.pos, "lockheld",
				fmt.Sprintf("acquires %s while holding %s", ev.acq.text, heldText(ev.held)))
		}
		for _, ev := range n.callEvents {
			for _, t := range ev.call.targets {
				if t.transBlock == nil {
					continue
				}
				tr := t.transBlock
				r.report(n.pkg.Fset, ev.pos, "lockheld",
					fmt.Sprintf("call to %s may block (%s%s) while holding %s",
						ev.call.label, tr.what,
						(&concTrace{via: append([]string{t.name}, tr.via...)}).chain(),
						heldText(ev.held)))
				break // one finding per call site
			}
		}
	}
}

func anyRanked(held []heldLock) bool {
	for _, h := range held {
		if h.class != "" {
			return true
		}
	}
	return false
}

// allRankedAbove reports whether every held lock is ranked and strictly
// outranks lvl — the sanctioned descending-acquisition pattern.
func allRankedAbove(held []heldLock, lvl int) bool {
	for _, h := range held {
		if h.class == "" || h.level <= lvl {
			return false
		}
	}
	return true
}
