// Package lint is remoslint: a dependency-free static-analysis suite
// that enforces the Remos invariants the compiler cannot see. The
// reproduction's collectors and Modeler are only trustworthy while the
// emulated deployments stay deterministic (discrete-event clock, seeded
// randomness), predictions and cache TTLs read the injected clock
// rather than the wall clock, errors crossing the public API carry the
// rerr taxonomy, metric names stay in one namespace, and long-running
// goroutines stay cancelable. Each invariant is one analyzer:
//
//	wallclock  — no direct time.Now/Sleep/After/... in clock-injected
//	             packages; the designated nil-Now fallback sites carry a
//	             //remoslint:allow wallclock <reason> directive.
//	globalrand — no math/rand package-level functions anywhere in
//	             production code; randomness is an injected, seeded
//	             *rand.Rand.
//	errwrap    — fmt.Errorf across the wire/master/public boundaries
//	             must wrap error operands with %w (or construct via
//	             rerr), so codes survive to the wire.
//	metricname — every obs metric name is snake_case under the remos_
//	             namespace with a known subsystem token, counters end in
//	             _total, histograms carry a unit suffix, and each name
//	             is registered from exactly one call site.
//	goctx      — every go statement in long-running packages is
//	             cancelable: the goroutine receives from a channel,
//	             observes a context.Context, or the launch is delegated
//	             to internal/conc.
//	poolreturn — every sync.Pool Get in a pooled hot-path package is
//	             balanced by a Put on the same pool within the same
//	             function (direct or deferred), so serving paths cannot
//	             quietly stop recycling buffers.
//	epochkey   — every long-lived map keyed by a snapshot epoch (a named
//	             Epoch type, directly or inside a struct key) is bounded:
//	             the declaring package must delete from or clear it, so
//	             epoch-keyed memoizations cannot leak one generation per
//	             poll.
//	lockorder  — the declared lock hierarchy (Policy.LockLevels) holds
//	             everywhere: while a ranked lock is held, only strictly
//	             lower-ranked locks may be acquired, directly or through
//	             the module-local call graph; same-level locks never
//	             nest.
//	lockheld   — no blocking operation (channel send/recv, select
//	             without default, Wait, network I/O, time.Sleep, nested
//	             unranked mutexes) runs between Lock/RLock and Unlock in
//	             the hot-path packages, directly or through calls.
//	pubimmutable — a value published through atomic.Pointer.Store, or
//	             read from Load, is never written through afterward in
//	             the storing/loading function or same-package callees
//	             (copy-on-write values are immutable once shared).
//
// A finding is suppressed by a //remoslint:allow <check> <reason>
// comment on the same line or the line above. The directive itself is
// verified: it must name a known check, carry a non-empty reason, and
// actually suppress a finding — stale or unjustified directives are
// diagnostics of their own (check "allow").
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned and attributed to a check.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
}

// Policy maps each analyzer to the package names it applies to. Keying
// on package names (not import paths) lets the golden-file fixtures opt
// into a check by declaring the right package clause.
type Policy struct {
	// Wallclock packages are clock-injected: they take a sim.Scheduler
	// or Now func and must never read the runtime clock directly.
	Wallclock map[string]bool
	// ErrWrap packages sit on the error-taxonomy boundary: the wire
	// protocols, the master collector, and the public remos API.
	ErrWrap map[string]bool
	// GoCtx packages own long-running goroutines.
	GoCtx map[string]bool
	// PoolReturn packages recycle hot-path buffers through sync.Pool;
	// every Get must have a same-function (possibly deferred) Put.
	PoolReturn map[string]bool
	// MetricSubsystems are the allowed second tokens of a metric name
	// (remos_<subsystem>_...).
	MetricSubsystems map[string]bool
	// LockLevels is the repo-wide lock hierarchy: ranked mutex fields
	// keyed "pkgName.TypeName.fieldName", lowest level innermost. While
	// a level-L lock is held only strictly lower levels may be
	// acquired; same-level locks must never nest. Amending the table is
	// an API change — see DESIGN.md §10 for the procedure.
	LockLevels map[string]int
	// LockHeld packages are hot paths where nothing may block while a
	// mutex is held.
	LockHeld map[string]bool
}

// DefaultPolicy is the Remos repository policy.
func DefaultPolicy() Policy {
	return Policy{
		Wallclock: set("netsim", "maxmin", "sched", "watch", "qcache",
			"snmpcoll", "benchcoll", "rps", "snapshot", "admission",
			"federation"),
		ErrWrap: set("proto", "master", "remos"),
		GoCtx: set("proto", "directory", "snmp", "sim", "sched", "watch",
			"benchcoll", "qcache", "master", "admission", "federation"),
		PoolReturn: set("proto", "snmp"),
		MetricSubsystems: set("admission", "bench", "bridge", "directory",
			"federation", "hostload", "master", "modeler", "qcache",
			"request", "requests", "sched", "snapshot", "snmp", "snmpcoll",
			"watch", "wireless"),
		// The serving-stack hierarchy, innermost (lowest) first. The
		// levels are spaced by 10 so a new structure can slot between
		// existing planes without renumbering.
		LockLevels: map[string]int{
			"qcache.shard.mu":         10, // COW shard spinout: clone-and-swap only
			"watch.regShard.mu":       20, // watch registry stripe
			"obs.Registry.mu":         30, // metric family registration
			"obs.Trace.mu":            30, // span assembly
			"obs.Ring.mu":             30, // trace ring
			"admission.Controller.mu": 40, // tenant buckets + queues; reports into obs
			"federation.Router.mu":    50, // domain cache + stitching
			"directory.Service.mu":    50, // lease table
		},
		LockHeld: set("proto", "qcache", "watch", "obs", "admission",
			"snapshot", "federation", "directory"),
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// checker is one analyzer. Checks report raw findings through the pass;
// directive suppression happens centrally in Run.
type checker interface {
	name() string
	run(p *pass)
}

// finisher is implemented by checks that need a whole-run view (the
// metricname duplicate-registration analysis).
type finisher interface {
	finish(r *runner)
}

// pass hands one package to one check.
type pass struct {
	pkg    *Package
	policy Policy
	r      *runner
}

// report records a finding at pos.
func (p *pass) report(pos token.Pos, check, msg string) {
	p.r.report(p.pkg.Fset, pos, check, msg)
}

// runner accumulates findings and allow directives across packages.
type runner struct {
	policy     Policy
	findings   []rawFinding
	directives []*directive
	metrics    map[string][]metricSite // metricname cross-package index
}

type rawFinding struct {
	pos   token.Position
	check string
	msg   string
}

func (r *runner) report(fset *token.FileSet, pos token.Pos, check, msg string) {
	r.findings = append(r.findings, rawFinding{pos: fset.Position(pos), check: check, msg: msg})
}

// AllowPrefix is the directive marker: //remoslint:allow <check> <reason>.
const AllowPrefix = "remoslint:allow"

// directive is one parsed //remoslint:allow comment.
type directive struct {
	pos     token.Position
	check   string
	reason  string
	invalid string // non-empty: why the directive itself is malformed
	used    bool
}

// knownChecks names every analyzer (plus the directive verifier
// itself), for directive validation.
var knownChecks = set("wallclock", "globalrand", "errwrap", "metricname", "goctx",
	"poolreturn", "epochkey", "lockorder", "lockheld", "pubimmutable")

// collectDirectives parses the allow directives of one package.
func (r *runner) collectDirectives(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry directives
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), AllowPrefix)
				if !ok {
					continue
				}
				d := &directive{pos: pkg.Fset.Position(c.Slash)}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.invalid = "allow directive names no check"
				case !knownChecks[fields[0]]:
					d.invalid = fmt.Sprintf("allow directive names unknown check %q", fields[0])
				case len(fields) == 1:
					d.invalid = fmt.Sprintf("allow directive for %s carries no reason", fields[0])
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				r.directives = append(r.directives, d)
			}
		}
	}
}

// CheckTime is one analyzer's accumulated wall time across every
// package it ran over (including its finish pass).
type CheckTime struct {
	Check   string  `json:"check"`
	Seconds float64 `json:"seconds"`
}

// TimeBudget bounds a full repo lint in make lint / CI. Chosen by
// measuring `remoslint ./...` on the dev container (~2s wall including
// the type-check load, of which the analyzers themselves are <300ms)
// and multiplying by ~30x so only a real pathology — an analyzer gone
// quadratic, an interface expansion explosion — trips it, never a slow
// shared runner.
const TimeBudget = 60 * time.Second

// Run executes every analyzer over the packages and returns the
// surviving diagnostics, sorted by position.
func Run(pkgs []*Package, policy Policy) []Diagnostic {
	diags, _ := RunTimed(pkgs, policy)
	return diags
}

// RunTimed is Run plus per-check wall time. The shared concurrency
// substrate (function summaries + call graph) is built lazily by the
// first check that needs it, so its cost lands on lockorder's row.
func RunTimed(pkgs []*Package, policy Policy) ([]Diagnostic, []CheckTime) {
	r := &runner{policy: policy, metrics: make(map[string][]metricSite)}
	cs := newConcState(policy)
	checks := []checker{
		wallclockCheck{},
		globalrandCheck{},
		errwrapCheck{},
		&metricnameCheck{},
		goctxCheck{},
		poolreturnCheck{},
		epochkeyCheck{},
		&lockorderCheck{cs: cs},
		&lockheldCheck{cs: cs},
		pubimmutableCheck{},
	}
	elapsed := make([]time.Duration, len(checks))
	for _, pkg := range pkgs {
		r.collectDirectives(pkg)
		p := &pass{pkg: pkg, policy: policy, r: r}
		for i, c := range checks {
			start := time.Now()
			c.run(p)
			elapsed[i] += time.Since(start)
		}
	}
	for i, c := range checks {
		if f, ok := c.(finisher); ok {
			start := time.Now()
			f.finish(r)
			elapsed[i] += time.Since(start)
		}
	}
	times := make([]CheckTime, len(checks))
	for i, c := range checks {
		times[i] = CheckTime{Check: c.name(), Seconds: elapsed[i].Seconds()}
	}

	// Suppress findings covered by a valid directive on the same line
	// or the line above, marking those directives used.
	type key struct {
		file  string
		line  int
		check string
	}
	byLine := make(map[key]*directive)
	for _, d := range r.directives {
		if d.invalid == "" {
			byLine[key{d.pos.Filename, d.pos.Line, d.check}] = d
		}
	}
	var diags []Diagnostic
	for _, f := range r.findings {
		suppressed := false
		for _, line := range [2]int{f.pos.Line, f.pos.Line - 1} {
			if d := byLine[key{f.pos.Filename, line, f.check}]; d != nil {
				d.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			diags = append(diags, Diagnostic{
				File: f.pos.Filename, Line: f.pos.Line, Col: f.pos.Column,
				Check: f.check, Message: f.msg,
			})
		}
	}
	// The directives themselves are verified: malformed or unused ones
	// are findings, so the escape hatch cannot rot into a blanket mute.
	for _, d := range r.directives {
		switch {
		case d.invalid != "":
			diags = append(diags, Diagnostic{
				File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
				Check: "allow", Message: d.invalid,
			})
		case !d.used:
			diags = append(diags, Diagnostic{
				File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
				Check:   "allow",
				Message: fmt.Sprintf("unused allow directive for %s (no finding suppressed)", d.check),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	return diags, times
}

// AllowDirective is one live //remoslint:allow comment, for the
// -allows audit listing (malformed directives are findings instead and
// do not appear here).
type AllowDirective struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
}

// Allows lists every well-formed allow directive in the packages,
// sorted by position — the audit surface that keeps directive creep
// visible in review.
func Allows(pkgs []*Package) []AllowDirective {
	r := &runner{}
	for _, pkg := range pkgs {
		r.collectDirectives(pkg)
	}
	var out []AllowDirective
	for _, d := range r.directives {
		if d.invalid != "" {
			continue
		}
		out = append(out, AllowDirective{
			File: d.pos.Filename, Line: d.pos.Line,
			Check: d.check, Reason: d.reason,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// WriteAllows renders the -allows audit as a JSON array.
func WriteAllows(w io.Writer, allows []AllowDirective) error {
	if allows == nil {
		allows = []AllowDirective{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(allows)
}

// Report is the -json document: findings plus the timing that gates
// make lint's budget.
type Report struct {
	Findings      []Diagnostic `json:"findings"`
	Checks        []CheckTime  `json:"checks"`
	TotalSeconds  float64      `json:"total_seconds"`
	BudgetSeconds float64      `json:"budget_seconds"`
	OverBudget    bool         `json:"over_budget"`
}

// NewReport assembles a Report against the given budget.
func NewReport(diags []Diagnostic, times []CheckTime, total, budget time.Duration) Report {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return Report{
		Findings:      diags,
		Checks:        times,
		TotalSeconds:  total.Seconds(),
		BudgetSeconds: budget.Seconds(),
		OverBudget:    total > budget,
	}
}

// WriteReport renders the full -json document.
func WriteReport(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Relativize rewrites diagnostic file paths relative to dir (best
// effort; unrelatable paths stay absolute).
func Relativize(diags []Diagnostic, dir string) {
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}

// WriteText renders diagnostics one per line: file:line: [check] message.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as a JSON array for machine consumers.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
