package lint

import "go/ast"

// globalrandCheck bans the shared, process-seeded math/rand generator
// everywhere in production code: the emulator, scheduler jitter, and
// synthetic load must draw from an injected *rand.Rand seeded by the
// scenario, or two runs of the same experiment stop being bit
// reproducible. Constructing generators (rand.New, rand.NewSource,
// rand.NewZipf) is exactly the sanctioned pattern and stays legal.
type globalrandCheck struct{}

func (globalrandCheck) name() string { return "globalrand" }

// globalRandFuncs are math/rand's package-level draws on the shared
// global source.
var globalRandFuncs = set(
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
	"Uint32", "Uint64", "Float32", "Float64",
	"NormFloat64", "ExpFloat64", "Perm", "Shuffle", "Seed", "Read",
	// math/rand/v2 spellings, so a future toolchain bump stays covered.
	"IntN", "Int32", "Int32N", "Int64", "Int64N", "UintN", "Uint64N", "N",
)

func (globalrandCheck) run(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := importedPackage(p, sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			p.report(sel.Pos(), "globalrand",
				"global rand."+sel.Sel.Name+" draws from the shared process source; inject a seeded *rand.Rand")
			return true
		})
	}
}
