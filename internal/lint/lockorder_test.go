package lint

// White-box tests for the lockorder call-graph builder, over the
// two-package module under testdata/mod/lockmod: cross-package method
// calls, interface dispatch (conservatively every implementation), and
// deferred unlocks must all be modeled.

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadLockmod(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", "mod", "lockmod"))
	if err != nil {
		t.Fatalf("load lockmod: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (a, b)", len(pkgs))
	}
	return pkgs
}

func lockmodPolicy() Policy {
	p := DefaultPolicy()
	p.LockLevels["a.Stripe.mu"] = 10
	p.LockLevels["b.Outer.mu"] = 20
	return p
}

func TestLockorderCallGraph(t *testing.T) {
	pkgs := loadLockmod(t)
	cs := newConcState(lockmodPolicy())
	for _, pkg := range pkgs {
		cs.collect(pkg)
	}
	cs.finalize()
	node := func(name string) *concNode {
		t.Helper()
		for _, n := range cs.nodes {
			if n.name == name {
				return n
			}
		}
		t.Fatalf("no call-graph node named %q (have %d nodes)", name, len(cs.nodes))
		return nil
	}

	// Cross-package method edge: Descend's transitive acquisitions must
	// include the stripe class, reached through a.Bump in the other
	// package.
	d := node("b.(Outer).Descend")
	if tr := d.transAcq["a.Stripe.mu"]; tr == nil {
		t.Errorf("Descend does not see a.Stripe.mu transitively; cross-package method calls are unmodeled")
	} else if len(tr.via) == 0 || tr.via[0] != "a.(Stripe).Bump" {
		t.Errorf("Descend's trace to a.Stripe.mu goes via %v, want a.(Stripe).Bump", tr.via)
	}

	// Interface expansion: WithLock dispatches through a.Grabber, whose
	// only module implementation is b.Outer — the level-20 acquisition
	// must be visible despite the dynamic call.
	w := node("a.(Stripe).WithLock")
	found := false
	for _, c := range w.calls {
		for _, tgt := range c.targets {
			if tgt.name == "b.(Outer).Grab" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("WithLock's interface dispatch did not expand to b.(Outer).Grab")
	}

	// Deferred unlock: Reacquire's call to Bump must happen with the
	// stripe lock recorded as still held.
	r := node("a.(Stripe).Reacquire")
	if len(r.callEvents) == 0 {
		t.Fatalf("Reacquire records no under-lock call events; deferred unlock released the section early")
	}
	held := r.callEvents[0].held
	if len(held) != 1 || held[0].class != "a.Stripe.mu" {
		t.Errorf("Reacquire's call event holds %v, want [a.Stripe.mu]", held)
	}
}

// TestLockorderModuleFindings runs the full suite over lockmod: exactly
// the interface-dispatch ascent and the deferred-unlock reacquisition
// are findings; the descending cross-package call is legal.
func TestLockorderModuleFindings(t *testing.T) {
	pkgs := loadLockmod(t)
	diags := Run(pkgs, lockmodPolicy())
	var iface, reacquire bool
	for _, d := range diags {
		if d.Check != "lockorder" {
			t.Errorf("unexpected non-lockorder diagnostic: %s", d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "b.Outer.mu") && strings.Contains(d.Message, "g.grab") ||
			strings.Contains(d.Message, "g.Grab"):
			iface = true
		case strings.Contains(d.Message, "same-level"):
			reacquire = true
		default:
			t.Errorf("unexpected lockorder diagnostic: %s", d)
		}
	}
	if !iface {
		t.Errorf("missing finding: WithLock's interface dispatch to b.(Outer).Grab")
	}
	if !reacquire {
		t.Errorf("missing finding: Reacquire's same-level reacquisition under a deferred unlock")
	}
	if len(diags) != 2 {
		t.Errorf("got %d findings, want exactly 2:\n%v", len(diags), diags)
	}
}
