module lockmod

go 1.22
