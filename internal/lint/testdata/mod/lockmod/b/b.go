// Package b is the high plane of the lockmod white-box module: Outer.mu
// is ranked level 20 by the test policy.
package b

import (
	"sync"

	"lockmod/a"
)

type Outer struct {
	mu sync.Mutex
	S  *a.Stripe
}

// Grab implements a.Grabber by taking the outer lock.
func (o *Outer) Grab() {
	o.mu.Lock()
	o.mu.Unlock()
}

// Descend takes the outer lock and calls into the stripe through the
// cross-package method: the sanctioned descending direction, modeled
// but not flagged.
func (o *Outer) Descend() {
	o.mu.Lock()
	o.S.Bump()
	o.mu.Unlock()
}
