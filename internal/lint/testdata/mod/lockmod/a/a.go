// Package a is the low plane of the lockmod white-box module: Stripe.mu
// is ranked level 10 by the test policy.
package a

import "sync"

type Stripe struct {
	mu sync.Mutex
	N  int
}

// Bump is the cross-package call-graph probe: callers holding a ranked
// lock must see this acquisition transitively.
func (s *Stripe) Bump() {
	s.mu.Lock()
	s.N++
	s.mu.Unlock()
}

// Grabber is a module-defined interface; lockorder conservatively
// expands calls through it to every implementation in the module.
type Grabber interface{ Grab() }

// WithLock holds the stripe lock across an interface dispatch. Package
// b's Outer implements Grabber by taking its level-20 lock, so this is
// an ascending acquisition through dynamic dispatch.
func (s *Stripe) WithLock(g Grabber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g.Grab()
}

// Reacquire defers its unlock and then calls Bump, which takes the same
// stripe lock again: the deferred unlock must keep the section open,
// making this a same-level violation through the call graph.
func (s *Stripe) Reacquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Bump()
}
