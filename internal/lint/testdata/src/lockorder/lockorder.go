// The lockorder fixture declares its own two-level hierarchy through
// the test policy: lockorder.Inner.mu is level 10, lockorder.Outer.mu
// is level 20. While a ranked lock is held, only strictly lower levels
// may be acquired; same-level locks must never nest.
package lockorder

import "sync"

type Inner struct {
	mu sync.Mutex
	n  int
}

type Outer struct {
	mu sync.RWMutex
	in *Inner
}

// ascending acquires upward: inner (10) held, outer (20) acquired.
func ascending(o *Outer, in *Inner) {
	in.mu.Lock()
	o.mu.Lock() // want `acquires lockorder\.Outer\.mu \(level 20\) while holding in\.mu \(lockorder\.Inner\.mu, level 10\)`
	o.mu.Unlock()
	in.mu.Unlock()
}

// descending is the sanctioned direction: outer before inner.
func descending(o *Outer) {
	o.mu.Lock()
	o.in.mu.Lock()
	o.in.mu.Unlock()
	o.mu.Unlock()
}

// twoStripes nests two same-level locks: stripes have no order between
// them, so this deadlocks under inverse interleaving.
func twoStripes(a, b *Inner) {
	a.mu.Lock()
	b.mu.Lock() // want `same-level locks must never nest`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockOuter(o *Outer) {
	o.mu.Lock()
	o.mu.Unlock()
}

// viaCall reaches the violation through the call graph.
func viaCall(o *Outer, in *Inner) {
	in.mu.Lock()
	defer in.mu.Unlock()
	helper(o) // want `call to helper acquires lockorder\.Outer\.mu \(level 20\) via lockorder\.helper -> lockorder\.lockOuter`
}

func helper(o *Outer) { lockOuter(o) }

// deferredHeld: a deferred unlock keeps the section open to the end of
// the function.
func deferredHeld(in *Inner, o *Outer) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.n++
	o.mu.Lock() // want `while holding in\.mu \(lockorder\.Inner\.mu, level 10\)`
	o.mu.Unlock()
}

// sequential sections don't nest: no finding.
func sequential(a, b *Inner) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// rlocked: a read lock counts as held, and descending stays legal.
func rlocked(o *Outer, in *Inner) {
	o.mu.RLock()
	in.mu.Lock()
	in.mu.Unlock()
	o.mu.RUnlock()
}

type locker interface{ grab() }

func (o *Outer) grab() {
	o.mu.Lock()
	o.mu.Unlock()
}

// ifaceCall dispatches through a module interface: conservatively every
// implementation, so Outer.grab's acquisition is visible.
func ifaceCall(l locker, in *Inner) {
	in.mu.Lock()
	defer in.mu.Unlock()
	l.grab() // want `call to l\.grab acquires lockorder\.Outer\.mu`
}
