// The wallclock fixture opts into the check by declaring package
// netsim, a clock-injected package under the default policy.
package netsim

import "time"

// Clock is the injected clock of this fixture.
type Clock func() time.Time

func badNow() time.Time {
	return time.Now() // want `\[wallclock\] direct time\.Now in a clock-injected package`
}

func badSleep() {
	time.Sleep(time.Second) // want `\[wallclock\] direct time\.Sleep`
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want `\[wallclock\] direct time\.After`
}

func badValue() Clock {
	return time.Now // want `\[wallclock\] direct time\.Now`
}

func allowedFallback(now Clock) time.Time {
	if now != nil {
		return now()
	}
	//remoslint:allow wallclock designated fallback: nil clock means the wall clock by contract
	return time.Now()
}

func cleanTypes(d time.Duration, at time.Time) time.Time {
	return at.Add(d) // time types and arithmetic stay legal
}
