// The pubimmutable fixture: a value published through an
// atomic.Pointer Store, or read back via Load, is shared with
// concurrent readers and must never be written through afterward.
// Rebinding to a fresh value (the COW clone-then-swap loop) resets the
// tracking.
package pubimmutable

import "sync/atomic"

type box struct{ n int }

type table map[string]*box

type store struct {
	p atomic.Pointer[table]
}

func (s *store) snap() table { return *s.p.Load() }

// writeAfterStore mutates the generation it just published.
func writeAfterStore(s *store) {
	next := make(table)
	b := &box{}
	next["k"] = b
	s.p.Store(&next)
	next["j"] = b // want `write through next\[\.\.\.\] after publication via s\.p\.Store`
	b.n = 1       // want `write through b\.n after publication`
}

// deleteAfterStore: delete is a write too.
func deleteAfterStore(s *store) {
	next := make(table)
	s.p.Store(&next)
	delete(next, "k") // want `after publication via s\.p\.Store`
}

// writeAfterLoad mutates the shared current generation in place.
func writeAfterLoad(s *store) {
	cur := s.snap()
	cur["k"] = &box{} // want `write through cur\[\.\.\.\] after it was obtained from an atomic Load`
}

// writeLoadedElem follows an element out of the loaded map.
func writeLoadedElem(s *store) {
	e := s.snap()["k"]
	e.n = 2 // want `write through e\.n after it was obtained from an atomic Load`
}

func fill(m table) { m["x"] = &box{} }

// passLoadedToWriter hands the shared map to a helper that writes
// through its parameter.
func passLoadedToWriter(s *store) {
	m := s.snap()
	fill(m) // want `passes m to fill, which writes through it`
}

// cowLoop is the sanctioned pattern: clone, mutate the clone, publish,
// rebind to a fresh generation before touching anything again.
func cowLoop(s *store) {
	next := make(table)
	next["k"] = &box{n: 1}
	fill(next)
	s.p.Store(&next)

	next = make(table) // fresh generation: writes are legal again
	next["k"] = &box{n: 2}
	s.p.Store(&next)
}
