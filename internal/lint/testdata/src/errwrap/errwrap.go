// The errwrap fixture opts in by declaring package proto, an
// error-taxonomy boundary under the default policy.
package proto

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func badVerbV(err error) error {
	return fmt.Errorf("proto: decode: %v", err) // want `\[errwrap\] error operand formatted with %v loses its chain`
}

func badVerbS(name string, err error) error {
	return fmt.Errorf("proto: %s failed after %d tries: %s", name, 3, err) // want `\[errwrap\] error operand formatted with %s`
}

func badWidth(err error) error {
	return fmt.Errorf("proto: %-6s %v", "pad", err) // want `\[errwrap\] error operand formatted with %v`
}

func badNonConst(format string, err error) error {
	return fmt.Errorf(format, err) // want `\[errwrap\] fmt\.Errorf with a non-constant format and an error operand`
}

func goodWrap(err error) error {
	return fmt.Errorf("proto: decode: %w", err)
}

func goodFresh(line string) error {
	return fmt.Errorf("proto: bad line %q", line)
}

func goodEscaped(pct float64) error {
	return fmt.Errorf("proto: %.0f%% loss", pct)
}
