// The poolreturn fixture opts in by declaring package proto, a pooled
// hot-path package under the default policy.
package proto

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
var otherPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

type server struct{ pool sync.Pool }

func goodDeferredPut() {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
}

func goodDirectPut() {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	bufPool.Put(buf)
}

func goodPutInDeferredClosure() {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bufPool.Put(buf)
	}()
}

func goodFieldPool(s *server) {
	buf := s.pool.Get().(*bytes.Buffer)
	defer s.pool.Put(buf)
}

func badLeakedGet() {
	buf := bufPool.Get().(*bytes.Buffer) // want `\[poolreturn\] sync.Pool Get on bufPool with no Put`
	buf.Reset()
}

func badWrongPoolPut() {
	buf := bufPool.Get().(*bytes.Buffer) // want `\[poolreturn\] sync.Pool Get on bufPool with no Put`
	otherPool.Put(buf)
}

func badEarlyReturnLeak(cond bool) *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer) // want `\[poolreturn\] sync.Pool Get on bufPool with no Put`
	if cond {
		return buf
	}
	return nil
}

// A sanctioned handoff: the object outlives this function and a
// directive names the function responsible for returning it.
func allowedHandoff() *bytes.Buffer {
	//remoslint:allow poolreturn caller returns the buffer via releaseBuf
	return bufPool.Get().(*bytes.Buffer)
}

func releaseBuf(buf *bytes.Buffer) {
	bufPool.Put(buf)
}
