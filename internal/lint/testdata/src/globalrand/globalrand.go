// The globalrand check applies to every package; any name works.
package traffic

import "math/rand"

func badDraw() int {
	return rand.Intn(10) // want `\[globalrand\] global rand\.Intn draws from the shared process source`
}

func badFloat() float64 {
	return rand.Float64() // want `\[globalrand\] global rand\.Float64`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `\[globalrand\] global rand\.Shuffle`
}

// Constructing a seeded generator is the sanctioned pattern.
func goodBuild(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Drawing from an injected generator is what the check steers toward.
func goodDraw(rng *rand.Rand) float64 {
	return rng.Float64()
}
