// The epochkey fixture: long-lived maps keyed by a snapshot epoch must
// be evicted (delete or clear) by the declaring package. The check runs
// in every package, so any package clause opts in.
package epochkey

// Epoch mirrors the snapshot plane's generation counter; the check
// matches any named type of this name.
type Epoch uint64

type memoKey struct {
	epoch Epoch
	sig   string
}

// goodStore evicts its epoch-keyed memo on swap.
type goodStore struct {
	subs map[memoKey]int
}

func (s *goodStore) swap(cur Epoch) {
	for k := range s.subs {
		if k.epoch != cur {
			delete(s.subs, k)
		}
	}
}

// goodCleared bounds its direct epoch-keyed map with clear.
type goodCleared struct {
	byEpoch map[Epoch][]string
}

func (s *goodCleared) reset() {
	clear(s.byEpoch)
}

// badStore memoizes per epoch and never evicts: one generation leaks
// per poll.
type badStore struct {
	subs2 map[memoKey]int // want `map keyed by snapshot epoch with no delete or clear`
}

func (s *badStore) fill(e Epoch, sig string, v int) {
	if s.subs2 == nil {
		s.subs2 = make(map[memoKey]int)
	}
	s.subs2[memoKey{epoch: e, sig: sig}] = v
}

// badGlobal is a package-level epoch-keyed map with no eviction.
var badGlobal = map[Epoch]string{} // want `map keyed by snapshot epoch with no delete or clear`

// allowedHandoff's bounding lives elsewhere; the directive states it.
type allowedHandoff struct {
	//remoslint:allow epochkey evicted by the owning store's swap loop
	ext map[Epoch]int
}

func (s *badStore) use() (string, map[Epoch]int) {
	// Function-local epoch-keyed maps die with the frame: not flagged.
	local := map[Epoch]int{1: 1}
	return badGlobal[0], local
}

var _ = goodStore{}
var _ = goodCleared{}
var _ = allowedHandoff{}
