// The lockheld fixture opts in via the test policy: package lockheld is
// a hot-path package where nothing may block while a mutex is held.
package lockheld

import (
	"net"
	"sync"
	"time"
)

type guard struct {
	mu   sync.Mutex
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
	n    int
}

func sendUnderLock(g *guard) {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

func recvUnderLock(g *guard) {
	g.mu.Lock()
	defer g.mu.Unlock()
	<-g.done // want `channel receive while holding g\.mu`
}

func selectUnderLock(g *guard) {
	g.mu.Lock()
	select { // want `select without default while holding g\.mu`
	case v := <-g.ch:
		g.n = v
	case <-g.done:
	}
	g.mu.Unlock()
}

// selectDefault never parks the goroutine: legal.
func selectDefault(g *guard) {
	g.mu.Lock()
	select {
	case g.ch <- 1:
	default:
	}
	g.mu.Unlock()
}

func waitUnderLock(g *guard) {
	g.mu.Lock()
	g.wg.Wait() // want `WaitGroup\.Wait while holding g\.mu`
	g.mu.Unlock()
}

func dialUnderLock(g *guard) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	conn, err := net.Dial("tcp", "localhost:0") // want `net\.Dial while holding g\.mu`
	if err == nil {
		conn.Close() // Close completes locally: legal
	}
	return err
}

func sleepUnderLock(g *guard) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

type other struct{ mu sync.Mutex }

// nestedUnderLock: unranked mutexes have no hierarchy argument, so
// nesting them under a held lock is flagged here.
func nestedUnderLock(g *guard, o *other) {
	g.mu.Lock()
	o.mu.Lock() // want `acquires o\.mu while holding g\.mu`
	o.mu.Unlock()
	g.mu.Unlock()
}

// blockingHelper parks; calling it under the lock is as bad as the
// direct op.
func blockingHelper(g *guard) { <-g.done }

func callUnderLock(g *guard) {
	g.mu.Lock()
	defer g.mu.Unlock()
	blockingHelper(g) // want `call to blockingHelper may block \(channel receive`
}

// launchUnderLock: the goroutine body runs outside the critical
// section; only the launch happens here. Legal.
func launchUnderLock(g *guard) {
	g.mu.Lock()
	go func() {
		<-g.done
	}()
	g.mu.Unlock()
}

// closureUnderLock: a bound literal's blocking op reaches its call
// sites through the local call graph.
func closureUnderLock(g *guard) {
	wait := func() { <-g.done }
	g.mu.Lock()
	wait() // want `call to wait may block \(channel receive`
	g.mu.Unlock()
}

// unlockEndsSection: ops after the unlock are free.
func unlockEndsSection(g *guard) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	<-g.done
}
