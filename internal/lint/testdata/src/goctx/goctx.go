// The goctx fixture opts in by declaring package sched, a long-running
// package under the default policy.
package sched

import "context"

func badBare() {
	go func() { // want `\[goctx\] goroutine has no cancellation signal`
		for i := 0; i < 1000; i++ {
			_ = i
		}
	}()
}

func badCall() {
	go worker(7) // want `\[goctx\] goroutine call carries no ctx or channel argument`
}

func goodDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

func goodSelect(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func goodCtx(ctx context.Context) {
	go func() {
		if ctx.Err() != nil {
			return
		}
	}()
}

func goodRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func goodCallCtx(ctx context.Context) {
	go workerCtx(ctx)
}

func goodCallChan(stop chan struct{}) {
	go workerChan(stop)
}

func allowedBound() {
	//remoslint:allow goctx loop is bounded by the fixture's imaginary listener
	go worker(9)
}

func worker(n int)                  { _ = n }
func workerCtx(ctx context.Context) { _ = ctx }
func workerChan(ch chan struct{})   { _ = ch }
