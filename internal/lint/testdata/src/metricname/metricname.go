// The metricname check keys on the receiver type name Registry, so the
// fixture carries a miniature registry of its own.
package obsfixture

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, kv ...string) *Counter { return nil }
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge     { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {}
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	return nil
}

func register(r *Registry) {
	r.Counter("remos_sched_polls_total", "ok")
	r.Counter("RemosSchedPolls", "x")            // want `\[metricname\] metric "RemosSchedPolls" is not snake_case`
	r.Counter("sched_polls_total", "x")          // want `\[metricname\] metric "sched_polls_total" is outside the remos_ namespace`
	r.Counter("remos_mystery_polls_total", "x")  // want `\[metricname\] metric "remos_mystery_polls_total" has no known subsystem token`
	r.Counter("remos_sched_polls", "x")          // want `\[metricname\] counter "remos_sched_polls" must end in _total`
	r.Gauge("remos_watch_active", "ok")
	r.Gauge("remos_watch_updates_total", "x")    // want `\[metricname\] gauge "remos_watch_updates_total" must not end in _total`
	r.Histogram("remos_snmp_rtt", "x", nil)      // want `\[metricname\] histogram "remos_snmp_rtt" must carry a unit suffix`
	r.Histogram("remos_snmp_rtt_seconds", "ok", nil)
	r.GaugeFunc("remos_qcache_entries", "ok", nil)
	r.Counter("remos_sched_polls_total", "dup")  // want `\[metricname\] metric "remos_sched_polls_total" already registered`
}

func nonLiteral(r *Registry, name string) {
	r.Counter(name, "x") // want `\[metricname\] metric name is not a string literal`
}

// A type that merely shares the method names does not trip the check.
type notRegistry struct{}

func (notRegistry) Counter(name string) {}

func unrelated() {
	notRegistry{}.Counter("Whatever Goes")
}
