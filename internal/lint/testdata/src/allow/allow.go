// The allow fixture exercises the directive verifier: malformed and
// unused directives are findings of their own. Package netsim puts the
// file under the wallclock policy so one directive has something real
// to suppress. Expected diagnostics live in TestAllowDirectives, since
// want comments cannot share a line with a line-comment directive.
package netsim

import "time"

//remoslint:allow nonsense this check does not exist
func unknownCheck() {}

//remoslint:allow wallclock
func missingReason() {}

//remoslint:allow wallclock nothing on the next line uses the wall clock
func unused() {}

func suppressed() time.Time {
	//remoslint:allow wallclock justified fallback for the fixture
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now() // the one real wallclock finding
}
