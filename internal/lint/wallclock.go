package lint

import "go/ast"

// wallclockCheck enforces clock injection: packages built on
// sim.Scheduler (or an injected Now func) must never reach for the
// runtime clock directly, or emulated runs stop being deterministic and
// prediction timestamps drift from the deployment clock. The designated
// "nil means time.Now" fallback sites carry an allow directive, which
// the driver verifies stays attached to a real use.
type wallclockCheck struct{}

func (wallclockCheck) name() string { return "wallclock" }

// wallclockFuncs are the time functions that read or wait on the
// runtime clock. Pure constructors (time.Date, time.Unix) and types
// (time.Time, time.Duration) stay legal.
var wallclockFuncs = set(
	"Now", "Sleep", "After", "AfterFunc", "Tick",
	"NewTimer", "NewTicker", "Since", "Until",
)

func (wallclockCheck) run(p *pass) {
	if !p.policy.Wallclock[p.pkg.Name] {
		return
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if importedPackage(p, sel.X) != "time" || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			p.report(sel.Pos(), "wallclock",
				"direct time."+sel.Sel.Name+" in a clock-injected package; use the sim.Scheduler / injected Now")
			return true
		})
	}
}
