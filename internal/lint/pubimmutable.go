package lint

// pubimmutable enforces the copy-on-write discipline around
// atomic.Pointer: once a value has been published through Store, or
// obtained from Load, it is shared with concurrent readers and must
// never be written through again — not in the storing/loading function
// and not by any same-package function it passes the value to. Field
// writes, map writes, slice-element writes, deletes, and appends into
// the retained structure are all findings. The check is flow-sensitive
// within a function (rebinding the variable to a fresh value resets
// it — the COW clone-then-swap loop stays legal) and propagates one
// level through local calls via a writes-through-parameter summary.
//
// The check runs in every package: atomic.Pointer appears only in the
// COW hot paths, so there is nothing to scope by policy.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

type pubimmutableCheck struct{}

func (pubimmutableCheck) name() string { return "pubimmutable" }

func (pubimmutableCheck) run(p *pass) {
	a := &pubiPkg{pass: p, funcs: make(map[types.Object]*pubiFunc)}
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.collect(fd)
			}
		}
	}
	a.fixpoint()
	a.report()
}

// pubiPkg is the per-package analysis state.
type pubiPkg struct {
	pass  *pass
	funcs map[types.Object]*pubiFunc
	order []*pubiFunc
}

// pubiFunc summarizes one function: its bindings, writes, Stores,
// aliasing inserts, and local calls, all in positional source order.
type pubiFunc struct {
	obj    types.Object
	params []types.Object // receiver first, then parameters

	binds   map[types.Object][]pubiBind
	writes  []pubiSite
	stores  []pubiStore
	inserts []pubiInsert
	calls   []pubiCall

	retLoadSyntactic bool
	retIdents        []types.Object
	retCallees       []types.Object
	retLoad          bool
	writesParam      map[int]bool
}

// pubiBind is one assignment to a plain local variable, classified by
// what its right-hand side is rooted in.
type pubiBind struct {
	pos        token.Pos
	loadRooted bool         // rooted at atomic.Pointer Load()
	callee     types.Object // rooted at a call to this local function
	alias      types.Object // rooted at this plain identifier
}

type pubiSite struct {
	pos  token.Pos
	root types.Object
	text string
}

type pubiStore struct {
	pos  token.Pos
	base types.Object
	text string
	line int
}

type pubiInsert struct {
	pos       token.Pos
	container types.Object
	value     types.Object
}

type pubiCall struct {
	pos    token.Pos
	callee types.Object
	label  string
	args   map[int]types.Object // param index -> plain-ident argument
}

func (a *pubiPkg) info() *types.Info { return a.pass.pkg.TypesInfo }

func (a *pubiPkg) collect(fd *ast.FuncDecl) {
	obj := a.info().Defs[fd.Name]
	if obj == nil {
		return
	}
	fn := &pubiFunc{
		obj:         obj,
		binds:       make(map[types.Object][]pubiBind),
		writesParam: make(map[int]bool),
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		fn.params = append(fn.params, a.info().Defs[fd.Recv.List[0].Names[0]])
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, nm := range field.Names {
				fn.params = append(fn.params, a.info().Defs[nm])
			}
		}
	}
	a.funcs[obj] = fn
	a.order = append(a.order, fn)

	// Closure bodies are attributed to the enclosing function: writes
	// after publication are findings wherever the statement lives.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			a.assign(fn, n)
		case *ast.IncDecStmt:
			if root := rootIdentObj(a.info(), n.X); root != nil {
				fn.writes = append(fn.writes, pubiSite{pos: n.Pos(), root: root, text: exprText(n.X)})
			}
		case *ast.CallExpr:
			a.callExpr(fn, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				a.returnResult(fn, res)
			}
		}
		return true
	})
}

func (a *pubiPkg) assign(fn *pubiFunc, st *ast.AssignStmt) {
	matched := len(st.Lhs) == len(st.Rhs)
	for i, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := a.info().ObjectOf(id)
			if obj == nil {
				continue
			}
			b := pubiBind{pos: st.Pos()}
			if matched {
				b = a.classifyRHS(st.Rhs[i])
				b.pos = st.Pos()
			}
			fn.binds[obj] = append(fn.binds[obj], b)
			continue
		}
		// Non-identifier LHS: a write through whatever the expression is
		// rooted at (e.res = ..., m[k] = ..., *p = ...).
		root := rootIdentObj(a.info(), lhs)
		if root == nil {
			continue
		}
		fn.writes = append(fn.writes, pubiSite{pos: st.Pos(), root: root, text: exprText(lhs)})
		if matched {
			// The assigned value is now reachable from the container: an
			// aliasing edge for the published-via-container analysis.
			for _, v := range insertedIdents(a.info(), st.Rhs[i]) {
				fn.inserts = append(fn.inserts, pubiInsert{pos: st.Pos(), container: root, value: v})
			}
		}
	}
}

// insertedIdents extracts the plain identifiers an RHS makes reachable
// from the assigned container: the ident itself, &ident, or the
// identifier arguments of an append call.
func insertedIdents(info *types.Info, e ast.Expr) []types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := info.ObjectOf(e); o != nil {
			return []types.Object{o}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return insertedIdents(info, e.X)
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			var out []types.Object
			for _, arg := range e.Args[1:] {
				out = append(out, insertedIdents(info, arg)...)
			}
			return out
		}
	}
	return nil
}

func (a *pubiPkg) callExpr(fn *pubiFunc, c *ast.CallExpr) {
	info := a.info()
	if id, ok := c.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "delete" && len(c.Args) > 0 {
				if root := rootIdentObj(info, c.Args[0]); root != nil {
					fn.writes = append(fn.writes, pubiSite{
						pos: c.Pos(), root: root, text: "delete(" + exprText(c.Args[0]) + ", ...)"})
				}
			}
			return
		}
	}
	if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Store" &&
		isAtomicPointer(info, sel.X) && len(c.Args) == 1 {
		if base := storedIdent(info, c.Args[0]); base != nil {
			fn.stores = append(fn.stores, pubiStore{
				pos: c.Pos(), base: base, text: exprText(c.Fun),
				line: a.pass.pkg.Fset.Position(c.Pos()).Line,
			})
		}
		return
	}
	// Same-package call: map plain-ident arguments onto parameter slots
	// for the writes-through-parameter propagation.
	callee, recvArg := a.localCallee(c)
	if callee == nil {
		return
	}
	pc := pubiCall{pos: c.Pos(), callee: callee, label: exprText(c.Fun), args: make(map[int]types.Object)}
	off := 0
	if recvArg != nil {
		if o := rootPlainIdent(info, recvArg); o != nil {
			pc.args[0] = o
		}
		off = 1
	}
	for i, arg := range c.Args {
		if o := rootPlainIdent(info, arg); o != nil {
			pc.args[off+i] = o
		}
	}
	fn.calls = append(fn.calls, pc)
}

// localCallee resolves a call to a function or method declared in this
// package, returning the receiver expression for methods.
func (a *pubiPkg) localCallee(c *ast.CallExpr) (types.Object, ast.Expr) {
	info := a.info()
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok && f.Pkg() == a.pass.pkg.Types {
			return originFunc(f), nil
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if f, ok := s.Obj().(*types.Func); ok && f.Pkg() == a.pass.pkg.Types {
				return originFunc(f), fun.X
			}
		}
	}
	return nil, nil
}

func originFunc(f *types.Func) types.Object {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

func (a *pubiPkg) returnResult(fn *pubiFunc, e ast.Expr) {
	switch root := rootOf(a.info(), e).(type) {
	case rootLoad:
		fn.retLoadSyntactic = true
	case rootCallee:
		fn.retCallees = append(fn.retCallees, types.Object(root))
	case rootAlias:
		fn.retIdents = append(fn.retIdents, types.Object(root))
	}
}

// classifyRHS decides what a binding's right-hand side is rooted in.
func (a *pubiPkg) classifyRHS(e ast.Expr) pubiBind {
	switch root := rootOf(a.info(), e).(type) {
	case rootLoad:
		return pubiBind{loadRooted: true}
	case rootCallee:
		return pubiBind{callee: types.Object(root)}
	case rootAlias:
		return pubiBind{alias: types.Object(root)}
	}
	return pubiBind{}
}

// rootOf strips indexing, selection, derefs, slicing, asserts, and
// conversions to find what an expression is rooted in: an atomic Load
// call, a local function call, or a plain identifier.
type rootLoad struct{}
type rootCallee types.Object
type rootAlias types.Object

func rootOf(info *types.Info, e ast.Expr) any {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SelectorExpr:
			// Selecting a field keeps pointing into the same structure
			// only for the alias analysis; a load-rooted base stays
			// load-rooted (x.Load().f). Walk to the base.
			e = x.X
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" &&
				isAtomicPointer(info, sel.X) {
				return rootLoad{}
			}
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0] // conversion: look through
				continue
			}
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if f, ok := info.Uses[fun].(*types.Func); ok {
					return rootCallee(originFunc(f))
				}
			case *ast.SelectorExpr:
				if s, ok := info.Selections[fun]; ok {
					if f, ok := s.Obj().(*types.Func); ok {
						return rootCallee(originFunc(f))
					}
				}
			}
			return nil
		case *ast.Ident:
			if o := info.ObjectOf(x); o != nil {
				return rootAlias(o)
			}
			return nil
		default:
			return nil
		}
	}
}

// rootIdentObj finds the plain identifier an lvalue is rooted at.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			if o, ok := info.ObjectOf(x).(*types.Var); ok {
				return o
			}
			return nil
		default:
			return nil
		}
	}
}

// rootPlainIdent is rootIdentObj restricted to the bare-identifier and
// &identifier argument forms worth tracking across a call.
func rootPlainIdent(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if o, ok := info.ObjectOf(x).(*types.Var); ok {
			return o
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return rootPlainIdent(info, x.X)
		}
	case *ast.ParenExpr:
		return rootPlainIdent(info, x.X)
	}
	return nil
}

func isAtomicPointer(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	named := namedOf(tv.Type)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// storedIdent strips &, parens, and conversions off a Store argument.
func storedIdent(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			if o, ok := info.ObjectOf(x).(*types.Var); ok {
				return o
			}
			return nil
		default:
			return nil
		}
	}
}

// fixpoint resolves the two package-wide summaries: which functions
// return load-derived values, and which write through their parameters.
func (a *pubiPkg) fixpoint() {
	for _, fn := range a.order {
		fn.retLoad = fn.retLoadSyntactic
		for i, p := range fn.params {
			for _, w := range fn.writes {
				if w.root == p {
					fn.writesParam[i] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range a.order {
			if !fn.retLoad {
				for _, callee := range fn.retCallees {
					if c := a.funcs[callee]; c != nil && c.retLoad {
						fn.retLoad = true
						changed = true
					}
				}
				for _, id := range fn.retIdents {
					for _, b := range fn.binds[id] {
						if b.loadRooted || (b.callee != nil && a.funcs[b.callee] != nil && a.funcs[b.callee].retLoad) {
							fn.retLoad = true
							changed = true
						}
					}
				}
			}
			for _, c := range fn.calls {
				callee := a.funcs[c.callee]
				if callee == nil {
					continue
				}
				for j, argObj := range c.args {
					if !callee.writesParam[j] {
						continue
					}
					for i, p := range fn.params {
						if p == argObj && !fn.writesParam[i] {
							fn.writesParam[i] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// pubiStatus is the verdict on a variable at a program point.
type pubiStatus struct {
	published bool
	loaded    bool
	store     pubiStore
}

func (s pubiStatus) tracked() bool { return s.published || s.loaded }

// statusAt decides whether obj is published or load-derived just before
// pos, following plain-alias chains.
func (a *pubiPkg) statusAt(fn *pubiFunc, obj types.Object, pos token.Pos, seen map[types.Object]bool) pubiStatus {
	if obj == nil || seen[obj] {
		return pubiStatus{}
	}
	seen[obj] = true
	b, ok := latestBind(fn, obj, pos)
	if !ok {
		return pubiStatus{}
	}
	st := pubiStatus{}
	switch {
	case b.loadRooted:
		st.loaded = true
	case b.callee != nil:
		if c := a.funcs[b.callee]; c != nil && c.retLoad {
			st.loaded = true
		}
	case b.alias != nil:
		st = a.statusAt(fn, b.alias, b.pos, seen)
	}
	if st.tracked() {
		return st
	}
	// Published directly: this binding flowed into a Store before pos.
	for _, s := range fn.stores {
		if s.pos >= pos || s.pos < b.pos {
			continue
		}
		if s.base == obj {
			return pubiStatus{published: true, store: s}
		}
		// Published via container: obj was inserted into the stored
		// value (one level deep) between its binding and the Store.
		for _, ins := range fn.inserts {
			if ins.value != obj || ins.pos < b.pos || ins.pos > s.pos || ins.container != s.base {
				continue
			}
			cb, cok := latestBind(fn, ins.container, ins.pos)
			sb, sok := latestBind(fn, ins.container, s.pos)
			if cok == sok && (!cok || cb.pos == sb.pos) {
				return pubiStatus{published: true, store: s}
			}
		}
	}
	return pubiStatus{}
}

func latestBind(fn *pubiFunc, obj types.Object, pos token.Pos) (pubiBind, bool) {
	var best pubiBind
	found := false
	for _, b := range fn.binds[obj] {
		if b.pos < pos && (!found || b.pos > best.pos) {
			best = b
			found = true
		}
	}
	return best, found
}

func (a *pubiPkg) report() {
	type dedup struct {
		pos  token.Pos
		root types.Object
	}
	reported := make(map[dedup]bool)
	for _, fn := range a.order {
		isParam := make(map[types.Object]bool, len(fn.params))
		for _, p := range fn.params {
			isParam[p] = true
		}
		for _, w := range fn.writes {
			if isParam[w.root] {
				continue // cross-function publication is the caller's scope
			}
			st := a.statusAt(fn, w.root, w.pos, map[types.Object]bool{})
			if !st.tracked() || reported[dedup{w.pos, w.root}] {
				continue
			}
			reported[dedup{w.pos, w.root}] = true
			a.pass.report(w.pos, "pubimmutable", writeMsg(w.text, st))
		}
		for _, c := range fn.calls {
			callee := a.funcs[c.callee]
			if callee == nil {
				continue
			}
			for j, argObj := range c.args {
				if !callee.writesParam[j] || isParam[argObj] {
					continue
				}
				st := a.statusAt(fn, argObj, c.pos, map[types.Object]bool{})
				if !st.tracked() || reported[dedup{c.pos, argObj}] {
					continue
				}
				reported[dedup{c.pos, argObj}] = true
				a.pass.report(c.pos, "pubimmutable",
					fmt.Sprintf("passes %s to %s, which writes through it, %s", argObj.Name(), c.label, afterClause(st)))
			}
		}
	}
}

func writeMsg(text string, st pubiStatus) string {
	return fmt.Sprintf("write through %s %s", text, afterClause(st))
}

func afterClause(st pubiStatus) string {
	if st.published {
		return fmt.Sprintf("after publication via %s at line %d (stored values are shared and immutable)", st.text(), st.store.line)
	}
	return "after it was obtained from an atomic Load (loaded values are shared and immutable)"
}

func (s pubiStatus) text() string { return s.store.text }
