package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// epochkeyCheck enforces the snapshot plane's memoization discipline:
// a long-lived map keyed by a snapshot epoch (any named type called
// "Epoch", or a struct key carrying a field of such a type) gains a
// fresh key population every epoch swap, so unless something evicts the
// previous generation's entries the map is an unbounded leak driven by
// the poll loop. The check requires the declaring package to delete
// from or clear a map of that name somewhere; memoizations whose
// bounding lives elsewhere (a handoff, an external sweep) state it in
// an allow directive. It runs in every package: epoch-keyed caches
// outside internal/snapshot leak the same way.
//
// Only declarations that outlive a call — struct fields and
// package-level vars — are checked; function-local epoch-keyed maps die
// with their frame and are inherently bounded.
type epochkeyCheck struct{}

func (epochkeyCheck) name() string { return "epochkey" }

func (epochkeyCheck) run(p *pass) {
	type site struct {
		pos  ast.Node
		name string
		kind string
	}
	var maps []site
	evicted := make(map[string]bool)
	for _, f := range p.pkg.Files {
		// Package-level vars.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.pkg.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if isEpochKeyedMap(obj.Type()) {
						maps = append(maps, site{pos: name, name: name.Name, kind: "package-level var"})
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					t := p.pkg.TypesInfo.TypeOf(fld.Type)
					if t == nil || !isEpochKeyedMap(t) {
						continue
					}
					for _, name := range fld.Names {
						maps = append(maps, site{pos: name, name: name.Name, kind: "struct field"})
					}
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || len(n.Args) == 0 {
					return true
				}
				if _, isBuiltin := p.pkg.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if id.Name == "delete" || id.Name == "clear" {
					evicted[lastPathName(n.Args[0])] = true
				}
			}
			return true
		})
	}
	for _, m := range maps {
		if !evicted[m.name] {
			p.report(m.pos.Pos(), "epochkey", fmt.Sprintf(
				"%s %s is a map keyed by snapshot epoch with no delete or clear in this package; evict stale generations on epoch swap or state the external bound in an allow directive",
				m.kind, m.name))
		}
	}
}

// isEpochKeyedMap reports whether t is a map whose key type is, or is a
// struct embedding, a named type called "Epoch".
func isEpochKeyedMap(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	return mentionsEpoch(m.Key(), make(map[types.Type]bool))
}

func mentionsEpoch(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Name() == "Epoch" {
			return true
		}
		return mentionsEpoch(named.Underlying(), seen)
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if mentionsEpoch(st.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// lastPathName reduces an eviction target to the name granularity the
// declarations are recorded at: the final selector component ("subs"
// for delete(st.subs, k)).
func lastPathName(e ast.Expr) string {
	text := exprText(e)
	if i := strings.LastIndex(text, "."); i >= 0 {
		return text[i+1:]
	}
	return text
}
