package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// metricnameCheck keeps the observability namespace coherent: every
// metric registered on an obs Registry must be a snake_case name under
// remos_ with a known subsystem token, counters must end in _total,
// histograms must carry a unit suffix, and a name may be registered
// from exactly one call site — two sites registering the same family
// (possibly with different help text or types) is how dashboards
// silently split.
type metricnameCheck struct{}

func (*metricnameCheck) name() string { return "metricname" }

// metricSite records one registration for the duplicate analysis.
type metricSite struct {
	pos  token.Position
	kind string
}

// metricMethods maps Registry method names to the metric kind they
// register.
var metricMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge",
	"Histogram": "histogram",
}

var snakeName = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func (c *metricnameCheck) run(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricMethods[sel.Sel.Name]
			if !ok || recvNamed(p, sel) != "Registry" || len(call.Args) == 0 {
				return true
			}
			lit, isLit := call.Args[0].(*ast.BasicLit)
			if !isLit || lit.Kind != token.STRING {
				p.report(call.Args[0].Pos(), "metricname",
					"metric name is not a string literal; names must be statically auditable")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			c.validate(p, lit.Pos(), kind, name)
			p.r.metrics[name] = append(p.r.metrics[name],
				metricSite{pos: p.pkg.Fset.Position(lit.Pos()), kind: kind})
			return true
		})
	}
}

// validate applies the naming grammar to one registration.
func (c *metricnameCheck) validate(p *pass, pos token.Pos, kind, name string) {
	if !snakeName.MatchString(name) {
		p.report(pos, "metricname", fmt.Sprintf("metric %q is not snake_case", name))
		return
	}
	tokens := strings.Split(name, "_")
	if tokens[0] != "remos" {
		p.report(pos, "metricname", fmt.Sprintf("metric %q is outside the remos_ namespace", name))
		return
	}
	if len(tokens) < 3 || !p.policy.MetricSubsystems[tokens[1]] {
		p.report(pos, "metricname", fmt.Sprintf(
			"metric %q has no known subsystem token (remos_<subsystem>_...)", name))
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			p.report(pos, "metricname", fmt.Sprintf("counter %q must end in _total", name))
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			p.report(pos, "metricname", fmt.Sprintf(
				"histogram %q must carry a unit suffix (_seconds or _bytes)", name))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			p.report(pos, "metricname", fmt.Sprintf("gauge %q must not end in _total", name))
		}
	}
}

// finish reports names registered from more than one call site, at
// every site after the first (file order is the load order, which is
// deterministic).
func (c *metricnameCheck) finish(r *runner) {
	for name, sites := range r.metrics {
		if len(sites) < 2 {
			continue
		}
		for _, s := range sites[1:] {
			r.findings = append(r.findings, rawFinding{
				pos:   s.pos,
				check: "metricname",
				msg: fmt.Sprintf("metric %q already registered at %s:%d; register a family once and share the handle",
					name, sites[0].pos.Filename, sites[0].pos.Line),
			})
		}
	}
}
