package lint

// Concurrency-discipline substrate shared by the lockorder and lockheld
// analyzers: a module-wide index of per-function summaries (which ranked
// locks a function acquires, which blocking operations it performs,
// which functions it calls) plus per-site events recorded together with
// the set of mutexes syntactically held at that site.
//
// The model is deliberately syntactic, with the conservative edges
// documented in DESIGN.md §10:
//
//   - Critical sections are tracked per statement list in source order:
//     Lock/RLock adds the lock expression to the held set, the matching
//     Unlock/RUnlock removes it, and defer x.Unlock() keeps the lock
//     held to the end of the function. Branch bodies (if/for/switch/
//     select cases) are analyzed with a copy of the held set, so
//     lock-state changes inside a branch do not leak past it — the repo
//     acquires hot-path locks unconditionally, so this loses nothing.
//   - Function literals bound to a local variable (try := func() {...})
//     become call-graph nodes reachable through calls of that variable.
//     Literals that are launched (go), deferred, or passed as arguments
//     are analyzed as independent roots with an empty held set.
//   - Calls through module-defined interfaces expand conservatively to
//     every named type in the module that implements the interface.
//     Dynamic calls through func values/fields and stdlib interfaces
//     (io.Writer et al.) are not tracked.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockClass is one ranked mutex class from Policy.LockLevels, keyed
// "pkgName.TypeName.fieldName".
type lockClass struct {
	class string // policy key; "" for an unranked mutex
	level int
}

// heldLock is one currently-held mutex: its rendered expression (the
// identity used to match the Unlock) plus its ranked class, if any.
type heldLock struct {
	text string
	rw   bool // held via RLock
	lockClass
}

func (h heldLock) String() string {
	if h.class == "" {
		return h.text
	}
	return fmt.Sprintf("%s (%s, level %d)", h.text, h.class, h.level)
}

// heldSet is the ordered set of locks held at a program point.
type heldSet struct {
	locks []heldLock
}

func (s *heldSet) clone() *heldSet {
	return &heldSet{locks: append([]heldLock(nil), s.locks...)}
}

func (s *heldSet) snapshot() []heldLock {
	return append([]heldLock(nil), s.locks...)
}

func (s *heldSet) add(l heldLock) {
	for _, h := range s.locks {
		if h.text == l.text {
			return // re-entry on the same expression: outer section already covers it
		}
	}
	s.locks = append(s.locks, l)
}

func (s *heldSet) remove(text string) {
	for i := len(s.locks) - 1; i >= 0; i-- {
		if s.locks[i].text == text {
			s.locks = append(s.locks[:i], s.locks[i+1:]...)
			return
		}
	}
}

// concOp is one direct blocking operation in a function body.
type concOp struct {
	pos  token.Pos
	what string
}

// concCall is one resolved call edge out of a function.
type concCall struct {
	pos   token.Pos
	label string // rendered callee expression, for messages

	obj   types.Object     // static callee (func/method, or the var a closure is bound to)
	iface *types.Interface // module-defined interface, expanded in finalize
	mname string

	targets []*concNode // filled by finalize
}

// concTrace is how a transitive fact (acquires class C / may block)
// reaches a function: the call chain walked, ending at the fact.
type concTrace struct {
	pos  token.Pos
	what string   // blocking-op description (transBlock only)
	via  []string // callee display names along the chain
}

func (t *concTrace) chain() string {
	if len(t.via) == 0 {
		return ""
	}
	return " via " + strings.Join(t.via, " -> ")
}

// concEvent records an acquisition, blocking op, or call that happened
// while at least one lock was held.
type concEvent struct {
	pos  token.Pos
	what string    // blocking description (block events)
	acq  heldLock  // acquired lock (acquire events)
	call *concCall // outgoing edge (call events)
	held []heldLock
}

// concNode is the summary of one function, method, or function literal.
type concNode struct {
	pkg  *Package
	name string

	acquires map[string]token.Pos // ranked classes directly acquired
	blocks   []concOp             // direct blocking operations
	calls    []*concCall

	acqEvents   []concEvent // acquisitions with locks already held
	blockEvents []concEvent // blocking ops under a lock
	callEvents  []concEvent // calls made under a lock

	transAcq   map[string]*concTrace // ranked classes reachable through calls
	transBlock *concTrace            // some blocking op is reachable
}

// concState is built once per Run and shared by lockorder and lockheld.
type concState struct {
	policy    Policy
	nodes     []*concNode
	index     map[types.Object]*concNode // decl object (or closure binding var) -> node
	loaded    map[*types.Package]*Package
	seen      map[*Package]bool
	ifaceMemo map[ifaceKey][]*concNode
	finalized bool
}

type ifaceKey struct {
	iface *types.Interface
	mname string
}

func newConcState(policy Policy) *concState {
	return &concState{
		policy:    policy,
		index:     make(map[types.Object]*concNode),
		loaded:    make(map[*types.Package]*Package),
		seen:      make(map[*Package]bool),
		ifaceMemo: make(map[ifaceKey][]*concNode),
	}
}

func (cs *concState) newNode(pkg *Package, name string) *concNode {
	n := &concNode{
		pkg:      pkg,
		name:     name,
		acquires: make(map[string]token.Pos),
		transAcq: make(map[string]*concTrace),
	}
	cs.nodes = append(cs.nodes, n)
	return n
}

// collect walks one package's functions. Both checks call it; the seen
// map makes the second call a no-op.
func (cs *concState) collect(pkg *Package) {
	if cs.seen[pkg] {
		return
	}
	cs.seen[pkg] = true
	if pkg.Types != nil {
		cs.loaded[pkg.Types] = pkg
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := cs.newNode(pkg, funcDisplayName(pkg, fd))
			if obj := pkg.TypesInfo.Defs[fd.Name]; obj != nil {
				cs.index[obj] = node
			}
			w := &concWalker{cs: cs, pkg: pkg, node: node}
			w.stmts(fd.Body.List, &heldSet{})
			w.drainQueue()
		}
	}
}

func funcDisplayName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return pkg.Name + ".(" + exprText(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return pkg.Name + "." + fd.Name.Name
}

// litCtx is a function literal queued for analysis as its own node.
type litCtx struct {
	lit  *ast.FuncLit
	name string
	bind types.Object // local var the literal is bound to, if any
}

// concWalker analyzes one function body, tracking the held set.
type concWalker struct {
	cs    *concState
	pkg   *Package
	node  *concNode
	queue []litCtx
}

// drainQueue analyzes the literals queued while walking, each as an
// independent node with an empty held set (they run in their own
// goroutine / deferred / callback context).
func (w *concWalker) drainQueue() {
	for len(w.queue) > 0 {
		lc := w.queue[0]
		w.queue = w.queue[1:]
		n := w.cs.newNode(w.pkg, lc.name)
		if lc.bind != nil {
			if _, dup := w.cs.index[lc.bind]; dup {
				// The same var is bound to two literals: calls through it
				// are ambiguous, so drop the binding rather than guess.
				w.cs.index[lc.bind] = nil
			} else {
				w.cs.index[lc.bind] = n
			}
		}
		w.node = n
		w.stmts(lc.lit.Body.List, &heldSet{})
	}
}

func (w *concWalker) info() *types.Info { return w.pkg.TypesInfo }

// stmts walks a statement list in source order, mutating held.
func (w *concWalker) stmts(list []ast.Stmt, held *heldSet) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

func (w *concWalker) stmt(st ast.Stmt, held *heldSet) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		w.expr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			// A literal assigned to a plain local var becomes a callable
			// node; calls of that var resolve to it.
			if lit, ok := e.(*ast.FuncLit); ok && len(st.Lhs) == len(st.Rhs) {
				if id, ok := st.Lhs[indexOf(st.Rhs, e)].(*ast.Ident); ok {
					w.queueLit(lit, w.info().ObjectOf(id))
					continue
				}
			}
			w.expr(e, held)
		}
		for _, e := range st.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if lit, ok := v.(*ast.FuncLit); ok && i < len(vs.Names) {
						w.queueLit(lit, w.info().ObjectOf(vs.Names[i]))
						continue
					}
					w.expr(v, held)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(st.X, held)
	case *ast.SendStmt:
		w.expr(st.Chan, held)
		w.expr(st.Value, held)
		w.block(st.Arrow, "channel send", held)
	case *ast.GoStmt:
		// The goroutine body runs concurrently, outside this critical
		// section; only argument evaluation happens here.
		w.callParts(st.Call, held, false)
	case *ast.DeferStmt:
		if w.deferredUnlock(st.Call, held) {
			break
		}
		w.callParts(st.Call, held, false)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		w.stmts(st.Body.List, held.clone())
		if st.Else != nil {
			w.stmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		inner := held.clone()
		if st.Post != nil {
			w.stmt(st.Post, inner)
		}
		w.stmts(st.Body.List, inner)
	case *ast.RangeStmt:
		if t := w.typeOf(st.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.block(st.X.Pos(), "range over channel", held)
			}
		}
		w.expr(st.X, held)
		w.stmts(st.Body.List, held.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, held)
				}
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.stmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(st.Select, "select without default", held)
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm op itself is the select's blocking point, already
			// reported above; walk only nested calls in its operands.
			if cc.Comm != nil {
				w.commOperands(cc.Comm, held)
			}
			w.stmts(cc.Body, held.clone())
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held.clone())
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	}
}

func indexOf(exprs []ast.Expr, e ast.Expr) int {
	for i, x := range exprs {
		if x == e {
			return i
		}
	}
	return 0
}

// commOperands walks the operand expressions of a select comm clause
// without re-reporting the send/receive itself.
func (w *concWalker) commOperands(comm ast.Stmt, held *heldSet) {
	switch comm := comm.(type) {
	case *ast.SendStmt:
		w.expr(comm.Chan, held)
		w.expr(comm.Value, held)
	case *ast.AssignStmt:
		for _, e := range comm.Rhs {
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.expr(u.X, held)
				continue
			}
			w.expr(e, held)
		}
	case *ast.ExprStmt:
		if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.expr(u.X, held)
		}
	}
}

func (w *concWalker) queueLit(lit *ast.FuncLit, bind types.Object) {
	name := w.node.name + ".func"
	if bind != nil {
		name = w.node.name + "$" + bind.Name()
	}
	w.queue = append(w.queue, litCtx{lit: lit, name: name, bind: bind})
}

func (w *concWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

// expr walks an expression, recording lock transitions, blocking ops,
// and call edges.
func (w *concWalker) expr(e ast.Expr, held *heldSet) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e, held)
	case *ast.FuncLit:
		// Un-invoked literal reaching here is stored/passed somewhere:
		// analyze as an independent root.
		w.queueLit(e, nil)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.block(e.OpPos, "channel receive", held)
		}
		w.expr(e.X, held)
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.ParenExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.SelectorExpr:
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.IndexListExpr:
		w.expr(e.X, held)
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, held)
				continue
			}
			w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, held)
	}
}

// call classifies one call: lock transition, direct blocking op, or a
// call edge into the graph. An IIFE's body runs inline under the
// current held set.
func (w *concWalker) call(c *ast.CallExpr, held *heldSet) {
	if lit, ok := c.Fun.(*ast.FuncLit); ok {
		for _, a := range c.Args {
			w.expr(a, held)
		}
		w.stmts(lit.Body.List, held) // IIFE: same critical section
		return
	}

	if sel, ok := c.Fun.(*ast.SelectorExpr); ok && w.isMutexRecv(sel) {
		text := exprText(sel.X)
		switch sel.Sel.Name {
		case "Lock", "RLock":
			l := heldLock{text: text, rw: sel.Sel.Name == "RLock", lockClass: w.classify(sel.X)}
			if len(held.locks) > 0 {
				w.node.acqEvents = append(w.node.acqEvents,
					concEvent{pos: c.Pos(), acq: l, held: held.snapshot()})
			}
			if l.class != "" {
				if _, ok := w.node.acquires[l.class]; !ok {
					w.node.acquires[l.class] = c.Pos()
				}
			}
			held.add(l)
			return
		case "Unlock", "RUnlock":
			held.remove(text)
			return
		}
	}

	if what := w.blockingCall(c); what != "" {
		w.block(c.Pos(), what, held)
		for _, a := range c.Args {
			w.expr(a, held)
		}
		return
	}

	w.callParts(c, held, true)
}

// callParts records the call edge (when resolvable and wanted) and
// walks the callee/argument expressions.
func (w *concWalker) callParts(c *ast.CallExpr, held *heldSet, edge bool) {
	if edge {
		w.resolveEdge(c, held)
	} else if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
		w.expr(sel.X, held)
	}
	for _, a := range c.Args {
		if lit, ok := a.(*ast.FuncLit); ok {
			// Callback literal: runs in the callee's context, not here.
			w.queueLit(lit, nil)
			continue
		}
		w.expr(a, held)
	}
}

// resolveEdge records a call-graph edge for statically resolvable
// callees: same-module functions/methods, closure bindings, and
// module-defined interface methods (expanded later).
func (w *concWalker) resolveEdge(c *ast.CallExpr, held *heldSet) {
	info := w.info()
	var edge *concCall
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[fun].(type) {
		case *types.Func:
			edge = &concCall{obj: originOf(o)}
		case *types.Var:
			edge = &concCall{obj: o} // possibly a bound closure
		}
	case *ast.SelectorExpr:
		w.expr(fun.X, held)
		if s, ok := info.Selections[fun]; ok {
			if f, ok := s.Obj().(*types.Func); ok {
				if recv := f.Type().(*types.Signature).Recv(); recv != nil {
					if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
						if tx := w.typeOf(fun.X); tx != nil && w.moduleOwned(f.Pkg()) {
							if ifc, ok := tx.Underlying().(*types.Interface); ok {
								edge = &concCall{iface: ifc, mname: f.Name()}
							}
						}
					} else {
						edge = &concCall{obj: originOf(f)}
					}
				}
			}
		} else if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			edge = &concCall{obj: originOf(f)} // pkg-qualified function
		}
	default:
		w.expr(c.Fun, held)
	}
	if edge != nil {
		edge.pos = c.Pos()
		edge.label = exprText(c.Fun)
		w.node.calls = append(w.node.calls, edge)
		if len(held.locks) > 0 {
			w.node.callEvents = append(w.node.callEvents,
				concEvent{pos: c.Pos(), call: edge, held: held.snapshot()})
		}
	}
}

func originOf(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// moduleOwned reports whether tp is a package loaded in this run (i.e.
// part of the module, not stdlib). Topological load order guarantees a
// package's dependencies are already registered when it is collected.
func (cs *concState) loadedPkg(tp *types.Package) bool {
	return tp != nil && cs.loaded[tp] != nil
}

func (w *concWalker) moduleOwned(tp *types.Package) bool {
	return tp == w.pkg.Types || w.cs.loadedPkg(tp)
}

// isMutexRecv reports whether sel selects a method on sync.Mutex or
// sync.RWMutex (possibly through a pointer).
func (w *concWalker) isMutexRecv(sel *ast.SelectorExpr) bool {
	t := w.typeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// classify maps a lock expression to its ranked class: the mutex must
// be a field selected from a value of a named type that appears in
// Policy.LockLevels as pkg.Type.field.
func (w *concWalker) classify(x ast.Expr) lockClass {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}
	}
	base := w.typeOf(sel.X)
	if base == nil {
		return lockClass{}
	}
	if ptr, ok := base.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return lockClass{}
	}
	key := named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name
	if lvl, ok := w.cs.policy.LockLevels[key]; ok {
		return lockClass{class: key, level: lvl}
	}
	return lockClass{}
}

// deferredUnlock handles defer x.Unlock(): the lock stays held to the
// end of the function, which the source-order walk models by simply not
// removing it. Returns true when the call was a mutex unlock.
func (w *concWalker) deferredUnlock(c *ast.CallExpr, held *heldSet) bool {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || !w.isMutexRecv(sel) {
		return false
	}
	return sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock"
}

// block records a direct blocking operation.
func (w *concWalker) block(pos token.Pos, what string, held *heldSet) {
	w.node.blocks = append(w.node.blocks, concOp{pos: pos, what: what})
	if len(held.locks) > 0 {
		w.node.blockEvents = append(w.node.blockEvents,
			concEvent{pos: pos, what: what, held: held.snapshot()})
	}
}

// blockingCall classifies calls that block by themselves: sync waits,
// network I/O, time.Sleep, and I/O helpers writing to a net connection.
func (w *concWalker) blockingCall(c *ast.CallExpr) string {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if path := w.pkgOf(sel.X); path != "" {
		switch path {
		case "net":
			if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") {
				return "net." + name
			}
		case "time":
			if name == "Sleep" {
				return "time.Sleep"
			}
		case "io":
			switch name {
			case "Copy", "CopyN", "CopyBuffer", "WriteString", "ReadAll", "ReadFull", "ReadAtLeast":
				if w.firstArgNet(c) {
					return "io." + name + " on a net connection"
				}
			}
		case "fmt":
			if strings.HasPrefix(name, "Fprint") && w.firstArgNet(c) {
				return "fmt." + name + " on a net connection"
			}
		}
		return ""
	}
	recv := w.typeOf(sel.X)
	if recv == nil {
		return ""
	}
	if name == "Wait" && isSyncWaiter(recv) {
		return typeShort(recv) + ".Wait"
	}
	if fromNetPkg(recv) && !netNonBlocking[name] {
		return typeShort(recv) + "." + name
	}
	return ""
}

// netNonBlocking are net-type methods that complete locally: address
// accessors, deadline setters, and the net.Error predicates.
var netNonBlocking = set("Close", "LocalAddr", "RemoteAddr", "SetDeadline",
	"SetReadDeadline", "SetWriteDeadline", "Network", "String", "Addr",
	"Error", "Timeout", "Temporary", "Unwrap")

func (w *concWalker) pkgOf(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := w.info().Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func (w *concWalker) firstArgNet(c *ast.CallExpr) bool {
	return len(c.Args) > 0 && fromNetPkg(w.typeOf(c.Args[0]))
}

func isSyncWaiter(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "WaitGroup" || obj.Name() == "Cond"
}

func fromNetPkg(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeShort(t types.Type) string {
	if named := namedOf(t); named != nil {
		return named.Obj().Name()
	}
	return t.String()
}

// finalize resolves call targets (including conservative interface
// expansion) and propagates acquires/may-block facts to a fixpoint.
func (cs *concState) finalize() {
	if cs.finalized {
		return
	}
	cs.finalized = true

	for _, n := range cs.nodes {
		for _, c := range n.calls {
			switch {
			case c.obj != nil:
				if t := cs.index[c.obj]; t != nil {
					c.targets = []*concNode{t}
				}
			case c.iface != nil:
				c.targets = cs.implementations(c.iface, c.mname)
			}
		}
		// Seed transitive facts with the direct ones.
		for cls, pos := range n.acquires {
			n.transAcq[cls] = &concTrace{pos: pos}
		}
		if len(n.blocks) > 0 {
			n.transBlock = &concTrace{pos: n.blocks[0].pos, what: n.blocks[0].what}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, n := range cs.nodes {
			for _, c := range n.calls {
				for _, t := range c.targets {
					for cls, tr := range t.transAcq {
						if _, ok := n.transAcq[cls]; !ok {
							n.transAcq[cls] = &concTrace{
								pos: c.pos, what: tr.what,
								via: append([]string{t.name}, tr.via...),
							}
							changed = true
						}
					}
					if n.transBlock == nil && t.transBlock != nil {
						n.transBlock = &concTrace{
							pos: c.pos, what: t.transBlock.what,
							via: append([]string{t.name}, t.transBlock.via...),
						}
						changed = true
					}
				}
			}
		}
	}
}

// implementations finds the method bodies a module-interface call can
// dispatch to: every named non-interface type in a loaded package whose
// value or pointer implements the interface.
func (cs *concState) implementations(ifc *types.Interface, mname string) []*concNode {
	key := ifaceKey{iface: ifc, mname: mname}
	if out, ok := cs.ifaceMemo[key]; ok {
		return out
	}
	var out []*concNode
	for tp := range cs.loaded {
		scope := tp.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			var t types.Type = named
			if !types.Implements(t, ifc) {
				t = types.NewPointer(named)
				if !types.Implements(t, ifc) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, tp, mname)
			f, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if n := cs.index[originOf(f)]; n != nil {
				out = append(out, n)
			}
		}
	}
	cs.ifaceMemo[key] = out
	return out
}

// heldText renders a held set for messages.
func heldText(held []heldLock) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = h.String()
	}
	return strings.Join(parts, ", ")
}
