package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// poolreturnCheck enforces pooling hygiene in the packages that recycle
// hot-path buffers (the wire protocols and the SNMP codec): every
// sync.Pool Get must be matched by a Put on the same pool within the
// same top-level function — directly or via defer — so pooled objects
// cannot leak on early returns and quietly turn the pool into a
// per-call allocator. A Get whose object legitimately outlives the
// function (a handoff) carries an allow directive stating where the Put
// happens.
type poolreturnCheck struct{}

func (poolreturnCheck) name() string { return "poolreturn" }

func (poolreturnCheck) run(p *pass) {
	if !p.policy.PoolReturn[p.pkg.Name] {
		return
	}
	for _, f := range p.pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolBalance(p, fn)
		}
	}
}

// checkPoolBalance pairs the Gets and Puts of one function body.
// Matching is by the rendered pool expression ("readerPool",
// "c.bufPool"), the granularity at which the repo names its pools;
// nested function literals count toward their enclosing declaration, so
// a Put inside a deferred closure satisfies the Get before it.
func checkPoolBalance(p *pass, fn *ast.FuncDecl) {
	type site struct {
		pos  token.Pos
		pool string
	}
	var gets []site
	puts := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncPoolRecv(p, sel) {
			return true
		}
		pool := exprText(sel.X)
		switch sel.Sel.Name {
		case "Get":
			gets = append(gets, site{pos: call.Pos(), pool: pool})
		case "Put":
			puts[pool] = true
		}
		return true
	})
	for _, g := range gets {
		if !puts[g.pool] {
			p.report(g.pos, "poolreturn", fmt.Sprintf(
				"sync.Pool Get on %s with no Put in %s; return the object in this function (defer the Put) or state the handoff in an allow directive",
				g.pool, fn.Name.Name))
		}
	}
}

// isSyncPoolRecv reports whether sel is a method selection on sync.Pool
// (or *sync.Pool).
func isSyncPoolRecv(p *pass, sel *ast.SelectorExpr) bool {
	s, ok := p.pkg.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// exprText renders the small expression forms pools are reached through.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.UnaryExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	}
	return "?"
}
