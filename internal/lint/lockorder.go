package lint

// lockorder enforces the repo-wide lock hierarchy declared in
// Policy.LockLevels. The rule: while any ranked lock of level L is
// held, only strictly lower-ranked locks may be acquired — directly or
// anywhere in the call graph of a call made inside the critical
// section. Acquiring a same-level lock (two stripes of the same shard
// set) is always a violation: stripes have no order between them, so
// nesting them deadlocks under inverse interleaving.
//
// The hierarchy is deliberately coarse — one level per locked
// structure, lowest innermost:
//
//	10 qcache shard < 20 watch stripe < 30 obs stripe
//	   < 40 admission bucket < 50 federation router / directory
//
// so a higher-plane component (admission, federation) may call into a
// lower-plane one (obs, qcache) while locked, but never the reverse.
// Unranked mutexes are outside the hierarchy and are lockorder's
// no-op; lockheld polices nesting that involves them.

import "fmt"

type lockorderCheck struct {
	cs *concState
}

func (lockorderCheck) name() string { return "lockorder" }

func (c *lockorderCheck) run(p *pass) {
	c.cs.collect(p.pkg)
}

func (c *lockorderCheck) finish(r *runner) {
	cs := c.cs
	cs.finalize()
	for _, n := range cs.nodes {
		for _, ev := range n.acqEvents {
			if ev.acq.class == "" {
				continue
			}
			if h, bad := worstHeld(ev.held, ev.acq.level); bad {
				r.report(n.pkg.Fset, ev.pos, "lockorder",
					orderMsg(fmt.Sprintf("acquires %s (level %d)", ev.acq.class, ev.acq.level), ev.acq.level, h))
			}
		}
		for _, ev := range n.callEvents {
			minHeld := -1
			for _, h := range ev.held {
				if h.class != "" && (minHeld < 0 || h.level < minHeld) {
					minHeld = h.level
				}
			}
			if minHeld < 0 {
				continue // no ranked lock held: nothing to order against
			}
			for _, t := range ev.call.targets {
				reported := false
				for cls, tr := range t.transAcq {
					lvl := cs.policy.LockLevels[cls]
					if lvl < minHeld {
						continue
					}
					h, _ := worstHeld(ev.held, lvl)
					r.report(n.pkg.Fset, ev.pos, "lockorder",
						orderMsg(fmt.Sprintf("call to %s acquires %s (level %d)%s",
							ev.call.label, cls, lvl, (&concTrace{via: append([]string{t.name}, tr.via...)}).chain()),
							lvl, h))
					reported = true
					break // one finding per call site
				}
				if reported {
					break
				}
			}
		}
	}
}

// worstHeld returns the held ranked lock that the acquisition of a
// level-lvl lock violates against (the lowest held level ≤ lvl), and
// whether a violation exists at all.
func worstHeld(held []heldLock, lvl int) (heldLock, bool) {
	var worst heldLock
	found := false
	for _, h := range held {
		if h.class == "" || lvl < h.level {
			continue
		}
		if !found || h.level < worst.level {
			worst = h
			found = true
		}
	}
	return worst, found
}

func orderMsg(what string, lvl int, held heldLock) string {
	if lvl == held.level {
		return fmt.Sprintf("lock hierarchy: %s while holding %s: same-level locks must never nest", what, held)
	}
	return fmt.Sprintf("lock hierarchy: %s while holding %s: only strictly lower levels may be acquired under a held lock", what, held)
}
