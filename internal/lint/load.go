package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked Go package: the unit
// the analyzers run over.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// ModulePath reads the module path out of root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// rawPkg is a parsed-but-not-yet-type-checked package directory.
type rawPkg struct {
	importPath string
	dir        string
	name       string
	files      []*ast.File
	imports    []string // module-internal imports only
}

// LoadModule discovers, parses, and type-checks every non-test package
// under the module at root, using only the standard toolchain: stdlib
// dependencies resolve through go/importer export data (with a
// source-importer fallback), module-internal imports resolve against the
// packages loaded here. Test files are not loaded: the invariants the
// analyzers enforce are about production code, and tests legitimately
// use wall-clock deadlines and sleeps.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	raws := make(map[string]*rawPkg)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		raw, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if raw == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			raw.importPath = module
		} else {
			raw.importPath = module + "/" + filepath.ToSlash(rel)
		}
		for _, f := range raw.files {
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if p == module || strings.HasPrefix(p, module+"/") {
					raw.imports = append(raw.imports, p)
				}
			}
		}
		raws[raw.importPath] = raw
		return nil
	})
	if err != nil {
		return nil, err
	}

	order, err := topoSort(raws)
	if err != nil {
		return nil, err
	}

	imp := newModImporter(fset)
	var pkgs []*Package
	for _, path := range order {
		pkg, err := typeCheck(fset, raws[path], imp)
		if err != nil {
			return nil, err
		}
		imp.local[path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package (stdlib
// imports only) — the entry point the golden-file tests use.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	raw, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	raw.importPath = importPath
	return typeCheck(fset, raw, newModImporter(fset))
}

// parseDir parses the non-test Go files of one directory; nil if the
// directory holds no Go files.
func parseDir(fset *token.FileSet, dir string) (*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	raw := &rawPkg{dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
			strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if raw.name == "" {
			raw.name = f.Name.Name
		} else if raw.name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: packages %s and %s in one directory",
				dir, raw.name, f.Name.Name)
		}
		raw.files = append(raw.files, f)
	}
	if len(raw.files) == 0 {
		return nil, nil
	}
	return raw, nil
}

// topoSort orders the module packages so every package follows its
// module-internal dependencies.
func topoSort(raws map[string]*rawPkg) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range raws[path].imports {
			if _, ok := raws[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which is not in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(raws))
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, raw *rawPkg, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			terrs = append(terrs, err.Error())
		},
	}
	tpkg, err := conf.Check(raw.importPath, fset, raw.files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s",
			raw.importPath, strings.Join(terrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", raw.importPath, err)
	}
	return &Package{
		ImportPath: raw.importPath,
		Dir:        raw.dir,
		Name:       raw.name,
		Fset:       fset,
		Files:      raw.files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// modImporter resolves stdlib imports through the toolchain's export
// data (falling back to type-checking the stdlib from source when export
// data is unavailable) and module-internal imports from the packages
// already checked this run.
type modImporter struct {
	fset  *token.FileSet
	std   types.Importer
	src   types.Importer // lazy source-importer fallback
	local map[string]*types.Package
	cache map[string]*types.Package
}

func newModImporter(fset *token.FileSet) *modImporter {
	return &modImporter{
		fset:  fset,
		std:   importer.Default(),
		local: make(map[string]*types.Package),
		cache: make(map[string]*types.Package),
	}
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	p, err := m.std.Import(path)
	if err != nil {
		if m.src == nil {
			m.src = importer.ForCompiler(m.fset, "source", nil)
		}
		p, err = m.src.Import(path)
		if err != nil {
			return nil, err
		}
	}
	m.cache[path] = p
	return p, nil
}
