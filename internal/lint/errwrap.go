package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

// errwrapCheck guards the error taxonomy at the process boundaries: in
// the wire protocols, the master collector, and the public remos
// package, an error folded into fmt.Errorf with %v or %s loses its
// chain, so errors.Is stops matching the rerr sentinels and the wire
// code degrades to UNAVAILABLE-less text. Error operands must travel
// under %w (or the error must be built via rerr.Tag/Tagf, which wrap
// internally).
type errwrapCheck struct{}

func (errwrapCheck) name() string { return "errwrap" }

func (errwrapCheck) run(p *pass) {
	if !p.policy.ErrWrap[p.pkg.Name] {
		return
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" || importedPackage(p, sel.X) != "fmt" {
				return true
			}
			checkErrorf(p, call)
			return true
		})
	}
}

// checkErrorf pairs the format verbs of one fmt.Errorf call with its
// operands and reports error-typed operands not travelling under %w.
func checkErrorf(p *pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		// A non-constant format cannot be audited; flag it only when an
		// error operand is present, since that is the risky shape.
		for _, a := range call.Args[1:] {
			if isErrorType(p.pkg.TypesInfo.TypeOf(a)) {
				p.report(call.Pos(), "errwrap",
					"fmt.Errorf with a non-constant format and an error operand; use a constant format with %w")
				return
			}
		}
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	args := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.arg < 0 || v.arg >= len(args) {
			continue // malformed call; go vet owns arity complaints
		}
		t := p.pkg.TypesInfo.TypeOf(args[v.arg])
		if !isErrorType(t) {
			continue
		}
		if v.verb != 'w' {
			p.report(args[v.arg].Pos(), "errwrap", fmt.Sprintf(
				"error operand formatted with %%%c loses its chain across this boundary; wrap with %%w or construct via rerr", v.verb))
		}
	}
}

// verb is one format directive and the operand index it consumes.
type verb struct {
	verb byte
	arg  int
}

// parseVerbs scans a Printf-style format, returning each verb with the
// index of the operand it binds to. It understands flags, width and
// precision (including '*'), and explicit argument indexes ([n]).
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && (format[i] == '+' || format[i] == '-' ||
			format[i] == '#' || format[i] == ' ' || format[i] == '0') {
			i++
		}
		// Width (possibly '*', which consumes an operand).
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			}
		}
		// Explicit argument index.
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		out = append(out, verb{verb: format[i], arg: arg})
		arg++
	}
	return out
}
