package lint

import (
	"go/ast"
	"go/types"
)

// importedPackage resolves a selector base expression to the import
// path of the package it names ("" when the base is not a package
// identifier) — how the checks tell time.Now from someStruct.Now.
func importedPackage(p *pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.pkg.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isErrorType reports whether t (or *t) implements the built-in error
// interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// recvNamed returns the named type of a method call's receiver, looking
// through pointers ("" when the callee is not a method or the receiver
// is unnamed).
func recvNamed(p *pass, sel *ast.SelectorExpr) string {
	s, ok := p.pkg.TypesInfo.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
