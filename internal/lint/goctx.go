package lint

import (
	"go/ast"
	"go/types"
)

// goctxCheck enforces goroutine hygiene in the long-running packages
// (servers, transports, schedulers): a bare `go func` with no
// cancellation signal is how remosd leaks goroutines under churn. A
// launch passes when the spawned body receives from a channel (select
// included), ranges over one, or observes a context.Context; calls to
// named functions pass when a ctx or channel travels in the arguments.
// Goroutines whose lifetime is bounded by an owned resource (an accept
// loop ending when its listener closes) carry an allow directive
// stating that invariant. Fan-out through internal/conc is the
// sanctioned alternative and is not a go statement, so it never trips
// the check.
type goctxCheck struct{}

func (goctxCheck) name() string { return "goctx" }

func (goctxCheck) run(p *pass) {
	if !p.policy.GoCtx[p.pkg.Name] {
		return
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !bodyHasSignal(p, lit.Body) {
					p.report(g.Pos(), "goctx",
						"goroutine has no cancellation signal (ctx/done channel); make it cancelable, launch via internal/conc, or state its lifetime bound in an allow directive")
				}
				return true
			}
			// go someFunc(...): the signal must travel in the call.
			for _, a := range g.Call.Args {
				t := p.pkg.TypesInfo.TypeOf(a)
				if t == nil {
					continue
				}
				if isContextType(t) || isChan(t) {
					return true
				}
			}
			p.report(g.Pos(), "goctx",
				"goroutine call carries no ctx or channel argument; thread a cancellation signal or state its lifetime bound in an allow directive")
			return true
		})
	}
}

// bodyHasSignal reports whether a function body contains a channel
// receive, a range over a channel, or a reference to a context.Context
// value.
func bodyHasSignal(p *pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(p.pkg.TypesInfo.TypeOf(n.X)) {
				found = true
			}
		case *ast.Ident:
			if obj := p.pkg.TypesInfo.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
