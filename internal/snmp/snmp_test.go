package snmp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestOIDParseAndString(t *testing.T) {
	for _, s := range []string{"1.3.6.1.2.1.2.2.1.10.3", "0.0", "2.100.3"} {
		o, err := ParseOID(s)
		if err != nil {
			t.Fatalf("ParseOID(%q): %v", s, err)
		}
		if o.String() != s {
			t.Fatalf("round trip %q -> %q", s, o.String())
		}
	}
	if _, err := ParseOID(""); err == nil {
		t.Fatal("empty OID parsed")
	}
	if _, err := ParseOID("1.x.3"); err == nil {
		t.Fatal("garbage OID parsed")
	}
	if o := MustParseOID(".1.3.6"); o.String() != "1.3.6" {
		t.Fatalf("leading dot mishandled: %v", o)
	}
}

func TestOIDCmp(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.3.6", "1.3.6", 0},
		{"1.3.5", "1.3.6", -1},
		{"1.3.6", "1.3.6.1", -1},
		{"1.3.6.1", "1.3.6", 1},
		{"1.4", "1.3.6.1", 1},
	}
	for _, c := range cases {
		got := MustParseOID(c.a).Cmp(MustParseOID(c.b))
		if got != c.want {
			t.Errorf("Cmp(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOIDHasPrefixAndAppend(t *testing.T) {
	base := MustParseOID("1.3.6.1")
	child := base.Append(2, 1)
	if child.String() != "1.3.6.1.2.1" {
		t.Fatalf("Append: %v", child)
	}
	if !child.HasPrefix(base) {
		t.Fatal("child lacks base prefix")
	}
	if base.HasPrefix(child) {
		t.Fatal("base has child prefix")
	}
	// Append must not alias the receiver.
	a := base.Append(9)
	b := base.Append(8)
	if a[len(a)-1] != 9 || b[len(b)-1] != 8 {
		t.Fatal("Append aliases the receiver's backing array")
	}
}

func roundTripMessage(t *testing.T, m *Message) *Message {
	t.Helper()
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}

func TestMessageRoundTripAllKinds(t *testing.T) {
	m := &Message{
		Community: "public",
		PDU: PDU{
			Type:      GetResponse,
			RequestID: 12345,
			VarBinds: []VarBind{
				{Name: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: Str("FreeBSD router")},
				{Name: MustParseOID("1.3.6.1.2.1.1.3.0"), Value: Ticks(4242)},
				{Name: MustParseOID("1.3.6.1.2.1.2.2.1.10.3"), Value: Counter(3_999_999_999)},
				{Name: MustParseOID("1.3.6.1.2.1.2.2.1.5.3"), Value: Gauge(100_000_000)},
				{Name: MustParseOID("1.3.6.1.2.1.4.21.1.7.10"), Value: IPv4([4]byte{10, 0, 1, 1})},
				{Name: MustParseOID("1.3.6.1.2.1.1.2.0"), Value: OIDValue(MustParseOID("1.3.6.1.4.1.9"))},
				{Name: MustParseOID("1.3.6.1.9.9.9"), Value: Int64(-300)},
				{Name: MustParseOID("1.3.6.1.9.9.10"), Value: Null},
				{Name: MustParseOID("1.3.6.1.9.9.11"), Value: Value{Kind: KindCounter64, Int: 1 << 40}},
			},
		},
	}
	got := roundTripMessage(t, m)
	if got.Community != "public" || got.PDU.RequestID != 12345 || got.PDU.Type != GetResponse {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.PDU.VarBinds) != len(m.PDU.VarBinds) {
		t.Fatalf("varbind count %d, want %d", len(got.PDU.VarBinds), len(m.PDU.VarBinds))
	}
	for i, vb := range got.PDU.VarBinds {
		want := m.PDU.VarBinds[i]
		if vb.Name.Cmp(want.Name) != 0 {
			t.Errorf("vb %d name %v, want %v", i, vb.Name, want.Name)
		}
		if vb.Value.Kind != want.Value.Kind || vb.Value.Int != want.Value.Int ||
			!bytes.Equal(vb.Value.Bytes, want.Value.Bytes) || vb.Value.Oid.Cmp(want.Value.Oid) != 0 {
			t.Errorf("vb %d value %v, want %v", i, vb.Value, want.Value)
		}
	}
}

func TestMessageRoundTripExceptions(t *testing.T) {
	m := &Message{Community: "c", PDU: PDU{Type: GetResponse, RequestID: 1, VarBinds: []VarBind{
		{Name: MustParseOID("1.3.1"), Value: NoSuchObject},
		{Name: MustParseOID("1.3.2"), Value: Value{Kind: KindNoSuchInstance}},
		{Name: MustParseOID("1.3.3"), Value: EndOfMibView},
	}}}
	got := roundTripMessage(t, m)
	kinds := []Kind{KindNoSuchObject, KindNoSuchInstance, KindEndOfMibView}
	for i, k := range kinds {
		if got.PDU.VarBinds[i].Value.Kind != k {
			t.Errorf("vb %d kind %v, want %v", i, got.PDU.VarBinds[i].Value.Kind, k)
		}
	}
}

func TestGetBulkHeaderFieldsSurvive(t *testing.T) {
	m := &Message{Community: "c", PDU: PDU{
		Type: GetBulkRequest, RequestID: 7, ErrorStatus: 2, ErrorIndex: 20,
		VarBinds: []VarBind{{Name: MustParseOID("1.3"), Value: Null}},
	}}
	got := roundTripMessage(t, m)
	if got.PDU.ErrorStatus != 2 || got.PDU.ErrorIndex != 20 {
		t.Fatalf("non-repeaters/max-repetitions lost: %+v", got.PDU)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x02, 0x01, 0x01},
		{0x30, 0x82, 0xff, 0xff, 0x00},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: garbage unmarshalled", i)
		}
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	// Random mutations of a valid message must never panic.
	m := &Message{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 9,
		VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: Null}}}}
	valid, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		Unmarshal(b) // must not panic; errors are fine
	}
}

func TestPropertyOIDEncodingRoundTrip(t *testing.T) {
	f := func(raw []uint16, big uint32) bool {
		o := OID{1, 3}
		for _, v := range raw {
			o = append(o, uint32(v))
		}
		o = append(o, big) // exercise multi-byte base-128
		if err := checkOID(o); err != nil {
			return false
		}
		body := appendOIDBody(nil, o)
		back, err := parseOIDBody(body)
		if err != nil {
			return false
		}
		return back.Cmp(o) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntegerRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		body := appendIntBody(nil, v)
		got, err := parseIntBody(body)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnsignedRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		body := appendUintBody(nil, v)
		got, err := parseUintBody(body)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func testView(t *testing.T) MIBView {
	t.Helper()
	v, err := NewStaticView(map[string]Value{
		"1.3.6.1.2.1.1.1.0":       Str("test device"),
		"1.3.6.1.2.1.1.5.0":       Str("dev1"),
		"1.3.6.1.2.1.2.2.1.10.1":  Counter(100),
		"1.3.6.1.2.1.2.2.1.10.2":  Counter(200),
		"1.3.6.1.2.1.2.2.1.10.10": Counter(1000),
		"1.3.6.1.2.1.2.2.1.16.1":  Counter(111),
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStaticViewOrdering(t *testing.T) {
	v := testView(t)
	// Numeric, not string, ordering: .10.2 < .10.10.
	next, _, ok := v.Next(MustParseOID("1.3.6.1.2.1.2.2.1.10.2"))
	if !ok || next.String() != "1.3.6.1.2.1.2.2.1.10.10" {
		t.Fatalf("Next(.10.2) = %v, want .10.10", next)
	}
}

func TestAgentGet(t *testing.T) {
	a := &Agent{Community: "public", View: testView(t)}
	resp := a.Handle(&Message{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 5,
		VarBinds: []VarBind{
			{Name: MustParseOID("1.3.6.1.2.1.1.5.0"), Value: Null},
			{Name: MustParseOID("1.3.6.1.99"), Value: Null},
		}}})
	if resp == nil || resp.PDU.Type != GetResponse || resp.PDU.RequestID != 5 {
		t.Fatalf("bad response %+v", resp)
	}
	if string(resp.PDU.VarBinds[0].Value.Bytes) != "dev1" {
		t.Fatalf("sysName = %v", resp.PDU.VarBinds[0].Value)
	}
	if resp.PDU.VarBinds[1].Value.Kind != KindNoSuchObject {
		t.Fatalf("missing OID returned %v, want noSuchObject", resp.PDU.VarBinds[1].Value)
	}
}

func TestAgentCommunityMismatchDrops(t *testing.T) {
	a := &Agent{Community: "secret", View: testView(t)}
	resp := a.Handle(&Message{Community: "public", PDU: PDU{Type: GetRequest}})
	if resp != nil {
		t.Fatal("agent answered with wrong community")
	}
}

func TestAgentGetNextAndEnd(t *testing.T) {
	a := &Agent{Community: "public", View: testView(t)}
	resp := a.Handle(&Message{Community: "public", PDU: PDU{Type: GetNextRequest,
		VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: Null}}}})
	if got := resp.PDU.VarBinds[0].Name.String(); got != "1.3.6.1.2.1.1.5.0" {
		t.Fatalf("GetNext = %s", got)
	}
	resp = a.Handle(&Message{Community: "public", PDU: PDU{Type: GetNextRequest,
		VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.2.2.1.16.1"), Value: Null}}}})
	if resp.PDU.VarBinds[0].Value.Kind != KindEndOfMibView {
		t.Fatalf("walk past end = %v, want endOfMibView", resp.PDU.VarBinds[0].Value)
	}
}

func TestAgentGetBulk(t *testing.T) {
	a := &Agent{Community: "public", View: testView(t)}
	resp := a.Handle(&Message{Community: "public", PDU: PDU{Type: GetBulkRequest,
		ErrorStatus: 0, ErrorIndex: 4,
		VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.2.2.1.10"), Value: Null}}}})
	if len(resp.PDU.VarBinds) != 4 {
		t.Fatalf("GetBulk returned %d varbinds, want 4", len(resp.PDU.VarBinds))
	}
	if resp.PDU.VarBinds[0].Name.String() != "1.3.6.1.2.1.2.2.1.10.1" {
		t.Fatalf("first = %v", resp.PDU.VarBinds[0].Name)
	}
}

func newInProcClient(t *testing.T, community string) (*Client, *Registry) {
	t.Helper()
	reg := NewRegistry()
	tr := &InProc{Registry: reg, Latency: func(string) time.Duration { return 3 * time.Millisecond }}
	return NewClient(tr, community), reg
}

func TestClientGetViaInProc(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	reg.Register("10.0.0.1", &Agent{Community: "public", View: testView(t)})
	v, err := c.GetOne("10.0.0.1", MustParseOID("1.3.6.1.2.1.1.5.0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Bytes) != "dev1" {
		t.Fatalf("GetOne = %v", v)
	}
}

func TestClientMeterCountsRequests(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	c.Meter = &Meter{}
	for i := 0; i < 5; i++ {
		if _, err := c.Get("a", MustParseOID("1.3.6.1.2.1.1.1.0")); err != nil {
			t.Fatal(err)
		}
	}
	n, total := c.Meter.Snapshot()
	if n != 5 {
		t.Fatalf("meter requests = %d, want 5", n)
	}
	if total != 15*time.Millisecond {
		t.Fatalf("meter total = %v, want 15ms", total)
	}
}

func TestClientTimeoutOnMissingAgent(t *testing.T) {
	c, _ := newInProcClient(t, "public")
	c.Retries = 2
	c.Meter = &Meter{}
	if _, err := c.Get("nowhere", MustParseOID("1.3")); err == nil {
		t.Fatal("expected timeout")
	}
	if n, _ := c.Meter.Snapshot(); n != 3 {
		t.Fatalf("retries not metered: %d sends, want 3", n)
	}
}

func TestClientWrongCommunityTimesOut(t *testing.T) {
	c, reg := newInProcClient(t, "guess")
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	if _, err := c.Get("a", MustParseOID("1.3")); err == nil {
		t.Fatal("wrong community should look like a timeout")
	}
}

func TestClientWalk(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	var got []string
	err := c.Walk("a", MustParseOID("1.3.6.1.2.1.2.2.1.10"), func(o OID, v Value) bool {
		got = append(got, o.String())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1.3.6.1.2.1.2.2.1.10.1", "1.3.6.1.2.1.2.2.1.10.2", "1.3.6.1.2.1.2.2.1.10.10"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Walk = %v, want %v", got, want)
	}
}

func TestClientWalkEarlyStop(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	n := 0
	c.Walk("a", MustParseOID("1.3.6.1.2.1.2.2.1.10"), func(OID, Value) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early-stopped walk visited %d", n)
	}
}

func TestClientBulkWalkMatchesWalk(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	collect := func(walker func() error, sink *[]string) {
		if err := walker(); err != nil {
			t.Fatal(err)
		}
	}
	var a1, a2 []string
	collect(func() error {
		return c.Walk("a", MustParseOID("1.3.6.1.2.1"), func(o OID, v Value) bool {
			a1 = append(a1, o.String()+"="+v.String())
			return true
		})
	}, &a1)
	collect(func() error {
		return c.BulkWalk("a", MustParseOID("1.3.6.1.2.1"), 2, func(o OID, v Value) bool {
			a2 = append(a2, o.String()+"="+v.String())
			return true
		})
	}, &a2)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("BulkWalk %v != Walk %v", a2, a1)
	}
}

func TestBulkWalkFewerRoundTrips(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	c.Meter = &Meter{}
	c.Walk("a", MustParseOID("1.3.6.1.2.1"), func(OID, Value) bool { return true })
	walkN, _ := c.Meter.Snapshot()
	c.Meter.Reset()
	c.BulkWalk("a", MustParseOID("1.3.6.1.2.1"), 8, func(OID, Value) bool { return true })
	bulkN, _ := c.Meter.Snapshot()
	if bulkN >= walkN {
		t.Fatalf("BulkWalk used %d round trips, Walk used %d", bulkN, walkN)
	}
}

func TestUDPTransportEndToEnd(t *testing.T) {
	srv := &Server{Agent: &Agent{Community: "public", View: testView(t)}}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(&UDP{Timeout: time.Second}, "public")
	v, err := c.GetOne(addr, MustParseOID("1.3.6.1.2.1.1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Bytes) != "test device" {
		t.Fatalf("over UDP: %v", v)
	}
	var rows int
	if err := c.BulkWalk(addr, MustParseOID("1.3.6.1.2.1.2.2.1"), 16, func(OID, Value) bool {
		rows++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 4 {
		t.Fatalf("UDP BulkWalk saw %d rows, want 4", rows)
	}
}

func TestUDPTimeout(t *testing.T) {
	srv := &Server{Agent: &Agent{Community: "other", View: testView(t)}}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(&UDP{Timeout: 50 * time.Millisecond}, "public")
	c.Retries = 0
	if _, err := c.Get(addr, MustParseOID("1.3")); err == nil {
		t.Fatal("expected timeout against wrong-community agent")
	}
}

func BenchmarkMarshalGetRequest(b *testing.B) {
	m := &Message{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 1,
		VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.2.2.1.10.3"), Value: Null}}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalResponse(b *testing.B) {
	m := &Message{Community: "public", PDU: PDU{Type: GetResponse, RequestID: 1,
		VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.2.2.1.10.3"), Value: Counter(1 << 31)}}}}
	buf, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
