package snmp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// corpusMessages are the seed messages for the decoder fuzzer: one of each
// PDU type, every value kind, varbind exceptions, multi-byte lengths and
// base-128 sub-identifiers, and Counter64 values past the 32-bit range.
func corpusMessages() []*Message {
	long := make([]byte, 300) // forces a multi-byte BER length
	for i := range long {
		long[i] = byte(i)
	}
	return []*Message{
		{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 1,
			VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: Null}}}},
		{Community: "public", PDU: PDU{Type: GetResponse, RequestID: 2,
			VarBinds: []VarBind{
				{Name: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: Str("remos emulated router r1")},
				{Name: MustParseOID("1.3.6.1.2.1.2.2.1.10.3"), Value: Counter(4294967295)},
				{Name: MustParseOID("1.3.6.1.2.1.31.1.1.1.6.3"), Value: Counter64Val(1 << 40)},
				{Name: MustParseOID("1.3.6.1.2.1.2.2.1.5.3"), Value: Gauge(1000000000)},
				{Name: MustParseOID("1.3.6.1.2.1.1.3.0"), Value: Ticks(123456)},
				{Name: MustParseOID("1.3.6.1.2.1.4.21.1.7.10.0.0.1"), Value: IPv4([4]byte{10, 0, 0, 1})},
				{Name: MustParseOID("1.3.6.1.4.1.99999.1"), Value: OIDValue(MustParseOID("1.3.6.1.4.1.99999.2.300000"))},
				{Name: MustParseOID("1.3.6.1.2.1.1.9"), Value: Int64(-129)},
			}}},
		{Community: "private", PDU: PDU{Type: GetNextRequest, RequestID: -7,
			VarBinds: []VarBind{{Name: MustParseOID("2.100.3"), Value: Null}}}},
		{Community: "public", PDU: PDU{Type: GetBulkRequest, RequestID: 3, ErrorStatus: 1, ErrorIndex: 32,
			VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.2.2.1"), Value: Null}}}},
		{Community: "public", PDU: PDU{Type: GetResponse, RequestID: 4,
			VarBinds: []VarBind{
				{Name: MustParseOID("1.3.6.1.99.1"), Value: NoSuchObject},
				{Name: MustParseOID("1.3.6.1.99.2"), Value: Value{Kind: KindNoSuchInstance}},
				{Name: MustParseOID("1.3.6.1.99.3"), Value: EndOfMibView},
			}}},
		{Community: "public", PDU: PDU{Type: GetResponse, RequestID: 5,
			VarBinds: []VarBind{{Name: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: Octets(long)}}}},
		{Community: "", PDU: PDU{Type: SetRequest, RequestID: 6, ErrorStatus: 5, ErrorIndex: 1,
			VarBinds: []VarBind{{Name: MustParseOID("0.0"), Value: Int64(0)}}}},
	}
}

// FuzzDecodeMessage drives the BER decoder with arbitrary bytes. The
// decoder must never panic or read out of bounds, and anything it accepts
// must re-encode and re-decode to the identical message (the decoded form
// is canonical), with peekRequestID agreeing with the full decode.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range corpusMessages() {
		b, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x84, 0xff, 0xff, 0xff, 0xff}) // absurd length claim
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		ptype, reqID, ok := peekRequestID(b)
		if !ok || ptype != m.PDU.Type || reqID != m.PDU.RequestID {
			t.Fatalf("peekRequestID = (%v, %d, %v), decode = (%v, %d)",
				ptype, reqID, ok, m.PDU.Type, m.PDU.RequestID)
		}
		enc, err := m.Marshal()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode(encode(m)) != m:\n m: %+v\nm2: %+v", m, m2)
		}
	})
}

// TestMessageRoundTripProperty checks decode(encode(m)) == m over randomly
// generated canonical messages covering every value kind.
func TestMessageRoundTripProperty(t *testing.T) {
	types := []PDUType{GetRequest, GetNextRequest, GetResponse, SetRequest, GetBulkRequest}
	genOID := func(rng *rand.Rand) OID {
		o := OID{1, 3}
		for n := rng.Intn(10); n > 0; n-- {
			o = append(o, uint32(rng.Int63n(1<<32)))
		}
		return o
	}
	genValue := func(rng *rand.Rand) Value {
		switch rng.Intn(10) {
		case 0:
			return Null
		case 1:
			return Int64(rng.Int63() - rng.Int63())
		case 2:
			b := make([]byte, rng.Intn(40))
			rng.Read(b)
			return Octets(b)
		case 3:
			return OIDValue(genOID(rng))
		case 4:
			return IPv4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		case 5:
			return Counter(uint64(rng.Int63()))
		case 6:
			return Gauge(uint32(rng.Int63()))
		case 7:
			return Ticks(uint32(rng.Int63()))
		case 8:
			return Counter64Val(uint64(rng.Int63())<<1 | uint64(rng.Intn(2)))
		default:
			return []Value{NoSuchObject, {Kind: KindNoSuchInstance}, EndOfMibView}[rng.Intn(3)]
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{
			Community: string(rune('a' + rng.Intn(26))),
			PDU: PDU{
				Type:        types[rng.Intn(len(types))],
				RequestID:   int32(rng.Int63()),
				ErrorStatus: rng.Intn(20),
				ErrorIndex:  rng.Intn(100),
				VarBinds:    make([]VarBind, 0, 4),
			},
		}
		for n := rng.Intn(8); n > 0; n-- {
			m.PDU.VarBinds = append(m.PDU.VarBinds, VarBind{Name: genOID(rng), Value: genValue(rng)})
		}
		enc, err := m.Marshal()
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		back, err := Unmarshal(enc)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
