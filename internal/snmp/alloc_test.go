package snmp

import (
	"testing"
)

// benchResponse builds a realistic polling response: 12 counter varbinds
// (6 interfaces x in/out), the shape a batched poller exchanges per device.
func benchResponse() *Message {
	m := &Message{Community: "public", PDU: PDU{Type: GetResponse, RequestID: 12345}}
	for i := 1; i <= 6; i++ {
		m.PDU.VarBinds = append(m.PDU.VarBinds,
			VarBind{Name: MustParseOID("1.3.6.1.2.1.31.1.1.1.6").Append(uint32(i)), Value: Counter64Val(1<<40 + uint64(i)*1e9)},
			VarBind{Name: MustParseOID("1.3.6.1.2.1.31.1.1.1.10").Append(uint32(i)), Value: Counter64Val(2<<40 + uint64(i)*1e9)},
		)
	}
	return m
}

func TestMarshalAllocationBudget(t *testing.T) {
	m := benchResponse()
	// Marshal: exactly one allocation, the output buffer.
	if n := testing.AllocsPerRun(100, func() {
		if _, err := m.Marshal(); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Fatalf("Marshal allocates %.0f times per call, want <= 1", n)
	}
	// AppendMarshal into a buffer with capacity: zero allocations.
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := m.AppendMarshal(buf[:0]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendMarshal into sized buffer allocates %.0f times per call, want 0", n)
	}
}

// BenchmarkBERCodec measures the codec on a 12-varbind counter response.
// Run with -benchmem; the encode path should report 0 B/op when the caller
// reuses its buffer, and decode allocation is bounded by the pre-counted
// varbind and OID slices.
func BenchmarkBERCodec(b *testing.B) {
	m := benchResponse()
	wire, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Encode", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.AppendMarshal(buf[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Decode", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Unmarshal(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RoundTrip", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc, err := m.AppendMarshal(buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Unmarshal(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
