// Package snmp implements the subset of SNMPv2c that Remos collectors
// depend on: BER encoding, Get/GetNext/GetBulk/Response PDUs, a managed
// agent serving a MIB view, and a client with retries. Two transports are
// provided: real UDP datagrams (used by the live daemons and exercised in
// tests over loopback) and an in-process transport with a modeled
// round-trip latency for large simulated networks.
package snmp

import (
	"fmt"
	"strconv"
	"strings"
)

// OID is an object identifier: a sequence of sub-identifiers.
type OID []uint32

// ParseOID parses dotted decimal notation ("1.3.6.1.2.1.2.2.1.10.3").
// A single leading dot is permitted.
func ParseOID(s string) (OID, error) {
	s = strings.TrimPrefix(s, ".")
	if s == "" {
		return nil, fmt.Errorf("snmp: empty OID")
	}
	parts := strings.Split(s, ".")
	o := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID component %q: %v", p, err)
		}
		o[i] = uint32(v)
	}
	return o, nil
}

// MustParseOID is ParseOID that panics on error; for constants.
func MustParseOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// String returns dotted decimal notation.
func (o OID) String() string {
	if len(o) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range o {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return b.String()
}

// Cmp compares two OIDs lexicographically: -1, 0, or 1.
func (o OID) Cmp(b OID) int {
	n := len(o)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if o[i] != b[i] {
			if o[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(o) < len(b):
		return -1
	case len(o) > len(b):
		return 1
	}
	return 0
}

// HasPrefix reports whether o begins with prefix p.
func (o OID) HasPrefix(p OID) bool {
	if len(o) < len(p) {
		return false
	}
	for i := range p {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Append returns a new OID of o followed by the given sub-identifiers.
// The receiver is not modified.
func (o OID) Append(sub ...uint32) OID {
	out := make(OID, 0, len(o)+len(sub))
	out = append(out, o...)
	out = append(out, sub...)
	return out
}

// Clone returns a copy of the OID.
func (o OID) Clone() OID {
	out := make(OID, len(o))
	copy(out, o)
	return out
}
