package snmp

// MIBView is the read interface an agent serves. Implementations are
// provided by package mib, backed by emulated devices.
type MIBView interface {
	// Get returns the value bound to exactly the given OID.
	Get(oid OID) (Value, bool)

	// Next returns the first bound OID strictly after the given one, in
	// lexicographic order, with its value. ok is false at the end of
	// the MIB.
	Next(oid OID) (next OID, v Value, ok bool)
}

// Agent serves one device's MIB view under a community string.
type Agent struct {
	Community string
	View      MIBView

	// MaxRepetitions caps GetBulk repetition counts to bound response
	// size; 0 means the default of 64.
	MaxRepetitions int
}

// Handle processes one request message and produces the response message,
// or nil if the request must be silently dropped (community mismatch, as
// real agents do).
func (a *Agent) Handle(req *Message) *Message {
	if req.Community != a.Community {
		return nil // drop, like an agent with a wrong community
	}
	resp := &Message{Community: req.Community}
	resp.PDU.Type = GetResponse
	resp.PDU.RequestID = req.PDU.RequestID

	switch req.PDU.Type {
	case GetRequest, GetNextRequest:
		resp.PDU.VarBinds = make([]VarBind, 0, len(req.PDU.VarBinds))
	case GetBulkRequest:
		nonRep, maxRep := req.PDU.ErrorStatus, req.PDU.ErrorIndex
		if n := nonRep + (len(req.PDU.VarBinds)-nonRep)*maxRep; n > 0 && n <= 4096 {
			resp.PDU.VarBinds = make([]VarBind, 0, n)
		}
	}

	switch req.PDU.Type {
	case GetRequest:
		for _, vb := range req.PDU.VarBinds {
			v, ok := a.View.Get(vb.Name)
			if !ok {
				v = NoSuchObject
			}
			resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: vb.Name.Clone(), Value: v})
		}
	case GetNextRequest:
		for _, vb := range req.PDU.VarBinds {
			next, v, ok := a.View.Next(vb.Name)
			if !ok {
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: vb.Name.Clone(), Value: EndOfMibView})
				continue
			}
			resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: next, Value: v})
		}
	case GetBulkRequest:
		nonRep := req.PDU.ErrorStatus
		maxRep := req.PDU.ErrorIndex
		limit := a.MaxRepetitions
		if limit <= 0 {
			limit = 64
		}
		if maxRep > limit {
			maxRep = limit
		}
		if nonRep < 0 {
			nonRep = 0
		}
		if nonRep > len(req.PDU.VarBinds) {
			nonRep = len(req.PDU.VarBinds)
		}
		for _, vb := range req.PDU.VarBinds[:nonRep] {
			next, v, ok := a.View.Next(vb.Name)
			if !ok {
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: vb.Name.Clone(), Value: EndOfMibView})
				continue
			}
			resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: next, Value: v})
		}
		for _, vb := range req.PDU.VarBinds[nonRep:] {
			cur := vb.Name
			for i := 0; i < maxRep; i++ {
				next, v, ok := a.View.Next(cur)
				if !ok {
					resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: cur.Clone(), Value: EndOfMibView})
					break
				}
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{Name: next, Value: v})
				cur = next
			}
		}
	default:
		resp.PDU.ErrorStatus = ErrStatusGenErr
		resp.PDU.VarBinds = req.PDU.VarBinds
	}
	return resp
}

// HandleBytes decodes a request datagram, handles it, and encodes the
// response; nil means drop.
func (a *Agent) HandleBytes(req []byte) []byte {
	msg, err := Unmarshal(req)
	if err != nil {
		return nil
	}
	resp := a.Handle(msg)
	if resp == nil {
		return nil
	}
	out, err := resp.Marshal()
	if err != nil {
		return nil
	}
	return out
}
