package snmp

import (
	"errors"
	"fmt"
)

// BER tag bytes for the types the Remos collectors use.
const (
	tagInteger      = 0x02
	tagOctetString  = 0x04
	tagNull         = 0x05
	tagOID          = 0x06
	tagSequence     = 0x30
	tagIPAddress    = 0x40
	tagCounter32    = 0x41
	tagGauge32      = 0x42
	tagTimeTicks    = 0x43
	tagCounter64    = 0x46
	tagNoSuchObject = 0x80 // varbind exception (v2c)
	tagNoSuchInst   = 0x81
	tagEndOfMibView = 0x82
)

// Kind enumerates SNMP value types.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInteger
	KindOctetString
	KindOID
	KindIPAddress
	KindCounter32
	KindGauge32
	KindTimeTicks
	KindCounter64
	KindNoSuchObject
	KindNoSuchInstance
	KindEndOfMibView
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindInteger:
		return "Integer"
	case KindOctetString:
		return "OctetString"
	case KindOID:
		return "ObjectIdentifier"
	case KindIPAddress:
		return "IpAddress"
	case KindCounter32:
		return "Counter32"
	case KindGauge32:
		return "Gauge32"
	case KindTimeTicks:
		return "TimeTicks"
	case KindCounter64:
		return "Counter64"
	case KindNoSuchObject:
		return "noSuchObject"
	case KindNoSuchInstance:
		return "noSuchInstance"
	case KindEndOfMibView:
		return "endOfMibView"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is one SNMP variable value. Exactly one of Int, Bytes, Oid carries
// data depending on Kind; exception kinds carry none.
type Value struct {
	Kind  Kind
	Int   int64  // Integer; unsigned value for Counter/Gauge/TimeTicks/Counter64
	Bytes []byte // OctetString and IPAddress (4 bytes)
	Oid   OID    // ObjectIdentifier
}

// Convenience constructors.

// Int64 returns an Integer value.
func Int64(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// Str returns an OctetString value.
func Str(s string) Value { return Value{Kind: KindOctetString, Bytes: []byte(s)} }

// Octets returns an OctetString value from raw bytes.
func Octets(b []byte) Value { return Value{Kind: KindOctetString, Bytes: b} }

// Counter returns a Counter32 value (wrapped to 32 bits).
func Counter(v uint64) Value { return Value{Kind: KindCounter32, Int: int64(uint32(v))} }

// Gauge returns a Gauge32 value.
func Gauge(v uint32) Value { return Value{Kind: KindGauge32, Int: int64(v)} }

// Ticks returns a TimeTicks value (hundredths of seconds).
func Ticks(v uint32) Value { return Value{Kind: KindTimeTicks, Int: int64(v)} }

// IPv4 returns an IpAddress value.
func IPv4(b [4]byte) Value { return Value{Kind: KindIPAddress, Bytes: b[:]} }

// OIDValue returns an ObjectIdentifier value.
func OIDValue(o OID) Value { return Value{Kind: KindOID, Oid: o} }

// Null is the null value.
var Null = Value{Kind: KindNull}

// NoSuchObject is the v2c exception returned for missing objects.
var NoSuchObject = Value{Kind: KindNoSuchObject}

// EndOfMibView is the v2c exception ending GetNext/GetBulk walks.
var EndOfMibView = Value{Kind: KindEndOfMibView}

// String renders the value for debugging and the ASCII protocol.
func (v Value) String() string {
	switch v.Kind {
	case KindInteger, KindCounter32, KindGauge32, KindTimeTicks, KindCounter64:
		return fmt.Sprintf("%s(%d)", v.Kind, v.Int)
	case KindOctetString:
		return fmt.Sprintf("OctetString(%q)", v.Bytes)
	case KindOID:
		return fmt.Sprintf("OID(%s)", v.Oid)
	case KindIPAddress:
		if len(v.Bytes) == 4 {
			return fmt.Sprintf("IpAddress(%d.%d.%d.%d)", v.Bytes[0], v.Bytes[1], v.Bytes[2], v.Bytes[3])
		}
		return "IpAddress(?)"
	default:
		return v.Kind.String()
	}
}

// ErrTruncated reports a BER message shorter than its length fields claim.
var ErrTruncated = errors.New("snmp: truncated BER data")

// appendTLV appends tag, definite length, and content.
func appendTLV(dst []byte, tag byte, content []byte) []byte {
	dst = append(dst, tag)
	dst = appendLength(dst, len(content))
	return append(dst, content...)
}

func appendLength(dst []byte, n int) []byte {
	if n < 0x80 {
		return append(dst, byte(n))
	}
	// Long form.
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	dst = append(dst, 0x80|byte(len(tmp)-i))
	return append(dst, tmp[i:]...)
}

// appendInt encodes a signed integer body (two's complement, minimal).
func appendIntBody(dst []byte, v int64) []byte {
	// Compute minimal length.
	n := 1
	for x := v; (x > 0x7f || x < -0x80) && n < 9; n++ {
		x >>= 8
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

// appendUintBody encodes an unsigned integer body with a leading zero when
// the high bit would otherwise be set (SNMP counters are unsigned).
func appendUintBody(dst []byte, v uint64) []byte {
	n := 1
	for x := v; x > 0xff && n < 9; n++ {
		x >>= 8
	}
	if v>>(8*uint(n-1))&0x80 != 0 {
		dst = append(dst, 0)
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

func appendOIDBody(dst []byte, o OID) ([]byte, error) {
	if len(o) < 2 {
		return nil, fmt.Errorf("snmp: OID %v too short to encode", o)
	}
	if o[0] > 2 || o[1] >= 40 {
		return nil, fmt.Errorf("snmp: invalid OID head %d.%d", o[0], o[1])
	}
	dst = append(dst, byte(o[0]*40+o[1]))
	for _, v := range o[2:] {
		dst = appendBase128(dst, v)
	}
	return dst, nil
}

func appendBase128(dst []byte, v uint32) []byte {
	var tmp [5]byte
	i := len(tmp) - 1
	tmp[i] = byte(v & 0x7f)
	v >>= 7
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	return append(dst, tmp[i:]...)
}

// marshalValue encodes one Value as a TLV.
func marshalValue(dst []byte, v Value) ([]byte, error) {
	switch v.Kind {
	case KindNull:
		return append(dst, tagNull, 0), nil
	case KindInteger:
		return appendTLV(dst, tagInteger, appendIntBody(nil, v.Int)), nil
	case KindOctetString:
		return appendTLV(dst, tagOctetString, v.Bytes), nil
	case KindOID:
		body, err := appendOIDBody(nil, v.Oid)
		if err != nil {
			return nil, err
		}
		return appendTLV(dst, tagOID, body), nil
	case KindIPAddress:
		if len(v.Bytes) != 4 {
			return nil, fmt.Errorf("snmp: IpAddress must be 4 bytes, got %d", len(v.Bytes))
		}
		return appendTLV(dst, tagIPAddress, v.Bytes), nil
	case KindCounter32:
		return appendTLV(dst, tagCounter32, appendUintBody(nil, uint64(uint32(v.Int)))), nil
	case KindGauge32:
		return appendTLV(dst, tagGauge32, appendUintBody(nil, uint64(uint32(v.Int)))), nil
	case KindTimeTicks:
		return appendTLV(dst, tagTimeTicks, appendUintBody(nil, uint64(uint32(v.Int)))), nil
	case KindCounter64:
		return appendTLV(dst, tagCounter64, appendUintBody(nil, uint64(v.Int))), nil
	case KindNoSuchObject:
		return append(dst, tagNoSuchObject, 0), nil
	case KindNoSuchInstance:
		return append(dst, tagNoSuchInst, 0), nil
	case KindEndOfMibView:
		return append(dst, tagEndOfMibView, 0), nil
	}
	return nil, fmt.Errorf("snmp: cannot marshal kind %v", v.Kind)
}

// reader is a cursor over BER bytes.
type reader struct {
	b []byte
	i int
}

func (r *reader) remaining() int { return len(r.b) - r.i }

func (r *reader) byteAt() (byte, error) {
	if r.i >= len(r.b) {
		return 0, ErrTruncated
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}

func (r *reader) readTL() (tag byte, length int, err error) {
	tag, err = r.byteAt()
	if err != nil {
		return 0, 0, err
	}
	first, err := r.byteAt()
	if err != nil {
		return 0, 0, err
	}
	if first < 0x80 {
		return tag, int(first), nil
	}
	n := int(first & 0x7f)
	if n == 0 || n > 4 {
		return 0, 0, fmt.Errorf("snmp: unsupported BER length of length %d", n)
	}
	length = 0
	for j := 0; j < n; j++ {
		c, err := r.byteAt()
		if err != nil {
			return 0, 0, err
		}
		length = length<<8 | int(c)
	}
	return tag, length, nil
}

func (r *reader) readBytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrTruncated
	}
	out := r.b[r.i : r.i+n]
	r.i += n
	return out, nil
}

func parseIntBody(b []byte) (int64, error) {
	if len(b) == 0 || len(b) > 8 {
		return 0, fmt.Errorf("snmp: bad integer length %d", len(b))
	}
	v := int64(int8(b[0])) // sign extend
	for _, c := range b[1:] {
		v = v<<8 | int64(c)
	}
	return v, nil
}

func parseUintBody(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 9 || (len(b) == 9 && b[0] != 0) {
		return 0, fmt.Errorf("snmp: bad unsigned length %d", len(b))
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}

func parseOIDBody(b []byte) (OID, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("snmp: empty OID body")
	}
	o := OID{uint32(b[0]) / 40, uint32(b[0]) % 40}
	if b[0] >= 80 {
		o = OID{2, uint32(b[0]) - 80}
	}
	var cur uint32
	inRun := false
	for _, c := range b[1:] {
		cur = cur<<7 | uint32(c&0x7f)
		if c&0x80 == 0 {
			o = append(o, cur)
			cur = 0
			inRun = false
		} else {
			inRun = true
		}
	}
	if inRun {
		return nil, ErrTruncated
	}
	return o, nil
}

// unmarshalValue decodes one TLV into a Value.
func (r *reader) unmarshalValue() (Value, error) {
	tag, length, err := r.readTL()
	if err != nil {
		return Value{}, err
	}
	body, err := r.readBytes(length)
	if err != nil {
		return Value{}, err
	}
	switch tag {
	case tagNull:
		return Null, nil
	case tagInteger:
		v, err := parseIntBody(body)
		if err != nil {
			return Value{}, err
		}
		return Int64(v), nil
	case tagOctetString:
		out := make([]byte, len(body))
		copy(out, body)
		return Octets(out), nil
	case tagOID:
		o, err := parseOIDBody(body)
		if err != nil {
			return Value{}, err
		}
		return OIDValue(o), nil
	case tagIPAddress:
		if len(body) != 4 {
			return Value{}, fmt.Errorf("snmp: IpAddress body %d bytes", len(body))
		}
		var b4 [4]byte
		copy(b4[:], body)
		return IPv4(b4), nil
	case tagCounter32, tagGauge32, tagTimeTicks, tagCounter64:
		v, err := parseUintBody(body)
		if err != nil {
			return Value{}, err
		}
		k := map[byte]Kind{
			tagCounter32: KindCounter32,
			tagGauge32:   KindGauge32,
			tagTimeTicks: KindTimeTicks,
			tagCounter64: KindCounter64,
		}[tag]
		return Value{Kind: k, Int: int64(v)}, nil
	case tagNoSuchObject:
		return NoSuchObject, nil
	case tagNoSuchInst:
		return Value{Kind: KindNoSuchInstance}, nil
	case tagEndOfMibView:
		return EndOfMibView, nil
	}
	return Value{}, fmt.Errorf("snmp: unsupported BER tag 0x%02x", tag)
}
