package snmp

import (
	"errors"
	"fmt"
)

// BER tag bytes for the types the Remos collectors use.
const (
	tagInteger      = 0x02
	tagOctetString  = 0x04
	tagNull         = 0x05
	tagOID          = 0x06
	tagSequence     = 0x30
	tagIPAddress    = 0x40
	tagCounter32    = 0x41
	tagGauge32      = 0x42
	tagTimeTicks    = 0x43
	tagCounter64    = 0x46
	tagNoSuchObject = 0x80 // varbind exception (v2c)
	tagNoSuchInst   = 0x81
	tagEndOfMibView = 0x82
)

// Kind enumerates SNMP value types.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInteger
	KindOctetString
	KindOID
	KindIPAddress
	KindCounter32
	KindGauge32
	KindTimeTicks
	KindCounter64
	KindNoSuchObject
	KindNoSuchInstance
	KindEndOfMibView
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindInteger:
		return "Integer"
	case KindOctetString:
		return "OctetString"
	case KindOID:
		return "ObjectIdentifier"
	case KindIPAddress:
		return "IpAddress"
	case KindCounter32:
		return "Counter32"
	case KindGauge32:
		return "Gauge32"
	case KindTimeTicks:
		return "TimeTicks"
	case KindCounter64:
		return "Counter64"
	case KindNoSuchObject:
		return "noSuchObject"
	case KindNoSuchInstance:
		return "noSuchInstance"
	case KindEndOfMibView:
		return "endOfMibView"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is one SNMP variable value. Exactly one of Int, Bytes, Oid carries
// data depending on Kind; exception kinds carry none.
type Value struct {
	Kind  Kind
	Int   int64  // Integer; unsigned value for Counter/Gauge/TimeTicks/Counter64
	Bytes []byte // OctetString and IPAddress (4 bytes)
	Oid   OID    // ObjectIdentifier
}

// Convenience constructors.

// Int64 returns an Integer value.
func Int64(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// Str returns an OctetString value.
func Str(s string) Value { return Value{Kind: KindOctetString, Bytes: []byte(s)} }

// Octets returns an OctetString value from raw bytes.
func Octets(b []byte) Value { return Value{Kind: KindOctetString, Bytes: b} }

// Counter returns a Counter32 value (wrapped to 32 bits).
func Counter(v uint64) Value { return Value{Kind: KindCounter32, Int: int64(uint32(v))} }

// Gauge returns a Gauge32 value.
func Gauge(v uint32) Value { return Value{Kind: KindGauge32, Int: int64(v)} }

// Ticks returns a TimeTicks value (hundredths of seconds).
func Ticks(v uint32) Value { return Value{Kind: KindTimeTicks, Int: int64(v)} }

// IPv4 returns an IpAddress value.
func IPv4(b [4]byte) Value { return Value{Kind: KindIPAddress, Bytes: b[:]} }

// OIDValue returns an ObjectIdentifier value.
func OIDValue(o OID) Value { return Value{Kind: KindOID, Oid: o} }

// Counter64Val returns a Counter64 value (full 64-bit range; the high-
// capacity interface counters are served as these).
func Counter64Val(v uint64) Value { return Value{Kind: KindCounter64, Int: int64(v)} }

// Null is the null value.
var Null = Value{Kind: KindNull}

// NoSuchObject is the v2c exception returned for missing objects.
var NoSuchObject = Value{Kind: KindNoSuchObject}

// EndOfMibView is the v2c exception ending GetNext/GetBulk walks.
var EndOfMibView = Value{Kind: KindEndOfMibView}

// String renders the value for debugging and the ASCII protocol.
func (v Value) String() string {
	switch v.Kind {
	case KindInteger, KindCounter32, KindGauge32, KindTimeTicks, KindCounter64:
		return fmt.Sprintf("%s(%d)", v.Kind, v.Int)
	case KindOctetString:
		return fmt.Sprintf("OctetString(%q)", v.Bytes)
	case KindOID:
		return fmt.Sprintf("OID(%s)", v.Oid)
	case KindIPAddress:
		if len(v.Bytes) == 4 {
			return fmt.Sprintf("IpAddress(%d.%d.%d.%d)", v.Bytes[0], v.Bytes[1], v.Bytes[2], v.Bytes[3])
		}
		return "IpAddress(?)"
	default:
		return v.Kind.String()
	}
}

// ErrTruncated reports a BER message shorter than its length fields claim.
var ErrTruncated = errors.New("snmp: truncated BER data")

// The encoder works in two passes over the same Message: a sizing pass
// that computes every definite length, then an append pass that writes
// tag, length, and content directly into the destination buffer. No
// intermediate per-TLV []byte is ever built, so encoding into a recycled
// buffer allocates nothing.

// sizeLength returns the encoded size of a definite length field.
func sizeLength(n int) int {
	if n < 0x80 {
		return 1
	}
	s := 1
	for x := n; x > 0; x >>= 8 {
		s++
	}
	return s
}

// sizeTLV returns the full TLV size for a content of the given length.
func sizeTLV(contentLen int) int { return 1 + sizeLength(contentLen) + contentLen }

// appendHeader appends a tag and definite length.
func appendHeader(dst []byte, tag byte, n int) []byte {
	dst = append(dst, tag)
	if n < 0x80 {
		return append(dst, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for x := n; x > 0; x >>= 8 {
		i--
		tmp[i] = byte(x)
	}
	dst = append(dst, 0x80|byte(len(tmp)-i))
	return append(dst, tmp[i:]...)
}

// sizeIntBody returns the minimal two's-complement body size for v.
func sizeIntBody(v int64) int {
	n := 1
	for x := v; (x > 0x7f || x < -0x80) && n < 9; n++ {
		x >>= 8
	}
	return n
}

// appendIntBody encodes a signed integer body (two's complement, minimal).
func appendIntBody(dst []byte, v int64) []byte {
	n := sizeIntBody(v)
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

// sizeUintBody returns the body size appendUintBody will produce.
func sizeUintBody(v uint64) int {
	n := 1
	for x := v; x > 0xff && n < 9; n++ {
		x >>= 8
	}
	if v>>(8*uint(n-1))&0x80 != 0 {
		n++
	}
	return n
}

// appendUintBody encodes an unsigned integer body with a leading zero when
// the high bit would otherwise be set (SNMP counters are unsigned).
func appendUintBody(dst []byte, v uint64) []byte {
	n := 1
	for x := v; x > 0xff && n < 9; n++ {
		x >>= 8
	}
	if v>>(8*uint(n-1))&0x80 != 0 {
		dst = append(dst, 0)
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// checkOID validates that the encoder can represent the OID head.
func checkOID(o OID) error {
	if len(o) < 2 {
		return fmt.Errorf("snmp: OID %v too short to encode", o)
	}
	switch {
	case o[0] < 2:
		if o[1] >= 40 {
			return fmt.Errorf("snmp: invalid OID head %d.%d", o[0], o[1])
		}
	case o[0] == 2:
		if o[1] > 0xff-80 {
			return fmt.Errorf("snmp: invalid OID head %d.%d", o[0], o[1])
		}
	default:
		return fmt.Errorf("snmp: invalid OID head %d.%d", o[0], o[1])
	}
	return nil
}

// sizeOIDBody returns the body size for an OID that passed checkOID.
func sizeOIDBody(o OID) int {
	n := 1
	for _, v := range o[2:] {
		n += sizeBase128(v)
	}
	return n
}

// appendOIDBody encodes an OID body; the OID must have passed checkOID.
func appendOIDBody(dst []byte, o OID) []byte {
	dst = append(dst, byte(o[0]*40+o[1]))
	for _, v := range o[2:] {
		dst = appendBase128(dst, v)
	}
	return dst
}

func sizeBase128(v uint32) int {
	n := 1
	for v >= 0x80 {
		n++
		v >>= 7
	}
	return n
}

func appendBase128(dst []byte, v uint32) []byte {
	var tmp [5]byte
	i := len(tmp) - 1
	tmp[i] = byte(v & 0x7f)
	v >>= 7
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	return append(dst, tmp[i:]...)
}

// sizeValue returns the full TLV size for v, validating it. Every value
// must pass through here before appendValue may encode it.
func sizeValue(v Value) (int, error) {
	switch v.Kind {
	case KindNull, KindNoSuchObject, KindNoSuchInstance, KindEndOfMibView:
		return 2, nil
	case KindInteger:
		return sizeTLV(sizeIntBody(v.Int)), nil
	case KindOctetString:
		return sizeTLV(len(v.Bytes)), nil
	case KindOID:
		if err := checkOID(v.Oid); err != nil {
			return 0, err
		}
		return sizeTLV(sizeOIDBody(v.Oid)), nil
	case KindIPAddress:
		if len(v.Bytes) != 4 {
			return 0, fmt.Errorf("snmp: IpAddress must be 4 bytes, got %d", len(v.Bytes))
		}
		return sizeTLV(4), nil
	case KindCounter32, KindGauge32, KindTimeTicks:
		return sizeTLV(sizeUintBody(uint64(uint32(v.Int)))), nil
	case KindCounter64:
		return sizeTLV(sizeUintBody(uint64(v.Int))), nil
	}
	return 0, fmt.Errorf("snmp: cannot marshal kind %v", v.Kind)
}

// appendValue encodes one Value as a TLV. v must have passed sizeValue.
func appendValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, tagNull, 0)
	case KindInteger:
		dst = appendHeader(dst, tagInteger, sizeIntBody(v.Int))
		return appendIntBody(dst, v.Int)
	case KindOctetString:
		dst = appendHeader(dst, tagOctetString, len(v.Bytes))
		return append(dst, v.Bytes...)
	case KindOID:
		dst = appendHeader(dst, tagOID, sizeOIDBody(v.Oid))
		return appendOIDBody(dst, v.Oid)
	case KindIPAddress:
		dst = appendHeader(dst, tagIPAddress, 4)
		return append(dst, v.Bytes...)
	case KindCounter32:
		u := uint64(uint32(v.Int))
		dst = appendHeader(dst, tagCounter32, sizeUintBody(u))
		return appendUintBody(dst, u)
	case KindGauge32:
		u := uint64(uint32(v.Int))
		dst = appendHeader(dst, tagGauge32, sizeUintBody(u))
		return appendUintBody(dst, u)
	case KindTimeTicks:
		u := uint64(uint32(v.Int))
		dst = appendHeader(dst, tagTimeTicks, sizeUintBody(u))
		return appendUintBody(dst, u)
	case KindCounter64:
		u := uint64(v.Int)
		dst = appendHeader(dst, tagCounter64, sizeUintBody(u))
		return appendUintBody(dst, u)
	case KindNoSuchObject:
		return append(dst, tagNoSuchObject, 0)
	case KindNoSuchInstance:
		return append(dst, tagNoSuchInst, 0)
	case KindEndOfMibView:
		return append(dst, tagEndOfMibView, 0)
	}
	return dst
}

// reader is a cursor over BER bytes.
type reader struct {
	b []byte
	i int
}

func (r *reader) remaining() int { return len(r.b) - r.i }

func (r *reader) byteAt() (byte, error) {
	if r.i >= len(r.b) {
		return 0, ErrTruncated
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}

func (r *reader) readTL() (tag byte, length int, err error) {
	tag, err = r.byteAt()
	if err != nil {
		return 0, 0, err
	}
	first, err := r.byteAt()
	if err != nil {
		return 0, 0, err
	}
	if first < 0x80 {
		return tag, int(first), nil
	}
	n := int(first & 0x7f)
	if n == 0 || n > 4 {
		return 0, 0, fmt.Errorf("snmp: unsupported BER length of length %d", n)
	}
	length = 0
	for j := 0; j < n; j++ {
		c, err := r.byteAt()
		if err != nil {
			return 0, 0, err
		}
		length = length<<8 | int(c)
	}
	return tag, length, nil
}

func (r *reader) readBytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrTruncated
	}
	out := r.b[r.i : r.i+n]
	r.i += n
	return out, nil
}

func parseIntBody(b []byte) (int64, error) {
	if len(b) == 0 || len(b) > 8 {
		return 0, fmt.Errorf("snmp: bad integer length %d", len(b))
	}
	v := int64(int8(b[0])) // sign extend
	for _, c := range b[1:] {
		v = v<<8 | int64(c)
	}
	return v, nil
}

func parseUintBody(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 9 || (len(b) == 9 && b[0] != 0) {
		return 0, fmt.Errorf("snmp: bad unsigned length %d", len(b))
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}

func parseOIDBody(b []byte) (OID, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("snmp: empty OID body")
	}
	// Pre-count the sub-identifiers (one per byte without the continuation
	// bit) so the result slice is allocated exactly once at final size.
	count := 2
	for _, c := range b[1:] {
		if c&0x80 == 0 {
			count++
		}
	}
	o := make(OID, 2, count)
	if b[0] >= 80 {
		o[0], o[1] = 2, uint32(b[0])-80
	} else {
		o[0], o[1] = uint32(b[0])/40, uint32(b[0])%40
	}
	var cur uint32
	inRun := false
	for _, c := range b[1:] {
		cur = cur<<7 | uint32(c&0x7f)
		if c&0x80 == 0 {
			o = append(o, cur)
			cur = 0
			inRun = false
		} else {
			inRun = true
		}
	}
	if inRun {
		return nil, ErrTruncated
	}
	return o, nil
}

// unmarshalValue decodes one TLV into a Value.
func (r *reader) unmarshalValue() (Value, error) {
	tag, length, err := r.readTL()
	if err != nil {
		return Value{}, err
	}
	body, err := r.readBytes(length)
	if err != nil {
		return Value{}, err
	}
	switch tag {
	case tagNull:
		return Null, nil
	case tagInteger:
		v, err := parseIntBody(body)
		if err != nil {
			return Value{}, err
		}
		return Int64(v), nil
	case tagOctetString:
		out := make([]byte, len(body))
		copy(out, body)
		return Octets(out), nil
	case tagOID:
		o, err := parseOIDBody(body)
		if err != nil {
			return Value{}, err
		}
		return OIDValue(o), nil
	case tagIPAddress:
		if len(body) != 4 {
			return Value{}, fmt.Errorf("snmp: IpAddress body %d bytes", len(body))
		}
		var b4 [4]byte
		copy(b4[:], body)
		return IPv4(b4), nil
	case tagCounter32, tagGauge32, tagTimeTicks, tagCounter64:
		v, err := parseUintBody(body)
		if err != nil {
			return Value{}, err
		}
		var k Kind
		switch tag {
		case tagCounter32:
			k = KindCounter32
		case tagGauge32:
			k = KindGauge32
		case tagTimeTicks:
			k = KindTimeTicks
		case tagCounter64:
			k = KindCounter64
		}
		if k != KindCounter64 {
			v = uint64(uint32(v)) // 32-bit application types truncate
		}
		return Value{Kind: k, Int: int64(v)}, nil
	case tagNoSuchObject:
		return NoSuchObject, nil
	case tagNoSuchInst:
		return Value{Kind: KindNoSuchInstance}, nil
	case tagEndOfMibView:
		return EndOfMibView, nil
	}
	return Value{}, fmt.Errorf("snmp: unsupported BER tag 0x%02x", tag)
}
