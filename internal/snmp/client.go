package snmp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"remos/internal/obs"
	"remos/internal/rerr"
)

// Meter accumulates the modeled or measured cost of SNMP exchanges: how
// many requests were sent, how many varbinds they carried, and the total
// round-trip time. The SNMP Collector attaches one meter per query to
// report "query time" the way Figure 3 measures it; with batched polling
// the request count is the number of exchanges (one per device), not the
// number of objects read.
type Meter struct {
	mu       sync.Mutex
	requests int
	varbinds int
	total    time.Duration
}

// Add records one exchange of unknown width.
func (m *Meter) Add(rtt time.Duration) { m.AddExchange(rtt, 0) }

// AddExchange records one exchange carrying nvb varbinds.
func (m *Meter) AddExchange(rtt time.Duration, nvb int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.requests++
	m.varbinds += nvb
	m.total += rtt
	m.mu.Unlock()
}

// Snapshot returns the request count and summed round-trip time so far.
func (m *Meter) Snapshot() (requests int, total time.Duration) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests, m.total
}

// Counts returns the exchange count, the total varbinds those exchanges
// carried, and the summed round-trip time.
func (m *Meter) Counts() (requests, varbinds int, total time.Duration) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests, m.varbinds, m.total
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.requests = 0
	m.varbinds = 0
	m.total = 0
	m.mu.Unlock()
}

// encodePool recycles request encode buffers across roundTrip calls. A
// pooled buffer may only back the synchronous path: the transport hands
// the bytes to the agent and returns before roundTrip puts the buffer
// back, so nothing aliases it afterwards. Pipelined sends keep requests
// in flight after Send returns and therefore marshal fresh buffers.
var encodePool = sync.Pool{New: func() any { return new([]byte) }}

// Client issues SNMP requests through a Transport.
type Client struct {
	Transport Transport
	Community string

	// Retries is the number of re-sends after a timeout (default 1).
	Retries int

	// Pipeline is the number of requests kept outstanding per agent.
	// Values <= 1 keep the classic lock-step behavior. Larger values
	// require the Transport to implement SessionTransport; concurrent
	// callers (parallel table walks during discovery) then overlap their
	// round trips instead of serializing on RTT. Set before first use.
	Pipeline int

	// Meter, when set, accumulates exchange costs.
	Meter *Meter

	// Pre-resolved metric handles, set by Instrument. All are nil-safe,
	// so the hot path records unconditionally.
	mExchanges *obs.Counter
	mRetries   *obs.Counter
	mTimeouts  *obs.Counter
	mRTT       *obs.Histogram
	mInflight  *obs.Gauge

	reqID atomic.Int32

	mu     sync.Mutex
	pipes  map[string]*pipe
	closed bool
}

// NewClient returns a client over the given transport with the community.
func NewClient(t Transport, community string) *Client {
	return &Client{Transport: t, Community: community, Retries: 1}
}

// Instrument resolves the client's metric handles against reg once, so
// the per-exchange hot path touches atomics only, never the registry
// map. A nil registry leaves the client uninstrumented. Call before
// first use.
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mExchanges = reg.Counter("remos_snmp_exchanges_total",
		"SNMP request/response exchanges attempted")
	c.mRetries = reg.Counter("remos_snmp_retries_total",
		"SNMP exchanges re-sent after a timeout")
	c.mTimeouts = reg.Counter("remos_snmp_timeouts_total",
		"SNMP exchanges that timed out")
	c.mRTT = reg.Histogram("remos_snmp_rtt_seconds",
		"SNMP exchange round-trip time", nil)
	c.mInflight = reg.Gauge("remos_snmp_pipeline_inflight",
		"SNMP requests currently outstanding on pipelined sessions")
}

// record updates metrics for one exchange attempt.
func (c *Client) record(rtt time.Duration, err error, attempt int) {
	c.mExchanges.Inc()
	if attempt > 0 {
		c.mRetries.Inc()
	}
	if errors.Is(err, ErrTimeout) {
		c.mTimeouts.Inc()
	}
	if err == nil {
		c.mRTT.Observe(rtt.Seconds())
	}
}

// finalErr shapes the error returned after all attempts failed: the
// address is prefixed and timeouts carry the rerr.ErrTimeout class so
// callers up to the public API can errors.Is them.
func finalErr(addr string, lastErr error) error {
	err := fmt.Errorf("snmp: %s: %w", addr, lastErr)
	if errors.Is(lastErr, ErrTimeout) {
		return rerr.Tag(err, rerr.ErrTimeout)
	}
	return err
}

// Close releases per-agent sessions opened for pipelining. The client
// itself remains usable in lock-step mode afterwards only if Pipeline <= 1;
// pipelined calls after Close fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	pipes := c.pipes
	c.pipes = nil
	c.closed = true
	c.mu.Unlock()
	for _, p := range pipes {
		p.close()
	}
	return nil
}

func (c *Client) attempts() int {
	if c.Retries < 0 {
		return 1
	}
	return c.Retries + 1
}

// checkResponse validates a decoded response against the request.
func checkResponse(resp *Message, reqID int32) (*PDU, error) {
	if resp.PDU.Type != GetResponse || resp.PDU.RequestID != reqID {
		return nil, fmt.Errorf("snmp: mismatched response (type %v, id %d)", resp.PDU.Type, resp.PDU.RequestID)
	}
	return &resp.PDU, nil
}

func (c *Client) roundTrip(ctx context.Context, addr string, pdu PDU) (*PDU, error) {
	if c.Pipeline > 1 {
		if st, ok := c.Transport.(SessionTransport); ok {
			return c.roundTripPipelined(ctx, st, addr, pdu)
		}
	}
	pdu.RequestID = c.reqID.Add(1)
	msg := &Message{Community: c.Community, PDU: pdu}
	bufp := encodePool.Get().(*[]byte)
	req, err := msg.AppendMarshal((*bufp)[:0])
	if err != nil {
		encodePool.Put(bufp)
		return nil, err
	}
	*bufp = req
	defer encodePool.Put(bufp)
	var lastErr error
	for i := 0; i < c.attempts(); i++ {
		// The blocking RoundTrip itself is not interruptible, but
		// cancellation is honored between attempts, so a canceled walk
		// stops re-sending into a dead agent.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		respB, rtt, err := c.Transport.RoundTrip(addr, req)
		c.Meter.AddExchange(rtt, len(pdu.VarBinds))
		c.record(rtt, err, i)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := Unmarshal(respB)
		if err != nil {
			lastErr = err
			continue
		}
		out, err := checkResponse(resp, pdu.RequestID)
		if err != nil {
			lastErr = err
			continue
		}
		if out.ErrorStatus != ErrStatusNoError {
			return nil, fmt.Errorf("snmp: agent %s returned error status %d at index %d",
				addr, out.ErrorStatus, out.ErrorIndex)
		}
		return out, nil
	}
	return nil, finalErr(addr, lastErr)
}

func (c *Client) roundTripPipelined(ctx context.Context, st SessionTransport, addr string, pdu PDU) (*PDU, error) {
	p, err := c.pipe(st, addr)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := 0; i < c.attempts(); i++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// A fresh RequestID per attempt: a late response to a timed-out
		// attempt then fails to match anything and is dropped, instead of
		// being mistaken for the retry's answer.
		pdu.RequestID = c.reqID.Add(1)
		msg := &Message{Community: c.Community, PDU: pdu}
		req, err := msg.Marshal() // fresh: the session retains it while in flight
		if err != nil {
			return nil, err
		}
		c.mInflight.Add(1)
		respB, rtt, err := p.call(ctx, pdu.RequestID, req)
		c.mInflight.Add(-1)
		c.Meter.AddExchange(rtt, len(pdu.VarBinds))
		c.record(rtt, err, i)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			lastErr = err
			continue
		}
		resp, err := Unmarshal(respB)
		if err != nil {
			lastErr = err
			continue
		}
		out, err := checkResponse(resp, pdu.RequestID)
		if err != nil {
			lastErr = err
			continue
		}
		if out.ErrorStatus != ErrStatusNoError {
			return nil, fmt.Errorf("snmp: agent %s returned error status %d at index %d",
				addr, out.ErrorStatus, out.ErrorIndex)
		}
		return out, nil
	}
	return nil, finalErr(addr, lastErr)
}

// pipe returns the pipelined session for addr, opening it on first use.
func (c *Client) pipe(st SessionTransport, addr string) (*pipe, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if p, ok := c.pipes[addr]; ok {
		return p, nil
	}
	sess, err := st.OpenSession(addr)
	if err != nil {
		return nil, err
	}
	p := newPipe(sess, c.Pipeline)
	if c.pipes == nil {
		c.pipes = make(map[string]*pipe)
	}
	c.pipes[addr] = p
	return p, nil
}

// pipe demultiplexes pipelined exchanges over one Session: up to `window`
// requests outstanding, each waiter registered under its RequestID, and a
// single receiver goroutine matching whatever response arrives next to the
// waiter that sent it.
type pipe struct {
	sess   Session
	window chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	waiting map[int32]chan pipeResult
	dead    error // set when the session fails or closes
}

type pipeResult struct {
	resp []byte
	rtt  time.Duration
	err  error
}

func newPipe(sess Session, window int) *pipe {
	if window < 1 {
		window = 1
	}
	p := &pipe{
		sess:    sess,
		window:  make(chan struct{}, window),
		waiting: make(map[int32]chan pipeResult),
	}
	p.cond = sync.NewCond(&p.mu)
	//remoslint:allow goctx receive loop ends when the session closes (Recv returns ErrClosed)
	go p.receive()
	return p
}

// call sends one encoded request and blocks for its matched response or
// the caller's cancellation. A canceled waiter deregisters itself; its
// late response (if any) is then unmatched and dropped by the receiver.
func (p *pipe) call(ctx context.Context, reqID int32, req []byte) ([]byte, time.Duration, error) {
	select {
	case p.window <- struct{}{}:
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	defer func() { <-p.window }()
	ch := make(chan pipeResult, 1)
	p.mu.Lock()
	if p.dead != nil {
		err := p.dead
		p.mu.Unlock()
		return nil, 0, err
	}
	p.waiting[reqID] = ch
	p.cond.Signal()
	p.mu.Unlock()
	if err := p.sess.Send(reqID, req); err != nil {
		p.mu.Lock()
		delete(p.waiting, reqID)
		p.mu.Unlock()
		return nil, 0, err
	}
	select {
	case r := <-ch:
		return r.resp, r.rtt, r.err
	case <-ctx.Done():
		p.mu.Lock()
		delete(p.waiting, reqID)
		p.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// receive runs until the session dies, parking while nothing is
// outstanding so an idle UDP session is not polled.
func (p *pipe) receive() {
	for {
		p.mu.Lock()
		for len(p.waiting) == 0 && p.dead == nil {
			p.cond.Wait()
		}
		if p.dead != nil {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		reqID, resp, rtt, err := p.sess.Recv()
		if err != nil && reqID == 0 {
			// Session-fatal: fail every waiter and stop.
			p.fail(err)
			return
		}
		p.mu.Lock()
		ch := p.waiting[reqID]
		delete(p.waiting, reqID)
		p.mu.Unlock()
		if ch != nil {
			ch <- pipeResult{resp: resp, rtt: rtt, err: err}
		}
	}
}

// fail marks the pipe dead and releases every waiter with err.
func (p *pipe) fail(err error) {
	p.mu.Lock()
	if p.dead == nil {
		p.dead = err
	}
	waiting := p.waiting
	p.waiting = make(map[int32]chan pipeResult)
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, ch := range waiting {
		ch <- pipeResult{err: err}
	}
}

func (p *pipe) close() {
	p.sess.Close() // unblocks the receiver's Recv
	p.fail(ErrClosed)
}

// Get fetches the exact OIDs. Missing objects come back with
// KindNoSuchObject values rather than an error.
func (c *Client) Get(addr string, oids ...OID) ([]VarBind, error) {
	return c.GetContext(context.Background(), addr, oids...)
}

// GetContext is Get honoring the context's cancellation between
// attempts and while waiting on pipelined responses.
func (c *Client) GetContext(ctx context.Context, addr string, oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{Name: o, Value: Null}
	}
	pdu, err := c.roundTrip(ctx, addr, PDU{Type: GetRequest, VarBinds: vbs})
	if err != nil {
		return nil, err
	}
	return pdu.VarBinds, nil
}

// GetOne fetches a single OID and requires the object to exist.
func (c *Client) GetOne(addr string, oid OID) (Value, error) {
	return c.GetOneContext(context.Background(), addr, oid)
}

// GetOneContext is GetOne honoring the context's cancellation.
func (c *Client) GetOneContext(ctx context.Context, addr string, oid OID) (Value, error) {
	vbs, err := c.GetContext(ctx, addr, oid)
	if err != nil {
		return Value{}, err
	}
	if len(vbs) != 1 {
		return Value{}, fmt.Errorf("snmp: got %d varbinds for one OID", len(vbs))
	}
	v := vbs[0].Value
	switch v.Kind {
	case KindNoSuchObject, KindNoSuchInstance, KindEndOfMibView:
		return Value{}, fmt.Errorf("snmp: %s has no object %s", addr, oid)
	}
	return v, nil
}

// Next performs one GetNext step.
func (c *Client) Next(addr string, oid OID) (OID, Value, error) {
	return c.NextContext(context.Background(), addr, oid)
}

// NextContext is Next honoring the context's cancellation.
func (c *Client) NextContext(ctx context.Context, addr string, oid OID) (OID, Value, error) {
	pdu, err := c.roundTrip(ctx, addr, PDU{Type: GetNextRequest, VarBinds: []VarBind{{Name: oid, Value: Null}}})
	if err != nil {
		return nil, Value{}, err
	}
	if len(pdu.VarBinds) != 1 {
		return nil, Value{}, fmt.Errorf("snmp: GetNext returned %d varbinds", len(pdu.VarBinds))
	}
	vb := pdu.VarBinds[0]
	if vb.Value.Kind == KindEndOfMibView {
		return nil, Value{}, nil
	}
	return vb.Name, vb.Value, nil
}

// Walk visits every object under root in order using GetNext, calling fn
// for each. fn returning false stops the walk early.
func (c *Client) Walk(addr string, root OID, fn func(OID, Value) bool) error {
	return c.WalkContext(context.Background(), addr, root, fn)
}

// WalkContext is Walk honoring the context's cancellation: a canceled
// walk stops between steps with the context's error.
func (c *Client) WalkContext(ctx context.Context, addr string, root OID, fn func(OID, Value) bool) error {
	cur := root
	for {
		next, v, err := c.NextContext(ctx, addr, cur)
		if err != nil {
			return err
		}
		if next == nil || !next.HasPrefix(root) {
			return nil
		}
		if !fn(next, v) {
			return nil
		}
		cur = next
	}
}

// BulkWalk visits every object under root using GetBulk with the given
// repetition count (<=0 selects 32), which costs far fewer round trips
// than Walk on large tables.
func (c *Client) BulkWalk(addr string, root OID, maxRep int, fn func(OID, Value) bool) error {
	return c.BulkWalkContext(context.Background(), addr, root, maxRep, fn)
}

// BulkWalkContext is BulkWalk honoring the context's cancellation.
func (c *Client) BulkWalkContext(ctx context.Context, addr string, root OID, maxRep int, fn func(OID, Value) bool) error {
	if maxRep <= 0 {
		maxRep = 32
	}
	cur := root
	for {
		pdu, err := c.roundTrip(ctx, addr, PDU{
			Type:        GetBulkRequest,
			ErrorStatus: 0,      // non-repeaters
			ErrorIndex:  maxRep, // max-repetitions
			VarBinds:    []VarBind{{Name: cur, Value: Null}},
		})
		if err != nil {
			return err
		}
		if len(pdu.VarBinds) == 0 {
			return nil
		}
		progressed := false
		for _, vb := range pdu.VarBinds {
			if vb.Value.Kind == KindEndOfMibView || !vb.Name.HasPrefix(root) {
				return nil
			}
			if !fn(vb.Name, vb.Value) {
				return nil
			}
			cur = vb.Name
			progressed = true
		}
		if !progressed {
			return nil
		}
	}
}
