package snmp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates the modeled or measured cost of SNMP exchanges: how
// many requests were sent and the total round-trip time. The SNMP
// Collector attaches one meter per query to report "query time" the way
// Figure 3 measures it.
type Meter struct {
	mu       sync.Mutex
	requests int
	total    time.Duration
}

// Add records one exchange.
func (m *Meter) Add(rtt time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.requests++
	m.total += rtt
	m.mu.Unlock()
}

// Snapshot returns the request count and summed round-trip time so far.
func (m *Meter) Snapshot() (requests int, total time.Duration) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests, m.total
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.requests = 0
	m.total = 0
	m.mu.Unlock()
}

// Client issues SNMP requests through a Transport.
type Client struct {
	Transport Transport
	Community string

	// Retries is the number of re-sends after a timeout (default 1).
	Retries int

	// Meter, when set, accumulates exchange costs.
	Meter *Meter

	reqID atomic.Int32
}

// NewClient returns a client over the given transport with the community.
func NewClient(t Transport, community string) *Client {
	return &Client{Transport: t, Community: community, Retries: 1}
}

func (c *Client) roundTrip(addr string, pdu PDU) (*PDU, error) {
	pdu.RequestID = c.reqID.Add(1)
	msg := &Message{Community: c.Community, PDU: pdu}
	req, err := msg.Marshal()
	if err != nil {
		return nil, err
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		respB, rtt, err := c.Transport.RoundTrip(addr, req)
		c.Meter.Add(rtt)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := Unmarshal(respB)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.PDU.Type != GetResponse || resp.PDU.RequestID != pdu.RequestID {
			lastErr = fmt.Errorf("snmp: mismatched response (type %v, id %d)", resp.PDU.Type, resp.PDU.RequestID)
			continue
		}
		if resp.PDU.ErrorStatus != ErrStatusNoError {
			return nil, fmt.Errorf("snmp: agent %s returned error status %d at index %d",
				addr, resp.PDU.ErrorStatus, resp.PDU.ErrorIndex)
		}
		return &resp.PDU, nil
	}
	return nil, fmt.Errorf("snmp: %s: %w", addr, lastErr)
}

// Get fetches the exact OIDs. Missing objects come back with
// KindNoSuchObject values rather than an error.
func (c *Client) Get(addr string, oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{Name: o, Value: Null}
	}
	pdu, err := c.roundTrip(addr, PDU{Type: GetRequest, VarBinds: vbs})
	if err != nil {
		return nil, err
	}
	return pdu.VarBinds, nil
}

// GetOne fetches a single OID and requires the object to exist.
func (c *Client) GetOne(addr string, oid OID) (Value, error) {
	vbs, err := c.Get(addr, oid)
	if err != nil {
		return Value{}, err
	}
	if len(vbs) != 1 {
		return Value{}, fmt.Errorf("snmp: got %d varbinds for one OID", len(vbs))
	}
	v := vbs[0].Value
	switch v.Kind {
	case KindNoSuchObject, KindNoSuchInstance, KindEndOfMibView:
		return Value{}, fmt.Errorf("snmp: %s has no object %s", addr, oid)
	}
	return v, nil
}

// Next performs one GetNext step.
func (c *Client) Next(addr string, oid OID) (OID, Value, error) {
	pdu, err := c.roundTrip(addr, PDU{Type: GetNextRequest, VarBinds: []VarBind{{Name: oid, Value: Null}}})
	if err != nil {
		return nil, Value{}, err
	}
	if len(pdu.VarBinds) != 1 {
		return nil, Value{}, fmt.Errorf("snmp: GetNext returned %d varbinds", len(pdu.VarBinds))
	}
	vb := pdu.VarBinds[0]
	if vb.Value.Kind == KindEndOfMibView {
		return nil, Value{}, nil
	}
	return vb.Name, vb.Value, nil
}

// Walk visits every object under root in order using GetNext, calling fn
// for each. fn returning false stops the walk early.
func (c *Client) Walk(addr string, root OID, fn func(OID, Value) bool) error {
	cur := root
	for {
		next, v, err := c.Next(addr, cur)
		if err != nil {
			return err
		}
		if next == nil || !next.HasPrefix(root) {
			return nil
		}
		if !fn(next, v) {
			return nil
		}
		cur = next
	}
}

// BulkWalk visits every object under root using GetBulk with the given
// repetition count (<=0 selects 32), which costs far fewer round trips
// than Walk on large tables.
func (c *Client) BulkWalk(addr string, root OID, maxRep int, fn func(OID, Value) bool) error {
	if maxRep <= 0 {
		maxRep = 32
	}
	cur := root
	for {
		pdu, err := c.roundTrip(addr, PDU{
			Type:        GetBulkRequest,
			ErrorStatus: 0,      // non-repeaters
			ErrorIndex:  maxRep, // max-repetitions
			VarBinds:    []VarBind{{Name: cur, Value: Null}},
		})
		if err != nil {
			return err
		}
		if len(pdu.VarBinds) == 0 {
			return nil
		}
		progressed := false
		for _, vb := range pdu.VarBinds {
			if vb.Value.Kind == KindEndOfMibView || !vb.Name.HasPrefix(root) {
				return nil
			}
			if !fn(vb.Name, vb.Value) {
				return nil
			}
			cur = vb.Name
			progressed = true
		}
		if !progressed {
			return nil
		}
	}
}
