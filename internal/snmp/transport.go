package snmp

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport delivers one request datagram to an agent address and returns
// the response. Implementations must be safe for concurrent use. The
// returned rtt is the (real or modeled) round-trip time of the exchange,
// which the client accumulates into its Meter — the quantity the Fig 3
// scalability experiment measures.
type Transport interface {
	RoundTrip(addr string, req []byte) (resp []byte, rtt time.Duration, err error)
}

// Registry maps agent addresses to in-process agents. It is the simulated
// management network: a client using an InProc transport reaches agents
// registered here.
type Registry struct {
	mu     sync.RWMutex
	agents map[string]*Agent
}

// NewRegistry returns an empty agent registry.
func NewRegistry() *Registry {
	return &Registry{agents: make(map[string]*Agent)}
}

// Register binds an agent to an address (conventionally the device's
// management IP as a string). Re-registering replaces the agent.
func (r *Registry) Register(addr string, a *Agent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agents[addr] = a
}

// Unregister removes an address, modeling an agent going dark.
func (r *Registry) Unregister(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.agents, addr)
}

// Lookup returns the agent at addr, or nil.
func (r *Registry) Lookup(addr string) *Agent {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.agents[addr]
}

// InProc is a Transport that dispatches directly to a Registry with a
// modeled per-destination round-trip latency. Simulated campus networks
// with a thousand devices use it instead of real sockets.
type InProc struct {
	Registry *Registry

	// Latency models the round-trip time to an address. nil means a
	// constant 1ms.
	Latency func(addr string) time.Duration
}

// ErrTimeout is the error for unanswered requests (no agent, wrong
// community, or a real socket timing out).
var ErrTimeout = fmt.Errorf("snmp: request timed out")

// RoundTrip implements Transport.
func (t *InProc) RoundTrip(addr string, req []byte) ([]byte, time.Duration, error) {
	rtt := time.Millisecond
	if t.Latency != nil {
		rtt = t.Latency(addr)
	}
	a := t.Registry.Lookup(addr)
	if a == nil {
		return nil, rtt, ErrTimeout
	}
	resp := a.HandleBytes(req)
	if resp == nil {
		return nil, rtt, ErrTimeout
	}
	return resp, rtt, nil
}

// ErrClosed reports use of a session (or client) after Close.
var ErrClosed = fmt.Errorf("snmp: session closed")

// Session is a pipelined exchange channel to one agent: multiple requests
// may be in flight at once, and responses are matched to requests by the
// RequestID encoded in the PDU rather than by arrival order. Send and Recv
// may be called from different goroutines; neither retains req/resp bytes
// after returning.
type Session interface {
	// Send transmits one encoded request. reqID is the RequestID encoded
	// in req, so per-request transport errors can be attributed without
	// decoding.
	Send(reqID int32, req []byte) error
	// Recv blocks for the next completed exchange. For successful
	// exchanges resp is the raw response datagram (which may answer any
	// outstanding reqID — the caller demultiplexes); for failed ones resp
	// is nil and reqID names the request that failed.
	Recv() (reqID int32, resp []byte, rtt time.Duration, err error)
	Close() error
}

// SessionTransport is implemented by transports that support pipelining.
// Clients with Pipeline > 1 open one session per agent and keep N requests
// outstanding on it.
type SessionTransport interface {
	Transport
	OpenSession(addr string) (Session, error)
}

// OpenSession implements SessionTransport. The in-proc session dispatches
// each request on its own goroutine, so N outstanding requests to one
// simulated agent overlap their modeled RTTs just as real datagrams would.
func (t *InProc) OpenSession(addr string) (Session, error) {
	return &inprocSession{t: t, addr: addr, done: make(chan struct{}), ch: make(chan inprocResult)}, nil
}

type inprocResult struct {
	reqID int32
	resp  []byte
	rtt   time.Duration
	err   error
}

type inprocSession struct {
	t    *InProc
	addr string
	ch   chan inprocResult

	closeOnce sync.Once
	done      chan struct{}
}

func (s *inprocSession) Send(reqID int32, req []byte) error {
	select {
	case <-s.done:
		return ErrClosed
	default:
	}
	go func() {
		resp, rtt, err := s.t.RoundTrip(s.addr, req)
		select {
		case s.ch <- inprocResult{reqID: reqID, resp: resp, rtt: rtt, err: err}:
		case <-s.done:
		}
	}()
	return nil
}

func (s *inprocSession) Recv() (int32, []byte, time.Duration, error) {
	select {
	case r := <-s.ch:
		return r.reqID, r.resp, r.rtt, r.err
	case <-s.done:
		return 0, nil, 0, ErrClosed
	}
}

func (s *inprocSession) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	return nil
}

// UDP is a Transport sending real SNMP datagrams. Addresses take the
// usual "host:port" form.
type UDP struct {
	// Timeout is the per-attempt read deadline; 0 means 2 seconds.
	Timeout time.Duration
}

// RoundTrip implements Transport over a fresh UDP socket per call.
func (t *UDP) RoundTrip(addr string, req []byte) ([]byte, time.Duration, error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	start := time.Now()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	if _, err := conn.Write(req); err != nil {
		return nil, 0, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, time.Since(start), ErrTimeout
		}
		return nil, time.Since(start), err
	}
	return buf[:n], time.Since(start), nil
}

// OpenSession implements SessionTransport: one connected UDP socket with
// many requests outstanding. Responses are matched to requests by decoding
// the response's RequestID; the oldest outstanding request times out when
// nothing arrives for it within Timeout.
func (t *UDP) OpenSession(addr string) (Session, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	s := &udpSession{
		conn:    conn.(*net.UDPConn),
		timeout: timeout,
		sent:    make(map[int32]time.Time),
		buf:     make([]byte, 65535),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

type udpSession struct {
	conn    *net.UDPConn
	timeout time.Duration
	buf     []byte // Recv scratch; Recv is single-goroutine

	mu     sync.Mutex
	cond   *sync.Cond          // signals a new outstanding request
	sent   map[int32]time.Time // send time per outstanding RequestID
	order  []int32             // outstanding RequestIDs, oldest first
	closed bool
}

func (s *udpSession) Send(reqID int32, req []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.sent[reqID] = time.Now()
	s.order = append(s.order, reqID)
	s.cond.Signal()
	s.mu.Unlock()
	_, err := s.conn.Write(req)
	return err
}

// oldest blocks until a request is outstanding (Recv may run ahead of the
// Send it will answer) and returns the longest-outstanding RequestID.
func (s *udpSession) oldest() (int32, time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.order) > 0 {
			id := s.order[0]
			if t, ok := s.sent[id]; ok {
				return id, t, nil
			}
			s.order = s.order[1:] // already answered
		}
		if s.closed {
			return 0, time.Time{}, ErrClosed
		}
		s.cond.Wait()
	}
}

func (s *udpSession) settle(reqID int32) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.sent[reqID]
	if ok {
		delete(s.sent, reqID)
	}
	return t, ok
}

func (s *udpSession) Recv() (int32, []byte, time.Duration, error) {
	for {
		id, sentAt, err := s.oldest()
		if err != nil {
			return 0, nil, 0, err
		}
		if err := s.conn.SetReadDeadline(sentAt.Add(s.timeout)); err != nil {
			return 0, nil, 0, err
		}
		n, err := s.conn.Read(s.buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// The oldest request has waited a full timeout: expire it
				// and let newer ones keep waiting.
				s.settle(id)
				return id, nil, time.Since(sentAt), ErrTimeout
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return 0, nil, 0, ErrClosed
			}
			return 0, nil, 0, err
		}
		resp := make([]byte, n)
		copy(resp, s.buf[:n])
		_, respID, pok := peekRequestID(resp)
		if !pok {
			continue // unparseable datagram; keep waiting
		}
		at, known := s.settle(respID)
		if !known {
			continue // duplicate or stale response
		}
		return respID, resp, time.Since(at), nil
	}
}

func (s *udpSession) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return s.conn.Close()
}

// Server serves one agent over a real UDP socket, for live deployments and
// loopback integration tests.
type Server struct {
	Agent *Agent

	conn *net.UDPConn
	wg   sync.WaitGroup
}

// ListenAndServe binds the UDP address (e.g. "127.0.0.1:0") and serves
// until Close. It returns the bound address immediately; serving happens
// on a background goroutine.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return "", err
	}
	s.conn = conn
	s.wg.Add(1)
	//remoslint:allow goctx read loop ends when Close closes the UDP socket; Close waits on the group
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 65535)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			req := make([]byte, n)
			copy(req, buf[:n])
			if resp := s.Agent.HandleBytes(req); resp != nil {
				conn.WriteToUDP(resp, peer)
			}
		}
	}()
	return conn.LocalAddr().String(), nil
}

// Close stops the server and waits for the serving goroutine.
func (s *Server) Close() error {
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
