package snmp

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport delivers one request datagram to an agent address and returns
// the response. Implementations must be safe for concurrent use. The
// returned rtt is the (real or modeled) round-trip time of the exchange,
// which the client accumulates into its Meter — the quantity the Fig 3
// scalability experiment measures.
type Transport interface {
	RoundTrip(addr string, req []byte) (resp []byte, rtt time.Duration, err error)
}

// Registry maps agent addresses to in-process agents. It is the simulated
// management network: a client using an InProc transport reaches agents
// registered here.
type Registry struct {
	mu     sync.RWMutex
	agents map[string]*Agent
}

// NewRegistry returns an empty agent registry.
func NewRegistry() *Registry {
	return &Registry{agents: make(map[string]*Agent)}
}

// Register binds an agent to an address (conventionally the device's
// management IP as a string). Re-registering replaces the agent.
func (r *Registry) Register(addr string, a *Agent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agents[addr] = a
}

// Unregister removes an address, modeling an agent going dark.
func (r *Registry) Unregister(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.agents, addr)
}

// Lookup returns the agent at addr, or nil.
func (r *Registry) Lookup(addr string) *Agent {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.agents[addr]
}

// InProc is a Transport that dispatches directly to a Registry with a
// modeled per-destination round-trip latency. Simulated campus networks
// with a thousand devices use it instead of real sockets.
type InProc struct {
	Registry *Registry

	// Latency models the round-trip time to an address. nil means a
	// constant 1ms.
	Latency func(addr string) time.Duration
}

// ErrTimeout is the error for unanswered requests (no agent, wrong
// community, or a real socket timing out).
var ErrTimeout = fmt.Errorf("snmp: request timed out")

// RoundTrip implements Transport.
func (t *InProc) RoundTrip(addr string, req []byte) ([]byte, time.Duration, error) {
	rtt := time.Millisecond
	if t.Latency != nil {
		rtt = t.Latency(addr)
	}
	a := t.Registry.Lookup(addr)
	if a == nil {
		return nil, rtt, ErrTimeout
	}
	resp := a.HandleBytes(req)
	if resp == nil {
		return nil, rtt, ErrTimeout
	}
	return resp, rtt, nil
}

// UDP is a Transport sending real SNMP datagrams. Addresses take the
// usual "host:port" form.
type UDP struct {
	// Timeout is the per-attempt read deadline; 0 means 2 seconds.
	Timeout time.Duration
}

// RoundTrip implements Transport over a fresh UDP socket per call.
func (t *UDP) RoundTrip(addr string, req []byte) ([]byte, time.Duration, error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	start := time.Now()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	if _, err := conn.Write(req); err != nil {
		return nil, 0, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, time.Since(start), ErrTimeout
		}
		return nil, time.Since(start), err
	}
	return buf[:n], time.Since(start), nil
}

// Server serves one agent over a real UDP socket, for live deployments and
// loopback integration tests.
type Server struct {
	Agent *Agent

	conn *net.UDPConn
	wg   sync.WaitGroup
}

// ListenAndServe binds the UDP address (e.g. "127.0.0.1:0") and serves
// until Close. It returns the bound address immediately; serving happens
// on a background goroutine.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return "", err
	}
	s.conn = conn
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 65535)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			req := make([]byte, n)
			copy(req, buf[:n])
			if resp := s.Agent.HandleBytes(req); resp != nil {
				conn.WriteToUDP(resp, peer)
			}
		}
	}()
	return conn.LocalAddr().String(), nil
}

// Close stops the server and waits for the serving goroutine.
func (s *Server) Close() error {
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
