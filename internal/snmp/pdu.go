package snmp

import "fmt"

// PDUType identifies the SNMP operation.
type PDUType byte

// PDU types (context-class BER tags).
const (
	GetRequest     PDUType = 0xA0
	GetNextRequest PDUType = 0xA1
	GetResponse    PDUType = 0xA2
	SetRequest     PDUType = 0xA3
	GetBulkRequest PDUType = 0xA5
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case GetRequest:
		return "GetRequest"
	case GetNextRequest:
		return "GetNextRequest"
	case GetResponse:
		return "Response"
	case SetRequest:
		return "SetRequest"
	case GetBulkRequest:
		return "GetBulkRequest"
	}
	return fmt.Sprintf("PDUType(0x%02x)", byte(t))
}

// SNMP error-status codes used here.
const (
	ErrStatusNoError  = 0
	ErrStatusTooBig   = 1
	ErrStatusGenErr   = 5
	ErrStatusAuthName = 16 // authorizationError
)

// VarBind pairs an OID with a value.
type VarBind struct {
	Name  OID
	Value Value
}

// PDU is one SNMP protocol data unit.
//
// For GetBulkRequest, ErrorStatus holds non-repeaters and ErrorIndex holds
// max-repetitions, per RFC 3416.
type PDU struct {
	Type        PDUType
	RequestID   int32
	ErrorStatus int
	ErrorIndex  int
	VarBinds    []VarBind
}

// Message is a community-string SNMP message (v2c).
type Message struct {
	Community string
	PDU       PDU
}

const snmpVersion2c = 1

// Marshal encodes the message in BER.
func (m *Message) Marshal() ([]byte, error) {
	var vbs []byte
	for _, vb := range m.PDU.VarBinds {
		nameBody, err := appendOIDBody(nil, vb.Name)
		if err != nil {
			return nil, err
		}
		entry := appendTLV(nil, tagOID, nameBody)
		entry, err = marshalValue(entry, vb.Value)
		if err != nil {
			return nil, err
		}
		vbs = appendTLV(vbs, tagSequence, entry)
	}
	var pdu []byte
	pdu = appendTLV(pdu, tagInteger, appendIntBody(nil, int64(m.PDU.RequestID)))
	pdu = appendTLV(pdu, tagInteger, appendIntBody(nil, int64(m.PDU.ErrorStatus)))
	pdu = appendTLV(pdu, tagInteger, appendIntBody(nil, int64(m.PDU.ErrorIndex)))
	pdu = appendTLV(pdu, tagSequence, vbs)

	var body []byte
	body = appendTLV(body, tagInteger, appendIntBody(nil, snmpVersion2c))
	body = appendTLV(body, tagOctetString, []byte(m.Community))
	body = appendTLV(body, byte(m.PDU.Type), pdu)
	return appendTLV(nil, tagSequence, body), nil
}

// Unmarshal decodes a BER message.
func Unmarshal(b []byte) (*Message, error) {
	r := &reader{b: b}
	tag, length, err := r.readTL()
	if err != nil {
		return nil, err
	}
	if tag != tagSequence {
		return nil, fmt.Errorf("snmp: message does not start with SEQUENCE (0x%02x)", tag)
	}
	inner, err := r.readBytes(length)
	if err != nil {
		return nil, err
	}
	r = &reader{b: inner}

	ver, err := r.unmarshalValue()
	if err != nil {
		return nil, err
	}
	if ver.Kind != KindInteger || ver.Int != snmpVersion2c {
		return nil, fmt.Errorf("snmp: unsupported version %v", ver)
	}
	comm, err := r.unmarshalValue()
	if err != nil {
		return nil, err
	}
	if comm.Kind != KindOctetString {
		return nil, fmt.Errorf("snmp: community is %v, want OctetString", comm.Kind)
	}

	ptag, plen, err := r.readTL()
	if err != nil {
		return nil, err
	}
	pbody, err := r.readBytes(plen)
	if err != nil {
		return nil, err
	}
	pr := &reader{b: pbody}
	msg := &Message{Community: string(comm.Bytes)}
	msg.PDU.Type = PDUType(ptag)
	switch msg.PDU.Type {
	case GetRequest, GetNextRequest, GetResponse, SetRequest, GetBulkRequest:
	default:
		return nil, fmt.Errorf("snmp: unsupported PDU type 0x%02x", ptag)
	}

	reqID, err := pr.unmarshalValue()
	if err != nil {
		return nil, err
	}
	errStat, err := pr.unmarshalValue()
	if err != nil {
		return nil, err
	}
	errIdx, err := pr.unmarshalValue()
	if err != nil {
		return nil, err
	}
	if reqID.Kind != KindInteger || errStat.Kind != KindInteger || errIdx.Kind != KindInteger {
		return nil, fmt.Errorf("snmp: malformed PDU header")
	}
	msg.PDU.RequestID = int32(reqID.Int)
	msg.PDU.ErrorStatus = int(errStat.Int)
	msg.PDU.ErrorIndex = int(errIdx.Int)

	vtag, vlen, err := pr.readTL()
	if err != nil {
		return nil, err
	}
	if vtag != tagSequence {
		return nil, fmt.Errorf("snmp: varbind list tag 0x%02x", vtag)
	}
	vbody, err := pr.readBytes(vlen)
	if err != nil {
		return nil, err
	}
	vr := &reader{b: vbody}
	for vr.remaining() > 0 {
		etag, elen, err := vr.readTL()
		if err != nil {
			return nil, err
		}
		if etag != tagSequence {
			return nil, fmt.Errorf("snmp: varbind tag 0x%02x", etag)
		}
		ebody, err := vr.readBytes(elen)
		if err != nil {
			return nil, err
		}
		er := &reader{b: ebody}
		name, err := er.unmarshalValue()
		if err != nil {
			return nil, err
		}
		if name.Kind != KindOID {
			return nil, fmt.Errorf("snmp: varbind name kind %v", name.Kind)
		}
		val, err := er.unmarshalValue()
		if err != nil {
			return nil, err
		}
		msg.PDU.VarBinds = append(msg.PDU.VarBinds, VarBind{Name: name.Oid, Value: val})
	}
	return msg, nil
}
