package snmp

import "fmt"

// PDUType identifies the SNMP operation.
type PDUType byte

// PDU types (context-class BER tags).
const (
	GetRequest     PDUType = 0xA0
	GetNextRequest PDUType = 0xA1
	GetResponse    PDUType = 0xA2
	SetRequest     PDUType = 0xA3
	GetBulkRequest PDUType = 0xA5
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case GetRequest:
		return "GetRequest"
	case GetNextRequest:
		return "GetNextRequest"
	case GetResponse:
		return "Response"
	case SetRequest:
		return "SetRequest"
	case GetBulkRequest:
		return "GetBulkRequest"
	}
	return fmt.Sprintf("PDUType(0x%02x)", byte(t))
}

// SNMP error-status codes used here.
const (
	ErrStatusNoError  = 0
	ErrStatusTooBig   = 1
	ErrStatusGenErr   = 5
	ErrStatusAuthName = 16 // authorizationError
)

// VarBind pairs an OID with a value.
type VarBind struct {
	Name  OID
	Value Value
}

// PDU is one SNMP protocol data unit.
//
// For GetBulkRequest, ErrorStatus holds non-repeaters and ErrorIndex holds
// max-repetitions, per RFC 3416.
type PDU struct {
	Type        PDUType
	RequestID   int32
	ErrorStatus int
	ErrorIndex  int
	VarBinds    []VarBind
}

// Message is a community-string SNMP message (v2c).
type Message struct {
	Community string
	PDU       PDU
}

const snmpVersion2c = 1

// marshalSize computes the BER sizes needed to encode m in a single pass:
// the total message size plus the interior pdu and varbind-list content
// lengths that AppendMarshal needs when writing headers front-to-back.
// It also validates every varbind, so AppendMarshal cannot fail.
func (m *Message) marshalSize() (total, pduLen, vbsLen int, err error) {
	for i := range m.PDU.VarBinds {
		vb := &m.PDU.VarBinds[i]
		if err := checkOID(vb.Name); err != nil {
			return 0, 0, 0, err
		}
		vsz, err := sizeValue(vb.Value)
		if err != nil {
			return 0, 0, 0, err
		}
		vbsLen += sizeTLV(sizeTLV(sizeOIDBody(vb.Name)) + vsz)
	}
	pduLen = sizeTLV(sizeIntBody(int64(m.PDU.RequestID))) +
		sizeTLV(sizeIntBody(int64(m.PDU.ErrorStatus))) +
		sizeTLV(sizeIntBody(int64(m.PDU.ErrorIndex))) +
		sizeTLV(vbsLen)
	bodyLen := sizeTLV(sizeIntBody(snmpVersion2c)) +
		sizeTLV(len(m.Community)) +
		sizeTLV(pduLen)
	return sizeTLV(bodyLen), pduLen, vbsLen, nil
}

// AppendMarshal BER-encodes the message onto dst and returns the extended
// slice. When dst has sufficient capacity no allocation occurs: lengths are
// computed in a sizing pass, then every tag, length, and body is appended
// directly — no intermediate per-TLV buffers.
func (m *Message) AppendMarshal(dst []byte) ([]byte, error) {
	total, pduLen, vbsLen, err := m.marshalSize()
	if err != nil {
		return nil, err
	}
	if cap(dst)-len(dst) < total {
		grown := make([]byte, len(dst), len(dst)+total)
		copy(grown, dst)
		dst = grown
	}
	bodyLen := sizeTLV(sizeIntBody(snmpVersion2c)) +
		sizeTLV(len(m.Community)) +
		sizeTLV(pduLen)
	dst = appendHeader(dst, tagSequence, bodyLen)
	dst = appendHeader(dst, tagInteger, sizeIntBody(snmpVersion2c))
	dst = appendIntBody(dst, snmpVersion2c)
	dst = appendHeader(dst, tagOctetString, len(m.Community))
	dst = append(dst, m.Community...)
	dst = appendHeader(dst, byte(m.PDU.Type), pduLen)
	dst = appendHeader(dst, tagInteger, sizeIntBody(int64(m.PDU.RequestID)))
	dst = appendIntBody(dst, int64(m.PDU.RequestID))
	dst = appendHeader(dst, tagInteger, sizeIntBody(int64(m.PDU.ErrorStatus)))
	dst = appendIntBody(dst, int64(m.PDU.ErrorStatus))
	dst = appendHeader(dst, tagInteger, sizeIntBody(int64(m.PDU.ErrorIndex)))
	dst = appendIntBody(dst, int64(m.PDU.ErrorIndex))
	dst = appendHeader(dst, tagSequence, vbsLen)
	for i := range m.PDU.VarBinds {
		vb := &m.PDU.VarBinds[i]
		nameLen := sizeOIDBody(vb.Name)
		vsz, _ := sizeValue(vb.Value) // validated by marshalSize
		dst = appendHeader(dst, tagSequence, sizeTLV(nameLen)+vsz)
		dst = appendHeader(dst, tagOID, nameLen)
		dst = appendOIDBody(dst, vb.Name)
		dst = appendValue(dst, vb.Value)
	}
	return dst, nil
}

// Marshal encodes the message in BER, allocating exactly one buffer of the
// final size.
func (m *Message) Marshal() ([]byte, error) {
	total, _, _, err := m.marshalSize()
	if err != nil {
		return nil, err
	}
	return m.AppendMarshal(make([]byte, 0, total))
}

// peekRequestID extracts the PDU type and request-id from an encoded
// message without a full decode, for matching pipelined responses to their
// outstanding requests. ok is false if b is not a parseable message prefix.
func peekRequestID(b []byte) (PDUType, int32, bool) {
	r := reader{b: b}
	tag, length, err := r.readTL()
	if err != nil || tag != tagSequence {
		return 0, 0, false
	}
	inner, err := r.readBytes(length)
	if err != nil {
		return 0, 0, false
	}
	r = reader{b: inner}
	if ver, err := r.unmarshalValue(); err != nil || ver.Kind != KindInteger {
		return 0, 0, false
	}
	if comm, err := r.unmarshalValue(); err != nil || comm.Kind != KindOctetString {
		return 0, 0, false
	}
	ptag, _, err := r.readTL()
	if err != nil {
		return 0, 0, false
	}
	pr := reader{b: r.b[r.i:]}
	reqID, err := pr.unmarshalValue()
	if err != nil || reqID.Kind != KindInteger {
		return 0, 0, false
	}
	return PDUType(ptag), int32(reqID.Int), true
}

// Unmarshal decodes a BER message. The varbind slice is preallocated at its
// exact final length by pre-scanning the varbind list's TLV headers.
func Unmarshal(b []byte) (*Message, error) {
	r := reader{b: b}
	tag, length, err := r.readTL()
	if err != nil {
		return nil, err
	}
	if tag != tagSequence {
		return nil, fmt.Errorf("snmp: message does not start with SEQUENCE (0x%02x)", tag)
	}
	inner, err := r.readBytes(length)
	if err != nil {
		return nil, err
	}
	r = reader{b: inner}

	ver, err := r.unmarshalValue()
	if err != nil {
		return nil, err
	}
	if ver.Kind != KindInteger || ver.Int != snmpVersion2c {
		return nil, fmt.Errorf("snmp: unsupported version %v", ver)
	}
	comm, err := r.unmarshalValue()
	if err != nil {
		return nil, err
	}
	if comm.Kind != KindOctetString {
		return nil, fmt.Errorf("snmp: community is %v, want OctetString", comm.Kind)
	}

	ptag, plen, err := r.readTL()
	if err != nil {
		return nil, err
	}
	pbody, err := r.readBytes(plen)
	if err != nil {
		return nil, err
	}
	pr := reader{b: pbody}
	msg := &Message{Community: string(comm.Bytes)}
	msg.PDU.Type = PDUType(ptag)
	switch msg.PDU.Type {
	case GetRequest, GetNextRequest, GetResponse, SetRequest, GetBulkRequest:
	default:
		return nil, fmt.Errorf("snmp: unsupported PDU type 0x%02x", ptag)
	}

	reqID, err := pr.unmarshalValue()
	if err != nil {
		return nil, err
	}
	errStat, err := pr.unmarshalValue()
	if err != nil {
		return nil, err
	}
	errIdx, err := pr.unmarshalValue()
	if err != nil {
		return nil, err
	}
	if reqID.Kind != KindInteger || errStat.Kind != KindInteger || errIdx.Kind != KindInteger {
		return nil, fmt.Errorf("snmp: malformed PDU header")
	}
	msg.PDU.RequestID = int32(reqID.Int)
	msg.PDU.ErrorStatus = int(errStat.Int)
	msg.PDU.ErrorIndex = int(errIdx.Int)

	vtag, vlen, err := pr.readTL()
	if err != nil {
		return nil, err
	}
	if vtag != tagSequence {
		return nil, fmt.Errorf("snmp: varbind list tag 0x%02x", vtag)
	}
	vbody, err := pr.readBytes(vlen)
	if err != nil {
		return nil, err
	}
	// Pre-scan the list's entry headers to size the slice exactly.
	count := 0
	for sc := (reader{b: vbody}); sc.remaining() > 0; count++ {
		_, elen, err := sc.readTL()
		if err != nil {
			return nil, err
		}
		if _, err := sc.readBytes(elen); err != nil {
			return nil, err
		}
	}
	msg.PDU.VarBinds = make([]VarBind, 0, count)
	vr := reader{b: vbody}
	for vr.remaining() > 0 {
		etag, elen, err := vr.readTL()
		if err != nil {
			return nil, err
		}
		if etag != tagSequence {
			return nil, fmt.Errorf("snmp: varbind tag 0x%02x", etag)
		}
		ebody, err := vr.readBytes(elen)
		if err != nil {
			return nil, err
		}
		er := reader{b: ebody}
		name, err := er.unmarshalValue()
		if err != nil {
			return nil, err
		}
		if name.Kind != KindOID {
			return nil, fmt.Errorf("snmp: varbind name kind %v", name.Kind)
		}
		val, err := er.unmarshalValue()
		if err != nil {
			return nil, err
		}
		msg.PDU.VarBinds = append(msg.PDU.VarBinds, VarBind{Name: name.Oid, Value: val})
	}
	return msg, nil
}
