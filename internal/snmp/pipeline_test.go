package snmp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPipelinedConcurrentGets(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	c.Pipeline = 4
	c.Meter = &Meter{}
	reg.Register("a", &Agent{Community: "public", View: testView(t)})

	oids := []string{
		"1.3.6.1.2.1.2.2.1.10.1",
		"1.3.6.1.2.1.2.2.1.10.2",
		"1.3.6.1.2.1.2.2.1.10.10",
		"1.3.6.1.2.1.2.2.1.16.1",
	}
	want := []int64{100, 200, 1000, 111}
	var wg sync.WaitGroup
	errs := make([]error, len(oids))
	for i := range oids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOne("a", MustParseOID(oids[i]))
			if err != nil {
				errs[i] = err
				return
			}
			if v.Int != want[i] {
				errs[i] = fmt.Errorf("oid %s = %d, want %d", oids[i], v.Int, want[i])
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	reqs, vbs, _ := c.Meter.Counts()
	if reqs != len(oids) || vbs != len(oids) {
		t.Fatalf("meter = %d requests / %d varbinds, want %d / %d", reqs, vbs, len(oids), len(oids))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// reorderSession answers requests synchronously but withholds delivery
// until `hold` responses have accumulated, then releases them in reverse
// send order — the adversarial schedule for RequestID matching.
type reorderSession struct {
	agent *Agent
	hold  int

	mu      sync.Mutex
	pending []inprocResult
	out     chan inprocResult
	done    chan struct{}
	once    sync.Once
}

type reorderTransport struct {
	inner InProc
	hold  int
}

func (t *reorderTransport) RoundTrip(addr string, req []byte) ([]byte, time.Duration, error) {
	return t.inner.RoundTrip(addr, req)
}

func (t *reorderTransport) OpenSession(addr string) (Session, error) {
	return &reorderSession{
		agent: t.inner.Registry.Lookup(addr),
		hold:  t.hold,
		out:   make(chan inprocResult, t.hold),
		done:  make(chan struct{}),
	}, nil
}

func (s *reorderSession) Send(reqID int32, req []byte) error {
	resp := s.agent.HandleBytes(req)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, inprocResult{reqID: reqID, resp: resp, rtt: time.Millisecond})
	if len(s.pending) >= s.hold {
		for i := len(s.pending) - 1; i >= 0; i-- {
			s.out <- s.pending[i]
		}
		s.pending = nil
	}
	return nil
}

func (s *reorderSession) Recv() (int32, []byte, time.Duration, error) {
	select {
	case r := <-s.out:
		return r.reqID, r.resp, r.rtt, r.err
	case <-s.done:
		return 0, nil, 0, ErrClosed
	}
}

func (s *reorderSession) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}

func TestPipelinedReorderedResponses(t *testing.T) {
	reg := NewRegistry()
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	tr := &reorderTransport{inner: InProc{Registry: reg}, hold: 2}
	c := NewClient(tr, "public")
	c.Pipeline = 2
	defer c.Close()

	// Two concurrent Gets; the session delivers the second response first.
	// Each caller must still receive its own value.
	type res struct {
		v   Value
		err error
	}
	results := make([]res, 2)
	oids := []string{"1.3.6.1.2.1.2.2.1.10.1", "1.3.6.1.2.1.2.2.1.10.2"}
	want := []int64{100, 200}
	var wg sync.WaitGroup
	for i := range oids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOne("a", MustParseOID(oids[i]))
			results[i] = res{v, err}
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i].err != nil {
			t.Fatal(results[i].err)
		}
		if results[i].v.Int != want[i] {
			t.Fatalf("oid %s answered %d, want %d (responses crossed)", oids[i], results[i].v.Int, want[i])
		}
	}
}

func TestPipelinedTimeoutMetersAttempts(t *testing.T) {
	c, _ := newInProcClient(t, "public") // no agent registered: every attempt times out
	c.Pipeline = 2
	c.Retries = 2
	c.Meter = &Meter{}
	defer c.Close()
	_, err := c.Get("10.9.9.9", MustParseOID("1.3.6.1.2.1.1.1.0"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	reqs, _, _ := c.Meter.Counts()
	if reqs != 3 {
		t.Fatalf("meter counted %d attempts, want 3 (1 + 2 retries)", reqs)
	}
}

func TestPipelinedClientClose(t *testing.T) {
	c, reg := newInProcClient(t, "public")
	c.Pipeline = 2
	reg.Register("a", &Agent{Community: "public", View: testView(t)})
	if _, err := c.Get("a", MustParseOID("1.3.6.1.2.1.1.1.0")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a", MustParseOID("1.3.6.1.2.1.1.1.0")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

func TestPipelinedUDPEndToEnd(t *testing.T) {
	srv := &Server{Agent: &Agent{Community: "public", View: testView(t)}}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(&UDP{Timeout: 2 * time.Second}, "public")
	c.Pipeline = 4
	defer c.Close()

	oids := []string{
		"1.3.6.1.2.1.2.2.1.10.1",
		"1.3.6.1.2.1.2.2.1.10.2",
		"1.3.6.1.2.1.2.2.1.10.10",
		"1.3.6.1.2.1.2.2.1.16.1",
	}
	want := []int64{100, 200, 1000, 111}
	var wg sync.WaitGroup
	errs := make([]error, len(oids)*2)
	for round := 0; round < 2; round++ {
		for i := range oids {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				v, err := c.GetOne(addr, MustParseOID(oids[i]))
				if err != nil {
					errs[slot] = err
					return
				}
				if v.Int != want[i] {
					errs[slot] = fmt.Errorf("oid %s = %d, want %d", oids[i], v.Int, want[i])
				}
			}(round*len(oids)+i, i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
