package snmp

import "sort"

// StaticView is a MIBView over a fixed set of bindings, useful for tests
// and for agents whose contents change rarely (rebuild and swap).
type StaticView struct {
	entries []VarBind // sorted by Name
}

// NewStaticView builds a view from OID-string keyed values.
func NewStaticView(binds map[string]Value) (*StaticView, error) {
	v := &StaticView{}
	for k, val := range binds {
		o, err := ParseOID(k)
		if err != nil {
			return nil, err
		}
		v.entries = append(v.entries, VarBind{Name: o, Value: val})
	}
	sort.Slice(v.entries, func(i, j int) bool {
		return v.entries[i].Name.Cmp(v.entries[j].Name) < 0
	})
	return v, nil
}

// Get implements MIBView.
func (v *StaticView) Get(oid OID) (Value, bool) {
	i := sort.Search(len(v.entries), func(i int) bool {
		return v.entries[i].Name.Cmp(oid) >= 0
	})
	if i < len(v.entries) && v.entries[i].Name.Cmp(oid) == 0 {
		return v.entries[i].Value, true
	}
	return Value{}, false
}

// Next implements MIBView.
func (v *StaticView) Next(oid OID) (OID, Value, bool) {
	i := sort.Search(len(v.entries), func(i int) bool {
		return v.entries[i].Name.Cmp(oid) > 0
	})
	if i < len(v.entries) {
		return v.entries[i].Name, v.entries[i].Value, true
	}
	return nil, Value{}, false
}
