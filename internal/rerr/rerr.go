// Package rerr defines the Remos query-path error taxonomy. The public
// API (package remos) re-exports these sentinels; every layer of the
// query path — modeler, master, collectors, wire protocols — tags its
// failures with one of them so callers can program against
// errors.Is(err, remos.ErrCollectorUnavailable) instead of matching
// strings, and so the wire protocols can round-trip the class of a
// failure instead of flattening it to text.
package rerr

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// The query-path error classes. Each carries a stable wire code so both
// protocols (ASCII/TCP and XML/HTTP) preserve the class across process
// boundaries.
var (
	// ErrNoRoute: the topology holds no path between the queried hosts.
	ErrNoRoute = errors.New("no route between the queried hosts")
	// ErrUnknownHost: no collector is responsible for a queried host.
	ErrUnknownHost = errors.New("unknown host: no collector is responsible")
	// ErrCollectorUnavailable: a collector that should have answered
	// could not be reached or failed.
	ErrCollectorUnavailable = errors.New("collector unavailable")
	// ErrTimeout: the query ran out of time (SNMP exchange, wire
	// protocol round trip, or context deadline).
	ErrTimeout = errors.New("query timed out")
	// ErrOverloaded: the server's admission layer shed the request —
	// rate limit, concurrency cap, quota, or queue overflow. The error
	// may carry a retry-after hint; see RetryAfter.
	ErrOverloaded = errors.New("server overloaded")
	// ErrUnauthenticated: the presented tenant credentials were not
	// accepted by the server's admission layer.
	ErrUnauthenticated = errors.New("unauthenticated tenant")
)

// tagged attaches a sentinel class to an underlying error without
// disturbing either chain: Error() reports the underlying message, and
// errors.Is/As see both the cause and the class.
type tagged struct {
	err      error
	sentinel error
}

func (t *tagged) Error() string   { return t.err.Error() }
func (t *tagged) Unwrap() []error { return []error{t.err, t.sentinel} }

// Tag classifies err under sentinel. A nil err returns nil; tagging with
// a class the error already carries is a no-op.
func Tag(err, sentinel error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, sentinel) {
		return err
	}
	return &tagged{err: err, sentinel: sentinel}
}

// Tagf builds a classified error with a formatted message, wrapping any
// %w operands as usual.
func Tagf(sentinel error, format string, args ...any) error {
	return Tag(fmt.Errorf(format, args...), sentinel)
}

// The wire codes. Unknown or unclassified errors travel with no code and
// decode as plain errors, so old peers interoperate.
const (
	CodeNoRoute         = "NO_ROUTE"
	CodeUnknownHost     = "UNKNOWN_HOST"
	CodeUnavailable     = "UNAVAILABLE"
	CodeTimeout         = "TIMEOUT"
	CodeCanceled        = "CANCELED"
	CodeOverloaded      = "OVERLOADED"
	CodeUnauthenticated = "UNAUTHENTICATED"
)

// codes orders the classification from most to least specific: an error
// can carry several classes (a timeout while reaching a collector), and
// the first match is the one that travels.
var codes = []struct {
	code     string
	sentinel error
}{
	{CodeNoRoute, ErrNoRoute},
	{CodeUnknownHost, ErrUnknownHost},
	{CodeOverloaded, ErrOverloaded},
	{CodeUnauthenticated, ErrUnauthenticated},
	{CodeTimeout, ErrTimeout},
	{CodeCanceled, context.Canceled},
	{CodeUnavailable, ErrCollectorUnavailable},
}

// Code maps an error to its wire code, or "" for unclassified errors.
// Context errors are first-class: a deadline maps to TIMEOUT and a
// cancellation to CANCELED even when no layer tagged them.
func Code(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return CodeTimeout
	}
	for _, c := range codes {
		if errors.Is(err, c.sentinel) {
			return c.code
		}
	}
	return ""
}

// Known reports whether code is one of the defined wire codes — how the
// ASCII protocol tells a code token from the first word of an old-style
// untyped error message.
func Known(code string) bool {
	for _, c := range codes {
		if c.code == code {
			return true
		}
	}
	return false
}

// FromCode rebuilds a classified error from a wire code and message, so
// errors.Is holds on the receiving side of a protocol exchange. An
// unknown or empty code yields a plain error carrying just the message.
func FromCode(code, msg string) error {
	err := errors.New(msg)
	for _, c := range codes {
		if c.code == code {
			return Tag(err, c.sentinel)
		}
	}
	return err
}

// retryAfterError decorates an error with a retry-after hint without
// disturbing its chain. The admission layer attaches hints to its
// ErrOverloaded sheds, and the wire protocols round-trip them (the
// ASCII RETRY= token, the X-Remos-Retry-After header).
type retryAfterError struct {
	err error
	d   time.Duration
}

func (r *retryAfterError) Error() string { return r.err.Error() }
func (r *retryAfterError) Unwrap() error { return r.err }

// WithRetryAfter attaches a retry-after hint to err. Non-positive hints
// and nil errors pass through unchanged.
func WithRetryAfter(err error, d time.Duration) error {
	if err == nil || d <= 0 {
		return err
	}
	return &retryAfterError{err: err, d: d}
}

// RetryAfter extracts the retry-after hint carried by err, if any. A
// shed caller should back off for at least the hinted duration before
// retrying:
//
//	if d, ok := rerr.RetryAfter(err); ok { sleep(d); retry() }
func RetryAfter(err error) (time.Duration, bool) {
	var r *retryAfterError
	if errors.As(err, &r) {
		return r.d, true
	}
	return 0, false
}
