package rerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTagPreservesBothChains(t *testing.T) {
	base := errors.New("dial tcp: connection refused")
	err := Tagf(ErrCollectorUnavailable, "master: site a: %w", base)
	if !errors.Is(err, ErrCollectorUnavailable) {
		t.Fatal("class lost")
	}
	if !errors.Is(err, base) {
		t.Fatal("cause lost")
	}
	if got := err.Error(); got != "master: site a: dial tcp: connection refused" {
		t.Fatalf("message = %q", got)
	}
}

func TestTagIdempotent(t *testing.T) {
	err := Tag(errors.New("x"), ErrTimeout)
	if again := Tag(err, ErrTimeout); again != err {
		t.Fatal("re-tagging wrapped again")
	}
	if Tag(nil, ErrTimeout) != nil {
		t.Fatal("nil must stay nil")
	}
}

func TestCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{Tagf(ErrNoRoute, "no path"), CodeNoRoute},
		{Tagf(ErrUnknownHost, "who is 10.0.0.9"), CodeUnknownHost},
		{Tagf(ErrCollectorUnavailable, "down"), CodeUnavailable},
		{Tagf(ErrOverloaded, "bucket empty"), CodeOverloaded},
		{Tagf(ErrUnauthenticated, "bad key"), CodeUnauthenticated},
		{Tagf(ErrTimeout, "slow"), CodeTimeout},
		{fmt.Errorf("wrapped: %w", context.Canceled), CodeCanceled},
		{context.DeadlineExceeded, CodeTimeout},
		{errors.New("anything else"), ""},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.code {
			t.Errorf("Code(%v) = %q, want %q", c.err, got, c.code)
		}
		if c.code == "" {
			continue
		}
		back := FromCode(c.code, c.err.Error())
		if Code(back) != c.code {
			t.Errorf("FromCode(%q) does not map back", c.code)
		}
		if back.Error() != c.err.Error() {
			t.Errorf("FromCode message = %q, want %q", back.Error(), c.err.Error())
		}
	}
}

func TestCodePrecedence(t *testing.T) {
	// A timeout reaching a collector is a TIMEOUT, the more specific class.
	err := Tag(Tagf(ErrTimeout, "snmp: 10.0.0.1: timed out"), ErrCollectorUnavailable)
	if got := Code(err); got != CodeTimeout {
		t.Fatalf("Code = %q, want TIMEOUT", got)
	}
}

func TestRetryAfter(t *testing.T) {
	base := Tagf(ErrOverloaded, "tenant bulk out of tokens")
	err := WithRetryAfter(base, 150*time.Millisecond)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("class lost through the retry-after carrier")
	}
	if err.Error() != base.Error() {
		t.Fatalf("message changed: %q", err.Error())
	}
	d, ok := RetryAfter(err)
	if !ok || d != 150*time.Millisecond {
		t.Fatalf("RetryAfter = %v, %t", d, ok)
	}
	// The hint survives further wrapping.
	d, ok = RetryAfter(fmt.Errorf("query failed: %w", err))
	if !ok || d != 150*time.Millisecond {
		t.Fatalf("RetryAfter through wrap = %v, %t", d, ok)
	}
	if _, ok := RetryAfter(base); ok {
		t.Fatal("hint invented on a bare error")
	}
	if WithRetryAfter(nil, time.Second) != nil {
		t.Fatal("nil must stay nil")
	}
	if got := WithRetryAfter(base, 0); got != base {
		t.Fatal("non-positive hint must pass through unchanged")
	}
}

func TestFromCodeUnknown(t *testing.T) {
	err := FromCode("SOMETHING_NEW", "future failure")
	if err == nil || err.Error() != "future failure" {
		t.Fatalf("err = %v", err)
	}
	if Code(err) != "" {
		t.Fatal("unknown code must decode unclassified")
	}
}
