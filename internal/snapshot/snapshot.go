// Package snapshot is the versioned topology snapshot plane: an
// immutable topology+metrics generation maintained incrementally from
// background poll completions (internal/sched) and swapped in via
// atomic.Pointer, the same copy-on-write discipline the warm-query
// cache uses. The Modeler answers topology and flow queries from the
// current generation when it is fresh enough — zero collector
// round-trips, zero graph clones — and falls back to collector fan-out
// only on miss or staleness, with overlapping cold queries single-flight
// coalesced by merged host set so N clients asking about the same
// region trigger one walk.
//
// Each generation (an Epoch) carries the merged graph, per-host
// freshness stamps, an address index, and a topology.PathIndex whose
// memoized BFS trees and reduced-capacity max-min make flow answers
// O(path length) instead of O(graph size). Derived structures keyed by
// epoch — the pruned/collapsed subgraph memo — are evicted on every
// epoch swap, the invariant remoslint's epochkey check enforces.
package snapshot

import (
	"context"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
	"remos/internal/topology"
)

// Epoch numbers snapshot generations. Every Apply produces a new epoch;
// derived state keyed by an Epoch is only valid while that generation
// is current and must be evicted when it is superseded.
type Epoch uint64

// Snapshot is one immutable generation. All fields are frozen at Apply
// time; readers share the struct without synchronization.
type Snapshot struct {
	epoch  Epoch
	graph  *topology.Graph
	paths  *topology.PathIndex
	byAddr map[string]string // host address -> node ID
	hostAt map[netip.Addr]time.Time
	at     time.Time // most recent apply folded in
}

// Epoch returns the generation number.
func (s *Snapshot) Epoch() Epoch { return s.epoch }

// Graph returns the generation's merged graph. It is shared and must
// not be mutated; use Clone (or Store.Subgraph) for a caller-owned copy.
func (s *Snapshot) Graph() *topology.Graph { return s.graph }

// Paths returns the generation's path index.
func (s *Snapshot) Paths() *topology.PathIndex { return s.paths }

// At returns the time of the apply that produced this generation.
func (s *Snapshot) At() time.Time { return s.at }

// NodeID resolves a host address to its node ID in the generation's
// graph ("" if unknown), via the index built at apply time — O(1) where
// Graph.NodeByAddr scans.
func (s *Snapshot) NodeID(addr netip.Addr) string { return s.byAddr[addr.String()] }

// FreshFor reports whether every given host was refreshed within bound
// of now. A host never applied is never fresh.
func (s *Snapshot) FreshFor(hosts []netip.Addr, bound time.Duration, now time.Time) bool {
	for _, h := range hosts {
		at, ok := s.hostAt[h]
		if !ok || now.Sub(at) > bound {
			return false
		}
	}
	return true
}

// Config wires a Store.
type Config struct {
	// Now supplies the clock (the deployment's sim clock in tests and
	// benchmarks, wall time in remosd). Required.
	Now func() time.Time
	// Obs, when set, receives the snapshot_* metrics.
	Obs *obs.Registry
}

// Store maintains the current generation and its derived-state memos.
// All methods are safe for concurrent use; readers of Current never
// block writers and vice versa.
type Store struct {
	now func() time.Time
	cur atomic.Pointer[Snapshot]

	applyMu sync.Mutex // serializes Apply (epoch construction + swap)

	subMu sync.Mutex
	subs  map[subKey]*topology.Graph // epoch-keyed; evicted on swap

	flightMu sync.Mutex
	inflight *flight
	pending  *flight

	mApplies    *obs.Counter
	mHits       *obs.Counter
	mMisses     *obs.Counter
	mRefreshes  *obs.Counter
	mRefreshErr *obs.Counter
	mCoalesced  *obs.Counter
	mSubHits    *obs.Counter
	mSubBuilds  *obs.Counter
	gEpoch      *obs.Gauge
}

// subKey identifies one memoized pruned/collapsed subgraph: the
// generation it was derived from and the canonical endpoint-set
// signature (sorted node IDs joined by commas).
type subKey struct {
	epoch Epoch
	sig   string
}

// flight is one in-progress coalesced collector walk.
type flight struct {
	hosts map[netip.Addr]bool
	done  chan struct{}
	snap  *Snapshot
	err   error
}

// New creates an empty store.
func New(cfg Config) *Store {
	st := &Store{
		now:  cfg.Now,
		subs: make(map[subKey]*topology.Graph),
	}
	if st.now == nil {
		st.now = time.Now //remoslint:allow wallclock designated nil-Now fallback for production construction
	}
	st.mApplies = cfg.Obs.Counter("remos_snapshot_applies_total", "poll results folded into the snapshot plane")
	st.mHits = cfg.Obs.Counter("remos_snapshot_hits_total", "queries answered from a fresh snapshot")
	st.mMisses = cfg.Obs.Counter("remos_snapshot_misses_total", "queries that found no fresh-enough snapshot")
	st.mRefreshes = cfg.Obs.Counter("remos_snapshot_refreshes_total", "coalesced collector walks launched on snapshot miss")
	st.mRefreshErr = cfg.Obs.Counter("remos_snapshot_refresh_errors_total", "coalesced collector walks that failed")
	st.mCoalesced = cfg.Obs.Counter("remos_snapshot_coalesced_total", "cold queries that joined an in-flight walk instead of launching one")
	st.mSubHits = cfg.Obs.Counter("remos_snapshot_subgraph_hits_total", "simplified-subgraph memo hits")
	st.mSubBuilds = cfg.Obs.Counter("remos_snapshot_subgraph_builds_total", "simplified subgraphs computed and memoized")
	st.gEpoch = cfg.Obs.Gauge("remos_snapshot_epoch", "current snapshot generation number")
	return st
}

// Current returns the latest generation, or nil before the first Apply.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Fresh returns the current generation if every host is within bound of
// the store's clock, else nil. It records the hit/miss metrics, so call
// it once per query decision.
func (st *Store) Fresh(hosts []netip.Addr, bound time.Duration) *Snapshot {
	s := st.cur.Load()
	if s == nil || bound <= 0 || !s.FreshFor(hosts, bound, st.now()) {
		st.mMisses.Inc()
		return nil
	}
	st.mHits.Inc()
	return s
}

// Apply folds one poll result into a new generation: the previous graph
// is cloned, the result is merged latest-wins (topology.Update), the
// polled hosts' freshness stamps advance, and the new Snapshot — with a
// fresh PathIndex and address index — is swapped in atomically. Derived
// memos of superseded epochs are evicted. Returns the new generation.
func (st *Store) Apply(hosts []netip.Addr, res *collector.Result, at time.Time) *Snapshot {
	if res == nil || res.Graph == nil {
		return st.cur.Load()
	}
	st.applyMu.Lock()
	old := st.cur.Load()
	var g *topology.Graph
	var hostAt map[netip.Addr]time.Time
	var epoch Epoch
	if old != nil {
		g = old.graph.Clone()
		hostAt = make(map[netip.Addr]time.Time, len(old.hostAt)+len(hosts))
		for h, t := range old.hostAt {
			hostAt[h] = t
		}
		epoch = old.epoch + 1
	} else {
		g = topology.NewGraph()
		hostAt = make(map[netip.Addr]time.Time, len(hosts))
		epoch = 1
	}
	g.Update(res.Graph)
	for _, h := range hosts {
		hostAt[h] = at
	}
	byAddr := make(map[string]string, len(g.Nodes()))
	for _, n := range g.Nodes() {
		if n.Addr != "" {
			byAddr[n.Addr] = n.ID
		}
	}
	snap := &Snapshot{
		epoch: epoch, graph: g, paths: topology.NewPathIndex(g),
		byAddr: byAddr, hostAt: hostAt, at: at,
	}
	st.cur.Store(snap)
	st.applyMu.Unlock()

	// Evict derived state of superseded epochs: an epoch-keyed map must
	// shrink on swap or it grows one orphaned family per poll.
	st.subMu.Lock()
	for k := range st.subs {
		if k.epoch != epoch {
			delete(st.subs, k)
		}
	}
	st.subMu.Unlock()

	st.mApplies.Inc()
	st.gEpoch.Set(float64(epoch))
	return snap
}

// Subgraph returns the pruned + collapsed simplification of the
// generation's graph for the given endpoint node IDs, memoized per
// (epoch, endpoint-set signature). The returned graph is a private
// clone the caller owns.
func (st *Store) Subgraph(s *Snapshot, ids []string, keepSwitches bool) (*topology.Graph, error) {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	sig := strings.Join(sorted, ",")
	if keepSwitches {
		sig = "ks|" + sig
	}
	key := subKey{epoch: s.epoch, sig: sig}
	st.subMu.Lock()
	g, ok := st.subs[key]
	st.subMu.Unlock()
	if ok {
		st.mSubHits.Inc()
		return g.Clone(), nil
	}
	pruned, err := s.graph.Prune(ids)
	if err != nil {
		return nil, err
	}
	if !keepSwitches {
		pruned.CollapseSwitchClouds("vswitch")
	}
	protect := make(map[string]bool, len(ids))
	for _, id := range ids {
		protect[id] = true
	}
	pruned.CollapseChains(protect)
	st.subMu.Lock()
	// Memoize only while the epoch is still current; a stale fill would
	// linger until the next swap's evict pass.
	if st.cur.Load() == s {
		st.subs[key] = pruned
	}
	st.subMu.Unlock()
	st.mSubBuilds.Inc()
	return pruned.Clone(), nil
}

// Refresh performs a coalesced collector walk covering hosts and
// applies the result, returning the resulting generation. Concurrent
// callers share walks: a caller whose hosts are covered by the walk in
// flight joins it; otherwise its hosts merge into the next walk, which
// one merged caller leads once the current one lands. Each waiter still
// honors its own context. On error the caller should fall back to a
// direct collect — the flight's failure is shared, its fallback is not.
func (st *Store) Refresh(ctx context.Context, coll collector.Interface, hosts []netip.Addr) (*Snapshot, error) {
	for {
		st.flightMu.Lock()
		if f := st.inflight; f != nil {
			if coveredBy(hosts, f.hosts) {
				st.flightMu.Unlock()
				st.mCoalesced.Inc()
				select {
				case <-f.done:
					return f.snap, f.err
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			// Not covered: merge into the accumulating next walk and
			// wait for the current one to land, then loop — either
			// another merged caller has become the leader (we are
			// covered by the new inflight) or we lead it ourselves.
			if st.pending == nil {
				st.pending = &flight{hosts: make(map[netip.Addr]bool, len(hosts)), done: make(chan struct{})}
			}
			for _, h := range hosts {
				st.pending.hosts[h] = true
			}
			st.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		}
		// No walk in flight: lead one, absorbing any accumulated batch.
		f := st.pending
		st.pending = nil
		if f == nil {
			f = &flight{hosts: make(map[netip.Addr]bool, len(hosts)), done: make(chan struct{})}
		}
		for _, h := range hosts {
			f.hosts[h] = true
		}
		st.inflight = f
		st.flightMu.Unlock()

		st.mRefreshes.Inc()
		merged := make([]netip.Addr, 0, len(f.hosts))
		for h := range f.hosts {
			merged = append(merged, h)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].Less(merged[j]) })
		res, err := coll.Collect(collector.Query{Hosts: merged}.WithContext(ctx))
		var snap *Snapshot
		if err != nil {
			st.mRefreshErr.Inc()
		} else {
			snap = st.Apply(merged, res, st.now())
		}
		st.flightMu.Lock()
		f.snap, f.err = snap, err
		st.inflight = nil
		st.flightMu.Unlock()
		close(f.done)
		return snap, err
	}
}

// coveredBy reports whether every host is in set.
func coveredBy(hosts []netip.Addr, set map[netip.Addr]bool) bool {
	for _, h := range hosts {
		if !set[h] {
			return false
		}
	}
	return true
}
