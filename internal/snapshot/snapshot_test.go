package snapshot

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/topology"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// dumbbell builds the standard two-site test graph.
func dumbbell() *topology.Graph {
	g := topology.NewGraph()
	for _, n := range []topology.Node{
		{ID: "10.0.1.1", Kind: topology.HostNode, Addr: "10.0.1.1"},
		{ID: "10.0.1.2", Kind: topology.HostNode, Addr: "10.0.1.2"},
		{ID: "10.0.2.1", Kind: topology.HostNode, Addr: "10.0.2.1"},
		{ID: "s1", Kind: topology.SwitchNode},
		{ID: "r1", Kind: topology.RouterNode},
		{ID: "r2", Kind: topology.RouterNode},
	} {
		g.AddNode(n)
	}
	links := []topology.Link{
		{From: "10.0.1.1", To: "s1", Capacity: 100e6, Latency: time.Millisecond},
		{From: "10.0.1.2", To: "s1", Capacity: 100e6, Latency: time.Millisecond},
		{From: "s1", To: "r1", Capacity: 100e6, Latency: time.Millisecond},
		{From: "r1", To: "r2", Capacity: 10e6, UtilFromTo: 4e6, Latency: 10 * time.Millisecond},
		{From: "r2", To: "10.0.2.1", Capacity: 100e6, Latency: time.Millisecond},
	}
	for _, l := range links {
		if _, err := g.AddLink(l); err != nil {
			panic(err)
		}
	}
	return g
}

// clock is a settable test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1000, 0)} }
func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var testHosts = []netip.Addr{a("10.0.1.1"), a("10.0.1.2"), a("10.0.2.1")}

func TestApplyAdvancesEpochAndFreshness(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	if st.Current() != nil {
		t.Fatal("empty store has a current snapshot")
	}
	if st.Fresh(testHosts, time.Second) != nil {
		t.Fatal("empty store reported fresh")
	}
	s1 := st.Apply(testHosts, &collector.Result{Graph: dumbbell()}, ck.Now())
	if s1.Epoch() != 1 {
		t.Fatalf("first epoch = %d", s1.Epoch())
	}
	if st.Fresh(testHosts, time.Second) != s1 {
		t.Fatal("fresh snapshot not returned")
	}
	if got := s1.NodeID(a("10.0.1.1")); got != "10.0.1.1" {
		t.Fatalf("NodeID = %q", got)
	}
	// A host never applied is never fresh.
	if st.Fresh([]netip.Addr{a("10.0.9.9")}, time.Second) != nil {
		t.Fatal("unknown host reported fresh")
	}
	// Staleness: advance past the bound.
	ck.Advance(2 * time.Second)
	if st.Fresh(testHosts, time.Second) != nil {
		t.Fatal("stale snapshot reported fresh")
	}
	// A new apply refreshes the stamps and bumps the epoch.
	s2 := st.Apply(testHosts, &collector.Result{Graph: dumbbell()}, ck.Now())
	if s2.Epoch() != 2 {
		t.Fatalf("second epoch = %d", s2.Epoch())
	}
	if st.Fresh(testHosts, time.Second) != s2 {
		t.Fatal("refreshed snapshot not fresh")
	}
}

func TestApplyUpdatesReadingsLatestWins(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	st.Apply(testHosts, &collector.Result{Graph: dumbbell()}, ck.Now())
	// Second poll reports the WAN hotter.
	g2 := dumbbell()
	g2.FindLink("r1", "r2").UtilFromTo = 8e6
	s := st.Apply(testHosts, &collector.Result{Graph: g2}, ck.Now())
	if got := s.Graph().FindLink("r1", "r2").UtilFromTo; got != 8e6 {
		t.Fatalf("merged WAN util = %g, want latest-wins 8e6", got)
	}
}

func TestSubgraphMemoizedPerEpochAndEvicted(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	s1 := st.Apply(testHosts, &collector.Result{Graph: dumbbell()}, ck.Now())
	ids := []string{"10.0.1.1", "10.0.2.1"}
	g1, err := st.Subgraph(s1, ids, false)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Node("10.0.1.2") != nil || g1.Node("s1") != nil {
		t.Fatal("subgraph not simplified")
	}
	if len(st.subs) != 1 {
		t.Fatalf("memo holds %d entries, want 1", len(st.subs))
	}
	// The hit returns a private clone: mutating it must not poison the memo.
	g1.FindLink("10.0.1.1", "r1").Capacity = 1
	g2, err := st.Subgraph(s1, ids, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.FindLink("10.0.1.1", "r1").Capacity == 1 {
		t.Fatal("caller mutation reached the memo")
	}
	// Epoch swap evicts the superseded memo family.
	st.Apply(testHosts, &collector.Result{Graph: dumbbell()}, ck.Now())
	if len(st.subs) != 0 {
		t.Fatalf("memo holds %d entries after swap, want 0", len(st.subs))
	}
}

// gateColl counts collects and optionally blocks them on a gate.
type gateColl struct {
	mu      sync.Mutex
	calls   int
	queries []collector.Query
	gate    chan struct{}
	started chan struct{} // closed on first collect
	once    sync.Once
}

func (g *gateColl) Name() string { return "gate" }
func (g *gateColl) Collect(q collector.Query) (*collector.Result, error) {
	g.mu.Lock()
	g.calls++
	g.queries = append(g.queries, q)
	g.mu.Unlock()
	if g.started != nil {
		g.once.Do(func() { close(g.started) })
	}
	if g.gate != nil {
		<-g.gate
	}
	return &collector.Result{Graph: dumbbell()}, nil
}

func TestRefreshCoalescesConcurrentColdQueries(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	gc := &gateColl{gate: make(chan struct{}), started: make(chan struct{})}
	const n = 8
	var wg sync.WaitGroup
	snaps := make([]*Snapshot, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snaps[i], errs[i] = st.Refresh(context.Background(), gc, testHosts)
		}(i)
	}
	// Wait until the leader is inside Collect, give the waiters time to
	// park on the flight, then release the walk.
	<-gc.started
	time.Sleep(50 * time.Millisecond)
	close(gc.gate)
	wg.Wait()
	if gc.calls != 1 {
		t.Fatalf("%d concurrent cold queries ran %d collector walks, want 1", n, gc.calls)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if snaps[i] == nil || snaps[i].Epoch() != 1 {
			t.Fatalf("waiter %d got snapshot %+v", i, snaps[i])
		}
	}
}

func TestRefreshMergesUncoveredIntoNextWalk(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	gc := &gateColl{gate: make(chan struct{}, 1), started: make(chan struct{})}

	aHosts := []netip.Addr{a("10.0.1.1")}
	bHosts := []netip.Addr{a("10.0.2.1")}
	done1 := make(chan error, 1)
	go func() {
		_, err := st.Refresh(context.Background(), gc, aHosts)
		done1 <- err
	}()
	<-gc.started
	// B's hosts are not covered by the in-flight walk: it must merge into
	// the next one rather than join.
	done2 := make(chan error, 1)
	go func() {
		_, err := st.Refresh(context.Background(), gc, bHosts)
		done2 <- err
	}()
	time.Sleep(50 * time.Millisecond)
	gc.gate <- struct{}{} // release walk 1
	gc.gate <- struct{}{} // release walk 2
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.calls != 2 {
		t.Fatalf("ran %d walks, want 2", gc.calls)
	}
	second := gc.queries[1].Hosts
	found := false
	for _, h := range second {
		if h == bHosts[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("second walk %v does not cover the merged host %v", second, bHosts[0])
	}
}

func TestRefreshWaiterHonorsContext(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	gc := &gateColl{gate: make(chan struct{}), started: make(chan struct{})}
	go st.Refresh(context.Background(), gc, testHosts)
	<-gc.started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.Refresh(ctx, gc, testHosts); err == nil {
		t.Fatal("canceled waiter returned no error")
	}
	close(gc.gate)
}

func TestRefreshErrorShared(t *testing.T) {
	ck := newClock()
	st := New(Config{Now: ck.Now})
	fail := &failColl{}
	if _, err := st.Refresh(context.Background(), fail, testHosts); err == nil {
		t.Fatal("collector failure swallowed")
	}
	if st.Current() != nil {
		t.Fatal("failed walk produced a snapshot")
	}
}

type failColl struct{}

func (failColl) Name() string { return "fail" }
func (failColl) Collect(collector.Query) (*collector.Result, error) {
	return nil, fmt.Errorf("down")
}
