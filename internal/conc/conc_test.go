package conc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, par := range []int{1, 2, 8, 0} {
		var hits [100]atomic.Int32
		if err := ForEach(len(hits), par, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("par=%d: item %d ran %d times", par, i, got)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const par = 3
	var cur, max atomic.Int32
	var mu sync.Mutex
	if err := ForEach(64, par, func(int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > max.Load() {
			max.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > par {
		t.Fatalf("observed %d concurrent workers, want <= %d", m, par)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, par := range []int{1, 4} {
		err := ForEach(32, par, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, 24, 31
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("par=%d: got %v, want item 3", par, err)
		}
	}
}

func TestForEachSerialStopsEarly(t *testing.T) {
	ran := 0
	boom := errors.New("boom")
	err := ForEach(10, 1, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 3 {
		t.Fatalf("err=%v ran=%d, want boom after 3 items", err, ran)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestFlightDeduplicates(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got (%d, %v)", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let every goroutine reach Do before releasing the one real call.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if sharedCount.Load() != waiters-1 {
		t.Fatalf("shared=%d, want %d", sharedCount.Load(), waiters-1)
	}
}

func TestFlightDistinctKeysDoNotBlock(t *testing.T) {
	var f Flight[int, int]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _ := f.Do(i, func() (int, error) { return i * i, nil })
			if err != nil || v != i*i {
				t.Errorf("key %d: got (%d, %v)", i, v, err)
			}
		}()
	}
	wg.Wait()
}

func TestFlightSharesError(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	_, err, _ := f.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	// A later call retries (nothing is cached across landed flights).
	v, err, _ := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry got (%d, %v)", v, err)
	}
}
