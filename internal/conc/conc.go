// Package conc provides the small concurrency primitives the collector
// pipeline is built from: a bounded parallel for-loop with deterministic
// error selection, and a generic single-flight call deduplicator. The
// collectors use these instead of unbounded goroutine fan-out so a
// "millions of users" query storm degrades into queueing, not into a
// goroutine explosion.
package conc

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit normalizes a parallelism knob: values <= 0 select GOMAXPROCS.
func Limit(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0,n) using at most par concurrent
// workers (par <= 0 selects GOMAXPROCS). With par == 1 the items run
// serially in order and the loop stops at the first error, exactly like a
// plain for-loop. With par > 1 every item runs even when some fail, and
// the returned error is the failing item with the LOWEST index — so the
// error a caller observes does not depend on goroutine completion order.
func ForEach(n, par int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	par = Limit(par)
	if par > n {
		par = n
	}
	if par == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ForEachCtx is ForEach with cancellation: once ctx is done, workers
// stop picking up new items (items already running are left to finish —
// fn itself observes ctx for in-item cancellation). When the context is
// canceled before all items ran and no item failed first, the context's
// error is returned, so callers see context.Canceled / DeadlineExceeded.
func ForEachCtx(ctx context.Context, n, par int, fn func(int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	err := ForEach(n, par, func(i int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fn(i)
	})
	if err != nil {
		return err
	}
	return ctx.Err()
}

// Flight deduplicates concurrent calls by key: while a call for a key is
// in flight, later callers for the same key wait for it and share its
// result instead of repeating the work. Results are not retained once the
// flight lands — callers wanting a cache layer put one in front (see
// package qcache). The zero value is ready to use.
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do invokes fn once per key among concurrent callers. shared reports
// whether the result came from another caller's invocation.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[K]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
