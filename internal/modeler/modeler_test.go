package modeler

import (
	"fmt"
	"math"
	"net/netip"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/topology"
)

// fakeColl serves a fixed dumbbell graph with optional history:
//
//	a, b - s1 - r1 - r2 - s2 - c   (WAN r1-r2: cap 10e6, util 4e6 fwd)
type fakeColl struct {
	history  bool
	lastQ    collector.Query
	histGen  func() map[collector.HistKey][]collector.Sample
	predGen  func() map[collector.HistKey]collector.Forecast
	failWith error
}

func (f *fakeColl) Name() string { return "fake" }

func (f *fakeColl) Collect(q collector.Query) (*collector.Result, error) {
	f.lastQ = q
	if f.failWith != nil {
		return nil, f.failWith
	}
	g := topology.NewGraph()
	for _, n := range []topology.Node{
		{ID: "10.0.1.1", Kind: topology.HostNode, Addr: "10.0.1.1"},
		{ID: "10.0.1.2", Kind: topology.HostNode, Addr: "10.0.1.2"},
		{ID: "10.0.2.1", Kind: topology.HostNode, Addr: "10.0.2.1"},
		{ID: "s1", Kind: topology.SwitchNode},
		{ID: "s2", Kind: topology.SwitchNode},
		{ID: "r1", Kind: topology.RouterNode, Addr: "10.9.0.1"},
		{ID: "r2", Kind: topology.RouterNode, Addr: "10.9.0.2"},
	} {
		g.AddNode(n)
	}
	must := func(l topology.Link) {
		if _, err := g.AddLink(l); err != nil {
			panic(err)
		}
	}
	must(topology.Link{From: "10.0.1.1", To: "s1", Capacity: 100e6, Latency: time.Millisecond})
	must(topology.Link{From: "10.0.1.2", To: "s1", Capacity: 100e6, Latency: time.Millisecond})
	must(topology.Link{From: "s1", To: "r1", Capacity: 100e6, Latency: time.Millisecond})
	must(topology.Link{From: "r1", To: "r2", Capacity: 10e6, UtilFromTo: 4e6, Latency: 10 * time.Millisecond})
	must(topology.Link{From: "r2", To: "s2", Capacity: 100e6, Latency: time.Millisecond})
	must(topology.Link{From: "s2", To: "10.0.2.1", Capacity: 100e6, Latency: time.Millisecond})
	res := &collector.Result{Graph: g}
	if q.WithHistory && f.histGen != nil {
		res.History = f.histGen()
	}
	if q.WithPredictions && f.predGen != nil {
		res.Predictions = f.predGen()
	}
	return res, nil
}

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestGetTopologySimplifies(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	g, err := m.GetTopology([]netip.Addr{a("10.0.1.1"), a("10.0.2.1")}, TopologyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Pruned (10.0.1.2 gone) and chains collapsed (s1, s2 gone).
	if g.Node("10.0.1.2") != nil {
		t.Fatal("off-path host survived simplification")
	}
	if g.Node("s1") != nil || g.Node("s2") != nil {
		t.Fatal("degree-2 switches survived simplification")
	}
	// The answer is still correct: bottleneck 6e6 toward 10.0.2.1.
	bw, _, err := g.BottleneckAvail("10.0.1.1", "10.0.2.1")
	if err != nil || math.Abs(bw-6e6) > 1 {
		t.Fatalf("bw = %v err = %v, want 6e6", bw, err)
	}
}

func TestGetTopologyRaw(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	g, err := m.GetTopology([]netip.Addr{a("10.0.1.1"), a("10.0.2.1")}, TopologyOptions{Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != 7 {
		t.Fatalf("raw graph nodes = %d, want 7", len(g.Nodes()))
	}
}

func TestGetFlowsMaxMin(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	infos, err := m.GetFlows([]Flow{
		{Src: a("10.0.1.1"), Dst: a("10.0.2.1")},
		{Src: a("10.0.1.2"), Dst: a("10.0.2.1")},
	}, FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 6e6 residual shared by two flows.
	for i, inf := range infos {
		if math.Abs(inf.Available-3e6) > 1 {
			t.Fatalf("flow %d available %v, want 3e6", i, inf.Available)
		}
	}
	if infos[0].Latency != 14*time.Millisecond {
		t.Fatalf("latency %v, want 14ms", infos[0].Latency)
	}
	if len(infos[0].Path) != 6 {
		t.Fatalf("path %v", infos[0].Path)
	}
}

func TestGetFlowsEmptyRejected(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	if _, err := m.GetFlows(nil, FlowOptions{}); err == nil {
		t.Fatal("empty flow query accepted")
	}
}

func TestCollectorErrorPropagates(t *testing.T) {
	m := New(Config{Collector: &fakeColl{failWith: fmt.Errorf("down")}})
	if _, err := m.AvailableBandwidth(a("10.0.1.1"), a("10.0.2.1")); err == nil {
		t.Fatal("collector failure swallowed")
	}
}

// steadyHistory returns per-link WAN history trending to a given level.
func steadyHistory(level float64, n int) func() map[collector.HistKey][]collector.Sample {
	return func() map[collector.HistKey][]collector.Sample {
		ss := make([]collector.Sample, n)
		for i := range ss {
			ss[i] = collector.Sample{T: time.Unix(int64(i*5), 0), Bits: level}
		}
		return map[collector.HistKey][]collector.Sample{
			{From: "r1", To: "r2"}: ss,
		}
	}
}

func TestFlowPredictionUsesHistory(t *testing.T) {
	// History says the WAN carries a steady 8e6, though the snapshot
	// says 4e6: the prediction must follow the history.
	fc := &fakeColl{histGen: steadyHistory(8e6, 200)}
	m := New(Config{Collector: fc})
	infos, err := m.GetFlows([]Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}},
		FlowOptions{Predict: true, Horizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !fc.lastQ.WithHistory {
		t.Fatal("prediction did not request history")
	}
	if math.Abs(infos[0].Available-6e6) > 1 {
		t.Fatalf("current available %v, want 6e6", infos[0].Available)
	}
	if math.Abs(infos[0].Predicted-2e6) > 2e5 {
		t.Fatalf("predicted available %v, want ~2e6 (10e6 cap - 8e6 history)", infos[0].Predicted)
	}
}

func TestFlowPredictionShortHistoryFallsBack(t *testing.T) {
	fc := &fakeColl{histGen: steadyHistory(9e6, 5)} // below MinHistory
	m := New(Config{Collector: fc})
	infos, err := m.GetFlows([]Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}},
		FlowOptions{Predict: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(infos[0].Predicted-1e6) > 1 {
		t.Fatalf("short-history prediction %v, want 1e6 (last value)", infos[0].Predicted)
	}
}

func TestFlowPredictionBadModelSpec(t *testing.T) {
	fc := &fakeColl{histGen: steadyHistory(8e6, 200)}
	m := New(Config{Collector: fc})
	if _, err := m.GetFlows([]Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}},
		FlowOptions{Predict: true, Model: "WAVELET(3)"}); err == nil {
		t.Fatal("bad model spec accepted")
	}
}

func TestBestServerRanks(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	// Both candidates resolve over the same graph; 10.0.1.2 shares the
	// client's LAN (100e6), 10.0.2.1 crosses the WAN (6e6 avail).
	ranks, err := m.BestServer(a("10.0.1.1"),
		[]netip.Addr{a("10.0.2.1"), a("10.0.1.2")}, FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0].Server != a("10.0.1.2") {
		t.Fatalf("best server = %v, want the LAN-local 10.0.1.2 (ranks %+v)", ranks[0].Server, ranks)
	}
	if ranks[0].Bandwidth <= ranks[1].Bandwidth {
		t.Fatal("ranking not descending")
	}
}

func TestBestServerNoCandidates(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	if _, err := m.BestServer(a("10.0.1.1"), nil, FlowOptions{}); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestPredictSeries(t *testing.T) {
	fc := &fakeColl{histGen: steadyHistory(5e6, 300)}
	m := New(Config{Collector: fc})
	p, err := m.PredictSeries(a("10.0.1.1"), a("10.0.2.1"), "BM(16)", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != 4 {
		t.Fatalf("horizon %d", len(p.Values))
	}
	if math.Abs(p.Values[0]-5e6) > 1 {
		t.Fatalf("predicted %v, want 5e6", p.Values[0])
	}
}

func TestPredictSeriesNoHistory(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	if _, err := m.PredictSeries(a("10.0.1.1"), a("10.0.2.1"), "MEAN", 1); err == nil {
		t.Fatal("prediction without history succeeded")
	}
}

func TestFlowPredictionFromCollector(t *testing.T) {
	// The collector serves a streaming forecast saying the WAN runs at
	// 9e6, contradicting both the snapshot (4e6) and the history (8e6):
	// with FromCollector the forecast wins.
	fc := &fakeColl{histGen: steadyHistory(8e6, 200)}
	fc.predGen = func() map[collector.HistKey]collector.Forecast {
		return map[collector.HistKey]collector.Forecast{
			{From: "r1", To: "r2"}: {
				Values: []float64{9e6, 9e6, 9e6},
				ErrVar: []float64{1e10, 2e10, 3e10},
			},
		}
	}
	m := New(Config{Collector: fc})
	infos, err := m.GetFlows([]Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}},
		FlowOptions{Predict: true, Horizon: 2, FromCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fc.lastQ.WithPredictions {
		t.Fatal("modeler did not request collector predictions")
	}
	if math.Abs(infos[0].Predicted-1e6) > 1 {
		t.Fatalf("predicted %v, want 1e6 (10e6 cap - 9e6 forecast)", infos[0].Predicted)
	}
	if infos[0].ErrVar != 2e10 {
		t.Fatalf("errvar %v, want the horizon-2 forecast errvar", infos[0].ErrVar)
	}
}

func TestFlowPredictionFromCollectorFallsBack(t *testing.T) {
	// No forecast for the link: client-side fitting over history kicks
	// in even with FromCollector set.
	fc := &fakeColl{histGen: steadyHistory(8e6, 200)}
	m := New(Config{Collector: fc})
	infos, err := m.GetFlows([]Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}},
		FlowOptions{Predict: true, Horizon: 3, FromCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(infos[0].Predicted-2e6) > 2e5 {
		t.Fatalf("fallback predicted %v, want ~2e6", infos[0].Predicted)
	}
}

func TestFlowPredictionHorizonBeyondForecast(t *testing.T) {
	// A horizon past the collector's forecast length uses the furthest
	// available step rather than failing.
	fc := &fakeColl{histGen: steadyHistory(8e6, 200)}
	fc.predGen = func() map[collector.HistKey]collector.Forecast {
		return map[collector.HistKey]collector.Forecast{
			{From: "r1", To: "r2"}: {Values: []float64{7e6}, ErrVar: []float64{1}},
		}
	}
	m := New(Config{Collector: fc})
	infos, err := m.GetFlows([]Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}},
		FlowOptions{Predict: true, Horizon: 10, FromCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(infos[0].Predicted-3e6) > 1 {
		t.Fatalf("predicted %v, want 3e6 from the one-step forecast", infos[0].Predicted)
	}
}

// loadColl fakes a host load collector.
type loadColl struct {
	hist map[collector.HistKey][]collector.Sample
	pred map[collector.HistKey]collector.Forecast
}

func (l *loadColl) Name() string { return "hostload" }
func (l *loadColl) Collect(q collector.Query) (*collector.Result, error) {
	g := topology.NewGraph()
	for _, h := range q.Hosts {
		g.AddNode(topology.Node{ID: h.String(), Kind: topology.HostNode})
	}
	res := &collector.Result{Graph: g}
	if q.WithHistory {
		res.History = l.hist
	}
	if q.WithPredictions {
		res.Predictions = l.pred
	}
	return res, nil
}

func TestHostLoadFromCollectorForecast(t *testing.T) {
	key := collector.HistKey{From: "10.0.1.1", To: "cpu"}
	lc := &loadColl{
		hist: map[collector.HistKey][]collector.Sample{
			key: {{Bits: 1.2}, {Bits: 1.4}},
		},
		pred: map[collector.HistKey]collector.Forecast{
			key: {Values: []float64{1.5, 1.6, 1.7}, ErrVar: []float64{0.1, 0.2, 0.3}},
		},
	}
	m := New(Config{Collector: &fakeColl{}, HostLoad: lc})
	info, err := m.HostLoad(a("10.0.1.1"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Current != 1.4 {
		t.Fatalf("current = %v", info.Current)
	}
	if len(info.Forecast.Values) != 2 || info.Forecast.Values[1] != 1.6 {
		t.Fatalf("forecast = %+v", info.Forecast)
	}
}

func TestHostLoadClientSideFallback(t *testing.T) {
	key := collector.HistKey{From: "10.0.1.1", To: "cpu"}
	samples := make([]collector.Sample, 200)
	for i := range samples {
		samples[i] = collector.Sample{Bits: 0.8}
	}
	lc := &loadColl{hist: map[collector.HistKey][]collector.Sample{key: samples}}
	m := New(Config{Collector: &fakeColl{}, HostLoad: lc, PredictModel: "BM(16)"})
	info, err := m.HostLoad(a("10.0.1.1"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Forecast.Values) != 3 || math.Abs(info.Forecast.Values[0]-0.8) > 1e-9 {
		t.Fatalf("fallback forecast = %+v", info.Forecast)
	}
}

func TestHostLoadUnconfigured(t *testing.T) {
	m := New(Config{Collector: &fakeColl{}})
	if _, err := m.HostLoad(a("10.0.1.1"), 1); err == nil {
		t.Fatal("HostLoad without a collector succeeded")
	}
}

func TestHostLoadNoSamplesYet(t *testing.T) {
	lc := &loadColl{}
	m := New(Config{Collector: &fakeColl{}, HostLoad: lc})
	if _, err := m.HostLoad(a("10.0.1.1"), 1); err == nil {
		t.Fatal("HostLoad with no samples succeeded")
	}
}
