// Package modeler implements the Remos Modeler: the single component that
// exposes the Remos API to applications (Section 2.2). It submits queries
// to its Master Collector, post-processes the returned topologies
// (pruning, virtual-switch simplification, max-min flow calculation) and,
// when predictions are requested, acts as the intermediary between the
// collectors' measurement histories and the RPS prediction toolkit.
package modeler

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"remos/internal/collector"
	"remos/internal/obs"
	"remos/internal/rerr"
	"remos/internal/rps"
	"remos/internal/snapshot"
	"remos/internal/topology"
)

// Config configures a Modeler.
type Config struct {
	// Collector answers the Modeler's queries — normally a Master
	// Collector, local or reached through one of the wire protocols.
	Collector collector.Interface

	// Snapshot, when set, is the versioned snapshot plane: topology and
	// flow queries are answered from the current generation when it is
	// fresh within the staleness bound — no collector round-trip, no
	// graph rebuild — and fall back to collector fan-out (coalesced
	// through the store's single-flight) on miss or stale. Raw topology
	// queries and prediction-bearing flow queries always go to the
	// collectors: the first reports what collectors see right now, the
	// second needs measurement history the snapshot does not carry.
	Snapshot *snapshot.Store

	// MaxStale is the default staleness bound for snapshot-backed
	// answers (default 5s); per-query options override it.
	MaxStale time.Duration

	// RemoteFlows, when set, delegates flow queries to a remote daemon's
	// FLOWS verb so the answer comes from the server's snapshot plane
	// without shipping the graph. Only queries on the default staleness
	// bound delegate — predictions need local model choices and explicit
	// MaxStale bounds cannot cross the wire. A server that does not
	// answer FLOWS (rerr.ErrCollectorUnavailable) falls back to fetching
	// the graph and solving locally.
	RemoteFlows FlowsClient

	// PredictModel is the RPS model spec used for flow predictions
	// (default "AR(16)", the paper's host-load choice; bandwidth series
	// at 5s polls are well served by it too).
	PredictModel string

	// MinHistory is the minimum samples before a model is fitted;
	// shorter histories fall back to the last measured value (default
	// 64).
	MinHistory int

	// HostLoad, when set, answers host load queries (a host load
	// collector, local or remote). Optional; HostLoad queries fail
	// without it.
	HostLoad collector.Interface

	// Obs, when set, counts API queries by kind. Traces, when set,
	// records a trace per API call (unless the caller's context already
	// carries one, as it does under an instrumented protocol server).
	Obs    *obs.Registry
	Traces *obs.Ring
}

// Modeler is a per-application Remos endpoint.
type Modeler struct {
	cfg Config
}

// begin counts an API call and, when tracing is configured and the
// context does not already carry a trace, opens one. The returned finish
// must be called when the API call completes.
func (m *Modeler) begin(ctx context.Context, kind, attrs string) (context.Context, func(error)) {
	m.cfg.Obs.Counter("remos_modeler_queries_total",
		"Remos API queries by kind", "kind", kind).Inc()
	tr := obs.FromContext(ctx)
	if tr != nil || m.cfg.Traces == nil {
		return ctx, func(error) {}
	}
	tr = obs.NewTrace(kind, attrs)
	return obs.NewContext(ctx, tr), func(err error) {
		tr.SetErr(err)
		m.cfg.Traces.Observe(tr)
	}
}

func hostAttrs(hosts []netip.Addr) string {
	ids := make([]string, len(hosts))
	for i, h := range hosts {
		ids[i] = h.String()
	}
	return strings.Join(ids, ",")
}

// New creates a Modeler over the given collector.
func New(cfg Config) *Modeler {
	if cfg.PredictModel == "" {
		cfg.PredictModel = "AR(16)"
	}
	if cfg.MinHistory <= 0 {
		cfg.MinHistory = 64
	}
	if cfg.MaxStale <= 0 {
		cfg.MaxStale = 5 * time.Second
	}
	return &Modeler{cfg: cfg}
}

// dedupeHosts returns the unique hosts in first-seen order. Queries
// built from flow lists (or careless callers) repeat endpoints, and a
// duplicated host both walks the collectors twice and fragments the
// warm-query cache key ("a,a,b" is not "a,b"), so every collector-bound
// host set passes through here first.
func dedupeHosts(hosts []netip.Addr) []netip.Addr {
	seen := make(map[netip.Addr]bool, len(hosts))
	out := make([]netip.Addr, 0, len(hosts))
	for _, h := range hosts {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// staleBound resolves a per-query staleness bound against the modeler
// default: 0 inherits Config.MaxStale, negative disables the snapshot
// path for this query.
func (m *Modeler) staleBound(q time.Duration) time.Duration {
	if q < 0 {
		return 0
	}
	if q > 0 {
		return q
	}
	return m.cfg.MaxStale
}

// snapshotFor returns a generation covering hosts within bound,
// running the coalesced refresh on miss. nil means "serve this query
// through a direct collect" — the plane is off, disabled for this
// query, or the shared walk failed (its failure is shared, the
// fallback is private).
func (m *Modeler) snapshotFor(ctx context.Context, hosts []netip.Addr, bound time.Duration) *snapshot.Snapshot {
	st := m.cfg.Snapshot
	if st == nil || bound <= 0 {
		return nil
	}
	if s := st.Fresh(hosts, bound); s != nil {
		return s
	}
	s, err := st.Refresh(ctx, m.cfg.Collector, hosts)
	if err != nil {
		return nil
	}
	return s
}

// TopologyOptions controls post-processing of topology query results.
type TopologyOptions struct {
	// Raw disables all simplification, returning the collectors' graph.
	// Raw queries never answer from the snapshot plane.
	Raw bool
	// KeepSwitches retains individual switches instead of collapsing
	// switch clouds into virtual switches.
	KeepSwitches bool
	// MaxStale bounds how stale a snapshot-backed answer may be: 0
	// inherits the modeler default, negative forces a collector walk.
	MaxStale time.Duration
}

// GetTopology answers the Remos topology query: the virtual topology
// spanning the given hosts, annotated with capacity and utilization. By
// default the Modeler simplifies the graph — pruning off-path detail,
// collapsing switch clouds into virtual switches and splicing out
// degree-2 chains — "to present the topology to the application in a more
// manageable form".
func (m *Modeler) GetTopology(hosts []netip.Addr, opt TopologyOptions) (*topology.Graph, error) {
	return m.GetTopologyContext(context.Background(), hosts, opt)
}

// GetTopologyContext is GetTopology under the caller's context: the
// context's cancellation and deadline reach the master fan-out and the
// SNMP exchanges underneath, and its trace (if any) collects the query's
// stage timings.
func (m *Modeler) GetTopologyContext(ctx context.Context, hosts []netip.Addr, opt TopologyOptions) (g *topology.Graph, err error) {
	hosts = dedupeHosts(hosts)
	ctx, finish := m.begin(ctx, "topology", hostAttrs(hosts))
	defer func() { finish(err) }()
	tr := obs.FromContext(ctx)
	ids := make([]string, len(hosts))
	for i, h := range hosts {
		ids[i] = h.String()
	}
	if !opt.Raw {
		if snap := m.snapshotFor(ctx, hosts, m.staleBound(opt.MaxStale)); snap != nil {
			sp := tr.Start("simplify")
			g, err := m.cfg.Snapshot.Subgraph(snap, ids, opt.KeepSwitches)
			sp.End()
			if err == nil {
				return g, nil
			}
			// The snapshot cannot place these endpoints (e.g. a host it
			// has never polled under this ID); a direct walk still can.
		}
	}
	sp := tr.Start("collect")
	res, err := m.cfg.Collector.Collect(collector.Query{Hosts: hosts}.WithContext(ctx))
	sp.End()
	if err != nil {
		return nil, err
	}
	g = res.Graph
	if opt.Raw {
		return g, nil
	}
	defer tr.Start("simplify").End()
	protect := make(map[string]bool, len(hosts))
	for _, id := range ids {
		protect[id] = true
	}
	g, err = g.Prune(ids)
	if err != nil {
		return nil, err
	}
	if !opt.KeepSwitches {
		g.CollapseSwitchClouds("vswitch")
	}
	g.CollapseChains(protect)
	return g, nil
}

// Flow names one flow an application wants to create.
type Flow struct {
	Src, Dst netip.Addr
	// Demand is the rate the application wants in bits per second;
	// 0 asks "as much as possible".
	Demand float64
}

// FlowInfo is the answer for one requested flow.
type FlowInfo struct {
	Flow      Flow
	Available float64 // max-min fair bandwidth the flow can expect now
	Latency   time.Duration
	// Jitter is the path's delay variation, measured by benchmark
	// collectors where available (zero on purely SNMP-derived paths).
	Jitter time.Duration
	Path   []string

	// Predicted, when prediction was requested, is the expected
	// available bandwidth at the prediction horizon, with ErrVar the
	// model's own error estimate — RPS characterizes its prediction
	// error so applications can make variance-aware decisions.
	Predicted float64
	ErrVar    float64
}

// FlowsClient is the client side of the wire FLOWS verb; both protocol
// clients implement it. See Config.RemoteFlows.
type FlowsClient interface {
	Flows(ctx context.Context, flows []Flow) ([]FlowInfo, error)
}

// FlowOptions controls flow queries.
type FlowOptions struct {
	// Predict asks for a prediction Horizon poll intervals ahead using
	// collector-side measurement history and the RPS toolkit.
	Predict bool
	// Horizon is the number of steps ahead (default 1).
	Horizon int
	// Model overrides the modeler's prediction model spec.
	Model string
	// FromCollector prefers collector-side streaming predictions over
	// fitting models client-side — the Section 2.3 trade-off: streaming
	// predictions are amortized and shared between consumers, while
	// client-side fitting honors per-application model choices. Links
	// without a streaming forecast fall back to client-side fitting.
	FromCollector bool
	// MaxStale bounds how stale a snapshot-backed answer may be: 0
	// inherits the modeler default, negative forces a collector walk.
	// Prediction queries ignore it — they always collect, for history.
	MaxStale time.Duration
}

// GetFlows answers the Remos flow query: for the set of flows the
// application wants to create simultaneously, the max-min fair bandwidth
// each can expect, on the current topology and optionally on the
// predicted one.
func (m *Modeler) GetFlows(flows []Flow, opt FlowOptions) ([]FlowInfo, error) {
	return m.GetFlowsContext(context.Background(), flows, opt)
}

// GetFlowsContext is GetFlows under the caller's context (cancellation,
// deadline, and trace propagate through the whole query path).
func (m *Modeler) GetFlowsContext(ctx context.Context, flows []Flow, opt FlowOptions) (out []FlowInfo, err error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("modeler: no flows requested")
	}
	endpoints := make([]netip.Addr, 0, len(flows)*2)
	for _, f := range flows {
		endpoints = append(endpoints, f.Src, f.Dst)
	}
	hosts := dedupeHosts(endpoints)
	ctx, finish := m.begin(ctx, "flows", hostAttrs(hosts))
	defer func() { finish(err) }()
	tr := obs.FromContext(ctx)
	reqs := make([]topology.FlowRequest, len(flows))
	for i, f := range flows {
		reqs[i] = topology.FlowRequest{Src: f.Src.String(), Dst: f.Dst.String(), Demand: f.Demand}
	}

	// The snapshot fast path: a fresh-enough generation answers from its
	// memoized path index — no collector round-trip, no graph clone, and
	// a max-min run over only the links these flows cross. Prediction
	// queries skip it; they need collector-side history.
	if !opt.Predict {
		if snap := m.snapshotFor(ctx, hosts, m.staleBound(opt.MaxStale)); snap != nil {
			sp := tr.Start("maxmin")
			preds, perr := snap.Paths().FlowAlloc(reqs)
			sp.End()
			if perr == nil {
				out = make([]FlowInfo, len(flows))
				for i := range flows {
					out[i] = FlowInfo{
						Flow:      flows[i],
						Available: preds[i].Available,
						Latency:   preds[i].Latency,
						Jitter:    preds[i].Jitter,
						Path:      preds[i].Path,
						Predicted: preds[i].Available,
					}
				}
				return out, nil
			}
			if !errors.Is(perr, rerr.ErrUnknownHost) {
				// A routing answer (e.g. no path) from a fresh snapshot
				// is the answer; only unknown endpoints merit a walk.
				return nil, perr
			}
		}
		// Remote delegation: let the daemon answer from its own snapshot
		// plane instead of shipping the graph here. Only default-bound
		// queries qualify — an explicit MaxStale cannot cross the wire.
		if rf := m.cfg.RemoteFlows; rf != nil && opt.MaxStale == 0 {
			sp := tr.Start("remote")
			rout, rferr := rf.Flows(ctx, flows)
			sp.End()
			if rferr == nil {
				return rout, nil
			}
			if !errors.Is(rferr, rerr.ErrCollectorUnavailable) {
				return nil, rferr
			}
			// The server predates the FLOWS verb (or runs without a flow
			// answerer): fetch the graph and solve locally instead.
		}
	}

	sp := tr.Start("collect")
	res, err := m.cfg.Collector.Collect(collector.Query{
		Hosts:           hosts,
		WithHistory:     opt.Predict,
		WithPredictions: opt.Predict && opt.FromCollector,
	}.WithContext(ctx))
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = tr.Start("maxmin")
	preds, err := res.Graph.FlowAlloc(reqs)
	sp.End()
	if err != nil {
		return nil, err
	}
	out = make([]FlowInfo, len(flows))
	for i := range flows {
		out[i] = FlowInfo{
			Flow:      flows[i],
			Available: preds[i].Available,
			Latency:   preds[i].Latency,
			Jitter:    preds[i].Jitter,
			Path:      preds[i].Path,
			Predicted: preds[i].Available,
		}
	}
	if !opt.Predict {
		return out, nil
	}

	// Prediction: forecast each link's utilization from its history,
	// rebuild the graph with predicted utilizations, and re-run the
	// max-min calculation. Prediction happens here, above the
	// collectors, because component behaviours must be combined after
	// forecasting, not before (Section 2.3).
	horizon := opt.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	spec := opt.Model
	if spec == "" {
		spec = m.cfg.PredictModel
	}
	fitter, err := rps.ParseFitter(spec)
	if err != nil {
		return nil, err
	}
	defer tr.Start("predict").End()
	predicted := res.Graph.Clone()
	linkErr := make(map[string]float64) // link key -> predicted errvar (bits²)
	for _, l := range predicted.Links() {
		fwd, fv := m.predictLink(res, collector.HistKey{From: l.From, To: l.To}, fitter, horizon, opt)
		rev, rv := m.predictLink(res, collector.HistKey{From: l.To, To: l.From}, fitter, horizon, opt)
		if fwd >= 0 {
			l.UtilFromTo = fwd
		}
		if rev >= 0 {
			l.UtilToFrom = rev
		}
		linkErr[l.From+"|"+l.To] = maxf(fv, rv)
	}
	ppreds, err := predicted.FlowAlloc(reqs)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Predicted = ppreds[i].Available
		// The flow's error estimate: the worst link error along its
		// path.
		var ev float64
		p := ppreds[i].Path
		for j := 0; j+1 < len(p); j++ {
			if v, ok := linkErr[p[j]+"|"+p[j+1]]; ok && v > ev {
				ev = v
			}
			if v, ok := linkErr[p[j+1]+"|"+p[j]]; ok && v > ev {
				ev = v
			}
		}
		out[i].ErrVar = ev
	}
	return out, nil
}

// predictLink forecasts one directed link's utilization at the horizon:
// from the collector's streaming forecast when requested and available,
// otherwise by fitting client-side to the link's history.
func (m *Modeler) predictLink(res *collector.Result, k collector.HistKey, fitter rps.Fitter, horizon int, opt FlowOptions) (float64, float64) {
	if opt.FromCollector {
		if fc, ok := res.Predictions[k]; ok && len(fc.Values) > 0 {
			h := horizon
			if h > len(fc.Values) {
				h = len(fc.Values) // use the furthest available step
			}
			v := fc.Values[h-1]
			if v < 0 {
				v = 0
			}
			ev := 0.0
			if h-1 < len(fc.ErrVar) {
				ev = fc.ErrVar[h-1]
			}
			return v, ev
		}
	}
	return m.predictSeries(res.History[k], fitter, horizon)
}

// predictSeries forecasts the mean of the next horizon values of a
// utilization series; negative return means no usable history. The error
// variance at the horizon is returned alongside.
func (m *Modeler) predictSeries(ss []collector.Sample, fitter rps.Fitter, horizon int) (float64, float64) {
	if len(ss) == 0 {
		return -1, 0
	}
	vals := collector.Values(ss)
	if len(vals) < m.cfg.MinHistory {
		// Too little history to fit: use the last measurement.
		return vals[len(vals)-1], 0
	}
	p, err := rps.Predict(fitter, vals, horizon)
	if err != nil {
		return vals[len(vals)-1], 0
	}
	v := p.Values[horizon-1]
	if v < 0 {
		v = 0 // utilization cannot be negative
	}
	return v, p.ErrVar[horizon-1]
}

// AvailableBandwidth is the scalar convenience query: the max-min
// bandwidth a single new flow between the two hosts can expect.
func (m *Modeler) AvailableBandwidth(src, dst netip.Addr) (float64, error) {
	return m.AvailableBandwidthContext(context.Background(), src, dst)
}

// AvailableBandwidthContext is AvailableBandwidth under the caller's
// context.
func (m *Modeler) AvailableBandwidthContext(ctx context.Context, src, dst netip.Addr) (float64, error) {
	infos, err := m.GetFlowsContext(ctx, []Flow{{Src: src, Dst: dst}}, FlowOptions{})
	if err != nil {
		return 0, err
	}
	return infos[0].Available, nil
}

// ServerRank is one candidate in a BestServer answer.
type ServerRank struct {
	Server    netip.Addr
	Bandwidth float64 // predicted available bandwidth client<-server
	Err       error   // non-nil if the candidate could not be evaluated
}

// BestServer ranks candidate servers by the bandwidth a download to
// client can expect, best first — the mirrored-server and video-server
// selection pattern of Sections 5.4 and 5.5. Unreachable candidates sort
// last with their error recorded.
func (m *Modeler) BestServer(client netip.Addr, servers []netip.Addr, opt FlowOptions) ([]ServerRank, error) {
	return m.BestServerContext(context.Background(), client, servers, opt)
}

// BestServerContext is BestServer under the caller's context; a
// cancellation stops the remaining candidate evaluations.
func (m *Modeler) BestServerContext(ctx context.Context, client netip.Addr, servers []netip.Addr, opt FlowOptions) ([]ServerRank, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("modeler: no candidate servers")
	}
	ranks := make([]ServerRank, len(servers))
	for i, srv := range servers {
		ranks[i].Server = srv
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Server-to-client direction: downloads flow that way.
		infos, err := m.GetFlowsContext(ctx, []Flow{{Src: srv, Dst: client}}, opt)
		if err != nil {
			ranks[i].Err = err
			continue
		}
		if opt.Predict {
			ranks[i].Bandwidth = infos[0].Predicted
		} else {
			ranks[i].Bandwidth = infos[0].Available
		}
	}
	sort.SliceStable(ranks, func(i, j int) bool {
		if (ranks[i].Err == nil) != (ranks[j].Err == nil) {
			return ranks[i].Err == nil
		}
		return ranks[i].Bandwidth > ranks[j].Bandwidth
	})
	if ranks[0].Err != nil {
		return ranks, fmt.Errorf("modeler: no candidate server reachable: %v", ranks[0].Err)
	}
	return ranks, nil
}

// HostLoadInfo answers a host load query.
type HostLoadInfo struct {
	// Current is the most recent load sample.
	Current float64
	// Forecast holds predicted load for horizons 1..len(Values) with
	// per-horizon error variances; empty when no prediction could be
	// made.
	Forecast rps.Prediction
}

// HostLoad reports a host's current CPU load and its forecast, from the
// configured host load collector: collector-side streaming forecasts when
// available, otherwise a client-side fit over the load history with the
// modeler's prediction model. This is the host-measurement half of the
// Remos/RPS coupling ("RPS provides prediction services and host
// measurement services to Remos").
func (m *Modeler) HostLoad(h netip.Addr, horizon int) (HostLoadInfo, error) {
	return m.HostLoadContext(context.Background(), h, horizon)
}

// HostLoadContext is HostLoad under the caller's context.
func (m *Modeler) HostLoadContext(ctx context.Context, h netip.Addr, horizon int) (info HostLoadInfo, err error) {
	if m.cfg.HostLoad == nil {
		return HostLoadInfo{}, fmt.Errorf("modeler: no host load collector configured")
	}
	if horizon <= 0 {
		horizon = 1
	}
	ctx, finish := m.begin(ctx, "hostload", h.String())
	defer func() { finish(err) }()
	res, err := m.cfg.HostLoad.Collect(collector.Query{
		Hosts:           []netip.Addr{h},
		WithHistory:     true,
		WithPredictions: true,
	}.WithContext(ctx))
	if err != nil {
		return HostLoadInfo{}, err
	}
	key := collector.HistKey{From: h.String(), To: "cpu"}
	hist := res.History[key]
	if len(hist) == 0 {
		return HostLoadInfo{}, fmt.Errorf("modeler: no load samples for %v yet", h)
	}
	info = HostLoadInfo{Current: hist[len(hist)-1].Bits}
	if fc, ok := res.Predictions[key]; ok && len(fc.Values) > 0 {
		n := horizon
		if n > len(fc.Values) {
			n = len(fc.Values)
		}
		info.Forecast = rps.Prediction{
			Values: append([]float64(nil), fc.Values[:n]...),
			ErrVar: append([]float64(nil), fc.ErrVar[:n]...),
		}
		return info, nil
	}
	// Client-side fit over the history.
	if len(hist) >= m.cfg.MinHistory {
		fitter, err := rps.ParseFitter(m.cfg.PredictModel)
		if err == nil {
			if p, err := rps.Predict(fitter, collector.Values(hist), horizon); err == nil {
				info.Forecast = p
			}
		}
	}
	return info, nil
}

// PredictSeries runs a client-server RPS prediction over the measurement
// history the collectors hold for the directed pair of node IDs.
func (m *Modeler) PredictSeries(src, dst netip.Addr, spec string, horizon int) (rps.Prediction, error) {
	return m.PredictSeriesContext(context.Background(), src, dst, spec, horizon)
}

// PredictSeriesContext is PredictSeries under the caller's context.
func (m *Modeler) PredictSeriesContext(ctx context.Context, src, dst netip.Addr, spec string, horizon int) (p rps.Prediction, err error) {
	ctx, finish := m.begin(ctx, "predict", hostAttrs([]netip.Addr{src, dst}))
	defer func() { finish(err) }()
	res, err := m.cfg.Collector.Collect(collector.Query{
		Hosts:       []netip.Addr{src, dst},
		WithHistory: true,
	}.WithContext(ctx))
	if err != nil {
		return rps.Prediction{}, err
	}
	// Use the bottleneck link's history along the path.
	_, path, err := res.Graph.BottleneckAvail(src.String(), dst.String())
	if err != nil {
		return rps.Prediction{}, err
	}
	fitter, err := rps.ParseFitter(spec)
	if err != nil {
		return rps.Prediction{}, err
	}
	var best []collector.Sample
	for i := 0; i+1 < len(path); i++ {
		if ss := res.History[collector.HistKey{From: path[i], To: path[i+1]}]; len(ss) > len(best) {
			best = ss
		}
	}
	if len(best) == 0 {
		return rps.Prediction{}, fmt.Errorf("modeler: no history available between %v and %v", src, dst)
	}
	return rps.Predict(fitter, collector.Values(best), horizon)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
