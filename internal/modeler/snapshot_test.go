package modeler

import (
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/snapshot"
)

// countingColl wraps the dumbbell fake with a collect counter.
type countingColl struct {
	fakeColl
	calls atomic.Int64
}

func (c *countingColl) Collect(q collector.Query) (*collector.Result, error) {
	c.calls.Add(1)
	return c.fakeColl.Collect(q)
}

// testClock is a settable clock for snapshot staleness tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func snapModeler(cc collector.Interface, ck *testClock) *Modeler {
	store := snapshot.New(snapshot.Config{Now: ck.Now})
	return New(Config{Collector: cc, Snapshot: store, MaxStale: 5 * time.Second})
}

// TestSnapshotHitGetFlowsZeroCollectorRoundTrips pins the acceptance
// criterion: once the snapshot plane holds a fresh generation, flow
// queries perform zero collector round-trips and still return the
// collect-path answer.
func TestSnapshotHitGetFlowsZeroCollectorRoundTrips(t *testing.T) {
	cc := &countingColl{}
	ck := &testClock{t: time.Unix(1000, 0)}
	m := snapModeler(cc, ck)
	flows := []Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}}

	// First query: cold, one coalesced walk populates the snapshot.
	if _, err := m.GetFlows(flows, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 1 {
		t.Fatalf("cold query ran %d walks, want 1", got)
	}
	// Warm queries: all snapshot hits.
	for i := 0; i < 50; i++ {
		infos, err := m.GetFlows(flows, FlowOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(infos[0].Available-6e6) > 1 {
			t.Fatalf("snapshot answer %v, want 6e6", infos[0].Available)
		}
		if infos[0].Latency != 14*time.Millisecond {
			t.Fatalf("snapshot latency %v, want 14ms", infos[0].Latency)
		}
		if len(infos[0].Path) != 6 {
			t.Fatalf("snapshot path %v, want the full 6-hop path", infos[0].Path)
		}
	}
	if got := cc.calls.Load(); got != 1 {
		t.Fatalf("snapshot-hit GetFlows performed %d collector round-trips, want 0", got-1)
	}
}

func TestSnapshotStaleFallsBackToRefresh(t *testing.T) {
	cc := &countingColl{}
	ck := &testClock{t: time.Unix(1000, 0)}
	m := snapModeler(cc, ck)
	flows := []Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}}
	if _, err := m.GetFlows(flows, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	ck.Advance(10 * time.Second) // past the 5s default bound
	if _, err := m.GetFlows(flows, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 2 {
		t.Fatalf("stale snapshot ran %d walks, want a refresh (2 total)", got)
	}
	// The refresh restored freshness: the next query hits again.
	if _, err := m.GetFlows(flows, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 2 {
		t.Fatalf("post-refresh query walked again (%d walks)", got)
	}
}

func TestNegativeMaxStaleForcesCollectorWalk(t *testing.T) {
	cc := &countingColl{}
	ck := &testClock{t: time.Unix(1000, 0)}
	m := snapModeler(cc, ck)
	flows := []Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}}
	if _, err := m.GetFlows(flows, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	// Opting out per query bypasses the (fresh) snapshot.
	if _, err := m.GetFlows(flows, FlowOptions{MaxStale: -1}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 2 {
		t.Fatalf("MaxStale<0 query ran %d walks total, want 2", got)
	}
	// Same for topology queries.
	if _, err := m.GetTopology([]netip.Addr{a("10.0.1.1"), a("10.0.2.1")},
		TopologyOptions{MaxStale: -1}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 3 {
		t.Fatalf("MaxStale<0 topology query ran %d walks total, want 3", got)
	}
}

func TestPredictionQueriesBypassSnapshot(t *testing.T) {
	cc := &countingColl{}
	cc.histGen = steadyHistory(8e6, 200)
	ck := &testClock{t: time.Unix(1000, 0)}
	m := snapModeler(cc, ck)
	flows := []Flow{{Src: a("10.0.1.1"), Dst: a("10.0.2.1")}}
	if _, err := m.GetFlows(flows, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	// Prediction needs history: always a collector walk, snapshot or not.
	if _, err := m.GetFlows(flows, FlowOptions{Predict: true}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 2 {
		t.Fatalf("prediction query ran %d walks total, want 2", got)
	}
	if !cc.lastQ.WithHistory {
		t.Fatal("prediction walk did not request history")
	}
}

func TestSnapshotTopologyAnswersFromSubgraphMemo(t *testing.T) {
	cc := &countingColl{}
	ck := &testClock{t: time.Unix(1000, 0)}
	m := snapModeler(cc, ck)
	hosts := []netip.Addr{a("10.0.1.1"), a("10.0.2.1")}
	g1, err := m.GetTopology(hosts, TopologyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same simplification contract as the collect path.
	if g1.Node("10.0.1.2") != nil || g1.Node("s1") != nil || g1.Node("s2") != nil {
		t.Fatal("snapshot-backed topology not simplified")
	}
	bw, _, err := g1.BottleneckAvail("10.0.1.1", "10.0.2.1")
	if err != nil || math.Abs(bw-6e6) > 1 {
		t.Fatalf("bw = %v err = %v, want 6e6", bw, err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.GetTopology(hosts, TopologyOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cc.calls.Load(); got != 1 {
		t.Fatalf("warm topology queries ran %d walks, want 1", got)
	}
	// Raw queries never answer from the snapshot.
	if _, err := m.GetTopology(hosts, TopologyOptions{Raw: true}); err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 2 {
		t.Fatalf("raw query ran %d walks total, want 2", got)
	}
}

// TestGetFlowsDedupesHostsOneWalkPerUniqueHost pins the fan-out fix:
// flow lists repeating endpoints must walk each unique host once.
func TestGetFlowsDedupesHostsOneWalkPerUniqueHost(t *testing.T) {
	cc := &countingColl{}
	m := New(Config{Collector: cc}) // no snapshot: direct fan-out path
	_, err := m.GetFlows([]Flow{
		{Src: a("10.0.1.1"), Dst: a("10.0.2.1")},
		{Src: a("10.0.1.1"), Dst: a("10.0.2.1")},
		{Src: a("10.0.2.1"), Dst: a("10.0.1.1")},
	}, FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.calls.Load(); got != 1 {
		t.Fatalf("fan-out ran %d collects, want 1", got)
	}
	assertUnique(t, cc.lastQ.Hosts, 2)
}

func TestGetTopologyDedupesHosts(t *testing.T) {
	cc := &countingColl{}
	m := New(Config{Collector: cc})
	hosts := []netip.Addr{a("10.0.1.1"), a("10.0.2.1"), a("10.0.1.1"), a("10.0.2.1")}
	if _, err := m.GetTopology(hosts, TopologyOptions{}); err != nil {
		t.Fatal(err)
	}
	assertUnique(t, cc.lastQ.Hosts, 2)
}

func assertUnique(t *testing.T, hosts []netip.Addr, want int) {
	t.Helper()
	if len(hosts) != want {
		t.Fatalf("fan-out walked %d hosts %v, want %d unique", len(hosts), hosts, want)
	}
	seen := make(map[netip.Addr]bool)
	for _, h := range hosts {
		if seen[h] {
			t.Fatalf("duplicate host %v in fan-out %v", h, hosts)
		}
		seen[h] = true
	}
}
