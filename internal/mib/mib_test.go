package mib

import (
	"net/netip"
	"testing"
	"time"

	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// testNet builds h1—sw—r1—r2—h2 with agents attached.
func testNet(t testing.TB) (*sim.Sim, *netsim.Network, *snmp.Client, map[string]*netsim.Device) {
	t.Helper()
	s := sim.NewSim()
	n := netsim.New(s)
	d := map[string]*netsim.Device{
		"h1": n.AddHost("h1"),
		"h2": n.AddHost("h2"),
		"sw": n.AddSwitch("sw"),
		"r1": n.AddRouter("r1"),
		"r2": n.AddRouter("r2"),
	}
	n.Connect(d["h1"], d["sw"], 100e6, time.Millisecond)
	n.Connect(d["sw"], d["r1"], 100e6, time.Millisecond)
	n.Connect(d["r1"], d["r2"], 10e6, 5*time.Millisecond)
	n.Connect(d["r2"], d["h2"], 100e6, time.Millisecond)
	n.AssignSubnets()
	n.ComputeRoutes()
	reg := snmp.NewRegistry()
	if got := AttachAll(n, reg); got != 3 { // sw, r1, r2 (hosts unreachable by default)
		t.Fatalf("AttachAll attached %d agents, want 3", got)
	}
	c := snmp.NewClient(&snmp.InProc{Registry: reg}, "public")
	return s, n, c, d
}

func TestSystemGroup(t *testing.T) {
	s, _, c, d := testNet(t)
	addr := d["r1"].ManagementAddr().String()
	v, err := c.GetOne(addr, SysName)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Bytes) != "r1" {
		t.Fatalf("sysName = %q", v.Bytes)
	}
	s.RunFor(30 * time.Second)
	v, err = c.GetOne(addr, SysUpTime)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != snmp.KindTimeTicks || v.Int != 3000 {
		t.Fatalf("sysUpTime after 30s = %v, want 3000 ticks", v)
	}
}

func TestIfTable(t *testing.T) {
	_, _, c, d := testNet(t)
	addr := d["r1"].ManagementAddr().String()
	v, err := c.GetOne(addr, IfNumber)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 2 {
		t.Fatalf("r1 ifNumber = %d, want 2", v.Int)
	}
	// WAN interface speed.
	v, err = c.GetOne(addr, IfSpeed.Append(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != snmp.KindGauge32 || v.Int != 10_000_000 {
		t.Fatalf("ifSpeed.2 = %v, want Gauge32(10000000)", v)
	}
}

func TestIfSpeedCapsAtGauge32(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	a := n.AddRouter("a")
	b := n.AddRouter("b")
	n.Connect(a, b, 10e9, 0) // 10 Gbps exceeds Gauge32
	n.AssignSubnets()
	n.ComputeRoutes()
	view := NewDeviceView(n, a)
	v, ok := view.Get(IfSpeed.Append(1))
	if !ok || v.Int != 4294967295 {
		t.Fatalf("10G ifSpeed = %v, want Gauge32 ceiling", v)
	}
}

func TestOctetCountersThroughSNMP(t *testing.T) {
	s, n, c, d := testNet(t)
	addr := d["r1"].ManagementAddr().String()
	before, err := c.GetOne(addr, IfOutOctets.Append(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartFlow(d["h1"], d["h2"], netsim.FlowSpec{Demand: 8e6}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	after, err := c.GetOne(addr, IfOutOctets.Append(2))
	if err != nil {
		t.Fatal(err)
	}
	delta := uint32(after.Int) - uint32(before.Int)
	if delta != 10_000_000 {
		t.Fatalf("octet delta = %d, want 10e6 (1MB/s for 10s)", delta)
	}
}

func TestCounter32Wraps(t *testing.T) {
	s, n, c, d := testNet(t)
	addr := d["r1"].ManagementAddr().String()
	if _, err := n.StartFlow(d["h1"], d["h2"], netsim.FlowSpec{Demand: 10e6}); err != nil {
		t.Fatal(err)
	}
	// 10 Mbit/s = 1.25 MB/s; 2^32 bytes take ~3436s. Run past one wrap.
	s.RunFor(4000 * time.Second)
	v, err := c.GetOne(addr, IfOutOctets.Append(2))
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(1.25e6 * 4000)
	if uint32(v.Int) != uint32(total) {
		t.Fatalf("wrapped counter = %d, want %d", uint32(v.Int), uint32(total))
	}
	if uint64(v.Int) == total {
		t.Fatal("counter did not wrap at 32 bits")
	}
}

func TestRouteTable(t *testing.T) {
	_, n, c, d := testNet(t)
	addr := d["r1"].ManagementAddr().String()
	var dests []string
	err := c.Walk(addr, IPRouteDest, func(o snmp.OID, v snmp.Value) bool {
		dests = append(dests, v.String())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 3 {
		t.Fatalf("r1 advertises %d routes, want 3: %v", len(dests), dests)
	}
	// Next hop for h2's subnet must be r2.
	h2 := d["h2"].Addr().As4()
	sub := snmp.OID{uint32(h2[0]), uint32(h2[1]), uint32(h2[2]), 0}
	v, err := c.GetOne(addr, IPRouteNext.Append(sub...))
	if err != nil {
		t.Fatal(err)
	}
	nh := v.Bytes
	r2ifc := n.IfaceByIP(d["r1"].Routes()[0].NextHop)
	_ = r2ifc
	if v.Kind != snmp.KindIPAddress || len(nh) != 4 {
		t.Fatalf("next hop value %v", v)
	}
	owner := n.DeviceByIP(netip.AddrFrom4(addrFrom4(nh)))
	if owner != d["r2"] {
		t.Fatalf("next hop owner = %v, want r2", owner)
	}
}

func TestRouteMask(t *testing.T) {
	_, _, c, d := testNet(t)
	addr := d["r1"].ManagementAddr().String()
	h1 := d["h1"].Addr().As4()
	sub := snmp.OID{uint32(h1[0]), uint32(h1[1]), uint32(h1[2]), 0}
	v, err := c.GetOne(addr, IPRouteMask.Append(sub...))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{255, 255, 240, 0} // emulator segments are /20s
	for i := range want {
		if v.Bytes[i] != want[i] {
			t.Fatalf("mask = %v, want /20", v.Bytes)
		}
	}
}

func TestIPForwardingFlag(t *testing.T) {
	_, _, c, d := testNet(t)
	v, err := c.GetOne(d["r1"].ManagementAddr().String(), IPForwarding)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 1 {
		t.Fatalf("router ipForwarding = %d, want 1", v.Int)
	}
	v, err = c.GetOne(d["sw"].ManagementAddr().String(), IPForwarding)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 2 {
		t.Fatalf("switch ipForwarding = %d, want 2", v.Int)
	}
}

func TestBridgeMIBFdb(t *testing.T) {
	_, n, c, d := testNet(t)
	addr := d["sw"].ManagementAddr().String()
	v, err := c.GetOne(addr, Dot1dBaseNumPorts)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 2 {
		t.Fatalf("numPorts = %d, want 2", v.Int)
	}
	ports := map[string]int64{}
	err = c.Walk(addr, Dot1dTpFdbPort, func(o snmp.OID, v snmp.Value) bool {
		mac := o[len(o)-6:]
		ports[snmp.OID(mac).String()] = v.Int
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// sw's domain: h1 and r1's segment iface.
	if len(ports) != 2 {
		t.Fatalf("FDB rows = %d, want 2 (%v)", len(ports), ports)
	}
	h1mac := d["h1"].Ifaces()[0].MAC
	key := snmp.OID(macSub(h1mac)).String()
	if p, ok := ports[key]; !ok || p != 1 {
		t.Fatalf("h1 learned on port %d, want 1 (map %v)", p, ports)
	}
	_ = n
}

func TestFdbReflectsHostMove(t *testing.T) {
	_, n, c, d := testNet(t)
	// Add a second switch hanging off sw and move h1 to it.
	sw2 := n.AddSwitch("sw2")
	n.Connect(d["sw"], sw2, 100e6, time.Millisecond)
	reg := snmp.NewRegistry()
	AttachAll(n, reg)
	c = snmp.NewClient(&snmp.InProc{Registry: reg}, "public")

	addr := d["sw"].ManagementAddr().String()
	h1mac := macSub(d["h1"].Ifaces()[0].MAC)
	v, err := c.GetOne(addr, Dot1dTpFdbPort.Append(h1mac...))
	if err != nil {
		t.Fatal(err)
	}
	portBefore := v.Int
	n.MoveHost(d["h1"], sw2, 100e6, time.Millisecond)
	v, err = c.GetOne(addr, Dot1dTpFdbPort.Append(h1mac...))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int == portBefore {
		t.Fatalf("FDB port unchanged (%d) after host move", v.Int)
	}
}

func TestHostsHaveNoAgentByDefault(t *testing.T) {
	_, _, c, d := testNet(t)
	if _, err := c.Get(d["h1"].Addr().String(), SysName); err == nil {
		t.Fatal("host answered SNMP; hosts should be dark by default")
	}
}

func TestFullWalkTerminates(t *testing.T) {
	_, _, c, d := testNet(t)
	rows := 0
	err := c.BulkWalk(d["r1"].ManagementAddr().String(), snmp.MustParseOID("1.3.6.1.2.1"), 16,
		func(snmp.OID, snmp.Value) bool {
			rows++
			return rows < 10000
		})
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 || rows >= 10000 {
		t.Fatalf("full walk saw %d rows", rows)
	}
}

func addrFrom4(b []byte) (a [4]byte) {
	copy(a[:], b)
	return
}

func BenchmarkDeviceViewNext(b *testing.B) {
	s := sim.NewSim()
	n := netsim.New(s)
	sw := n.AddSwitch("sw")
	for i := 0; i < 64; i++ {
		h := n.AddHost(hostName(i))
		n.Connect(h, sw, 100e6, 0)
	}
	n.AssignSubnets()
	n.ComputeRoutes()
	view := NewDeviceView(n, sw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := Dot1dTpFdbPort.Clone()
		for {
			next, _, ok := view.Next(cur)
			if !ok || !next.HasPrefix(Dot1dTpFdbPort) {
				break
			}
			cur = next
		}
	}
}

func hostName(i int) string { return "h" + string(rune('a'+i/26)) + string(rune('a'+i%26)) }
