// Package mib exposes emulated netsim devices as SNMP agents serving the
// MIB-II objects the Remos SNMP Collector reads (system group, interfaces
// table, ipRouteTable) and the Bridge-MIB forwarding database the Bridge
// Collector walks on switches.
package mib

import (
	"fmt"
	"sort"
	"sync"

	"remos/internal/netsim"
	"remos/internal/sim"
	"remos/internal/snmp"
)

// Well-known OIDs, exported for collectors.
var (
	SysDescr  = snmp.MustParseOID("1.3.6.1.2.1.1.1.0")
	SysObject = snmp.MustParseOID("1.3.6.1.2.1.1.2.0")
	SysUpTime = snmp.MustParseOID("1.3.6.1.2.1.1.3.0")
	SysName   = snmp.MustParseOID("1.3.6.1.2.1.1.5.0")

	IfNumber    = snmp.MustParseOID("1.3.6.1.2.1.2.1.0")
	IfTable     = snmp.MustParseOID("1.3.6.1.2.1.2.2.1")
	IfIndex     = IfTable.Append(1)
	IfDescr     = IfTable.Append(2)
	IfType      = IfTable.Append(3)
	IfSpeed     = IfTable.Append(5)
	IfPhysAddr  = IfTable.Append(6)
	IfOperSt    = IfTable.Append(8)
	IfInOctets  = IfTable.Append(10)
	IfOutOctets = IfTable.Append(16)

	// ifXTable high-capacity octet counters (RFC 2863): Counter64, so a
	// gigabit link does not wrap between polls the way Counter32 does
	// (~34 s at line rate). Collectors prefer these when the agent
	// serves them.
	IfXTable      = snmp.MustParseOID("1.3.6.1.2.1.31.1.1.1")
	IfHCInOctets  = IfXTable.Append(6)
	IfHCOutOctets = IfXTable.Append(10)

	IPForwarding = snmp.MustParseOID("1.3.6.1.2.1.4.1.0")
	// ipNetToMediaPhysAddress: the ARP table, indexed ifIndex.ip4.
	IPNetToMediaPhys = snmp.MustParseOID("1.3.6.1.2.1.4.22.1.2")
	// ipAdEntIfIndex: the device's own addresses, indexed by ip4.
	IPAdEntIfIndex = snmp.MustParseOID("1.3.6.1.2.1.4.20.1.2")
	IPRouteTable   = snmp.MustParseOID("1.3.6.1.2.1.4.21.1")
	IPRouteDest    = IPRouteTable.Append(1)
	IPRouteIfIdx   = IPRouteTable.Append(2)
	IPRouteNext    = IPRouteTable.Append(7)
	IPRouteMask    = IPRouteTable.Append(11)

	// Remos private wireless arc (enterprise MIB), served by access
	// points: station count plus per-station negotiated rate and RSSI.
	// Pre-standard 802.11 gear exposed association tables in vendor
	// arcs exactly like this.
	WlanNumStations = snmp.MustParseOID("1.3.6.1.4.1.99999.2.1.0")
	WlanStaTable    = snmp.MustParseOID("1.3.6.1.4.1.99999.2.2.1")
	WlanStaRate     = WlanStaTable.Append(2)
	WlanStaRSSI     = WlanStaTable.Append(3)

	// hrProcessorLoad (Host Resources MIB): the per-processor load the
	// host load sensor polls. The emulator exposes one logical
	// processor per host, scaled so 1.0 of load reads as 100.
	HrProcessorLoad = snmp.MustParseOID("1.3.6.1.2.1.25.3.3.1.2.1")

	Dot1dBaseBridgeAddr  = snmp.MustParseOID("1.3.6.1.2.1.17.1.1.0")
	Dot1dBaseNumPorts    = snmp.MustParseOID("1.3.6.1.2.1.17.1.2.0")
	Dot1dBasePortIfIndex = snmp.MustParseOID("1.3.6.1.2.1.17.1.4.1.2")
	Dot1dTpFdbTable      = snmp.MustParseOID("1.3.6.1.2.1.17.4.3.1")
	Dot1dTpFdbAddress    = Dot1dTpFdbTable.Append(1)
	Dot1dTpFdbPort       = Dot1dTpFdbTable.Append(2)
	Dot1dTpFdbStatus     = Dot1dTpFdbTable.Append(3)
)

// FdbStatusLearned is the dot1dTpFdbStatus value for a learned entry.
const FdbStatusLearned = 3

// entry is one bound OID with a lazily evaluated value.
type entry struct {
	oid snmp.OID
	fn  func() snmp.Value
}

// DeviceView serves a netsim device's management objects. It implements
// snmp.MIBView. Table layout (OID order) is cached and revalidated against
// the network's topology epoch; values (counters, uptime) are computed on
// access.
type DeviceView struct {
	net *netsim.Network
	dev *netsim.Device

	// NoHC, when set before first use, omits the ifXTable high-capacity
	// counters — modeling legacy gear so collector fallback paths can be
	// exercised.
	NoHC bool

	mu      sync.Mutex
	epoch   int
	entries []entry
}

// NewDeviceView builds a view over the device.
func NewDeviceView(n *netsim.Network, d *netsim.Device) *DeviceView {
	return &DeviceView{net: n, dev: d, epoch: -1}
}

func (v *DeviceView) refreshLocked() {
	ep := v.net.TopologyEpoch()
	if ep == v.epoch {
		return
	}
	v.epoch = ep
	v.entries = v.entries[:0]
	d := v.dev
	add := func(oid snmp.OID, fn func() snmp.Value) {
		v.entries = append(v.entries, entry{oid: oid, fn: fn})
	}

	// system group
	add(SysDescr, constStr(fmt.Sprintf("remos emulated %s %s", d.Kind, d.Name)))
	add(SysObject, func() snmp.Value { return snmp.OIDValue(snmp.MustParseOID("1.3.6.1.4.1.99999.1")) })
	add(SysUpTime, func() snmp.Value {
		since := d.BootTime()
		if since.IsZero() {
			since = sim.Epoch
		}
		up := v.net.Scheduler().Now().Sub(since)
		return snmp.Ticks(uint32(up.Milliseconds() / 10))
	})
	add(SysName, constStr(d.Name))

	// interfaces group
	ifaces := d.Ifaces()
	add(IfNumber, func() snmp.Value { return snmp.Int64(int64(len(ifaces))) })
	for _, ifc := range ifaces {
		ifc := ifc
		idx := uint32(ifc.Index)
		add(IfIndex.Append(idx), func() snmp.Value { return snmp.Int64(int64(ifc.Index)) })
		add(IfDescr.Append(idx), constStr(ifc.Name))
		add(IfType.Append(idx), func() snmp.Value { return snmp.Int64(6) }) // ethernetCsmacd
		add(IfSpeed.Append(idx), func() snmp.Value {
			speed := ifc.Speed()
			if speed > 4294967295 {
				speed = 4294967295 // Gauge32 ceiling, as RFC 2863 prescribes
			}
			return snmp.Gauge(uint32(speed))
		})
		add(IfPhysAddr.Append(idx), func() snmp.Value { return snmp.Octets(append([]byte(nil), ifc.MAC[:]...)) })
		add(IfOperSt.Append(idx), func() snmp.Value {
			if ifc.Link != nil {
				return snmp.Int64(1) // up
			}
			return snmp.Int64(2) // down
		})
		add(IfInOctets.Append(idx), func() snmp.Value {
			in, _ := ifc.Counters()
			return snmp.Counter(in)
		})
		add(IfOutOctets.Append(idx), func() snmp.Value {
			_, out := ifc.Counters()
			return snmp.Counter(out)
		})
		if !v.NoHC {
			add(IfHCInOctets.Append(idx), func() snmp.Value {
				in, _ := ifc.Counters()
				return snmp.Counter64Val(in)
			})
			add(IfHCOutOctets.Append(idx), func() snmp.Value {
				_, out := ifc.Counters()
				return snmp.Counter64Val(out)
			})
		}
	}

	// ip group: forwarding flag and routes (routers only; hosts would
	// carry just their default route, which Remos reads from
	// configuration instead).
	fwd := int64(2)
	if d.IsRouter() {
		fwd = 1
	}
	add(IPForwarding, func() snmp.Value { return snmp.Int64(fwd) })
	if d.IsRouter() {
		for _, rt := range d.Routes() {
			rt := rt
			dest := rt.Prefix.Masked().Addr().As4()
			sub := []uint32{uint32(dest[0]), uint32(dest[1]), uint32(dest[2]), uint32(dest[3])}
			add(IPRouteDest.Append(sub...), func() snmp.Value { return snmp.IPv4(dest) })
			add(IPRouteIfIdx.Append(sub...), func() snmp.Value { return snmp.Int64(int64(rt.IfIndex)) })
			add(IPRouteNext.Append(sub...), func() snmp.Value {
				if rt.NextHop.IsValid() {
					return snmp.IPv4(rt.NextHop.As4())
				}
				return snmp.IPv4([4]byte{0, 0, 0, 0}) // directly connected
			})
			add(IPRouteMask.Append(sub...), func() snmp.Value {
				bits := rt.Prefix.Bits()
				var m uint32 = 0
				if bits > 0 {
					m = ^uint32(0) << (32 - uint(bits))
				}
				return snmp.IPv4([4]byte{byte(m >> 24), byte(m >> 16), byte(m >> 8), byte(m)})
			})
		}
	}

	// Host Resources: CPU load for hosts with an attached load source.
	if d.Kind == netsim.Host {
		add(HrProcessorLoad, func() snmp.Value {
			return snmp.Gauge(uint32(d.Load() * 100))
		})
	}

	// Address table: the device's own interface addresses, which
	// collectors use to recognize one router contacted under several
	// addresses.
	for _, ifc := range ifaces {
		if !ifc.IP.IsValid() {
			continue
		}
		ifc := ifc
		ip4 := ifc.IP.As4()
		add(IPAdEntIfIndex.Append(uint32(ip4[0]), uint32(ip4[1]), uint32(ip4[2]), uint32(ip4[3])),
			func() snmp.Value { return snmp.Int64(int64(ifc.Index)) })
	}

	// ARP table (routers only): one entry per station on each attached
	// segment, the source the SNMP Collector uses to resolve host MACs
	// for Bridge Collector lookups.
	if d.IsRouter() {
		for _, rif := range d.Ifaces() {
			if !rif.Prefix.IsValid() {
				continue
			}
			rif := rif
			for _, other := range v.net.Devices() {
				for _, oif := range other.Ifaces() {
					if oif == rif || !oif.IP.IsValid() || oif.Prefix != rif.Prefix {
						continue
					}
					oif := oif
					ip4 := oif.IP.As4()
					sub := []uint32{uint32(rif.Index), uint32(ip4[0]), uint32(ip4[1]), uint32(ip4[2]), uint32(ip4[3])}
					add(IPNetToMediaPhys.Append(sub...), func() snmp.Value {
						return snmp.Octets(append([]byte(nil), oif.MAC[:]...))
					})
				}
			}
		}
	}

	// Bridge-MIB (switches only).
	if d.Kind == netsim.Switch {
		if len(ifaces) > 0 {
			first := ifaces[0]
			add(Dot1dBaseBridgeAddr, func() snmp.Value {
				return snmp.Octets(append([]byte(nil), first.MAC[:]...))
			})
		}
		add(Dot1dBaseNumPorts, func() snmp.Value { return snmp.Int64(int64(len(ifaces))) })
		for _, ifc := range ifaces {
			ifc := ifc
			add(Dot1dBasePortIfIndex.Append(uint32(ifc.Index)),
				func() snmp.Value { return snmp.Int64(int64(ifc.Index)) })
		}
		// Access points additionally serve the wireless station table.
		if ap := v.net.AccessPointOf(d); ap != nil {
			assocs := ap.Associations()
			add(WlanNumStations, func() snmp.Value { return snmp.Int64(int64(len(assocs))) })
			for _, a := range assocs {
				a := a
				sub := macSub(netsim.MAC(a.MAC))
				add(WlanStaRate.Append(sub...), func() snmp.Value {
					rate := a.Rate
					if rate > 4294967295 {
						rate = 4294967295
					}
					return snmp.Gauge(uint32(rate))
				})
				add(WlanStaRSSI.Append(sub...), func() snmp.Value {
					return snmp.Int64(int64(a.RSSI))
				})
			}
		}
		for _, fe := range v.net.FDB(d) {
			fe := fe
			sub := macSub(fe.MAC)
			add(Dot1dTpFdbAddress.Append(sub...), func() snmp.Value {
				return snmp.Octets(append([]byte(nil), fe.MAC[:]...))
			})
			add(Dot1dTpFdbPort.Append(sub...), func() snmp.Value { return snmp.Int64(int64(fe.Port)) })
			add(Dot1dTpFdbStatus.Append(sub...), func() snmp.Value { return snmp.Int64(FdbStatusLearned) })
		}
	}

	sortEntries(v.entries)
}

func macSub(m netsim.MAC) []uint32 {
	return []uint32{uint32(m[0]), uint32(m[1]), uint32(m[2]), uint32(m[3]), uint32(m[4]), uint32(m[5])}
}

func constStr(s string) func() snmp.Value {
	return func() snmp.Value { return snmp.Str(s) }
}

func sortEntries(es []entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].oid.Cmp(es[j].oid) < 0 })
}

// Get implements snmp.MIBView.
func (v *DeviceView) Get(oid snmp.OID) (snmp.Value, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.refreshLocked()
	lo, hi := 0, len(v.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := v.entries[mid].oid.Cmp(oid); {
		case c == 0:
			return v.entries[mid].fn(), true
		case c < 0:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return snmp.Value{}, false
}

// Next implements snmp.MIBView.
func (v *DeviceView) Next(oid snmp.OID) (snmp.OID, snmp.Value, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.refreshLocked()
	lo, hi := 0, len(v.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.entries[mid].oid.Cmp(oid) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.entries) {
		return v.entries[lo].oid.Clone(), v.entries[lo].fn(), true
	}
	return nil, snmp.Value{}, false
}

// AttachAll creates an agent for every SNMP-reachable device in the
// network and registers it in the registry under the device's management
// address. It returns the number of agents attached.
func AttachAll(n *netsim.Network, reg *snmp.Registry) int {
	count := 0
	for _, d := range n.Devices() {
		if !d.SNMP.Reachable {
			continue
		}
		agent := &snmp.Agent{
			Community: d.SNMP.Community,
			View:      NewDeviceView(n, d),
		}
		// An agent answers on every address the device holds, like a
		// real SNMP daemon bound to all interfaces.
		seen := false
		for _, ifc := range d.Ifaces() {
			if ifc.IP.IsValid() {
				reg.Register(ifc.IP.String(), agent)
				seen = true
			}
		}
		if mgmt := d.ManagementAddr(); mgmt.IsValid() {
			reg.Register(mgmt.String(), agent)
			seen = true
		}
		if seen {
			count++
		}
	}
	return count
}
