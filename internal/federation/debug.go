package federation

import (
	"encoding/json"
	"net/http"
	"sort"
)

// AdvertSnapshot is one advert's view in the federation snapshot.
type AdvertSnapshot struct {
	Name     string  `json:"name"`
	Endpoint string  `json:"endpoint,omitempty"`
	Local    bool    `json:"local"`
	Priority int     `json:"priority"`
	Epoch    uint64  `json:"epoch"`
	Seq      uint64  `json:"seq"`
	LeaseAge float64 `json:"lease_age_seconds"`
	LeaseTTL float64 `json:"lease_ttl_seconds"`
}

// DomainSnapshot is one domain's view: its adverts in failover order
// and the router's cache state for it.
type DomainSnapshot struct {
	Domain      string           `json:"domain"`
	Adverts     []AdvertSnapshot `json:"adverts"`
	CachedFrom  string           `json:"cached_from,omitempty"`
	CachedEpoch uint64           `json:"cached_epoch,omitempty"`
	Stale       bool             `json:"stale,omitempty"`
}

// RouterSnapshot is the full diagnostic view DebugHandler serves and
// remosctl stats federation renders.
type RouterSnapshot struct {
	Domains     []DomainSnapshot `json:"domains"`
	FlowQueries int64            `json:"flow_queries"`
	Collects    int64            `json:"collects"`
	Fetches     int64            `json:"domain_fetches"`
	CacheHits   int64            `json:"cache_hits"`
	StaleServes int64            `json:"stale_serves"`
	Failovers   int64            `json:"failovers"`
	Stitches    int64            `json:"stitches"`
}

// Snapshot assembles the current mesh view: every advertised domain
// with lease ages from the directory's own clock, plus the router's
// cache and counters.
func (r *Router) Snapshot() RouterSnapshot {
	status := r.cfg.Directory.Status()
	now := r.cfg.Directory.Now()
	byDomain := make(map[string][]AdvertSnapshot)
	for _, st := range status {
		if st.Domain == "" {
			continue
		}
		byDomain[st.Domain] = append(byDomain[st.Domain], AdvertSnapshot{
			Name:     st.Name,
			Endpoint: st.Endpoint,
			Local:    st.Collector != nil,
			Priority: st.Priority,
			Epoch:    st.Epoch,
			Seq:      st.Seq,
			LeaseAge: now.Sub(st.Renewed).Seconds(),
			LeaseTTL: st.Expires.Sub(now).Seconds(),
		})
	}
	names := make([]string, 0, len(byDomain))
	for name := range byDomain {
		names = append(names, name)
	}
	sort.Strings(names)

	out := RouterSnapshot{
		FlowQueries: r.mFlows.Value(),
		Collects:    r.mCollects.Value(),
		Fetches:     r.mFetches.Value(),
		CacheHits:   r.mCacheHits.Value(),
		StaleServes: r.mStale.Value(),
		Failovers:   r.mFailovers.Value(),
		Stitches:    r.mStitches.Value(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		as := byDomain[name]
		sort.Slice(as, func(i, j int) bool {
			if as[i].Priority != as[j].Priority {
				return as[i].Priority < as[j].Priority
			}
			return as[i].Name < as[j].Name
		})
		ds := DomainSnapshot{Domain: name, Adverts: as}
		if st, ok := r.domains[name]; ok {
			ds.CachedFrom, ds.CachedEpoch, ds.Stale = st.From, st.Epoch, st.Stale
		}
		out.Domains = append(out.Domains, ds)
	}
	return out
}

// DebugHandler serves the Snapshot as JSON — mounted by remosd at
// /debug/federation.
func (r *Router) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck
	})
}
