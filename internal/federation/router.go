package federation

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"remos/internal/collector"
	"remos/internal/conc"
	"remos/internal/directory"
	"remos/internal/modeler"
	"remos/internal/obs"
	"remos/internal/rerr"
	"remos/internal/topology"
)

// RouterConfig wires a Router.
type RouterConfig struct {
	// Name is the router's collector name (default "federation-router").
	Name string
	// Directory is the local replica of the mesh directory. Required.
	Directory *directory.Service
	// Obs, when set, receives the remos_federation_* router metrics.
	Obs *obs.Registry
	// Parallelism bounds concurrent sub-queries during fan-out
	// (0 = unbounded by the router; conc applies its default).
	Parallelism int
	// Timeout bounds each per-domain fetch (default 10s).
	Timeout time.Duration
}

// domainState is one domain's cached answer: the serving graph fetched
// from the advert named From at its advertised epoch. The cache is
// valid while the domain's best advert still carries the same name and
// epoch; a heartbeat moving the epoch on invalidates it.
type domainState struct {
	From  string
	Epoch uint64
	Graph *topology.Graph
	// Stale marks a graph being served past its epoch because every
	// advert of the domain is currently unreachable — the last-resort
	// failover step.
	Stale bool
}

// Router answers queries that may span administrative domains. It is a
// collector (Collect fans sub-queries to the owning masters and merges)
// and a flow answerer (GetFlowsContext stitches every domain's serving
// graph at the border links and runs max-min on the whole), so a proto
// server backed by a Router serves intra- and cross-domain queries
// alike.
type Router struct {
	cfg RouterConfig

	mu       sync.Mutex
	domains  map[string]domainState
	resolved map[string]collector.Interface
	// The stitched-graph memo: valid while every domain's cache entry
	// is unchanged (signature over domain/advert/epoch/staleness).
	stitchSig string
	paths     *topology.PathIndex

	mCollects  *obs.Counter
	mFlows     *obs.Counter
	mFetches   *obs.Counter
	mCacheHits *obs.Counter
	mStale     *obs.Counter
	mFailovers *obs.Counter
	mStitches  *obs.Counter
	gDomains   *obs.Gauge
}

// NewRouter builds a Router over a directory replica.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Directory == nil {
		return nil, fmt.Errorf("federation: router needs a directory")
	}
	if cfg.Name == "" {
		cfg.Name = "federation-router"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	r := &Router{
		cfg:      cfg,
		domains:  make(map[string]domainState),
		resolved: make(map[string]collector.Interface),
	}
	r.mCollects = cfg.Obs.Counter("remos_federation_collects_total",
		"topology queries fanned out to owning domain masters")
	r.mFlows = cfg.Obs.Counter("remos_federation_flow_queries_total",
		"flow queries answered on the stitched federated graph")
	r.mFetches = cfg.Obs.Counter("remos_federation_domain_fetches_total",
		"domain serving graphs fetched from masters")
	r.mCacheHits = cfg.Obs.Counter("remos_federation_cache_hits_total",
		"domain answers served from the epoch-validated cache")
	r.mStale = cfg.Obs.Counter("remos_federation_stale_serves_total",
		"domains served from a stale cache because every master was unreachable")
	r.mFailovers = cfg.Obs.Counter("remos_federation_failovers_total",
		"sub-queries answered by a lower-priority replica after the preferred master failed")
	r.mStitches = cfg.Obs.Counter("remos_federation_stitches_total",
		"stitched federated graphs built (cache-miss path)")
	r.gDomains = cfg.Obs.Gauge("remos_federation_domains",
		"administrative domains currently advertised in the directory")
	return r, nil
}

// Name implements collector.Interface.
func (r *Router) Name() string { return r.cfg.Name }

// domainAdverts groups the directory's federated adverts by domain,
// each group in failover order (priority, then name), and returns the
// sorted domain names. Non-federated adverts (no Domain) are not part
// of the mesh and are skipped.
func (r *Router) domainAdverts() ([]string, map[string][]directory.Advert) {
	byDomain := make(map[string][]directory.Advert)
	for _, a := range r.cfg.Directory.Adverts() {
		if a.Domain == "" {
			continue
		}
		byDomain[a.Domain] = append(byDomain[a.Domain], a)
	}
	names := make([]string, 0, len(byDomain))
	for name, as := range byDomain {
		names = append(names, name)
		sort.Slice(as, func(i, j int) bool {
			if as[i].Priority != as[j].Priority {
				return as[i].Priority < as[j].Priority
			}
			return as[i].Name < as[j].Name
		})
	}
	sort.Strings(names)
	r.gDomains.Set(float64(len(names)))
	return names, byDomain
}

// resolve returns a collector for the advert, preferring the local
// handle and caching protocol clients so connections persist.
func (r *Router) resolve(a directory.Advert) (collector.Interface, error) {
	if a.Collector != nil {
		return a.Collector, nil
	}
	key := a.Name + "|" + a.Endpoint
	r.mu.Lock()
	c, ok := r.resolved[key]
	r.mu.Unlock()
	if ok {
		return c, nil
	}
	c, err := directory.Resolve(a)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.resolved[key] = c
	r.mu.Unlock()
	return c, nil
}

// fetchDomain brings one domain's cache entry up to the advertised
// epoch, walking the domain's adverts in failover order and falling
// back to a stale cached graph only when every replica is unreachable.
func (r *Router) fetchDomain(ctx context.Context, domain string, adverts []directory.Advert) error {
	best := adverts[0]
	r.mu.Lock()
	cur, ok := r.domains[domain]
	r.mu.Unlock()
	if ok && !cur.Stale && cur.From == best.Name && cur.Epoch == best.Epoch {
		r.mCacheHits.Inc()
		return nil
	}
	var firstErr error
	for i, a := range adverts {
		coll, err := r.resolve(a)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		// The empty query asks a domain master for its whole serving
		// graph — interior plus border links, exactly what stitching
		// needs.
		res, err := coll.Collect(collector.Query{}.WithContext(fctx))
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.mFetches.Inc()
		if i > 0 {
			r.mFailovers.Inc()
		}
		r.mu.Lock()
		r.domains[domain] = domainState{From: a.Name, Epoch: a.Epoch, Graph: res.Graph}
		r.mu.Unlock()
		return nil
	}
	if ok {
		// Every replica is down but we hold a past answer: serve it,
		// marked stale so the stitch signature distinguishes it and the
		// next query retries the fetch.
		if !cur.Stale {
			cur.Stale = true
			r.mu.Lock()
			r.domains[domain] = cur
			r.mu.Unlock()
		}
		r.mStale.Inc()
		return nil
	}
	return rerr.Tag(fmt.Errorf("federation: domain %q unreachable: %w", domain, firstErr),
		rerr.ErrCollectorUnavailable)
}

// stitchedPaths refreshes every domain and returns the path index over
// the stitched graph, rebuilt only when some domain's epoch moved.
func (r *Router) stitchedPaths(ctx context.Context) (*topology.PathIndex, error) {
	names, byDomain := r.domainAdverts()
	if len(names) == 0 {
		return nil, rerr.Tagf(rerr.ErrCollectorUnavailable,
			"federation: no domains advertised in the directory")
	}
	err := conc.ForEachCtx(ctx, len(names), r.cfg.Parallelism, func(i int) error {
		return r.fetchDomain(ctx, names[i], byDomain[names[i]])
	})
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	var sig strings.Builder
	for _, name := range names {
		st := r.domains[name]
		fmt.Fprintf(&sig, "%s=%s@%d,%v;", name, st.From, st.Epoch, st.Stale)
	}
	if sig.String() == r.stitchSig && r.paths != nil {
		return r.paths, nil
	}
	// Merging every domain's serving graph joins the domains at their
	// border links and reconstructs the full topology exactly (the
	// netsim partition tests pin this), so max-min on the stitched
	// graph equals a single master's whole-graph walk byte for byte.
	stitched := topology.NewGraph()
	for _, name := range names {
		stitched.Merge(r.domains[name].Graph)
	}
	r.mStitches.Inc()
	r.stitchSig = sig.String()
	r.paths = topology.NewPathIndex(stitched)
	return r.paths, nil
}

// GetFlowsContext implements proto.FlowAnswerer: per-flow max-min fair
// allocations on the stitched federated graph.
func (r *Router) GetFlowsContext(ctx context.Context, flows []modeler.Flow, _ modeler.FlowOptions) ([]modeler.FlowInfo, error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("federation: no flows requested")
	}
	r.mFlows.Inc()
	paths, err := r.stitchedPaths(ctx)
	if err != nil {
		return nil, err
	}
	reqs := make([]topology.FlowRequest, len(flows))
	for i, f := range flows {
		reqs[i] = topology.FlowRequest{Src: f.Src.String(), Dst: f.Dst.String(), Demand: f.Demand}
	}
	preds, err := paths.FlowAlloc(reqs)
	if err != nil {
		return nil, err
	}
	out := make([]modeler.FlowInfo, len(flows))
	for i := range flows {
		out[i] = modeler.FlowInfo{
			Flow:      flows[i],
			Available: preds[i].Available,
			Latency:   preds[i].Latency,
			Jitter:    preds[i].Jitter,
			Path:      preds[i].Path,
			Predicted: preds[i].Available,
		}
	}
	return out, nil
}

// Collect implements collector.Interface. A query with hosts fans
// sub-queries to the masters owning those hosts (longest-prefix match
// through the directory, failover in priority order) and merges the
// answers in sorted domain order. The empty query answers with the
// local domains' serving graphs — it is what peers send to fetch this
// daemon's slice of the mesh.
func (r *Router) Collect(q collector.Query) (*collector.Result, error) {
	ctx := q.Context()
	r.mCollects.Inc()
	if len(q.Hosts) == 0 {
		return r.collectLocal(ctx)
	}

	// Group hosts by owning domain. Every advert for a host shares the
	// host's owning domain by construction (one subnet never spans
	// domains), so the first advert's domain names the group and the
	// full list is the group's failover order.
	groups := make(map[string][]netip.Addr)
	failover := make(map[string][]directory.Advert)
	for _, h := range q.Hosts {
		adverts := r.cfg.Directory.LookupAll(h)
		if len(adverts) == 0 {
			return nil, rerr.Tagf(rerr.ErrUnknownHost,
				"federation: no domain advertises %v", h)
		}
		key := adverts[0].Domain
		if key == "" {
			key = adverts[0].Name
		}
		if _, ok := failover[key]; !ok {
			failover[key] = adverts
		}
		groups[key] = append(groups[key], h)
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)

	results := make([]*collector.Result, len(names))
	err := conc.ForEachCtx(ctx, len(names), r.cfg.Parallelism, func(i int) error {
		name := names[i]
		var firstErr error
		for n, a := range failover[name] {
			coll, err := r.resolve(a)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			fctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
			res, err := coll.Collect(collector.Query{
				Hosts: groups[name], WithHistory: q.WithHistory, WithPredictions: q.WithPredictions,
			}.WithContext(fctx))
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if n > 0 {
				r.mFailovers.Inc()
			}
			results[i] = res
			return nil
		}
		return rerr.Tag(fmt.Errorf("federation: domain %q unreachable: %w", name, firstErr),
			rerr.ErrCollectorUnavailable)
	})
	if err != nil {
		return nil, err
	}
	return mergeResults(results, q), nil
}

// collectLocal answers the empty query with the locally-served domains'
// graphs — adverts carrying a local collector handle are this daemon's
// own masters.
func (r *Router) collectLocal(ctx context.Context) (*collector.Result, error) {
	var local []directory.Advert
	for _, a := range r.cfg.Directory.Adverts() {
		if a.Domain != "" && a.Collector != nil {
			local = append(local, a)
		}
	}
	if len(local) == 0 {
		return nil, rerr.Tagf(rerr.ErrCollectorUnavailable,
			"federation: no local domain master to answer the empty query")
	}
	results := make([]*collector.Result, len(local))
	for i, a := range local {
		res, err := a.Collector.Collect(collector.Query{}.WithContext(ctx))
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return mergeResults(results, collector.Query{}), nil
}

// mergeResults coalesces sub-results deterministically (the results
// slice is already in sorted domain order).
func mergeResults(results []*collector.Result, q collector.Query) *collector.Result {
	merged := topology.NewGraph()
	history := make(map[collector.HistKey][]collector.Sample)
	forecasts := make(map[collector.HistKey]collector.Forecast)
	for _, sub := range results {
		if sub == nil {
			continue
		}
		merged.Merge(sub.Graph)
		for k, v := range sub.History {
			history[k] = v
		}
		for k, v := range sub.Predictions {
			forecasts[k] = v
		}
	}
	res := &collector.Result{Graph: merged}
	if q.WithHistory {
		res.History = history
	}
	if q.WithPredictions {
		res.Predictions = forecasts
	}
	return res
}
