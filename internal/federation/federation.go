// Package federation is the multi-master collector mesh: each
// administrative domain runs its own master (a DomainServer) over its
// slice of the network, masters advertise their responsibility into a
// replicated directory (internal/directory grows leases, peer
// replication, and priority-ordered failover for this), and a Router on
// any daemon answers cross-domain queries by resolving the owning
// master per host, fanning sub-queries out over the existing wire
// protocols, and stitching the per-domain subgraphs at their declared
// border links into one answer.
//
// The stitched answer is exact, not approximate: a partition's serving
// graphs (domain interior plus incident border links, see
// netsim.PartitionDomains) merge back into the original topology
// byte-for-byte, and topology adjacency is canonical — insensitive to
// link insertion order — so per-flow max-min allocations computed on the
// stitched graph equal a single master's whole-graph walk exactly. The
// partition property tests pin the reconstruction; the federation tests
// pin the end-to-end equality.
//
// Liveness rides on directory leases. A master heartbeats its advert
// (carrying its current snapshot epoch) at a fraction of the lease TTL
// and the directory replicates it to every peer under latest-lease-wins.
// When a master dies its lease lapses, the advert vanishes from every
// replica, and the Router fails over to the domain's next surviving
// advert in priority order — applications see a slower answer, never a
// non-typed error. Remote answers are cached per domain and invalidated
// when the owning master's advertised epoch moves on, so a repeated
// cross-domain query costs zero round-trips between epoch changes.
package federation

import (
	"fmt"
	"net/netip"
	"time"

	"remos/internal/collector"
	"remos/internal/directory"
	"remos/internal/obs"
	"remos/internal/rerr"
	"remos/internal/sim"
	"remos/internal/snapshot"
	"remos/internal/topology"
)

// DomainConfig wires one domain master.
type DomainConfig struct {
	// Name is the advert name, unique across the mesh (e.g. "east-a"
	// for domain east's primary, "east-b" for its standby). Required.
	Name string
	// Domain names the administrative domain this master serves.
	// Replicas of the same domain share it. Required.
	Domain string
	// Priority orders this master among the domain's replicas: lower is
	// preferred, so routers fail over in priority order.
	Priority int
	// Endpoint is how peers reach this master ("tcp://host:port" or
	// "http://host:port"). Empty registers a local-only master.
	Endpoint string
	// Graph supplies the domain's current serving graph — interior
	// links plus incident border links (Partition.ServingGraph), with
	// live utilizations. Called on every refresh. Required.
	Graph func() (*topology.Graph, error)
	// Hosts are the domain's endpoint addresses, stamped fresh on every
	// refresh.
	Hosts []netip.Addr
	// Prefixes are the subnets this master advertises responsibility
	// for (Partition.HostPrefixes). Required.
	Prefixes []netip.Prefix
	// Directory is the local replicated directory the advert heartbeats
	// into. Required.
	Directory *directory.Service
	// Sched supplies the clock and the refresh timer. Required.
	Sched sim.Scheduler
	// Obs, when set, receives the remos_federation_* domain metrics.
	Obs *obs.Registry
	// Refresh is the serving-graph refresh (and heartbeat) interval;
	// each refresh advances the domain's snapshot epoch. Default 1s.
	Refresh time.Duration
	// LeaseTTL is the advert lease lifetime; default 3×Refresh. The
	// heartbeat runs at min(Refresh, LeaseTTL/3), so a healthy master
	// always renews well inside its lease.
	LeaseTTL time.Duration
}

// DomainServer is one domain's master: a snapshot store refreshed from
// the domain's serving graph on a timer, a collector serving the current
// generation, and a heartbeat keeping the directory lease alive with the
// current epoch piggybacked on the advert.
type DomainServer struct {
	cfg   DomainConfig
	store *snapshot.Store
	timer *sim.Timer

	gEpoch      *obs.Gauge
	mRefreshes  *obs.Counter
	mRefreshErr *obs.Counter
}

// StartDomain validates the config, performs the first refresh
// synchronously (so the collector can answer immediately), and starts
// the heartbeat.
func StartDomain(cfg DomainConfig) (*DomainServer, error) {
	switch {
	case cfg.Name == "":
		return nil, fmt.Errorf("federation: domain master needs a name")
	case cfg.Domain == "":
		return nil, fmt.Errorf("federation: master %q needs a domain", cfg.Name)
	case cfg.Graph == nil:
		return nil, fmt.Errorf("federation: master %q needs a graph source", cfg.Name)
	case len(cfg.Prefixes) == 0:
		return nil, fmt.Errorf("federation: master %q advertises no prefixes", cfg.Name)
	case cfg.Directory == nil || cfg.Sched == nil:
		return nil, fmt.Errorf("federation: master %q needs a directory and a scheduler", cfg.Name)
	}
	if cfg.Refresh <= 0 {
		cfg.Refresh = time.Second
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * cfg.Refresh
	}
	d := &DomainServer{
		cfg:   cfg,
		store: snapshot.New(snapshot.Config{Now: cfg.Sched.Now}),
	}
	d.gEpoch = cfg.Obs.Gauge("remos_federation_domain_epoch",
		"domain master's current snapshot generation", "domain", cfg.Domain, "advert", cfg.Name)
	d.mRefreshes = cfg.Obs.Counter("remos_federation_refreshes_total",
		"domain serving-graph refreshes", "domain", cfg.Domain)
	d.mRefreshErr = cfg.Obs.Counter("remos_federation_refresh_errors_total",
		"domain serving-graph refreshes that failed", "domain", cfg.Domain)
	if err := d.refresh(); err != nil {
		return nil, err
	}
	heartbeat := cfg.Refresh
	if cfg.LeaseTTL/3 < heartbeat {
		heartbeat = cfg.LeaseTTL / 3
	}
	d.timer = cfg.Sched.Every(heartbeat, func() { d.refresh() })
	return d, nil
}

// refresh folds the current serving graph into a new snapshot epoch and
// renews the directory lease with that epoch on the advert.
func (d *DomainServer) refresh() error {
	g, err := d.cfg.Graph()
	if err != nil {
		d.mRefreshErr.Inc()
		return fmt.Errorf("federation: master %q: serving graph: %w", d.cfg.Name, err)
	}
	d.mRefreshes.Inc()
	snap := d.store.Apply(d.cfg.Hosts, &collector.Result{Graph: g}, d.cfg.Sched.Now())
	d.gEpoch.Set(float64(snap.Epoch()))
	return d.cfg.Directory.Register(directory.Advert{
		Name:      d.cfg.Name,
		Prefixes:  d.cfg.Prefixes,
		Collector: d.Collector(),
		Endpoint:  d.cfg.Endpoint,
		Domain:    d.cfg.Domain,
		Priority:  d.cfg.Priority,
		Epoch:     uint64(snap.Epoch()),
	}, d.cfg.LeaseTTL)
}

// Epoch returns the domain's current snapshot generation.
func (d *DomainServer) Epoch() snapshot.Epoch {
	if s := d.store.Current(); s != nil {
		return s.Epoch()
	}
	return 0
}

// Collector returns the collector serving this domain. It answers every
// query — including the empty query peers use to fetch a whole domain —
// with the full current serving graph; domain graphs are small, and the
// border links must always be present for stitching.
func (d *DomainServer) Collector() collector.Interface {
	return domainCollector{d}
}

// Close stops the heartbeat and withdraws the advert immediately, so
// routers fail over without waiting out the lease. A crashed master
// never gets to do this — that path is the lease-expiry failover the
// federation tests and bench exercise via Kill.
func (d *DomainServer) Close() {
	d.timer.Stop()
	d.cfg.Directory.Deregister(d.cfg.Name)
}

// Kill simulates a crash: the heartbeat stops but the advert is left to
// lapse, exactly as when a master's machine dies.
func (d *DomainServer) Kill() {
	d.timer.Stop()
}

type domainCollector struct {
	d *DomainServer
}

func (c domainCollector) Name() string { return "federation-" + c.d.cfg.Name }

func (c domainCollector) Collect(q collector.Query) (*collector.Result, error) {
	if err := q.Context().Err(); err != nil {
		return nil, err
	}
	snap := c.d.store.Current()
	if snap == nil {
		return nil, rerr.Tagf(rerr.ErrCollectorUnavailable,
			"federation: master %q has no serving graph yet", c.d.cfg.Name)
	}
	// Cloned: the caller may merge or annotate the result, the snapshot
	// generation is immutable.
	return &collector.Result{Graph: snap.Graph().Clone()}, nil
}
