package federation

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"remos/internal/collector"
	"remos/internal/directory"
	"remos/internal/modeler"
	"remos/internal/netsim"
	"remos/internal/obs"
	"remos/internal/proto"
	"remos/internal/rerr"
	"remos/internal/sim"
	"remos/internal/topology"
)

// mesh is one in-process federated deployment: a fabric partitioned
// into k domains, each with a local master heartbeating into one shared
// directory (standing in for a converged replica), and a router over it.
type mesh struct {
	s       *sim.Sim
	n       *netsim.Network
	p       *netsim.Partition
	dir     *directory.Service
	router  *Router
	masters []*DomainServer
	hosts   []netip.Addr
	reg     *obs.Registry
}

func buildMesh(t *testing.T, n *netsim.Network, s *sim.Sim, k int) *mesh {
	t.Helper()
	p, err := netsim.PartitionDomains(n, k)
	if err != nil {
		t.Fatal(err)
	}
	m := &mesh{s: s, n: n, p: p, dir: directory.New(s), reg: obs.New()}
	for i := 0; i < k; i++ {
		i := i
		ds, err := StartDomain(DomainConfig{
			Name:      fmt.Sprintf("dom%d-a", i),
			Domain:    fmt.Sprintf("dom%d", i),
			Graph:     func() (*topology.Graph, error) { return m.p.ServingGraph(i) },
			Hosts:     p.DomainHosts(i),
			Prefixes:  p.HostPrefixes(i),
			Directory: m.dir,
			Sched:     s,
			Obs:       m.reg,
			Refresh:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ds.Close)
		m.masters = append(m.masters, ds)
		m.hosts = append(m.hosts, p.DomainHosts(i)...)
	}
	m.router, err = NewRouter(RouterConfig{Directory: m.dir, Obs: m.reg})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checkFlowsMatchGroundTruth asks the router for the flows and compares
// the answer — byte for byte, == on every field — against a single
// master's walk of the whole unpartitioned topology.
func checkFlowsMatchGroundTruth(t *testing.T, m *mesh, flows []modeler.Flow) {
	t.Helper()
	got, err := m.router.GetFlowsContext(context.Background(), flows, modeler.FlowOptions{})
	if err != nil {
		t.Fatalf("federated flows: %v", err)
	}
	truth, err := netsim.TopologyGraph(m.n)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]topology.FlowRequest, len(flows))
	for i, f := range flows {
		reqs[i] = topology.FlowRequest{Src: f.Src.String(), Dst: f.Dst.String(), Demand: f.Demand}
	}
	want, err := truth.FlowAlloc(reqs)
	if err != nil {
		t.Fatalf("ground-truth walk: %v", err)
	}
	for i := range flows {
		if got[i].Available != want[i].Available ||
			got[i].Latency != want[i].Latency ||
			got[i].Jitter != want[i].Jitter ||
			!reflect.DeepEqual(got[i].Path, want[i].Path) {
			t.Fatalf("flow %d (%v -> %v) diverges from single-master walk:\ngot  %v %v %v %v\nwant %v %v %v %v",
				i, flows[i].Src, flows[i].Dst,
				got[i].Available, got[i].Latency, got[i].Jitter, got[i].Path,
				want[i].Available, want[i].Latency, want[i].Jitter, want[i].Path)
		}
	}
}

func TestStitchedFlowsMatchSingleMasterTwoTier(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	tt := netsim.BuildTwoTier(n, netsim.TwoTierSpec{Spines: 2, Leaves: 6, HostsPerLeaf: 3})
	m := buildMesh(t, n, s, 3)

	// Mixed traffic: intra-domain, cross-domain, and demand-limited.
	rnd := rand.New(rand.NewSource(7))
	var flows []modeler.Flow
	for i := 0; i < 24; i++ {
		a := tt.Hosts[rnd.Intn(len(tt.Hosts))].Addr()
		b := tt.Hosts[rnd.Intn(len(tt.Hosts))].Addr()
		if a == b {
			continue
		}
		var demand float64
		if i%3 == 0 {
			demand = float64(1+rnd.Intn(50)) * 1e6
		}
		flows = append(flows, modeler.Flow{Src: a, Dst: b, Demand: demand})
	}
	checkFlowsMatchGroundTruth(t, m, flows)
}

// TestStitchedFlowsMatchSingleMasterRandom is the randomized stitching
// property test: over random fabrics, random partitions, and random
// flow sets — with cross traffic perturbing utilizations between rounds
// — the federated answer equals the single-master ground-truth walk
// exactly, and the stitched path index's bottleneck walk (max-min over
// the path's reduced capacities) matches the whole graph's.
func TestStitchedFlowsMatchSingleMasterRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		s := sim.NewSim()
		n := netsim.New(s)
		nr := 2 + rnd.Intn(5)
		routers := make([]*netsim.Device, nr)
		wired := map[[2]int]bool{}
		connect := func(a, b int, capacity float64) {
			key := [2]int{min(a, b), max(a, b)}
			if a == b || wired[key] {
				return
			}
			wired[key] = true
			n.Connect(routers[a], routers[b], capacity, time.Millisecond)
		}
		for i := range routers {
			routers[i] = n.AddRouter(fmt.Sprintf("r%d", i))
			if i > 0 {
				connect(i, rnd.Intn(i), 1e9)
			}
		}
		for extra := rnd.Intn(nr); extra > 0; extra-- {
			connect(rnd.Intn(nr), rnd.Intn(nr), 1e9+float64(rnd.Intn(5))*1e8)
		}
		var hostDevs []*netsim.Device
		for i, r := range routers {
			sw := n.AddSwitch(fmt.Sprintf("sw%d", i))
			n.Connect(sw, r, 1e9, time.Millisecond)
			for h := 0; h < 2+rnd.Intn(2); h++ {
				host := n.AddHost(fmt.Sprintf("h%d-%d", i, h))
				n.Connect(host, sw, 100e6, time.Millisecond)
				hostDevs = append(hostDevs, host)
			}
		}
		n.AssignSubnets()
		n.ComputeRoutes()

		k := 1 + rnd.Intn(nr)
		m := buildMesh(t, n, s, k)

		// Perturb utilizations so the serving graphs carry non-zero load,
		// then refresh every master at the same instant — the moment a
		// deployment's schedulers would all have polled.
		if len(hostDevs) >= 2 {
			if _, err := n.StartCrossTraffic(hostDevs[0], hostDevs[len(hostDevs)-1], netsim.CrossTrafficSpec{
				Mean: 5e6, Jitter: 0.5, Period: 500 * time.Millisecond, Seed: int64(trial + 1),
			}); err != nil {
				t.Fatal(err)
			}
		}
		s.RunFor(3 * time.Second)

		var flows []modeler.Flow
		for i := 0; i < 16; i++ {
			a := m.hosts[rnd.Intn(len(m.hosts))]
			b := m.hosts[rnd.Intn(len(m.hosts))]
			if a == b {
				continue
			}
			flows = append(flows, modeler.Flow{Src: a, Dst: b})
		}
		if len(flows) == 0 {
			continue
		}
		checkFlowsMatchGroundTruth(t, m, flows)

		// The bottleneck walk on the stitched index equals the walk on
		// the whole graph (same maxmin.Bottleneck over the same links).
		truth, err := netsim.TopologyGraph(m.n)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := m.router.stitchedPaths(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flows[:1] {
			gotBW, gotPath, gotErr := paths.BottleneckAvail(f.Src.String(), f.Dst.String())
			wantBW, wantPath, wantErr := truth.BottleneckAvail(f.Src.String(), f.Dst.String())
			if (gotErr == nil) != (wantErr == nil) || gotBW != wantBW || !reflect.DeepEqual(gotPath, wantPath) {
				t.Fatalf("trial %d: bottleneck diverges: got %v %v %v, want %v %v %v",
					trial, gotBW, gotPath, gotErr, wantBW, wantPath, wantErr)
			}
		}
	}
}

func TestEpochCacheInvalidation(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	tt := netsim.BuildTwoTier(n, netsim.TwoTierSpec{Spines: 2, Leaves: 4, HostsPerLeaf: 2})
	m := buildMesh(t, n, s, 2)
	flows := []modeler.Flow{{Src: tt.Hosts[0].Addr(), Dst: tt.Hosts[len(tt.Hosts)-1].Addr()}}

	checkFlowsMatchGroundTruth(t, m, flows)
	fetches := m.router.mFetches.Value()
	stitches := m.router.mStitches.Value()

	// Same epochs: the repeat query is answered entirely from cache.
	checkFlowsMatchGroundTruth(t, m, flows)
	if got := m.router.mFetches.Value(); got != fetches {
		t.Fatalf("repeat query fetched %d domains, want 0", got-fetches)
	}
	if got := m.router.mStitches.Value(); got != stitches {
		t.Fatalf("repeat query rebuilt the stitched graph")
	}
	if m.router.mCacheHits.Value() == 0 {
		t.Fatal("no cache hits recorded")
	}

	// Heartbeats advance every domain's epoch: the next query must
	// re-fetch and re-stitch.
	s.RunFor(time.Second)
	checkFlowsMatchGroundTruth(t, m, flows)
	if got := m.router.mFetches.Value(); got == fetches {
		t.Fatal("epoch moved but no re-fetch happened")
	}
	if got := m.router.mStitches.Value(); got == stitches {
		t.Fatal("epoch moved but the stitched graph was not rebuilt")
	}
}

// TestFailoverToSecondaryOnLeaseExpiry kills a domain's primary master
// and lets its lease lapse: queries keep answering exactly, now from
// the surviving secondary, with no non-typed error in between.
func TestFailoverToSecondaryOnLeaseExpiry(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	tt := netsim.BuildTwoTier(n, netsim.TwoTierSpec{Spines: 2, Leaves: 4, HostsPerLeaf: 2})
	m := buildMesh(t, n, s, 2)

	// A secondary for domain 0, lower preference.
	sec, err := StartDomain(DomainConfig{
		Name:      "dom0-b",
		Domain:    "dom0",
		Priority:  1,
		Graph:     func() (*topology.Graph, error) { return m.p.ServingGraph(0) },
		Hosts:     m.p.DomainHosts(0),
		Prefixes:  m.p.HostPrefixes(0),
		Directory: m.dir,
		Sched:     s,
		Obs:       m.reg,
		Refresh:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sec.Close()

	flows := []modeler.Flow{{Src: tt.Hosts[0].Addr(), Dst: tt.Hosts[len(tt.Hosts)-1].Addr()}}
	checkFlowsMatchGroundTruth(t, m, flows)

	// Crash the primary: heartbeat stops, lease left to lapse (TTL is
	// 3×Refresh = 3s).
	m.masters[0].Kill()
	s.RunFor(4 * time.Second)
	if _, ok := m.dir.Lookup(m.p.DomainHosts(0)[0]); !ok {
		t.Fatal("domain 0 lost both adverts")
	}
	checkFlowsMatchGroundTruth(t, m, flows)
	snap := m.router.Snapshot()
	var dom0 *DomainSnapshot
	for i := range snap.Domains {
		if snap.Domains[i].Domain == "dom0" {
			dom0 = &snap.Domains[i]
		}
	}
	if dom0 == nil || dom0.CachedFrom != "dom0-b" {
		t.Fatalf("domain 0 not served by the secondary after lease expiry: %+v", dom0)
	}
}

// TestStaleServeWhenAllMastersUnreachable covers the last-resort step:
// the domain's only master is reachable over the wire, caches an
// answer, then crashes with its lease still live. Queries inside that
// window serve the stale cached graph — and never a non-typed error.
func TestStaleServeWhenAllMastersUnreachable(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	tt := netsim.BuildTwoTier(n, netsim.TwoTierSpec{Spines: 2, Leaves: 4, HostsPerLeaf: 2})
	p, err := netsim.PartitionDomains(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(s)
	reg := obs.New()

	// Domain 0 is remote: its master serves over a real TCP socket and
	// registers endpoint-form, so crashing is closing the listener.
	d0, err := StartDomain(DomainConfig{
		Name:   "dom0-a",
		Domain: "dom0",
		Graph:  func() (*topology.Graph, error) { return p.ServingGraph(0) },
		// Registered below with the endpoint; keep it out of the local
		// directory so resolution must go through the wire.
		Hosts: p.DomainHosts(0), Prefixes: p.HostPrefixes(0),
		Directory: directory.New(s), Sched: s, Obs: reg, Refresh: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d0.Close()
	gate := &gatedCollector{inner: d0.Collector()}
	srv := &proto.TCPServer{Collector: gate}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Register(directory.Advert{
		Name: "dom0-a", Domain: "dom0", Endpoint: "tcp://" + addr,
		Prefixes: p.HostPrefixes(0),
	}, time.Hour); err != nil {
		t.Fatal(err)
	}

	// Domain 1 is local.
	d1, err := StartDomain(DomainConfig{
		Name: "dom1-a", Domain: "dom1",
		Graph: func() (*topology.Graph, error) { return p.ServingGraph(1) },
		Hosts: p.DomainHosts(1), Prefixes: p.HostPrefixes(1),
		Directory: dir, Sched: s, Obs: reg, Refresh: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()

	router, err := NewRouter(RouterConfig{Directory: dir, Obs: reg, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m := &mesh{s: s, n: n, p: p, dir: dir, router: router, reg: reg}
	flows := []modeler.Flow{{Src: tt.Hosts[0].Addr(), Dst: tt.Hosts[len(tt.Hosts)-1].Addr()}}
	checkFlowsMatchGroundTruth(t, m, flows)

	// Crash the remote master with its lease still live, and let a
	// replicated heartbeat (sent before the crash) move the advertised
	// epoch on — the cache is now invalid AND the master unreachable.
	gate.dead.Store(true)
	srv.Close()
	if err := dir.Register(directory.Advert{
		Name: "dom0-a", Domain: "dom0", Endpoint: "tcp://" + addr,
		Prefixes: p.HostPrefixes(0), Epoch: uint64(d0.Epoch()) + 1,
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	got, err := router.GetFlowsContext(context.Background(), flows, modeler.FlowOptions{})
	if err != nil {
		t.Fatalf("stale window query failed: %v", err)
	}
	if len(got) != 1 || got[0].Available <= 0 {
		t.Fatalf("stale window answer: %+v", got)
	}
	if router.mStale.Value() == 0 {
		t.Fatal("no stale serve recorded")
	}
	if !router.Snapshot().Domains[0].Stale {
		t.Fatal("snapshot does not mark dom0 stale")
	}
}

// gatedCollector refuses every query once dead is set — a master whose
// process is gone while its listener's pooled connections linger.
type gatedCollector struct {
	inner collector.Interface
	dead  atomic.Bool
}

func (g *gatedCollector) Name() string { return g.inner.Name() }
func (g *gatedCollector) Collect(q collector.Query) (*collector.Result, error) {
	if g.dead.Load() {
		return nil, rerr.Tagf(rerr.ErrCollectorUnavailable, "master crashed")
	}
	return g.inner.Collect(q)
}

// TestRouterCollectFanOut pins the collector face: hosts grouped by
// owning master, answered over the wire where the advert is remote,
// merged deterministically, and unknown hosts refused with the typed
// no-responsible-collector error (distinct from domain-unreachable).
func TestRouterCollectFanOut(t *testing.T) {
	s := sim.NewSim()
	n := netsim.New(s)
	tt := netsim.BuildTwoTier(n, netsim.TwoTierSpec{Spines: 2, Leaves: 4, HostsPerLeaf: 2})
	m := buildMesh(t, n, s, 2)

	// Find a pair of hosts owned by different domains.
	var src, dst netip.Addr
	for _, h := range tt.Hosts[1:] {
		if m.p.DomainOf(h) != m.p.DomainOf(tt.Hosts[0]) {
			src, dst = tt.Hosts[0].Addr(), h.Addr()
			break
		}
	}
	if !dst.IsValid() {
		t.Fatal("partition put every host in one domain")
	}
	res, err := m.router.Collect(collector.Query{Hosts: []netip.Addr{src, dst}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NodeByAddr(src.String()) == nil || res.Graph.NodeByAddr(dst.String()) == nil {
		t.Fatal("merged cross-domain answer missing an endpoint")
	}
	// The merged serving graphs must route between the domains.
	if _, _, err := res.Graph.BottleneckAvail(src.String(), dst.String()); err != nil {
		t.Fatalf("no cross-domain route in merged answer: %v", err)
	}

	_, err = m.router.Collect(collector.Query{Hosts: []netip.Addr{netip.MustParseAddr("192.0.2.1")}})
	if !errors.Is(err, rerr.ErrUnknownHost) {
		t.Fatalf("unknown host error = %v, want ErrUnknownHost", err)
	}
	if errors.Is(err, rerr.ErrCollectorUnavailable) {
		t.Fatal("unknown host conflated with domain-unreachable")
	}
}

// TestDomainUnreachableIsTyped pins the other side of that distinction:
// a host whose domain is advertised but whose masters cannot be reached
// (and no cache exists) fails with ErrCollectorUnavailable, not
// ErrNoRoute or a bare error.
func TestDomainUnreachableIsTyped(t *testing.T) {
	s := sim.NewSim()
	dir := directory.New(s)
	if err := dir.Register(directory.Advert{
		Name: "ghost-a", Domain: "ghost",
		Endpoint: "tcp://127.0.0.1:1", // nothing listens here
		Prefixes: []netip.Prefix{netip.MustParsePrefix("10.9.0.0/16")},
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(RouterConfig{Directory: dir, Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = router.GetFlowsContext(context.Background(),
		[]modeler.Flow{{Src: netip.MustParseAddr("10.9.0.1"), Dst: netip.MustParseAddr("10.9.0.2")}},
		modeler.FlowOptions{})
	if !errors.Is(err, rerr.ErrCollectorUnavailable) {
		t.Fatalf("unreachable domain error = %v, want ErrCollectorUnavailable", err)
	}
	if errors.Is(err, rerr.ErrNoRoute) {
		t.Fatal("domain-unreachable conflated with no-route")
	}
}
